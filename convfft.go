// Convolution on the batched host engine. A ConvPlan runs linear
// convolution and cross-correlation by overlap-save: the signal is
// tiled into segments of a small 7-smooth FFT length (planned by the
// mixed-radix engine, so any kernel/signal length works), the kernel's
// segment spectrum is computed once and cached exactly like the
// Bluestein plan's BHat filter, and segment groups are dispatched
// through TransformBatch/InverseBatch so B segments pay the stage-
// barrier cost of one. The working set is bounded by the segment group
// (convGroup·M elements), not the signal — the memory-frugal
// alternative to transforming the whole padded signal at once.
package codeletfft

import (
	"sync"

	"codeletfft/internal/fft"
)

// convGroup bounds how many segments ride in one batched dispatch —
// and with it the convolution's working set (convGroup·M complex
// elements per scratch slab), independent of the signal length.
const convGroup = 64

// ConvPlan computes linear convolutions of an n-sample complex signal
// against a kernelLen-tap kernel by overlap-save on the batched host
// engine. A ConvPlan is immutable after construction and safe for
// concurrent use on distinct buffers.
type ConvPlan struct {
	spec fft.ConvSpec
	seg  *HostPlan
	pool sync.Pool // *convScratch
}

type convScratch struct {
	slab []complex128
	rows [][]complex128
}

// NewConvPlan builds an overlap-save convolution plan for n-sample
// signals and kernelLen-tap kernels, any n ≥ 1 and kernelLen ≥ 1. The
// segment FFT length is the smallest 7-smooth number ≥ max(4·kernelLen,
// 256) — collapsed to a single full-length segment when the whole
// output fits in one that small — so every segment transform runs the
// mixed-radix (or staged power-of-two) planner natively. opts configure
// the segment plan's engine exactly as for NewHostPlan.
func NewConvPlan(n, kernelLen int, opts ...HostOption) (*ConvPlan, error) {
	spec, err := fft.NewConvSpec(n, kernelLen)
	if err != nil {
		return nil, err
	}
	seg, err := CachedHostPlan(spec.M, opts...)
	if err != nil {
		return nil, err
	}
	p := &ConvPlan{spec: spec, seg: seg}
	p.pool.New = func() any {
		g := min(convGroup, spec.Segs)
		sc := &convScratch{
			slab: make([]complex128, g*spec.M),
			rows: make([][]complex128, g),
		}
		for i := range sc.rows {
			sc.rows[i] = sc.slab[i*spec.M : (i+1)*spec.M]
		}
		return sc
	}
	return p, nil
}

// N returns the signal length the plan convolves.
func (p *ConvPlan) N() int { return p.spec.N }

// KernelLen returns the kernel tap count.
func (p *ConvPlan) KernelLen() int { return p.spec.K }

// OutLen returns N+KernelLen-1, the linear convolution's output length
// — the buffer length Convolve and CrossCorrelate fill.
func (p *ConvPlan) OutLen() int { return p.spec.OutLen() }

// SegmentLen returns the overlap-save segment FFT length M.
func (p *ConvPlan) SegmentLen() int { return p.spec.M }

// Segments returns how many segments tile one convolution.
func (p *ConvPlan) Segments() int { return p.spec.Segs }

// kernelSpectrum computes the M-point spectrum of the padded kernel —
// reversed and conjugated for correlation — through the segment plan.
func (p *ConvPlan) kernelSpectrum(h []complex128, reversed bool) ([]complex128, error) {
	hhat := make([]complex128, p.spec.M)
	if reversed {
		p.spec.PadKernelReversed(hhat, h)
	} else {
		p.spec.PadKernel(hhat, h)
	}
	if err := p.seg.Transform(hhat); err != nil {
		return nil, err
	}
	return hhat, nil
}

// run executes the overlap-save pipeline against a precomputed kernel
// spectrum: segment groups of up to convGroup gather, forward-batch,
// pointwise-multiply, inverse-batch, scatter.
func (p *ConvPlan) run(dst, x, hhat []complex128) error {
	sc := p.pool.Get().(*convScratch)
	defer p.pool.Put(sc)
	for g0 := 0; g0 < p.spec.Segs; g0 += len(sc.rows) {
		g := min(len(sc.rows), p.spec.Segs-g0)
		rows := sc.rows[:g]
		for i := 0; i < g; i++ {
			p.spec.Gather(g0+i, rows[i], x)
		}
		if err := p.seg.TransformBatch(rows); err != nil {
			return err
		}
		for i := 0; i < g; i++ {
			row := rows[i]
			for j := range row {
				row[j] *= hhat[j]
			}
		}
		if err := p.seg.InverseBatch(rows); err != nil {
			return err
		}
		for i := 0; i < g; i++ {
			p.spec.Scatter(g0+i, dst, rows[i])
		}
	}
	return nil
}

// Convolve computes the linear convolution dst[i] = Σ_j x[j]·h[i-j].
// len(x) must be N, len(h) KernelLen, and len(dst) OutLen; mismatches
// panic with an error wrapping ErrLengthMismatch. x and h are not
// modified. The error mirrors the Plan convention (always nil for host
// execution).
func (p *ConvPlan) Convolve(dst, x, h []complex128) error {
	p.checkArgs(dst, x, h)
	hhat, err := p.kernelSpectrum(h, false)
	if err != nil {
		return err
	}
	return p.run(dst, x, hhat)
}

// CrossCorrelate computes the cross-correlation of x against h:
// dst[K-1+ℓ] = Σ_j x[j]·conj(h[j-ℓ]) for lags ℓ ∈ [-(K-1), N), K the
// kernel length — zero lag lands at dst[K-1]. Buffer lengths match
// Convolve's contract.
func (p *ConvPlan) CrossCorrelate(dst, x, h []complex128) error {
	p.checkArgs(dst, x, h)
	hhat, err := p.kernelSpectrum(h, true)
	if err != nil {
		return err
	}
	return p.run(dst, x, hhat)
}

func (p *ConvPlan) checkArgs(dst, x, h []complex128) {
	if len(x) != p.spec.N {
		panic(fft.LengthError("signal", len(x), p.spec.N))
	}
	if len(h) != p.spec.K {
		panic(fft.LengthError("kernel", len(h), p.spec.K))
	}
	if len(dst) != p.spec.OutLen() {
		panic(fft.LengthError("convolution output", len(dst), p.spec.OutLen()))
	}
}

// FilterStream builds a streaming FIR filter over the plan's segment
// machinery with h's segment spectrum precomputed once — the shape for
// long or unbounded signals where Convolve's whole-signal buffers don't
// apply. len(h) must be KernelLen.
func (p *ConvPlan) FilterStream(h []complex128) (*StreamFilter, error) {
	if len(h) != p.spec.K {
		panic(fft.LengthError("kernel", len(h), p.spec.K))
	}
	hhat, err := p.kernelSpectrum(h, false)
	if err != nil {
		return nil, err
	}
	f := &StreamFilter{
		p:    p,
		hhat: hhat,
		hist: make([]complex128, p.spec.K-1),
		seg:  make([]complex128, p.spec.M),
	}
	f.batch1 = [][]complex128{f.seg}
	return f, nil
}

// StreamFilter applies a fixed FIR kernel to an unbounded sample stream
// with bounded memory: one M-element segment buffer plus the K-1 sample
// history that overlap-save carries between calls. Process performs no
// allocation in steady state. A StreamFilter is stateful and must not
// be shared across goroutines; create one per stream.
type StreamFilter struct {
	p      *ConvPlan
	hhat   []complex128
	hist   []complex128 // last K-1 input samples
	seg    []complex128
	batch1 [][]complex128
}

// KernelLen returns the filter's tap count.
func (f *StreamFilter) KernelLen() int { return f.p.spec.K }

// Process filters len(src) samples continuing from the history of all
// prior calls: dst[i] = Σ_j h[j]·src[i-j], with src[i-j] drawn from
// earlier Process calls when i < j (zeros before the first call).
// len(dst) must equal len(src); dst and src may be the same slice.
func (f *StreamFilter) Process(dst, src []complex128) error {
	if len(dst) != len(src) {
		panic(fft.LengthError("filter output", len(dst), len(src)))
	}
	spec := f.p.spec
	k1 := spec.K - 1
	for off := 0; off < len(src); {
		c := min(spec.S, len(src)-off)
		copy(f.seg, f.hist)
		copy(f.seg[k1:], src[off:off+c])
		for i := k1 + c; i < spec.M; i++ {
			f.seg[i] = 0
		}
		if err := f.p.seg.TransformBatch(f.batch1); err != nil {
			return err
		}
		for j := range f.seg {
			f.seg[j] *= f.hhat[j]
		}
		if err := f.p.seg.InverseBatch(f.batch1); err != nil {
			return err
		}
		// Update the history before writing dst: dst may alias src.
		if c >= k1 {
			copy(f.hist, src[off+c-k1:off+c])
		} else {
			copy(f.hist, f.hist[c:])
			copy(f.hist[k1-c:], src[off:off+c])
		}
		copy(dst[off:off+c], f.seg[k1:k1+c])
		off += c
	}
	return nil
}

// Reset clears the filter's history, as if no samples had been
// processed.
func (f *StreamFilter) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
}
