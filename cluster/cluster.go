// Package cluster is the public face of the distributed FFT: a
// coordinator that factors large transforms four-step (N = N1·N2) and
// fans the column and row FFT passes out to worker daemons, with
// health-checked membership, consistent-hash placement, retries,
// optional hedging, and graceful degradation to local execution.
//
// Workers are `fftserved -worker` processes; a Cluster built with New
// reaches them over HTTP. NewLoopback instead stands up an entire
// cluster — coordinator plus in-process workers — inside the calling
// process, which is how the examples and tests run without sockets:
//
//	cl, _ := cluster.NewLoopback(3, cluster.Config{})
//	defer cl.Close()
//	data := make([]complex128, 1<<16)
//	// ... fill data ...
//	_ = cl.TransformCtx(context.Background(), data)
//
// A Cluster implements codeletfft.Plan, so code written against that
// interface moves between a host plan and a cluster unchanged; the
// context-free methods run under context.Background(). The heavy
// lifting lives in internal/dist; this package pins the supported
// surface while the internals keep evolving.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"codeletfft"
	"codeletfft/internal/dist"
	"codeletfft/internal/serve"
)

// A Cluster is a codeletfft.Plan: the same interface the host plans
// implement, backed by the worker set instead of local goroutines.
var _ codeletfft.Plan = (*Cluster)(nil)

// Config tunes a Cluster. The zero value is usable: no workers means
// every transform runs locally (fully degraded but correct).
type Config struct {
	// Workers lists worker base URLs (e.g. "http://10.0.0.7:8080") for
	// New; NewLoopback ignores it and generates its own set.
	Workers []string
	// MemberFile, when non-empty, is a polled membership file — one
	// worker address per line, '#' comments — that can add and remove
	// workers at runtime.
	MemberFile string
	// ProbeInterval enables active health probing of every worker; 0
	// disables it (per-worker circuit breakers still react to call
	// failures).
	ProbeInterval time.Duration

	// ShardVecs is how many column/row vectors ride in one worker RPC
	// (default 32).
	ShardVecs int
	// MaxAttempts bounds the tries per shard, first attempt included
	// (default 3).
	MaxAttempts int
	// HedgeDelay, when positive, sends a second copy of a slow shard to
	// the next worker on the ring; the first answer wins. 0 disables.
	HedgeDelay time.Duration
	// ShardTimeout is the per-attempt deadline (default 10s).
	ShardTimeout time.Duration

	// Factor overrides the four-step split for a given N; nil picks the
	// near-square power-of-two split.
	Factor func(n int) (n1, n2 int)

	// LocalKernel selects the butterfly kernel for degraded (local)
	// execution and locally run shards. The zero value resolves to
	// radix-2; the coordinator never runs tuning measurements on the
	// request path. Workers pick their own kernel via `fftserved
	// -kernel`.
	LocalKernel codeletfft.Kernel

	// DisableResidentSessions forces every transform through the legacy
	// one-shot shard frames even when the transport supports resident
	// sessions. The zero value (resident enabled) is the
	// communication-avoiding default.
	DisableResidentSessions bool
}

// options translates the public Config onto the coordinator's
// functional options.
func (c Config) options(t dist.Transport, workers []string) []dist.Option {
	return []dist.Option{
		dist.WithTransport(t),
		dist.WithWorkers(workers...),
		dist.WithMemberFile(c.MemberFile),
		dist.WithProbeInterval(c.ProbeInterval),
		dist.WithShardVecs(c.ShardVecs),
		dist.WithMaxAttempts(c.MaxAttempts),
		dist.WithHedgeDelay(c.HedgeDelay),
		dist.WithShardTimeout(c.ShardTimeout),
		dist.WithFactor(c.Factor),
		dist.WithLocalKernel(c.LocalKernel),
		dist.WithResidentSessions(!c.DisableResidentSessions),
	}
}

// Cluster distributes forward and inverse FFTs over a worker set. Safe
// for concurrent use; Close releases the membership loops (and, for
// loopback clusters, the in-process workers).
type Cluster struct {
	co *dist.Coordinator
}

// New connects to the configured workers over HTTP. The transport is
// session-capable: against upgraded workers each transform runs the
// communication-avoiding resident path, and old FFS1-only daemons
// degrade per-worker to the one-shot frames.
func New(cfg Config) (*Cluster, error) {
	co, err := dist.New(cfg.options(&dist.HTTPTransport{}, cfg.Workers)...)
	if err != nil {
		return nil, err
	}
	return &Cluster{co: co}, nil
}

// NewLoopback builds a self-contained cluster with nWorkers in-process
// workers — the full coordinator/worker protocol, including the
// worker-to-worker transpose exchange, with no sockets.
func NewLoopback(nWorkers int, cfg Config) (*Cluster, error) {
	if nWorkers <= 0 {
		return nil, fmt.Errorf("cluster: need at least one loopback worker, got %d", nWorkers)
	}
	lb := dist.NewLoopback()
	addrs := make([]string, nWorkers)
	// Split the host's parallelism between the in-process workers so a
	// loopback cluster doesn't oversubscribe the machine the way
	// nWorkers independent daemons would.
	perWorker := max(1, runtime.NumCPU()/nWorkers)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("loopback-%d", i)
		srv := serve.New(serve.Config{
			EnableShard: true,
			MaxN:        dist.MaxClusterN,
			Workers:     perWorker,
			Peers:       lb,
		})
		lb.Register(addrs[i], srv.Handler())
	}
	co, err := dist.New(cfg.options(lb, addrs)...)
	if err != nil {
		return nil, err
	}
	return &Cluster{co: co}, nil
}

// TransformCtx applies the forward FFT to data in place, honoring ctx
// throughout the shard RPCs. len(data) must be a power of two ≥ 4. The
// output matches the single-node transform within floating-point
// tolerance.
func (c *Cluster) TransformCtx(ctx context.Context, data []complex128) error {
	return c.co.Transform(ctx, data)
}

// InverseCtx applies the inverse FFT in place, honoring ctx.
func (c *Cluster) InverseCtx(ctx context.Context, data []complex128) error {
	return c.co.Inverse(ctx, data)
}

// Transform is TransformCtx under context.Background().
func (c *Cluster) Transform(data []complex128) error {
	return c.co.Transform(context.Background(), data)
}

// Inverse is InverseCtx under context.Background().
func (c *Cluster) Inverse(data []complex128) error {
	return c.co.Inverse(context.Background(), data)
}

// TransformBatch applies the forward FFT to every row of batch. Rows
// are dispatched sequentially (each one already fans out across the
// worker set); a failed row aborts the batch with an error naming its
// batch index.
func (c *Cluster) TransformBatch(batch [][]complex128) error {
	for i, d := range batch {
		if err := c.co.Transform(context.Background(), d); err != nil {
			return fmt.Errorf("batch element %d: %w", i, err)
		}
	}
	return nil
}

// InverseBatch applies the inverse FFT to every row of batch; see
// TransformBatch.
func (c *Cluster) InverseBatch(batch [][]complex128) error {
	for i, d := range batch {
		if err := c.co.Inverse(context.Background(), d); err != nil {
			return fmt.Errorf("batch element %d: %w", i, err)
		}
	}
	return nil
}

// Close stops the cluster's background loops.
func (c *Cluster) Close() { c.co.Close() }

// Snapshot returns the coordinator's metrics — transform and RPC
// counts, retry/hedge/degradation counters, latency histograms — as a
// flat name → value map.
func (c *Cluster) Snapshot() map[string]float64 { return c.co.Registry().Snapshot() }

// MetricsText renders the coordinator's metrics in the same plain-text
// exposition format the daemons serve at /metrics.
func (c *Cluster) MetricsText() string {
	var b strings.Builder
	c.co.Registry().WriteText(&b)
	return b.String()
}
