package cluster_test

import (
	"context"
	"math/cmplx"
	"math/rand"
	"testing"

	"codeletfft"
	"codeletfft/cluster"
)

// TestLoopbackClusterMatchesSingleNode drives the public API end to
// end: a 3-worker loopback cluster must reproduce the single-node
// parallel transform.
func TestLoopbackClusterMatchesSingleNode(t *testing.T) {
	cl, err := cluster.NewLoopback(3, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 1 << 14
	rng := rand.New(rand.NewSource(1))
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	want := append([]complex128(nil), data...)
	hp, err := codeletfft.CachedHostPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	hp.ParallelTransform(want)
	if err := cl.Transform(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := cmplx.Abs(data[i] - want[i]); d > 1e-12*float64(n) {
			t.Fatalf("bin %d deviates by %g", i, d)
		}
	}
	snap := cl.Snapshot()
	if snap["dist_transforms_total"] != 1 {
		t.Errorf("dist_transforms_total = %v, want 1", snap["dist_transforms_total"])
	}
	if snap["dist_degraded_total"] != 0 {
		t.Errorf("dist_degraded_total = %v, want 0", snap["dist_degraded_total"])
	}
	if cl.MetricsText() == "" {
		t.Error("MetricsText returned nothing")
	}
}

// TestLoopbackClusterRoundTrip checks Inverse undoes Transform through
// the public API.
func TestLoopbackClusterRoundTrip(t *testing.T) {
	cl, err := cluster.NewLoopback(2, cluster.Config{ShardVecs: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 1 << 10
	rng := rand.New(rand.NewSource(2))
	orig := make([]complex128, n)
	for i := range orig {
		orig[i] = complex(rng.Float64(), rng.Float64())
	}
	data := append([]complex128(nil), orig...)
	ctx := context.Background()
	if err := cl.Transform(ctx, data); err != nil {
		t.Fatal(err)
	}
	if err := cl.Inverse(ctx, data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := cmplx.Abs(data[i] - orig[i]); d > 1e-11 {
			t.Fatalf("round trip bin %d error %g", i, d)
		}
	}
}

func TestNewLoopbackRejectsZeroWorkers(t *testing.T) {
	if _, err := cluster.NewLoopback(0, cluster.Config{}); err == nil {
		t.Fatal("NewLoopback(0) succeeded")
	}
}
