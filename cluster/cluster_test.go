package cluster_test

import (
	"context"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"codeletfft"
	"codeletfft/cluster"
)

// TestLoopbackClusterMatchesSingleNode drives the public API end to
// end: a 3-worker loopback cluster must reproduce the single-node
// parallel transform.
func TestLoopbackClusterMatchesSingleNode(t *testing.T) {
	cl, err := cluster.NewLoopback(3, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 1 << 14
	rng := rand.New(rand.NewSource(1))
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	want := append([]complex128(nil), data...)
	hp, err := codeletfft.CachedHostPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := hp.Transform(want); err != nil {
		t.Fatalf("reference Transform: %v", err)
	}
	if err := cl.TransformCtx(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := cmplx.Abs(data[i] - want[i]); d > 1e-12*float64(n) {
			t.Fatalf("bin %d deviates by %g", i, d)
		}
	}
	snap := cl.Snapshot()
	if snap["dist_transforms_total"] != 1 {
		t.Errorf("dist_transforms_total = %v, want 1", snap["dist_transforms_total"])
	}
	if snap["dist_degraded_total"] != 0 {
		t.Errorf("dist_degraded_total = %v, want 0", snap["dist_degraded_total"])
	}
	if cl.MetricsText() == "" {
		t.Error("MetricsText returned nothing")
	}
}

// TestLoopbackClusterRoundTrip checks Inverse undoes Transform through
// the public API.
func TestLoopbackClusterRoundTrip(t *testing.T) {
	cl, err := cluster.NewLoopback(2, cluster.Config{ShardVecs: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 1 << 10
	rng := rand.New(rand.NewSource(2))
	orig := make([]complex128, n)
	for i := range orig {
		orig[i] = complex(rng.Float64(), rng.Float64())
	}
	data := append([]complex128(nil), orig...)
	ctx := context.Background()
	if err := cl.TransformCtx(ctx, data); err != nil {
		t.Fatal(err)
	}
	if err := cl.InverseCtx(ctx, data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := cmplx.Abs(data[i] - orig[i]); d > 1e-11 {
			t.Fatalf("round trip bin %d error %g", i, d)
		}
	}
}

func TestNewLoopbackRejectsZeroWorkers(t *testing.T) {
	if _, err := cluster.NewLoopback(0, cluster.Config{}); err == nil {
		t.Fatal("NewLoopback(0) succeeded")
	}
}

// TestClusterImplementsPlan drives the cluster through the unified
// codeletfft.Plan interface — the context-free methods and the batch
// path — exactly as interface-generic serving code would.
func TestClusterImplementsPlan(t *testing.T) {
	cl, err := cluster.NewLoopback(2, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var p codeletfft.Plan = cl

	const n = 1 << 10
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	data := append([]complex128(nil), x...)
	if err := p.Transform(data); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse(data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := cmplx.Abs(data[i] - x[i]); d > 1e-10 {
			t.Fatalf("roundtrip bin %d deviates by %g", i, d)
		}
	}

	batch := [][]complex128{
		append([]complex128(nil), x...),
		append([]complex128(nil), x...),
	}
	if err := p.TransformBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := p.InverseBatch(batch); err != nil {
		t.Fatal(err)
	}
	for i := range batch[0] {
		if d := cmplx.Abs(batch[0][i] - batch[1][i]); d > 0 {
			t.Fatalf("batch rows disagree at %d", i)
		}
	}

	// A bad row's error names its batch index.
	err = p.TransformBatch([][]complex128{x, make([]complex128, 100)})
	if err == nil || !strings.Contains(err.Error(), "batch element 1") {
		t.Fatalf("bad batch row error %v does not name element 1", err)
	}

	// Canceled contexts surface through the ctx variants.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.TransformCtx(ctx, data); err == nil {
		t.Fatal("TransformCtx ignored a canceled context")
	}
}
