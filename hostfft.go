package codeletfft

import (
	"sync"

	"codeletfft/internal/cache"
	"codeletfft/internal/fft"
	"codeletfft/internal/host"
)

// Sentinel errors re-exported from the core package so callers can test
// failure modes with errors.Is without importing internal packages.
// Length-mismatch panics raised by Transform and friends carry an error
// value wrapping ErrLengthMismatch.
var (
	// ErrNotPowerOfTwo reports a transform length that is not a power of
	// two (or is below the algorithm's minimum).
	ErrNotPowerOfTwo = fft.ErrNotPowerOfTwo
	// ErrBadTaskSize reports a task size that is not a power of two ≥ 2
	// or exceeds the transform length.
	ErrBadTaskSize = fft.ErrBadTaskSize
	// ErrLengthMismatch reports a data slice whose length does not match
	// the plan. It is delivered by panic, not by return value, because it
	// is a programming error rather than an environmental condition.
	ErrLengthMismatch = fft.ErrLengthMismatch
)

// hostOpts is the resolved option set for plan construction.
type hostOpts struct {
	taskSize  int
	workers   int
	threshold int
	observer  EngineObserver
}

// EngineObserver receives execution telemetry from a plan's parallel
// engine: one ObserveBatch call per batched dispatch (its occupancy and
// wall time) and one ObservePass call per lockstep pass (bit-reversal,
// each butterfly stage, the inverse path's conjugate/scale sweeps).
// Implementations must be cheap and safe for concurrent use; the
// serving daemon backs one with atomic histogram instruments.
type EngineObserver = host.Observer

// HostOption configures NewHostPlan, NewHostPlan2D, and CachedHostPlan.
type HostOption func(*hostOpts)

// WithTaskSize selects the P-point kernel size of the staged
// decomposition (the paper's codelet size). It must be a power of two
// between 2 and the transform length; 64 — the paper's sweet spot — is
// the default. For a transform shorter than the default, the task size
// is clamped to the transform length.
func WithTaskSize(p int) HostOption {
	return func(o *hostOpts) { o.taskSize = p }
}

// WithWorkers sets the goroutine count of the parallel engine behind
// ParallelTransform, TransformBatch, and friends. 0 (the default) means
// GOMAXPROCS.
func WithWorkers(n int) HostOption {
	return func(o *hostOpts) { o.workers = n }
}

// WithThreshold sets the minimum element count (N for a single
// transform, B·N for a batch) at which the parallel path engages;
// smaller workloads run serially, where dispatch overhead would
// dominate. 0 means the package default (8192); 1 forces the parallel
// path at every size.
func WithThreshold(n int) HostOption {
	return func(o *hostOpts) { o.threshold = n }
}

// WithObserver attaches an EngineObserver to the plan's parallel
// engine, so the batch and parallel paths report occupancy and
// per-pass latency instead of being measured from outside.
func WithObserver(obs EngineObserver) HostOption {
	return func(o *hostOpts) { o.observer = obs }
}

func resolveOpts(n int, opts []HostOption) hostOpts {
	o := hostOpts{taskSize: min(64, n)}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// engine builds the parallel engine the resolved options describe.
func (o hostOpts) engine() *host.Engine {
	return host.New(host.Config{Workers: o.workers, Threshold: o.threshold, Observer: o.observer})
}

// hostCore is the immutable, shareable part of a HostPlan: the stage
// decomposition, the twiddle table, and the lazily built real-input
// plan. CachedHostPlan hands the same core to many HostPlans; only the
// engine differs per plan.
type hostCore struct {
	pl *fft.Plan
	w  []complex128

	realOnce sync.Once
	real     *fft.RealPlan
	realErr  error
}

func newHostCore(n, taskSize int) (*hostCore, error) {
	pl, err := fft.NewPlan(n, taskSize)
	if err != nil {
		return nil, err
	}
	return &hostCore{pl: pl, w: fft.Twiddles(n)}, nil
}

// realPlan builds the N-point real-input plan on first use. It fails
// for N < 4, the packing trick's minimum.
func (c *hostCore) realPlan() (*fft.RealPlan, error) {
	c.realOnce.Do(func() {
		c.real, c.realErr = fft.NewRealPlan(c.pl.N, c.pl.P)
	})
	return c.real, c.realErr
}

// planKey identifies a cached core: the transform length and the task
// size fully determine the decomposition and twiddle table.
type planKey struct {
	n, p int
}

func planKeyHash(k planKey) uint64 {
	h := uint64(k.n)*0x9e3779b97f4a7c15 ^ uint64(k.p)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	return h ^ h>>32
}

// planCache memoizes plan cores across CachedHostPlan calls. 8 shards ×
// 16 entries bounds it at 128 cores; serving workloads use a handful of
// sizes, so eviction is rare in practice.
var planCache = cache.New[planKey, *hostCore](8, 16, planKeyHash)

// PlanCacheLen reports how many plan cores CachedHostPlan currently
// retains — an observability hook for serving systems.
func PlanCacheLen() int { return planCache.Len() }

// PlanCacheStats reports the plan cache's lifetime hit and miss counts
// — the companion observability hook to PlanCacheLen. A CachedHostPlan
// call that reuses (or joins the single-flight construction of) a core
// counts as a hit; one that starts construction counts as a miss.
func PlanCacheStats() (hits, misses int64) { return planCache.Stats() }

// ParallelConfig tunes the parallel host execution engine behind
// HostPlan.ParallelTransform and friends.
//
// Deprecated: pass WithWorkers and WithThreshold to NewHostPlan instead.
type ParallelConfig struct {
	// Workers is the number of goroutines per parallel pass; 0 means
	// GOMAXPROCS.
	Workers int
	// Threshold is the minimum element count for which the parallel path
	// engages — smaller transforms fall back to the serial path, where
	// dispatch overhead would dominate. 0 means the package default
	// (8192); 1 forces parallel execution at every size.
	Threshold int
}

// HostPlan exposes the staged FFT decomposition for direct numeric use on
// the host, without the machine simulation: the same kernels the
// simulated codelets execute, callable as a plain FFT library.
//
// A HostPlan is immutable after construction (SetParallel replaces the
// engine wholesale), so one plan may serve concurrent Transform,
// ParallelTransform, or TransformBatch calls on distinct data arrays.
type HostPlan struct {
	core *hostCore
	eng  *host.Engine
	obs  EngineObserver // retained so SetParallel keeps the observer
}

// NewHostPlan builds a host-side plan for n-point transforms. By
// default it uses 64-point kernels (clamped to n) and a GOMAXPROCS
// parallel engine; functional options override each knob:
//
//	p, err := codeletfft.NewHostPlan(1<<20,
//	    codeletfft.WithTaskSize(64),
//	    codeletfft.WithWorkers(8),
//	    codeletfft.WithThreshold(1<<13))
func NewHostPlan(n int, opts ...HostOption) (*HostPlan, error) {
	o := resolveOpts(n, opts)
	core, err := newHostCore(n, o.taskSize)
	if err != nil {
		return nil, err
	}
	return &HostPlan{core: core, eng: o.engine(), obs: o.observer}, nil
}

// CachedHostPlan is NewHostPlan backed by a process-wide, size-bounded,
// concurrency-safe plan cache keyed by (n, task size). Repeated calls
// for one shape share the stage decomposition and twiddle table —
// concurrent first calls run plan construction once (single-flight) —
// so serving code can call it per request instead of hand-managing
// plan lifetimes. The engine options (WithWorkers, WithThreshold) are
// still applied per returned plan.
func CachedHostPlan(n int, opts ...HostOption) (*HostPlan, error) {
	o := resolveOpts(n, opts)
	core, err := planCache.GetOrCreate(planKey{n: n, p: o.taskSize}, func() (*hostCore, error) {
		return newHostCore(n, o.taskSize)
	})
	if err != nil {
		return nil, err
	}
	return &HostPlan{core: core, eng: o.engine(), obs: o.observer}, nil
}

// N returns the transform length.
func (h *HostPlan) N() int { return h.core.pl.N }

// TaskSize returns the P-point kernel size of the decomposition.
func (h *HostPlan) TaskSize() int { return h.core.pl.P }

// Workers returns the worker count the parallel engine resolved.
func (h *HostPlan) Workers() int { return h.eng.Workers() }

// SetParallel reconfigures the parallel engine, preserving any observer
// attached with WithObserver. Call before handing the plan to concurrent
// users.
//
// Deprecated: pass WithWorkers and WithThreshold to NewHostPlan instead.
func (h *HostPlan) SetParallel(cfg ParallelConfig) {
	h.eng = host.New(host.Config{Workers: cfg.Workers, Threshold: cfg.Threshold, Observer: h.obs})
}

// Transform applies the forward FFT in place. len(data) must equal N;
// a mismatch panics with an error wrapping ErrLengthMismatch.
func (h *HostPlan) Transform(data []complex128) { h.core.pl.Transform(data, h.core.w) }

// Inverse applies the inverse FFT in place.
func (h *HostPlan) Inverse(data []complex128) { h.core.pl.InverseTransform(data, h.core.w) }

// ParallelTransform applies the forward FFT in place, sharding each
// stage's butterfly tasks across the engine's workers (serial fallback
// below the threshold). Output is bitwise identical to Transform.
func (h *HostPlan) ParallelTransform(data []complex128) { h.eng.Transform(h.core.pl, data, h.core.w) }

// ParallelInverse applies the inverse FFT in place on the parallel
// engine. Output is bitwise identical to Inverse.
func (h *HostPlan) ParallelInverse(data []complex128) {
	h.eng.InverseTransform(h.core.pl, data, h.core.w)
}

// TransformBatch applies the forward FFT in place to every transform in
// batch through one worker-pool dispatch: workers steal (transform,
// task-chunk) units within each lockstep stage pass, so B transforms
// cost the stage-barrier overhead of one. Every slice must have length
// N (panics with ErrLengthMismatch otherwise). Output is bitwise
// identical to calling Transform in a loop, and the steady-state path
// performs no allocation.
func (h *HostPlan) TransformBatch(batch [][]complex128) {
	h.eng.TransformBatch(h.core.pl, batch, h.core.w)
}

// InverseBatch applies the inverse FFT in place to every transform in
// batch through one worker-pool dispatch. Output is bitwise identical
// to calling Inverse in a loop.
func (h *HostPlan) InverseBatch(batch [][]complex128) {
	h.eng.InverseBatch(h.core.pl, batch, h.core.w)
}

// RealTransform computes the forward FFT of the real input x (length N)
// into spec (length N/2+1, the non-redundant Hermitian half) via one
// N/2-point complex transform — roughly twice the speed of the complex
// path. It errors for N < 4. spec[0] and spec[N/2] are exactly real.
func (h *HostPlan) RealTransform(spec []complex128, x []float64) error {
	rp, err := h.core.realPlan()
	if err != nil {
		return err
	}
	rp.Transform(spec, x)
	return nil
}

// RealInverse recovers the real signal x (length N) from its Hermitian
// half-spectrum spec (length N/2+1), inverting RealTransform. Only the
// real parts of spec[0] and spec[N/2] are used.
func (h *HostPlan) RealInverse(x []float64, spec []complex128) error {
	rp, err := h.core.realPlan()
	if err != nil {
		return err
	}
	rp.Inverse(x, spec)
	return nil
}

// ParallelRealTransform is RealTransform with the inner N/2-point
// complex transform run on the parallel engine. Output is bitwise
// identical to RealTransform.
func (h *HostPlan) ParallelRealTransform(spec []complex128, x []float64) error {
	rp, err := h.core.realPlan()
	if err != nil {
		return err
	}
	h.eng.RealTransform(rp, spec, x)
	return nil
}

// ParallelRealInverse is RealInverse on the parallel engine. Output is
// bitwise identical to RealInverse.
func (h *HostPlan) ParallelRealInverse(x []float64, spec []complex128) error {
	rp, err := h.core.realPlan()
	if err != nil {
		return err
	}
	h.eng.RealInverse(rp, x, spec)
	return nil
}

// HostPlan2D is the 2-D row-column analogue of HostPlan.
type HostPlan2D struct {
	pl  *fft.Plan2D
	eng *host.Engine
	obs EngineObserver // retained so SetParallel keeps the observer
}

// NewHostPlan2D builds a host-side plan for rows×cols transforms. It
// accepts the same functional options as NewHostPlan; the task size is
// clamped to each axis length as needed by the row-column pass.
func NewHostPlan2D(rows, cols int, opts ...HostOption) (*HostPlan2D, error) {
	o := resolveOpts(min(rows, cols), opts)
	pl, err := fft.NewPlan2D(rows, cols, o.taskSize)
	if err != nil {
		return nil, err
	}
	return &HostPlan2D{pl: pl, eng: o.engine(), obs: o.observer}, nil
}

// SetParallel reconfigures the parallel engine, preserving any observer
// attached with WithObserver. Call before handing the plan to concurrent
// users.
//
// Deprecated: pass WithWorkers and WithThreshold to NewHostPlan2D instead.
func (h *HostPlan2D) SetParallel(cfg ParallelConfig) {
	h.eng = host.New(host.Config{Workers: cfg.Workers, Threshold: cfg.Threshold, Observer: h.obs})
}

// Workers returns the worker count the parallel engine resolved.
func (h *HostPlan2D) Workers() int { return h.eng.Workers() }

// Transform applies the forward 2-D FFT in place (row-major data).
func (h *HostPlan2D) Transform(data []complex128) { h.pl.Transform(data) }

// Inverse applies the inverse 2-D FFT in place.
func (h *HostPlan2D) Inverse(data []complex128) { h.pl.InverseTransform(data) }

// ParallelTransform applies the forward 2-D FFT in place, sharding rows
// then columns across the engine's workers. Output is bitwise identical
// to Transform.
func (h *HostPlan2D) ParallelTransform(data []complex128) { h.eng.Transform2D(h.pl, data) }

// ParallelInverse applies the inverse 2-D FFT in place on the parallel
// engine. Output is bitwise identical to Inverse.
func (h *HostPlan2D) ParallelInverse(data []complex128) { h.eng.InverseTransform2D(h.pl, data) }

// DFT computes the discrete Fourier transform directly in O(n²) — the
// ground-truth reference (any length).
func DFT(x []complex128) []complex128 { return fft.DFT(x) }

// FFT computes the transform of a power-of-two-length input with the
// recursive Cooley-Tukey algorithm, allocating the result.
func FFT(x []complex128) []complex128 { return fft.Recursive(x) }

// IFFT computes the inverse transform, allocating the result.
func IFFT(x []complex128) []complex128 { return fft.Inverse(x) }

// StockhamFFT computes the transform of a power-of-two-length input with the
// radix-2 Stockham autosort algorithm (no bit-reversal pass), allocating
// the result.
func StockhamFFT(x []complex128) []complex128 { return fft.Stockham(x) }
