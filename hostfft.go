package codeletfft

import (
	"codeletfft/internal/fft"
	"codeletfft/internal/host"
)

// ParallelConfig tunes the parallel host execution engine behind
// HostPlan.ParallelTransform and friends.
type ParallelConfig struct {
	// Workers is the number of goroutines per parallel pass; 0 means
	// GOMAXPROCS.
	Workers int
	// Threshold is the minimum element count for which the parallel path
	// engages — smaller transforms fall back to the serial path, where
	// dispatch overhead would dominate. 0 means the package default
	// (8192); 1 forces parallel execution at every size.
	Threshold int
}

// HostPlan exposes the staged FFT decomposition for direct numeric use on
// the host, without the machine simulation: the same kernels the
// simulated codelets execute, callable as a plain FFT library.
//
// A HostPlan is immutable after construction (SetParallel replaces the
// engine wholesale), so one plan may serve concurrent Transform or
// ParallelTransform calls on distinct data arrays.
type HostPlan struct {
	pl  *fft.Plan
	w   []complex128
	eng *host.Engine
}

// NewHostPlan builds a host-side plan for n-point transforms with
// taskSize-point kernels (64, the paper's sweet spot, is a good default).
func NewHostPlan(n, taskSize int) (*HostPlan, error) {
	pl, err := fft.NewPlan(n, taskSize)
	if err != nil {
		return nil, err
	}
	return &HostPlan{pl: pl, w: fft.Twiddles(n), eng: host.New(host.Config{})}, nil
}

// N returns the transform length.
func (h *HostPlan) N() int { return h.pl.N }

// Workers returns the worker count the parallel engine resolved.
func (h *HostPlan) Workers() int { return h.eng.Workers() }

// SetParallel reconfigures the parallel engine. Call before handing the
// plan to concurrent users.
func (h *HostPlan) SetParallel(cfg ParallelConfig) {
	h.eng = host.New(host.Config{Workers: cfg.Workers, Threshold: cfg.Threshold})
}

// Transform applies the forward FFT in place. len(data) must equal N.
func (h *HostPlan) Transform(data []complex128) { h.pl.Transform(data, h.w) }

// Inverse applies the inverse FFT in place.
func (h *HostPlan) Inverse(data []complex128) { h.pl.InverseTransform(data, h.w) }

// ParallelTransform applies the forward FFT in place, sharding each
// stage's butterfly tasks across the engine's workers (serial fallback
// below the threshold). Output is bitwise identical to Transform.
func (h *HostPlan) ParallelTransform(data []complex128) { h.eng.Transform(h.pl, data, h.w) }

// ParallelInverse applies the inverse FFT in place on the parallel
// engine. Output is bitwise identical to Inverse.
func (h *HostPlan) ParallelInverse(data []complex128) { h.eng.InverseTransform(h.pl, data, h.w) }

// HostPlan2D is the 2-D row-column analogue of HostPlan.
type HostPlan2D struct {
	pl  *fft.Plan2D
	eng *host.Engine
}

// NewHostPlan2D builds a host-side plan for rows×cols transforms.
func NewHostPlan2D(rows, cols, taskSize int) (*HostPlan2D, error) {
	pl, err := fft.NewPlan2D(rows, cols, taskSize)
	if err != nil {
		return nil, err
	}
	return &HostPlan2D{pl: pl, eng: host.New(host.Config{})}, nil
}

// SetParallel reconfigures the parallel engine. Call before handing the
// plan to concurrent users.
func (h *HostPlan2D) SetParallel(cfg ParallelConfig) {
	h.eng = host.New(host.Config{Workers: cfg.Workers, Threshold: cfg.Threshold})
}

// Workers returns the worker count the parallel engine resolved.
func (h *HostPlan2D) Workers() int { return h.eng.Workers() }

// Transform applies the forward 2-D FFT in place (row-major data).
func (h *HostPlan2D) Transform(data []complex128) { h.pl.Transform(data) }

// Inverse applies the inverse 2-D FFT in place.
func (h *HostPlan2D) Inverse(data []complex128) { h.pl.InverseTransform(data) }

// ParallelTransform applies the forward 2-D FFT in place, sharding rows
// then columns across the engine's workers. Output is bitwise identical
// to Transform.
func (h *HostPlan2D) ParallelTransform(data []complex128) { h.eng.Transform2D(h.pl, data) }

// ParallelInverse applies the inverse 2-D FFT in place on the parallel
// engine. Output is bitwise identical to Inverse.
func (h *HostPlan2D) ParallelInverse(data []complex128) { h.eng.InverseTransform2D(h.pl, data) }

// DFT computes the discrete Fourier transform directly in O(n²) — the
// ground-truth reference (any length).
func DFT(x []complex128) []complex128 { return fft.DFT(x) }

// FFT computes the transform of a power-of-two-length input with the
// recursive Cooley-Tukey algorithm, allocating the result.
func FFT(x []complex128) []complex128 { return fft.Recursive(x) }

// IFFT computes the inverse transform, allocating the result.
func IFFT(x []complex128) []complex128 { return fft.Inverse(x) }

// StockhamFFT computes the transform of a power-of-two-length input with the
// radix-2 Stockham autosort algorithm (no bit-reversal pass), allocating
// the result.
func StockhamFFT(x []complex128) []complex128 { return fft.Stockham(x) }
