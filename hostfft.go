package codeletfft

import (
	"codeletfft/internal/fft"
)

// HostPlan exposes the staged FFT decomposition for direct numeric use on
// the host, without the machine simulation: the same kernels the
// simulated codelets execute, callable as a plain FFT library.
type HostPlan struct {
	pl *fft.Plan
	w  []complex128
}

// NewHostPlan builds a host-side plan for n-point transforms with
// taskSize-point kernels (64, the paper's sweet spot, is a good default).
func NewHostPlan(n, taskSize int) (*HostPlan, error) {
	pl, err := fft.NewPlan(n, taskSize)
	if err != nil {
		return nil, err
	}
	return &HostPlan{pl: pl, w: fft.Twiddles(n)}, nil
}

// N returns the transform length.
func (h *HostPlan) N() int { return h.pl.N }

// Transform applies the forward FFT in place. len(data) must equal N.
func (h *HostPlan) Transform(data []complex128) { h.pl.Transform(data, h.w) }

// Inverse applies the inverse FFT in place.
func (h *HostPlan) Inverse(data []complex128) { h.pl.InverseTransform(data, h.w) }

// HostPlan2D is the 2-D row-column analogue of HostPlan.
type HostPlan2D struct{ pl *fft.Plan2D }

// NewHostPlan2D builds a host-side plan for rows×cols transforms.
func NewHostPlan2D(rows, cols, taskSize int) (*HostPlan2D, error) {
	pl, err := fft.NewPlan2D(rows, cols, taskSize)
	if err != nil {
		return nil, err
	}
	return &HostPlan2D{pl: pl}, nil
}

// Transform applies the forward 2-D FFT in place (row-major data).
func (h *HostPlan2D) Transform(data []complex128) { h.pl.Transform(data) }

// Inverse applies the inverse 2-D FFT in place.
func (h *HostPlan2D) Inverse(data []complex128) { h.pl.InverseTransform(data) }

// DFT computes the discrete Fourier transform directly in O(n²) — the
// ground-truth reference (any length).
func DFT(x []complex128) []complex128 { return fft.DFT(x) }

// FFT computes the transform of a power-of-two-length input with the
// recursive Cooley-Tukey algorithm, allocating the result.
func FFT(x []complex128) []complex128 { return fft.Recursive(x) }

// IFFT computes the inverse transform, allocating the result.
func IFFT(x []complex128) []complex128 { return fft.Inverse(x) }

// StockhamFFT computes the transform with the radix-2 Stockham autosort
// algorithm (no bit-reversal pass), allocating the result.
func StockhamFFT(x []complex128) []complex128 { return fft.Stockham(x) }
