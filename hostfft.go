package codeletfft

import (
	"context"
	"sync"
	"sync/atomic"

	"codeletfft/internal/cache"
	"codeletfft/internal/fft"
	"codeletfft/internal/host"
	"codeletfft/internal/tune"
)

// Sentinel errors re-exported from the core package so callers can test
// failure modes with errors.Is without importing internal packages.
// Length-mismatch panics raised by Transform and friends carry an error
// value wrapping ErrLengthMismatch.
var (
	// ErrUnsupportedLength reports a transform length no planner accepts:
	// non-positive everywhere, odd or < 4 for the real-input path,
	// non-power-of-two for the 2-D path. Complex 1-D plans support every
	// n ≥ 1, so NewHostPlan only returns it for n < 1.
	ErrUnsupportedLength = fft.ErrUnsupportedLength
	// ErrBadTaskSize reports a task size that is not a power of two ≥ 2
	// or exceeds the transform length.
	ErrBadTaskSize = fft.ErrBadTaskSize
	// ErrLengthMismatch reports a data slice whose length does not match
	// the plan. It is delivered by panic, not by return value, because it
	// is a programming error rather than an environmental condition.
	ErrLengthMismatch = fft.ErrLengthMismatch
)

// Kernel selects the butterfly factorization a plan runs: KernelAuto
// (the default) lets the autotuner race the concrete kernels for the
// plan's (N, task size, workers) shape on first use and memoize the
// winner; the other values pin one factorization. All kernels compute
// the same DFT over the same staged decomposition — outputs of one plan
// are bitwise deterministic, outputs of different kernels agree to
// rounding.
type Kernel = fft.Kernel

// Kernel values for WithKernel.
const (
	KernelAuto       = fft.KernelAuto
	KernelRadix2     = fft.KernelRadix2
	KernelRadix4     = fft.KernelRadix4
	KernelSplitRadix = fft.KernelSplitRadix
	KernelSoARadix2  = fft.KernelSoARadix2
	KernelSoARadix4  = fft.KernelSoARadix4
)

// Kernels lists the concrete (executable) kernels in a stable order —
// the candidate set KernelAuto picks from.
func Kernels() []Kernel { return fft.ConcreteKernels() }

// ParseKernel maps kernel names ("auto", "radix2", "radix4",
// "splitradix", "soa2", "soa4"; case-insensitive, "split-radix",
// "soa-radix2", "soa-radix4" and plain "soa" accepted) to Kernel
// values — the -kernel flag parser of the daemons.
func ParseKernel(s string) (Kernel, error) { return fft.ParseKernel(s) }

// Acceleration names the SIMD codelet backend the SoA kernels
// (KernelSoARadix2, KernelSoARadix4) run on in this process:
// "avx2+fma", "neon", or "generic" when the binary was built with the
// noasm tag or the CPU lacks the features. The scalar kernels are
// unaffected by it; KernelAuto measures whatever backend is active, so
// a "generic" process simply tunes away from the SoA family when the
// pure-Go loops lose.
func Acceleration() string { return fft.SoAAccel() }

// Plan is the one interface every transform provider implements: host
// plans (NewHostPlan), cached host plans (CachedHostPlan), and the
// cluster client (cluster.New) alike. Methods transform in place.
//
// Host plans never return errors from these methods — invalid lengths
// are programming errors and panic (wrapping ErrLengthMismatch) — while
// the cluster client surfaces transport failures; code written against
// Plan handles the error and works unchanged against either.
//
// The Ctx variants check the context before starting; once a transform
// is running it completes (data is never left torn mid-transform).
// Providers with genuinely cancellable work (the cluster client) honor
// the context throughout.
type Plan interface {
	Transform(data []complex128) error
	Inverse(data []complex128) error
	TransformBatch(batch [][]complex128) error
	InverseBatch(batch [][]complex128) error
	TransformCtx(ctx context.Context, data []complex128) error
	InverseCtx(ctx context.Context, data []complex128) error
}

var _ Plan = (*HostPlan)(nil)

// hostOpts is the resolved option set for plan construction.
type hostOpts struct {
	taskSize  int
	workers   int
	threshold int
	observer  EngineObserver
	kern      Kernel
}

// EngineObserver receives execution telemetry from a plan's parallel
// engine: one ObserveBatch call per batched dispatch (its occupancy and
// wall time) and one ObservePass call per lockstep pass (bit-reversal,
// each butterfly stage, the inverse path's conjugate/scale sweeps).
// Implementations must be cheap and safe for concurrent use; the
// serving daemon backs one with atomic histogram instruments.
type EngineObserver = host.Observer

// HostOption configures NewHostPlan, NewHostPlan2D, NewRealPlan, and
// their Cached variants.
type HostOption func(*hostOpts)

// WithTaskSize selects the P-point kernel size of the staged
// decomposition (the paper's codelet size). It must be a power of two
// between 2 and the transform length; 64 — the paper's sweet spot — is
// the default. For a transform shorter than the default, the task size
// is clamped to the transform length. Mixed-radix and Bluestein plans
// (non-power-of-two lengths) have no task-size knob and ignore it.
func WithTaskSize(p int) HostOption {
	return func(o *hostOpts) { o.taskSize = p }
}

// WithWorkers sets the goroutine count of the parallel engine behind
// Transform, TransformBatch, and friends. 0 (the default) means
// GOMAXPROCS.
func WithWorkers(n int) HostOption {
	return func(o *hostOpts) { o.workers = n }
}

// WithThreshold sets the minimum element count (N for a single
// transform, B·N for a batch) at which the parallel path engages;
// smaller workloads run serially, where dispatch overhead would
// dominate. 0 means the package default (8192); 1 forces the parallel
// path at every size.
func WithThreshold(n int) HostOption {
	return func(o *hostOpts) { o.threshold = n }
}

// WithObserver attaches an EngineObserver to the plan's parallel
// engine, so the batch and parallel paths report occupancy and
// per-pass latency instead of being measured from outside.
func WithObserver(obs EngineObserver) HostOption {
	return func(o *hostOpts) { o.observer = obs }
}

// WithKernel pins the butterfly kernel (KernelRadix2, KernelRadix4,
// KernelSplitRadix) or requests autotuned selection (KernelAuto, the
// default): on the plan's first transform the candidates are raced once
// on this plan's exact execution configuration and the winner is
// memoized process-wide per (N, task size, workers) — later plans of
// the same shape reuse it without measuring.
func WithKernel(k Kernel) HostOption {
	return func(o *hostOpts) { o.kern = k }
}

func resolveOpts(n int, opts []HostOption) hostOpts {
	o := hostOpts{taskSize: min(64, n)}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// engine builds the parallel engine the resolved options describe.
func (o hostOpts) engine() *host.Engine {
	return host.New(host.Config{Workers: o.workers, Threshold: o.threshold, Observer: o.observer})
}

// hostCore is the immutable, shareable part of a HostPlan: the plan the
// length routed to, the twiddle table, and the lazily built real-input
// plan. CachedHostPlan hands the same core to many HostPlans; only the
// engine differs per plan. Exactly one of pl (power-of-two staged
// decomposition), mixed (mixed-radix Stockham schedule), and blue
// (Bluestein chirp-z embedding) is non-nil.
type hostCore struct {
	n     int
	pl    *fft.Plan
	w     []complex128
	mixed *fft.MixedPlan
	blue  *fft.BluesteinPlan
}

// newHostCore routes a length to its planner: powers of two ≥ 2 keep
// the staged decomposition (bitwise-identical to every prior release),
// lengths factoring over {2,3,5,7} get the mixed-radix plan, and
// everything else ≥ 1 gets the Bluestein fallback. Only n < 1 fails.
func newHostCore(n, taskSize int) (*hostCore, error) {
	if n >= 2 && n&(n-1) == 0 {
		pl, err := fft.NewPlan(n, taskSize)
		if err != nil {
			return nil, err
		}
		return &hostCore{n: n, pl: pl, w: fft.Twiddles(n)}, nil
	}
	mp, err := fft.NewMixedPlan(n)
	if err == nil {
		return &hostCore{n: n, mixed: mp}, nil
	}
	if n < 1 {
		return nil, err
	}
	bp, err := fft.NewBluesteinPlan(n)
	if err != nil {
		return nil, err
	}
	return &hostCore{n: n, blue: bp}, nil
}

// planKey identifies a cached core: transform length, task size, the
// requested kernel (including KernelAuto — an Auto plan and a pinned
// plan are distinct cache entries, so pinning a kernel for one caller
// can never change what another caller's Auto plan resolved), and the
// radix signature of the length, so a mixed-radix core and a Bluestein
// core can never alias even under hash collisions on n.
type planKey struct {
	n, p int
	kern Kernel
	sig  uint64
}

func planKeyHash(k planKey) uint64 {
	h := uint64(k.n)*0x9e3779b97f4a7c15 ^ uint64(k.p)*0xbf58476d1ce4e5b9 ^ uint64(k.kern)*0xff51afd7ed558ccd
	h ^= k.sig * 0xd6e8feb86659fd93
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	return h ^ h>>32
}

// coreKey builds the cache key for a length: non-power-of-two lengths
// ignore the task size (the mixed/Bluestein planners don't take one),
// so callers differing only in WithTaskSize share one core.
func coreKey(n int, o hostOpts) planKey {
	p := o.taskSize
	if n < 2 || n&(n-1) != 0 {
		p = 0
	}
	return planKey{n: n, p: p, kern: o.kern, sig: fft.RadixSignature(n)}
}

// planCache memoizes plan cores across CachedHostPlan calls. 8 shards ×
// 16 entries bounds it at 128 cores; serving workloads use a handful of
// sizes, so eviction is rare in practice.
var planCache = cache.New[planKey, *hostCore](8, 16, planKeyHash)

// realCache memoizes real-input cores across CachedRealPlan calls,
// bounded the same way as planCache.
var realCache = cache.New[planKey, realCore](8, 16, planKeyHash)

// PlanCacheLen reports how many plan cores CachedHostPlan currently
// retains — an observability hook for serving systems.
func PlanCacheLen() int { return planCache.Len() }

// PlanCacheStats reports the plan cache's lifetime hit and miss counts
// — the companion observability hook to PlanCacheLen. A CachedHostPlan
// call that reuses (or joins the single-flight construction of) a core
// counts as a hit; one that starts construction counts as a miss.
func PlanCacheStats() (hits, misses int64) { return planCache.Stats() }

// HostPlan exposes the staged FFT decomposition for direct numeric use on
// the host, without the machine simulation: the same kernels the
// simulated codelets execute, callable as a plain FFT library.
//
// A HostPlan is immutable after construction, so one plan may serve
// concurrent Transform or TransformBatch calls on distinct data arrays.
// Transform runs on the plan's parallel engine — sharded across workers
// above the threshold, serial below it, bitwise identical either way.
type HostPlan struct {
	core *hostCore
	eng  *host.Engine
	opts hostOpts
	kern atomic.Int32 // resolved concrete kernel; 0 until first use
}

// NewHostPlan builds a host-side plan for n-point transforms, any
// n ≥ 1. Powers of two run the staged decomposition (64-point kernels
// by default, clamped to n); other lengths factoring over {2, 3, 5, 7}
// run the mixed-radix Stockham schedule (WithTaskSize is ignored); and
// lengths with larger prime factors run the Bluestein chirp-z plan,
// whose embedded power-of-two convolution still honors WithKernel. All
// paths use a GOMAXPROCS parallel engine by default; functional options
// override each knob:
//
//	p, err := codeletfft.NewHostPlan(1<<20,
//	    codeletfft.WithTaskSize(64),
//	    codeletfft.WithWorkers(8),
//	    codeletfft.WithKernel(codeletfft.KernelSplitRadix))
func NewHostPlan(n int, opts ...HostOption) (*HostPlan, error) {
	o := resolveOpts(n, opts)
	core, err := newHostCore(n, o.taskSize)
	if err != nil {
		return nil, err
	}
	return &HostPlan{core: core, eng: o.engine(), opts: o}, nil
}

// CachedHostPlan is NewHostPlan backed by a process-wide, size-bounded,
// concurrency-safe plan cache keyed by (n, task size, kernel). Repeated
// calls for one shape share the stage decomposition and twiddle table —
// concurrent first calls run plan construction once (single-flight) —
// so serving code can call it per request instead of hand-managing
// plan lifetimes. The engine options (WithWorkers, WithThreshold) are
// still applied per returned plan, and an Auto plan's tuned kernel is
// memoized per (n, task size, workers), so a cache-resolved plan never
// re-measures a shape the process has already tuned.
func CachedHostPlan(n int, opts ...HostOption) (*HostPlan, error) {
	o := resolveOpts(n, opts)
	core, err := planCache.GetOrCreate(coreKey(n, o), func() (*hostCore, error) {
		return newHostCore(n, o.taskSize)
	})
	if err != nil {
		return nil, err
	}
	return &HostPlan{core: core, eng: o.engine(), opts: o}, nil
}

// N returns the transform length.
func (h *HostPlan) N() int { return h.core.n }

// TaskSize returns the P-point kernel size of the staged power-of-two
// decomposition, or 0 for mixed-radix and Bluestein plans, which have
// no task-size knob.
func (h *HostPlan) TaskSize() int {
	if h.core.pl == nil {
		return 0
	}
	return h.core.pl.P
}

// Algorithm names the decomposition the length routed to: "staged" for
// powers of two, "mixed-radix[…]" with the radix schedule, or
// "bluestein[M=…]" with the embedded convolution length.
func (h *HostPlan) Algorithm() string {
	switch {
	case h.core.pl != nil:
		return "staged"
	case h.core.mixed != nil:
		return h.core.mixed.String()
	default:
		return h.core.blue.String()
	}
}

// Workers returns the worker count the parallel engine resolved.
func (h *HostPlan) Workers() int { return h.eng.Workers() }

// Kernel returns the concrete kernel this plan runs, resolving
// KernelAuto through the autotuner if no transform has run yet.
func (h *HostPlan) Kernel() Kernel { return h.kernel() }

// kernel resolves the plan's concrete kernel on first use. For a pinned
// kernel this is a plain conversion; for KernelAuto it asks the tuner,
// which memoizes per (N, task size, workers) process-wide and runs the
// measurement single-flight. The measurement drives an observer-free
// engine with this plan's workers and threshold, so tuning runs don't
// pollute serving telemetry.
func (h *HostPlan) kernel() fft.Kernel {
	if k := h.kern.Load(); k != 0 {
		return fft.Kernel(k)
	}
	var k fft.Kernel
	switch {
	case h.core.pl != nil:
		k = resolveKernel(h.opts, h.core.pl, h.core.w)
	case h.core.blue != nil:
		// The Bluestein plan's heavy lifting is its embedded M-point
		// convolution, so that is the shape the tuner races.
		k = resolveKernel(h.opts, h.core.blue.Conv, h.core.blue.WConv)
	default:
		// Mixed-radix stages have their own codelets per radix; the
		// kernel family doesn't apply, so Auto resolves to the default
		// without measuring.
		k = h.opts.kern.Concrete()
	}
	h.kern.Store(int32(k))
	return k
}

func resolveKernel(o hostOpts, pl *fft.Plan, w []complex128) fft.Kernel {
	if o.kern != fft.KernelAuto {
		return o.kern.Concrete()
	}
	meas := host.New(host.Config{Workers: o.workers, Threshold: o.threshold})
	return tune.Resolve(
		tune.Key{N: pl.N, TaskSize: pl.P, Workers: meas.Workers()},
		fft.ConcreteKernels(),
		func(k fft.Kernel, data []complex128) { meas.TransformKernel(pl, data, w, k) })
}

// Transform applies the forward FFT in place on the plan's parallel
// engine (serial below the threshold; bitwise identical either way).
// len(data) must equal N; a mismatch panics with an error wrapping
// ErrLengthMismatch. The returned error is always nil for host plans —
// it exists so HostPlan satisfies Plan alongside the cluster client.
func (h *HostPlan) Transform(data []complex128) error {
	switch {
	case h.core.pl != nil:
		h.eng.TransformKernel(h.core.pl, data, h.core.w, h.kernel())
	case h.core.mixed != nil:
		h.eng.MixedTransform(h.core.mixed, data)
	default:
		h.eng.BluesteinTransform(h.core.blue, data, h.kernel())
	}
	return nil
}

// Inverse applies the inverse FFT in place. See Transform for the
// error and panic contract.
func (h *HostPlan) Inverse(data []complex128) error {
	switch {
	case h.core.pl != nil:
		h.eng.InverseTransformKernel(h.core.pl, data, h.core.w, h.kernel())
	case h.core.mixed != nil:
		h.eng.MixedInverse(h.core.mixed, data)
	default:
		h.eng.BluesteinInverse(h.core.blue, data, h.kernel())
	}
	return nil
}

// TransformCtx is Transform with a pre-flight context check: a done
// context returns its error without touching data; once the transform
// starts it runs to completion (in-place data is never left torn).
func (h *HostPlan) TransformCtx(ctx context.Context, data []complex128) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.Transform(data)
}

// InverseCtx is Inverse with a pre-flight context check.
func (h *HostPlan) InverseCtx(ctx context.Context, data []complex128) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.Inverse(data)
}

// TransformBatch applies the forward FFT in place to every transform in
// batch through one worker-pool dispatch: workers steal (transform,
// task-chunk) units within each lockstep stage pass, so B transforms
// cost the stage-barrier overhead of one. Every slice must have length
// N; a bad row panics with an error wrapping ErrLengthMismatch that
// names the row's batch index. Output is bitwise identical to calling
// Transform in a loop, and the steady-state path performs no
// allocation.
func (h *HostPlan) TransformBatch(batch [][]complex128) error {
	switch {
	case h.core.pl != nil:
		h.eng.TransformBatchKernel(h.core.pl, batch, h.core.w, h.kernel())
	case h.core.mixed != nil:
		h.eng.MixedTransformBatch(h.core.mixed, batch)
	default:
		h.eng.BluesteinTransformBatch(h.core.blue, batch, h.kernel())
	}
	return nil
}

// InverseBatch applies the inverse FFT in place to every transform in
// batch through one worker-pool dispatch. Output is bitwise identical
// to calling Inverse in a loop.
func (h *HostPlan) InverseBatch(batch [][]complex128) error {
	switch {
	case h.core.pl != nil:
		h.eng.InverseBatchKernel(h.core.pl, batch, h.core.w, h.kernel())
	case h.core.mixed != nil:
		h.eng.MixedInverseBatch(h.core.mixed, batch)
	default:
		h.eng.BluesteinInverseBatch(h.core.blue, batch, h.kernel())
	}
	return nil
}

// RealPlan transforms length-N real signals through the packed
// N/2-point complex path on a parallel engine. Any even n ≥ 4 is
// accepted: powers of two run the fused staged path (bitwise identical
// to prior releases), other even lengths pack into an N/2-point
// mixed-radix or Bluestein half plan with the same O(N) split pass —
// the real surface is no longer power-of-two-only. It is built with
// the same HostOption set as HostPlan (task size, workers, threshold,
// observer, kernel) and resolves its kernel the same way: autotuned on
// first use under KernelAuto, pinned otherwise.
//
// A RealPlan is immutable after construction and safe for concurrent
// use on distinct buffers.
type RealPlan struct {
	rp   *fft.RealPlan  // staged power-of-two path; nil on the general path
	gen  *fft.RealSplit // general even-N split pass; nil on the staged path
	half *HostPlan      // general path's N/2-point plan
	eng  *host.Engine
	opts hostOpts
	kern atomic.Int32
	pool sync.Pool // *realScratch, general path only
}

// realScratch is the general real path's per-call state: the inverse
// pass's N/2 work buffer and a reusable batch-of-1 header, so the
// steady-state Transform/Inverse cycle performs no allocation.
type realScratch struct {
	work  []complex128
	batch [][]complex128
}

// realCore is what realCache memoizes: exactly one of the staged plan
// and the general split is non-nil, mirroring the facade RealPlan.
type realCore struct {
	rp  *fft.RealPlan
	gen *fft.RealSplit
}

func (c realCore) n() int {
	if c.rp != nil {
		return c.rp.N
	}
	return c.gen.N
}

// newRealCore routes a real-input length: powers of two ≥ 4 build the
// fused staged plan, other even lengths ≥ 4 build the split-pass
// tables (their half transform is a HostPlan). Odd or < 4 fails with
// ErrUnsupportedLength.
func newRealCore(n, taskSize int) (realCore, error) {
	if n >= 4 && n&(n-1) == 0 {
		rp, err := fft.NewRealPlan(n, taskSize)
		if err != nil {
			return realCore{}, err
		}
		return realCore{rp: rp}, nil
	}
	gen, err := fft.NewRealSplit(n)
	if err != nil {
		return realCore{}, err
	}
	return realCore{gen: gen}, nil
}

// newRealPlan assembles the facade plan around a routed core; the
// general path builds (or cache-shares) its N/2-point half plan here.
func newRealPlan(core realCore, o hostOpts, opts []HostOption, cached bool) (*RealPlan, error) {
	r := &RealPlan{rp: core.rp, gen: core.gen, opts: o}
	if core.rp != nil {
		r.eng = o.engine()
		return r, nil
	}
	h := core.gen.N / 2
	var half *HostPlan
	var err error
	if cached {
		half, err = CachedHostPlan(h, opts...)
	} else {
		half, err = NewHostPlan(h, opts...)
	}
	if err != nil {
		return nil, err
	}
	r.half = half
	r.eng = half.eng
	r.pool.New = func() any {
		return &realScratch{work: make([]complex128, h), batch: make([][]complex128, 1)}
	}
	return r, nil
}

// NewRealPlan builds a real-input plan for n-point transforms, any even
// n ≥ 4.
func NewRealPlan(n int, opts ...HostOption) (*RealPlan, error) {
	o := resolveOpts(n, opts)
	core, err := newRealCore(n, o.taskSize)
	if err != nil {
		return nil, err
	}
	return newRealPlan(core, o, opts, false)
}

// CachedRealPlan is NewRealPlan backed by a process-wide cache keyed by
// (n, task size, kernel), sharing the packed plan and twiddle tables
// across calls the way CachedHostPlan shares cores. The general even-N
// path additionally shares its N/2-point half core through the plan
// cache.
func CachedRealPlan(n int, opts ...HostOption) (*RealPlan, error) {
	o := resolveOpts(n, opts)
	core, err := realCache.GetOrCreate(coreKey(n, o), func() (realCore, error) {
		return newRealCore(n, o.taskSize)
	})
	if err != nil {
		return nil, err
	}
	return newRealPlan(core, o, opts, true)
}

// N returns the real-input length.
func (r *RealPlan) N() int {
	if r.rp != nil {
		return r.rp.N
	}
	return r.gen.N
}

// SpectrumLen returns N/2+1, the half-spectrum buffer length Transform
// fills and Inverse consumes.
func (r *RealPlan) SpectrumLen() int { return r.N()/2 + 1 }

// Algorithm names the path the length routed to: "real+staged" for
// powers of two, otherwise "real+" followed by the half plan's
// algorithm (mixed-radix schedule or Bluestein embedding).
func (r *RealPlan) Algorithm() string {
	if r.rp != nil {
		return "real+staged"
	}
	return "real+" + r.half.Algorithm()
}

// Workers returns the worker count the parallel engine resolved.
func (r *RealPlan) Workers() int { return r.eng.Workers() }

// Kernel returns the concrete kernel this plan runs, resolving
// KernelAuto through the autotuner if no transform has run yet. The
// tuning shape is the packed N/2-point half transform, so real and
// complex plans of matching half shapes share one memoized winner.
func (r *RealPlan) Kernel() Kernel { return r.kernel() }

func (r *RealPlan) kernel() fft.Kernel {
	if r.rp == nil {
		return r.half.kernel()
	}
	if k := r.kern.Load(); k != 0 {
		return fft.Kernel(k)
	}
	k := resolveKernel(r.opts, r.rp.Half, r.rp.WHalf)
	r.kern.Store(int32(k))
	return k
}

// Transform computes the half-spectrum of the length-N real signal x
// into spec (length SpectrumLen). x is not modified; wrong-length
// buffers panic with an error wrapping ErrLengthMismatch. The error is
// always nil — it mirrors the Plan interface convention.
func (r *RealPlan) Transform(spec []complex128, x []float64) error {
	if r.rp != nil {
		r.eng.RealTransformKernel(r.rp, spec, x, r.kernel())
		return nil
	}
	r.gen.Pack(spec, x)
	sc := r.pool.Get().(*realScratch)
	sc.batch[0] = spec[:r.gen.N/2]
	err := r.half.TransformBatch(sc.batch)
	sc.batch[0] = nil
	r.pool.Put(sc)
	if err != nil {
		return err
	}
	r.gen.Unpack(spec)
	return nil
}

// Inverse recovers the length-N real signal x from its half-spectrum
// spec, inverting Transform. spec is not modified.
func (r *RealPlan) Inverse(x []float64, spec []complex128) error {
	if r.rp != nil {
		r.eng.RealInverseKernel(r.rp, x, spec, r.kernel())
		return nil
	}
	sc := r.pool.Get().(*realScratch)
	defer func() {
		sc.batch[0] = nil
		r.pool.Put(sc)
	}()
	r.gen.PreInverse(sc.work, spec)
	sc.batch[0] = sc.work
	if err := r.half.InverseBatch(sc.batch); err != nil {
		return err
	}
	r.gen.PostInverse(x, sc.work)
	return nil
}

// TransformCtx is Transform with a pre-flight context check.
func (r *RealPlan) TransformCtx(ctx context.Context, spec []complex128, x []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.Transform(spec, x)
}

// InverseCtx is Inverse with a pre-flight context check.
func (r *RealPlan) InverseCtx(ctx context.Context, x []float64, spec []complex128) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.Inverse(x, spec)
}

// HostPlan2D is the 2-D row-column analogue of HostPlan. Transform and
// Inverse run on the plan's parallel engine with the plan's kernel.
type HostPlan2D struct {
	pl   *fft.Plan2D
	eng  *host.Engine
	opts hostOpts
	kern atomic.Int32
}

// NewHostPlan2D builds a host-side plan for rows×cols transforms. It
// accepts the same functional options as NewHostPlan; the task size is
// clamped to each axis length as needed by the row-column pass.
func NewHostPlan2D(rows, cols int, opts ...HostOption) (*HostPlan2D, error) {
	o := resolveOpts(min(rows, cols), opts)
	pl, err := fft.NewPlan2D(rows, cols, o.taskSize)
	if err != nil {
		return nil, err
	}
	return &HostPlan2D{pl: pl, eng: o.engine(), opts: o}, nil
}

// Workers returns the worker count the parallel engine resolved.
func (h *HostPlan2D) Workers() int { return h.eng.Workers() }

// Kernel returns the concrete kernel this plan runs. Auto resolution
// tunes on the row transform's shape (the hotter of the two passes).
func (h *HostPlan2D) Kernel() Kernel { return h.kernel() }

func (h *HostPlan2D) kernel() fft.Kernel {
	if k := h.kern.Load(); k != 0 {
		return fft.Kernel(k)
	}
	k := resolveKernel(h.opts, h.pl.RowPlan, h.pl.WRow)
	h.kern.Store(int32(k))
	return k
}

// Transform applies the forward 2-D FFT in place (row-major data) on
// the plan's parallel engine: rows sharded across workers, then
// columns. The error is always nil; wrong-length data panics with an
// error wrapping ErrLengthMismatch.
func (h *HostPlan2D) Transform(data []complex128) error {
	h.eng.Transform2DKernel(h.pl, data, h.kernel())
	return nil
}

// Inverse applies the inverse 2-D FFT in place.
func (h *HostPlan2D) Inverse(data []complex128) error {
	h.eng.InverseTransform2DKernel(h.pl, data, h.kernel())
	return nil
}

// DFT computes the discrete Fourier transform directly in O(n²) — the
// ground-truth reference (any length).
func DFT(x []complex128) []complex128 { return fft.DFT(x) }

// FFT computes the transform of a power-of-two-length input with the
// recursive Cooley-Tukey algorithm, allocating the result.
func FFT(x []complex128) []complex128 { return fft.Recursive(x) }

// IFFT computes the inverse transform, allocating the result.
func IFFT(x []complex128) []complex128 { return fft.Inverse(x) }

// StockhamFFT computes the transform of a power-of-two-length input with the
// radix-2 Stockham autosort algorithm (no bit-reversal pass), allocating
// the result.
func StockhamFFT(x []complex128) []complex128 { return fft.Stockham(x) }
