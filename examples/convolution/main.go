// FFT-based convolution: filter a chirp with a moving-average kernel via
// the convolution theorem (multiply spectra, inverse transform) and
// verify against direct time-domain convolution. Exercises forward and
// inverse transforms of the staged plan on a realistic DSP pipeline.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"codeletfft/internal/fft"
	"codeletfft/internal/workload"
)

func main() {
	const n = 1 << 12
	const kernelLen = 31

	signal := workload.Chirp(n, 8, 400)

	// Moving-average kernel, zero-padded to n (circular convolution).
	kernel := make([]complex128, n)
	for i := 0; i < kernelLen; i++ {
		kernel[i] = complex(1.0/kernelLen, 0)
	}

	plan, err := fft.NewPlan(n, 64)
	if err != nil {
		log.Fatal(err)
	}
	w := fft.Twiddles(n)

	// Frequency domain: conv = IFFT(FFT(x) ∘ FFT(h)).
	xs := append([]complex128(nil), signal...)
	hs := append([]complex128(nil), kernel...)
	plan.Transform(xs, w)
	plan.Transform(hs, w)
	for i := range xs {
		xs[i] *= hs[i]
	}
	plan.InverseTransform(xs, w)

	// Direct circular convolution for verification.
	direct := make([]complex128, n)
	for i := 0; i < n; i++ {
		var sum complex128
		for k := 0; k < kernelLen; k++ {
			sum += kernel[k] * signal[(i-k+n)%n]
		}
		direct[i] = sum
	}

	err2 := fft.MaxError(xs, direct)
	if err2 > 1e-9 {
		log.Fatalf("convolution mismatch: max error %g", err2)
	}

	var inRMS, outRMS float64
	for i := range signal {
		inRMS += cmplx.Abs(signal[i]) * cmplx.Abs(signal[i])
		outRMS += cmplx.Abs(xs[i]) * cmplx.Abs(xs[i])
	}
	fmt.Printf("filtered %d-sample chirp with a %d-tap moving average\n", n, kernelLen)
	fmt.Printf("FFT convolution matches direct convolution (max error %.3g)\n", err2)
	fmt.Printf("energy in/out: %.1f / %.1f (high frequencies attenuated)\n", inRMS, outRMS)
}
