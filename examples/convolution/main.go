// FFT-based convolution through the public API: filter a chirp with a
// moving-average kernel via ConvPlan's overlap-save linear convolution,
// verify against direct O(N·K) time-domain convolution, then run the
// same kernel as a streaming filter over arbitrary chunk sizes and
// check the two paths agree sample for sample.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"codeletfft"
	"codeletfft/internal/workload"
)

func main() {
	const n = 1 << 12
	const kernelLen = 31

	signal := workload.Chirp(n, 8, 400)

	// Moving-average (boxcar) kernel: a crude low-pass filter.
	kernel := make([]complex128, kernelLen)
	for i := range kernel {
		kernel[i] = complex(1.0/kernelLen, 0)
	}

	plan, err := codeletfft.NewConvPlan(n, kernelLen)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]complex128, plan.OutLen())
	if err := plan.Convolve(out, signal, kernel); err != nil {
		log.Fatal(err)
	}

	// Direct linear convolution for verification.
	direct := make([]complex128, plan.OutLen())
	for i := range direct {
		var sum complex128
		for k := 0; k < kernelLen; k++ {
			if j := i - k; j >= 0 && j < n {
				sum += kernel[k] * signal[j]
			}
		}
		direct[i] = sum
	}
	var maxErr float64
	for i := range out {
		if d := cmplx.Abs(out[i] - direct[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-9 {
		log.Fatalf("convolution mismatch: max error %g", maxErr)
	}

	// The same kernel as a streaming filter: feed the signal in uneven
	// chunks and collect the filtered output incrementally.
	stream, err := plan.FilterStream(kernel)
	if err != nil {
		log.Fatal(err)
	}
	streamed := make([]complex128, 0, n)
	for off := 0; off < n; {
		c := min(517, n-off) // deliberately not a divisor of anything
		chunk := make([]complex128, c)
		if err := stream.Process(chunk, signal[off:off+c]); err != nil {
			log.Fatal(err)
		}
		streamed = append(streamed, chunk...)
		off += c
	}
	var streamErr float64
	for i := range streamed {
		if d := cmplx.Abs(streamed[i] - out[i]); d > streamErr {
			streamErr = d
		}
	}
	if streamErr > 1e-9 {
		log.Fatalf("stream/batch mismatch: max error %g", streamErr)
	}

	var inRMS, outRMS float64
	for i := range signal {
		inRMS += cmplx.Abs(signal[i]) * cmplx.Abs(signal[i])
		outRMS += cmplx.Abs(out[i]) * cmplx.Abs(out[i])
	}
	fmt.Printf("filtered %d-sample chirp with a %d-tap moving average\n", n, kernelLen)
	fmt.Printf("overlap-save (%d segments of %d) matches direct convolution (max error %.3g)\n",
		plan.Segments(), plan.SegmentLen(), maxErr)
	fmt.Printf("streaming filter matches batch convolution (max error %.3g)\n", streamErr)
	fmt.Printf("energy in/out: %.1f / %.1f (high frequencies attenuated)\n", inRMS, outRMS)
}
