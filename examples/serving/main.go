// Example serving sketches the request-serving workflow the options API
// targets: plans come from the process-wide cache instead of being
// hand-managed, same-size requests are batched through one dispatch,
// and real-valued signals take the packed half-size path.
//
//	go run ./examples/serving
//	go run ./examples/serving -logn 14 -batch 32 -workers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"codeletfft"
)

// tally is a minimal EngineObserver: it counts batch dispatches and
// per-pass engine time, the same hook the serving daemon uses to feed
// its /metrics histograms.
type tally struct {
	batches  atomic.Int64
	requests atomic.Int64
	passNS   atomic.Int64
}

func (t *tally) ObserveBatch(batch, n int, d time.Duration) {
	t.batches.Add(1)
	t.requests.Add(int64(batch))
}

func (t *tally) ObservePass(pass string, d time.Duration) {
	t.passNS.Add(d.Nanoseconds())
}

func main() {
	var (
		logN    = flag.Int("logn", 12, "transform length: N=2^logn")
		batch   = flag.Int("batch", 64, "requests per batch")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	n := 1 << *logN

	// One call per request: the (N, taskSize) core — stage decomposition
	// and twiddle tables — is built once and shared; only the lightweight
	// engine wrapper is per-call.
	obs := &tally{}
	h, err := codeletfft.CachedHostPlan(n,
		codeletfft.WithTaskSize(64),
		codeletfft.WithWorkers(*workers),
		codeletfft.WithThreshold(1),
		codeletfft.WithObserver(obs))
	if err != nil {
		log.Fatal(err)
	}
	again, err := codeletfft.CachedHostPlan(n, codeletfft.WithTaskSize(64))
	if err != nil {
		log.Fatal(err)
	}
	_ = again
	fmt.Printf("plan cache holds %d core(s) after two lookups of one shape\n\n",
		codeletfft.PlanCacheLen())

	// A batch of same-size complex requests through one dispatch.
	rng := rand.New(rand.NewSource(1))
	reqs := make([][]complex128, *batch)
	for r := range reqs {
		reqs[r] = make([]complex128, n)
		for i := range reqs[r] {
			reqs[r][i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	start := time.Now()
	if err := h.TransformBatch(reqs); err != nil {
		log.Fatal(err)
	}
	if err := h.InverseBatch(reqs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batched %d × N=2^%d forward+inverse in %v (%d workers)\n",
		*batch, *logN, time.Since(start), h.Workers())

	// A real-valued signal through the packed half-size path, via the
	// typed RealPlan facade (shares the cached half-size core).
	rp, err := codeletfft.CachedRealPlan(n,
		codeletfft.WithWorkers(*workers),
		codeletfft.WithThreshold(1),
		codeletfft.WithObserver(obs))
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)*5/float64(n)) + 0.5*rng.NormFloat64()
	}
	spec := make([]complex128, rp.SpectrumLen())
	if err := rp.Transform(spec, x); err != nil {
		log.Fatal(err)
	}
	peak, peakMag := 0, 0.0
	for k, c := range spec {
		if m := math.Hypot(real(c), imag(c)); m > peakMag {
			peak, peakMag = k, m
		}
	}
	back := make([]float64, n)
	if err := rp.Inverse(back, spec); err != nil {
		log.Fatal(err)
	}
	var rt float64
	for i := range back {
		if v := math.Abs(back[i] - x[i]); v > rt {
			rt = v
		}
	}
	fmt.Printf("real input: %d spectrum bins, peak at bin %d, round-trip error %.3g\n",
		len(spec), peak, rt)

	// The observer saw every engine dispatch above; the cache counters
	// saw every plan lookup. These are the exact numbers fftserved
	// exports on /metrics.
	hits, misses := codeletfft.PlanCacheStats()
	fmt.Printf("\ntelemetry: %d engine batches (%d transforms), %v in timed passes; plan cache %d hits / %d misses\n",
		obs.batches.Load(), obs.requests.Load(),
		time.Duration(obs.passNS.Load()), hits, misses)
}
