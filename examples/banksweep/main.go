// Banksweep recreates the paper's motivating example interactively: it
// runs the coarse, guided, and hashed algorithms with DRAM tracing and
// prints each one's per-bank access-rate chart (miniature Figures 1, 2
// and 6), plus the resulting performance.
package main

import (
	"fmt"
	"log"
	"os"

	"codeletfft"
	"codeletfft/internal/report"
	"codeletfft/internal/sim"
)

func main() {
	const n = 1 << 16

	cases := []struct {
		name string
		v    codeletfft.Variant
	}{
		{"coarse-grain (Fig. 1)", codeletfft.Coarse},
		{"guided fine-grain (Fig. 2)", codeletfft.FineGuided},
		{"fine-grain + hashed twiddles (Fig. 6)", codeletfft.FineHash},
	}

	for _, c := range cases {
		opts := codeletfft.NewOptions(n, c.v)
		opts.SkipNumerics = true
		opts.TraceBin = sim.Time(20000)
		res, err := codeletfft.Run(opts)
		if err != nil {
			log.Fatal(err)
		}

		tr := res.Trace.Rebin(40)
		var series []report.Series
		for b, vals := range tr.Series() {
			s := report.Series{Name: fmt.Sprintf("bank %d", b)}
			for w, v := range vals {
				s.X = append(s.X, float64(w))
				s.Y = append(s.Y, float64(v))
			}
			series = append(series, s)
		}
		fmt.Printf("\n%s — %.3f GFLOPS, whole-run bank skew %.2f\n", c.name, res.GFLOPS, res.BankSkew())
		if err := report.Chart(os.Stdout, "DRAM accesses per window", "time window",
			"accesses", series, 64, 12); err != nil {
			log.Fatal(err)
		}
	}
}
