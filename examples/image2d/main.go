// Image2d runs a 2-D FFT on the simulated Cyclops-64: it builds a small
// "image" containing a smooth gradient plus a periodic grating, runs the
// row-column transform through the codelet machinery (verified against a
// host 2-D FFT), and reports how the strided column pass compares to the
// contiguous row pass on the interleaved DRAM banks.
package main

import (
	"fmt"
	"log"

	"codeletfft"
)

func main() {
	const rows, cols = 256, 256

	res, err := codeletfft.Run2D(codeletfft.Options2D{
		Rows: rows, Cols: cols, TaskSize: 64, Check: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	rowC := res.RowCycles
	colC := res.Cycles - res.RowCycles
	fmt.Printf("2-D FFT of a %dx%d image on the simulated C64\n\n", rows, cols)
	fmt.Printf("  total        %d cycles (%.3f ms), %.3f GFLOPS\n",
		res.Cycles, res.Seconds*1e3, res.GFLOPS)
	fmt.Printf("  row pass     %d cycles (contiguous rows)\n", rowC)
	fmt.Printf("  column pass  %d cycles (stride-%d: whole columns on one bank)\n", colC, cols)
	fmt.Printf("  slowdown     %.2fx for the strided pass\n", float64(colC)/float64(rowC))
	fmt.Printf("  bank bytes   %v\n", res.BankBytes)
	fmt.Printf("  max error    %.3g (verified against a host 2-D FFT)\n", res.MaxError)
}
