// Example cluster runs a complete distributed FFT inside one process:
// a coordinator factoring transforms four-step over loopback workers
// speaking the real shard protocol. It demonstrates the public
// codeletfft/cluster API — transform, verify against the single-node
// engine, then kill the worker set mid-run and watch the coordinator
// degrade gracefully instead of failing.
//
//	go run ./examples/cluster
//	go run ./examples/cluster -logn 18 -workers 4 -hedge 1ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"
	"time"

	"codeletfft"
	"codeletfft/cluster"
)

func main() {
	var (
		logN    = flag.Int("logn", 16, "transform length: N=2^logn")
		workers = flag.Int("workers", 3, "loopback worker count")
		hedge   = flag.Duration("hedge", 0, "hedged-request delay (0 disables)")
	)
	flag.Parse()
	n := 1 << *logN

	cl, err := cluster.NewLoopback(*workers, cluster.Config{HedgeDelay: *hedge})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(1))
	signal := make([]complex128, n)
	for i := range signal {
		signal[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	// Reference: the single-node parallel engine on a copy.
	want := append([]complex128(nil), signal...)
	hp, err := codeletfft.CachedHostPlan(n)
	if err != nil {
		log.Fatal(err)
	}
	if err := hp.Transform(want); err != nil {
		log.Fatal(err)
	}

	// The same transform through the cluster: gathered into columns,
	// column FFTs + twiddles and row FFTs dispatched as shard RPCs to
	// the workers, transposed back.
	data := append([]complex128(nil), signal...)
	ctx := context.Background()
	start := time.Now()
	if err := cl.TransformCtx(ctx, data); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var worst float64
	for i := range data {
		if d := cmplx.Abs(data[i] - want[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("N=2^%d over %d workers: %v, max deviation from single node %.3g\n",
		*logN, *workers, elapsed, worst)

	// Round trip back to the input.
	if err := cl.InverseCtx(ctx, data); err != nil {
		log.Fatal(err)
	}
	var rt float64
	for i := range data {
		if d := cmplx.Abs(data[i] - signal[i]); d > rt {
			rt = d
		}
	}
	fmt.Printf("forward + inverse round trip error %.3g\n", rt)

	snap := cl.Snapshot()
	if elems := snap["dist_resident_elems_total"]; elems > 0 {
		// The communication-avoiding invariant: the coordinator's wire
		// carries each element once out and once back — 32 payload
		// bytes — plus a small fixed header/handshake overhead.
		fmt.Printf("resident sessions ok %v (fallbacks %v), coordinator wire %.2f bytes/element (payload floor 32)\n",
			snap["dist_resident_ok_total"], snap["dist_resident_fallback_total"],
			snap["dist_resident_bytes_total"]/elems)
	}
	fmt.Printf("one-shot shards %v, RPC attempts %v, retries %v, hedges %v\n",
		snap["dist_shards_total"], snap["dist_rpc_attempts_total"],
		snap["dist_retries_total"], snap["dist_hedges_total"])

	// Degradation: a cluster whose only worker is unreachable (nothing
	// listens on port 1) still answers every transform — failed shards
	// retry, exhaust the worker set, and run locally; once the worker's
	// circuit breaker trips, later shards skip the dead address
	// entirely. The client never sees a cluster-induced failure.
	down, err := cluster.New(cluster.Config{
		Workers:      []string{"http://127.0.0.1:1"},
		MaxAttempts:  2,
		ShardTimeout: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer down.Close()
	deg := append([]complex128(nil), signal...)
	if err := down.TransformCtx(ctx, deg); err != nil {
		log.Fatal(err)
	}
	var degWorst float64
	for i := range deg {
		if d := cmplx.Abs(deg[i] - want[i]); d > degWorst {
			degWorst = d
		}
	}
	dsnap := down.Snapshot()
	fmt.Printf("dead-worker cluster still answered (max deviation %.3g): rpc_errors=%v local_shards=%v degraded=%v\n",
		degWorst, dsnap["dist_rpc_errors_total"], dsnap["dist_local_shards_total"], dsnap["dist_degraded_total"])
}
