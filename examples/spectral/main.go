// Spectral analysis: synthesize a noisy multi-tone signal, transform it
// with the staged 64-point-codelet FFT (the paper's decomposition, run
// directly on the host), and recover the embedded tones from the power
// spectrum. Demonstrates the numeric API independent of the machine
// simulation.
package main

import (
	"fmt"
	"log"

	"codeletfft/internal/fft"
	"codeletfft/internal/workload"
)

func main() {
	const n = 1 << 14

	tones := []workload.Tone{
		{Bin: 441, Amplitude: 3.0},
		{Bin: 1000, Amplitude: 2.0},
		{Bin: 5120, Amplitude: 1.2},
	}
	signal := workload.Mix(n, tones, 0.05, 42)

	plan, err := fft.NewPlan(n, 64)
	if err != nil {
		log.Fatal(err)
	}
	spectrum := append([]complex128(nil), signal...)
	plan.Transform(spectrum, fft.Twiddles(n))

	power := workload.PowerSpectrum(spectrum)
	top := workload.TopBins(power, len(tones))

	fmt.Printf("embedded %d tones in %d samples of noisy signal\n", len(tones), n)
	fmt.Println("recovered dominant bins (power-sorted):")
	for _, bin := range top {
		fmt.Printf("  bin %5d  power %.1f\n", bin, power[bin])
	}

	// Round-trip: inverse transform must reconstruct the signal.
	recon := append([]complex128(nil), spectrum...)
	plan.InverseTransform(recon, fft.Twiddles(n))
	if err := fft.MaxError(recon, signal); err > 1e-9 {
		log.Fatalf("roundtrip error %g", err)
	}
	fmt.Println("inverse transform reconstructs the input (roundtrip verified)")
}
