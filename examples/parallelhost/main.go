// Example parallelhost times the host FFT library serially and on the
// parallel worker-pool engine — the real-hardware counterpart to the
// paper's fine-grain scheduling story — and verifies the two paths agree
// bitwise. Parallelism is a plan property, so the comparison builds a
// one-worker plan and a many-worker plan pinned to the same butterfly
// kernel; -kernel auto lets the autotuner pick the family first.
//
//	go run ./examples/parallelhost            # N=2^20, GOMAXPROCS workers
//	go run ./examples/parallelhost -logn 22 -workers 4 -kernel splitradix
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"time"

	"codeletfft"
)

func main() {
	var (
		logN       = flag.Int("logn", 20, "transform length: N=2^logn")
		p          = flag.Int("p", 64, "task size (points per butterfly kernel)")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		reps       = flag.Int("reps", 3, "timed repetitions (best is reported)")
		kernelName = flag.String("kernel", "auto", "butterfly kernel: auto, radix2, radix4, splitradix")
	)
	flag.Parse()

	n := 1 << *logN
	kern, err := codeletfft.ParseKernel(*kernelName)
	if err != nil {
		log.Fatal(err)
	}
	h, err := codeletfft.NewHostPlan(n,
		codeletfft.WithTaskSize(*p),
		codeletfft.WithWorkers(*workers),
		codeletfft.WithKernel(kern))
	if err != nil {
		log.Fatal(err)
	}
	// Kernel() resolves "auto" to the tuned concrete family; pinning the
	// serial plan to the same family keeps the bitwise comparison honest.
	hs, err := codeletfft.NewHostPlan(n,
		codeletfft.WithTaskSize(*p),
		codeletfft.WithWorkers(1),
		codeletfft.WithKernel(h.Kernel()))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	serialOut := append([]complex128(nil), x...)
	tSerial := best(*reps, func() { copy(serialOut, x); _ = hs.Transform(serialOut) })

	parallelOut := append([]complex128(nil), x...)
	tParallel := best(*reps, func() { copy(parallelOut, x); _ = h.Transform(parallelOut) })

	for i := range parallelOut {
		if math.Float64bits(real(parallelOut[i])) != math.Float64bits(real(serialOut[i])) ||
			math.Float64bits(imag(parallelOut[i])) != math.Float64bits(imag(serialOut[i])) {
			log.Fatalf("parallel output differs from serial at element %d", i)
		}
	}

	gflops := func(d time.Duration) float64 {
		return 5 * float64(n) * float64(*logN) / d.Seconds() / 1e9
	}
	fmt.Printf("N=2^%d P=%d kernel=%v on %d CPUs, %d workers\n", *logN, *p, h.Kernel(), runtime.NumCPU(), h.Workers())
	fmt.Printf("  serial    %10v  (%.2f GFLOPS)\n", tSerial, gflops(tSerial))
	fmt.Printf("  parallel  %10v  (%.2f GFLOPS)\n", tParallel, gflops(tParallel))
	fmt.Printf("  speedup   %.2fx  (outputs bitwise identical)\n",
		tSerial.Seconds()/tParallel.Seconds())
}

func best(reps int, fn func()) time.Duration {
	bestD := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < bestD {
			bestD = d
		}
	}
	return bestD
}
