// Quickstart: run the paper's guided fine-grain FFT on the simulated
// Cyclops-64, verify the numerics, and compare against the coarse-grain
// baseline and the theoretical peak.
package main

import (
	"fmt"
	"log"

	"codeletfft"
)

func main() {
	const n = 1 << 15 // 32768-point transform, DRAM-resident

	fmt.Printf("FFT of %d points on a simulated Cyclops-64 (%s)\n\n",
		n, codeletfft.DefaultMachine())

	for _, v := range []codeletfft.Variant{codeletfft.Coarse, codeletfft.FineGuided} {
		opts := codeletfft.NewOptions(n, v)
		opts.Check = true // verify output against an independent FFT
		res, err := codeletfft.Run(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %7.3f GFLOPS  %8d cycles  bank skew %.2f  max error %.2g\n",
			v, res.GFLOPS, res.Cycles, res.BankSkew(), res.MaxError)
	}

	peak := codeletfft.TheoreticalPeakGFLOPS(codeletfft.DefaultMachine(), 64)
	fmt.Printf("\ntheoretical peak for 64-point codelets (paper eq. 4): %.2f GFLOPS\n", peak)
}
