package core

import (
	"codeletfft/internal/c64"
	"codeletfft/internal/codelet"
	"codeletfft/internal/fft"
	"codeletfft/internal/sim"
)

// tuScratch is one thread unit's private working buffers — the model of
// its scratchpad contents.
type tuScratch struct {
	sc   *fft.Scratch
	reqs []c64.Request

	// batchOffset/batchStride map the running codelet's plan-local
	// element index g to the global array index offset + g·stride.
	// Per-TU state: a TU runs one codelet at a time, but codelets from
	// different batches (2-D rows/columns) are in flight concurrently.
	batchOffset int64
	batchStride int64
}

// executor simulates FFT codelets on the machine: it issues the task's
// DRAM loads, charges butterfly compute (and hash cost in the hashed
// variants), issues the stores, and — when numerics are on — actually
// performs the arithmetic on the host arrays so the output can be
// verified.
type executor struct {
	m      *c64.Machine
	pl     *fft.Plan
	layout c64.Layout

	data []complex128 // nil when SkipNumerics
	w    []complex128 // twiddle table (hashed layout in hash variants)

	hashed    bool
	hashWidth int

	spillBytes int64 // per-codelet scratchpad overflow, 0 if none
	spillBase  int64
	onChip     bool

	skipNumerics bool
	perTU        []tuScratch
}

func newExecutor(opts *Options, m *c64.Machine, pl *fft.Plan, data, w []complex128) *executor {
	e := &executor{
		m:      m,
		pl:     pl,
		layout: c64.NewLayout(m.Cfg, pl.N, pl.N/2),

		data:         data,
		w:            w,
		hashed:       opts.Variant.Hashed(),
		hashWidth:    fft.Log2(pl.N / 2),
		onChip:       opts.Placement == OnChip,
		skipNumerics: opts.SkipNumerics,
		perTU:        make([]tuScratch, opts.Threads),
	}
	// Working set per codelet: P data points and up to P−1 twiddles.
	// Off-chip codelets stage it in the scratchpad and spill to DRAM
	// beyond capacity; on-chip codelets keep it in registers and pay the
	// register-pressure model instead.
	working := int64(pl.P+pl.P-1) * c64.ElemBytes
	if !e.onChip && working > m.Cfg.ScratchpadBytes {
		e.spillBytes = working - m.Cfg.ScratchpadBytes
		// Spill buffers live past the twiddle table, one region per TU,
		// contiguous and therefore spread evenly over the banks.
		round := m.Cfg.InterleaveBytes * int64(m.Cfg.DRAMPorts)
		end := e.layout.TwiddleBase + int64(pl.N/2)*c64.ElemBytes
		e.spillBase = (end + round - 1) / round * round
	}
	for i := range e.perTU {
		e.perTU[i] = tuScratch{
			sc:          fft.NewScratch(pl),
			reqs:        make([]c64.Request, 0, 2*pl.P),
			batchStride: 1,
		}
	}
	return e
}

// mapIdx converts a plan-local element index to the global array index
// of the codelet currently running on tu.
func (e *executor) mapIdx(tu int, g int64) int64 {
	s := &e.perTU[tu]
	return s.batchOffset + g*s.batchStride
}

// setBatch points tu's next codelet at batch coordinates (offset, stride).
func (e *executor) setBatch(tu int, offset, stride int64) {
	e.perTU[tu].batchOffset = offset
	e.perTU[tu].batchStride = stride
}

// twiddleAt maps a twiddle index to its storage slot (bit-reversed in the
// hash variants, per section IV-B).
func (e *executor) twiddleAt(idx int64) int64 {
	if !e.hashed {
		return idx
	}
	return fft.BitReverse(idx, e.hashWidth)
}

// Execute runs one butterfly codelet: it is the codelet.Executor for all
// five algorithm variants. The codelet's load, compute and store phases
// are separated by engine events so bank requests from concurrent thread
// units reach the port timelines in causal order — issuing the store at
// pop time would reserve the ports across the whole compute phase and
// falsely serialize independent codelets.
func (e *executor) Execute(tu int, ref codelet.Ref, start sim.Time, finish func(sim.Time)) {
	stage, task := int(ref.Stage), int(ref.Index)
	s := &e.perTU[tu]
	sc := s.sc

	e.pl.TaskIndices(stage, task, sc.Idx)
	ntw := e.pl.TaskTwiddleIndices(stage, task, sc.TwIdx)

	// Kernel overhead (loop control, address arithmetic) plus the
	// per-access hash cost when twiddle addresses are randomized.
	t := start + e.overheadCycles()
	if e.hashed {
		t += e.m.HashCycles(ntw, e.hashWidth)
	}

	if e.onChip {
		bytes := int64(e.pl.P+ntw) * c64.ElemBytes
		done := e.m.SRAMAccess(t, c64.Load, bytes)
		e.m.Eng.ScheduleAt(done, func(now sim.Time) {
			e.computePhase(tu, stage, task, ntw, now, finish)
		})
		return
	}

	// Load phase: P data elements plus the distinct twiddles.
	s.reqs = s.reqs[:0]
	for _, g := range sc.Idx {
		s.reqs = append(s.reqs, c64.Request{Addr: e.layout.DataAddr(e.mapIdx(tu, g)), Bytes: c64.ElemBytes})
	}
	for i := 0; i < ntw; i++ {
		addr := e.layout.TwiddleAddr(e.twiddleAt(sc.TwIdx[i]))
		s.reqs = append(s.reqs, c64.Request{Addr: addr, Bytes: c64.ElemBytes})
	}
	e.m.DRAMAccessAsync(t, c64.Load, s.reqs, func(now sim.Time) {
		e.spillPhase(tu, stage, task, ntw, now, finish)
	})
}

// overheadCycles is the per-codelet loop/address-arithmetic cost.
func (e *executor) overheadCycles() sim.Time {
	return e.m.Cfg.KernelOverhead +
		sim.Time(e.m.Cfg.KernelOverheadPerPoint*float64(e.pl.P))
}

// spillPhase writes out and reads back the scratchpad overflow (if any)
// around the compute phase, then hands off to computePhase.
func (e *executor) spillPhase(tu, stage, task, ntw int, now sim.Time, finish func(sim.Time)) {
	if e.spillBytes == 0 {
		e.computePhase(tu, stage, task, ntw, now, finish)
		return
	}
	base := e.spillBase + int64(tu)*e.spillBytes
	spill := []c64.Request{{Addr: base, Bytes: e.spillBytes}}
	e.m.DRAMAccessAsync(now, c64.Store, spill, func(t sim.Time) {
		e.m.DRAMAccessAsync(t, c64.Load, spill, func(t2 sim.Time) {
			e.computePhase(tu, stage, task, ntw, t2, finish)
		})
	})
}

// computePhase charges (and, with numerics on, performs) the butterfly
// arithmetic, then schedules the store issue at compute completion.
func (e *executor) computePhase(tu, stage, task, ntw int, now sim.Time, finish func(sim.Time)) {
	sc := e.perTU[tu].sc
	var flops int64
	if e.skipNumerics {
		flops = e.pl.TaskFlops(stage)
	} else {
		for i, g := range sc.Idx {
			sc.Buf[i] = e.data[e.mapIdx(tu, g)]
		}
		for i := 0; i < ntw; i++ {
			sc.Tw[i] = e.w[e.twiddleAt(sc.TwIdx[i])]
		}
		flops = fft.TaskButterflies(sc.Buf[:e.pl.P], sc.Tw[:ntw], e.pl.Levels(stage))
		for i, g := range sc.Idx {
			e.data[e.mapIdx(tu, g)] = sc.Buf[i]
		}
	}
	done := now + e.m.FlopCycles(flops)
	if e.onChip {
		// Register pressure: working sets beyond the register file move
		// through the scratchpad (section III-B's constraint).
		done += e.m.RegisterSpillCycles(e.pl.P, ntw)
		e.m.Eng.ScheduleAt(done, func(at sim.Time) {
			finish(e.m.SRAMAccess(at, c64.Store, int64(e.pl.P)*c64.ElemBytes))
		})
		return
	}
	e.m.Eng.ScheduleAt(done, func(at sim.Time) { e.storePhase(tu, at, finish) })
}

// storePhase issues the in-place stores of the task's P elements. The TU
// scratch still holds this codelet's indices — a TU runs one codelet at a
// time, and the next dispatch happens only after finish.
func (e *executor) storePhase(tu int, now sim.Time, finish func(sim.Time)) {
	s := &e.perTU[tu]
	s.reqs = s.reqs[:0]
	for _, g := range s.sc.Idx {
		s.reqs = append(s.reqs, c64.Request{Addr: e.layout.DataAddr(e.mapIdx(tu, g)), Bytes: c64.ElemBytes})
	}
	e.m.DRAMAccessAsync(now, c64.Store, s.reqs, finish)
}

// bitrevExecutor simulates the parallel bit-reversal permutation pass
// that precedes every variant (performed once, with chunks of P indices
// per task). Each task swaps the elements of its chunk whose reversed
// index is larger, loading and storing both sides of each swap.
type bitrevExecutor struct {
	e     *executor
	width int
}

func (b *bitrevExecutor) Execute(tu int, ref codelet.Ref, start sim.Time, finish func(sim.Time)) {
	e := b.e
	s := &e.perTU[tu]
	p := e.pl.P
	lo := int64(ref.Index) * int64(p)

	s.reqs = s.reqs[:0]
	for j := lo; j < lo+int64(p); j++ {
		r := fft.BitReverse(j, b.width)
		if r > j {
			s.reqs = append(s.reqs,
				c64.Request{Addr: e.layout.DataAddr(e.mapIdx(tu, j)), Bytes: c64.ElemBytes},
				c64.Request{Addr: e.layout.DataAddr(e.mapIdx(tu, r)), Bytes: c64.ElemBytes})
		}
	}
	// Address arithmetic: one hardware bit-reversal plus bookkeeping per
	// index.
	t := start + e.m.Cfg.KernelOverhead + sim.Time(2*p)
	if len(s.reqs) == 0 {
		finish(t)
		return
	}
	if e.onChip {
		bytes := int64(len(s.reqs)) * c64.ElemBytes
		done := e.m.SRAMAccess(t, c64.Load, bytes)
		e.m.Eng.ScheduleAt(done, func(now sim.Time) {
			finish(e.m.SRAMAccess(now, c64.Store, bytes))
		})
		return
	}
	// Swapped elements are stored back once the loads land.
	e.m.DRAMAccessAsync(t, c64.Load, s.reqs, func(now sim.Time) {
		e.m.DRAMAccessAsync(now, c64.Store, s.reqs, finish)
	})
}
