package core

import (
	"math"
	"testing"

	"codeletfft/internal/c64"
	"codeletfft/internal/codelet"
)

func runChecked(t *testing.T, opts Options) *Result {
	t.Helper()
	opts.Check = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllVariantsProduceCorrectFFT(t *testing.T) {
	for _, v := range Variants() {
		for _, n := range []int{1 << 12, 1 << 13} {
			opts := NewOptions(n, v)
			res := runChecked(t, opts)
			if !res.Checked || res.MaxError > 1e-8 {
				t.Fatalf("%v N=%d: max error %g", v, n, res.MaxError)
			}
			if res.Cycles <= 0 {
				t.Fatalf("%v: nonpositive makespan", v)
			}
		}
	}
}

func TestVariantsAgreeNumerically(t *testing.T) {
	// Same seed → identical outputs across all scheduling variants
	// (determinacy of well-behaved codelet graphs, section III-C3).
	base := NewOptions(1<<12, Coarse)
	ref := runChecked(t, base)
	for _, v := range Variants()[1:] {
		opts := NewOptions(1<<12, v)
		res := runChecked(t, opts)
		for i := range res.Output {
			if res.Output[i] != ref.Output[i] {
				d := res.Output[i] - ref.Output[i]
				if math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
					t.Fatalf("%v output diverges from coarse at %d", v, i)
				}
			}
		}
	}
}

func TestCoarseBankSkew(t *testing.T) {
	// The motivating observation: coarse-grain concentrates twiddle
	// traffic on bank 0, so its whole-run byte skew is well above 1,
	// while the hashed variant is balanced.
	coarse, err := Run(Options{N: 1 << 15, Variant: Coarse, Machine: defaultMachine(), SkipNumerics: true, SharedCounters: true})
	if err != nil {
		t.Fatal(err)
	}
	if skew := coarse.BankSkew(); skew < 1.3 {
		t.Fatalf("coarse bank skew %.2f, expected pronounced imbalance", skew)
	}
	hash, err := Run(Options{N: 1 << 15, Variant: CoarseHash, Machine: defaultMachine(), SkipNumerics: true, SharedCounters: true})
	if err != nil {
		t.Fatal(err)
	}
	if skew := hash.BankSkew(); skew > 1.15 {
		t.Fatalf("hashed bank skew %.2f, expected balance", skew)
	}
}

func TestVariantOrdering(t *testing.T) {
	// The orderings this model supports (see EXPERIMENTS.md for the full
	// discussion of how they compare to the paper's):
	//   guided ≈ fine best > fine worst,
	//   fine hash > coarse (hash removes the bank-0 bottleneck),
	//   guided within a few percent of coarse (both near the
	//   work-conserving port bound).
	coarse := quickRun(t, 1<<15, Coarse, OrderNatural, codelet.FIFO)
	guided := quickRun(t, 1<<15, FineGuided, OrderNatural, codelet.LIFO)
	fineLIFO := quickRun(t, 1<<15, Fine, OrderNatural, codelet.LIFO)
	fineFIFO := quickRun(t, 1<<18, Fine, OrderNatural, codelet.FIFO)
	fineLIFO18 := quickRun(t, 1<<18, Fine, OrderNatural, codelet.LIFO)
	hash := quickRun(t, 1<<15, FineHash, OrderNatural, codelet.LIFO)

	if hash.GFLOPS <= coarse.GFLOPS {
		t.Fatalf("fine hash (%.3f) should beat coarse (%.3f)", hash.GFLOPS, coarse.GFLOPS)
	}
	if fineLIFO18.GFLOPS <= fineFIFO.GFLOPS {
		t.Fatalf("LIFO mixing (%.3f) should beat FIFO breadth-first (%.3f) at 2^18",
			fineLIFO18.GFLOPS, fineFIFO.GFLOPS)
	}
	if guided.GFLOPS < 0.95*fineLIFO.GFLOPS {
		t.Fatalf("guided (%.3f) should be at least on par with fine LIFO (%.3f)",
			guided.GFLOPS, fineLIFO.GFLOPS)
	}
	if guided.GFLOPS < 0.9*coarse.GFLOPS {
		t.Fatalf("guided (%.3f) should be within 10%% of coarse (%.3f)",
			guided.GFLOPS, coarse.GFLOPS)
	}
}

func quickRun(t *testing.T, n int, v Variant, o Order, d codelet.Discipline) *Result {
	t.Helper()
	opts := Options{N: n, Variant: v, Order: o, Discipline: d,
		Machine: defaultMachine(), SkipNumerics: true, SharedCounters: true}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGFLOPSBelowTheoreticalPeak(t *testing.T) {
	peak := TheoreticalPeakGFLOPS(defaultMachine(), 64)
	for _, v := range Variants() {
		res := quickRun(t, 1<<15, v, OrderNatural, codelet.LIFO)
		if res.GFLOPS >= peak {
			t.Fatalf("%v achieved %.2f GFLOPS above the %.2f peak", v, res.GFLOPS, peak)
		}
		if res.GFLOPS <= 0 {
			t.Fatalf("%v: nonpositive GFLOPS", v)
		}
	}
}

func TestTheoreticalPeak(t *testing.T) {
	// Equation (4): ~10 GFLOPS for 64-point tasks at 16 GB/s.
	peak := TheoreticalPeakGFLOPS(defaultMachine(), 64)
	if peak < 10.0 || peak > 10.1 {
		t.Fatalf("peak = %.3f GFLOPS, want ≈10.05 (paper's eq. 4)", peak)
	}
	// Larger tasks have higher ceilings (less twiddle traffic per flop).
	if TheoreticalPeakGFLOPS(defaultMachine(), 8) >= peak {
		t.Fatal("8-point ceiling should be below the 64-point ceiling")
	}
}

func TestDeterminism(t *testing.T) {
	a := quickRun(t, 1<<13, FineGuided, OrderNatural, codelet.LIFO)
	b := quickRun(t, 1<<13, FineGuided, OrderNatural, codelet.LIFO)
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestSharedVsPerCodeletCountersSameResult(t *testing.T) {
	// Counter sharing changes overhead, not which codelets fire: both
	// modes complete all codelets and produce correct numerics.
	for _, shared := range []bool{true, false} {
		opts := NewOptions(1<<12, Fine)
		opts.SharedCounters = shared
		res := runChecked(t, opts)
		want := opts.N / 64 * res.Stages
		if res.Codelets != want {
			t.Fatalf("shared=%v: %d codelets, want %d", shared, res.Codelets, want)
		}
	}
}

func TestSharedCountersReduceUpdates(t *testing.T) {
	run := func(shared bool) *Result {
		opts := Options{N: 1 << 13, Variant: Fine, Discipline: codelet.LIFO,
			Machine: defaultMachine(), SkipNumerics: true, SharedCounters: shared}
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := run(true)
	perChild := run(false)
	if shared.Runtime.CounterUpdates*10 > perChild.Runtime.CounterUpdates {
		t.Fatalf("shared counters should cut updates ~64x: %d vs %d",
			shared.Runtime.CounterUpdates, perChild.Runtime.CounterUpdates)
	}
}

func TestTraceCollection(t *testing.T) {
	opts := Options{N: 1 << 13, Variant: Coarse, Machine: defaultMachine(),
		SkipNumerics: true, SharedCounters: true, TraceBin: 10000}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Windows() == 0 {
		t.Fatal("trace not collected")
	}
	// Trace totals match machine accounting.
	tot := res.Trace.Totals()
	for b, acc := range res.BankAccesses {
		if tot[b] != acc {
			t.Fatalf("bank %d: trace %d vs machine %d accesses", b, tot[b], acc)
		}
	}
}

func TestThreadScalingMonotoneish(t *testing.T) {
	// More TUs should never make guided dramatically slower; 8→64
	// threads must speed it up substantially before saturation.
	slow := runThreads(t, 8)
	fast := runThreads(t, 64)
	if fast.GFLOPS < 2*slow.GFLOPS {
		t.Fatalf("64 TUs (%.3f) should be ≥2x of 8 TUs (%.3f)", fast.GFLOPS, slow.GFLOPS)
	}
}

func runThreads(t *testing.T, threads int) *Result {
	t.Helper()
	opts := Options{N: 1 << 13, Variant: FineGuided, Threads: threads,
		Machine: defaultMachine(), SkipNumerics: true, SharedCounters: true}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSmallPlansDegenerate(t *testing.T) {
	// N=4096 = 64²: two stages → guided has no early/late split and must
	// still be correct.
	res := runChecked(t, NewOptions(1<<12, FineGuided))
	if res.Stages != 2 {
		t.Fatalf("stages = %d, want 2", res.Stages)
	}
	// N=64: single stage, single codelet per stage.
	res = runChecked(t, NewOptions(64, FineGuided))
	if res.Codelets != 1 {
		t.Fatalf("codelets = %d, want 1", res.Codelets)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Options{N: 0, Machine: defaultMachine()}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Run(Options{N: 100, Machine: defaultMachine()}); err == nil {
		t.Fatal("non-power-of-two N accepted")
	}
	if _, err := Run(Options{N: 1 << 12, Threads: 1000, Machine: defaultMachine()}); err == nil {
		t.Fatal("threads beyond TUs accepted")
	}
	if _, err := Run(Options{N: 1 << 12, SkipNumerics: true, Check: true, Machine: defaultMachine()}); err == nil {
		t.Fatal("Check+SkipNumerics accepted")
	}
}

func TestRunFineBestWorst(t *testing.T) {
	base := Options{N: 1 << 13, Machine: defaultMachine(), SkipNumerics: true, SharedCounters: true}
	bw, err := RunFineBestWorst(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bw.Best.GFLOPS < bw.Worst.GFLOPS {
		t.Fatal("best slower than worst")
	}
	if bw.Best.GFLOPS == bw.Worst.GFLOPS {
		t.Fatal("ensemble shows no spread; initial order should matter (paper: fine fluctuates a lot)")
	}
}

func defaultMachine() c64.Config { return c64.Default() }
