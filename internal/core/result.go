package core

import (
	"fmt"

	"codeletfft/internal/codelet"
	"codeletfft/internal/sim"
	"codeletfft/internal/trace"
)

// Result reports one simulated FFT execution.
type Result struct {
	Opts Options

	// Cycles is the simulated makespan; Seconds converts it at the model
	// clock; GFLOPS is the paper's metric, 5·N·log2(N)/time.
	Cycles  sim.Time
	Seconds float64
	GFLOPS  float64

	// TotalFlops is the 5·N·log2(N) convention used for GFLOPS.
	TotalFlops int64
	// Codelets is the number of butterfly codelets executed (excluding
	// the bit-reversal pass).
	Codelets int
	// Stages is the number of butterfly stages.
	Stages int

	// Per-DRAM-bank accounting.
	BankBytes    []int64
	BankAccesses []int64
	BankBusy     []sim.Time
	BankUtil     []float64

	// Runtime counters (pool operations, counter updates, lock wait...).
	Runtime codelet.Stats

	// Trace is the per-bank access-rate series when Options.TraceBin > 0.
	Trace *trace.BankTrace

	// MaxError is the worst element error against an independent FFT
	// when Options.Check is set.
	MaxError float64
	Checked  bool

	// Output holds the transform result when numerics ran and
	// KeepOutput was requested via RunOn.
	Output []complex128
}

// BankSkew returns max-bank-bytes / mean-other-banks-bytes over the whole
// run — 1.0 is perfectly balanced, ~3 is the paper's coarse-grain skew on
// early stages.
func (r *Result) BankSkew() float64 {
	var maxV int64
	maxB := 0
	for b, v := range r.BankBytes {
		if v > maxV {
			maxV, maxB = v, b
		}
	}
	var rest int64
	for b, v := range r.BankBytes {
		if b != maxB {
			rest += v
		}
	}
	if rest == 0 {
		return 1
	}
	return float64(maxV) / (float64(rest) / float64(len(r.BankBytes)-1))
}

func (r *Result) String() string {
	return fmt.Sprintf("%s N=2^%d P=%d threads=%d: %.3f GFLOPS (%d cycles, skew %.2f)",
		r.Opts.Variant, log2int(r.Opts.N), r.Opts.TaskSize, r.Opts.Threads,
		r.GFLOPS, r.Cycles, r.BankSkew())
}

func log2int(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
