package core

import (
	"fmt"
	"math/rand"

	"codeletfft/internal/c64"
	"codeletfft/internal/codelet"
	"codeletfft/internal/fft"
	"codeletfft/internal/sim"
)

// Options2D configures a simulated 2-D FFT (row-column method) on the
// machine model: a fine-grain row pass over all rows, a barrier, then a
// fine-grain column pass. The column pass accesses the array with a
// stride of Cols elements, which on the interleaved DRAM puts an entire
// column on one bank — a stress case for the bank-balance machinery
// beyond the paper's 1-D evaluation.
type Options2D struct {
	Rows, Cols   int
	TaskSize     int
	Threads      int
	Machine      c64.Config
	SkipNumerics bool
	Check        bool
	Seed         int64
}

// Result2D reports a simulated 2-D FFT.
type Result2D struct {
	Opts       Options2D
	Cycles     sim.Time
	Seconds    float64
	GFLOPS     float64
	TotalFlops int64
	RowCycles  sim.Time // completion time of the row pass
	BankBytes  []int64
	MaxError   float64
	Checked    bool
}

// batched wraps the 1-D executor to run B independent transforms of one
// plan, batch b mapping local element g to global index off(b) + g·stride.
type batched struct {
	e      *executor
	pl     *fft.Plan
	perRow int // tasks per stage of one transform
	offset func(batch int) int64
	stride int64
}

// Execute decodes (batch, local task) from the flat codelet index.
func (b *batched) Execute(tu int, ref codelet.Ref, start sim.Time, finish func(sim.Time)) {
	batch := int(ref.Index) / b.perRow
	local := int(ref.Index) % b.perRow
	b.e.setBatch(tu, b.offset(batch), b.stride)
	b.e.Execute(tu, codelet.Ref{Stage: ref.Stage, Index: int32(local)}, start, finish)
}

// batchFiring replicates the 1-D firing state across B independent
// transforms.
type batchFiring struct {
	f      *firing
	perRow int
}

func (bf *batchFiring) OnComplete(ref codelet.Ref, emit func(codelet.Ref)) int {
	batch := int(ref.Index) / bf.perRow
	local := codelet.Ref{Stage: ref.Stage, Index: ref.Index % int32(bf.perRow)}
	return bf.f.onCompleteBatch(batch, local, func(child codelet.Ref) {
		emit(codelet.Ref{Stage: child.Stage, Index: child.Index + int32(batch*bf.perRow)})
	})
}

// Run2D simulates the row-column 2-D FFT.
func Run2D(opts Options2D) (*Result2D, error) {
	if opts.TaskSize == 0 {
		opts.TaskSize = 64
	}
	if opts.Machine.ThreadUnits == 0 {
		opts.Machine = c64.Default()
	}
	if opts.Threads == 0 {
		opts.Threads = opts.Machine.ThreadUnits
	}
	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}
	if opts.SkipNumerics && opts.Check {
		return nil, fmt.Errorf("core: Check requires numerics")
	}
	rows, cols := opts.Rows, opts.Cols
	if fft.Log2(rows) < 1 || fft.Log2(cols) < 1 {
		return nil, fmt.Errorf("core: 2-D shape %dx%d must be powers of two ≥ 2", rows, cols)
	}
	rowPlan, err := fft.NewPlan(cols, minInt(opts.TaskSize, cols))
	if err != nil {
		return nil, err
	}
	colPlan, err := fft.NewPlan(rows, minInt(opts.TaskSize, rows))
	if err != nil {
		return nil, err
	}

	n := rows * cols
	m := c64.NewMachine(opts.Machine)
	var data, input []complex128
	if !opts.SkipNumerics {
		rng := rand.New(rand.NewSource(opts.Seed))
		data = make([]complex128, n)
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		input = append([]complex128(nil), data...)
	}

	rtCfg := codelet.Config{
		Threads:       opts.Threads,
		PoolAccess:    opts.Machine.PoolAccess,
		CounterUpdate: opts.Machine.CounterUpdate,
	}

	runPass := func(pl *fft.Plan, batches int, offset func(int) int64, stride int64, table []complex128, doBitrev bool) {
		base := &Options{
			N: pl.N, TaskSize: pl.P, Threads: opts.Threads, Machine: opts.Machine,
			SkipNumerics: opts.SkipNumerics, SharedCounters: true, Seed: opts.Seed,
		}
		ex := newExecutor(base, m, pl, data, table)
		ex.layout = c64.NewLayout(opts.Machine, n, pl.N/2)
		ex.hashWidth = fft.Log2(pl.N / 2)

		perRow := pl.TasksPerStage
		bex := &batched{e: ex, pl: pl, perRow: perRow, offset: offset, stride: stride}

		// Numeric bit-reversal per batch (the traffic of the permutation
		// pass is charged through the batched bit-reversal executor).
		if doBitrev && !opts.SkipNumerics {
			buf := make([]complex128, pl.N)
			for b := 0; b < batches; b++ {
				off := offset(b)
				for g := int64(0); g < int64(pl.N); g++ {
					buf[g] = data[off+g*stride]
				}
				fft.BitReversePermute(buf)
				for g := int64(0); g < int64(pl.N); g++ {
					data[off+g*stride] = buf[g]
				}
			}
		}
		if doBitrev {
			brExec := &batchedBitrev{b: bex, width: pl.LogN}
			brRT := codelet.NewRuntime(m.Eng, rtCfg, codelet.FIFO, brExec.Execute, nil)
			brRT.RunPhaseStatic(flatSeed(0, batches*perRow))
			brRT.Barrier(opts.Machine.BarrierLatency)
		}

		transitions := make([]*fft.Transition, pl.NumStages)
		for s := 0; s < pl.NumStages-1; s++ {
			transitions[s] = pl.BuildTransition(s)
		}
		f := newBatchedFiring(pl, transitions, batches, pl.NumStages-1)
		bf := &batchFiring{f: f, perRow: perRow}
		rt := codelet.NewRuntime(m.Eng, rtCfg, codelet.LIFO, bex.Execute, bf.OnComplete)
		rt.RunPhase(flatSeed(0, batches*perRow))
		rt.Barrier(opts.Machine.BarrierLatency)
	}

	// Row pass: contiguous rows.
	var wRow, wCol []complex128
	if !opts.SkipNumerics {
		wRow = fft.Twiddles(cols)
		wCol = fft.Twiddles(rows)
	}
	runPass(rowPlan, rows, func(b int) int64 { return int64(b) * int64(cols) }, 1, wRow, true)
	rowDone := m.Eng.Now()
	// Column pass: stride-Cols access.
	runPass(colPlan, cols, func(b int) int64 { return int64(b) }, int64(cols), wCol, true)

	res := &Result2D{
		Opts:       opts,
		Cycles:     m.Eng.Now(),
		RowCycles:  rowDone,
		TotalFlops: 5 * int64(n) * int64(fft.Log2(n)),
		BankBytes:  m.BankBytes(),
	}
	res.Seconds = opts.Machine.Seconds(res.Cycles)
	res.GFLOPS = float64(res.TotalFlops) / res.Seconds / 1e9
	if opts.Check {
		p2, err := fft.NewPlan2D(rows, cols, opts.TaskSize)
		if err != nil {
			return nil, err
		}
		want := append([]complex128(nil), input...)
		p2.Transform(want)
		res.MaxError = fft.MaxError(data, want)
		res.Checked = true
		if res.MaxError > 1e-6 {
			return res, fmt.Errorf("core: 2-D output wrong (max error %g)", res.MaxError)
		}
	}
	return res, nil
}

// batchedBitrev charges the per-batch bit-reversal traffic.
type batchedBitrev struct {
	b     *batched
	width int
}

func (bb *batchedBitrev) Execute(tu int, ref codelet.Ref, start sim.Time, finish func(sim.Time)) {
	batch := int(ref.Index) / bb.b.perRow
	local := int(ref.Index) % bb.b.perRow
	bb.b.e.setBatch(tu, bb.b.offset(batch), bb.b.stride)
	br := &bitrevExecutor{e: bb.b.e, width: bb.width}
	br.Execute(tu, codelet.Ref{Stage: ref.Stage, Index: int32(local)}, start, finish)
}

func flatSeed(stage int32, n int) []codelet.Ref {
	refs := make([]codelet.Ref, n)
	for i := range refs {
		refs[i] = codelet.Ref{Stage: stage, Index: int32(i)}
	}
	return refs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
