package core

import (
	"reflect"
	"testing"
)

// TestRunDeterministic is the simulator determinism regression: two Run
// invocations with identical Options — including OrderRandom with a fixed
// seed — must agree on every observable (cycle count, GFLOPS, bank
// histograms, runtime counters, bank trace, and the numeric output,
// bitwise). Figures, ablations, and the CI gate all assume reruns
// reproduce.
func TestRunDeterministic(t *testing.T) {
	for _, v := range Variants() {
		opts := NewOptions(1<<10, v)
		opts.TaskSize = 8
		opts.Order = OrderRandom
		opts.Seed = 7
		opts.TraceBin = 256
		opts.Check = true

		r1, err := Run(opts)
		if err != nil {
			t.Fatalf("%v: first run: %v", v, err)
		}
		r2, err := Run(opts)
		if err != nil {
			t.Fatalf("%v: second run: %v", v, err)
		}

		if r1.Cycles != r2.Cycles {
			t.Errorf("%v: cycles differ: %d vs %d", v, r1.Cycles, r2.Cycles)
		}
		if r1.GFLOPS != r2.GFLOPS {
			t.Errorf("%v: GFLOPS differ: %v vs %v", v, r1.GFLOPS, r2.GFLOPS)
		}
		if !reflect.DeepEqual(r1.BankBytes, r2.BankBytes) {
			t.Errorf("%v: bank byte histograms differ: %v vs %v", v, r1.BankBytes, r2.BankBytes)
		}
		if !reflect.DeepEqual(r1.BankAccesses, r2.BankAccesses) {
			t.Errorf("%v: bank access histograms differ: %v vs %v", v, r1.BankAccesses, r2.BankAccesses)
		}
		if !reflect.DeepEqual(r1.BankBusy, r2.BankBusy) {
			t.Errorf("%v: bank busy times differ: %v vs %v", v, r1.BankBusy, r2.BankBusy)
		}
		if r1.Runtime != r2.Runtime {
			t.Errorf("%v: runtime counters differ: %+v vs %+v", v, r1.Runtime, r2.Runtime)
		}
		if !reflect.DeepEqual(r1.Trace, r2.Trace) {
			t.Errorf("%v: bank traces differ", v)
		}
		if r1.MaxError != r2.MaxError {
			t.Errorf("%v: max errors differ: %g vs %g", v, r1.MaxError, r2.MaxError)
		}
		if !reflect.DeepEqual(r1.Output, r2.Output) {
			t.Errorf("%v: numeric outputs differ", v)
		}
	}
}
