package core

import "codeletfft/internal/c64"

// TheoreticalPeakGFLOPS evaluates the paper's equations (1)–(4): the
// performance ceiling of a P-point-task FFT whose data and twiddles live
// in off-chip DRAM, assuming the memory ports never idle.
//
//	#tasks          = (N/P)·(log2 N / log2 P)        (ceiling dropped)
//	time per task   = (P + P + (P−1))·16 B / BW       (load+store+twiddles)
//	peak            = 5·N·log2 N / (#tasks·time)
//	                = 5·P·log2 P·BW / ((3P−1)·16)
//
// For P=64 on the 16 GB/s C64 this is the paper's 10 GFLOPS (eq. 4).
// N cancels, so the ceiling is independent of the transform length.
func TheoreticalPeakGFLOPS(cfg c64.Config, taskSize int) float64 {
	p := float64(taskSize)
	logP := float64(log2int(taskSize))
	bw := cfg.DRAMBandwidth()
	return 5 * p * logP * bw / ((3*p - 1) * c64.ElemBytes) / 1e9
}

// TaskBytes returns the off-chip traffic of one P-point task: P loads,
// P stores and P−1 twiddle loads of 16-byte elements (eq. 3's numerator).
func TaskBytes(taskSize int) int64 {
	return int64(3*taskSize-1) * c64.ElemBytes
}
