// Package core implements the paper's contribution: coarse-grain,
// fine-grain, and guided fine-grain FFT algorithms (with and without
// hashed twiddle addresses) executing on the simulated Cyclops-64, and
// the measurement apparatus that reproduces the paper's figures.
//
// The five algorithm versions follow Table I of the paper:
//
//	coarse       Alg. 1 — barrier after every 64-point stage
//	coarse hash  Alg. 1 with bit-reversal-hashed twiddle addresses
//	fine         Alg. 2 — dependence-counter firing from a concurrent pool
//	fine hash    Alg. 2 with hashed twiddle addresses
//	fine guided  Alg. 3 — two fine-grain phases split at last_stage−2,
//	             LIFO pool seeded in sibling groups
//
// "fine worst" and "fine best" in the figures are the extremes of the
// plain fine variant over initial pool orders and pool disciplines,
// exactly how the paper reports them.
package core

import (
	"fmt"

	"codeletfft/internal/c64"
	"codeletfft/internal/codelet"
	"codeletfft/internal/sim"
)

// Variant selects one of the paper's algorithm versions.
type Variant uint8

// Algorithm versions (Table I).
const (
	Coarse Variant = iota
	CoarseHash
	Fine
	FineHash
	FineGuided
)

func (v Variant) String() string {
	switch v {
	case Coarse:
		return "coarse"
	case CoarseHash:
		return "coarse hash"
	case Fine:
		return "fine"
	case FineHash:
		return "fine hash"
	case FineGuided:
		return "fine guided"
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// Hashed reports whether the variant randomizes twiddle addresses.
func (v Variant) Hashed() bool { return v == CoarseHash || v == FineHash }

// Variants lists all algorithm versions in presentation order.
func Variants() []Variant {
	return []Variant{Coarse, CoarseHash, Fine, FineHash, FineGuided}
}

// Order selects the initial arrangement of stage-0 codelets in the pool.
// The paper observes that this arrangement changes fine-grain performance
// substantially ("fine worst" vs "fine best").
type Order uint8

// Initial pool orders.
const (
	// OrderNatural seeds codelets 0,1,2,... — sibling-group contiguous.
	OrderNatural Order = iota
	// OrderReversed seeds codelets n-1,...,1,0.
	OrderReversed
	// OrderBitReversed seeds codelets in bit-reversed index order, which
	// scatters sibling groups maximally.
	OrderBitReversed
	// OrderRandom seeds codelets in a seeded pseudorandom permutation.
	OrderRandom
)

func (o Order) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderReversed:
		return "reversed"
	case OrderBitReversed:
		return "bitrev"
	case OrderRandom:
		return "random"
	}
	return fmt.Sprintf("order(%d)", uint8(o))
}

// Placement selects where the data and twiddle arrays live. The paper's
// evaluation is entirely OffChip (DRAM-resident); OnChip reproduces the
// SRAM-resident regime of the predecessor study (section III-B), where
// register pressure rather than bank balance picks the task size.
type Placement uint8

// Array placements.
const (
	OffChip Placement = iota
	OnChip
)

func (p Placement) String() string {
	if p == OnChip {
		return "on-chip"
	}
	return "off-chip"
}

// Options configures one simulated FFT execution.
type Options struct {
	// N is the transform length (power of two). Required.
	N int
	// TaskSize is the points per codelet; 0 means the paper's 64.
	TaskSize int
	// Threads is the number of thread units; 0 means Machine.ThreadUnits.
	Threads int
	// Variant is the algorithm version to run.
	Variant Variant
	// Placement locates the data and twiddle arrays (OffChip default).
	Placement Placement
	// Order arranges the initial stage-0 codelets in the pool.
	Order Order
	// Discipline is the pool service order for the Fine variants.
	// Coarse uses FIFO; Guided forces LIFO per Alg. 3.
	Discipline codelet.Discipline
	// SharedCounters enables the paper's 64-sibling shared dependence
	// counters (section IV-A2). NewOptions enables it.
	SharedCounters bool
	// Machine is the architecture model configuration.
	Machine c64.Config
	// TraceBin, when positive, collects a per-bank access-rate trace
	// with the given window width in cycles (Figures 1, 2, 6).
	TraceBin sim.Time
	// SkipNumerics runs timing-only (no complex arithmetic). Outputs are
	// then not checked; use for large parameter sweeps.
	SkipNumerics bool
	// Check verifies the numeric output against an independent FFT and
	// records the max error. Incompatible with SkipNumerics.
	Check bool
	// Seed selects the input signal and any randomized order.
	Seed int64
}

// NewOptions returns paper-default options for an N-point transform.
func NewOptions(n int, v Variant) Options {
	return Options{
		N:              n,
		TaskSize:       64,
		Variant:        v,
		Order:          OrderNatural,
		Discipline:     codelet.LIFO,
		SharedCounters: true,
		Machine:        c64.Default(),
		Seed:           1,
	}
}

// normalize fills defaults and validates.
func (o *Options) normalize() error {
	if o.TaskSize == 0 {
		o.TaskSize = 64
	}
	if o.Machine.ThreadUnits == 0 {
		o.Machine = c64.Default()
	}
	if o.Threads == 0 {
		o.Threads = o.Machine.ThreadUnits
	}
	if err := o.Machine.Validate(); err != nil {
		return err
	}
	if o.Threads < 0 || o.Threads > o.Machine.ThreadUnits {
		return fmt.Errorf("core: Threads=%d outside [1,%d]", o.Threads, o.Machine.ThreadUnits)
	}
	if o.SkipNumerics && o.Check {
		return fmt.Errorf("core: Check requires numerics")
	}
	if o.N < 2 {
		return fmt.Errorf("core: N=%d too small", o.N)
	}
	if o.Placement == OnChip {
		need := int64(o.N)*c64.ElemBytes + int64(o.N/2)*c64.ElemBytes
		if need > o.Machine.SRAMBytes {
			return fmt.Errorf("core: N=%d needs %d bytes, exceeding the %d-byte on-chip SRAM",
				o.N, need, o.Machine.SRAMBytes)
		}
	}
	return nil
}
