package core

import (
	"strings"
	"testing"
)

func TestOnChipNumericsVerified(t *testing.T) {
	opts := NewOptions(1<<12, Fine)
	opts.Placement = OnChip
	opts.TaskSize = 8
	res := runChecked(t, opts)
	if res.MaxError > 1e-9 {
		t.Fatalf("on-chip max error %g", res.MaxError)
	}
	// On-chip runs must not touch DRAM at all.
	for b, v := range res.BankBytes {
		if v != 0 {
			t.Fatalf("on-chip run moved %d bytes through DRAM bank %d", v, b)
		}
	}
}

func TestOnChipFasterThanOffChip(t *testing.T) {
	mk := func(p Placement) *Result {
		opts := NewOptions(1<<14, Coarse)
		opts.Placement = p
		opts.TaskSize = 8
		opts.SkipNumerics = true
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on, off := mk(OnChip), mk(OffChip)
	if on.GFLOPS <= off.GFLOPS {
		t.Fatalf("SRAM-resident (%.3f) should beat DRAM-resident (%.3f)",
			on.GFLOPS, off.GFLOPS)
	}
}

func TestOnChipCapacityEnforced(t *testing.T) {
	opts := NewOptions(1<<20, Fine) // 16 MB data ≫ 2.5 MB SRAM
	opts.Placement = OnChip
	opts.SkipNumerics = true
	_, err := Run(opts)
	if err == nil || !strings.Contains(err.Error(), "SRAM") {
		t.Fatalf("oversized on-chip run accepted: %v", err)
	}
}

func TestOnChipRegisterPressurePicksSmallTasks(t *testing.T) {
	// The §III-B regime: with data on-chip, 8/16-point work units beat
	// 64-point ones because of register spills.
	run := func(p int) float64 {
		opts := NewOptions(1<<13, Coarse)
		opts.Placement = OnChip
		opts.TaskSize = p
		opts.SkipNumerics = true
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.GFLOPS
	}
	small := run(8)
	if mid := run(16); mid > small {
		small = mid
	}
	if big := run(64); big >= small {
		t.Fatalf("64-point on-chip (%.3f) should lose to 8/16-point (%.3f)", big, small)
	}
}

func TestPlacementString(t *testing.T) {
	if OffChip.String() != "off-chip" || OnChip.String() != "on-chip" {
		t.Fatal("placement strings")
	}
}
