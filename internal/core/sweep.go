package core

import (
	"codeletfft/internal/codelet"
)

// FineConfig names one (initial order, pool discipline) combination of
// the plain fine-grain algorithm.
type FineConfig struct {
	Order      Order
	Discipline codelet.Discipline
}

// DefaultFineConfigs is the ensemble over which "fine worst" and "fine
// best" are taken, mirroring the paper's exploration of initial codelet
// orders: breadth-first FIFO service versus depth-first LIFO service,
// each from sibling-contiguous, reversed, scattered, and random seeds.
func DefaultFineConfigs() []FineConfig {
	return []FineConfig{
		{OrderNatural, codelet.FIFO},
		{OrderBitReversed, codelet.FIFO},
		{OrderNatural, codelet.LIFO},
		{OrderReversed, codelet.LIFO},
		{OrderBitReversed, codelet.LIFO},
		{OrderRandom, codelet.LIFO},
	}
}

// BestWorst holds the extremes of the fine-grain ensemble.
type BestWorst struct {
	Best      *Result
	Worst     *Result
	BestCfg   FineConfig
	WorstCfg  FineConfig
	AllruGF   []float64
	AllConfig []FineConfig
}

// RunFineBestWorst runs the plain fine variant across configs (or the
// default ensemble if nil) and returns the fastest and slowest runs.
func RunFineBestWorst(base Options, configs []FineConfig) (*BestWorst, error) {
	if configs == nil {
		configs = DefaultFineConfigs()
	}
	base.Variant = Fine
	out := &BestWorst{}
	for _, cfg := range configs {
		opts := base
		opts.Order = cfg.Order
		opts.Discipline = cfg.Discipline
		res, err := Run(opts)
		if err != nil {
			return nil, err
		}
		out.AllruGF = append(out.AllruGF, res.GFLOPS)
		out.AllConfig = append(out.AllConfig, cfg)
		if out.Best == nil || res.GFLOPS > out.Best.GFLOPS {
			out.Best, out.BestCfg = res, cfg
		}
		if out.Worst == nil || res.GFLOPS < out.Worst.GFLOPS {
			out.Worst, out.WorstCfg = res, cfg
		}
	}
	return out, nil
}
