package core

import (
	"fmt"
	"math/rand"

	"codeletfft/internal/c64"
	"codeletfft/internal/codelet"
	"codeletfft/internal/fft"
	"codeletfft/internal/trace"
)

// Run simulates one FFT execution under opts and reports timing, bank
// balance, runtime statistics, and (optionally) verified numerics.
func Run(opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	pl, err := fft.NewPlan(opts.N, opts.TaskSize)
	if err != nil {
		return nil, err
	}

	m := c64.NewMachine(opts.Machine)
	var tr *trace.BankTrace
	if opts.TraceBin > 0 {
		tr = trace.NewBankTrace(opts.Machine.DRAMPorts, opts.TraceBin)
		m.Tracer = tr
	}

	// Host-side arrays. The simulated codelets do the real arithmetic on
	// them unless SkipNumerics is set.
	var data, input, w []complex128
	if !opts.SkipNumerics {
		rng := rand.New(rand.NewSource(opts.Seed))
		data = make([]complex128, opts.N)
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		input = append([]complex128(nil), data...)
		w = fft.Twiddles(opts.N)
		if opts.Variant.Hashed() {
			w = fft.HashTwiddles(w)
		}
		// The numeric effect of the simulated bit-reversal pass.
		fft.BitReversePermute(data)
	}

	exec := newExecutor(&opts, m, pl, data, w)
	rtCfg := codelet.Config{
		Threads:       opts.Threads,
		PoolAccess:    opts.Machine.PoolAccess,
		CounterUpdate: opts.Machine.CounterUpdate,
	}

	// Bit-reversal pass (every variant performs it once, in parallel,
	// then synchronizes).
	brExec := &bitrevExecutor{e: exec, width: pl.LogN}
	brRT := codelet.NewRuntime(m.Eng, rtCfg, codelet.FIFO, brExec.Execute, nil)
	brRT.RunPhaseStatic(stageSeed(OrderNatural, 0, pl.TasksPerStage, opts.Seed))
	brRT.Barrier(opts.Machine.BarrierLatency)

	var stats codelet.Stats
	addStats := func(s codelet.Stats) {
		stats.Executed += s.Executed
		stats.CounterUpdates += s.CounterUpdates
		stats.PoolOps += s.PoolOps
		stats.IdleWakeups += s.IdleWakeups
		stats.LockWait += s.LockWait
	}
	addStats(brRT.Stats())
	brExecuted := stats.Executed

	switch opts.Variant {
	case Coarse, CoarseHash:
		runCoarse(&opts, pl, m, exec, rtCfg, addStats)
	case Fine, FineHash:
		runFine(&opts, pl, m, exec, rtCfg, addStats)
	case FineGuided:
		runGuided(&opts, pl, m, exec, rtCfg, addStats)
	default:
		return nil, fmt.Errorf("core: unknown variant %v", opts.Variant)
	}

	res := &Result{
		Opts:         opts,
		Cycles:       m.Eng.Now(),
		TotalFlops:   pl.TotalFlops(),
		Codelets:     int(stats.Executed - brExecuted),
		Stages:       pl.NumStages,
		BankBytes:    m.BankBytes(),
		BankAccesses: m.BankAccesses(),
		BankBusy:     m.BankBusy(),
		Runtime:      stats,
		Trace:        tr,
	}
	res.Seconds = opts.Machine.Seconds(res.Cycles)
	res.GFLOPS = float64(res.TotalFlops) / res.Seconds / 1e9
	res.BankUtil = make([]float64, len(res.BankBusy))
	for b, busy := range res.BankBusy {
		res.BankUtil[b] = float64(busy) / float64(res.Cycles)
	}

	if opts.Check {
		want := fft.Recursive(input)
		res.MaxError = fft.MaxError(data, want)
		res.Checked = true
		if res.MaxError > 1e-6*float64(pl.LogN) {
			return res, fmt.Errorf("core: %v N=%d produced wrong output (max error %g)",
				opts.Variant, opts.N, res.MaxError)
		}
	}
	if !opts.SkipNumerics {
		res.Output = data
	}
	return res, nil
}

// runCoarse is Alg. 1: a static cyclic parallel-for per stage, every
// stage separated by a hardware barrier. Thread j executes tasks
// j, j+threads, j+2·threads, ... serially — the SPMD idiom of the
// baseline implementation — so a thread whose tasks hit congested banks
// straggles and the barrier exposes it.
func runCoarse(opts *Options, pl *fft.Plan, m *c64.Machine, exec *executor, rtCfg codelet.Config, addStats func(codelet.Stats)) {
	rt := codelet.NewRuntime(m.Eng, rtCfg, codelet.FIFO, exec.Execute, nil)
	for s := 0; s < pl.NumStages; s++ {
		rt.RunPhaseStatic(stageSeed(opts.Order, int32(s), pl.TasksPerStage, opts.Seed))
		rt.Barrier(opts.Machine.BarrierLatency)
	}
	addStats(rt.Stats())
}

// runFine is Alg. 2: one phase, dependence-counter firing, no barriers.
func runFine(opts *Options, pl *fft.Plan, m *c64.Machine, exec *executor, rtCfg codelet.Config, addStats func(codelet.Stats)) {
	transitions := make([]*fft.Transition, pl.NumStages)
	for s := 0; s < pl.NumStages-1; s++ {
		transitions[s] = pl.BuildTransition(s)
	}
	f := newFiring(pl, transitions, opts.SharedCounters, pl.NumStages-1)
	rt := codelet.NewRuntime(m.Eng, rtCfg, opts.Discipline, exec.Execute, f.OnComplete)
	rt.RunPhase(stageSeed(opts.Order, 0, pl.TasksPerStage, opts.Seed))
	addStats(rt.Stats())
}

// runGuided is Alg. 3: fine-grain over the early stages (0..last−2), a
// barrier, then fine-grain over the last two stages from a LIFO pool
// seeded in sibling groups. Plans with fewer than three stages have no
// early/late split and degenerate to plain fine-grain with a LIFO pool.
func runGuided(opts *Options, pl *fft.Plan, m *c64.Machine, exec *executor, rtCfg codelet.Config, addStats func(codelet.Stats)) {
	lastEarly := pl.NumStages - 3
	if lastEarly < 0 {
		o := *opts
		o.Discipline = codelet.LIFO
		runFine(&o, pl, m, exec, rtCfg, addStats)
		return
	}

	transitions := make([]*fft.Transition, pl.NumStages)
	for s := 0; s < pl.NumStages-1; s++ {
		transitions[s] = pl.BuildTransition(s)
	}

	// Phase A: stages 0..lastEarly; completing a last-early codelet does
	// not propagate (the barrier takes over).
	fA := newFiring(pl, transitions, opts.SharedCounters, lastEarly)
	rtA := codelet.NewRuntime(m.Eng, rtCfg, codelet.LIFO, exec.Execute, fA.OnComplete)
	rtA.RunPhase(stageSeed(opts.Order, 0, pl.TasksPerStage, opts.Seed))
	rtA.Barrier(opts.Machine.BarrierLatency)
	addStats(rtA.Stats())

	// Phase B: seed all of stage last−1 grouped by common child sets,
	// fresh counters, LIFO pool.
	penult := lastEarly + 1 // == pl.NumStages-2: the stage feeding the last
	fB := newFiring(pl, transitions, opts.SharedCounters, pl.NumStages-1)
	rtB := codelet.NewRuntime(m.Eng, rtCfg, codelet.LIFO, exec.Execute, fB.OnComplete)
	rtB.RunPhase(groupSeed(transitions[penult], int32(penult), pl.TasksPerStage))
	addStats(rtB.Stats())
}
