package core

import (
	"codeletfft/internal/codelet"
	"codeletfft/internal/fft"
)

// firing implements the dataflow firing rules of Alg. 2/3 over the FFT
// task graph: each codelet's completion updates the dependence counters
// of its successors, and a successor whose counter reaches its parent
// count is emitted to the ready pool.
//
// With shared counters (the paper's section IV-A2 optimization) one
// counter serves each sibling group — every 64 children that share the
// same 64 parents — so a completing parent performs one update per group
// it feeds (one, for regular transitions) instead of 64 per-child
// updates.
type firing struct {
	pl          *fft.Plan
	transitions []*fft.Transition // index s: stage s → s+1; nil-terminated at last stage
	shared      bool

	// lastStage limits propagation: completing a codelet of lastStage
	// emits nothing (used by guided phase A to stop at last_early_stage).
	lastStage int32

	// batches replicates the counters for independent transforms sharing
	// one dependence structure (the 2-D passes).
	batches int

	groupCount [][]int32 // per transition, per sibling group
	childCount [][]int32 // per transition, per child (per-codelet mode)
}

// newFiring builds firing state covering stages [0, lastStage].
func newFiring(pl *fft.Plan, transitions []*fft.Transition, shared bool, lastStage int) *firing {
	f := &firing{
		pl:          pl,
		transitions: transitions,
		shared:      shared,
		batches:     1,
		lastStage:   int32(lastStage),
		groupCount:  make([][]int32, len(transitions)),
		childCount:  make([][]int32, len(transitions)),
	}
	f.Reset()
	return f
}

// newBatchedFiring builds firing state for `batches` independent copies
// of the plan's dependence graph (the 2-D row/column passes), always with
// shared counters.
func newBatchedFiring(pl *fft.Plan, transitions []*fft.Transition, batches, lastStage int) *firing {
	f := &firing{
		pl:          pl,
		transitions: transitions,
		shared:      true,
		batches:     batches,
		lastStage:   int32(lastStage),
		groupCount:  make([][]int32, len(transitions)),
		childCount:  make([][]int32, len(transitions)),
	}
	f.Reset()
	return f
}

// Reset zeroes every dependence counter (guided runs two phases over
// fresh counters, per Alg. 3).
func (f *firing) Reset() {
	for s, tr := range f.transitions {
		if tr == nil {
			continue
		}
		if f.shared {
			if f.groupCount[s] == nil {
				f.groupCount[s] = make([]int32, f.batches*tr.NumGroups())
			} else {
				clear(f.groupCount[s])
			}
		} else {
			if f.childCount[s] == nil {
				f.childCount[s] = make([]int32, f.batches*f.pl.TasksPerStage)
			} else {
				clear(f.childCount[s])
			}
		}
	}
}

// OnComplete is the codelet.OnComplete for the fine-grain variants.
func (f *firing) OnComplete(ref codelet.Ref, emit func(codelet.Ref)) int {
	return f.onCompleteBatch(0, ref, emit)
}

// onCompleteBatch processes a completion within one batch's counters.
func (f *firing) onCompleteBatch(batch int, ref codelet.Ref, emit func(codelet.Ref)) int {
	if ref.Stage >= f.lastStage {
		return 0
	}
	tr := f.transitions[ref.Stage]
	next := ref.Stage + 1
	if f.shared {
		base := batch * tr.NumGroups()
		groups := tr.ParentGroups[ref.Index]
		for _, g := range groups {
			f.groupCount[ref.Stage][base+int(g)]++
			if int(f.groupCount[ref.Stage][base+int(g)]) == len(tr.GroupParents[g]) {
				for _, child := range tr.Groups[g] {
					emit(codelet.Ref{Stage: next, Index: child})
				}
			}
		}
		return len(groups)
	}
	base := batch * f.pl.TasksPerStage
	children := tr.Children(ref.Index)
	for _, c := range children {
		f.childCount[ref.Stage][base+int(c)]++
		if int(f.childCount[ref.Stage][base+int(c)]) == tr.DepCount(c) {
			emit(codelet.Ref{Stage: next, Index: c})
		}
	}
	return len(children)
}
