package core

import (
	"testing"

	"codeletfft/internal/codelet"
	"codeletfft/internal/fft"
)

func ref(stage, index int) codelet.Ref {
	return codelet.Ref{Stage: int32(stage), Index: int32(index)}
}

func TestStageSeedOrders(t *testing.T) {
	n := 16
	isPerm := func(refs []int32) bool {
		seen := make([]bool, n)
		for _, r := range refs {
			if r < 0 || int(r) >= n || seen[r] {
				return false
			}
			seen[r] = true
		}
		return len(refs) == n
	}
	for _, o := range []Order{OrderNatural, OrderReversed, OrderBitReversed, OrderRandom} {
		refs := stageSeed(o, 2, n, 7)
		idx := make([]int32, len(refs))
		for i, r := range refs {
			if r.Stage != 2 {
				t.Fatalf("%v: wrong stage %d", o, r.Stage)
			}
			idx[i] = r.Index
		}
		if !isPerm(idx) {
			t.Fatalf("%v is not a permutation: %v", o, idx)
		}
	}
	// Specific orders.
	nat := stageSeed(OrderNatural, 0, 4, 1)
	if nat[0].Index != 0 || nat[3].Index != 3 {
		t.Fatalf("natural = %v", nat)
	}
	rev := stageSeed(OrderReversed, 0, 4, 1)
	if rev[0].Index != 3 || rev[3].Index != 0 {
		t.Fatalf("reversed = %v", rev)
	}
	br := stageSeed(OrderBitReversed, 0, 8, 1)
	want := []int32{0, 4, 2, 6, 1, 5, 3, 7}
	for i := range want {
		if br[i].Index != want[i] {
			t.Fatalf("bitrev = %v, want %v", br, want)
		}
	}
}

func TestStageSeedRandomDeterministic(t *testing.T) {
	a := stageSeed(OrderRandom, 0, 64, 5)
	b := stageSeed(OrderRandom, 0, 64, 5)
	c := stageSeed(OrderRandom, 0, 64, 6)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed gave different orders")
	}
	if !diff {
		t.Fatal("different seeds gave identical orders")
	}
}

func TestGroupSeedCoversAllParentsOnce(t *testing.T) {
	for _, cfg := range []struct{ n, p int }{{1 << 13, 64}, {1 << 15, 64}, {1 << 10, 8}} {
		pl, err := fft.NewPlan(cfg.n, cfg.p)
		if err != nil {
			t.Fatal(err)
		}
		penult := pl.NumStages - 2
		if penult < 0 {
			continue
		}
		tr := pl.BuildTransition(penult)
		refs := groupSeed(tr, int32(penult), pl.TasksPerStage)
		seen := make([]bool, pl.TasksPerStage)
		for _, r := range refs {
			if seen[r.Index] {
				t.Fatalf("N=%d P=%d: parent %d seeded twice", cfg.n, cfg.p, r.Index)
			}
			seen[r.Index] = true
		}
		if len(refs) != pl.TasksPerStage {
			t.Fatalf("N=%d P=%d: seeded %d of %d parents", cfg.n, cfg.p, len(refs), pl.TasksPerStage)
		}
	}
}

func TestFiringEmitsWhenAllParentsDone(t *testing.T) {
	pl, err := fft.NewPlan(1<<12, 64)
	if err != nil {
		t.Fatal(err)
	}
	transitions := []*fft.Transition{pl.BuildTransition(0), nil}
	for _, shared := range []bool{true, false} {
		f := newFiring(pl, transitions, shared, pl.NumStages-1)
		emitted := 0
		// Complete every stage-0 codelet; exactly all stage-1 codelets
		// must fire, each exactly once.
		for i := 0; i < pl.TasksPerStage; i++ {
			f.OnComplete(ref(0, i), func(c codelet.Ref) { emitted++ })
		}
		if emitted != pl.TasksPerStage {
			t.Fatalf("shared=%v: emitted %d, want %d", shared, emitted, pl.TasksPerStage)
		}
		// Last-stage completions emit nothing.
		if n := f.OnComplete(ref(1, 0), func(codelet.Ref) { t.Fatal("last stage emitted") }); n != 0 {
			t.Fatalf("last stage performed %d updates", n)
		}
	}
}

func TestFiringResetClearsCounters(t *testing.T) {
	pl, err := fft.NewPlan(1<<12, 64)
	if err != nil {
		t.Fatal(err)
	}
	transitions := []*fft.Transition{pl.BuildTransition(0), nil}
	f := newFiring(pl, transitions, true, pl.NumStages-1)
	for i := 0; i < pl.TasksPerStage; i++ {
		f.OnComplete(ref(0, i), func(codelet.Ref) {})
	}
	f.Reset()
	emitted := 0
	for i := 0; i < pl.TasksPerStage; i++ {
		f.OnComplete(ref(0, i), func(codelet.Ref) { emitted++ })
	}
	if emitted != pl.TasksPerStage {
		t.Fatalf("after reset emitted %d, want %d", emitted, pl.TasksPerStage)
	}
}

func TestFiringStopsAtLastStage(t *testing.T) {
	// Guided phase A: lastStage = lastEarly means completing a last-early
	// codelet performs no updates.
	pl, err := fft.NewPlan(1<<15, 64) // 3 stages
	if err != nil {
		t.Fatal(err)
	}
	transitions := make([]*fft.Transition, pl.NumStages)
	transitions[0] = pl.BuildTransition(0)
	transitions[1] = pl.BuildTransition(1)
	f := newFiring(pl, transitions, true, 0) // phase A with lastEarly=0
	if n := f.OnComplete(ref(0, 5), func(codelet.Ref) { t.Fatal("phase A propagated") }); n != 0 {
		t.Fatalf("phase A performed %d updates", n)
	}
}
