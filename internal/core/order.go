package core

import (
	"math/rand"

	"codeletfft/internal/codelet"
	"codeletfft/internal/fft"
)

// stageSeed arranges the n codelets of a stage in the requested initial
// pool order. n is a power of two (it is N/P).
func stageSeed(order Order, stage int32, n int, seed int64) []codelet.Ref {
	refs := make([]codelet.Ref, n)
	switch order {
	case OrderNatural:
		for i := range refs {
			refs[i] = codelet.Ref{Stage: stage, Index: int32(i)}
		}
	case OrderReversed:
		for i := range refs {
			refs[i] = codelet.Ref{Stage: stage, Index: int32(n - 1 - i)}
		}
	case OrderBitReversed:
		width := fft.Log2(n)
		if width < 0 {
			// Not a power of two: fall back to natural order.
			for i := range refs {
				refs[i] = codelet.Ref{Stage: stage, Index: int32(i)}
			}
			break
		}
		for i := range refs {
			refs[i] = codelet.Ref{Stage: stage, Index: int32(fft.BitReverse(int64(i), width))}
		}
	case OrderRandom:
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		for i, p := range perm {
			refs[i] = codelet.Ref{Stage: stage, Index: int32(p)}
		}
	default:
		panic("core: unknown order")
	}
	return refs
}

// groupSeed arranges the codelets of stage — the parent side of
// transition tr — so that codelets sharing the same child set are
// contiguous, the seeding Alg. 3 prescribes for the guided algorithm's
// second phase ("for every 64 codelets of (last_stage−1) that have the
// same child codelets"). In regular transitions each sibling group's
// parent list is exactly such a set; in irregular transitions a parent
// can feed several groups and is seeded once, at its first group.
func groupSeed(tr *fft.Transition, stage int32, numTasks int) []codelet.Ref {
	refs := make([]codelet.Ref, 0, numTasks)
	seen := make([]bool, numTasks)
	for g := range tr.Groups {
		for _, p := range tr.GroupParents[g] {
			if !seen[p] {
				seen[p] = true
				refs = append(refs, codelet.Ref{Stage: stage, Index: p})
			}
		}
	}
	return refs
}
