package core

import "testing"

func TestRun2DNumericsVerified(t *testing.T) {
	for _, shape := range []struct{ r, c int }{{32, 64}, {64, 64}, {128, 32}} {
		res, err := Run2D(Options2D{Rows: shape.r, Cols: shape.c, TaskSize: 8, Check: true})
		if err != nil {
			t.Fatalf("%dx%d: %v", shape.r, shape.c, err)
		}
		if !res.Checked || res.MaxError > 1e-8 {
			t.Fatalf("%dx%d: max error %g", shape.r, shape.c, res.MaxError)
		}
		if res.GFLOPS <= 0 || res.RowCycles <= 0 || res.RowCycles >= res.Cycles {
			t.Fatalf("%dx%d: implausible timing row=%d total=%d",
				shape.r, shape.c, res.RowCycles, res.Cycles)
		}
	}
}

func TestRun2DLargerTasks(t *testing.T) {
	res, err := Run2D(Options2D{Rows: 128, Cols: 128, TaskSize: 64, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxError > 1e-8 {
		t.Fatalf("max error %g", res.MaxError)
	}
}

func TestRun2DColumnPassSlower(t *testing.T) {
	// The column pass reads with stride Cols (whole columns on one DRAM
	// bank), so with equal dimensions it should take at least as long as
	// the contiguous row pass.
	res, err := Run2D(Options2D{Rows: 256, Cols: 256, SkipNumerics: true})
	if err != nil {
		t.Fatal(err)
	}
	colCycles := res.Cycles - res.RowCycles
	if colCycles < res.RowCycles {
		t.Fatalf("column pass (%d) finished faster than row pass (%d)", colCycles, res.RowCycles)
	}
}

func TestRun2DValidation(t *testing.T) {
	if _, err := Run2D(Options2D{Rows: 10, Cols: 16}); err == nil {
		t.Fatal("non-power-of-two rows accepted")
	}
	if _, err := Run2D(Options2D{Rows: 16, Cols: 16, SkipNumerics: true, Check: true}); err == nil {
		t.Fatal("Check+SkipNumerics accepted")
	}
}

func TestRun2DDeterministic(t *testing.T) {
	run := func() *Result2D {
		res, err := Run2D(Options2D{Rows: 64, Cols: 128, SkipNumerics: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic 2-D run: %d vs %d", a.Cycles, b.Cycles)
	}
}
