// End-to-end tests of the streaming spectrogram endpoint: NDJSON
// framing, spectral correctness against the reference DFT, shape
// validation, and the drain e2e — a stream admitted before drain
// finishes every frame, and zero in-flight requests are severed.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"codeletfft"
	"codeletfft/internal/fft"
)

// postSTFT posts one spectrogram request and parses the NDJSON stream.
// It returns the response status, the header line, the frames (indexed
// by frame number), and the trailing error line's message if one came.
func postSTFT(t *testing.T, url string, req stftRequest) (int, stftHeader, map[int]stftFrame, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/fft/stft", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, stftHeader{}, nil, ""
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		t.Fatalf("stream ended before the header line: %v", sc.Err())
	}
	var hdr stftHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header line %q: %v", sc.Text(), err)
	}
	frames := make(map[int]stftFrame)
	for sc.Scan() {
		var e stftError
		if json.Unmarshal(sc.Bytes(), &e) == nil && e.Error != "" {
			return resp.StatusCode, hdr, frames, e.Error
		}
		var f stftFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("frame line %q: %v", sc.Text(), err)
		}
		frames[f.I] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return resp.StatusCode, hdr, frames, ""
}

// TestSTFTEndpoint checks the served spectrogram bin-for-bin against
// the reference DFT of each windowed frame, for a power-of-two and a
// mixed-radix frame length.
func TestSTFTEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1})
	for _, frame := range []int{16, 12} {
		hop := frame / 2
		samples := make([]float64, 5*frame)
		for i := range samples {
			samples[i] = math.Sin(2*math.Pi*3*float64(i)/float64(frame)) + 0.3*float64(i%5)
		}
		status, hdr, frames, streamErr := postSTFT(t, ts.URL, stftRequest{
			Frame: frame, Hop: hop, Window: "hann", Samples: samples,
		})
		if status != http.StatusOK {
			t.Fatalf("frame=%d: status = %d, want 200", frame, status)
		}
		if streamErr != "" {
			t.Fatalf("frame=%d: stream error %q", frame, streamErr)
		}
		wantFrames := 1 + (len(samples)-frame)/hop
		if hdr.Frames != wantFrames || hdr.Bins != frame || hdr.Hop != hop {
			t.Fatalf("frame=%d: header = %+v, want frames=%d bins=%d hop=%d",
				frame, hdr, wantFrames, frame, hop)
		}
		if len(frames) != wantFrames {
			t.Fatalf("frame=%d: got %d frame lines, want %d", frame, len(frames), wantFrames)
		}
		win := codeletfft.HannWindow(frame)
		for fi := 0; fi < wantFrames; fi++ {
			x := make([]complex128, frame)
			for i := range x {
				x[i] = complex(samples[fi*hop+i]*win[i], 0)
			}
			want := fft.DFT(x)
			got, ok := frames[fi]
			if !ok {
				t.Fatalf("frame=%d: frame %d missing from stream", frame, fi)
			}
			for k := range want {
				d := math.Hypot(got.Re[k]-real(want[k]), got.Im[k]-imag(want[k]))
				if d > 1e-9*float64(frame) {
					t.Fatalf("frame=%d: frame %d bin %d diverged by %g", frame, fi, k, d)
				}
			}
		}
	}
}

// TestSTFTBadRequests: malformed spectrogram shapes are client errors.
func TestSTFTBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1, MaxN: 1 << 12})
	for name, req := range map[string]stftRequest{
		"zero frame":     {Frame: 0, Hop: 1},
		"oversize frame": {Frame: 1 << 13, Hop: 1},
		"zero hop":       {Frame: 16, Hop: 0},
		"hop over frame": {Frame: 16, Hop: 17},
		"unknown window": {Frame: 16, Hop: 8, Window: "hamming"},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/fft/stft", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestSTFTEmptySignal: a signal shorter than one frame streams a
// zero-frame spectrogram, not an error.
func TestSTFTEmptySignal(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1})
	status, hdr, frames, streamErr := postSTFT(t, ts.URL, stftRequest{
		Frame: 16, Hop: 8, Samples: make([]float64, 10),
	})
	if status != http.StatusOK || streamErr != "" {
		t.Fatalf("status = %d, err = %q, want 200 with no error", status, streamErr)
	}
	if hdr.Frames != 0 || len(frames) != 0 {
		t.Fatalf("got %d/%d frames, want 0", hdr.Frames, len(frames))
	}
}

// TestSTFTStreamSurvivesDrain is the graceful-drain e2e: a spectrogram
// stream admitted before drain keeps flowing through drain and delivers
// every frame — zero severed in-flight requests — while a stream
// arriving after drain starts is refused with 503.
func TestSTFTStreamSurvivesDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: -1})
	// Enough samples for several chunks, so some are still unsent when
	// drain begins: 4·stftChunkFrames frames at frame=8, hop=1.
	const frame, hop = 8, 1
	nf := 4 * stftChunkFrames
	samples := make([]float64, frame+(nf-1)*hop)
	for i := range samples {
		samples[i] = math.Cos(2 * math.Pi * float64(i) / 32)
	}

	// The executor hook parks the stream's first chunk until the test
	// has flipped the server into draining mode.
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	s.execHook = func(key batchKey, live int) {
		if key.kind == KindSTFT {
			once.Do(func() { close(started) })
			<-gate
		}
	}

	type result struct {
		status    int
		frames    map[int]stftFrame
		streamErr string
	}
	done := make(chan result, 1)
	go func() {
		status, _, frames, streamErr := postSTFT(t, ts.URL, stftRequest{
			Frame: frame, Hop: hop, Window: "hann", Samples: samples,
		})
		done <- result{status, frames, streamErr}
	}()

	<-started
	s.StartDrain()
	close(gate)

	// A stream arriving after drain started is shed, not queued.
	body, _ := json.Marshal(stftRequest{Frame: frame, Hop: hop, Samples: samples})
	resp, err := http.Post(ts.URL+"/fft/stft", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain stream status = %d, want 503", resp.StatusCode)
	}

	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight stream status = %d, want 200", r.status)
	}
	if r.streamErr != "" {
		t.Fatalf("in-flight stream severed by drain: %q", r.streamErr)
	}
	if len(r.frames) != nf {
		t.Fatalf("in-flight stream delivered %d frames through drain, want %d", len(r.frames), nf)
	}

	// Drain completes only after the stream's admission slot is
	// released — the queue must be empty, nothing leaked.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after stream: %v", err)
	}
	if got := len(s.sem); got != 0 {
		t.Fatalf("queue depth = %d after drained stream, want 0", got)
	}
}
