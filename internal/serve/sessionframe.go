// The FFS2 session codec is the resident-shard extension of the FFS1
// one-shot shard frame: instead of round-tripping every vector through
// the coordinator twice (columns out/back, rows out/back), a
// coordinator opens a *session* on each worker, ships that worker's
// column slab exactly once, lets the workers exchange the four-step
// transpose among themselves, and fetches each worker's finished row
// block exactly once — so each element crosses the coordinator's wire
// at most once in each direction.
//
//	offset  size  field
//	0       4     magic "FFS2"
//	4       1     version (2) — negotiation: an FFS1-only worker rejects
//	              the magic with 400 and the coordinator falls back to
//	              one-shot Exec frames
//	5       1     op      (OpSessOpen … OpSessAck)
//	6       1     flags   (bit 0: FlagResident — the resident-session
//	              capability; a worker acks Open with it set)
//	7       1     reserved, must be 0
//	8       8     session (uint64 LE, coordinator-chosen session id)
//	16      4     vecLen   (uint32 LE)
//	20      4     vecCount (uint32 LE)
//	24      8     arg0     (uint64 LE, op-specific, see below)
//	32      8     arg1     (uint64 LE, op-specific)
//	40      …     payload  (vecLen·vecCount complex128 as float64 LE
//	              pairs, or the session spec for OpSessOpen)
//
// Op semantics (arg0/arg1 meanings):
//
//   - OpSessOpen: payload is the encoded SessionSpec; vecLen, vecCount,
//     arg0, arg1 are 0. Response: OpSessAck with FlagResident set.
//   - OpSessCols: the worker's column slab — vecLen = N1, vecCount =
//     ColCount, arg0 = ColStart, arg1 = 0. The worker FFTs every
//     column, applies the four-step twiddle, keeps its own row block
//     resident, and pushes each peer's row block to that peer as
//     OpSessExchange frames. Response: OpSessAck (no payload — the
//     columns never travel back).
//   - OpSessExchange (worker → worker): vecLen = receiver's RowCount,
//     vecCount = sender's column count, arg0 = first column index,
//     arg1 = receiver's RowStart (echoed for validation). Vector v,
//     element i is matrix cell (row arg1+i, column arg0+v). Response:
//     OpSessAck.
//   - OpSessRows: request is header-only (vecLen = vecCount = 0); the
//     response carries the worker's finished row block — vecLen = N2,
//     vecCount = RowCount, arg0 = RowStart.
//   - OpSessClose: header-only; drops the session state. Closing an
//     unknown session acks anyway (abort paths are idempotent).
//   - OpSessAck: header-only generic success response.
//
// Decoding is strict and mirrors the FFS1 rules: unknown versions/ops,
// non-zero reserved bytes, header/payload length mismatches, and
// malformed specs are rejected with errors wrapping ErrBadFrame, never
// a panic (FuzzSessionFrame). Encoding is canonical: re-encoding a
// decoded frame reproduces the input bytes exactly.
package serve

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SessionOp selects what a session frame does.
type SessionOp uint8

const (
	// OpSessOpen establishes a resident session from a SessionSpec.
	OpSessOpen SessionOp = iota
	// OpSessCols ships a worker's column slab for the resident phase.
	OpSessCols
	// OpSessExchange carries one worker's contribution to a peer's
	// resident row block (the on-worker four-step transpose).
	OpSessExchange
	// OpSessRows fetches a worker's finished row block.
	OpSessRows
	// OpSessClose drops the session state.
	OpSessClose
	// OpSessAck is the generic header-only success response.
	OpSessAck

	sessOpCount
)

// String names the op for logs and error messages.
func (op SessionOp) String() string {
	switch op {
	case OpSessOpen:
		return "open"
	case OpSessCols:
		return "cols"
	case OpSessExchange:
		return "exchange"
	case OpSessRows:
		return "rows"
	case OpSessClose:
		return "close"
	case OpSessAck:
		return "ack"
	default:
		return fmt.Sprintf("sessop(%d)", uint8(op))
	}
}

const (
	sessMagic   = "FFS2"
	sessVersion = 2
	// SessionHeaderLen is the fixed FFS2 header size — callers sizing
	// pooled buffers or accounting wire bytes add 16 per payload element.
	SessionHeaderLen = 40
	sessHeaderLen    = SessionHeaderLen

	// FlagResident is the resident-session capability bit: set by a
	// worker in its OpSessOpen ack to confirm it holds shards resident
	// across phases. A coordinator that does not see it falls back to
	// FFS1 one-shot frames.
	FlagResident byte = 1 << 0

	// maxSessionPeers bounds the peer table so a hostile spec cannot
	// drive a huge allocation.
	maxSessionPeers = 4096
)

// PeerRange names one peer worker and the row block it owns.
type PeerRange struct {
	Addr               string
	RowStart, RowCount int
}

// SessionSpec is the OpSessOpen payload: the four-step geometry and
// this worker's slice of it. Peers lists the OTHER workers' row blocks
// (self excluded) so the worker knows where to push each exchange
// sub-block; Peers' ranges plus [RowStart, RowStart+RowCount) must tile
// [0, N1) exactly.
type SessionSpec struct {
	N1, N2             int
	ColStart, ColCount int // columns this worker owns (of N2)
	RowStart, RowCount int // rows this worker owns (of N1)
	Peers              []PeerRange
}

// Validate checks the spec invariants shared by encode and decode.
func (s SessionSpec) Validate() error {
	if s.N1 < 2 || s.N2 < 2 {
		return fmt.Errorf("%w: four-step factors %d×%d must both be ≥ 2", ErrBadFrame, s.N1, s.N2)
	}
	if s.N1 > MaxFrameElems || s.N2 > MaxFrameElems || s.N1*s.N2 > MaxFrameElems {
		return fmt.Errorf("%w: transform %d×%d exceeds the %d-element limit", ErrBadFrame, s.N1, s.N2, MaxFrameElems)
	}
	if s.ColCount < 1 || s.ColStart < 0 || s.ColStart+s.ColCount > s.N2 {
		return fmt.Errorf("%w: columns [%d, %d) outside [0, %d)", ErrBadFrame, s.ColStart, s.ColStart+s.ColCount, s.N2)
	}
	if s.RowCount < 1 || s.RowStart < 0 || s.RowStart+s.RowCount > s.N1 {
		return fmt.Errorf("%w: rows [%d, %d) outside [0, %d)", ErrBadFrame, s.RowStart, s.RowStart+s.RowCount, s.N1)
	}
	if len(s.Peers) > maxSessionPeers {
		return fmt.Errorf("%w: %d peers exceeds limit %d", ErrBadFrame, len(s.Peers), maxSessionPeers)
	}
	// Own block plus the peers' blocks must tile [0, N1) exactly: total
	// row count N1 and no overlaps. Sum plus pairwise disjointness of
	// validated sub-ranges of [0, N1) implies the tiling.
	total := s.RowCount
	for i, p := range s.Peers {
		if p.Addr == "" || len(p.Addr) > 255 {
			return fmt.Errorf("%w: peer %d address length %d outside [1, 255]", ErrBadFrame, i, len(p.Addr))
		}
		if p.RowCount < 1 || p.RowStart < 0 || p.RowStart+p.RowCount > s.N1 {
			return fmt.Errorf("%w: peer %d rows [%d, %d) outside [0, %d)", ErrBadFrame, i, p.RowStart, p.RowStart+p.RowCount, s.N1)
		}
		total += p.RowCount
		if overlap(p.RowStart, p.RowCount, s.RowStart, s.RowCount) {
			return fmt.Errorf("%w: peer %d rows overlap the worker's own block", ErrBadFrame, i)
		}
		for j := 0; j < i; j++ {
			if overlap(p.RowStart, p.RowCount, s.Peers[j].RowStart, s.Peers[j].RowCount) {
				return fmt.Errorf("%w: peers %d and %d have overlapping row blocks", ErrBadFrame, j, i)
			}
		}
	}
	if total != s.N1 {
		return fmt.Errorf("%w: row blocks cover %d of %d rows", ErrBadFrame, total, s.N1)
	}
	return nil
}

func overlap(aStart, aCount, bStart, bCount int) bool {
	return aStart < bStart+bCount && bStart < aStart+aCount
}

// specLen returns the encoded byte length of the spec.
func specLen(s *SessionSpec) int {
	n := 26 // 6×uint32 + uint16 peer count
	for _, p := range s.Peers {
		n += 10 + len(p.Addr) // 2×uint32 + uint16 len + addr
	}
	return n
}

func appendSpec(dst []byte, s *SessionSpec) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.N1))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.N2))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.ColStart))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.ColCount))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.RowStart))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.RowCount))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s.Peers)))
	for _, p := range s.Peers {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.RowStart))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.RowCount))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Addr)))
		dst = append(dst, p.Addr...)
	}
	return dst
}

func decodeSpec(b []byte) (SessionSpec, error) {
	var s SessionSpec
	if len(b) < 26 {
		return s, fmt.Errorf("%w: %d bytes is shorter than the %d-byte spec header", ErrBadFrame, len(b), 26)
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(b[off:])) }
	s.N1, s.N2 = u32(0), u32(4)
	s.ColStart, s.ColCount = u32(8), u32(12)
	s.RowStart, s.RowCount = u32(16), u32(20)
	peers := int(binary.LittleEndian.Uint16(b[24:]))
	off := 26
	if peers > 0 {
		s.Peers = make([]PeerRange, peers)
		for i := range s.Peers {
			if len(b) < off+10 {
				return s, fmt.Errorf("%w: truncated peer table", ErrBadFrame)
			}
			s.Peers[i].RowStart = int(binary.LittleEndian.Uint32(b[off:]))
			s.Peers[i].RowCount = int(binary.LittleEndian.Uint32(b[off+4:]))
			alen := int(binary.LittleEndian.Uint16(b[off+8:]))
			off += 10
			if len(b) < off+alen {
				return s, fmt.Errorf("%w: truncated peer address", ErrBadFrame)
			}
			s.Peers[i].Addr = string(b[off : off+alen])
			off += alen
		}
	}
	if off != len(b) {
		return s, fmt.Errorf("%w: %d trailing bytes after the spec", ErrBadFrame, len(b)-off)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// SessionFrame is one decoded FFS2 frame. Data (when the op carries a
// complex payload) holds VecLen·VecCount elements with vector v at
// Data[v·VecLen:(v+1)·VecLen]; Spec is set for OpSessOpen only.
type SessionFrame struct {
	Op    SessionOp
	Flags byte
	ID    uint64
	// VecLen and VecCount shape the complex payload; Arg0 and Arg1 are
	// op-specific indices (see the package comment).
	VecLen, VecCount int
	Arg0, Arg1       int
	Spec             *SessionSpec
	Data             []complex128
}

// validateSessionHeader checks the header invariants shared by encode
// and decode.
func validateSessionHeader(f SessionFrame) error {
	if f.Op >= sessOpCount {
		return fmt.Errorf("%w: unknown session op %d", ErrBadFrame, f.Op)
	}
	if f.VecLen < 0 || f.VecCount < 0 || f.Arg0 < 0 || f.Arg1 < 0 {
		return fmt.Errorf("%w: negative header field", ErrBadFrame)
	}
	if (f.VecLen == 0) != (f.VecCount == 0) {
		return fmt.Errorf("%w: vecLen %d and vecCount %d must be zero together", ErrBadFrame, f.VecLen, f.VecCount)
	}
	if f.VecLen > 0 && f.VecLen*f.VecCount > MaxFrameElems {
		return fmt.Errorf("%w: %d elements exceeds limit %d", ErrBadFrame, f.VecLen*f.VecCount, MaxFrameElems)
	}
	switch f.Op {
	case OpSessOpen:
		if f.VecLen != 0 || f.Arg0 != 0 || f.Arg1 != 0 {
			return fmt.Errorf("%w: open frames carry only a spec", ErrBadFrame)
		}
	case OpSessCols:
		if f.VecLen == 0 {
			return fmt.Errorf("%w: cols frame carries no vectors", ErrBadFrame)
		}
		if f.Arg1 != 0 {
			return fmt.Errorf("%w: cols arg1 must be 0", ErrBadFrame)
		}
	case OpSessExchange:
		if f.VecLen == 0 {
			return fmt.Errorf("%w: exchange frame carries no vectors", ErrBadFrame)
		}
	case OpSessClose, OpSessAck:
		if f.VecLen != 0 || f.Arg0 != 0 || f.Arg1 != 0 {
			return fmt.Errorf("%w: %s frames are header-only", ErrBadFrame, f.Op)
		}
	}
	return nil
}

// SessionFrameLen returns the exact encoded byte length of f — the
// size to pass AcquireFrame so AppendSessionFrame never reallocates.
func SessionFrameLen(f SessionFrame) int {
	n := sessHeaderLen + 16*len(f.Data)
	if f.Op == OpSessOpen && f.Spec != nil {
		n += specLen(f.Spec)
	}
	return n
}

// AppendSessionFrame appends the encoded frame to dst and returns the
// extended slice. The frame must satisfy the documented invariants;
// len(Data) must equal VecLen·VecCount.
func AppendSessionFrame(dst []byte, f SessionFrame) ([]byte, error) {
	if err := validateSessionHeader(f); err != nil {
		return nil, err
	}
	if len(f.Data) != f.VecLen*f.VecCount {
		return nil, fmt.Errorf("%w: %d payload elements, header says %d×%d",
			ErrBadFrame, len(f.Data), f.VecCount, f.VecLen)
	}
	if f.Op == OpSessOpen {
		if f.Spec == nil {
			return nil, fmt.Errorf("%w: open frame without a spec", ErrBadFrame)
		}
		if err := f.Spec.Validate(); err != nil {
			return nil, err
		}
	} else if f.Spec != nil {
		return nil, fmt.Errorf("%w: only open frames carry a spec", ErrBadFrame)
	}
	dst = appendSessionHeader(dst, f)
	if f.Op == OpSessOpen {
		dst = appendSpec(dst, f.Spec)
		return dst, nil
	}
	return AppendComplexPayload(dst, f.Data), nil
}

// appendSessionHeader writes the 40-byte header only — the seam the
// streaming writers use to emit a header followed by payload chunks
// encoded straight out of resident buffers.
func appendSessionHeader(dst []byte, f SessionFrame) []byte {
	dst = append(dst, sessMagic...)
	dst = append(dst, sessVersion, byte(f.Op), f.Flags, 0)
	dst = binary.LittleEndian.AppendUint64(dst, f.ID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.VecLen))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.VecCount))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Arg0))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Arg1))
	return dst
}

// EncodeSessionFrame encodes the frame into a fresh buffer (tests and
// one-off paths; the hot path encodes into pooled buffers via
// AppendSessionFrame).
func EncodeSessionFrame(f SessionFrame) ([]byte, error) {
	return AppendSessionFrame(make([]byte, 0, SessionFrameLen(f)), f)
}

// IsSessionFrame reports whether b starts with the FFS2 magic — the
// dispatch sniff that routes /fft/shard bodies between the one-shot
// FFS1 path and the session path.
func IsSessionFrame(b []byte) bool {
	return len(b) >= 4 && string(b[:4]) == sessMagic
}

// sessDecodeMode selects how decodeSession materializes the payload.
type sessDecodeMode int

const (
	sessDecodeAlloc  sessDecodeMode = iota // allocate Data
	sessDecodeInto                         // decode into the caller's buffer
	sessDecodeHeader                       // validate only; leave Data nil
)

// DecodeSessionFrame parses one session frame from b, allocating the
// payload. See DecodeSessionFrameInto for the zero-alloc variant.
func DecodeSessionFrame(b []byte) (SessionFrame, error) {
	return decodeSession(b, nil, sessDecodeAlloc)
}

// DecodeSessionFrameInto parses one session frame from b, decoding the
// complex payload directly into dst — which must have exactly
// vecLen·vecCount elements — so the wire bytes land in the engine's
// scratch (or the transform's output slab) with no intermediate copy.
func DecodeSessionFrameInto(b []byte, dst []complex128) (SessionFrame, error) {
	return decodeSession(b, dst, sessDecodeInto)
}

// DecodeSessionHeader validates the frame (header invariants AND exact
// payload length) but does not materialize the payload: Data stays nil.
// The dispatch step uses it to pick a destination buffer before calling
// DecodeSessionFrameInto, or to scatter strided payloads in place.
func DecodeSessionHeader(b []byte) (SessionFrame, error) {
	return decodeSession(b, nil, sessDecodeHeader)
}

func decodeSession(b []byte, dst []complex128, mode sessDecodeMode) (SessionFrame, error) {
	if len(b) < sessHeaderLen {
		return SessionFrame{}, fmt.Errorf("%w: %d bytes is shorter than the %d-byte session header",
			ErrBadFrame, len(b), sessHeaderLen)
	}
	if string(b[:4]) != sessMagic {
		return SessionFrame{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, b[:4])
	}
	if b[4] != sessVersion {
		return SessionFrame{}, fmt.Errorf("%w: unsupported session version %d", ErrBadFrame, b[4])
	}
	if b[7] != 0 {
		return SessionFrame{}, fmt.Errorf("%w: non-zero reserved byte", ErrBadFrame)
	}
	f := SessionFrame{
		Op:       SessionOp(b[5]),
		Flags:    b[6],
		ID:       binary.LittleEndian.Uint64(b[8:16]),
		VecLen:   int(binary.LittleEndian.Uint32(b[16:20])),
		VecCount: int(binary.LittleEndian.Uint32(b[20:24])),
	}
	arg0 := binary.LittleEndian.Uint64(b[24:32])
	arg1 := binary.LittleEndian.Uint64(b[32:40])
	if arg0 > uint64(MaxFrameElems) || arg1 > uint64(MaxFrameElems) {
		return SessionFrame{}, fmt.Errorf("%w: header fields exceed limit %d", ErrBadFrame, MaxFrameElems)
	}
	f.Arg0, f.Arg1 = int(arg0), int(arg1)
	if err := validateSessionHeader(f); err != nil {
		return SessionFrame{}, err
	}
	payload := b[sessHeaderLen:]
	if f.Op == OpSessOpen {
		spec, err := decodeSpec(payload)
		if err != nil {
			return SessionFrame{}, err
		}
		if mode != sessDecodeHeader {
			f.Spec = &spec
		}
		return f, nil
	}
	count := f.VecLen * f.VecCount
	if len(payload) != 16*count {
		return SessionFrame{}, fmt.Errorf("%w: payload is %d bytes, want exactly %d (%d×%d vectors)",
			ErrBadFrame, len(payload), 16*count, f.VecCount, f.VecLen)
	}
	if count == 0 || mode == sessDecodeHeader {
		return f, nil
	}
	if mode == sessDecodeInto {
		if len(dst) != count {
			return SessionFrame{}, fmt.Errorf("%w: destination has %d elements, frame carries %d",
				ErrBadFrame, len(dst), count)
		}
		f.Data = dst
	} else {
		f.Data = make([]complex128, count)
	}
	DecodeComplexPayload(f.Data, payload)
	return f, nil
}

// AppendComplexPayload appends src as float64 LE re/im pairs — the
// payload encoding shared by every frame format in this package.
func AppendComplexPayload(dst []byte, src []complex128) []byte {
	for _, c := range src {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(real(c)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(imag(c)))
	}
	return dst
}

// DecodeComplexPayload fills dst from payload, which must hold exactly
// 16·len(dst) bytes. The inverse of AppendComplexPayload.
func DecodeComplexPayload(dst []complex128, payload []byte) {
	_ = payload[16*len(dst)-1] // one bounds check for the whole loop
	for i := range dst {
		re := math.Float64frombits(binary.LittleEndian.Uint64(payload[16*i:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(payload[16*i+8:]))
		dst[i] = complex(re, im)
	}
}
