// The compact binary codec of the serving daemon. A frame is one FFT
// request or response:
//
//	offset  size  field
//	0       4     magic "FFB1"
//	4       1     version (1)
//	5       1     kind    (KindForward, KindInverse, KindReal, KindRealInverse)
//	6       1     elem    (elemComplex=0: 16-byte re/im float64 pairs;
//	                       elemReal=1: 8-byte float64 samples)
//	7       1     reserved, must be 0
//	8       4     count   (uint32 LE, number of payload elements)
//	12      …     payload (count·16 or count·8 bytes, float64 LE)
//
// Decoding is strict: a frame with a bad magic, unknown version/kind/
// elem, a non-zero reserved byte, an oversized count, or a payload
// whose length is not exactly count·elemsize (truncated or trailing
// bytes alike) is rejected with an error wrapping ErrBadFrame — never a
// panic, a property pinned by FuzzServeCodec. Encoding is canonical:
// re-encoding a decoded frame reproduces the input bytes exactly.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind is the transform a frame requests; a response frame carries the
// kind of the request it answers.
type Kind uint8

const (
	// KindForward is an in-place complex forward FFT (payload: N complex).
	KindForward Kind = iota
	// KindInverse is an in-place complex inverse FFT (payload: N complex).
	KindInverse
	// KindReal is a real-input forward FFT (request payload: N real
	// samples; response payload: N/2+1 complex Hermitian bins).
	KindReal
	// KindRealInverse recovers a real signal from its half-spectrum
	// (request payload: N/2+1 complex bins; response payload: N reals).
	KindRealInverse

	kindCount
)

// KindSTFT is the internal batch kind of the streaming spectrogram
// endpoint (POST /fft/stft): every chunk of windowed frames coalesces
// under batchKey{frame, KindSTFT} so concurrent spectrogram streams of
// one frame length share TransformBatch dispatches. It is deliberately
// outside the wire range — DecodeFrame rejects it like any unknown
// kind, so a binary frame can never smuggle one in.
const KindSTFT Kind = 255

// String names the kind as the JSON API spells it.
func (k Kind) String() string {
	switch k {
	case KindForward:
		return "forward"
	case KindInverse:
		return "inverse"
	case KindReal:
		return "real"
	case KindRealInverse:
		return "real-inverse"
	case KindSTFT:
		return "stft"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Element encodings of the payload.
const (
	elemComplex = 0
	elemReal    = 1
)

const (
	frameMagic   = "FFB1"
	frameVersion = 1
	headerLen    = 12

	// MaxFrameElems bounds the element count a decoder will accept
	// before even looking at the payload, so a hostile 4-byte count
	// cannot drive a huge allocation. 2^24 complex elements is a 256 MiB
	// payload — far above any size the daemon serves.
	MaxFrameElems = 1 << 24
)

// ErrBadFrame is wrapped by every frame decoding error.
var ErrBadFrame = errors.New("serve: bad frame")

// Frame is one decoded request or response. Exactly one of Complex and
// Real is non-nil, matching the frame's element encoding.
type Frame struct {
	Kind    Kind
	Complex []complex128
	Real    []float64
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. It errors if the frame has both (or neither) payload slice, an
// unknown kind, or an oversized payload.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if f.Kind >= kindCount {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, f.Kind)
	}
	var elem byte
	var count int
	switch {
	case f.Complex != nil && f.Real == nil:
		elem, count = elemComplex, len(f.Complex)
	case f.Real != nil && f.Complex == nil:
		elem, count = elemReal, len(f.Real)
	default:
		return nil, fmt.Errorf("%w: frame must carry exactly one payload", ErrBadFrame)
	}
	if count > MaxFrameElems {
		return nil, fmt.Errorf("%w: %d elements exceeds limit %d", ErrBadFrame, count, MaxFrameElems)
	}
	dst = append(dst, frameMagic...)
	dst = append(dst, frameVersion, byte(f.Kind), elem, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(count))
	if elem == elemComplex {
		for _, c := range f.Complex {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(real(c)))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(imag(c)))
		}
	} else {
		for _, v := range f.Real {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst, nil
}

// EncodeFrame encodes the frame into a fresh buffer.
func EncodeFrame(f Frame) ([]byte, error) {
	size := headerLen
	if f.Complex != nil {
		size += 16 * len(f.Complex)
	} else {
		size += 8 * len(f.Real)
	}
	return AppendFrame(make([]byte, 0, size), f)
}

// DecodeFrame parses one frame from b, which must contain exactly the
// frame — truncated payloads and trailing bytes are both rejected.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) < headerLen {
		return Frame{}, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrBadFrame, len(b), headerLen)
	}
	if string(b[:4]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, b[:4])
	}
	if b[4] != frameVersion {
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, b[4])
	}
	kind := Kind(b[5])
	if kind >= kindCount {
		return Frame{}, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, b[5])
	}
	elem := b[6]
	if elem != elemComplex && elem != elemReal {
		return Frame{}, fmt.Errorf("%w: unknown element encoding %d", ErrBadFrame, elem)
	}
	if b[7] != 0 {
		return Frame{}, fmt.Errorf("%w: non-zero reserved byte", ErrBadFrame)
	}
	count := int(binary.LittleEndian.Uint32(b[8:12]))
	if count > MaxFrameElems {
		return Frame{}, fmt.Errorf("%w: %d elements exceeds limit %d", ErrBadFrame, count, MaxFrameElems)
	}
	elemSize := 16
	if elem == elemReal {
		elemSize = 8
	}
	payload := b[headerLen:]
	if len(payload) != count*elemSize {
		return Frame{}, fmt.Errorf("%w: payload is %d bytes, want exactly %d (count %d)",
			ErrBadFrame, len(payload), count*elemSize, count)
	}
	f := Frame{Kind: kind}
	if elem == elemComplex {
		f.Complex = make([]complex128, count)
		for i := range f.Complex {
			re := math.Float64frombits(binary.LittleEndian.Uint64(payload[16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(payload[16*i+8:]))
			f.Complex[i] = complex(re, im)
		}
	} else {
		f.Real = make([]float64, count)
		for i := range f.Real {
			f.Real[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	}
	return f, nil
}
