package serve

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/
// on mux — the daemons' -pprof flag. It exists because importing
// net/http/pprof for its side effect registers on http.DefaultServeMux,
// which the daemons deliberately do not serve; registering explicitly
// keeps profiling opt-in and off the default mux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
