// The streaming spectrogram endpoint. POST /fft/stft takes a real
// signal plus frame/hop/window parameters and streams the spectrogram
// back as NDJSON — a header line, then one line per frame — flushing
// after every chunk, so a long signal's first frames arrive while the
// last are still being transformed.
//
// The endpoint rides the daemon's existing production controls rather
// than sidestepping them:
//
//   - Admission: a stream is refused up front with 503 under drain and
//     429 when the queue is full, like any other request, and holds one
//     queue slot for its whole lifetime so Drain cannot declare the
//     server idle while a stream is mid-flight.
//   - Micro-batching: frames are windowed in the handler and submitted
//     in chunks under batchKey{frame, KindSTFT}; chunks from concurrent
//     streams of one frame length coalesce into shared TransformBatch
//     dispatches.
//   - Graceful drain: chunks of an already-admitted stream keep flowing
//     during drain (the batcher flushes them immediately), so an
//     in-flight spectrogram finishes rather than being severed.
package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"codeletfft"
)

// stftChunkFrames bounds how many frames ride in one submitted chunk —
// the streaming granularity and the per-stream working set. It matches
// the batch executor's sweet spot: large enough to amortize the stage
// barrier, small enough that first output leaves quickly.
const stftChunkFrames = 64

// stftRequest is the endpoint's JSON wire format.
type stftRequest struct {
	// Frame is the analysis frame length (any planner-served length);
	// Hop is the sample advance between frames, in [1, Frame].
	Frame int `json:"frame"`
	Hop   int `json:"hop"`
	// Window selects the analysis window: "hann" (periodic, the
	// spectrogram default) or ""/"rect" for rectangular.
	Window string `json:"window"`
	// Samples is the real signal; ⌊(len−frame)/hop⌋+1 frames result.
	Samples []float64 `json:"samples"`
}

// stftHeader is the stream's first NDJSON line.
type stftHeader struct {
	Frames int `json:"frames"`
	Bins   int `json:"bins"`
	Hop    int `json:"hop"`
}

// stftFrame is one spectrogram frame line.
type stftFrame struct {
	I  int       `json:"i"`
	Re []float64 `json:"re"`
	Im []float64 `json:"im"`
}

// stftError trails the stream when a chunk fails after the header has
// been sent (the status code is already on the wire by then).
type stftError struct {
	Error string `json:"error"`
}

func (s *Server) handleSTFT(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Inc()
	defer func() { s.m.requestSec.Observe(time.Since(start).Seconds()) }()

	var req stftRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.m.bad.Inc()
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.checkN(req.Frame, KindSTFT); err != nil {
		s.m.bad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Hop < 1 || req.Hop > req.Frame {
		s.m.bad.Inc()
		http.Error(w, shapeErrorf("hop %d outside [1, frame=%d]", req.Hop, req.Frame).Error(), http.StatusBadRequest)
		return
	}
	var win []float64
	switch req.Window {
	case "hann":
		win = codeletfft.HannWindow(req.Frame)
	case "", "rect":
	default:
		s.m.bad.Inc()
		http.Error(w, shapeErrorf("unknown window %q", req.Window).Error(), http.StatusBadRequest)
		return
	}

	// Admission happens once, up front: drain refuses new streams, a
	// full queue sheds them, and the stream's slot is held until the
	// last frame is written so Drain waits out in-flight spectrograms.
	if s.draining.Load() {
		s.m.shedDrain.Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	d, err := s.deadlineFor(r)
	if err != nil {
		s.m.bad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.m.shedQueue.Inc()
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	s.m.stftStreams.Inc()
	nf := 0
	if len(req.Samples) >= req.Frame {
		nf = 1 + (len(req.Samples)-req.Frame)/req.Hop
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	_ = enc.Encode(stftHeader{Frames: nf, Bins: req.Frame, Hop: req.Hop})
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	key := batchKey{n: req.Frame, kind: KindSTFT}
	line := stftFrame{Re: make([]float64, req.Frame), Im: make([]float64, req.Frame)}
	for base := 0; base < nf; base += stftChunkFrames {
		cnt := min(stftChunkFrames, nf-base)
		frames := make([][]complex128, cnt)
		slab := make([]complex128, cnt*req.Frame)
		for f := 0; f < cnt; f++ {
			row := slab[f*req.Frame : (f+1)*req.Frame]
			src := req.Samples[(base+f)*req.Hop : (base+f)*req.Hop+req.Frame]
			if win != nil {
				for i, v := range src {
					row[i] = complex(v*win[i], 0)
				}
			} else {
				for i, v := range src {
					row[i] = complex(v, 0)
				}
			}
			frames[f] = row
		}

		// Continuation chunks of an admitted stream block for a slot
		// instead of shedding: severing a half-written spectrogram is
		// worse than queueing behind it.
		p := &pending{ctx: ctx, done: make(chan error, 1), frames: frames}
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.m.deadline.Inc()
			_ = enc.Encode(stftError{Error: "deadline exceeded"})
			return
		}
		s.batcherFor(key).add(p)
		var chunkErr error
		select {
		case chunkErr = <-p.done:
		case <-ctx.Done():
			chunkErr = ctx.Err()
		}
		if chunkErr != nil {
			s.m.deadline.Inc()
			_ = enc.Encode(stftError{Error: chunkErr.Error()})
			return
		}

		for f, row := range frames {
			line.I = base + f
			for i, v := range row {
				line.Re[i], line.Im[i] = real(v), imag(v)
			}
			if err := enc.Encode(line); err != nil {
				return // client went away
			}
		}
		s.m.stftFrames.Add(int64(cnt))
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.m.ok.Inc()
}
