// The shard-exec endpoint is the worker half of the cluster path
// (internal/dist): a coordinator four-steps a large transform and posts
// the column/row segments here as shard frames. Each shard executes
// synchronously through the same cached-plan batch engine the
// coalescing path uses — one TransformBatch over the shard's vectors,
// plus the twiddle-segment scaling for column shards — inside the
// server's admission and drain accounting, so a draining worker refuses
// shards with 503 exactly like client requests and Drain still proves
// the queue empty.
package serve

import (
	"fmt"
	"net/http"
	"time"

	"codeletfft"
	"codeletfft/internal/cache"
	"codeletfft/internal/fft"
)

// twiddleCache memoizes Twiddles(totalN) across column shards so a
// worker computes each modulus' table once. Column shards of a few
// transform sizes dominate real traffic, so 2×4 entries is ample; an
// entry for N=2^22 is 32 MiB, which also argues for a small bound.
var twiddleCache = cache.New[int, []complex128](2, 4, func(n int) uint64 {
	h := uint64(n) * 0x9e3779b97f4a7c15
	return h ^ h>>29
})

// handleShard executes one shard-endpoint frame. The body is read into
// a pooled buffer and dispatched on its magic: FFS2 session frames go
// to the resident-session handlers (session.go) unless sessions are
// disabled — in which case they fall through to the FFS1 decoder and
// fail with the same 400 an old worker would send, the behaviour the
// coordinator's capability negotiation relies on. FFS1 one-shot frames
// decode straight into pooled scratch, execute, and stream back out of
// it.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.shardRequests.Inc()
	defer func() { s.m.shardSec.Observe(time.Since(start).Seconds()) }()

	if s.draining.Load() {
		s.m.shedDrain.Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	bp, err := s.readShardBody(w, r)
	if err != nil {
		s.m.shardBad.Inc()
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	defer ReleaseFrame(bp)
	raw := *bp

	if IsSessionFrame(raw) && !s.cfg.DisableSessions {
		s.handleSession(w, r, raw)
		return
	}

	// FFS1 one-shot path: wire → pooled scratch, in-place execution,
	// streamed response out of the same scratch.
	elems := ShardFrameElems(raw)
	if elems < 0 {
		s.m.shardBad.Inc()
		_, err := DecodeShardFrame(raw) // recover the precise rejection
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scratch := AcquireComplex(elems)
	defer ReleaseComplex(scratch)
	f, err := DecodeShardFrameInto(raw, *scratch)
	if err != nil {
		s.m.shardBad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if f.VecLen > s.cfg.MaxN {
		s.m.shardBad.Inc()
		http.Error(w, fmt.Sprintf("vector length %d exceeds served maximum %d", f.VecLen, s.cfg.MaxN),
			http.StatusBadRequest)
		return
	}

	// One admission token covers the whole shard: it is a single
	// engine dispatch, and the token keeps Drain's empty-queue test
	// meaning "nothing in flight" for shards too.
	select {
	case s.sem <- struct{}{}:
	default:
		s.m.shedQueue.Inc()
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()

	if err := s.execShard(f); err != nil {
		s.m.internal.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.m.shardOK.Inc()
	s.m.shardVecs.Add(int64(f.VecCount()))
	hp := AcquireFrame(shardHeaderLen)
	defer ReleaseFrame(hp)
	writeFrameStreaming(w, appendShardHeader((*hp)[:0], f), f.Data)
}

// execShard transforms the frame's vectors in place. A panic inside the
// engine is converted to an error, the same isolation boundary the
// batch executor draws.
func (s *Server) execShard(f ShardFrame) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Inc()
			if e, ok := r.(error); ok {
				err = fmt.Errorf("shard panic: %w", e)
			} else {
				err = fmt.Errorf("shard panic: %v", r)
			}
		}
	}()
	plan, err := codeletfft.CachedHostPlan(f.VecLen, s.planOpts...)
	if err != nil {
		return err
	}
	batch := make([][]complex128, f.VecCount())
	for v := range batch {
		batch[v] = f.Vec(v)
	}
	if err := plan.TransformBatch(batch); err != nil {
		return err
	}
	if f.Op == OpColumns {
		// Power-of-two moduli keep the compact half table (bitwise
		// compatibility with the coordinator's serial reference);
		// other moduli — legal since the codec accepts any totalN
		// that is a multiple of vecLen — use the full table.
		pow2 := fft.Log2(f.TotalN) >= 0
		w, err := twiddleCache.GetOrCreate(f.TotalN, func() ([]complex128, error) {
			if pow2 {
				return fft.Twiddles(f.TotalN), nil
			}
			return fft.TwiddlesAny(f.TotalN), nil
		})
		if err != nil {
			return err
		}
		for v := range batch {
			if pow2 {
				fft.TwiddleScale(batch[v], w, f.Start+v, f.TotalN)
			} else {
				fft.TwiddleScaleAny(batch[v], w, f.Start+v, f.TotalN)
			}
		}
	}
	return nil
}
