// Package serve is the HTTP serving layer of the FFT daemon
// (cmd/fftserved): it accepts transform requests over JSON or the
// compact binary codec, coalesces same-shape requests inside a
// micro-batching window into one TransformBatch dispatch against the
// process-wide plan cache, and wraps the whole path in production
// controls — per-request deadlines, admission control with a bounded
// queue and explicit 429/503 shedding, panic-isolated batch executors,
// and graceful drain — with every stage instrumented through
// internal/metrics.
//
// Endpoints:
//
//	POST /fft       JSON request  {"kind","re","im"} → {"n","re","im"}
//	POST /fft/bin   binary Frame (codec.go) → binary Frame
//	POST /fft/stft  JSON request {"frame","hop","window","samples"} →
//	                chunked NDJSON spectrogram stream (stft.go)
//	GET  /metrics   plain-text instrument exposition
//	GET  /healthz   "ok", or 503 once draining
//
// Shedding semantics: a request that arrives while the server drains is
// refused with 503 before any work happens; one that finds the
// admission queue full is refused with 429; one whose deadline expires
// while queued or batched is answered 504 and skipped by the executor
// (its slot still counts against the queue until the batch completes).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"codeletfft"
	"codeletfft/internal/host"
	"codeletfft/internal/metrics"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultMinN           = 8
	DefaultMaxN           = 1 << 22
	DefaultBatchWindow    = 2 * time.Millisecond
	DefaultMaxBatch       = 64
	DefaultQueueLimit     = 1024
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxTimeout     = time.Minute
	DefaultSessionTTL     = 2 * time.Minute
	DefaultMaxSessions    = 8
)

// Config tunes a Server. The zero value of every field selects the
// package default.
type Config struct {
	// MinN and MaxN bound the accepted transform length (inclusive).
	// Complex transforms accept any length in the range; real
	// transforms additionally require a power of two ≥ 4.
	MinN, MaxN int
	// BatchWindow is how long the first request of a shape waits for
	// same-shape company before its batch flushes. Negative disables
	// coalescing (every request flushes immediately); 0 means
	// DefaultBatchWindow.
	BatchWindow time.Duration
	// MaxBatch flushes a shape's batch as soon as it reaches this many
	// requests, without waiting out the window.
	MaxBatch int
	// QueueLimit bounds the number of admitted-but-unfinished requests
	// across all shapes; beyond it requests are shed with 429.
	QueueLimit int
	// RequestTimeout is the per-request deadline when the client sends
	// none; MaxTimeout caps what a client may ask for via ?timeout=.
	RequestTimeout, MaxTimeout time.Duration
	// Workers and TaskSize configure the plans the executor resolves
	// (0 means the engine defaults: GOMAXPROCS workers, 64-point tasks).
	Workers, TaskSize int
	// Kernel selects the butterfly kernel of every plan the executor
	// resolves. The zero value is KernelAuto: the first request of each
	// shape autotunes once and the winner is memoized process-wide.
	Kernel codeletfft.Kernel
	// EnableShard mounts the cluster shard-exec endpoint
	// (POST /fft/shard), making this server a worker a dist
	// coordinator can dispatch four-step segments to.
	EnableShard bool
	// Peers sends this worker's exchange frames to its peers during a
	// resident session (the on-worker four-step transpose). nil is fine
	// for single-worker clusters; a multi-worker resident session whose
	// spec names peers fails its cols phase without a sender, and the
	// coordinator falls back to one-shot frames.
	Peers PeerSender
	// SessionTTL expires idle resident sessions (lazy GC on session
	// traffic); 0 means DefaultSessionTTL.
	SessionTTL time.Duration
	// MaxSessions bounds concurrently open resident sessions (each pins
	// a rows buffer); 0 means DefaultMaxSessions.
	MaxSessions int
	// DisableSessions makes the worker FFS1-only: FFS2 frames are
	// rejected exactly like any unknown magic (400), which is how an
	// old worker behaves — the seam the mixed-version regression test
	// uses to prove the coordinator degrades gracefully.
	DisableSessions bool
	// Registry collects the server's instruments; New creates one when
	// nil. The daemon publishes it at /metrics and through expvar.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.MinN <= 0 {
		c.MinN = DefaultMinN
	}
	if c.MaxN <= 0 {
		c.MaxN = DefaultMaxN
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = DefaultBatchWindow
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = DefaultMaxTimeout
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = DefaultSessionTTL
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// batchKey identifies a coalescible shape: requests batch together only
// when both the transform length and the kind match.
type batchKey struct {
	n    int
	kind Kind
}

// pending is one admitted request waiting for (or inside) a batch.
type pending struct {
	ctx     context.Context
	done    chan error // buffered; receives exactly one result
	data    []complex128
	realIn  []float64
	spec    []complex128   // KindReal output (N/2+1 bins)
	realOut []float64      // KindRealInverse output (N samples)
	frames  [][]complex128 // KindSTFT: windowed frames, transformed in place
}

// serverMetrics names every instrument once, so handler code reads like
// the exposition page.
type serverMetrics struct {
	requests  *metrics.Counter
	ok        *metrics.Counter
	bad       *metrics.Counter
	shedQueue *metrics.Counter
	shedDrain *metrics.Counter
	deadline  *metrics.Counter
	internal  *metrics.Counter
	expired   *metrics.Counter
	panics    *metrics.Counter
	batches   *metrics.Counter

	stftStreams *metrics.Counter
	stftFrames  *metrics.Counter

	shardRequests *metrics.Counter
	shardOK       *metrics.Counter
	shardBad      *metrics.Counter
	shardVecs     *metrics.Counter

	sessOpens     *metrics.Counter
	sessCols      *metrics.Counter
	sessExchanges *metrics.Counter
	sessRows      *metrics.Counter
	sessCloses    *metrics.Counter
	sessExpired   *metrics.Counter
	sessBad       *metrics.Counter

	occupancy  *metrics.Histogram
	batchSec   *metrics.Histogram
	requestSec *metrics.Histogram
	shardSec   *metrics.Histogram
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	latency := metrics.ExpBuckets(1e-5, 2, 22) // 10µs … ~40s
	return serverMetrics{
		requests:  r.Counter("fft_requests_total"),
		ok:        r.Counter("fft_responses_ok_total"),
		bad:       r.Counter("fft_responses_bad_request_total"),
		shedQueue: r.Counter("fft_responses_shed_queue_total"),
		shedDrain: r.Counter("fft_responses_shed_drain_total"),
		deadline:  r.Counter("fft_responses_deadline_total"),
		internal:  r.Counter("fft_responses_error_total"),
		expired:   r.Counter("fft_expired_in_queue_total"),
		panics:    r.Counter("fft_panics_total"),
		batches:   r.Counter("fft_batches_total"),

		stftStreams: r.Counter("fft_stft_streams_total"),
		stftFrames:  r.Counter("fft_stft_frames_total"),

		shardRequests: r.Counter("shard_requests_total"),
		shardOK:       r.Counter("shard_ok_total"),
		shardBad:      r.Counter("shard_bad_total"),
		shardVecs:     r.Counter("shard_vecs_total"),

		sessOpens:     r.Counter("sess_opens_total"),
		sessCols:      r.Counter("sess_cols_total"),
		sessExchanges: r.Counter("sess_exchanges_total"),
		sessRows:      r.Counter("sess_rows_total"),
		sessCloses:    r.Counter("sess_closes_total"),
		sessExpired:   r.Counter("sess_expired_total"),
		sessBad:       r.Counter("sess_bad_total"),

		occupancy:  r.Histogram("fft_batch_occupancy", metrics.ExpBuckets(1, 2, 11)), // 1 … 1024
		batchSec:   r.Histogram("fft_batch_seconds", latency),
		requestSec: r.Histogram("fft_request_seconds", latency),
		shardSec:   r.Histogram("shard_exec_seconds", latency),
	}
}

// engineObserver adapts the host engine's telemetry callbacks onto
// histogram instruments; it is installed on every plan the executor
// resolves, so batch occupancy and per-pass latency are measured by the
// engine itself rather than re-derived by the daemon. The pass map is
// read-only after construction, so the callbacks are lock-free.
type engineObserver struct {
	occupancy *metrics.Histogram
	batchSec  *metrics.Histogram
	passSec   map[string]*metrics.Histogram
}

func newEngineObserver(r *metrics.Registry) *engineObserver {
	latency := metrics.ExpBuckets(1e-6, 2, 24) // 1µs … ~16s
	passes := make(map[string]*metrics.Histogram, 8)
	// Every label an engine may emit is pre-registered, including the
	// per-kernel stage labels (host.StagePassLabel), so the first
	// radix-4 or split-radix batch doesn't race a map write.
	for _, p := range []string{host.PassBitRev, host.PassStage, host.PassStageRadix4,
		host.PassStageSplitRadix, host.PassStageSoA2, host.PassStageSoA4,
		host.PassSoAPack, host.PassSoAUnpack, host.PassConj, host.PassScale,
		host.PassStageMixed, host.PassChirp} {
		passes[p] = r.Histogram("engine_pass_"+p+"_seconds", latency)
	}
	return &engineObserver{
		occupancy: r.Histogram("engine_batch_occupancy", metrics.ExpBuckets(1, 2, 11)),
		batchSec:  r.Histogram("engine_batch_seconds", latency),
		passSec:   passes,
	}
}

func (o *engineObserver) ObserveBatch(batch, n int, d time.Duration) {
	o.occupancy.Observe(float64(batch))
	o.batchSec.Observe(d.Seconds())
}

func (o *engineObserver) ObservePass(pass string, d time.Duration) {
	if h, ok := o.passSec[pass]; ok {
		h.Observe(d.Seconds())
	}
}

// Server coalesces and executes FFT requests. Build with New, mount
// Handler, and call Drain on shutdown.
type Server struct {
	cfg Config
	reg *metrics.Registry
	m   serverMetrics
	mux *http.ServeMux

	planOpts []codeletfft.HostOption

	// sem holds one token per admitted-but-unfinished request; a full
	// channel is the 429 condition and len(sem) is the queue-depth gauge.
	sem chan struct{}

	draining atomic.Bool

	mu       sync.Mutex
	batchers map[batchKey]*batcher

	// Resident-session table: sessions pin rows buffers between the
	// cols and rows phases; idle entries are reaped lazily on session
	// traffic once SessionTTL passes.
	sessMu     sync.Mutex
	sessions   map[uint64]*sessEntry
	lastSessGC time.Time

	// execHook, when non-nil, runs inside the panic-isolated executor
	// just before the transform — the test seam for panic isolation.
	execHook func(key batchKey, live int)

	maxBody int64
}

// New builds a Server from cfg (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		m:        newServerMetrics(cfg.Registry),
		sem:      make(chan struct{}, cfg.QueueLimit),
		batchers: make(map[batchKey]*batcher),
		sessions: make(map[uint64]*sessEntry),
		// JSON spells a float64 in ~25 bytes; 64·MaxN covers the worst
		// re+im request with headroom, and the binary frame is smaller.
		maxBody: int64(cfg.MaxN)*64 + 4096,
	}
	obs := newEngineObserver(cfg.Registry)
	s.planOpts = []codeletfft.HostOption{codeletfft.WithObserver(obs)}
	if cfg.Workers > 0 {
		s.planOpts = append(s.planOpts, codeletfft.WithWorkers(cfg.Workers))
	}
	if cfg.TaskSize > 0 {
		s.planOpts = append(s.planOpts, codeletfft.WithTaskSize(cfg.TaskSize))
	}
	if cfg.Kernel != codeletfft.KernelAuto {
		s.planOpts = append(s.planOpts, codeletfft.WithKernel(cfg.Kernel))
	}
	cfg.Registry.GaugeFunc("fft_queue_depth", func() float64 { return float64(len(s.sem)) })
	cfg.Registry.GaugeFunc("plan_cache_len", func() float64 { return float64(codeletfft.PlanCacheLen()) })
	cfg.Registry.GaugeFunc("plan_cache_hits_total", func() float64 {
		h, _ := codeletfft.PlanCacheStats()
		return float64(h)
	})
	cfg.Registry.GaugeFunc("plan_cache_misses_total", func() float64 {
		_, m := codeletfft.PlanCacheStats()
		return float64(m)
	})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /fft", s.handleJSON)
	mux.HandleFunc("POST /fft/bin", s.handleBinary)
	mux.HandleFunc("POST /fft/stft", s.handleSTFT)
	if cfg.EnableShard {
		mux.HandleFunc("POST /fft/shard", s.handleShard)
	}
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// StartDrain flips the server into draining mode: subsequent requests
// are refused with 503 and every pending batch is flushed immediately
// instead of waiting out its window. Idempotent.
func (s *Server) StartDrain() {
	if s.draining.Swap(true) {
		return
	}
	s.flushAll()
}

func (s *Server) flushAll() {
	s.mu.Lock()
	bs := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	for _, b := range bs {
		b.flush()
	}
}

// Drain initiates drain (if not already started) and blocks until every
// admitted request has been answered or ctx expires. Combined with
// http.Server.Shutdown it gives SIGTERM semantics: stop accepting,
// finish everything in flight, exit.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		// Tokens are released by the executor after it answers each
		// request, so an empty queue means nothing is in flight. The
		// flush sweep catches requests that raced past the draining check
		// into a fresh batch window.
		s.flushAll()
		if len(s.sem) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// errShapeRejected tags client errors found before any work happens.
type shapeError struct{ msg string }

func (e *shapeError) Error() string { return e.msg }

func shapeErrorf(format string, args ...any) error {
	return &shapeError{msg: fmt.Sprintf(format, args...)}
}

// checkN validates a transform length against the server's bounds.
// Complex kinds (and STFT frame lengths) serve any length the facade
// plans (any n ≥ 1, via mixed-radix or Bluestein); real kinds carry
// the packed path's even ≥ 4 requirement. Every rejection is a
// shapeError — a 400, never a 500 — because an unservable length is a
// client mistake, not a daemon fault.
func (s *Server) checkN(n int, kind Kind) error {
	if kind == KindReal || kind == KindRealInverse {
		if n < 4 || n%2 != 0 {
			return shapeErrorf("real transforms need an even length ≥ 4, got %d", n)
		}
	} else if n < 1 {
		return shapeErrorf("transform length %d is not positive", n)
	}
	if n < s.cfg.MinN || n > s.cfg.MaxN {
		return shapeErrorf("transform length %d outside served range [%d, %d]", n, s.cfg.MinN, s.cfg.MaxN)
	}
	return nil
}

// deadlineFor resolves the request's deadline: ?timeout= if present
// (capped at MaxTimeout), the server default otherwise.
func (s *Server) deadlineFor(r *http.Request) (time.Duration, error) {
	q := r.URL.Query().Get("timeout")
	if q == "" {
		return s.cfg.RequestTimeout, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil || d <= 0 {
		return 0, shapeErrorf("bad timeout %q", q)
	}
	return min(d, s.cfg.MaxTimeout), nil
}

// submit runs the admission + coalescing + wait pipeline shared by both
// codecs. It returns nil once the transform has been applied to the
// pending's buffers; any non-nil return has already been counted and
// converted to a status by respondError.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, key batchKey, p *pending) bool {
	if s.draining.Load() {
		s.m.shedDrain.Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return false
	}
	d, err := s.deadlineFor(r)
	if err != nil {
		s.m.bad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	p.ctx = ctx

	select {
	case s.sem <- struct{}{}:
	default:
		s.m.shedQueue.Inc()
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return false
	}
	s.batcherFor(key).add(p)

	select {
	case err := <-p.done:
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
				s.m.deadline.Inc()
				http.Error(w, "deadline exceeded in queue", http.StatusGatewayTimeout)
			case errors.Is(err, codeletfft.ErrLengthMismatch):
				// A malformed row in a coalesced batch: the recovered
				// engine panic names the offending batch element, so the
				// 400 can say which request was bad.
				s.m.bad.Inc()
				http.Error(w, err.Error(), http.StatusBadRequest)
			default:
				s.m.internal.Inc()
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return false
		}
		return true
	case <-ctx.Done():
		// The executor will still answer p.done (buffered) and release
		// the queue slot; the client just stops waiting.
		s.m.deadline.Inc()
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		return false
	}
}

func (s *Server) batcherFor(key batchKey) *batcher {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batchers[key]
	if !ok {
		b = &batcher{s: s, key: key}
		s.batchers[key] = b
	}
	return b
}

// jsonRequest is the JSON wire format. Re is the payload (samples for
// complex/real kinds, spectrum-real-parts for real-inverse); Im, when
// present, must match its length.
type jsonRequest struct {
	Kind string    `json:"kind"`
	Re   []float64 `json:"re"`
	Im   []float64 `json:"im"`
}

type jsonResponse struct {
	N  int       `json:"n"`
	Re []float64 `json:"re"`
	Im []float64 `json:"im,omitempty"`
}

func parseKind(k string) (Kind, error) {
	switch k {
	case "", "forward":
		return KindForward, nil
	case "inverse":
		return KindInverse, nil
	case "real":
		return KindReal, nil
	case "real-inverse":
		return KindRealInverse, nil
	default:
		return 0, shapeErrorf("unknown kind %q", k)
	}
}

func (s *Server) handleJSON(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Inc()
	defer func() { s.m.requestSec.Observe(time.Since(start).Seconds()) }()

	var req jsonRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.m.bad.Inc()
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	kind, err := parseKind(req.Kind)
	if err == nil && len(req.Im) > 0 && len(req.Im) != len(req.Re) {
		err = shapeErrorf("im has %d values, re has %d", len(req.Im), len(req.Re))
	}
	if err == nil && kind == KindReal && len(req.Im) > 0 {
		err = shapeErrorf("kind real takes no im values")
	}
	if err != nil {
		s.m.bad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	p := &pending{done: make(chan error, 1)}
	var key batchKey
	switch kind {
	case KindForward, KindInverse:
		key = batchKey{n: len(req.Re), kind: kind}
		if err := s.checkN(key.n, kind); err != nil {
			s.m.bad.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.data = make([]complex128, key.n)
		for i, re := range req.Re {
			if len(req.Im) > 0 {
				p.data[i] = complex(re, req.Im[i])
			} else {
				p.data[i] = complex(re, 0)
			}
		}
	case KindReal:
		key = batchKey{n: len(req.Re), kind: kind}
		if err := s.checkN(key.n, kind); err != nil {
			s.m.bad.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.realIn = append([]float64(nil), req.Re...)
		p.spec = make([]complex128, key.n/2+1)
	case KindRealInverse:
		n := 2 * (len(req.Re) - 1)
		key = batchKey{n: n, kind: kind}
		if err := s.checkN(n, kind); err != nil {
			s.m.bad.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.data = make([]complex128, len(req.Re))
		for i, re := range req.Re {
			if len(req.Im) > 0 {
				p.data[i] = complex(re, req.Im[i])
			} else {
				p.data[i] = complex(re, 0)
			}
		}
		p.realOut = make([]float64, n)
	}

	if !s.submit(w, r, key, p) {
		return
	}
	s.m.ok.Inc()
	resp := jsonResponse{N: key.n}
	switch kind {
	case KindForward, KindInverse:
		resp.Re, resp.Im = splitComplex(p.data)
	case KindReal:
		resp.Re, resp.Im = splitComplex(p.spec)
	case KindRealInverse:
		resp.Re = p.realOut
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		return // client went away; the request itself succeeded
	}
}

func splitComplex(c []complex128) (re, im []float64) {
	re = make([]float64, len(c))
	im = make([]float64, len(c))
	for i, v := range c {
		re[i], im[i] = real(v), imag(v)
	}
	return re, im
}

func (s *Server) handleBinary(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Inc()
	defer func() { s.m.requestSec.Observe(time.Since(start).Seconds()) }()

	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	raw, err := readAll(body)
	if err != nil {
		s.m.bad.Inc()
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	f, err := DecodeFrame(raw)
	if err != nil {
		s.m.bad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	p := &pending{done: make(chan error, 1)}
	var key batchKey
	var shapeErr error
	switch f.Kind {
	case KindForward, KindInverse:
		if f.Complex == nil {
			shapeErr = shapeErrorf("kind %s takes a complex payload", f.Kind)
			break
		}
		key = batchKey{n: len(f.Complex), kind: f.Kind}
		if shapeErr = s.checkN(key.n, f.Kind); shapeErr == nil {
			p.data = f.Complex
		}
	case KindReal:
		if f.Real == nil {
			shapeErr = shapeErrorf("kind real takes a real payload")
			break
		}
		key = batchKey{n: len(f.Real), kind: f.Kind}
		if shapeErr = s.checkN(key.n, f.Kind); shapeErr == nil {
			p.realIn = f.Real
			p.spec = make([]complex128, key.n/2+1)
		}
	case KindRealInverse:
		if f.Complex == nil {
			shapeErr = shapeErrorf("kind real-inverse takes a complex payload")
			break
		}
		n := 2 * (len(f.Complex) - 1)
		key = batchKey{n: n, kind: f.Kind}
		if shapeErr = s.checkN(n, f.Kind); shapeErr == nil {
			p.data = f.Complex
			p.realOut = make([]float64, n)
		}
	}
	if shapeErr != nil {
		s.m.bad.Inc()
		http.Error(w, shapeErr.Error(), http.StatusBadRequest)
		return
	}

	if !s.submit(w, r, key, p) {
		return
	}
	s.m.ok.Inc()
	out := Frame{Kind: f.Kind}
	switch f.Kind {
	case KindForward, KindInverse:
		out.Complex = p.data
	case KindReal:
		out.Complex = p.spec
	case KindRealInverse:
		out.Real = p.realOut
	}
	enc, err := EncodeFrame(out)
	if err != nil {
		s.m.internal.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(enc)
}
