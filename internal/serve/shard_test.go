package serve

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"codeletfft/internal/fft"
)

func randVecs(vecLen, vecCount int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]complex128, vecLen*vecCount)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return data
}

func TestShardFrameRoundTrip(t *testing.T) {
	frames := []ShardFrame{
		{Op: OpColumns, VecLen: 8, TotalN: 64, Start: 2, Data: randVecs(8, 3, 1)},
		{Op: OpColumns, VecLen: 4, TotalN: 16, Start: 0, Data: randVecs(4, 4, 2)},
		{Op: OpRows, VecLen: 16, Start: 5, Data: randVecs(16, 2, 3)},
	}
	for _, f := range frames {
		enc, err := EncodeShardFrame(f)
		if err != nil {
			t.Fatalf("%s: encode: %v", f.Op, err)
		}
		dec, err := DecodeShardFrame(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Op, err)
		}
		if dec.Op != f.Op || dec.VecLen != f.VecLen || dec.TotalN != f.TotalN || dec.Start != f.Start {
			t.Fatalf("%s: header mismatch: %+v", f.Op, dec)
		}
		for i := range f.Data {
			if math.Float64bits(real(dec.Data[i])) != math.Float64bits(real(f.Data[i])) ||
				math.Float64bits(imag(dec.Data[i])) != math.Float64bits(imag(f.Data[i])) {
				t.Fatalf("%s: payload differs at %d", f.Op, i)
			}
		}
		re, err := EncodeShardFrame(dec)
		if err != nil || !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encode is not canonical (err %v)", f.Op, err)
		}
	}
}

func TestShardFrameRejects(t *testing.T) {
	good := ShardFrame{Op: OpColumns, VecLen: 8, TotalN: 64, Start: 0, Data: randVecs(8, 2, 4)}
	enc, err := EncodeShardFrame(good)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":         func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":       func(b []byte) []byte { b[4] = 9; return b },
		"bad op":            func(b []byte) []byte { b[5] = 200; return b },
		"reserved byte":     func(b []byte) []byte { b[6] = 1; return b },
		"truncated payload": func(b []byte) []byte { return b[:len(b)-8] },
		"trailing bytes":    func(b []byte) []byte { return append(b, 0) },
		"truncated header":  func(b []byte) []byte { return b[:10] },
		"vecLen not pow2":   func(b []byte) []byte { b[8] = 7; return b },
	}
	for name, corrupt := range cases {
		b := corrupt(append([]byte(nil), enc...))
		if _, err := DecodeShardFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}

	// Encoder-side rejects.
	encCases := []ShardFrame{
		{Op: OpRows, VecLen: 8, TotalN: 64, Data: randVecs(8, 1, 5)},              // rows with totalN
		{Op: OpColumns, VecLen: 8, TotalN: 60, Data: randVecs(8, 1, 5)},           // totalN not pow2
		{Op: OpColumns, VecLen: 8, TotalN: 16, Start: 1, Data: randVecs(8, 2, 5)}, // start+count > columns
		{Op: OpColumns, VecLen: 3, TotalN: 64, Data: randVecs(3, 1, 5)},           // vecLen not pow2
		{Op: shardOpCount, VecLen: 8, TotalN: 64, Data: randVecs(8, 1, 5)},        // unknown op
		{Op: OpRows, VecLen: 8, Data: nil},                                        // no vectors
		{Op: OpRows, VecLen: 8, Data: randVecs(1, 12, 5)},                         // ragged payload
	}
	for i, f := range encCases {
		if _, err := EncodeShardFrame(f); !errors.Is(err, ErrBadFrame) {
			t.Errorf("encode case %d: err = %v, want ErrBadFrame", i, err)
		}
	}
}

// TestShardEndpointExecutesFourStepSegments drives the worker endpoint
// with the column and row shards of a real four-step transform and
// checks the reassembled result against the serial reference.
func TestShardEndpointExecutesFourStepSegments(t *testing.T) {
	s := New(Config{EnableShard: true, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n1, n2 = 16, 32
	fs, err := fft.NewFourStep(n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	x := randVecs(fs.N, 1, 9)
	want := append([]complex128(nil), x...)
	fs.Transform(want)

	post := func(f ShardFrame) ShardFrame {
		t.Helper()
		enc, err := EncodeShardFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/fft/shard", "application/octet-stream", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := readAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard status %d: %s", resp.StatusCode, raw)
		}
		out, err := DecodeShardFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Columns in two shards, rows in one, transposes done locally —
	// exactly the coordinator's steps.
	buf := make([]complex128, fs.N)
	data := append([]complex128(nil), x...)
	fs.GatherColumns(buf, data)
	half := n2 / 2 * n1
	c0 := post(ShardFrame{Op: OpColumns, VecLen: n1, TotalN: fs.N, Start: 0, Data: buf[:half]})
	c1 := post(ShardFrame{Op: OpColumns, VecLen: n1, TotalN: fs.N, Start: n2 / 2, Data: buf[half:]})
	copy(buf, c0.Data)
	copy(buf[half:], c1.Data)
	fs.ScatterColumns(data, buf)
	r0 := post(ShardFrame{Op: OpRows, VecLen: n2, Start: 0, Data: data})
	fs.FinalTranspose(buf, r0.Data)

	if e := fft.MaxError(buf, want); e > 1e-9 {
		t.Fatalf("shard-executed four-step vs serial reference error %g", e)
	}
	snap := s.Registry().Snapshot()
	if got := snap["shard_requests_total"]; got != 3 {
		t.Errorf("shard_requests_total = %v, want 3", got)
	}
	if got := snap["shard_ok_total"]; got != 3 {
		t.Errorf("shard_ok_total = %v, want 3", got)
	}
	if got := snap["shard_vecs_total"]; got != float64(n2+n1) {
		t.Errorf("shard_vecs_total = %v, want %d", got, n2+n1)
	}
}

func TestShardEndpointDisabledByDefault(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	f := ShardFrame{Op: OpRows, VecLen: 8, Data: randVecs(8, 1, 1)}
	enc, _ := EncodeShardFrame(f)
	resp, err := http.Post(ts.URL+"/fft/shard", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("shard endpoint on non-worker: status %d, want 404", resp.StatusCode)
	}
}

func TestShardEndpointShedsWhileDraining(t *testing.T) {
	s := New(Config{EnableShard: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.StartDrain()
	f := ShardFrame{Op: OpRows, VecLen: 8, Data: randVecs(8, 1, 1)}
	enc, _ := EncodeShardFrame(f)
	resp, err := http.Post(ts.URL+"/fft/shard", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard: status %d, want 503", resp.StatusCode)
	}
}

// FuzzShardFrame pins the codec's safety properties: decoding arbitrary
// bytes never panics, and any frame that decodes re-encodes to exactly
// the input bytes (canonical encoding).
func FuzzShardFrame(f *testing.F) {
	seed := ShardFrame{Op: OpColumns, VecLen: 4, TotalN: 16, Start: 1, Data: randVecs(4, 2, 6)}
	if enc, err := EncodeShardFrame(seed); err == nil {
		f.Add(enc)
	}
	rows := ShardFrame{Op: OpRows, VecLen: 2, Start: 0, Data: randVecs(2, 3, 7)}
	if enc, err := EncodeShardFrame(rows); err == nil {
		f.Add(enc)
	}
	f.Add([]byte(shardMagic))
	f.Add(bytes.Repeat([]byte{0}, shardHeaderLen))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := DecodeShardFrame(raw)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error does not wrap ErrBadFrame: %v", err)
			}
			return
		}
		re, err := EncodeShardFrame(dec)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("re-encoding is not canonical:\n in: %x\nout: %x", raw, re)
		}
	})
}
