// Pooled buffers for the binary shard path. Frames on the wire and the
// complex scratch behind them are the cluster's steady-state memory
// traffic: a coordinator streaming transforms would otherwise allocate
// (and garbage-collect) tens of megabytes per transform. Both pools are
// size-classed by rounding capacities up to the next power of two, so a
// steady mix of shapes converges onto a small set of reusable buffers
// and the AllocsPerRun guards in the tests can pin the path at zero.
//
// Ownership discipline: Acquire returns a buffer that the caller owns
// exclusively until it calls Release; Release transfers ownership back
// to the pool and the caller must not touch the buffer (or any slice of
// it) afterwards. Slices handed to other goroutines must therefore be
// fully consumed before Release — the fault-injection tests exercise
// the error paths to make sure no release happens twice and no buffer
// escapes.
package serve

import (
	"math/bits"
	"sync"
)

// byteBuf size classes: pools[i] holds buffers of capacity 1<<i.
var byteBufPools [34]sync.Pool

// AcquireFrame returns a byte buffer with length n (capacity possibly
// larger) from the frame pool. Release with ReleaseFrame.
func AcquireFrame(n int) *[]byte {
	if n < 0 {
		n = 0
	}
	class := sizeClass(n)
	if p, _ := byteBufPools[class].Get().(*[]byte); p != nil {
		*p = (*p)[:n]
		return p
	}
	b := make([]byte, n, 1<<class)
	return &b
}

// ReleaseFrame returns a buffer acquired with AcquireFrame to the pool.
// The caller must not use the buffer afterwards. nil is a no-op.
func ReleaseFrame(p *[]byte) {
	if p == nil || cap(*p) == 0 {
		return
	}
	class := uint(bits.Len(uint(cap(*p)))) - 1
	if 1<<class != cap(*p) {
		return // foreign buffer; let the GC have it
	}
	byteBufPools[class].Put(p)
}

// complexBuf size classes, same scheme in units of complex128.
var complexBufPools [28]sync.Pool

// AcquireComplex returns a []complex128 of length n from the scratch
// pool, zeroed is NOT guaranteed. Release with ReleaseComplex.
func AcquireComplex(n int) *[]complex128 {
	if n < 0 {
		n = 0
	}
	class := sizeClass(n)
	if p, _ := complexBufPools[class].Get().(*[]complex128); p != nil {
		*p = (*p)[:n]
		return p
	}
	b := make([]complex128, n, 1<<class)
	return &b
}

// ReleaseComplex returns a buffer acquired with AcquireComplex to the
// pool. The caller must not use the buffer afterwards. nil is a no-op.
func ReleaseComplex(p *[]complex128) {
	if p == nil || cap(*p) == 0 {
		return
	}
	class := uint(bits.Len(uint(cap(*p)))) - 1
	if 1<<class != cap(*p) {
		return
	}
	complexBufPools[class].Put(p)
}

// sizeClass returns the smallest c with 1<<c ≥ n.
func sizeClass(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n - 1)))
}
