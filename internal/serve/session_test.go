package serve

import (
	"bytes"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// testSpec is a small valid two-worker geometry: this worker owns
// columns [0,4) and rows [0,2) of an 4×8 transform, the peer owns rows
// [2,4).
func testSpec() SessionSpec {
	return SessionSpec{
		N1: 4, N2: 8,
		ColStart: 0, ColCount: 4,
		RowStart: 0, RowCount: 2,
		Peers: []PeerRange{{Addr: "peer-1", RowStart: 2, RowCount: 2}},
	}
}

func TestSessionFrameRoundTrip(t *testing.T) {
	spec := testSpec()
	frames := []SessionFrame{
		{Op: OpSessOpen, ID: 7, Spec: &spec},
		{Op: OpSessCols, ID: 7, VecLen: 4, VecCount: 4, Arg0: 0, Data: randVecs(4, 4, 1)},
		{Op: OpSessExchange, ID: 7, VecLen: 2, VecCount: 4, Arg0: 0, Arg1: 2, Data: randVecs(2, 4, 2)},
		{Op: OpSessRows, ID: 7, VecLen: 8, VecCount: 2, Arg0: 0, Data: randVecs(8, 2, 3)},
		{Op: OpSessRows, ID: 7}, // header-only rows request
		{Op: OpSessClose, ID: 7},
		{Op: OpSessAck, ID: 7, Flags: FlagResident},
	}
	for _, f := range frames {
		enc, err := EncodeSessionFrame(f)
		if err != nil {
			t.Fatalf("%s: encode: %v", f.Op, err)
		}
		if len(enc) != SessionFrameLen(f) {
			t.Fatalf("%s: SessionFrameLen = %d, encoded %d bytes", f.Op, SessionFrameLen(f), len(enc))
		}
		if !IsSessionFrame(enc) {
			t.Fatalf("%s: IsSessionFrame = false", f.Op)
		}
		dec, err := DecodeSessionFrame(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Op, err)
		}
		if dec.Op != f.Op || dec.Flags != f.Flags || dec.ID != f.ID ||
			dec.VecLen != f.VecLen || dec.VecCount != f.VecCount || dec.Arg0 != f.Arg0 || dec.Arg1 != f.Arg1 {
			t.Fatalf("%s: header mismatch: %+v", f.Op, dec)
		}
		for i := range f.Data {
			if math.Float64bits(real(dec.Data[i])) != math.Float64bits(real(f.Data[i])) ||
				math.Float64bits(imag(dec.Data[i])) != math.Float64bits(imag(f.Data[i])) {
				t.Fatalf("%s: payload differs at %d", f.Op, i)
			}
		}
		if f.Op == OpSessOpen {
			if dec.Spec == nil || dec.Spec.N1 != spec.N1 || len(dec.Spec.Peers) != 1 || dec.Spec.Peers[0] != spec.Peers[0] {
				t.Fatalf("open: spec mismatch: %+v", dec.Spec)
			}
		}
		re, err := EncodeSessionFrame(dec)
		if err != nil || !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encode is not canonical (err %v)", f.Op, err)
		}

		// Header-only decode validates without materializing the payload.
		hdr, err := DecodeSessionHeader(enc)
		if err != nil {
			t.Fatalf("%s: DecodeSessionHeader: %v", f.Op, err)
		}
		if hdr.Data != nil || hdr.Spec != nil {
			t.Fatalf("%s: header decode materialized a payload", f.Op)
		}

		// Into-decode lands in the caller's buffer with no copy.
		if n := f.VecLen * f.VecCount; n > 0 {
			dst := make([]complex128, n)
			into, err := DecodeSessionFrameInto(enc, dst)
			if err != nil {
				t.Fatalf("%s: DecodeSessionFrameInto: %v", f.Op, err)
			}
			if &into.Data[0] != &dst[0] {
				t.Fatalf("%s: into-decode did not use the caller's buffer", f.Op)
			}
		}
	}
}

func TestSessionFrameRejects(t *testing.T) {
	spec := testSpec()
	good := SessionFrame{Op: OpSessCols, ID: 1, VecLen: 4, VecCount: 4, Data: randVecs(4, 4, 5)}
	enc, err := EncodeSessionFrame(good)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":         func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":       func(b []byte) []byte { b[4] = 9; return b },
		"bad op":            func(b []byte) []byte { b[5] = 200; return b },
		"reserved byte":     func(b []byte) []byte { b[7] = 1; return b },
		"truncated payload": func(b []byte) []byte { return b[:len(b)-8] },
		"trailing bytes":    func(b []byte) []byte { return append(b, 0) },
		"truncated header":  func(b []byte) []byte { return b[:12] },
	}
	for name, corrupt := range cases {
		b := corrupt(append([]byte(nil), enc...))
		if _, err := DecodeSessionFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}

	// Destination size mismatch on the into path.
	if _, err := DecodeSessionFrameInto(enc, make([]complex128, 3)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("into with wrong-size dst: err = %v, want ErrBadFrame", err)
	}

	// Encoder-side rejects.
	encCases := []struct {
		name string
		f    SessionFrame
	}{
		{"open without spec", SessionFrame{Op: OpSessOpen}},
		{"non-open with spec", SessionFrame{Op: OpSessClose, Spec: &spec}},
		{"cols without vectors", SessionFrame{Op: OpSessCols}},
		{"cols with arg1", SessionFrame{Op: OpSessCols, VecLen: 2, VecCount: 1, Arg1: 3, Data: randVecs(2, 1, 6)}},
		{"close with payload", SessionFrame{Op: OpSessClose, VecLen: 2, VecCount: 1, Data: randVecs(2, 1, 6)}},
		{"ragged payload", SessionFrame{Op: OpSessCols, VecLen: 4, VecCount: 4, Data: randVecs(4, 3, 6)}},
		{"unknown op", SessionFrame{Op: sessOpCount}},
		{"vecLen without count", SessionFrame{Op: OpSessCols, VecLen: 4}},
	}
	for _, tc := range encCases {
		if _, err := EncodeSessionFrame(tc.f); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}

	// Spec invariants: the row blocks must tile [0, N1) exactly.
	specCases := []struct {
		name   string
		mutate func(*SessionSpec)
	}{
		{"overlapping peer", func(s *SessionSpec) { s.Peers[0].RowStart = 1 }},
		{"gap in tiling", func(s *SessionSpec) { s.Peers[0].RowCount = 1 }},
		{"peer outside N1", func(s *SessionSpec) { s.Peers[0].RowStart = 3; s.Peers[0].RowCount = 2 }},
		{"empty peer addr", func(s *SessionSpec) { s.Peers[0].Addr = "" }},
		{"cols outside N2", func(s *SessionSpec) { s.ColCount = 9 }},
		{"tiny factor", func(s *SessionSpec) { s.N1 = 1 }},
	}
	for _, tc := range specCases {
		s := testSpec()
		tc.mutate(&s)
		if err := s.Validate(); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: Validate err = %v, want ErrBadFrame", tc.name, err)
		}
	}
}

// TestSessionFrameCodecAllocs guards the zero-copy discipline: the
// steady-state frame path — encode into a pooled buffer, decode into a
// pooled scratch — must not allocate.
func TestSessionFrameCodecAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector builds drop sync.Pool puts at random")
	}
	const vecLen, vecCount = 64, 16
	f := SessionFrame{Op: OpSessCols, ID: 9, VecLen: vecLen, VecCount: vecCount, Data: randVecs(vecLen, vecCount, 8)}
	enc, err := EncodeSessionFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pools outside the measured region.
	bp := AcquireFrame(SessionFrameLen(f))
	cp := AcquireComplex(vecLen * vecCount)
	ReleaseFrame(bp)
	ReleaseComplex(cp)

	allocs := testing.AllocsPerRun(100, func() {
		bp := AcquireFrame(SessionFrameLen(f))
		out, err := AppendSessionFrame((*bp)[:0], f)
		if err != nil {
			t.Fatal(err)
		}
		*bp = out
		cp := AcquireComplex(vecLen * vecCount)
		if _, err := DecodeSessionFrameInto(enc, *cp); err != nil {
			t.Fatal(err)
		}
		ReleaseComplex(cp)
		ReleaseFrame(bp)
	})
	if allocs > 0 {
		t.Errorf("steady-state frame path allocates %.1f times per op, want 0", allocs)
	}
}

// sessPost drives the worker's shard endpoint with one encoded session
// frame and returns the HTTP status and body.
func sessPost(t *testing.T, h http.Handler, f SessionFrame) (int, []byte) {
	t.Helper()
	enc, err := EncodeSessionFrame(f)
	if err != nil {
		t.Fatalf("encode %s: %v", f.Op, err)
	}
	req := httptest.NewRequest(http.MethodPost, "http://worker/fft/shard", bytes.NewReader(enc))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestSessionLifecycle drives a full single-worker session against the
// handler directly: open acks with the resident capability, premature
// rows fetches are refused, cols execute, rows return the finished
// block, and close is idempotent.
func TestSessionLifecycle(t *testing.T) {
	s := New(Config{EnableShard: true})
	h := s.Handler()
	spec := SessionSpec{N1: 4, N2: 8, ColStart: 0, ColCount: 8, RowStart: 0, RowCount: 4}

	code, body := sessPost(t, h, SessionFrame{Op: OpSessOpen, ID: 42, Spec: &spec})
	if code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}
	ack, err := DecodeSessionFrame(body)
	if err != nil || ack.Op != OpSessAck || ack.Flags&FlagResident == 0 || ack.ID != 42 {
		t.Fatalf("open ack = %+v (err %v), want resident ack for session 42", ack, err)
	}

	// A duplicate open of a live session conflicts.
	if code, _ := sessPost(t, h, SessionFrame{Op: OpSessOpen, ID: 42, Spec: &spec}); code != http.StatusConflict {
		t.Fatalf("duplicate open: status %d, want 409", code)
	}

	// Rows before the columns arrived: the session is not ready.
	if code, _ := sessPost(t, h, SessionFrame{Op: OpSessRows, ID: 42}); code != http.StatusConflict {
		t.Fatalf("premature rows: status %d, want 409", code)
	}

	code, body = sessPost(t, h, SessionFrame{
		Op: OpSessCols, ID: 42, VecLen: 4, VecCount: 8, Data: randVecs(4, 8, 9),
	})
	if code != http.StatusOK {
		t.Fatalf("cols: status %d: %s", code, body)
	}

	code, body = sessPost(t, h, SessionFrame{Op: OpSessRows, ID: 42})
	if code != http.StatusOK {
		t.Fatalf("rows: status %d: %s", code, body)
	}
	rows, err := DecodeSessionFrame(body)
	if err != nil || rows.Op != OpSessRows || rows.VecLen != 8 || rows.VecCount != 4 {
		t.Fatalf("rows response = %+v (err %v), want 4×8 block", rows, err)
	}

	// A second rows fetch is refused: the block was already handed out.
	if code, _ := sessPost(t, h, SessionFrame{Op: OpSessRows, ID: 42}); code != http.StatusConflict {
		t.Fatalf("double rows: status %d, want 409", code)
	}

	for i := 0; i < 2; i++ {
		if code, _ := sessPost(t, h, SessionFrame{Op: OpSessClose, ID: 42}); code != http.StatusOK {
			t.Fatalf("close #%d: status %d, want 200 (idempotent)", i, code)
		}
	}

	// Frames against the closed session miss the table.
	if code, _ := sessPost(t, h, SessionFrame{Op: OpSessRows, ID: 42}); code != http.StatusNotFound {
		t.Fatalf("rows after close: status %d, want 404", code)
	}
}

// TestSessionDisabled pins the old-worker simulation: with sessions
// disabled an FFS2 frame falls through to the FFS1 decoder and is
// rejected as a bad frame — exactly what a pre-FFS2 daemon does.
func TestSessionDisabled(t *testing.T) {
	s := New(Config{EnableShard: true, DisableSessions: true})
	spec := SessionSpec{N1: 4, N2: 8, ColStart: 0, ColCount: 8, RowStart: 0, RowCount: 4}
	code, _ := sessPost(t, s.Handler(), SessionFrame{Op: OpSessOpen, ID: 1, Spec: &spec})
	if code != http.StatusBadRequest {
		t.Fatalf("open with sessions disabled: status %d, want 400", code)
	}
}

// TestSessionExpiry checks the worker GC: a session idle past the TTL
// is reaped and later frames 404.
func TestSessionExpiry(t *testing.T) {
	s := New(Config{EnableShard: true, SessionTTL: time.Nanosecond})
	h := s.Handler()
	spec := SessionSpec{N1: 4, N2: 8, ColStart: 0, ColCount: 8, RowStart: 0, RowCount: 4}
	if code, body := sessPost(t, h, SessionFrame{Op: OpSessOpen, ID: 5, Spec: &spec}); code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}
	time.Sleep(time.Millisecond)
	// Any session op triggers the GC sweep; the expired session is gone.
	if code, _ := sessPost(t, h, SessionFrame{Op: OpSessRows, ID: 5}); code != http.StatusNotFound {
		t.Fatalf("rows after TTL: status %d, want 404", code)
	}
}

// TestSessionTableLimit checks the open-session cap: the table refuses
// session opens beyond MaxSessions with 429.
func TestSessionTableLimit(t *testing.T) {
	s := New(Config{EnableShard: true, MaxSessions: 2})
	h := s.Handler()
	spec := SessionSpec{N1: 4, N2: 8, ColStart: 0, ColCount: 8, RowStart: 0, RowCount: 4}
	for id := uint64(1); id <= 2; id++ {
		if code, body := sessPost(t, h, SessionFrame{Op: OpSessOpen, ID: id, Spec: &spec}); code != http.StatusOK {
			t.Fatalf("open %d: status %d: %s", id, code, body)
		}
	}
	if code, _ := sessPost(t, h, SessionFrame{Op: OpSessOpen, ID: 3, Spec: &spec}); code != http.StatusTooManyRequests {
		t.Fatalf("open past the cap: status %d, want 429", code)
	}
}

// TestSessionPeersRequired: a spec naming peers needs a PeerSender; a
// worker without one must refuse the open rather than stall at the
// exchange phase.
func TestSessionPeersRequired(t *testing.T) {
	s := New(Config{EnableShard: true}) // no Peers configured
	spec := testSpec()
	code, _ := sessPost(t, s.Handler(), SessionFrame{Op: OpSessOpen, ID: 6, Spec: &spec})
	if code != http.StatusBadRequest {
		t.Fatalf("open with peers but no sender: status %d, want 400", code)
	}
}

// FuzzSessionFrame pins the FFS2 codec's safety properties: decoding
// arbitrary bytes never panics, and any frame that decodes re-encodes
// to exactly the input bytes (canonical encoding).
func FuzzSessionFrame(f *testing.F) {
	spec := testSpec()
	for _, fr := range []SessionFrame{
		{Op: OpSessOpen, ID: 1, Spec: &spec},
		{Op: OpSessCols, ID: 1, VecLen: 4, VecCount: 2, Data: randVecs(4, 2, 1)},
		{Op: OpSessExchange, ID: 1, VecLen: 2, VecCount: 2, Arg0: 1, Arg1: 2, Data: randVecs(2, 2, 2)},
		{Op: OpSessRows, ID: 1},
		{Op: OpSessAck, ID: 1, Flags: FlagResident},
	} {
		if enc, err := EncodeSessionFrame(fr); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte(sessMagic))
	f.Add(bytes.Repeat([]byte{0}, sessHeaderLen))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := DecodeSessionFrame(raw)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error does not wrap ErrBadFrame: %v", err)
			}
			return
		}
		re, err := EncodeSessionFrame(dec)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("re-encoding is not canonical:\n in: %x\nout: %x", raw, re)
		}
	})
}
