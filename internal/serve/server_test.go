package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"codeletfft"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain after test: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, req jsonRequest) (*http.Response, jsonResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/fft", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out jsonResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestJSONForwardImpulse(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1})
	re := make([]float64, 64)
	re[0] = 1 // FFT of the impulse is all ones
	resp, out := postJSON(t, ts.URL, jsonRequest{Kind: "forward", Re: re})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.N != 64 || len(out.Re) != 64 {
		t.Fatalf("response shape n=%d len=%d", out.N, len(out.Re))
	}
	for i := range out.Re {
		if math.Abs(out.Re[i]-1) > 1e-12 || math.Abs(out.Im[i]) > 1e-12 {
			t.Fatalf("bin %d = %v+%vi, want 1+0i", i, out.Re[i], out.Im[i])
		}
	}
}

func TestJSONRealRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1})
	const n = 128
	re := make([]float64, n)
	for i := range re {
		re[i] = math.Cos(2 * math.Pi * 5 * float64(i) / n)
	}
	resp, spec := postJSON(t, ts.URL, jsonRequest{Kind: "real", Re: re})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("real: status = %d", resp.StatusCode)
	}
	if len(spec.Re) != n/2+1 {
		t.Fatalf("spectrum has %d bins, want %d", len(spec.Re), n/2+1)
	}
	// The cosine concentrates in bin 5 with weight n/2.
	if math.Abs(spec.Re[5]-n/2) > 1e-9 {
		t.Fatalf("bin 5 = %v, want %v", spec.Re[5], n/2)
	}
	resp, back := postJSON(t, ts.URL, jsonRequest{Kind: "real-inverse", Re: spec.Re, Im: spec.Im})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("real-inverse: status = %d", resp.StatusCode)
	}
	if len(back.Re) != n {
		t.Fatalf("recovered %d samples, want %d", len(back.Re), n)
	}
	for i := range re {
		if math.Abs(back.Re[i]-re[i]) > 1e-9 {
			t.Fatalf("sample %d = %v, want %v", i, back.Re[i], re[i])
		}
	}
}

func TestBinaryForwardInverseRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1})
	const n = 256
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(math.Sin(float64(i)), math.Cos(float64(3*i)))
	}
	post := func(f Frame) Frame {
		t.Helper()
		enc, err := EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/fft/bin", "application/octet-stream", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		raw, err := readAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("decoding response frame: %v", err)
		}
		return out
	}
	fwd := post(Frame{Kind: KindForward, Complex: in})
	if fwd.Kind != KindForward || len(fwd.Complex) != n {
		t.Fatalf("forward frame kind=%v len=%d", fwd.Kind, len(fwd.Complex))
	}
	back := post(Frame{Kind: KindInverse, Complex: fwd.Complex})
	for i := range in {
		d := back.Complex[i] - in[i]
		if math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("sample %d drifted by %v", i, d)
		}
	}
}

// TestCoalescing proves the batch window actually merges concurrent
// same-shape requests into one TransformBatch dispatch: with a wide
// window, k concurrent requests must produce strictly fewer batches
// than requests and a mean occupancy above 1.
func TestCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: 150 * time.Millisecond, MaxBatch: 64})
	const k = 8
	re := make([]float64, 512)
	re[0] = 1
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			body, _ := json.Marshal(jsonRequest{Kind: "forward", Re: re})
			resp, err := http.Post(ts.URL+"/fft", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	batches := s.m.batches.Value()
	if batches >= k {
		t.Fatalf("batches = %d for %d requests — no coalescing", batches, k)
	}
	if mean := s.m.occupancy.Mean(); mean <= 1 {
		t.Fatalf("mean occupancy = %v, want > 1", mean)
	}
	t.Logf("%d requests coalesced into %d batches (mean occupancy %.1f)", k, batches, s.m.occupancy.Mean())
}

func TestDeadlineExpiryReturns504(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: 200 * time.Millisecond})
	re := make([]float64, 64)
	body, _ := json.Marshal(jsonRequest{Kind: "forward", Re: re})
	resp, err := http.Post(ts.URL+"/fft?timeout=1ms", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if s.m.deadline.Value() == 0 {
		t.Fatal("deadline counter not incremented")
	}
	// When the window finally flushes, the executor must skip the
	// expired request and release its queue slot.
	waitFor(t, "expired request to be reaped", func() bool {
		return s.m.expired.Value() == 1 && len(s.sem) == 0
	})
}

func TestQueueFullReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueLimit: 2, BatchWindow: time.Second, MaxBatch: 64})
	re := make([]float64, 64)
	body, _ := json.Marshal(jsonRequest{Kind: "forward", Re: re})
	// Two requests park in the batch window and fill the queue.
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/fft", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	waitFor(t, "queue to fill", func() bool { return len(s.sem) == 2 })
	resp, err := http.Post(ts.URL+"/fft", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if s.m.shedQueue.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.m.shedQueue.Value())
	}
	// Unblock the parked requests so cleanup's Drain returns quickly.
	s.StartDrain()
}

// TestDrain is the SIGTERM story minus the signal: requests parked in a
// long batch window must complete (not drop) once drain starts, and new
// requests must shed with 503.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: 10 * time.Second, MaxBatch: 64})
	const k = 3
	re := make([]float64, 128)
	re[0] = 1
	codes := make(chan int, k)
	for i := 0; i < k; i++ {
		go func() {
			body, _ := json.Marshal(jsonRequest{Kind: "forward", Re: re})
			resp, err := http.Post(ts.URL+"/fft", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	waitFor(t, "requests to park in the window", func() bool { return len(s.sem) == k })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < k; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("in-flight request got %d during drain, want 200", code)
		}
	}

	body, _ := json.Marshal(jsonRequest{Kind: "forward", Re: re})
	resp, err := http.Post(ts.URL+"/fft", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hresp.StatusCode)
	}
}

// TestPanicIsolation: a panic inside one batch's executor answers that
// batch with 500 and leaves the server serving.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: -1})
	var once sync.Once
	s.execHook = func(key batchKey, live int) {
		var fired bool
		once.Do(func() { fired = true })
		if fired {
			panic("injected failure")
		}
	}
	re := make([]float64, 64)
	body, _ := json.Marshal(jsonRequest{Kind: "forward", Re: re})
	resp, err := http.Post(ts.URL+"/fft", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned batch status = %d, want 500", resp.StatusCode)
	}
	if s.m.panics.Value() != 1 {
		t.Fatalf("panic counter = %d, want 1", s.m.panics.Value())
	}
	resp2, _ := postJSON(t, ts.URL, jsonRequest{Kind: "forward", Re: re})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d, want 200 (server must keep serving)", resp2.StatusCode)
	}
	if len(s.sem) != 0 {
		t.Fatalf("queue depth = %d after panic, want 0 (slot leaked)", len(s.sem))
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1, MaxN: 1 << 12})
	for name, req := range map[string]jsonRequest{
		"real odd length":    {Kind: "real", Re: make([]float64, 101)},
		"real tiny":          {Kind: "real", Re: make([]float64, 2)},
		"unknown kind":       {Kind: "sideways", Re: make([]float64, 64)},
		"too large":          {Kind: "forward", Re: make([]float64, 1<<13)},
		"too small":          {Kind: "forward", Re: make([]float64, 2)},
		"im length mismatch": {Kind: "forward", Re: make([]float64, 64), Im: make([]float64, 3)},
		"real with im":       {Kind: "real", Re: make([]float64, 64), Im: make([]float64, 64)},
	} {
		resp, _ := postJSON(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	// Binary: a structurally valid frame with an unservable length
	// (below MinN).
	enc, err := EncodeFrame(Frame{Kind: KindForward, Complex: make([]complex128, 3)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/fft/bin", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("binary below MinN: status = %d, want 400", resp.StatusCode)
	}
}

// TestMetricsAfterKnownMix sends a fixed request mix and asserts the
// counters and the /metrics exposition agree with it.
func TestMetricsAfterKnownMix(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: -1})
	re256 := make([]float64, 256)
	re256[0] = 1
	for i := 0; i < 3; i++ {
		if resp, _ := postJSON(t, ts.URL, jsonRequest{Kind: "forward", Re: re256}); resp.StatusCode != http.StatusOK {
			t.Fatalf("forward %d: status %d", i, resp.StatusCode)
		}
	}
	enc, _ := EncodeFrame(Frame{Kind: KindInverse, Complex: make([]complex128, 512)})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/fft/bin", "application/octet-stream", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("binary inverse %d: status %d", i, resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, ts.URL, jsonRequest{Kind: "forward", Re: make([]float64, 5)}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request: status %d, want 400", resp.StatusCode)
	}

	if got := s.m.requests.Value(); got != 6 {
		t.Errorf("requests_total = %d, want 6", got)
	}
	if got := s.m.ok.Value(); got != 5 {
		t.Errorf("responses_ok_total = %d, want 5", got)
	}
	if got := s.m.bad.Value(); got != 1 {
		t.Errorf("responses_bad_request_total = %d, want 1", got)
	}
	if got := s.m.batches.Value(); got != 5 {
		t.Errorf("batches_total = %d, want 5 (window disabled)", got)
	}
	if got := s.m.occupancy.Count(); got != 5 {
		t.Errorf("occupancy observations = %d, want 5", got)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := readAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, line := range []string{
		"fft_requests_total 6",
		"fft_responses_ok_total 5",
		"fft_responses_bad_request_total 1",
		"fft_batches_total 5",
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("/metrics missing %q:\n%s", line, text)
		}
	}
	for _, name := range []string{"fft_batch_occupancy_mean", "fft_queue_depth", "plan_cache_len", "engine_batch_occupancy_count", "fft_request_seconds_p99"} {
		if !strings.Contains(text, name+" ") {
			t.Errorf("/metrics missing instrument %q", name)
		}
	}
}

// TestConcurrentMixedSizes hammers the server with many goroutines and
// several shapes at once — the -race exercise for the whole pipeline.
func TestConcurrentMixedSizes(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: time.Millisecond, MaxBatch: 16})
	sizes := []int{64, 128, 256}
	const perSize = 6
	var wg sync.WaitGroup
	errs := make(chan error, len(sizes)*perSize)
	for _, n := range sizes {
		for i := 0; i < perSize; i++ {
			wg.Add(1)
			go func(n, i int) {
				defer wg.Done()
				re := make([]float64, n)
				re[i%n] = 1
				kind := "forward"
				if i%2 == 1 {
					kind = "inverse"
				}
				body, _ := json.Marshal(jsonRequest{Kind: kind, Re: re})
				resp, err := http.Post(ts.URL+"/fft", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("n=%d: status %d", n, resp.StatusCode)
				}
			}(n, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestKernelConfigPinsPlans: Config.Kernel reaches the plans the
// executor resolves, the per-kernel stage-pass instruments are
// pre-registered, and a pinned-kernel server still answers correctly.
func TestKernelConfigPinsPlans(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1, Kernel: codeletfft.KernelSplitRadix})
	re := make([]float64, 64)
	re[1] = 1
	resp, out := postJSON(t, ts.URL, jsonRequest{Kind: "forward", Re: re})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for k := range out.Re {
		if m := math.Hypot(out.Re[k], out.Im[k]); math.Abs(m-1) > 1e-9 {
			t.Fatalf("bin %d magnitude %g, want 1", k, m)
		}
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := readAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"engine_pass_stage_radix4_seconds", "engine_pass_stage_splitradix_seconds"} {
		if !strings.Contains(string(raw), name) {
			t.Errorf("/metrics missing pre-registered instrument %q", name)
		}
	}
}

// TestRunBatchNamesBadBatchElement: a length-mismatch panic inside a
// batch dispatch surfaces as an error that wraps ErrLengthMismatch and
// names the offending batch element — the classification submit uses
// to answer 400 instead of 500.
func TestRunBatchNamesBadBatchElement(t *testing.T) {
	s := New(Config{})
	live := []*pending{
		{data: make([]complex128, 64), done: make(chan error, 1)},
		{data: make([]complex128, 32), done: make(chan error, 1)}, // bad row
	}
	err := s.runBatch(batchKey{n: 64, kind: KindForward}, live)
	if err == nil {
		t.Fatal("runBatch accepted a malformed batch row")
	}
	if !errors.Is(err, codeletfft.ErrLengthMismatch) {
		t.Fatalf("error %v does not wrap ErrLengthMismatch", err)
	}
	if !strings.Contains(err.Error(), "batch element 1") {
		t.Fatalf("error %q does not name batch element 1", err)
	}
	if got := s.m.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
}
