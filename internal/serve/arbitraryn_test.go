// Arbitrary-N end-to-end tests: with the facade planning any positive
// length, the daemon serves non-power-of-two complex transforms (and
// any even-length real transform) and answers unservable shapes — real
// odd lengths, below MinN — with 400, not 500. This is the
// HTTP-visible edge of the mixed-radix/Bluestein planner.
package serve

import (
	"math"
	"net/http"
	"testing"

	"codeletfft/internal/fft"
)

// TestJSONArbitraryN serves a 12-point (mixed-radix) and a 13-point
// (Bluestein) complex forward transform and checks the spectra against
// the reference DFT.
func TestJSONArbitraryN(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: -1})
	for _, n := range []int{12, 13, 100} {
		re := make([]float64, n)
		im := make([]float64, n)
		x := make([]complex128, n)
		for i := range re {
			re[i] = math.Sin(2*math.Pi*3*float64(i)/float64(n)) + 0.25*float64(i%4)
			im[i] = math.Cos(2 * math.Pi * float64(i) / float64(n))
			x[i] = complex(re[i], im[i])
		}
		resp, out := postJSON(t, ts.URL, jsonRequest{Kind: "forward", Re: re, Im: im})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("forward n=%d: status = %d, want 200", n, resp.StatusCode)
		}
		if out.N != n || len(out.Re) != n {
			t.Fatalf("forward n=%d: response shape n=%d len=%d", n, out.N, len(out.Re))
		}
		want := fft.DFT(x)
		for k := range want {
			if d := math.Hypot(out.Re[k]-real(want[k]), out.Im[k]-imag(want[k])); d > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d = %v+%vi, want %v", n, k, out.Re[k], out.Im[k], want[k])
			}
		}

		// And back: the inverse of the served spectrum recovers x.
		resp, back := postJSON(t, ts.URL, jsonRequest{Kind: "inverse", Re: out.Re, Im: out.Im})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("inverse n=%d: status = %d, want 200", n, resp.StatusCode)
		}
		for i := range x {
			if d := math.Hypot(back.Re[i]-re[i], back.Im[i]-im[i]); d > 1e-9 {
				t.Fatalf("n=%d: inverse sample %d diverged by %g", n, i, d)
			}
		}
	}
}

// TestArbitraryNUnservableShapesReturn400: shapes the planner cannot or
// will not serve are client errors, never internal ones.
func TestArbitraryNUnservableShapesReturn400(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: -1})
	cases := map[string]jsonRequest{
		"real odd length": {Kind: "real", Re: make([]float64, 13)},
		"real-inv tiny":   {Kind: "real-inverse", Re: make([]float64, 2), Im: make([]float64, 2)},
		"below MinN":      {Kind: "forward", Re: make([]float64, 3), Im: make([]float64, 3)},
		"empty":           {Kind: "forward"},
	}
	for name, req := range cases {
		resp, _ := postJSON(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	if got := s.m.internal.Value(); got != 0 {
		t.Fatalf("unservable shapes counted %d internal errors, want 0", got)
	}
}
