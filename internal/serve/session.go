// Worker half of the resident-shard session protocol (FFS2,
// sessionframe.go). A coordinator opens a session describing the
// four-step geometry and this worker's slice of it, ships the worker's
// column slab once, and fetches the finished row block once; between
// those two transfers the data stays resident here. The communication-
// avoiding step is the transpose: after the column FFTs the worker
// scatters its own rows into the resident rows buffer and pushes every
// peer's row block directly to that peer (PeerSender), so the all-to-all
// that dominates distributed four-step never passes through the
// coordinator.
//
// Buffer ownership per phase:
//
//   - open: the session acquires the pooled rows buffer
//     (RowCount×N2) and owns it until close/expiry;
//   - cols: the handler owns a pooled column scratch for the duration
//     of the request — wire bytes decode straight into it, the FFT and
//     twiddle run in place, own rows scatter into the session's rows
//     buffer, and peer blocks encode straight out of it into pooled
//     exchange frames (released as each push completes);
//   - exchange: the payload scatters from the wire bytes directly into
//     the resident rows buffer — no intermediate complex buffer exists;
//   - rows: the row FFTs run in place in the rows buffer and the
//     response streams straight out of it;
//   - close: the rows buffer returns to the pool.
//
// All rows-buffer access is serialized by the session mutex; the
// colsSeen count under the same mutex is the happens-before edge that
// makes every exchange write visible to the rows phase.
package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"codeletfft"
	"codeletfft/internal/fft"
)

// PeerSender delivers an encoded frame to a peer worker's shard
// endpoint and returns the raw response body. The dist Loopback
// transport implements it in-process; HTTPPeers speaks real HTTP.
type PeerSender interface {
	PushFrame(ctx context.Context, addr string, frame []byte) ([]byte, error)
}

// HTTPPeers is the production PeerSender: addr is a peer's base URL,
// frames post to its /fft/shard endpoint over pooled keep-alive
// connections.
type HTTPPeers struct {
	// Client overrides the pooled default; per-call deadlines come from
	// the context.
	Client *http.Client
}

var defaultPeerClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// PushFrame implements PeerSender.
func (p *HTTPPeers) PushFrame(ctx context.Context, addr string, frame []byte) ([]byte, error) {
	client := p.Client
	if client == nil {
		client = defaultPeerClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/fft/shard", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: peer %s: status %d: %s", addr, resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

// workerSession is one open resident session. The mutex serializes all
// rows-buffer access; colsSeen counts the columns already folded into
// the buffer (own cols plus received exchanges) and reaching N2 is the
// rows phase's readiness condition.
type workerSession struct {
	id   uint64
	spec SessionSpec

	mu       sync.Mutex
	rows     *[]complex128 // RowCount×N2, pooled; nil once released
	colsSeen int
	rowsDone bool
}

// release returns the rows buffer to the pool. Idempotent.
func (sess *workerSession) release() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.rows != nil {
		ReleaseComplex(sess.rows)
		sess.rows = nil
	}
}

// lookupSession fetches a session and touches its TTL clock. A session
// idle past the TTL is reaped here rather than returned — expiry does
// not depend on a later open's GC sweep — and the whole table is swept
// opportunistically at most once per quarter-TTL.
func (s *Server) lookupSession(id uint64) *workerSession {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if now.Sub(s.lastSessGC) > s.cfg.SessionTTL/4 {
		s.gcSessionsLocked(now)
	}
	if e, ok := s.sessions[id]; ok {
		if now.Sub(e.lastUsed) > s.cfg.SessionTTL {
			delete(s.sessions, id)
			e.sess.release()
			s.m.sessExpired.Inc()
			return nil
		}
		e.lastUsed = now
		return e.sess
	}
	return nil
}

// sessEntry pairs a session with its TTL clock (touched under sessMu
// so the GC never races the session's own mutex).
type sessEntry struct {
	sess     *workerSession
	lastUsed time.Time
}

// gcSessionsLocked reaps sessions idle past SessionTTL. Caller holds
// sessMu.
func (s *Server) gcSessionsLocked(now time.Time) {
	for id, e := range s.sessions {
		if now.Sub(e.lastUsed) > s.cfg.SessionTTL {
			delete(s.sessions, id)
			e.sess.release()
			s.m.sessExpired.Inc()
		}
	}
	s.lastSessGC = now
}

// handleSession dispatches one FFS2 frame. raw stays valid (and owned
// by the caller) for the duration of the call.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request, raw []byte) {
	hdr, err := DecodeSessionHeader(raw)
	if err != nil {
		s.m.sessBad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch hdr.Op {
	case OpSessOpen:
		s.sessOpen(w, raw)
	case OpSessCols:
		s.sessCols(w, r, hdr, raw)
	case OpSessExchange:
		s.sessExchange(w, hdr, raw)
	case OpSessRows:
		s.sessRows(w, hdr)
	case OpSessClose:
		s.sessClose(w, hdr)
	default:
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("op %s is not a request", hdr.Op), http.StatusBadRequest)
	}
}

func (s *Server) sessOpen(w http.ResponseWriter, raw []byte) {
	s.m.sessOpens.Inc()
	f, err := DecodeSessionFrame(raw) // materializes the spec
	if err != nil {
		s.m.sessBad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec := *f.Spec
	if spec.N1 > s.cfg.MaxN || spec.N2 > s.cfg.MaxN {
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("four-step factors %d×%d exceed served maximum %d", spec.N1, spec.N2, s.cfg.MaxN),
			http.StatusBadRequest)
		return
	}
	if len(spec.Peers) > 0 && s.cfg.Peers == nil {
		s.m.sessBad.Inc()
		http.Error(w, "worker has no peer sender configured", http.StatusBadRequest)
		return
	}
	now := time.Now()
	s.sessMu.Lock()
	s.gcSessionsLocked(now)
	if _, ok := s.sessions[f.ID]; ok {
		s.sessMu.Unlock()
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("session %d already open", f.ID), http.StatusConflict)
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		s.m.sessBad.Inc()
		http.Error(w, "session table full", http.StatusTooManyRequests)
		return
	}
	sess := &workerSession{id: f.ID, spec: spec, rows: AcquireComplex(spec.RowCount * spec.N2)}
	s.sessions[f.ID] = &sessEntry{sess: sess, lastUsed: now}
	s.sessMu.Unlock()
	s.writeSessionFrame(w, SessionFrame{Op: OpSessAck, Flags: FlagResident, ID: f.ID})
}

func (s *Server) sessClose(w http.ResponseWriter, hdr SessionFrame) {
	s.m.sessCloses.Inc()
	s.sessMu.Lock()
	e, ok := s.sessions[hdr.ID]
	delete(s.sessions, hdr.ID)
	s.sessMu.Unlock()
	if ok {
		e.sess.release()
	}
	// Closing an unknown (or already-closed) session acks anyway:
	// coordinator abort paths close unconditionally.
	s.writeSessionFrame(w, SessionFrame{Op: OpSessAck, ID: hdr.ID})
}

func (s *Server) sessCols(w http.ResponseWriter, r *http.Request, hdr SessionFrame, raw []byte) {
	s.m.sessCols.Inc()
	sess := s.lookupSession(hdr.ID)
	if sess == nil {
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("unknown session %d", hdr.ID), http.StatusNotFound)
		return
	}
	spec := sess.spec
	if hdr.VecLen != spec.N1 || hdr.VecCount != spec.ColCount || hdr.Arg0 != spec.ColStart {
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("cols frame %d×%d@%d does not match session slice %d×%d@%d",
			hdr.VecCount, hdr.VecLen, hdr.Arg0, spec.ColCount, spec.N1, spec.ColStart), http.StatusBadRequest)
		return
	}
	// Wire → pooled scratch, no intermediate buffer.
	scratch := AcquireComplex(hdr.VecLen * hdr.VecCount)
	defer ReleaseComplex(scratch)
	if _, err := DecodeSessionFrameInto(raw, *scratch); err != nil {
		s.m.sessBad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// One admission token covers the FFT dispatch and the peer pushes,
	// so Drain's empty-queue test still means "nothing in flight".
	select {
	case s.sem <- struct{}{}:
	default:
		s.m.shedQueue.Inc()
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()

	if err := s.execSessCols(r.Context(), sess, *scratch); err != nil {
		s.m.internal.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.m.shardVecs.Add(int64(hdr.VecCount))
	s.writeSessionFrame(w, SessionFrame{Op: OpSessAck, ID: hdr.ID})
}

// execSessCols runs the column phase: FFT + twiddle in place in the
// pooled scratch, own rows scattered into the resident buffer, peer
// blocks pushed as exchange frames. Engine panics become errors, the
// same isolation boundary execShard draws.
func (s *Server) execSessCols(ctx context.Context, sess *workerSession, cols []complex128) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Inc()
			if e, ok := r.(error); ok {
				err = fmt.Errorf("session cols panic: %w", e)
			} else {
				err = fmt.Errorf("session cols panic: %v", r)
			}
		}
	}()
	spec := sess.spec
	plan, err := codeletfft.CachedHostPlan(spec.N1, s.planOpts...)
	if err != nil {
		return err
	}
	batch := make([][]complex128, spec.ColCount)
	for v := range batch {
		batch[v] = cols[v*spec.N1 : (v+1)*spec.N1]
	}
	if err := plan.TransformBatch(batch); err != nil {
		return err
	}
	totalN := spec.N1 * spec.N2
	pow2 := fft.Log2(totalN) >= 0
	tw, err := twiddleCache.GetOrCreate(totalN, func() ([]complex128, error) {
		if pow2 {
			return fft.Twiddles(totalN), nil
		}
		return fft.TwiddlesAny(totalN), nil
	})
	if err != nil {
		return err
	}
	for v := range batch {
		if pow2 {
			fft.TwiddleScale(batch[v], tw, spec.ColStart+v, totalN)
		} else {
			fft.TwiddleScaleAny(batch[v], tw, spec.ColStart+v, totalN)
		}
	}

	// Own row block: scratch → resident rows buffer.
	sess.mu.Lock()
	if sess.rows == nil {
		sess.mu.Unlock()
		return fmt.Errorf("session %d is closed", sess.id)
	}
	rows := *sess.rows
	for v := 0; v < spec.ColCount; v++ {
		col := cols[v*spec.N1 : (v+1)*spec.N1]
		for i := 0; i < spec.RowCount; i++ {
			rows[i*spec.N2+spec.ColStart+v] = col[spec.RowStart+i]
		}
	}
	sess.colsSeen += spec.ColCount
	sess.mu.Unlock()

	// Peer row blocks: scratch → pooled exchange frames → peers, in
	// parallel. Any push failure fails the cols request, and the
	// coordinator aborts the whole resident attempt.
	if len(spec.Peers) == 0 {
		return nil
	}
	if s.cfg.Peers == nil {
		return fmt.Errorf("session %d names %d peers but the worker has no peer sender", sess.id, len(spec.Peers))
	}
	var wg sync.WaitGroup
	errs := make([]error, len(spec.Peers))
	for pi, p := range spec.Peers {
		wg.Add(1)
		go func(pi int, p PeerRange) {
			defer wg.Done()
			errs[pi] = s.pushExchange(ctx, sess, p, cols)
		}(pi, p)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// pushExchange encodes peer p's row block straight out of the column
// scratch into a pooled frame and delivers it.
func (s *Server) pushExchange(ctx context.Context, sess *workerSession, p PeerRange, cols []complex128) error {
	spec := sess.spec
	f := SessionFrame{
		Op: OpSessExchange, ID: sess.id,
		VecLen: p.RowCount, VecCount: spec.ColCount,
		Arg0: spec.ColStart, Arg1: p.RowStart,
	}
	size := SessionHeaderLen + 16*p.RowCount*spec.ColCount
	bp := AcquireFrame(size)
	defer ReleaseFrame(bp)
	b := appendSessionHeader((*bp)[:0], f)
	for v := 0; v < spec.ColCount; v++ {
		col := cols[v*spec.N1 : (v+1)*spec.N1]
		for i := 0; i < p.RowCount; i++ {
			c := col[p.RowStart+i]
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(real(c)))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(imag(c)))
		}
	}
	resp, err := s.cfg.Peers.PushFrame(ctx, p.Addr, b)
	if err != nil {
		return fmt.Errorf("exchange to %s: %w", p.Addr, err)
	}
	ack, err := DecodeSessionFrame(resp)
	if err != nil || ack.Op != OpSessAck {
		return fmt.Errorf("exchange to %s: bad ack", p.Addr)
	}
	return nil
}

func (s *Server) sessExchange(w http.ResponseWriter, hdr SessionFrame, raw []byte) {
	s.m.sessExchanges.Inc()
	sess := s.lookupSession(hdr.ID)
	if sess == nil {
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("unknown session %d", hdr.ID), http.StatusNotFound)
		return
	}
	spec := sess.spec
	if hdr.Arg1 != spec.RowStart || hdr.VecLen != spec.RowCount || hdr.Arg0+hdr.VecCount > spec.N2 {
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("exchange frame %d×%d@%d/%d does not fit session rows [%d,%d)×cols %d",
			hdr.VecCount, hdr.VecLen, hdr.Arg0, hdr.Arg1, spec.RowStart, spec.RowStart+spec.RowCount, spec.N2),
			http.StatusBadRequest)
		return
	}
	payload := raw[SessionHeaderLen:]
	sess.mu.Lock()
	if sess.rows == nil {
		sess.mu.Unlock()
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("session %d is closed", hdr.ID), http.StatusConflict)
		return
	}
	// Wire → resident rows buffer directly: vector v element i is
	// matrix cell (row arg1+i, column arg0+v).
	rows := *sess.rows
	for v := 0; v < hdr.VecCount; v++ {
		base := 16 * v * hdr.VecLen
		for i := 0; i < hdr.VecLen; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(payload[base+16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(payload[base+16*i+8:]))
			rows[i*spec.N2+hdr.Arg0+v] = complex(re, im)
		}
	}
	sess.colsSeen += hdr.VecCount
	sess.mu.Unlock()
	s.writeSessionFrame(w, SessionFrame{Op: OpSessAck, ID: hdr.ID})
}

func (s *Server) sessRows(w http.ResponseWriter, hdr SessionFrame) {
	s.m.sessRows.Inc()
	sess := s.lookupSession(hdr.ID)
	if sess == nil {
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("unknown session %d", hdr.ID), http.StatusNotFound)
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.m.shedQueue.Inc()
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()

	spec := sess.spec
	// The mutex is held through the response write: the rows buffer
	// must not return to the pool while its bytes stream out.
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch {
	case sess.rows == nil:
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("session %d is closed", hdr.ID), http.StatusConflict)
		return
	case sess.rowsDone:
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("session %d rows already fetched", hdr.ID), http.StatusConflict)
		return
	case sess.colsSeen != spec.N2:
		s.m.sessBad.Inc()
		http.Error(w, fmt.Sprintf("session %d has %d of %d columns", hdr.ID, sess.colsSeen, spec.N2),
			http.StatusConflict)
		return
	}
	if err := s.execSessRows(sess); err != nil {
		s.m.internal.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sess.rowsDone = true
	s.m.shardVecs.Add(int64(spec.RowCount))
	s.writeSessionFrame(w, SessionFrame{
		Op: OpSessRows, ID: hdr.ID,
		VecLen: spec.N2, VecCount: spec.RowCount, Arg0: spec.RowStart,
		Data: (*sess.rows)[:spec.RowCount*spec.N2],
	})
}

// execSessRows FFTs every resident row in place. Caller holds sess.mu
// and has verified readiness.
func (s *Server) execSessRows(sess *workerSession) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Inc()
			if e, ok := r.(error); ok {
				err = fmt.Errorf("session rows panic: %w", e)
			} else {
				err = fmt.Errorf("session rows panic: %v", r)
			}
		}
	}()
	spec := sess.spec
	plan, err := codeletfft.CachedHostPlan(spec.N2, s.planOpts...)
	if err != nil {
		return err
	}
	rows := *sess.rows
	batch := make([][]complex128, spec.RowCount)
	for i := range batch {
		batch[i] = rows[i*spec.N2 : (i+1)*spec.N2]
	}
	return plan.TransformBatch(batch)
}

// streamChunkElems is the payload chunk size for streaming writes:
// 4096 elements = 64 KiB, large enough to amortize the write syscall,
// small enough that the chunk buffer stays cache- and pool-friendly.
const streamChunkElems = 4096

// writeSessionFrame streams an FFS2 frame as header + payload chunks
// encoded straight out of f.Data — the vectored-write path: no
// contiguous copy of the whole frame ever exists on the worker.
func (s *Server) writeSessionFrame(w http.ResponseWriter, f SessionFrame) {
	hp := AcquireFrame(SessionHeaderLen)
	defer ReleaseFrame(hp)
	hdr := appendSessionHeader((*hp)[:0], f)
	writeFrameStreaming(w, hdr, f.Data)
}

// writeFrameStreaming writes an already-encoded header followed by the
// payload in pooled chunks.
func writeFrameStreaming(w http.ResponseWriter, hdr []byte, data []complex128) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(hdr)+16*len(data)))
	if _, err := w.Write(hdr); err != nil || len(data) == 0 {
		return
	}
	cp := AcquireFrame(16 * min(streamChunkElems, len(data)))
	defer ReleaseFrame(cp)
	for off := 0; off < len(data); off += streamChunkElems {
		end := min(off+streamChunkElems, len(data))
		chunk := AppendComplexPayload((*cp)[:0], data[off:end])
		if _, err := w.Write(chunk); err != nil {
			return
		}
	}
}

// readShardBody reads a shard/session request body into a pooled
// buffer (sized by Content-Length on the common path). The caller owns
// the returned buffer and must ReleaseFrame it.
func (s *Server) readShardBody(w http.ResponseWriter, r *http.Request) (*[]byte, error) {
	// Generous bound: the largest payload plus the largest session spec.
	limit := int64(SessionHeaderLen) + 16*int64(MaxFrameElems) + 1<<20
	body := http.MaxBytesReader(w, r.Body, limit)
	if n := r.ContentLength; n >= 0 && n <= limit {
		bp := AcquireFrame(int(n))
		if _, err := io.ReadFull(body, *bp); err != nil {
			ReleaseFrame(bp)
			return nil, err
		}
		var extra [1]byte
		if m, _ := body.Read(extra[:]); m > 0 {
			ReleaseFrame(bp)
			return nil, fmt.Errorf("request body longer than its declared length")
		}
		return bp, nil
	}
	b, err := readAll(body)
	if err != nil {
		return nil, err
	}
	return &b, nil
}
