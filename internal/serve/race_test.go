//go:build race

package serve

// raceEnabled skips allocation-count guards under the race detector:
// its instrumentation allocates, and sync.Pool deliberately drops a
// fraction of Puts when built with -race, so a pooled zero-alloc
// guarantee is unmeasurable there.
const raceEnabled = true
