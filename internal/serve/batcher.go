// Micro-batch coalescing: one batcher per (length, kind) shape gathers
// admitted requests for up to the batch window — or until MaxBatch —
// then hands the whole group to a panic-isolated executor goroutine
// that resolves the shape's cached plan once and runs a single
// TransformBatch/InverseBatch dispatch (per-request real-path calls for
// the real kinds). The executor answers every request's done channel
// and releases its admission token, so queue accounting survives
// deadlines, panics, and drain.
package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"codeletfft"
)

type batcher struct {
	s   *Server
	key batchKey

	mu      sync.Mutex
	pending []*pending
	timer   *time.Timer
}

// add enqueues one admitted request and decides when its batch flushes:
// immediately on MaxBatch, a disabled window, or drain; otherwise the
// first request of a batch arms the window timer.
func (b *batcher) add(p *pending) {
	b.mu.Lock()
	b.pending = append(b.pending, p)
	n := len(b.pending)
	if n >= b.s.cfg.MaxBatch || b.s.cfg.BatchWindow < 0 || b.s.draining.Load() {
		reqs := b.takeLocked()
		b.mu.Unlock()
		b.s.dispatch(b.key, reqs)
		return
	}
	if n == 1 {
		if b.timer == nil {
			b.timer = time.AfterFunc(b.s.cfg.BatchWindow, b.flush)
		} else {
			b.timer.Reset(b.s.cfg.BatchWindow)
		}
	}
	b.mu.Unlock()
}

// takeLocked claims the pending slice and disarms the window timer.
// Called with b.mu held.
func (b *batcher) takeLocked() []*pending {
	reqs := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
	}
	return reqs
}

// flush dispatches whatever is pending; the window-timer callback and
// the drain sweep both land here, and racing flushes are harmless (the
// loser finds nothing pending).
func (b *batcher) flush() {
	b.mu.Lock()
	reqs := b.takeLocked()
	b.mu.Unlock()
	if len(reqs) > 0 {
		b.s.dispatch(b.key, reqs)
	}
}

// dispatch hands one batch to its executor goroutine.
func (s *Server) dispatch(key batchKey, reqs []*pending) {
	go s.execute(key, reqs)
}

// execute answers one batch: drop requests that expired while queued,
// run the live ones through the shape's plan, deliver results, release
// admission tokens. The token release is deferred last so that an empty
// queue (Drain's completion test) implies every request was answered.
func (s *Server) execute(key batchKey, reqs []*pending) {
	defer func() {
		for range reqs {
			<-s.sem
		}
	}()

	live := make([]*pending, 0, len(reqs))
	for _, p := range reqs {
		if p.ctx.Err() != nil {
			s.m.expired.Inc()
			p.done <- context.DeadlineExceeded
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}

	start := time.Now()
	err := s.runBatch(key, live)
	s.m.batches.Inc()
	s.m.occupancy.Observe(float64(len(live)))
	s.m.batchSec.Observe(time.Since(start).Seconds())
	for _, p := range live {
		p.done <- err
	}
}

// runBatch resolves the shape's cached plan through the unified Plan
// interface and applies the transform to every live request. A panic
// anywhere inside (the isolation boundary for the worker) is converted
// to an error answered to the whole batch; the server keeps serving.
// Panic values that are errors are wrapped, not stringified, so submit
// can classify them (a length-mismatch batch panic names the offending
// batch element and becomes a 400).
func (s *Server) runBatch(key batchKey, live []*pending) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Inc()
			if e, ok := r.(error); ok {
				err = fmt.Errorf("transform panic: %w", e)
			} else {
				err = fmt.Errorf("transform panic: %v", r)
			}
		}
	}()
	if s.execHook != nil {
		s.execHook(key, len(live))
	}
	switch key.kind {
	case KindForward, KindInverse:
		var plan codeletfft.Plan
		plan, err = codeletfft.CachedHostPlan(key.n, s.planOpts...)
		if err != nil {
			return err
		}
		batch := make([][]complex128, len(live))
		for i, p := range live {
			batch[i] = p.data
		}
		if key.kind == KindForward {
			return plan.TransformBatch(batch)
		}
		return plan.InverseBatch(batch)
	case KindReal:
		plan, err := codeletfft.CachedRealPlan(key.n, s.planOpts...)
		if err != nil {
			return err
		}
		for _, p := range live {
			if err := plan.Transform(p.spec, p.realIn); err != nil {
				return err
			}
		}
	case KindRealInverse:
		plan, err := codeletfft.CachedRealPlan(key.n, s.planOpts...)
		if err != nil {
			return err
		}
		for _, p := range live {
			if err := plan.Inverse(p.realOut, p.data); err != nil {
				return err
			}
		}
	case KindSTFT:
		// Spectrogram chunks carry pre-windowed frames, so the executor
		// is a pure batched transform: frames from every coalesced
		// stream flatten into one dispatch.
		var plan codeletfft.Plan
		plan, err = codeletfft.CachedHostPlan(key.n, s.planOpts...)
		if err != nil {
			return err
		}
		total := 0
		for _, p := range live {
			total += len(p.frames)
		}
		batch := make([][]complex128, 0, total)
		for _, p := range live {
			batch = append(batch, p.frames...)
		}
		return plan.TransformBatch(batch)
	}
	return nil
}

// readAll is io.ReadAll, split out so the handler reads as one line.
func readAll(r io.Reader) ([]byte, error) { return io.ReadAll(r) }
