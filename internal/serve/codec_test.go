package serve

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Kind: KindForward, Complex: []complex128{1 + 2i, -3.5 + 0.25i}},
		{Kind: KindInverse, Complex: []complex128{complex(math.Inf(1), math.NaN())}},
		{Kind: KindReal, Real: []float64{0, 1, -1, 0.5}},
		{Kind: KindRealInverse, Complex: []complex128{1, 2, 3}},
		{Kind: KindForward, Complex: []complex128{}},
		{Kind: KindReal, Real: []float64{}},
	} {
		enc, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %v: %v", f.Kind, err)
		}
		dec, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", f.Kind, err)
		}
		if dec.Kind != f.Kind {
			t.Fatalf("kind %v -> %v", f.Kind, dec.Kind)
		}
		re, err := EncodeFrame(dec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("re-encode of %v not canonical", f.Kind)
		}
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	good, err := EncodeFrame(Frame{Kind: KindForward, Complex: []complex128{1, 2i}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":                  {},
		"short header":           good[:headerLen-1],
		"truncated by one byte":  good[:len(good)-1],
		"truncated half payload": good[:headerLen+8],
		"one trailing byte":      append(append([]byte(nil), good...), 0),
	}
	bad := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases["bad magic"] = bad(func(b []byte) { b[0] = 'X' })
	cases["bad version"] = bad(func(b []byte) { b[4] = 9 })
	cases["bad kind"] = bad(func(b []byte) { b[5] = byte(kindCount) })
	cases["bad elem"] = bad(func(b []byte) { b[6] = 7 })
	cases["reserved set"] = bad(func(b []byte) { b[7] = 1 })
	cases["count lies high"] = bad(func(b []byte) { b[8] = 3 })
	cases["count lies low"] = bad(func(b []byte) { b[8] = 1 })
	for name, b := range cases {
		if _, err := DecodeFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: error = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestFrameCountLimit(t *testing.T) {
	// A header that promises MaxFrameElems+1 elements must be rejected
	// before any payload-sized allocation.
	b := append([]byte(frameMagic), frameVersion, byte(KindForward), elemComplex, 0)
	n := uint32(MaxFrameElems + 1)
	b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	if _, err := DecodeFrame(b); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized count: error = %v, want ErrBadFrame", err)
	}
}

func TestEncodeRejectsAmbiguousPayload(t *testing.T) {
	for _, f := range []Frame{
		{Kind: KindForward},
		{Kind: KindForward, Complex: []complex128{1}, Real: []float64{1}},
		{Kind: kindCount, Complex: []complex128{1}},
	} {
		if _, err := EncodeFrame(f); !errors.Is(err, ErrBadFrame) {
			t.Errorf("EncodeFrame(%+v): error = %v, want ErrBadFrame", f, err)
		}
	}
}

// FuzzServeCodec pins the decoder's two contracts: arbitrary bytes
// never panic, and any frame that decodes re-encodes to the identical
// bytes (so truncated or padded frames can never round-trip quietly).
func FuzzServeCodec(f *testing.F) {
	seed1, _ := EncodeFrame(Frame{Kind: KindForward, Complex: []complex128{1 + 2i, 3 - 4i}})
	seed2, _ := EncodeFrame(Frame{Kind: KindReal, Real: []float64{0.5, -0.25, 1, 0}})
	seed3, _ := EncodeFrame(Frame{Kind: KindRealInverse, Complex: []complex128{1, 2, 3}})
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add(seed1[:len(seed1)-3]) // truncated
	f.Add([]byte("FFB1"))       // header fragment
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error %v does not wrap ErrBadFrame", err)
			}
			return
		}
		enc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame failed to encode: %v", err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", b, enc)
		}
		// A valid frame must stop being valid when truncated.
		if len(b) > headerLen {
			if _, err := DecodeFrame(b[:len(b)-1]); err == nil {
				t.Fatal("truncated frame decoded successfully")
			}
		}
	})
}
