// The shard frame is the cluster extension of the binary codec: one
// frame carries a contiguous segment of the four-step decomposition —
// a batch of equal-length column or row vectors plus the twiddle
// context a worker needs to execute them without knowing the rest of
// the transform.
//
//	offset  size  field
//	0       4     magic "FFS1"
//	4       1     version (1)
//	5       1     op      (OpColumns, OpRows)
//	6       2     reserved, must be 0
//	8       4     vecLen   (uint32 LE, length of each vector)
//	12      4     vecCount (uint32 LE, number of vectors)
//	16      8     totalN   (uint64 LE, the factored transform's N;
//	                        the twiddle modulus for OpColumns, 0 for OpRows)
//	24      8     start    (uint64 LE, global index of the first vector)
//	32      …     payload  (vecLen·vecCount complex128, float64 LE pairs)
//
// OpColumns asks the worker to forward-FFT every vector and then scale
// vector v's bin k by ω_totalN^{(start+v)·k} — the four-step twiddle
// segment. OpRows asks for the plain forward FFT of every vector. A
// response frame echoes the request header with the transformed
// payload.
//
// Decoding is strict, mirroring DecodeFrame: bad magic/version/op,
// non-zero reserved bytes, vecLen < 1, a total element count over
// MaxFrameElems, an OpColumns header whose totalN is not a positive
// multiple of vecLen or whose start+vecCount exceeds totalN/vecLen, or
// a payload of the wrong byte length are all rejected with errors
// wrapping ErrBadFrame — never a panic, the property pinned by
// FuzzShardFrame. Lengths need not be powers of two: a worker plans any
// vecLen through the facade's mixed-radix/Bluestein routing, and
// non-power-of-two totalN twiddles use the full general-modulus table.
// Encoding is canonical: re-encoding a decoded frame reproduces the
// input bytes exactly.
package serve

import (
	"encoding/binary"
	"fmt"
)

// ShardOp selects what a worker does with a shard frame's vectors.
type ShardOp uint8

const (
	// OpColumns: forward FFT each vector, then apply the four-step
	// twiddle segment ω_totalN^{(start+v)·k}.
	OpColumns ShardOp = iota
	// OpRows: forward FFT each vector.
	OpRows

	shardOpCount
)

// String names the op for logs and error messages.
func (op ShardOp) String() string {
	switch op {
	case OpColumns:
		return "columns"
	case OpRows:
		return "rows"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

const (
	shardMagic   = "FFS1"
	shardVersion = 1
	// ShardHeaderLen is the fixed FFS1 header size — callers accounting
	// wire bytes add 16 per payload element.
	ShardHeaderLen = 32
	shardHeaderLen = ShardHeaderLen
)

// ShardFrame is one decoded shard request or response: len(Data) =
// VecLen·VecCount with vector v at Data[v·VecLen:(v+1)·VecLen].
type ShardFrame struct {
	Op     ShardOp
	VecLen int
	TotalN int // twiddle modulus (OpColumns); 0 for OpRows
	Start  int // global index of vector 0
	Data   []complex128
}

// VecCount returns how many vectors the frame carries.
func (f ShardFrame) VecCount() int {
	if f.VecLen <= 0 {
		return 0
	}
	return len(f.Data) / f.VecLen
}

// Vec returns vector v as a sub-slice of Data.
func (f ShardFrame) Vec(v int) []complex128 {
	return f.Data[v*f.VecLen : (v+1)*f.VecLen]
}

// validateShard checks the header invariants shared by encode and
// decode, so a frame AppendShardFrame accepts is exactly a frame
// DecodeShardFrame would produce.
func validateShard(op ShardOp, vecLen, vecCount, totalN, start int) error {
	if op >= shardOpCount {
		return fmt.Errorf("%w: unknown shard op %d", ErrBadFrame, op)
	}
	if vecLen < 1 {
		return fmt.Errorf("%w: vector length %d is not positive", ErrBadFrame, vecLen)
	}
	if vecCount < 1 {
		return fmt.Errorf("%w: shard carries no vectors", ErrBadFrame)
	}
	if vecLen*vecCount > MaxFrameElems {
		return fmt.Errorf("%w: %d elements exceeds limit %d", ErrBadFrame, vecLen*vecCount, MaxFrameElems)
	}
	switch op {
	case OpColumns:
		if totalN < 2 || totalN%vecLen != 0 {
			return fmt.Errorf("%w: totalN %d is not a positive multiple of vector length %d",
				ErrBadFrame, totalN, vecLen)
		}
		if vecs := totalN / vecLen; vecs < 1 || start < 0 || start+vecCount > vecs {
			return fmt.Errorf("%w: vectors [%d, %d) outside the %d columns of a %d-point transform",
				ErrBadFrame, start, start+vecCount, vecs, totalN)
		}
	case OpRows:
		if totalN != 0 {
			return fmt.Errorf("%w: totalN must be 0 for a rows shard, got %d", ErrBadFrame, totalN)
		}
		if start < 0 {
			return fmt.Errorf("%w: negative start %d", ErrBadFrame, start)
		}
	}
	return nil
}

// AppendShardFrame appends the encoded shard frame to dst and returns
// the extended slice. Data must be a whole number of VecLen-length
// vectors and the header must satisfy the documented invariants.
func AppendShardFrame(dst []byte, f ShardFrame) ([]byte, error) {
	if f.VecLen <= 0 || len(f.Data)%f.VecLen != 0 {
		return nil, fmt.Errorf("%w: %d elements is not a whole number of %d-length vectors",
			ErrBadFrame, len(f.Data), f.VecLen)
	}
	if err := validateShard(f.Op, f.VecLen, f.VecCount(), f.TotalN, f.Start); err != nil {
		return nil, err
	}
	return AppendComplexPayload(appendShardHeader(dst, f), f.Data), nil
}

// appendShardHeader writes the 32-byte FFS1 header only — the seam the
// streaming response writer uses to emit a header followed by payload
// chunks encoded straight out of the pooled shard buffer.
func appendShardHeader(dst []byte, f ShardFrame) []byte {
	dst = append(dst, shardMagic...)
	dst = append(dst, shardVersion, byte(f.Op), 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.VecLen))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.VecCount()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.TotalN))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Start))
	return dst
}

// EncodeShardFrame encodes the frame into a fresh buffer.
func EncodeShardFrame(f ShardFrame) ([]byte, error) {
	return AppendShardFrame(make([]byte, 0, shardHeaderLen+16*len(f.Data)), f)
}

// DecodeShardFrame parses one shard frame from b, which must contain
// exactly the frame — truncated payloads and trailing bytes are both
// rejected.
func DecodeShardFrame(b []byte) (ShardFrame, error) {
	return decodeShard(b, nil, false)
}

// DecodeShardFrameInto parses one shard frame from b, decoding the
// payload directly into dst — which must have exactly vecLen·vecCount
// elements — so the wire bytes land in the worker's pooled scratch with
// no intermediate allocation.
func DecodeShardFrameInto(b []byte, dst []complex128) (ShardFrame, error) {
	return decodeShard(b, dst, true)
}

// ShardFrameElems parses just enough of b to size a destination buffer
// for DecodeShardFrameInto: the declared vecLen·vecCount, without
// validating the rest of the frame. Returns -1 when b is shorter than a
// header or the declared count exceeds MaxFrameElems.
func ShardFrameElems(b []byte) int {
	if len(b) < shardHeaderLen {
		return -1
	}
	vecLen := int64(binary.LittleEndian.Uint32(b[8:12]))
	vecCount := int64(binary.LittleEndian.Uint32(b[12:16]))
	if n := vecLen * vecCount; n <= int64(MaxFrameElems) {
		return int(n)
	}
	return -1
}

func decodeShard(b []byte, dst []complex128, into bool) (ShardFrame, error) {
	if len(b) < shardHeaderLen {
		return ShardFrame{}, fmt.Errorf("%w: %d bytes is shorter than the %d-byte shard header",
			ErrBadFrame, len(b), shardHeaderLen)
	}
	if string(b[:4]) != shardMagic {
		return ShardFrame{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, b[:4])
	}
	if b[4] != shardVersion {
		return ShardFrame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, b[4])
	}
	if b[6] != 0 || b[7] != 0 {
		return ShardFrame{}, fmt.Errorf("%w: non-zero reserved bytes", ErrBadFrame)
	}
	op := ShardOp(b[5])
	vecLen := int(binary.LittleEndian.Uint32(b[8:12]))
	vecCount := int(binary.LittleEndian.Uint32(b[12:16]))
	totalN64 := binary.LittleEndian.Uint64(b[16:24])
	start64 := binary.LittleEndian.Uint64(b[24:32])
	// Bound the 64-bit fields before narrowing so a hostile header
	// cannot wrap them into plausible ints.
	if totalN64 > uint64(MaxFrameElems) || start64 > uint64(MaxFrameElems) {
		return ShardFrame{}, fmt.Errorf("%w: header fields exceed limit %d", ErrBadFrame, MaxFrameElems)
	}
	if err := validateShard(op, vecLen, vecCount, int(totalN64), int(start64)); err != nil {
		return ShardFrame{}, err
	}
	payload := b[shardHeaderLen:]
	count := vecLen * vecCount
	if len(payload) != 16*count {
		return ShardFrame{}, fmt.Errorf("%w: payload is %d bytes, want exactly %d (%d×%d vectors)",
			ErrBadFrame, len(payload), 16*count, vecCount, vecLen)
	}
	f := ShardFrame{Op: op, VecLen: vecLen, TotalN: int(totalN64), Start: int(start64)}
	if into {
		if len(dst) != count {
			return ShardFrame{}, fmt.Errorf("%w: destination has %d elements, frame carries %d",
				ErrBadFrame, len(dst), count)
		}
		f.Data = dst
	} else {
		f.Data = make([]complex128, count)
	}
	DecodeComplexPayload(f.Data, payload)
	return f, nil
}
