package c64

import (
	"fmt"
	"math"

	"codeletfft/internal/sim"
)

// Kind distinguishes loads from stores in traces and statistics.
type Kind uint8

// Access kinds.
const (
	Load Kind = iota
	Store
)

func (k Kind) String() string {
	if k == Load {
		return "load"
	}
	return "store"
}

// Request describes one contiguous DRAM transfer by starting byte address
// and length. The machine splits it across interleave blocks internally.
type Request struct {
	Addr  int64
	Bytes int64
}

// Tracer receives one record per (bank, time window) slice of every DRAM
// transfer. Package trace provides the standard implementation that bins
// these into the paper's access-rate time series.
type Tracer interface {
	RecordDRAM(bank int, at sim.Time, bytes int64, kind Kind)
}

// Machine is one simulated C64 node: a shared discrete-event clock, the
// four DRAM port timelines, and cumulative statistics. It is not safe for
// concurrent use; the discrete-event model is single-threaded by design.
type Machine struct {
	Cfg Config
	Eng *sim.Engine

	dram   []sim.Timeline
	sram   sim.Timeline
	Tracer Tracer

	bankBytes      []int64
	bankAccesses   []int64
	openRow        []int64
	rowHits        []int64
	rowMisses      []int64
	loadBytes      int64
	storeBytes     int64
	sramLoadBytes  int64
	sramStoreBytes int64
	flops          int64
}

// NewMachine builds a machine from cfg, panicking on invalid
// configurations (a programming error, not a runtime condition).
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		Cfg:          cfg,
		Eng:          sim.NewEngine(),
		dram:         make([]sim.Timeline, cfg.DRAMPorts),
		bankBytes:    make([]int64, cfg.DRAMPorts),
		bankAccesses: make([]int64, cfg.DRAMPorts),
		openRow:      make([]int64, cfg.DRAMPorts),
		rowHits:      make([]int64, cfg.DRAMPorts),
		rowMisses:    make([]int64, cfg.DRAMPorts),
	}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	return m
}

// Bank maps a byte address to its DRAM port under round-robin
// interleaving every Cfg.InterleaveBytes bytes.
func (m *Machine) Bank(addr int64) int {
	if addr < 0 {
		panic(fmt.Sprintf("c64: negative address %d", addr))
	}
	return int((addr / m.Cfg.InterleaveBytes) % int64(m.Cfg.DRAMPorts))
}

// splitBanks accumulates the per-bank byte counts of a request batch into
// dst (len DRAMPorts), splitting each request at interleave boundaries.
func (m *Machine) splitBanks(reqs []Request, dst []int64) {
	il := m.Cfg.InterleaveBytes
	ports := int64(m.Cfg.DRAMPorts)
	for _, r := range reqs {
		if r.Bytes <= 0 {
			continue
		}
		addr, remain := r.Addr, r.Bytes
		for remain > 0 {
			block := addr / il
			bank := block % ports
			next := (block + 1) * il
			chunk := next - addr
			if chunk > remain {
				chunk = remain
			}
			dst[bank] += chunk
			addr += chunk
			remain -= chunk
		}
	}
}

// DRAMAccess submits a batch of transfers at time now and returns the time
// at which the whole batch has completed. Per-bank byte totals queue FIFO
// on their port timelines at the configured bandwidth after the fixed
// access latency; banks serve concurrently with each other, so a batch
// spread across all four ports finishes up to 4x faster than the same
// bytes aimed at one port — the effect the paper is about.
func (m *Machine) DRAMAccess(now sim.Time, kind Kind, reqs []Request) sim.Time {
	var perBank [16]int64
	banks := perBank[:m.Cfg.DRAMPorts]
	m.splitBanks(reqs, banks)

	done := now
	for b, bytes := range banks {
		if bytes == 0 {
			continue
		}
		service := sim.Time(math.Ceil(float64(bytes) / m.Cfg.DRAMPortBytesPerCycle))
		start, end := m.dram[b].Acquire(now+m.Cfg.DRAMLatency, service)
		if end > done {
			done = end
		}
		m.record(b, start, bytes, kind)
	}
	return done
}

// FlopCycles converts a floating-point operation count into TU cycles at
// the configured per-TU throughput.
func (m *Machine) FlopCycles(flops int64) sim.Time {
	if flops <= 0 {
		return 0
	}
	m.flops += flops
	return sim.Time(math.Ceil(float64(flops) / m.Cfg.FlopsPerCycle))
}

// HashCycles returns the TU cost of hashing n twiddle addresses whose
// indices are bits wide, per the software bit-reversal cost model.
func (m *Machine) HashCycles(n int, bits int) sim.Time {
	if n <= 0 {
		return 0
	}
	per := m.Cfg.HashBase + m.Cfg.HashPerBit*float64(bits)
	return sim.Time(math.Ceil(per * float64(n)))
}

// BankBytes returns the cumulative bytes served by each DRAM port.
func (m *Machine) BankBytes() []int64 {
	out := make([]int64, len(m.bankBytes))
	copy(out, m.bankBytes)
	return out
}

// BankAccesses returns cumulative 8-byte word accesses per DRAM port.
func (m *Machine) BankAccesses() []int64 {
	out := make([]int64, len(m.bankAccesses))
	copy(out, m.bankAccesses)
	return out
}

// BankBusy returns the cycles each DRAM port spent serving requests.
func (m *Machine) BankBusy() []sim.Time {
	out := make([]sim.Time, len(m.dram))
	for i := range m.dram {
		out[i] = m.dram[i].Busy()
	}
	return out
}

// RowHits and RowMisses return per-bank row-buffer statistics for the
// asynchronous (burst) access path.
func (m *Machine) RowHits() []int64   { return append([]int64(nil), m.rowHits...) }
func (m *Machine) RowMisses() []int64 { return append([]int64(nil), m.rowMisses...) }

// LoadBytes returns the cumulative bytes loaded from DRAM.
func (m *Machine) LoadBytes() int64 { return m.loadBytes }

// StoreBytes returns the cumulative bytes stored to DRAM.
func (m *Machine) StoreBytes() int64 { return m.storeBytes }

// Flops returns the cumulative floating-point operations charged.
func (m *Machine) Flops() int64 { return m.flops }

// GFLOPS converts a flop count over a cycle span into the paper's
// performance metric.
func (m *Machine) GFLOPS(flops int64, cycles sim.Time) float64 {
	secs := m.Cfg.Seconds(cycles)
	if secs <= 0 {
		return 0
	}
	return float64(flops) / secs / 1e9
}
