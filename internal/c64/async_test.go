package c64

import (
	"testing"

	"codeletfft/internal/sim"
)

func noRowCfg() Config {
	cfg := Default()
	cfg.DRAMLatency = 0
	cfg.RowBytes = 0
	return cfg
}

func TestSplitBurstsCoalescesContiguous(t *testing.T) {
	m := NewMachine(Default())
	// Four contiguous 16-byte elements in one interleave block coalesce
	// into a single 64-byte burst.
	var reqs []Request
	for i := int64(0); i < 4; i++ {
		reqs = append(reqs, Request{Addr: i * 16, Bytes: 16})
	}
	bursts := m.splitBursts(reqs, nil)
	if len(bursts) != 1 || bursts[0].bytes != 64 || bursts[0].bank != 0 {
		t.Fatalf("bursts = %+v, want one 64B burst on bank 0", bursts)
	}
}

func TestSplitBurstsStridedStaysSeparate(t *testing.T) {
	m := NewMachine(Default())
	// Strided 16-byte elements 1024 bytes apart: one burst each, all on
	// the same bank (1024 = 16 blocks = 4 full rounds).
	var reqs []Request
	for i := int64(0); i < 8; i++ {
		reqs = append(reqs, Request{Addr: i * 1024, Bytes: 16})
	}
	bursts := m.splitBursts(reqs, nil)
	if len(bursts) != 8 {
		t.Fatalf("want 8 bursts, got %d", len(bursts))
	}
	for _, b := range bursts {
		if b.bank != 0 || b.bytes != 16 {
			t.Fatalf("burst = %+v", b)
		}
	}
}

func TestSplitBurstsCrossBlock(t *testing.T) {
	m := NewMachine(Default())
	// A 256-byte request spans all four banks exactly once.
	bursts := m.splitBursts([]Request{{Addr: 0, Bytes: 256}}, nil)
	if len(bursts) != 4 {
		t.Fatalf("want 4 bursts, got %d", len(bursts))
	}
	for i, b := range bursts {
		if b.bank != i || b.bytes != 64 {
			t.Fatalf("burst %d = %+v", i, b)
		}
	}
}

func TestAsyncSingleBurst(t *testing.T) {
	cfg := noRowCfg()
	cfg.DRAMLatency = 10
	m := NewMachine(cfg)
	var done sim.Time
	m.DRAMAccessAsync(5, Load, []Request{{Addr: 0, Bytes: 64}}, func(t sim.Time) { done = t })
	m.Eng.Run()
	// Issue at 5, service 8 cycles, +10 latency → 23.
	if done != 23 {
		t.Fatalf("done = %d, want 23", done)
	}
}

func TestAsyncEmptyBatchSynchronous(t *testing.T) {
	m := NewMachine(noRowCfg())
	called := false
	m.DRAMAccessAsync(7, Load, nil, func(t sim.Time) {
		called = true
		if t != 7 {
			panic("bad time")
		}
	})
	if !called {
		t.Fatal("empty batch should complete synchronously")
	}
}

func TestAsyncOutstandingWindowLimitsPipelining(t *testing.T) {
	// 8 same-bank bursts with K=2: bursts serialize on the port (8 cycles
	// each), and the window only refills on completions, so the port goes
	// idle between windows when latency is large.
	cfg := noRowCfg()
	cfg.OutstandingRequests = 2
	cfg.DRAMLatency = 100
	m := NewMachine(cfg)
	var reqs []Request
	for i := int64(0); i < 8; i++ {
		reqs = append(reqs, Request{Addr: i * 1024, Bytes: 64})
	}
	var done sim.Time
	m.DRAMAccessAsync(0, Load, reqs, func(t sim.Time) { done = t })
	m.Eng.Run()
	// Window of 2: service 8+8, completions at 108,116; next window
	// issues at 108... completion chain ≈ 4 windows × ~116.
	if done < 400 {
		t.Fatalf("done = %d; K=2 with 100-cycle latency cannot finish this fast", done)
	}
	k8 := NewMachine(func() Config { c := noRowCfg(); c.OutstandingRequests = 8; c.DRAMLatency = 100; return c }())
	var done8 sim.Time
	k8.DRAMAccessAsync(0, Load, reqs, func(t sim.Time) { done8 = t })
	k8.Eng.Run()
	if done8 >= done {
		t.Fatalf("K=8 (%d) should beat K=2 (%d)", done8, done)
	}
}

func TestAsyncInterleavesAcrossCallers(t *testing.T) {
	// Two concurrent batches on one bank share the port roughly fairly:
	// neither finishes before the other's first burst is served.
	cfg := noRowCfg()
	cfg.OutstandingRequests = 1
	m := NewMachine(cfg)
	mk := func(base int64) []Request {
		var reqs []Request
		for i := int64(0); i < 4; i++ {
			reqs = append(reqs, Request{Addr: base + i*1024, Bytes: 64})
		}
		return reqs
	}
	var doneA, doneB sim.Time
	m.DRAMAccessAsync(0, Load, mk(0), func(t sim.Time) { doneA = t })
	m.DRAMAccessAsync(0, Load, mk(1<<20), func(t sim.Time) { doneB = t })
	m.Eng.Run()
	// 8 bursts × 8 cycles = 64 total; interleaved completion: both finish
	// in the final quarter of the horizon.
	if doneA < 48 || doneB < 48 {
		t.Fatalf("completions %d/%d suggest batch-FIFO, not interleaving", doneA, doneB)
	}
}

func TestAsyncStatsMatchSync(t *testing.T) {
	reqs := []Request{{Addr: 0, Bytes: 256}, {Addr: 4096, Bytes: 16}}
	a := NewMachine(noRowCfg())
	a.DRAMAccessAsync(0, Store, reqs, func(sim.Time) {})
	a.Eng.Run()
	s := NewMachine(noRowCfg())
	s.DRAMAccess(0, Store, reqs)
	ab, sb := a.BankBytes(), s.BankBytes()
	for i := range ab {
		if ab[i] != sb[i] {
			t.Fatalf("bank %d: async %d vs sync %d bytes", i, ab[i], sb[i])
		}
	}
	if a.StoreBytes() != s.StoreBytes() {
		t.Fatal("store byte accounting differs")
	}
}

func TestRowBufferPenalty(t *testing.T) {
	cfg := noRowCfg()
	cfg.RowBytes = 2048
	cfg.RowMissCycles = 30
	m := NewMachine(cfg)
	// Two bursts in the same row: one miss then one hit.
	var done sim.Time
	m.DRAMAccessAsync(0, Load, []Request{{Addr: 0, Bytes: 16}, {Addr: 1024, Bytes: 16}},
		func(t sim.Time) { done = t })
	m.Eng.Run()
	hits, misses := m.RowHits(), m.RowMisses()
	if misses[0] != 1 {
		t.Fatalf("misses = %v, want 1 on bank 0", misses)
	}
	if hits[0] != 1 {
		t.Fatalf("hits = %v, want 1 on bank 0", hits)
	}
	// miss: 2+30 = 32 cycles, then hit: 2 cycles → done at 34.
	if done != 34 {
		t.Fatalf("done = %d, want 34", done)
	}
}

func TestRowBufferAlternatingRowsAllMiss(t *testing.T) {
	cfg := noRowCfg()
	cfg.RowBytes = 2048
	cfg.RowMissCycles = 30
	m := NewMachine(cfg)
	var done sim.Time
	// Alternate between two rows on bank 0: every access misses.
	m.DRAMAccessAsync(0, Load, []Request{
		{Addr: 0, Bytes: 16}, {Addr: 4096, Bytes: 16},
		{Addr: 16, Bytes: 16}, {Addr: 4112, Bytes: 16},
	}, func(t sim.Time) { done = t })
	m.Eng.Run()
	if m.RowMisses()[0] != 4 {
		t.Fatalf("misses = %v, want 4", m.RowMisses())
	}
	_ = done
}
