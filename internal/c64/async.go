package c64

import (
	"math"

	"codeletfft/internal/sim"
)

// burst is one ≤InterleaveBytes transfer confined to a single bank.
type burst struct {
	bank  int
	addr  int64
	bytes int64
}

// splitBursts decomposes a request batch into per-bank bursts in issue
// order, coalescing contiguous bytes that fall in the same interleave
// block (the hardware switches ports at block boundaries, so a block is
// the largest unit a single access can cover). Contiguous element loads
// therefore become block-sized bursts; strided loads stay one burst per
// element.
func (m *Machine) splitBursts(reqs []Request, dst []burst) []burst {
	il := m.Cfg.InterleaveBytes
	ports := int64(m.Cfg.DRAMPorts)
	lastEnd := int64(-1)
	for _, r := range reqs {
		if r.Bytes <= 0 {
			continue
		}
		addr, remain := r.Addr, r.Bytes
		for remain > 0 {
			block := addr / il
			bank := int(block % ports)
			chunk := (block+1)*il - addr
			if chunk > remain {
				chunk = remain
			}
			// addr continuing inside the previous burst's block merges
			// with it; a block start (addr%il == 0) is always a new
			// burst on the next port.
			if len(dst) > 0 && addr == lastEnd && addr%il != 0 {
				dst[len(dst)-1].bytes += chunk
			} else {
				dst = append(dst, burst{bank: bank, addr: addr, bytes: chunk})
			}
			lastEnd = addr + chunk
			addr += chunk
			remain -= chunk
		}
	}
	return dst
}

// access tracks one in-flight asynchronous batch.
type access struct {
	m       *Machine
	kind    Kind
	bursts  []burst
	next    int
	inFlt   int
	maxDone sim.Time
	done    func(sim.Time)
}

// DRAMAccessAsync issues the request batch starting at time at, keeping
// at most Cfg.OutstandingRequests bursts in flight, and calls done once
// with the completion time of the last burst. Because each follow-on
// burst is issued by the completion event of an earlier one, bursts from
// concurrent thread units interleave in the port queues and a congested
// port serves its competitors round-robin — unlike DRAMAccess, which
// reserves a port for a whole batch at once.
//
// done may be invoked synchronously when the batch is empty.
func (m *Machine) DRAMAccessAsync(at sim.Time, kind Kind, reqs []Request, done func(sim.Time)) {
	op := &access{m: m, kind: kind, done: done}
	op.bursts = m.splitBursts(reqs, op.bursts)
	if len(op.bursts) == 0 {
		done(at)
		return
	}
	if at > m.Eng.Now() {
		m.Eng.ScheduleAt(at, func(now sim.Time) { op.issue(now) })
	} else {
		op.issue(at)
	}
}

// issue launches bursts until the outstanding window is full.
func (op *access) issue(now sim.Time) {
	m := op.m
	for op.inFlt < m.Cfg.OutstandingRequests && op.next < len(op.bursts) {
		b := op.bursts[op.next]
		op.next++
		op.inFlt++
		service := sim.Time(math.Ceil(float64(b.bytes) / m.Cfg.DRAMPortBytesPerCycle))
		// Row-buffer model: an access outside the bank's open row pays the
		// precharge+activate occupancy. Hit or miss depends on the global
		// arrival order at the bank, which is exactly what distinguishes
		// the scheduling disciplines under study.
		if m.Cfg.RowBytes > 0 {
			row := b.addr / m.Cfg.RowBytes
			if row != m.openRow[b.bank] {
				m.openRow[b.bank] = row
				m.rowMisses[b.bank]++
				service += m.Cfg.RowMissCycles
			} else {
				m.rowHits[b.bank]++
			}
		}
		start, fin := m.dram[b.bank].Acquire(now, service)
		m.record(b.bank, start, b.bytes, op.kind)
		completion := fin + m.Cfg.DRAMLatency
		m.Eng.ScheduleAt(completion, op.burstDone)
	}
}

// burstDone retires one burst: refill the window, and finish the batch
// when everything has drained.
func (op *access) burstDone(now sim.Time) {
	op.inFlt--
	if now > op.maxDone {
		op.maxDone = now
	}
	if op.next < len(op.bursts) {
		op.issue(now)
		return
	}
	if op.inFlt == 0 {
		op.done(op.maxDone)
	}
}

// record accumulates statistics and tracing for one burst.
func (m *Machine) record(bank int, at sim.Time, bytes int64, kind Kind) {
	m.bankBytes[bank] += bytes
	m.bankAccesses[bank] += bytes / 8
	if kind == Load {
		m.loadBytes += bytes
	} else {
		m.storeBytes += bytes
	}
	if m.Tracer != nil {
		m.Tracer.RecordDRAM(bank, at, bytes, kind)
	}
}
