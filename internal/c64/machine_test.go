package c64

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codeletfft/internal/sim"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMatchesPaper(t *testing.T) {
	cfg := Default()
	if cfg.ThreadUnits != 156 {
		t.Errorf("ThreadUnits = %d, want 156 (paper reserves 4 of 160 for the OS)", cfg.ThreadUnits)
	}
	if cfg.DRAMPorts != 4 {
		t.Errorf("DRAMPorts = %d, want 4", cfg.DRAMPorts)
	}
	if got := cfg.DRAMBandwidth(); got != 16e9 {
		t.Errorf("DRAMBandwidth = %g, want 16e9 (16 GB/s)", got)
	}
	if cfg.InterleaveBytes != 64 {
		t.Errorf("InterleaveBytes = %d, want 64", cfg.InterleaveBytes)
	}
	if cfg.ClockHz != 500e6 {
		t.Errorf("ClockHz = %g, want 500e6", cfg.ClockHz)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.ThreadUnits = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.DRAMPorts = 0 },
		func(c *Config) { c.DRAMPortBytesPerCycle = 0 },
		func(c *Config) { c.DRAMLatency = -1 },
		func(c *Config) { c.InterleaveBytes = 0 },
		func(c *Config) { c.FlopsPerCycle = 0 },
		func(c *Config) { c.ScratchpadBytes = -1 },
	}
	for i, mutate := range cases {
		cfg := Default()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestBankMapping(t *testing.T) {
	m := NewMachine(Default())
	// 64-byte round-robin: addresses 0..63 → bank 0, 64..127 → bank 1, ...
	cases := []struct {
		addr int64
		want int
	}{
		{0, 0}, {63, 0}, {64, 1}, {127, 1}, {128, 2}, {192, 3}, {256, 0},
		{64 * 4 * 1000, 0}, {64*4*1000 + 65, 1},
	}
	for _, c := range cases {
		if got := m.Bank(c.addr); got != c.want {
			t.Errorf("Bank(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestStride64BytesHitsOneBank(t *testing.T) {
	// The paper's core observation: a stride of 4 complex elements
	// (64 bytes) keeps every access on the same bank.
	m := NewMachine(Default())
	for i := int64(0); i < 100; i++ {
		if got := m.Bank(i * 64 * 4); got != 0 {
			t.Fatalf("Bank(%d) = %d, want 0", i*64*4, got)
		}
	}
}

func TestSplitAcrossInterleaveBoundary(t *testing.T) {
	m := NewMachine(Default())
	got := make([]int64, 4)
	// 100 bytes starting at 32: 32 bytes in bank 0's block, 64 in bank 1,
	// 4 in bank 2.
	m.splitBanks([]Request{{Addr: 32, Bytes: 100}}, got)
	want := []int64{32, 64, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitBanks = %v, want %v", got, want)
		}
	}
}

func TestDRAMAccessSingleBankSerializes(t *testing.T) {
	cfg := Default()
	cfg.DRAMLatency = 0
	m := NewMachine(cfg)
	// Two 64-byte transfers to the same bank: 8 cycles each, FIFO.
	d1 := m.DRAMAccess(0, Load, []Request{{Addr: 0, Bytes: 64}})
	d2 := m.DRAMAccess(0, Load, []Request{{Addr: 256, Bytes: 64}})
	if d1 != 8 {
		t.Fatalf("first transfer done at %d, want 8", d1)
	}
	if d2 != 16 {
		t.Fatalf("second same-bank transfer done at %d, want 16 (queued)", d2)
	}
}

func TestDRAMAccessSpreadBanksParallel(t *testing.T) {
	cfg := Default()
	cfg.DRAMLatency = 0
	m := NewMachine(cfg)
	// 256 bytes spanning all 4 banks complete in the time of one 64-byte
	// service: the ports run concurrently.
	done := m.DRAMAccess(0, Load, []Request{{Addr: 0, Bytes: 256}})
	if done != 8 {
		t.Fatalf("spread transfer done at %d, want 8", done)
	}
}

func TestDRAMLatencyApplied(t *testing.T) {
	cfg := Default()
	cfg.DRAMLatency = 50
	m := NewMachine(cfg)
	done := m.DRAMAccess(100, Load, []Request{{Addr: 0, Bytes: 8}})
	if done != 151 {
		t.Fatalf("done = %d, want 151 (100 + 50 latency + 1 service)", done)
	}
}

func TestDRAMStatsAccounting(t *testing.T) {
	m := NewMachine(Default())
	m.DRAMAccess(0, Load, []Request{{Addr: 0, Bytes: 64}})
	m.DRAMAccess(0, Store, []Request{{Addr: 64, Bytes: 32}})
	bytes := m.BankBytes()
	if bytes[0] != 64 || bytes[1] != 32 {
		t.Fatalf("BankBytes = %v, want [64 32 0 0]", bytes)
	}
	acc := m.BankAccesses()
	if acc[0] != 8 || acc[1] != 4 {
		t.Fatalf("BankAccesses = %v, want [8 4 0 0]", acc)
	}
	if m.LoadBytes() != 64 || m.StoreBytes() != 32 {
		t.Fatalf("load/store bytes = %d/%d, want 64/32", m.LoadBytes(), m.StoreBytes())
	}
}

func TestFlopCycles(t *testing.T) {
	m := NewMachine(Default()) // 1 flop/cycle
	if got := m.FlopCycles(1920); got != 1920 {
		t.Fatalf("FlopCycles(1920) = %d, want 1920", got)
	}
	if got := m.FlopCycles(0); got != 0 {
		t.Fatalf("FlopCycles(0) = %d, want 0", got)
	}
	if m.Flops() != 1920 {
		t.Fatalf("Flops() = %d, want 1920", m.Flops())
	}
}

func TestHashCyclesGrowsWithBits(t *testing.T) {
	m := NewMachine(Default())
	small := m.HashCycles(63, 14)
	large := m.HashCycles(63, 21)
	if large <= small {
		t.Fatalf("hash cost should grow with index width: %d !> %d", large, small)
	}
	if m.HashCycles(0, 20) != 0 {
		t.Fatal("zero accesses should cost nothing")
	}
}

func TestGFLOPS(t *testing.T) {
	m := NewMachine(Default())
	// 5e9 flops in 1 second (500e6 cycles) = 5 GFLOPS.
	got := m.GFLOPS(5e9, sim.Time(500e6))
	if got < 4.999 || got > 5.001 {
		t.Fatalf("GFLOPS = %v, want 5", got)
	}
}

// Property: splitting any request batch conserves bytes and never assigns
// a byte to a bank other than the one its address maps to.
func TestSplitConservationProperty(t *testing.T) {
	m := NewMachine(Default())
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]Request, int(n)%20)
		var total int64
		for i := range reqs {
			reqs[i] = Request{Addr: int64(rng.Intn(1 << 20)), Bytes: int64(rng.Intn(4096))}
			total += reqs[i].Bytes
		}
		got := make([]int64, 4)
		m.splitBanks(reqs, got)
		var sum int64
		for _, b := range got {
			sum += b
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutTwiddleBaseAligned(t *testing.T) {
	cfg := Default()
	l := NewLayout(cfg, 1000, 500)
	round := cfg.InterleaveBytes * int64(cfg.DRAMPorts)
	if l.TwiddleBase%round != 0 {
		t.Fatalf("TwiddleBase %d not aligned to %d", l.TwiddleBase, round)
	}
	m := NewMachine(cfg)
	if m.Bank(l.TwiddleAddr(0)) != 0 {
		t.Fatal("W[0] must map to bank 0 (the paper's layout)")
	}
	// Twiddles at strides that are multiples of 16 elements (one full
	// interleave round = 256 bytes) all map to bank 0; early FFT stages
	// use such strides, which is the paper's bank-0 contention.
	for i := int64(0); i < 500; i += 16 {
		if m.Bank(l.TwiddleAddr(i)) != 0 {
			t.Fatalf("W[%d] on bank %d, want 0", i, m.Bank(l.TwiddleAddr(i)))
		}
	}
}

func TestLayoutNoOverlap(t *testing.T) {
	l := NewLayout(Default(), 1000, 500)
	if l.TwiddleBase < 1000*ElemBytes {
		t.Fatal("twiddle array overlaps data array")
	}
	if l.DataLen() != 1000 || l.TwiddleLen() != 500 {
		t.Fatal("lengths not recorded")
	}
}

func TestLayoutBoundsPanic(t *testing.T) {
	l := NewLayout(Default(), 10, 5)
	for _, fn := range []func(){
		func() { l.DataAddr(-1) },
		func() { l.DataAddr(10) },
		func() { l.TwiddleAddr(-1) },
		func() { l.TwiddleAddr(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range address did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestTwiddleStrideBankSkew(t *testing.T) {
	// End-to-end restatement of the motivating example: 63 twiddle loads
	// at stride 512 elements all serialize on bank 0, while the same bytes
	// at stride 1 spread over all four ports and finish ~4x sooner.
	cfg := Default()
	cfg.DRAMLatency = 0
	l := NewLayout(cfg, 1<<15, 1<<14)

	strided := NewMachine(cfg)
	var reqs []Request
	for i := int64(0); i < 63; i++ {
		reqs = append(reqs, Request{Addr: l.TwiddleAddr(i * 512 % (1 << 14)), Bytes: ElemBytes})
	}
	stridedDone := strided.DRAMAccess(0, Load, reqs)

	contig := NewMachine(cfg)
	reqs = reqs[:0]
	for i := int64(0); i < 63; i++ {
		reqs = append(reqs, Request{Addr: l.TwiddleAddr(i), Bytes: ElemBytes})
	}
	contigDone := contig.DRAMAccess(0, Load, reqs)

	if stridedDone < 3*contigDone {
		t.Fatalf("strided %d should be ≥3x contiguous %d", stridedDone, contigDone)
	}
	sb := strided.BankBytes()
	if sb[1] != 0 || sb[2] != 0 || sb[3] != 0 {
		t.Fatalf("strided accesses leaked off bank 0: %v", sb)
	}
}
