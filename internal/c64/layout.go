package c64

// ElemBytes is the size of one double-precision complex element, the unit
// of all FFT arrays in the paper.
const ElemBytes = 16

// Layout places the data array D and twiddle array W in the DRAM address
// space. W's base is aligned to a full interleave round
// (InterleaveBytes × DRAMPorts) so that W[0] maps to bank 0 — the paper's
// layout, under which every early-stage twiddle access (stride a multiple
// of 4 elements = 64 bytes) lands on bank 0.
type Layout struct {
	DataBase    int64
	TwiddleBase int64
	dataLen     int64
	twiddleLen  int64
}

// NewLayout lays out n data elements followed by twiddles twiddle
// elements.
func NewLayout(cfg Config, n, twiddles int) Layout {
	round := cfg.InterleaveBytes * int64(cfg.DRAMPorts)
	dataEnd := int64(n) * ElemBytes
	twBase := (dataEnd + round - 1) / round * round
	return Layout{
		DataBase:    0,
		TwiddleBase: twBase,
		dataLen:     int64(n),
		twiddleLen:  int64(twiddles),
	}
}

// DataAddr returns the byte address of data element i.
func (l Layout) DataAddr(i int64) int64 {
	if i < 0 || i >= l.dataLen {
		panic("c64: data index out of range")
	}
	return l.DataBase + i*ElemBytes
}

// TwiddleAddr returns the byte address of twiddle element i.
func (l Layout) TwiddleAddr(i int64) int64 {
	if i < 0 || i >= l.twiddleLen {
		panic("c64: twiddle index out of range")
	}
	return l.TwiddleBase + i*ElemBytes
}

// DataLen returns the number of data elements.
func (l Layout) DataLen() int64 { return l.dataLen }

// TwiddleLen returns the number of twiddle elements.
func (l Layout) TwiddleLen() int64 { return l.twiddleLen }
