// Package c64 models the memory system and compute throughput of an IBM
// Cyclops-64 (C64) node, the testbed of the reproduced paper.
//
// A C64 chip has 160 simple in-order thread units (TUs) at 500 MHz; each
// pair of TUs shares one floating-point unit issuing one fused
// multiply-add per cycle. Off-chip DRAM is reached through four ports with
// 16 GB/s aggregate bandwidth, and the hardware interleaves physical
// addresses across the four ports round-robin every 64 bytes. That
// interleaving is the root cause studied by the paper: FFT twiddle-factor
// accesses whose strides are multiples of 4 complex elements (64 bytes)
// all land on the same port and serialize there while the other three
// ports idle.
//
// The model is deliberately at the fidelity of the paper's own testbed
// (the FAST functionally-accurate simulator): request streams are
// byte-accurate, port service is FIFO at the configured bandwidth, and
// compute is charged at the FPU's throughput. Cache effects do not exist
// on C64 (software-managed scratchpad only), which keeps this level of
// modeling honest.
package c64

import (
	"errors"
	"fmt"

	"codeletfft/internal/sim"
)

// Config holds every architectural and runtime-overhead parameter of the
// machine model. All time quantities are in cycles of the 500 MHz clock.
type Config struct {
	// ThreadUnits is the number of usable thread units. The paper uses
	// 156 of the 160, reserving 4 for the OS kernel.
	ThreadUnits int

	// ClockHz converts cycles to seconds (500 MHz on C64).
	ClockHz float64

	// DRAMPorts is the number of off-chip memory ports/banks (4 on C64).
	DRAMPorts int

	// DRAMPortBytesPerCycle is the service bandwidth of one port.
	// 8 bytes/cycle × 4 ports × 500 MHz = 16 GB/s, the paper's figure.
	DRAMPortBytesPerCycle float64

	// DRAMLatency is the fixed access latency in cycles charged before a
	// request's service can begin.
	DRAMLatency sim.Time

	// InterleaveBytes is the interleaving granularity across DRAM ports:
	// bank(addr) = (addr / InterleaveBytes) mod DRAMPorts. 64 on C64.
	InterleaveBytes int64

	// RowBytes is the DRAM row (page) size per bank. Consecutive accesses
	// that stay within one row are served at full port bandwidth; a row
	// change adds RowMissCycles of port occupancy (precharge+activate).
	// Row hits and misses depend on the order requests reach the bank, so
	// unlike raw byte counts this cost is schedule-dependent: the
	// coarse-grain algorithm's synchronized large-stride twiddle storms
	// are maximally row-hostile, while the fine-grain orders mix in
	// row-friendly small-stride traffic.
	RowBytes int64

	// RowMissCycles is the extra port occupancy for a row change.
	RowMissCycles sim.Time

	// OutstandingRequests is the number of DRAM bursts one thread unit
	// may have in flight (C64 TUs are simple in-order cores; software
	// pipelining sustains a handful of outstanding loads). Bursts from
	// different TUs interleave in the port queues, so a congested port
	// serves the competing TUs round-robin — the mechanism that stretches
	// every codelet's load phase when all concurrent codelets aim at the
	// same bank.
	OutstandingRequests int

	// SRAMLatency is the access latency of on-chip SRAM through the
	// crossbar, and SRAMBytesPerCycle the aggregate on-chip bandwidth
	// (320 GB/s = 640 B/cycle at 500 MHz). On-chip memory is a single
	// crossbar-fed resource here: with 160 banks behind a 96-port
	// crossbar it is never bank-limited the way the 4 DRAM ports are.
	SRAMLatency       sim.Time
	SRAMBytesPerCycle float64

	// SRAMBytes is the capacity of the shared on-chip SRAM (≈2.5 MB on
	// C64) available for SRAM-resident transforms.
	SRAMBytes int64

	// RegistersPerTU is the number of 64-bit registers a kernel may use
	// for its working set before spilling to scratchpad — the constraint
	// that made 8-point butterflies the sweet spot for the SRAM-resident
	// FFT of Chen et al. (paper section III-B).
	RegistersPerTU int

	// SpillMoveCycles is the cost of moving one spilled 8-byte word to or
	// from scratchpad in a register-constrained on-chip kernel.
	SpillMoveCycles float64

	// ScratchpadBytes is the per-TU scratchpad capacity usable for a
	// codelet's working set (data points + twiddles). Working sets that
	// exceed it spill to DRAM (the reason 64-point codelets are the
	// paper's sweet spot and 128-point ones regress in Fig. 7).
	ScratchpadBytes int64

	// FlopsPerCycle is the effective floating-point throughput of one TU.
	// Each TU pair shares an FPU doing 1 FMA (2 flops)/cycle, so a fully
	// loaded TU sustains 1 flop/cycle.
	FlopsPerCycle float64

	// KernelOverhead is a fixed per-codelet cost in cycles, and
	// KernelOverheadPerPoint a per-element cost, for loop and address
	// arithmetic around the butterfly computation.
	KernelOverhead         sim.Time
	KernelOverheadPerPoint float64

	// PoolAccess is the cost in cycles of one push or pop on the shared
	// codelet pool, charged while holding the pool lock (pool operations
	// from different TUs serialize, which is how fine-grain scheduling
	// overhead manifests on C64).
	PoolAccess sim.Time

	// CounterUpdate is the cost in cycles of one atomic dependence-counter
	// update in SRAM.
	CounterUpdate sim.Time

	// BarrierLatency is the cost in cycles of the hardware barrier once
	// every TU has arrived (the dominant barrier cost — waiting for
	// stragglers — emerges from the simulation itself).
	BarrierLatency sim.Time

	// HashBase and HashPerBit model the software bit-reversal hash applied
	// to twiddle addresses in the "hash" variants: each hashed access
	// costs HashBase + HashPerBit×(index width in bits) extra TU cycles.
	// The paper attributes the hash variants' slowdown at large inputs to
	// this per-bit cost.
	HashBase   float64
	HashPerBit float64
}

// Default returns the configuration of a C64 node as published: 156 usable
// TUs at 500 MHz, 4 DRAM ports at 16 GB/s aggregate, 64-byte interleaving.
func Default() Config {
	return Config{
		ThreadUnits:           156,
		ClockHz:               500e6,
		DRAMPorts:             4,
		DRAMPortBytesPerCycle: 8,
		DRAMLatency:           56,
		InterleaveBytes:       64,
		RowBytes:              0, // row-buffer modeling off by default; see ablations
		RowMissCycles:         20,
		OutstandingRequests:   4,
		SRAMLatency:           31,
		SRAMBytesPerCycle:     640,
		SRAMBytes:             2516582, // ≈2.4 MiB usable of the 2.5 MB SRAM half

		RegistersPerTU:         40, // of 64; the rest hold addresses/temporaries
		SpillMoveCycles:        8,
		ScratchpadBytes:        3072,
		FlopsPerCycle:          1,
		KernelOverhead:         72,
		KernelOverheadPerPoint: 2, // 72 + 2·64 = 200 cycles for a 64-point codelet
		PoolAccess:             4,
		CounterUpdate:          6,
		BarrierLatency:         128,
		HashBase:               14,
		HashPerBit:             3,
	}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.ThreadUnits <= 0:
		return errors.New("c64: ThreadUnits must be positive")
	case c.ClockHz <= 0:
		return errors.New("c64: ClockHz must be positive")
	case c.DRAMPorts <= 0:
		return errors.New("c64: DRAMPorts must be positive")
	case c.DRAMPortBytesPerCycle <= 0:
		return errors.New("c64: DRAMPortBytesPerCycle must be positive")
	case c.DRAMLatency < 0:
		return errors.New("c64: DRAMLatency must be nonnegative")
	case c.InterleaveBytes <= 0:
		return errors.New("c64: InterleaveBytes must be positive")
	case c.OutstandingRequests <= 0:
		return errors.New("c64: OutstandingRequests must be positive")
	case c.RowBytes < 0 || c.RowMissCycles < 0:
		return errors.New("c64: row-buffer parameters must be nonnegative")
	case c.SRAMLatency < 0 || c.SRAMBytesPerCycle < 0:
		return errors.New("c64: SRAM parameters must be nonnegative")
	case c.FlopsPerCycle <= 0:
		return errors.New("c64: FlopsPerCycle must be positive")
	case c.ScratchpadBytes < 0:
		return errors.New("c64: ScratchpadBytes must be nonnegative")
	}
	return nil
}

// DRAMBandwidth returns the aggregate off-chip bandwidth in bytes/second.
func (c Config) DRAMBandwidth() float64 {
	return float64(c.DRAMPorts) * c.DRAMPortBytesPerCycle * c.ClockHz
}

// Seconds converts a cycle count to wall-clock seconds at the model clock.
func (c Config) Seconds(cycles sim.Time) float64 {
	return float64(cycles) / c.ClockHz
}

// String summarizes the key architectural parameters.
func (c Config) String() string {
	return fmt.Sprintf("c64{%d TUs @%.0f MHz, %d ports ×%.0f B/cy, %d B interleave, lat %d}",
		c.ThreadUnits, c.ClockHz/1e6, c.DRAMPorts, c.DRAMPortBytesPerCycle,
		c.InterleaveBytes, c.DRAMLatency)
}
