package c64

import (
	"math"

	"codeletfft/internal/sim"
)

// SRAMAccess models an on-chip memory access batch: fixed crossbar
// latency plus service on the shared on-chip bandwidth. The on-chip
// memory has 160 interleaved banks behind a 96-port crossbar, so unlike
// the 4 DRAM ports it behaves as one deep, high-bandwidth resource: bank
// imbalance is not a first-order effect there, which is why the paper's
// on-chip predecessor study (Chen et al.) focused on register pressure
// rather than bank balance.
//
// Returns the completion time; the whole batch is charged as one
// transfer on the shared on-chip timeline.
func (m *Machine) SRAMAccess(now sim.Time, kind Kind, bytes int64) sim.Time {
	if bytes <= 0 {
		return now
	}
	if m.Cfg.SRAMBytesPerCycle <= 0 {
		// Unconstrained bandwidth: latency only.
		m.recordSRAM(kind, bytes)
		return now + m.Cfg.SRAMLatency
	}
	service := sim.Time(math.Ceil(float64(bytes) / m.Cfg.SRAMBytesPerCycle))
	_, done := m.sram.Acquire(now+m.Cfg.SRAMLatency, service)
	m.recordSRAM(kind, bytes)
	return done
}

func (m *Machine) recordSRAM(kind Kind, bytes int64) {
	if kind == Load {
		m.sramLoadBytes += bytes
	} else {
		m.sramStoreBytes += bytes
	}
}

// SRAMLoadBytes returns cumulative on-chip bytes loaded.
func (m *Machine) SRAMLoadBytes() int64 { return m.sramLoadBytes }

// SRAMStoreBytes returns cumulative on-chip bytes stored.
func (m *Machine) SRAMStoreBytes() int64 { return m.sramStoreBytes }

// SRAMBusy returns the cycles the on-chip memory spent serving requests.
func (m *Machine) SRAMBusy() sim.Time { return m.sram.Busy() }

// RegisterSpillCycles models the register-pressure cost of a P-point
// on-chip kernel: a working set of 2P+(P−1) 64-bit words (P complex
// points in registers plus P−1 twiddles, each a register pair... the
// dominant term is the 3P complex values) beyond RegistersPerTU spills
// to scratchpad at SpillMoveCycles per word moved, twice (out and back).
func (m *Machine) RegisterSpillCycles(taskPoints, twiddles int) sim.Time {
	words := 2*taskPoints + 2*twiddles // complex128 = 2 registers each
	over := words - m.Cfg.RegistersPerTU
	if over <= 0 {
		return 0
	}
	return sim.Time(math.Ceil(2 * m.Cfg.SpillMoveCycles * float64(over)))
}
