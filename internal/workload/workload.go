// Package workload generates deterministic input signals for examples,
// tests and benchmarks: impulses, tones, chirps, and noisy mixtures that
// exercise the FFT on recognizable spectra.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Impulse returns a unit impulse at position pos.
func Impulse(n, pos int) []complex128 {
	if pos < 0 || pos >= n {
		panic(fmt.Sprintf("workload: impulse position %d out of [0,%d)", pos, n))
	}
	x := make([]complex128, n)
	x[pos] = 1
	return x
}

// Constant returns a constant signal of amplitude amp.
func Constant(n int, amp float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(amp, 0)
	}
	return x
}

// Gaussian returns seeded complex white noise with the given standard
// deviation per component.
func Gaussian(n int, sigma float64, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return x
}

// Tone describes one complex exponential component.
type Tone struct {
	Bin       int     // frequency bin (cycles per record)
	Amplitude float64 // linear amplitude
	Phase     float64 // radians
}

// Mix synthesizes a sum of tones plus optional Gaussian noise.
func Mix(n int, tones []Tone, noiseSigma float64, seed int64) []complex128 {
	var x []complex128
	if noiseSigma > 0 {
		x = Gaussian(n, noiseSigma, seed)
	} else {
		x = make([]complex128, n)
	}
	for _, t := range tones {
		for i := 0; i < n; i++ {
			ang := 2*math.Pi*float64(t.Bin)*float64(i)/float64(n) + t.Phase
			x[i] += complex(t.Amplitude*math.Cos(ang), t.Amplitude*math.Sin(ang))
		}
	}
	return x
}

// Chirp returns a linear frequency sweep whose instantaneous frequency
// moves from bin f0 to bin f1 across the record: the discrete phase is
// φ[i] = 2π/n · (f0·i + (f1−f0)·i²/(2n)).
func Chirp(n int, f0, f1 float64) []complex128 {
	x := make([]complex128, n)
	fn := float64(n)
	for i := 0; i < n; i++ {
		t := float64(i)
		phase := 2 * math.Pi / fn * (f0*t + (f1-f0)*t*t/(2*fn))
		x[i] = complex(math.Cos(phase), math.Sin(phase))
	}
	return x
}

// PowerSpectrum returns |X[k]|² for a spectrum X.
func PowerSpectrum(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return out
}

// TopBins returns the k bin indices with the largest power, descending.
func TopBins(power []float64, k int) []int {
	type bin struct {
		idx int
		p   float64
	}
	bins := make([]bin, len(power))
	for i, p := range power {
		bins[i] = bin{i, p}
	}
	for i := 0; i < k && i < len(bins); i++ {
		maxJ := i
		for j := i + 1; j < len(bins); j++ {
			if bins[j].p > bins[maxJ].p {
				maxJ = j
			}
		}
		bins[i], bins[maxJ] = bins[maxJ], bins[i]
	}
	if k > len(bins) {
		k = len(bins)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = bins[i].idx
	}
	return out
}
