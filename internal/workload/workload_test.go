package workload

import (
	"math"
	"math/cmplx"
	"testing"

	"codeletfft/internal/fft"
)

func TestImpulse(t *testing.T) {
	x := Impulse(8, 3)
	for i, v := range x {
		want := complex128(0)
		if i == 3 {
			want = 1
		}
		if v != want {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range impulse accepted")
		}
	}()
	Impulse(8, 8)
}

func TestConstant(t *testing.T) {
	for _, v := range Constant(16, 2.5) {
		if v != 2.5 {
			t.Fatalf("constant = %v", v)
		}
	}
}

func TestGaussianDeterministicAndScaled(t *testing.T) {
	a := Gaussian(1000, 1, 7)
	b := Gaussian(1000, 1, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different noise")
		}
	}
	var sum float64
	for _, v := range a {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	rms := math.Sqrt(sum / float64(2*len(a)))
	if rms < 0.9 || rms > 1.1 {
		t.Fatalf("rms = %v, want ≈1", rms)
	}
}

func TestMixSpectrumPeaks(t *testing.T) {
	n := 1 << 10
	tones := []Tone{{Bin: 37, Amplitude: 4}, {Bin: 200, Amplitude: 2}}
	x := Mix(n, tones, 0.01, 3)
	spec := fft.Recursive(x)
	top := TopBins(PowerSpectrum(spec), 2)
	found := map[int]bool{top[0]: true, top[1]: true}
	if !found[37] || !found[200] {
		t.Fatalf("dominant bins %v, want {37, 200}", top)
	}
}

func TestChirpEndpointsAndModulus(t *testing.T) {
	n := 512
	x := Chirp(n, 10, 100)
	for i, v := range x {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("chirp off unit circle at %d", i)
		}
	}
	// Energy should be spread over roughly the swept band, not one bin.
	spec := PowerSpectrum(fft.Recursive(x))
	var inBand, total float64
	for k, p := range spec {
		total += p
		if k >= 5 && k <= 110 {
			inBand += p
		}
	}
	if inBand/total < 0.9 {
		t.Fatalf("only %.2f of chirp energy in swept band", inBand/total)
	}
}

func TestTopBins(t *testing.T) {
	p := []float64{1, 5, 3, 9, 2}
	top := TopBins(p, 3)
	want := []int{3, 1, 2}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopBins = %v, want %v", top, want)
		}
	}
	if len(TopBins(p, 10)) != 5 {
		t.Fatal("k beyond length should clamp")
	}
}
