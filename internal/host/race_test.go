//go:build race

package host_test

// raceEnabled skips allocation-count guards under the race detector,
// whose instrumentation allocates on its own.
const raceEnabled = true
