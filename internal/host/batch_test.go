package host_test

import (
	"errors"
	"math"
	"math/rand"
	"runtime/debug"
	"sync"
	"testing"

	"codeletfft/internal/fft"
	"codeletfft/internal/host"
)

func batchNoise(b, n int, seed int64) [][]complex128 {
	rng := rand.New(rand.NewSource(seed))
	batch := make([][]complex128, b)
	for t := range batch {
		d := make([]complex128, n)
		for i := range d {
			d[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		batch[t] = d
	}
	return batch
}

func cloneBatch(batch [][]complex128) [][]complex128 {
	out := make([][]complex128, len(batch))
	for t, d := range batch {
		out[t] = append([]complex128(nil), d...)
	}
	return out
}

func batchesEqualBits(a, b [][]complex128) bool {
	for t := range a {
		for i := range a[t] {
			if math.Float64bits(real(a[t][i])) != math.Float64bits(real(b[t][i])) ||
				math.Float64bits(imag(a[t][i])) != math.Float64bits(imag(b[t][i])) {
				return false
			}
		}
	}
	return true
}

// TestTransformBatchMatchesSerial pins the batched engine's contract:
// bitwise identical to a serial loop of pl.Transform, across regular
// and irregular plan shapes, batch sizes above and below the worker
// count, and both the parallel and serial-fallback paths.
func TestTransformBatchMatchesSerial(t *testing.T) {
	cases := []struct {
		n, p, b, workers, threshold int
	}{
		{64, 8, 16, 4, 1},      // parallel, B >> workers
		{128, 8, 3, 8, 1},      // irregular final stage, B < workers
		{256, 64, 1, 4, 1},     // single-element batch
		{64, 2, 5, 4, 1 << 20}, // forced serial fallback
		{1024, 64, 9, 2, 1},    // B not a multiple of workers
	}
	for _, tc := range cases {
		pl, err := fft.NewPlan(tc.n, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		w := fft.Twiddles(tc.n)
		eng := host.New(host.Config{Workers: tc.workers, Threshold: tc.threshold})

		batch := batchNoise(tc.b, tc.n, int64(tc.n+tc.b))
		want := cloneBatch(batch)
		for _, d := range want {
			pl.Transform(d, w)
		}
		eng.TransformBatch(pl, batch, w)
		if !batchesEqualBits(batch, want) {
			t.Fatalf("N=%d P=%d B=%d workers=%d: batch diverged from serial loop",
				tc.n, tc.p, tc.b, tc.workers)
		}

		for _, d := range want {
			pl.InverseTransform(d, w)
		}
		eng.InverseBatch(pl, batch, w)
		if !batchesEqualBits(batch, want) {
			t.Fatalf("N=%d P=%d B=%d workers=%d: inverse batch diverged",
				tc.n, tc.p, tc.b, tc.workers)
		}
	}
}

func TestTransformBatchEmpty(t *testing.T) {
	pl, _ := fft.NewPlan(64, 8)
	eng := host.New(host.Config{Workers: 4, Threshold: 1})
	eng.TransformBatch(pl, nil, fft.Twiddles(64))
	eng.InverseBatch(pl, [][]complex128{}, fft.Twiddles(64))
}

// TestBatchConcurrentCalls exercises the shared persistent pool from
// several goroutines at once — the race-detector gate for the batch
// scheduler's channel/WaitGroup protocol.
func TestBatchConcurrentCalls(t *testing.T) {
	const n, b = 256, 6
	pl, err := fft.NewPlan(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	eng := host.New(host.Config{Workers: 3, Threshold: 1})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := batchNoise(b, n, int64(g))
			want := cloneBatch(batch)
			for _, d := range want {
				pl.Transform(d, w)
			}
			for rep := 0; rep < 5; rep++ {
				work := cloneBatch(batch)
				eng.TransformBatch(pl, work, w)
				if !batchesEqualBits(work, want) {
					t.Errorf("goroutine %d rep %d: batch output diverged", g, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBatchZeroAllocs is the acceptance guard: after warm-up, the
// batched hot path performs zero allocations per call. GC is disabled
// around the measurement so a collection cannot empty the sync.Pools
// mid-run.
func TestBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const n, b = 4096, 16
	pl, err := fft.NewPlan(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	eng := host.New(host.Config{Workers: 4, Threshold: 1})
	batch := batchNoise(b, n, 1)

	// Warm-up: start the pool, size every worker's scratch, fault in
	// the job object.
	for i := 0; i < 3; i++ {
		eng.TransformBatch(pl, batch, w)
		eng.InverseBatch(pl, batch, w)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(10, func() {
		eng.TransformBatch(pl, batch, w)
	}); allocs != 0 {
		t.Fatalf("TransformBatch allocates %v objects per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		eng.InverseBatch(pl, batch, w)
	}); allocs != 0 {
		t.Fatalf("InverseBatch allocates %v objects per call in steady state, want 0", allocs)
	}
	// The serial fallback must be allocation-free too.
	serial := host.New(host.Config{Workers: 1})
	serial.TransformBatch(pl, batch, w)
	if allocs := testing.AllocsPerRun(10, func() {
		serial.TransformBatch(pl, batch, w)
	}); allocs != 0 {
		t.Fatalf("serial TransformBatch allocates %v objects per call, want 0", allocs)
	}
}

func TestBatchPanicsWrapErrLengthMismatch(t *testing.T) {
	pl, _ := fft.NewPlan(64, 8)
	w := fft.Twiddles(64)
	eng := host.New(host.Config{Workers: 2, Threshold: 1})
	defer func() {
		v := recover()
		e, ok := v.(error)
		if !ok || !errors.Is(e, fft.ErrLengthMismatch) {
			t.Fatalf("panic value %v, want error wrapping ErrLengthMismatch", v)
		}
	}()
	eng.TransformBatch(pl, [][]complex128{make([]complex128, 64), make([]complex128, 63)}, w)
}

// TestEngineRealMatchesPlan pins Engine.RealTransform to the serial
// RealPlan path bitwise (the half transform is the deterministic
// parallel engine) and checks the engine-side round trip.
func TestEngineRealMatchesPlan(t *testing.T) {
	const n = 1 << 14
	rp, err := fft.NewRealPlan(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	eng := host.New(host.Config{Workers: 4, Threshold: 1})

	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]complex128, rp.SpectrumLen())
	rp.Transform(want, x)
	got := make([]complex128, rp.SpectrumLen())
	eng.RealTransform(rp, got, x)
	for i := range got {
		if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
			math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
			t.Fatalf("engine RFFT diverged from serial at bin %d", i)
		}
	}

	back := make([]float64, n)
	eng.RealInverse(rp, back, got)
	for i := range back {
		if math.Abs(back[i]-x[i]) > 1e-10 {
			t.Fatalf("engine real round trip diverged at %d: %g vs %g", i, back[i], x[i])
		}
	}
}
