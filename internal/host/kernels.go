// Kernel-parameterized engine entry points. Every method here mirrors
// its radix-2 counterpart exactly — same sharding, same barriers, same
// serial-fallback rule — with fft.RunTaskKernel in place of fft.RunTask,
// so the engine's determinism guarantee holds per kernel: for a fixed
// kernel, serial, parallel and batched execution are bitwise identical.
// KernelRadix2 (and KernelAuto, which resolves to it at this layer)
// routes through the legacy methods untouched, keeping PR 1's bitwise
// contract with existing callers.
package host

import (
	"codeletfft/internal/fft"
)

// Stage pass labels for the higher-radix kernels. The radix-2 stage pass
// keeps the original PassStage label so dashboards built on PR 3's
// metrics keep working; the new kernels get their own labels so mixed
// workloads can be told apart.
const (
	PassStageRadix4     = "stage_radix4"     // radix-4 butterfly stage
	PassStageSplitRadix = "stage_splitradix" // split-radix butterfly stage
	PassStageSoA2       = "stage_soa2"       // SoA radix-2 level sweeps of one stage
	PassStageSoA4       = "stage_soa4"       // SoA fused radix-4 level sweeps of one stage
)

// StagePassLabel returns the Observer label for a butterfly stage pass
// run with kern. Exposed so metric exporters can pre-register every
// label an engine may emit.
func StagePassLabel(kern fft.Kernel) string {
	switch kern.Concrete() {
	case fft.KernelRadix4:
		return PassStageRadix4
	case fft.KernelSplitRadix:
		return PassStageSplitRadix
	case fft.KernelSoARadix2:
		return PassStageSoA2
	case fft.KernelSoARadix4:
		return PassStageSoA4
	}
	return PassStage
}

// TransformKernel is Transform with a selectable butterfly kernel.
// KernelAuto and KernelRadix2 are bit-for-bit Transform.
func (e *Engine) TransformKernel(pl *fft.Plan, data, w []complex128, kern fft.Kernel) {
	kern = kern.Concrete()
	if kern == fft.KernelRadix2 {
		e.Transform(pl, data, w)
		return
	}
	if len(data) != pl.N {
		panic(fft.LengthError("data", len(data), pl.N))
	}
	if pl.N < e.threshold || e.workers <= 1 {
		pl.TransformKernel(data, w, kern)
		return
	}
	if kern.SoA() {
		e.transformSoA(pl, data, w, kern)
		return
	}
	t0 := e.passStart()
	e.bitReverse(data, pl.LogN)
	e.passDone(PassBitRev, t0)
	label := StagePassLabel(kern)
	scratch := make([]*fft.Scratch, e.workers)
	for stage := 0; stage < pl.NumStages; stage++ {
		ts := e.passStart()
		e.parallelFor(pl.TasksPerStage, func(wk, lo, hi int) {
			sc := scratch[wk]
			if sc == nil {
				sc = fft.NewScratch(pl)
				scratch[wk] = sc
			}
			for task := lo; task < hi; task++ {
				pl.RunTaskKernel(stage, task, data, w, kern, sc)
			}
		})
		e.passDone(label, ts)
	}
}

// transformSoA is the engine's parallel path for the split-plane
// kernels: shard the fused pack+bitrev, run every stage's passes with
// parallelFor over their units (a barrier after each pass, exactly the
// ordering TransformSoA uses serially), shard the unpack. Units of one
// pass touch disjoint plane elements and their results are independent
// of the partition, so output is bitwise identical to the serial path.
func (e *Engine) transformSoA(pl *fft.Plan, data, w []complex128, kern fft.Kernel) {
	st := pl.SoATwiddles(w)
	f := fft.GetSoAFrame(pl.N)
	t0 := e.passStart()
	e.parallelFor(pl.N, func(_, lo, hi int) {
		f.PackBitrev(data, lo, hi, pl.LogN)
	})
	e.passDone(PassSoAPack, t0)
	label := StagePassLabel(kern)
	for stage := 0; stage < pl.NumStages; stage++ {
		ts := e.passStart()
		for pass, np := 0, pl.SoAPasses(stage, kern); pass < np; pass++ {
			e.parallelFor(pl.SoAPassUnits(stage, pass, kern), func(_, lo, hi int) {
				pl.SoARunPass(stage, pass, lo, hi, f, st, kern)
			})
		}
		e.passDone(label, ts)
	}
	t1 := e.passStart()
	e.parallelFor(pl.N, func(_, lo, hi int) {
		f.Unpack(data, lo, hi)
	})
	e.passDone(PassSoAUnpack, t1)
	f.Release()
}

// InverseTransformKernel is InverseTransform with a selectable kernel.
func (e *Engine) InverseTransformKernel(pl *fft.Plan, data, w []complex128, kern fft.Kernel) {
	kern = kern.Concrete()
	if kern == fft.KernelRadix2 {
		e.InverseTransform(pl, data, w)
		return
	}
	if len(data) != pl.N {
		panic(fft.LengthError("data", len(data), pl.N))
	}
	if pl.N < e.threshold || e.workers <= 1 {
		pl.InverseTransformKernel(data, w, kern)
		return
	}
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v), -imag(v))
		}
	})
	e.TransformKernel(pl, data, w, kern)
	inv := 1 / float64(pl.N)
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v)*inv, -imag(v)*inv)
		}
	})
}

// Transform2DKernel is Transform2D with a selectable kernel applied to
// both the row and column passes.
func (e *Engine) Transform2DKernel(p *fft.Plan2D, data []complex128, kern fft.Kernel) {
	kern = kern.Concrete()
	if kern == fft.KernelRadix2 {
		e.Transform2D(p, data)
		return
	}
	if len(data) != p.Rows*p.Cols {
		panic(fft.LengthError("2-D data", len(data), p.Rows*p.Cols))
	}
	if p.Rows*p.Cols < e.threshold || e.workers <= 1 {
		p.TransformKernel(data, kern)
		return
	}
	t0 := e.passStart()
	e.parallelFor(p.Rows, func(_, lo, hi int) {
		sc := fft.NewScratch(p.RowPlan)
		for r := lo; r < hi; r++ {
			p.RowPlan.TransformKernelWith(data[r*p.Cols:(r+1)*p.Cols], p.WRow, kern, sc)
		}
	})
	e.passDone(PassRows, t0)
	t1 := e.passStart()
	e.parallelFor(p.Cols, func(_, lo, hi int) {
		sc := fft.NewScratch(p.ColPlan)
		col := make([]complex128, p.Rows)
		for c := lo; c < hi; c++ {
			for r := 0; r < p.Rows; r++ {
				col[r] = data[r*p.Cols+c]
			}
			p.ColPlan.TransformKernelWith(col, p.WCol, kern, sc)
			for r := 0; r < p.Rows; r++ {
				data[r*p.Cols+c] = col[r]
			}
		}
	})
	e.passDone(PassCols, t1)
}

// InverseTransform2DKernel is InverseTransform2D with a selectable
// kernel.
func (e *Engine) InverseTransform2DKernel(p *fft.Plan2D, data []complex128, kern fft.Kernel) {
	kern = kern.Concrete()
	if kern == fft.KernelRadix2 {
		e.InverseTransform2D(p, data)
		return
	}
	if len(data) != p.Rows*p.Cols {
		panic(fft.LengthError("2-D data", len(data), p.Rows*p.Cols))
	}
	if p.Rows*p.Cols < e.threshold || e.workers <= 1 {
		p.InverseTransformKernel(data, kern)
		return
	}
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v), -imag(v))
		}
	})
	e.Transform2DKernel(p, data, kern)
	inv := 1 / float64(p.Rows*p.Cols)
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v)*inv, -imag(v)*inv)
		}
	})
}

// RealTransformKernel is RealTransform with a selectable kernel for the
// packed half transform.
func (e *Engine) RealTransformKernel(rp *fft.RealPlan, dst []complex128, src []float64, kern fft.Kernel) {
	rp.Pack(dst, src)
	e.TransformKernel(rp.Half, dst[:rp.N/2], rp.WHalf, kern)
	rp.Unpack(dst)
}

// RealInverseKernel is RealInverse with a selectable kernel for the
// inverse half transform.
func (e *Engine) RealInverseKernel(rp *fft.RealPlan, dst []float64, src []complex128, kern fft.Kernel) {
	work := make([]complex128, rp.N/2)
	rp.PreInverse(work, src)
	e.InverseTransformKernel(rp.Half, work, rp.WHalf, kern)
	rp.PostInverse(dst, work)
}
