// Parallel execution of the arbitrary-N plans: the mixed-radix Stockham
// stages shard across workers exactly like the staged power-of-two
// stages (each butterfly unit reads and writes disjoint elements with
// self-contained arithmetic, so any sharding is bitwise identical to
// the serial pass), and the Bluestein path runs its chirp sweeps with
// parallelFor and its embedded power-of-two convolution through the
// kernel-selected engine entry points — inheriting their determinism
// guarantee wholesale.
package host

import (
	"time"

	"codeletfft/internal/fft"
)

// MixedTransform applies the mixed-radix forward DFT in place, sharding
// each Stockham stage across the worker pool with a barrier between
// stages. Transforms smaller than the threshold run serially. Output is
// bitwise identical to mp.Transform regardless of worker count.
func (e *Engine) MixedTransform(mp *fft.MixedPlan, data []complex128) {
	if len(data) != mp.N {
		panic(fft.LengthError("data", len(data), mp.N))
	}
	if mp.N < e.threshold || e.workers <= 1 {
		mp.Transform(data)
		return
	}
	e.mixedStages(mp, data, make([]complex128, mp.N))
}

// mixedStages runs the stage passes over the data/work ping-pong pair,
// leaving the result in data — the parallel twin of
// MixedPlan.TransformWith.
func (e *Engine) mixedStages(mp *fft.MixedPlan, data, work []complex128) {
	src, dst := data, work
	for i := range mp.Stages {
		st := &mp.Stages[i]
		ts := e.passStart()
		e.parallelFor(st.Units(), func(_, lo, hi int) { st.Pass(src, dst, lo, hi) })
		e.passDone(PassStageMixed, ts)
		src, dst = dst, src
	}
	if len(mp.Stages)%2 == 1 {
		copy(data, work)
	}
}

// MixedInverse applies the mixed-radix inverse DFT in place via the
// conjugation identity, with the conjugate and scale sweeps also
// sharded. Output is bitwise identical to mp.InverseTransform.
func (e *Engine) MixedInverse(mp *fft.MixedPlan, data []complex128) {
	if len(data) != mp.N {
		panic(fft.LengthError("data", len(data), mp.N))
	}
	if mp.N < e.threshold || e.workers <= 1 {
		mp.InverseTransform(data)
		return
	}
	t0 := e.passStart()
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v), -imag(v))
		}
	})
	e.passDone(PassConj, t0)
	e.mixedStages(mp, data, make([]complex128, mp.N))
	inv := 1 / float64(mp.N)
	t1 := e.passStart()
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v)*inv, -imag(v)*inv)
		}
	})
	e.passDone(PassScale, t1)
}

// MixedTransformBatch applies the mixed-radix forward DFT in place to
// every row of batch, sharding rows across workers (each worker runs
// whole serial transforms with a private ping-pong buffer). Output is
// bitwise identical to calling mp.Transform on each row in order.
func (e *Engine) MixedTransformBatch(mp *fft.MixedPlan, batch [][]complex128) {
	e.mixedBatch(mp, batch, (*fft.MixedPlan).TransformWith)
}

// MixedInverseBatch is MixedTransformBatch for the inverse DFT.
func (e *Engine) MixedInverseBatch(mp *fft.MixedPlan, batch [][]complex128) {
	e.mixedBatch(mp, batch, (*fft.MixedPlan).InverseTransformWith)
}

func (e *Engine) mixedBatch(mp *fft.MixedPlan, batch [][]complex128, run func(*fft.MixedPlan, []complex128, []complex128)) {
	for i, row := range batch {
		if len(row) != mp.N {
			panic(fft.BatchLengthError(i, len(row), mp.N))
		}
	}
	if len(batch) == 0 {
		return
	}
	start := time.Time{}
	if e.obs != nil {
		start = time.Now()
	}
	if len(batch)*mp.N < e.threshold || e.workers <= 1 {
		work := make([]complex128, mp.N)
		for _, row := range batch {
			run(mp, row, work)
		}
	} else {
		e.parallelFor(len(batch), func(_, lo, hi int) {
			work := make([]complex128, mp.N)
			for i := lo; i < hi; i++ {
				run(mp, batch[i], work)
			}
		})
	}
	if e.obs != nil {
		e.obs.ObserveBatch(len(batch), mp.N, time.Since(start))
	}
}

// BluesteinTransform applies the chirp-z forward DFT in place: chirp
// sweeps via parallelFor, the embedded M-point convolution through the
// engine's kernel-selected power-of-two path. Because every sweep is
// elementwise and the convolution inherits the engine's determinism
// guarantee, output for a fixed kernel is bitwise identical across
// worker counts.
func (e *Engine) BluesteinTransform(bp *fft.BluesteinPlan, data []complex128, kern fft.Kernel) {
	if len(data) != bp.N {
		panic(fft.LengthError("data", len(data), bp.N))
	}
	e.bluestein(bp, data, make([]complex128, bp.M), kern)
}

func (e *Engine) bluestein(bp *fft.BluesteinPlan, data, work []complex128, kern fft.Kernel) {
	n := bp.N
	serial := bp.M < e.threshold || e.workers <= 1
	t0 := e.passStart()
	if serial {
		for t := 0; t < n; t++ {
			work[t] = data[t] * bp.Chirp[t]
		}
		for t := n; t < bp.M; t++ {
			work[t] = 0
		}
	} else {
		e.parallelFor(bp.M, func(_, lo, hi int) {
			for t := lo; t < hi; t++ {
				if t < n {
					work[t] = data[t] * bp.Chirp[t]
				} else {
					work[t] = 0
				}
			}
		})
	}
	e.passDone(PassChirp, t0)
	e.TransformKernel(bp.Conv, work, bp.WConv, kern)
	if serial {
		for i := range work {
			work[i] *= bp.BHat[i]
		}
	} else {
		e.parallelFor(bp.M, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				work[i] *= bp.BHat[i]
			}
		})
	}
	e.InverseTransformKernel(bp.Conv, work, bp.WConv, kern)
	t1 := e.passStart()
	if serial {
		for k := 0; k < n; k++ {
			data[k] = work[k] * bp.Chirp[k]
		}
	} else {
		e.parallelFor(n, func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				data[k] = work[k] * bp.Chirp[k]
			}
		})
	}
	e.passDone(PassChirp, t1)
}

// BluesteinInverse applies the chirp-z inverse DFT in place via the
// conjugation identity.
func (e *Engine) BluesteinInverse(bp *fft.BluesteinPlan, data []complex128, kern fft.Kernel) {
	if len(data) != bp.N {
		panic(fft.LengthError("data", len(data), bp.N))
	}
	serial := bp.M < e.threshold || e.workers <= 1
	conj := func() {
		if serial {
			for i, v := range data {
				data[i] = complex(real(v), -imag(v))
			}
			return
		}
		e.parallelFor(len(data), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := data[i]
				data[i] = complex(real(v), -imag(v))
			}
		})
	}
	t0 := e.passStart()
	conj()
	e.passDone(PassConj, t0)
	e.bluestein(bp, data, make([]complex128, bp.M), kern)
	inv := 1 / float64(bp.N)
	t1 := e.passStart()
	if serial {
		for i, v := range data {
			data[i] = complex(real(v)*inv, -imag(v)*inv)
		}
	} else {
		e.parallelFor(len(data), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := data[i]
				data[i] = complex(real(v)*inv, -imag(v)*inv)
			}
		})
	}
	e.passDone(PassScale, t1)
}

// BluesteinTransformBatch applies the chirp-z forward DFT in place to
// every row of batch, reusing one convolution buffer across rows; the
// convolution parallelism lives inside each row's engine dispatch.
// Output is bitwise identical to calling BluesteinTransform per row.
func (e *Engine) BluesteinTransformBatch(bp *fft.BluesteinPlan, batch [][]complex128, kern fft.Kernel) {
	e.bluesteinBatch(bp, batch, kern, e.bluestein)
}

// BluesteinInverseBatch is BluesteinTransformBatch for the inverse DFT.
func (e *Engine) BluesteinInverseBatch(bp *fft.BluesteinPlan, batch [][]complex128, kern fft.Kernel) {
	e.bluesteinBatch(bp, batch, kern, func(bp *fft.BluesteinPlan, data, work []complex128, kern fft.Kernel) {
		serial := bp.M < e.threshold || e.workers <= 1
		if serial {
			for i, v := range data {
				data[i] = complex(real(v), -imag(v))
			}
		} else {
			e.parallelFor(len(data), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := data[i]
					data[i] = complex(real(v), -imag(v))
				}
			})
		}
		e.bluestein(bp, data, work, kern)
		inv := 1 / float64(bp.N)
		if serial {
			for i, v := range data {
				data[i] = complex(real(v)*inv, -imag(v)*inv)
			}
		} else {
			e.parallelFor(len(data), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := data[i]
					data[i] = complex(real(v)*inv, -imag(v)*inv)
				}
			})
		}
	})
}

func (e *Engine) bluesteinBatch(bp *fft.BluesteinPlan, batch [][]complex128, kern fft.Kernel,
	run func(*fft.BluesteinPlan, []complex128, []complex128, fft.Kernel)) {
	for i, row := range batch {
		if len(row) != bp.N {
			panic(fft.BatchLengthError(i, len(row), bp.N))
		}
	}
	if len(batch) == 0 {
		return
	}
	start := time.Time{}
	if e.obs != nil {
		start = time.Now()
	}
	work := make([]complex128, bp.M)
	for _, row := range batch {
		run(bp, row, work, kern)
	}
	if e.obs != nil {
		e.obs.ObserveBatch(len(batch), bp.N, time.Since(start))
	}
}
