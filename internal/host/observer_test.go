package host

import (
	"sync"
	"testing"
	"time"

	"codeletfft/internal/fft"
)

// recObserver records every callback; safe for concurrent use so it can
// sit on an engine whose passes run from pool workers.
type recObserver struct {
	mu      sync.Mutex
	batches []int           // occupancy per ObserveBatch
	passes  map[string]int  // count per pass label
	zeroDur bool            // any non-positive duration seen
}

func newRecObserver() *recObserver {
	return &recObserver{passes: make(map[string]int)}
}

func (o *recObserver) ObserveBatch(batch, n int, d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.batches = append(o.batches, batch)
	if d < 0 {
		o.zeroDur = true
	}
}

func (o *recObserver) ObservePass(pass string, d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.passes[pass]++
	if d < 0 {
		o.zeroDur = true
	}
}

func TestObserverBatchAndPasses(t *testing.T) {
	const n, batchSize = 256, 8
	pl, err := fft.NewPlan(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	obs := newRecObserver()
	e := New(Config{Workers: 4, Threshold: 1, Observer: obs})

	batch := make([][]complex128, batchSize)
	for i := range batch {
		batch[i] = make([]complex128, n)
		batch[i][1] = 1
	}
	e.TransformBatch(pl, batch, w)
	e.InverseBatch(pl, batch, w)

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.batches) != 2 {
		t.Fatalf("ObserveBatch called %d times, want 2", len(obs.batches))
	}
	for _, b := range obs.batches {
		if b != batchSize {
			t.Errorf("batch occupancy = %d, want %d", b, batchSize)
		}
	}
	// Forward: bitrev + NumStages stage passes. Inverse adds conj,
	// another bitrev+stages, and the scale pass.
	if got, want := obs.passes[PassBitRev], 2; got != want {
		t.Errorf("%s passes = %d, want %d", PassBitRev, got, want)
	}
	if got, want := obs.passes[PassStage], 2*pl.NumStages; got != want {
		t.Errorf("%s passes = %d, want %d", PassStage, got, want)
	}
	if obs.passes[PassConj] != 1 || obs.passes[PassScale] != 1 {
		t.Errorf("conj/scale passes = %d/%d, want 1/1", obs.passes[PassConj], obs.passes[PassScale])
	}
	if obs.zeroDur {
		t.Error("observer saw a negative duration")
	}
}

// TestObserverSerialFallback: below the threshold the batch runs
// serially but occupancy must still be reported — the serving daemon's
// coalescing proof reads this histogram.
func TestObserverSerialFallback(t *testing.T) {
	const n, batchSize = 64, 3
	pl, err := fft.NewPlan(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	obs := newRecObserver()
	e := New(Config{Workers: 4, Threshold: 1 << 20, Observer: obs})
	batch := make([][]complex128, batchSize)
	for i := range batch {
		batch[i] = make([]complex128, n)
	}
	e.TransformBatch(pl, batch, w)
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.batches) != 1 || obs.batches[0] != batchSize {
		t.Fatalf("serial fallback batches = %v, want [%d]", obs.batches, batchSize)
	}
}

// TestObserverParallelTransform covers the single-transform parallel
// path's pass telemetry.
func TestObserverParallelTransform(t *testing.T) {
	const n = 1 << 10
	pl, err := fft.NewPlan(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	obs := newRecObserver()
	e := New(Config{Workers: 4, Threshold: 1, Observer: obs})
	data := make([]complex128, n)
	data[1] = 1
	e.Transform(pl, data, w)
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.passes[PassBitRev] != 1 {
		t.Errorf("bitrev passes = %d, want 1", obs.passes[PassBitRev])
	}
	if obs.passes[PassStage] != pl.NumStages {
		t.Errorf("stage passes = %d, want %d", obs.passes[PassStage], pl.NumStages)
	}
}
