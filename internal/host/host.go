// Package host executes fft plans in parallel on the real host machine —
// the repo's hardware counterpart to the fine-grain scheduling story the
// simulator tells. A stage of a staged plan consists of TasksPerStage
// butterfly tasks over pairwise-disjoint element sets, so the whole stage
// can be sharded across goroutines with nothing but a barrier at the
// stage boundary; the bit-reversal permutation decomposes into disjoint
// swap pairs and parallelizes the same way, as do the row and column
// passes of a 2-D plan.
//
// The engine is deliberately deterministic: every task performs exactly
// the arithmetic the serial path performs, on the same operands, so
// parallel output is bitwise identical to serial output regardless of
// worker count or scheduling — a property the test layer (and the
// FuzzParallelMatchesSerial fuzz target) checks exactly, not within a
// tolerance.
package host

import (
	"runtime"
	"sync"
	"time"

	"codeletfft/internal/fft"
)

// DefaultThreshold is the transform length (total elements for 2-D) below
// which the parallel entry points fall back to serial execution: under
// ~8Ki elements the goroutine dispatch and barrier cost rivals the
// butterfly work itself.
const DefaultThreshold = 1 << 13

// Pass labels reported to an Observer. Each is one lockstep pass of a
// parallel or batched execution — the unit separated by stage barriers.
const (
	PassBitRev = "bitrev" // bit-reversal permutation
	PassStage  = "stage"  // one butterfly stage
	PassConj   = "conj"   // inverse-path conjugation sweep
	PassScale  = "scale"  // inverse-path conjugate-and-scale sweep
	PassRows   = "rows"   // 2-D row-FFT pass
	PassCols   = "cols"   // 2-D column-FFT pass

	PassStageMixed = "stage_mixed" // one mixed-radix Stockham stage
	PassChirp      = "chirp"       // Bluestein chirp pre/post-multiply sweep

	// SoA-kernel passes: the split-plane pipeline replaces the plain
	// bit-reversal pass with a fused deinterleave+bitrev pack into the
	// planes, and adds a reinterleave pass at the end.
	PassSoAPack   = "soa_pack"   // deinterleave + bit-reverse into planes
	PassSoAUnpack = "soa_unpack" // reinterleave planes into the data array
)

// Observer receives execution telemetry from an Engine: one
// ObserveBatch per batched dispatch (occupancy = number of transforms
// coalesced into it) and one ObservePass per lockstep pass. Methods are
// called synchronously on the dispatching goroutine and must be cheap
// and concurrency-safe; implementations backed by atomic instruments
// (internal/metrics) satisfy both and keep the batch path
// allocation-free.
type Observer interface {
	// ObserveBatch reports one batched call: how many transforms it
	// coalesced, the transform length, and the wall time of the whole
	// dispatch.
	ObserveBatch(batch, n int, d time.Duration)
	// ObservePass reports one lockstep pass (PassBitRev, PassStage,
	// PassConj, PassScale) and its wall time.
	ObservePass(pass string, d time.Duration)
}

// Config tunes an Engine.
type Config struct {
	// Workers is the number of goroutines a parallel pass uses.
	// 0 means GOMAXPROCS.
	Workers int
	// Threshold is the minimum number of elements for which the parallel
	// path engages; smaller transforms run serially. 0 means
	// DefaultThreshold; 1 forces the parallel path for every size.
	Threshold int
	// Observer, when non-nil, receives batch-occupancy and pass-latency
	// telemetry from every parallel or batched call on the engine.
	Observer Observer
}

// Engine executes plans with a pool of worker goroutines. An Engine's
// configuration is immutable after New and an Engine is safe for
// concurrent use: simultaneous Transform calls on distinct data arrays
// simply run their own worker sets, and simultaneous batch calls share
// the persistent batch pool.
type Engine struct {
	workers   int
	threshold int
	obs       Observer

	// scratch recycles per-worker *fft.Scratch buffers across batch
	// calls so the steady state allocates nothing. It is a separate
	// allocation (not an inline field) so the persistent batch workers
	// can hold it without keeping the Engine itself reachable — the
	// Engine's finalizer is what shuts the workers down.
	scratch *sync.Pool

	// Persistent batch worker pool, created on the first batched call.
	poolOnce sync.Once
	jobs     chan *batchJob
}

// New builds an engine, applying the Config defaults.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	th := cfg.Threshold
	if th <= 0 {
		th = DefaultThreshold
	}
	return &Engine{workers: w, threshold: th, obs: cfg.Observer, scratch: new(sync.Pool)}
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// Threshold returns the resolved serial-fallback threshold.
func (e *Engine) Threshold() int { return e.threshold }

// passStart returns the timestamp observed passes measure from; the
// zero time when no observer is attached, so the hot path pays only a
// nil check. passDone reports the pass to the observer, if any.
func (e *Engine) passStart() time.Time {
	if e.obs == nil {
		return time.Time{}
	}
	return time.Now()
}

func (e *Engine) passDone(pass string, start time.Time) {
	if e.obs != nil {
		e.obs.ObservePass(pass, time.Since(start))
	}
}

// parallelFor splits [0,n) into one contiguous chunk per worker and runs
// fn(worker, lo, hi) for each chunk on its own goroutine, returning after
// all chunks complete — the stage barrier. Chunks are maximal (n/workers
// iterations each) so dispatch cost is one goroutine spawn per worker per
// pass, not per task. fn is called on the caller's goroutine when a
// single chunk suffices.
func (e *Engine) parallelFor(n int, fn func(worker, lo, hi int)) {
	nw := e.workers
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	chunk := (n + nw - 1) / nw
	var wg sync.WaitGroup
	for wk := 0; wk < nw; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			fn(wk, lo, hi)
		}(wk, lo, hi)
	}
	wg.Wait()
}

// bitReverse applies the bit-reversal permutation in parallel. Every swap
// pair {i, BitReverse(i)} is executed by exactly one worker — the one
// whose index range holds the smaller element — so the shards never touch
// a common element.
func (e *Engine) bitReverse(data []complex128, width int) {
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			j := int(fft.BitReverse(int64(i), width))
			if j > i {
				data[i], data[j] = data[j], data[i]
			}
		}
	})
}

// Transform applies the staged forward FFT in place, sharding each
// stage's tasks across the worker pool with a WaitGroup barrier between
// stages. Transforms smaller than the threshold run serially. w must be
// fft.Twiddles(pl.N). Output is bitwise identical to pl.Transform.
func (e *Engine) Transform(pl *fft.Plan, data, w []complex128) {
	if len(data) != pl.N {
		panic(fft.LengthError("data", len(data), pl.N))
	}
	if pl.N < e.threshold || e.workers <= 1 {
		pl.Transform(data, w)
		return
	}
	t0 := e.passStart()
	e.bitReverse(data, pl.LogN)
	e.passDone(PassBitRev, t0)
	// Per-worker scratch, created on first use and reused across stages
	// (the inter-stage barrier orders the accesses).
	scratch := make([]*fft.Scratch, e.workers)
	for stage := 0; stage < pl.NumStages; stage++ {
		ts := e.passStart()
		e.parallelFor(pl.TasksPerStage, func(wk, lo, hi int) {
			sc := scratch[wk]
			if sc == nil {
				sc = fft.NewScratch(pl)
				scratch[wk] = sc
			}
			for task := lo; task < hi; task++ {
				pl.RunTask(stage, task, data, w, nil, sc)
			}
		})
		e.passDone(PassStage, ts)
	}
}

// InverseTransform applies the inverse FFT in place via the conjugation
// identity, with the conjugation and scaling passes also sharded. Output
// is bitwise identical to pl.InverseTransform.
func (e *Engine) InverseTransform(pl *fft.Plan, data, w []complex128) {
	if len(data) != pl.N {
		panic(fft.LengthError("data", len(data), pl.N))
	}
	if pl.N < e.threshold || e.workers <= 1 {
		pl.InverseTransform(data, w)
		return
	}
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v), -imag(v))
		}
	})
	e.Transform(pl, data, w)
	inv := 1 / float64(pl.N)
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v)*inv, -imag(v)*inv)
		}
	})
}

// Transform2D applies the 2-D FFT in place (row-major data): rows are
// sharded across workers, then columns, each worker gathering into its
// own column buffer. Output is bitwise identical to p.Transform.
func (e *Engine) Transform2D(p *fft.Plan2D, data []complex128) {
	if len(data) != p.Rows*p.Cols {
		panic(fft.LengthError("2-D data", len(data), p.Rows*p.Cols))
	}
	if p.Rows*p.Cols < e.threshold || e.workers <= 1 {
		p.Transform(data)
		return
	}
	t0 := e.passStart()
	e.parallelFor(p.Rows, func(_, lo, hi int) {
		sc := fft.NewScratch(p.RowPlan)
		for r := lo; r < hi; r++ {
			p.RowPlan.TransformWith(data[r*p.Cols:(r+1)*p.Cols], p.WRow, sc)
		}
	})
	e.passDone(PassRows, t0)
	t1 := e.passStart()
	e.parallelFor(p.Cols, func(_, lo, hi int) {
		sc := fft.NewScratch(p.ColPlan)
		col := make([]complex128, p.Rows)
		for c := lo; c < hi; c++ {
			for r := 0; r < p.Rows; r++ {
				col[r] = data[r*p.Cols+c]
			}
			p.ColPlan.TransformWith(col, p.WCol, sc)
			for r := 0; r < p.Rows; r++ {
				data[r*p.Cols+c] = col[r]
			}
		}
	})
	e.passDone(PassCols, t1)
}

// InverseTransform2D applies the inverse 2-D FFT in place. Output is
// bitwise identical to p.InverseTransform.
func (e *Engine) InverseTransform2D(p *fft.Plan2D, data []complex128) {
	if len(data) != p.Rows*p.Cols {
		panic(fft.LengthError("2-D data", len(data), p.Rows*p.Cols))
	}
	if p.Rows*p.Cols < e.threshold || e.workers <= 1 {
		p.InverseTransform(data)
		return
	}
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v), -imag(v))
		}
	})
	e.Transform2D(p, data)
	inv := 1 / float64(p.Rows*p.Cols)
	e.parallelFor(len(data), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = complex(real(v)*inv, -imag(v)*inv)
		}
	})
}
