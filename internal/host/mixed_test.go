// Determinism tests for the arbitrary-N engine paths: the parallel
// mixed-radix sweep and the Bluestein convolution must be bitwise
// identical to their serial counterparts at every worker count, and the
// batch entry points must match a plain loop element-for-element. The
// facade's reproducibility contract — same plan, same input, same bits,
// regardless of engine shape — extends to non-power-of-two lengths only
// because of the properties pinned here.
package host_test

import (
	"math"
	"math/rand"
	"testing"

	"codeletfft/internal/fft"
	"codeletfft/internal/host"
)

func mixedSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func requireSameBits(t *testing.T, got, want []complex128, what string) {
	t.Helper()
	for i := range got {
		if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
			math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
			t.Fatalf("%s: element %d differs bitwise: %v vs %v", what, i, got[i], want[i])
		}
	}
}

// TestMixedParallelMatchesSerial: the sharded per-stage sweep computes
// exactly the serial plan's bits at every worker count, because each
// butterfly unit reads and writes a disjoint element set with
// self-contained arithmetic.
func TestMixedParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 12, 360, 1000, 3000, 6144} {
		mp, err := fft.NewMixedPlan(n)
		if err != nil {
			t.Fatalf("NewMixedPlan(%d): %v", n, err)
		}
		x := mixedSignal(n, int64(n))
		serial := append([]complex128(nil), x...)
		mp.Transform(serial)
		serialInv := append([]complex128(nil), serial...)
		mp.InverseTransform(serialInv)

		for _, workers := range []int{2, 4, 7} {
			eng := host.New(host.Config{Workers: workers, Threshold: 1})
			par := append([]complex128(nil), x...)
			eng.MixedTransform(mp, par)
			requireSameBits(t, par, serial, "forward")
			eng.MixedInverse(mp, par)
			requireSameBits(t, par, serialInv, "inverse")
		}
	}
}

// TestMixedBatchMatchesLoop: the batched entry points are a scheduling
// construct only — every row must carry the same bits as a one-row
// call.
func TestMixedBatchMatchesLoop(t *testing.T) {
	const n, rows = 360, 9
	mp, err := fft.NewMixedPlan(n)
	if err != nil {
		t.Fatalf("NewMixedPlan(%d): %v", n, err)
	}
	want := make([][]complex128, rows)
	batch := make([][]complex128, rows)
	for r := range batch {
		x := mixedSignal(n, int64(100+r))
		want[r] = append([]complex128(nil), x...)
		mp.Transform(want[r])
		batch[r] = append([]complex128(nil), x...)
	}
	eng := host.New(host.Config{Workers: 4, Threshold: 1})
	eng.MixedTransformBatch(mp, batch)
	for r := range batch {
		requireSameBits(t, batch[r], want[r], "batch forward row")
	}
	for r := range batch {
		mp.InverseTransform(want[r])
	}
	eng.MixedInverseBatch(mp, batch)
	for r := range batch {
		requireSameBits(t, batch[r], want[r], "batch inverse row")
	}
}

// TestBluesteinEngineDeterministic: for a fixed kernel the Bluestein
// path is elementwise sweeps around the engine's power-of-two
// convolution, so a 4-worker engine must reproduce a 1-worker engine
// bit-for-bit — and both must still be a correct DFT.
func TestBluesteinEngineDeterministic(t *testing.T) {
	for _, n := range []int{11, 97, 499, 601} {
		bp, err := fft.NewBluesteinPlan(n)
		if err != nil {
			t.Fatalf("NewBluesteinPlan(%d): %v", n, err)
		}
		x := mixedSignal(n, int64(n))
		for _, kern := range []fft.Kernel{fft.KernelRadix2, fft.KernelRadix4} {
			one := host.New(host.Config{Workers: 1, Threshold: 1})
			ref := append([]complex128(nil), x...)
			one.BluesteinTransform(bp, ref, kern)

			if e := fft.MaxError(ref, fft.DFT(x)); e > 1e-9*float64(n) {
				t.Fatalf("n=%d kern=%v: engine Bluestein vs DFT error %g", n, kern, e)
			}

			four := host.New(host.Config{Workers: 4, Threshold: 1})
			par := append([]complex128(nil), x...)
			four.BluesteinTransform(bp, par, kern)
			requireSameBits(t, par, ref, "bluestein forward")

			one.BluesteinInverse(bp, ref, kern)
			four.BluesteinInverse(bp, par, kern)
			requireSameBits(t, par, ref, "bluestein inverse")
			if e := fft.MaxError(par, x); e > 1e-9 {
				t.Fatalf("n=%d kern=%v: round-trip error %g", n, kern, e)
			}
		}
	}
}

// TestBluesteinBatchMatchesLoop: batch rows share one scratch buffer
// sequentially, so each row must match the single-shot call exactly.
func TestBluesteinBatchMatchesLoop(t *testing.T) {
	const n, rows = 97, 5
	bp, err := fft.NewBluesteinPlan(n)
	if err != nil {
		t.Fatalf("NewBluesteinPlan(%d): %v", n, err)
	}
	eng := host.New(host.Config{Workers: 4, Threshold: 1})
	want := make([][]complex128, rows)
	batch := make([][]complex128, rows)
	for r := range batch {
		x := mixedSignal(n, int64(200+r))
		want[r] = append([]complex128(nil), x...)
		eng.BluesteinTransform(bp, want[r], fft.KernelRadix2)
		batch[r] = append([]complex128(nil), x...)
	}
	eng.BluesteinTransformBatch(bp, batch, fft.KernelRadix2)
	for r := range batch {
		requireSameBits(t, batch[r], want[r], "bluestein batch row")
	}
	for r := range batch {
		eng.BluesteinInverse(bp, want[r], fft.KernelRadix2)
	}
	eng.BluesteinInverseBatch(bp, batch, fft.KernelRadix2)
	for r := range batch {
		requireSameBits(t, batch[r], want[r], "bluestein batch inverse row")
	}
}
