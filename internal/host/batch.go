// Batched execution: B independent transforms of one plan fed through a
// single dispatch of a persistent worker pool, instead of B sequential
// engine calls. The batch runs in lockstep passes — bit-reversal, then
// each butterfly stage, with a barrier between passes — and within a
// pass the workers steal (transform, stage-chunk) work units off a
// shared atomic cursor, so the pool stays busy across transforms even
// when one transform alone has too little work per stage to feed every
// worker. All per-call state (*batchJob) and per-worker scratch come
// from sync.Pools, so the steady state allocates nothing — a property
// the AllocsPerRun guard in batch_test.go pins.
//
// Correctness story, same as the single-transform engine: tasks of one
// stage touch pairwise-disjoint elements, distinct transforms touch
// distinct arrays, and the barrier between passes orders everything
// else, so batched output is bitwise identical to the serial loop.
package host

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"codeletfft/internal/fft"
)

// Pass kinds of a batched execution.
const (
	passBitRev    = iota // unit: one transform's bit-reversal permutation
	passStage            // unit: one (transform, task) pair of the current stage
	passConj             // unit: one transform's conjugation sweep
	passConjScale        // unit: one transform's conjugate-and-scale sweep
	passWhole            // unit: one complete SoA transform (pack→stages→unpack)
)

// passLabel maps a batch pass kind to its Observer label; stage passes
// are labeled per kernel (see StagePassLabel).
func passLabel(mode int, kern fft.Kernel) string {
	switch mode {
	case passBitRev:
		return PassBitRev
	case passStage, passWhole:
		return StagePassLabel(kern)
	case passConj:
		return PassConj
	default:
		return PassScale
	}
}

// batchJob carries one pass of one batched call through the worker
// pool. The same job object is re-armed for every pass of the call and
// recycled through jobPool afterwards.
type batchJob struct {
	pl    *fft.Plan
	batch [][]complex128
	w     []complex128
	kern  fft.Kernel

	mode  int
	stage int
	units int64 // total work units this pass
	chunk int64 // units claimed per steal
	scale float64

	next atomic.Int64
	wg   sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(batchJob) }}

// ensurePool starts the persistent batch workers on first use. The
// workers hold only the jobs channel and the shared scratch pool — not
// the Engine — so when the Engine becomes unreachable its finalizer
// closes the channel and the workers exit.
func (e *Engine) ensurePool() {
	e.poolOnce.Do(func() {
		jobs := make(chan *batchJob, e.workers)
		e.jobs = jobs
		for i := 0; i < e.workers; i++ {
			go batchWorker(jobs, e.scratch)
		}
		runtime.SetFinalizer(e, func(*Engine) { close(jobs) })
	})
}

func batchWorker(jobs <-chan *batchJob, scratch *sync.Pool) {
	for job := range jobs {
		job.run(scratch)
		job.wg.Done()
	}
}

// getScratch returns a pooled scratch sized for pl, falling back to a
// fresh allocation when the pool is empty or holds a different task
// size (a wrong-size scratch is simply dropped; under a steady plan mix
// the pool converges and Get never misses).
func getScratch(pool *sync.Pool, pl *fft.Plan) *fft.Scratch {
	if sc, _ := pool.Get().(*fft.Scratch); sc != nil && len(sc.Idx) == pl.P {
		return sc
	}
	return fft.NewScratch(pl)
}

// run drains the current pass: claim a chunk of work units off the
// shared cursor, execute them, repeat until the pass is exhausted.
func (job *batchJob) run(scratch *sync.Pool) {
	var sc *fft.Scratch
	if job.mode == passStage {
		sc = getScratch(scratch, job.pl)
	}
	for {
		lo := job.next.Add(job.chunk) - job.chunk
		if lo >= job.units {
			break
		}
		hi := min(lo+job.chunk, job.units)
		switch job.mode {
		case passBitRev:
			for t := lo; t < hi; t++ {
				fft.BitReversePermute(job.batch[t])
			}
		case passStage:
			tps := int64(job.pl.TasksPerStage)
			for u := lo; u < hi; u++ {
				job.pl.RunTaskKernel(job.stage, int(u%tps), job.batch[u/tps], job.w, job.kern, sc)
			}
		case passWhole:
			for t := lo; t < hi; t++ {
				job.pl.TransformSoA(job.batch[t], job.w, job.kern)
			}
		case passConj:
			for t := lo; t < hi; t++ {
				d := job.batch[t]
				for i, v := range d {
					d[i] = complex(real(v), -imag(v))
				}
			}
		case passConjScale:
			for t := lo; t < hi; t++ {
				d := job.batch[t]
				s := job.scale
				for i, v := range d {
					d[i] = complex(real(v)*s, -imag(v)*s)
				}
			}
		}
	}
	if sc != nil {
		scratch.Put(sc)
	}
}

// runPass arms the job for one pass, hands it to every pool worker, and
// joins in the stealing itself until the pass completes — the barrier
// between passes. Work is chunked so each worker steals a handful of
// times per pass: enough granularity to rebalance, not enough to make
// the cursor contended.
func (e *Engine) runPass(job *batchJob, mode, stage int, units int64) {
	t0 := e.passStart()
	job.mode, job.stage, job.units = mode, stage, units
	job.chunk = max(units/int64(e.workers*4), 1)
	job.next.Store(0)
	job.wg.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		e.jobs <- job
	}
	job.run(e.scratch)
	job.wg.Wait()
	e.passDone(passLabel(mode, job.kern), t0)
}

// checkBatch validates every array up front so a mid-batch panic cannot
// leave earlier transforms half-executed. A bad row panics with
// BatchLengthError, which names the row's batch index — serving-side
// 400s use it to say which request in a coalesced batch was malformed.
func checkBatch(pl *fft.Plan, batch [][]complex128, w []complex128) {
	if len(w) != pl.N/2 {
		panic(fft.LengthError("twiddle table", len(w), pl.N/2))
	}
	for i, d := range batch {
		if len(d) != pl.N {
			panic(fft.BatchLengthError(i, len(d), pl.N))
		}
	}
}

// TransformBatch applies the forward FFT in place to every array in
// batch — B independent pl.N-point transforms through one dispatch of
// the persistent worker pool. The arrays must be distinct (no aliasing);
// w must be fft.Twiddles(pl.N). Batches whose combined element count is
// below the threshold run serially on the caller's goroutine with one
// reused scratch. Output is bitwise identical to calling pl.Transform
// on each array in order.
func (e *Engine) TransformBatch(pl *fft.Plan, batch [][]complex128, w []complex128) {
	e.TransformBatchKernel(pl, batch, w, fft.KernelRadix2)
}

// TransformBatchKernel is TransformBatch with a selectable butterfly
// kernel; for a fixed kernel the output is bitwise identical to calling
// pl.TransformKernel on each array in order.
func (e *Engine) TransformBatchKernel(pl *fft.Plan, batch [][]complex128, w []complex128, kern fft.Kernel) {
	kern = kern.Concrete()
	checkBatch(pl, batch, w)
	if len(batch) == 0 {
		return
	}
	t0 := e.passStart()
	if e.workers <= 1 || len(batch)*pl.N < e.threshold {
		sc := getScratch(e.scratch, pl)
		for _, d := range batch {
			pl.TransformKernelWith(d, w, kern, sc)
		}
		e.scratch.Put(sc)
		e.batchDone(len(batch), pl.N, t0)
		return
	}
	e.ensurePool()
	job := jobPool.Get().(*batchJob)
	job.pl, job.batch, job.w, job.kern = pl, batch, w, kern
	if kern.SoA() {
		// SoA transforms are whole-pipeline units (each packs into its
		// own pooled frame), so the batch steals complete transforms
		// instead of (transform, task) pairs — same result bitwise,
		// since TransformSoA is partition-independent.
		pl.SoATwiddles(w)
		e.runPass(job, passWhole, 0, int64(len(batch)))
	} else {
		e.runPass(job, passBitRev, 0, int64(len(batch)))
		for s := 0; s < pl.NumStages; s++ {
			e.runPass(job, passStage, s, int64(len(batch))*int64(pl.TasksPerStage))
		}
	}
	e.releaseJob(job)
	e.batchDone(len(batch), pl.N, t0)
}

// InverseBatch applies the inverse FFT in place to every array in batch
// via the conjugation identity, with the conjugate and scale sweeps
// batched the same way. Output is bitwise identical to calling
// pl.InverseTransform on each array in order.
func (e *Engine) InverseBatch(pl *fft.Plan, batch [][]complex128, w []complex128) {
	e.InverseBatchKernel(pl, batch, w, fft.KernelRadix2)
}

// InverseBatchKernel is InverseBatch with a selectable butterfly kernel.
func (e *Engine) InverseBatchKernel(pl *fft.Plan, batch [][]complex128, w []complex128, kern fft.Kernel) {
	kern = kern.Concrete()
	checkBatch(pl, batch, w)
	if len(batch) == 0 {
		return
	}
	t0 := e.passStart()
	if e.workers <= 1 || len(batch)*pl.N < e.threshold {
		sc := getScratch(e.scratch, pl)
		for _, d := range batch {
			pl.InverseTransformKernelWith(d, w, kern, sc)
		}
		e.scratch.Put(sc)
		e.batchDone(len(batch), pl.N, t0)
		return
	}
	e.ensurePool()
	job := jobPool.Get().(*batchJob)
	job.pl, job.batch, job.w, job.kern = pl, batch, w, kern
	e.runPass(job, passConj, 0, int64(len(batch)))
	if kern.SoA() {
		pl.SoATwiddles(w)
		e.runPass(job, passWhole, 0, int64(len(batch)))
	} else {
		e.runPass(job, passBitRev, 0, int64(len(batch)))
		for s := 0; s < pl.NumStages; s++ {
			e.runPass(job, passStage, s, int64(len(batch))*int64(pl.TasksPerStage))
		}
	}
	job.scale = 1 / float64(pl.N)
	e.runPass(job, passConjScale, 0, int64(len(batch)))
	e.releaseJob(job)
	e.batchDone(len(batch), pl.N, t0)
}

// batchDone reports one batched dispatch to the observer, if any.
func (e *Engine) batchDone(batch, n int, start time.Time) {
	if e.obs != nil {
		e.obs.ObserveBatch(batch, n, time.Since(start))
	}
}

// releaseJob drops the job's references to caller data before pooling
// it, so a recycled job cannot pin a batch's arrays, and keeps the
// Engine reachable until the last pass has fully drained (workers never
// reference the Engine, only the channel — see ensurePool).
func (e *Engine) releaseJob(job *batchJob) {
	job.pl, job.batch, job.w, job.kern = nil, nil, nil, 0
	jobPool.Put(job)
	runtime.KeepAlive(e)
}

// RealTransform computes the half-spectrum of the length-rp.N real
// signal src into dst (length rp.SpectrumLen()), running the packed
// N/2-point FFT through the engine — parallel above the threshold,
// serial below it, bitwise identical to rp.Transform either way. The
// O(N) pack and split passes run on the caller's goroutine.
func (e *Engine) RealTransform(rp *fft.RealPlan, dst []complex128, src []float64) {
	rp.Pack(dst, src)
	e.Transform(rp.Half, dst[:rp.N/2], rp.WHalf)
	rp.Unpack(dst)
}

// RealInverse recovers the length-rp.N real signal from its
// half-spectrum src into dst, running the inverse half transform
// through the engine. It allocates an N/2 work buffer; serving paths
// that must not allocate can use rp.InverseWith directly.
func (e *Engine) RealInverse(rp *fft.RealPlan, dst []float64, src []complex128) {
	work := make([]complex128, rp.N/2)
	rp.PreInverse(work, src)
	e.InverseTransform(rp.Half, work, rp.WHalf)
	rp.PostInverse(dst, work)
}
