package host_test

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"codeletfft/internal/fft"
	"codeletfft/internal/host"
)

func kernInput(n int, seed uint64) []complex128 {
	x := make([]complex128, n)
	s := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(int32(s>>32)) / float64(1<<31)
	}
	for i := range x {
		x[i] = complex(next(), next())
	}
	return x
}

func sameBits(a, b []complex128) bool {
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// TestKernelParallelMatchesSerial pins the engine's determinism
// guarantee per kernel: for each kernel, parallel engine output is
// bitwise identical to the serial fft-layer output with the same
// kernel, forward and inverse.
func TestKernelParallelMatchesSerial(t *testing.T) {
	for _, lg := range []int{6, 10, 13} {
		n := 1 << lg
		for _, p := range []int{8, 64} {
			pl, err := fft.NewPlan(n, p)
			if err != nil {
				t.Fatal(err)
			}
			w := fft.Twiddles(n)
			x := kernInput(n, uint64(n+p))
			for _, workers := range []int{2, 5} {
				eng := host.New(host.Config{Workers: workers, Threshold: 1})
				for _, k := range fft.ConcreteKernels() {
					serial := append([]complex128(nil), x...)
					pl.TransformKernel(serial, w, k)
					par := append([]complex128(nil), x...)
					eng.TransformKernel(pl, par, w, k)
					if !sameBits(par, serial) {
						t.Fatalf("N=2^%d P=%d workers=%d %v: parallel != serial", lg, p, workers, k)
					}
					pl.InverseTransformKernel(serial, w, k)
					eng.InverseTransformKernel(pl, par, w, k)
					if !sameBits(par, serial) {
						t.Fatalf("N=2^%d P=%d workers=%d %v: inverse parallel != serial", lg, p, workers, k)
					}
				}
			}
		}
	}
}

// TestKernelBatchMatchesLoop: for each kernel, TransformBatchKernel is
// bitwise identical to a loop of serial per-kernel transforms, through
// both the pooled and the below-threshold serial batch paths.
func TestKernelBatchMatchesLoop(t *testing.T) {
	const n, b = 512, 6
	pl, err := fft.NewPlan(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	for _, threshold := range []int{1, 1 << 20} { // pooled, serial fallback
		eng := host.New(host.Config{Workers: 4, Threshold: threshold})
		for _, k := range fft.ConcreteKernels() {
			batch := make([][]complex128, b)
			want := make([][]complex128, b)
			for i := range batch {
				batch[i] = kernInput(n, uint64(i)+9)
				want[i] = append([]complex128(nil), batch[i]...)
				pl.TransformKernel(want[i], w, k)
			}
			eng.TransformBatchKernel(pl, batch, w, k)
			for i := range batch {
				if !sameBits(batch[i], want[i]) {
					t.Fatalf("threshold=%d %v: batch row %d != loop", threshold, k, i)
				}
			}
			for i := range batch {
				pl.InverseTransformKernel(want[i], w, k)
			}
			eng.InverseBatchKernel(pl, batch, w, k)
			for i := range batch {
				if !sameBits(batch[i], want[i]) {
					t.Fatalf("threshold=%d %v: inverse batch row %d != loop", threshold, k, i)
				}
			}
		}
	}
}

// TestKernelRealAndTwoD covers the kernel variants of the real and 2-D
// engine paths against their serial fft-layer counterparts.
func TestKernelRealAndTwoD(t *testing.T) {
	eng := host.New(host.Config{Workers: 3, Threshold: 1})

	rp, err := fft.NewRealPlan(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 1024)
	z := kernInput(1024, 21)
	for i := range x {
		x[i] = real(z[i])
	}
	for _, k := range fft.ConcreteKernels() {
		want := make([]complex128, rp.SpectrumLen())
		rp.TransformKernelWith(want, x, k, fft.NewScratch(rp.Half))
		got := make([]complex128, rp.SpectrumLen())
		eng.RealTransformKernel(rp, got, x, k)
		if !sameBits(got, want) {
			t.Fatalf("%v: engine real transform != serial", k)
		}
		back := make([]float64, 1024)
		eng.RealInverseKernel(rp, back, got, k)
		for i := range back {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("%v: real round trip diverged at %d", k, i)
			}
		}
	}

	p2, err := fft.NewPlan2D(32, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range fft.ConcreteKernels() {
		want := kernInput(32*64, 5)
		got := append([]complex128(nil), want...)
		p2.TransformKernel(want, k)
		eng.Transform2DKernel(p2, got, k)
		if !sameBits(got, want) {
			t.Fatalf("%v: engine 2-D != serial", k)
		}
		p2.InverseTransformKernel(want, k)
		eng.InverseTransform2DKernel(p2, got, k)
		if !sameBits(got, want) {
			t.Fatalf("%v: engine inverse 2-D != serial", k)
		}
	}
}

type passRecorder struct {
	mu     sync.Mutex
	passes map[string]int
}

func (r *passRecorder) ObserveBatch(batch, n int, d time.Duration) {}
func (r *passRecorder) ObservePass(pass string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.passes == nil {
		r.passes = map[string]int{}
	}
	r.passes[pass]++
}

// TestKernelStagePassLabels: higher-radix stage passes report their own
// observer labels; radix-2 keeps the original "stage" label.
func TestKernelStagePassLabels(t *testing.T) {
	pl, err := fft.NewPlan(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(256)
	cases := []struct {
		kern    fft.Kernel
		label   string
		batched int // expected batched-path observations of the label
	}{
		{fft.KernelRadix2, host.PassStage, pl.NumStages},
		{fft.KernelRadix4, host.PassStageRadix4, pl.NumStages},
		{fft.KernelSplitRadix, host.PassStageSplitRadix, pl.NumStages},
		// The SoA engine path reports its stage label once per stage like
		// the others; the batched path steals whole transforms, so one
		// dispatch reports the label once.
		{fft.KernelSoARadix2, host.PassStageSoA2, 1},
		{fft.KernelSoARadix4, host.PassStageSoA4, 1},
	}
	for _, tc := range cases {
		if got := host.StagePassLabel(tc.kern); got != tc.label {
			t.Fatalf("StagePassLabel(%v) = %q, want %q", tc.kern, got, tc.label)
		}
		rec := &passRecorder{}
		eng := host.New(host.Config{Workers: 2, Threshold: 1, Observer: rec})
		data := kernInput(256, 1)
		eng.TransformKernel(pl, data, w, tc.kern)
		if rec.passes[tc.label] != pl.NumStages {
			t.Fatalf("%v: saw %d %q passes, want %d (all: %v)",
				tc.kern, rec.passes[tc.label], tc.label, pl.NumStages, rec.passes)
		}
		if tc.kern.SoA() {
			// The split-plane pipeline replaces bitrev with its fused
			// pack pass and adds the unpack pass.
			if rec.passes[host.PassSoAPack] != 1 || rec.passes[host.PassSoAUnpack] != 1 {
				t.Fatalf("%v: pack/unpack passes = %d/%d, want 1/1 (all: %v)",
					tc.kern, rec.passes[host.PassSoAPack], rec.passes[host.PassSoAUnpack], rec.passes)
			}
			if rec.passes[host.PassBitRev] != 0 {
				t.Fatalf("%v: saw %d bitrev passes, want 0", tc.kern, rec.passes[host.PassBitRev])
			}
		}
		// The batched path reports the same label.
		rec2 := &passRecorder{}
		eng2 := host.New(host.Config{Workers: 2, Threshold: 1, Observer: rec2})
		batch := [][]complex128{kernInput(256, 2), kernInput(256, 3)}
		eng2.TransformBatchKernel(pl, batch, w, tc.kern)
		if rec2.passes[tc.label] != tc.batched {
			t.Fatalf("%v batched: saw %d %q passes, want %d", tc.kern, rec2.passes[tc.label], tc.label, tc.batched)
		}
	}
}

// TestBatchLengthPanicNamesIndex pins the ISSUE 5 bugfix: a bad row in
// a batch panics with an error that names the offending batch index and
// still wraps ErrLengthMismatch.
func TestBatchLengthPanicNamesIndex(t *testing.T) {
	pl, err := fft.NewPlan(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(64)
	eng := host.New(host.Config{Workers: 2, Threshold: 1})
	batch := [][]complex128{
		make([]complex128, 64),
		make([]complex128, 64),
		make([]complex128, 63), // bad row at index 2
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic for bad batch row")
		}
		err, ok := v.(error)
		if !ok || !errors.Is(err, fft.ErrLengthMismatch) {
			t.Fatalf("panic %v does not wrap ErrLengthMismatch", v)
		}
		if !strings.Contains(err.Error(), "batch element 2") {
			t.Fatalf("panic %q does not name batch index 2", err)
		}
	}()
	eng.TransformBatch(pl, batch, w)
}
