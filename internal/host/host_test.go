package host

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"codeletfft/internal/fft"
)

func noise(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// sameBits reports whether a and b are bitwise-identical complex slices.
func sameBits(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if v := math.Hypot(real(d), imag(d)); v > m {
			m = v
		}
	}
	return m
}

func TestDefaults(t *testing.T) {
	e := New(Config{})
	if e.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers = %d, want GOMAXPROCS = %d", e.Workers(), runtime.GOMAXPROCS(0))
	}
	if e.Threshold() != DefaultThreshold {
		t.Errorf("Threshold = %d, want %d", e.Threshold(), DefaultThreshold)
	}
	e = New(Config{Workers: 3, Threshold: 1})
	if e.Workers() != 3 || e.Threshold() != 1 {
		t.Errorf("explicit config not honored: workers=%d threshold=%d", e.Workers(), e.Threshold())
	}
}

// TestParallelMatchesSerial exercises the full (N, P, workers) matrix with
// the threshold forced to 1 so the parallel path runs even at tiny sizes,
// and demands bitwise equality with the serial path.
func TestParallelMatchesSerial(t *testing.T) {
	for _, logN := range []int{1, 3, 6, 10, 14} {
		n := 1 << logN
		for _, p := range []int{2, 8, 64} {
			if p > n {
				continue
			}
			pl, err := fft.NewPlan(n, p)
			if err != nil {
				t.Fatal(err)
			}
			w := fft.Twiddles(n)
			x := noise(n, int64(n+p))
			want := append([]complex128(nil), x...)
			pl.Transform(want, w)
			for _, workers := range []int{1, 2, 3, 7, 16} {
				e := New(Config{Workers: workers, Threshold: 1})
				got := append([]complex128(nil), x...)
				e.Transform(pl, got, w)
				if !sameBits(got, want) {
					t.Errorf("N=%d P=%d workers=%d: parallel != serial (max err %g)",
						n, p, workers, maxErr(got, want))
				}
			}
		}
	}
}

func TestParallelInverseMatchesSerial(t *testing.T) {
	n := 1 << 12
	pl, err := fft.NewPlan(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	x := noise(n, 9)
	want := append([]complex128(nil), x...)
	pl.Transform(want, w)
	pl.InverseTransform(want, w)

	e := New(Config{Workers: 4, Threshold: 1})
	got := append([]complex128(nil), x...)
	e.Transform(pl, got, w)
	e.InverseTransform(pl, got, w)
	if !sameBits(got, want) {
		t.Fatalf("parallel round trip != serial round trip (max err %g)", maxErr(got, want))
	}
	if e := maxErr(got, x); e > 1e-12 {
		t.Fatalf("round trip error %g", e)
	}
}

// TestThresholdFallback checks that transforms below the threshold take
// the serial path (observable only through correctness here; the fallback
// branch is the first statement of each entry point).
func TestThresholdFallback(t *testing.T) {
	n := 256
	pl, err := fft.NewPlan(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	x := noise(n, 4)
	want := append([]complex128(nil), x...)
	pl.Transform(want, w)
	e := New(Config{Workers: 8}) // DefaultThreshold ≫ 256
	got := append([]complex128(nil), x...)
	e.Transform(pl, got, w)
	if !sameBits(got, want) {
		t.Fatal("serial fallback diverged from serial path")
	}
}

func TestParallel2DMatchesSerial(t *testing.T) {
	for _, shape := range [][2]int{{4, 8}, {32, 64}, {128, 32}, {64, 64}} {
		rows, cols := shape[0], shape[1]
		p2, err := fft.NewPlan2D(rows, cols, 16)
		if err != nil {
			t.Fatal(err)
		}
		x := noise(rows*cols, int64(rows))
		want := append([]complex128(nil), x...)
		p2.Transform(want)
		for _, workers := range []int{1, 3, 8} {
			e := New(Config{Workers: workers, Threshold: 1})
			got := append([]complex128(nil), x...)
			e.Transform2D(p2, got)
			if !sameBits(got, want) {
				t.Errorf("%dx%d workers=%d: parallel 2-D != serial (max err %g)",
					rows, cols, workers, maxErr(got, want))
			}
			e.InverseTransform2D(p2, got)
			if err := maxErr(got, x); err > 1e-12 {
				t.Errorf("%dx%d workers=%d: 2-D round trip error %g", rows, cols, workers, err)
			}
		}
	}
}

// TestEngineConcurrentUse runs many transforms through one Engine and one
// Plan simultaneously on distinct data arrays — the contract the engine
// documents, and the scenario `go test -race` gates.
func TestEngineConcurrentUse(t *testing.T) {
	n := 1 << 11
	pl, err := fft.NewPlan(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	e := New(Config{Workers: 4, Threshold: 1})

	x := noise(n, 17)
	want := append([]complex128(nil), x...)
	pl.Transform(want, w)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				got := append([]complex128(nil), x...)
				e.Transform(pl, got, w)
				if !sameBits(got, want) {
					errs <- errFailed
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for range errs {
		t.Fatal("concurrent Transform diverged from serial result")
	}
}

var errFailed = &concurrencyError{}

type concurrencyError struct{}

func (*concurrencyError) Error() string { return "concurrent transform mismatch" }

// TestParallelBitReverse checks the sharded permutation directly against
// the serial one across worker counts (including workers > n).
func TestParallelBitReverse(t *testing.T) {
	for _, n := range []int{2, 16, 1024} {
		x := noise(n, int64(n))
		want := append([]complex128(nil), x...)
		fft.BitReversePermute(want)
		for _, workers := range []int{1, 2, 5, 2 * n} {
			e := New(Config{Workers: workers, Threshold: 1})
			got := append([]complex128(nil), x...)
			e.bitReverse(got, fft.Log2(n))
			if !sameBits(got, want) {
				t.Errorf("n=%d workers=%d: parallel bit-reverse wrong", n, workers)
			}
		}
	}
}
