package sim

// Timeline models an exclusive FIFO-served resource — a DRAM port, a lock,
// a hardware barrier network — as an occupancy frontier. A request that
// arrives at time t and needs s cycles of service starts at
// max(t, nextFree), finishes at start+s, and pushes nextFree forward.
//
// This is a G/G/1 queue evaluated analytically: because the discrete-event
// engine delivers requests in nondecreasing time order at phase
// granularity, the frontier update is exact for FIFO service.
type Timeline struct {
	nextFree Time
	busy     Time // total cycles spent serving requests
	served   int64
}

// Acquire reserves service cycles starting no earlier than at.
// It returns the start and completion times of the request.
func (tl *Timeline) Acquire(at Time, service Time) (start, done Time) {
	if service < 0 {
		panic("sim: negative service time")
	}
	start = at
	if tl.nextFree > start {
		start = tl.nextFree
	}
	done = start + service
	tl.nextFree = done
	tl.busy += service
	tl.served++
	return start, done
}

// NextFree returns the earliest time a new request could begin service.
func (tl *Timeline) NextFree() Time { return tl.nextFree }

// Busy returns the cumulative cycles this resource spent serving requests.
func (tl *Timeline) Busy() Time { return tl.busy }

// Served returns the number of requests this resource has served.
func (tl *Timeline) Served() int64 { return tl.served }

// Reset clears the timeline to an idle state at time zero.
func (tl *Timeline) Reset() { *tl = Timeline{} }

// Utilization returns busy cycles divided by the elapsed horizon.
func (tl *Timeline) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(tl.busy) / float64(horizon)
}
