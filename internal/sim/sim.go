// Package sim provides a small deterministic discrete-event simulation
// engine. It is the substrate on which the Cyclops-64 machine model
// (package c64) and the codelet runtime (package codelet) are built.
//
// The engine is intentionally single-threaded: determinism is a hard
// requirement for reproducing the paper's "fine worst" / "fine best"
// scheduling experiments, so all simulated concurrency is expressed as
// events ordered by (time, insertion sequence).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, measured in clock cycles.
type Time int64

// Event is a callback scheduled to run at a fixed simulated time.
type event struct {
	at  Time
	seq uint64
	fn  func(now Time)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use and starts at time 0.
type Engine struct {
	heap eventHeap
	now  Time
	seq  uint64
}

// NewEngine returns an engine starting at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.heap) }

// ScheduleAt registers fn to run at absolute time at. Scheduling in the
// past panics: it would silently corrupt causality in the model.
func (e *Engine) ScheduleAt(at Time, fn func(now Time)) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.heap, event{at: at, seq: e.seq, fn: fn})
}

// Schedule registers fn to run delay cycles from now.
func (e *Engine) Schedule(delay Time, fn func(now Time)) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// Step runs the earliest pending event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	ev.fn(e.now)
	return true
}

// Run processes events until none remain and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline and then advances
// the clock to deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
