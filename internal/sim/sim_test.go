package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.ScheduleAt(at, func(now Time) { order = append(order, now) })
	}
	e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event %d at %d, want %d", i, order[i], want[i])
		}
	}
}

func TestEngineTiesBreakByInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAt(42, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.ScheduleAt(10, func(now Time) {
		hits = append(hits, now)
		e.Schedule(5, func(now Time) { hits = append(hits, now) })
	})
	end := e.Run()
	if end != 15 {
		t.Fatalf("end = %d, want 15", end)
	}
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(5, func(Time) {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.Schedule(-1, func(Time) {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.ScheduleAt(10, func(Time) { ran++ })
	e.ScheduleAt(20, func(Time) { ran++ })
	e.ScheduleAt(30, func(Time) { ran++ })
	now := e.RunUntil(20)
	if now != 20 {
		t.Fatalf("RunUntil returned %d, want 20", now)
	}
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Advancing past all events reaches the deadline even with nothing to do.
	now = e.RunUntil(100)
	if now != 100 || ran != 3 {
		t.Fatalf("RunUntil(100) = %d (ran %d), want 100 (ran 3)", now, ran)
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine reported work")
	}
}

// Property: for any batch of scheduled times, the engine visits them in
// nondecreasing order and finishes at the maximum.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var seen []Time
		var max Time
		for _, r := range raw {
			at := Time(r)
			if at > max {
				max = at
			}
			e.ScheduleAt(at, func(now Time) { seen = append(seen, now) })
		}
		end := e.Run()
		if len(raw) > 0 && end != max {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineIdleStartsImmediately(t *testing.T) {
	var tl Timeline
	start, done := tl.Acquire(100, 25)
	if start != 100 || done != 125 {
		t.Fatalf("Acquire = (%d,%d), want (100,125)", start, done)
	}
}

func TestTimelineQueuesFIFO(t *testing.T) {
	var tl Timeline
	tl.Acquire(0, 10)
	start, done := tl.Acquire(0, 10)
	if start != 10 || done != 20 {
		t.Fatalf("second Acquire = (%d,%d), want (10,20)", start, done)
	}
	// Arriving after the frontier starts immediately.
	start, done = tl.Acquire(50, 5)
	if start != 50 || done != 55 {
		t.Fatalf("third Acquire = (%d,%d), want (50,55)", start, done)
	}
}

func TestTimelineBusyAccounting(t *testing.T) {
	var tl Timeline
	tl.Acquire(0, 10)
	tl.Acquire(0, 20)
	tl.Acquire(100, 5)
	if tl.Busy() != 35 {
		t.Fatalf("Busy() = %d, want 35", tl.Busy())
	}
	if tl.Served() != 3 {
		t.Fatalf("Served() = %d, want 3", tl.Served())
	}
	if got := tl.Utilization(350); got != 0.1 {
		t.Fatalf("Utilization = %v, want 0.1", got)
	}
}

func TestTimelineZeroService(t *testing.T) {
	var tl Timeline
	start, done := tl.Acquire(7, 0)
	if start != 7 || done != 7 {
		t.Fatalf("zero-service Acquire = (%d,%d), want (7,7)", start, done)
	}
}

func TestTimelineNegativeServicePanics(t *testing.T) {
	var tl Timeline
	defer func() {
		if recover() == nil {
			t.Fatal("negative service did not panic")
		}
	}()
	tl.Acquire(0, -1)
}

func TestTimelineReset(t *testing.T) {
	var tl Timeline
	tl.Acquire(0, 100)
	tl.Reset()
	if tl.NextFree() != 0 || tl.Busy() != 0 || tl.Served() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: total busy time equals the sum of service times, and the
// completion frontier never moves backward, for arbitrary arrival patterns.
func TestTimelineConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var tl Timeline
		var sum Time
		var now Time
		var lastDone Time
		for i := 0; i < 200; i++ {
			now += Time(rng.Intn(10))
			svc := Time(rng.Intn(20))
			sum += svc
			start, done := tl.Acquire(now, svc)
			if start < now {
				t.Fatalf("start %d before arrival %d", start, now)
			}
			if done < lastDone {
				t.Fatalf("completion moved backward: %d after %d", done, lastDone)
			}
			if done-start != svc {
				t.Fatalf("service stretched: %d want %d", done-start, svc)
			}
			lastDone = done
		}
		if tl.Busy() != sum {
			t.Fatalf("busy %d != service sum %d", tl.Busy(), sum)
		}
	}
}
