package ooc

import (
	"fmt"
	"strings"
)

// Policy orders the independent work items of one out-of-core phase:
// the strips a phase stages through RAM, and the segment fetches
// inside each strip. Reordering never changes the transform's output —
// every item reads and writes disjoint regions — only the sequence the
// I/O channels see, which is exactly the knob the paper's scheduling
// study turns: with FIFO, consecutive fetches land on consecutive file
// stripes and pile onto one channel at a time; the guided order spreads
// sibling groups across stripes the way the simulator's seeded-LIFO
// pool spreads codelets across DRAM banks. The per-channel prefetch
// counters (metrics.go) make the difference measurable.
//
// Order must return a permutation of [0, n); the plan validates it and
// refuses a policy that drops or repeats items.
type Policy interface {
	// Name identifies the policy in logs and flag values.
	Name() string
	// Order returns the visit order for n items as a permutation of
	// [0, n).
	Order(n int) []int
}

// fifoPolicy visits items in natural order — the baseline the guided
// order is measured against.
type fifoPolicy struct{}

// FIFO returns the natural-order policy.
func FIFO() Policy { return fifoPolicy{} }

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Order(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// guidedGroup is the sibling-group width of the guided policy: items
// are bundled in runs of this many adjacent indices (siblings share
// file locality the way the paper's sibling codelets share a parent),
// and the groups — not the items — are what the seed reorders.
const guidedGroup = 8

// guidedPolicy is the prefetch analogue of the paper's guided
// scheduling (seeded initial order + LIFO pool): sibling groups of
// adjacent items are visited in a seeded strided order so consecutive
// groups land on different file stripes, and items inside a group run
// last-in-first-out, keeping each group's locality burst intact.
type guidedPolicy struct {
	seed int
}

// Guided returns the seeded-LIFO sibling-group policy. Any seed is
// accepted; equal seeds give equal orders.
func Guided(seed int) Policy { return guidedPolicy{seed: seed} }

func (g guidedPolicy) Name() string { return fmt.Sprintf("guided[seed=%d]", g.seed) }

func (g guidedPolicy) Order(n int) []int {
	if n <= 0 {
		return nil
	}
	ngroups := (n + guidedGroup - 1) / guidedGroup
	// A stride coprime with the group count visits every group once.
	// Odd strides are coprime with the power-of-two group counts the
	// four-step geometry produces; for other counts, walk the stride
	// up until it is coprime.
	seed := g.seed % ngroups
	if seed < 0 {
		seed += ngroups
	}
	stride := 2*(seed/2) + 1 // odd, seed-derived
	for gcd(stride, ngroups) != 1 {
		stride += 2
	}
	order := make([]int, 0, n)
	gi := seed
	for k := 0; k < ngroups; k++ {
		hi := (gi + 1) * guidedGroup
		if hi > n {
			hi = n
		}
		for i := hi - 1; i >= gi*guidedGroup; i-- { // LIFO within the sibling group
			order = append(order, i)
		}
		gi = (gi + stride) % ngroups
	}
	return order
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ParsePolicy maps a flag value to a Policy: "fifo" (the default
// ordering) or "guided" (seeded-LIFO sibling groups; the seed argument
// applies only to it). Case-insensitive; "lifo" and "guided-lifo" are
// accepted aliases for "guided".
func ParsePolicy(name string, seed int) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "fifo":
		return FIFO(), nil
	case "guided", "lifo", "guided-lifo":
		return Guided(seed), nil
	default:
		return nil, fmt.Errorf("ooc: unknown prefetch policy %q (want fifo or guided)", name)
	}
}

// validOrder reports whether order is a permutation of [0, n).
func validOrder(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}
