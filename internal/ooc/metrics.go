package ooc

import (
	"fmt"

	"codeletfft/internal/metrics"
)

// meters holds the plan's pre-resolved instruments, so the I/O hot
// paths do a map-free atomic add per operation. The paper's thesis —
// imbalance, not throughput, is what limits FFTs — is what the
// per-channel split exists to show: every byte the plan moves is
// attributed to a modelled I/O channel by its file offset
// (channel = offset/stripe mod channels, a RAID-stripe/multi-queue-SSD
// model), and every time the compute loop outruns the prefetcher the
// stall is charged to the channel that eventually delivered the tile.
// A balanced schedule shows near-equal per-channel bytes and few
// stalls; a skewed one shows exactly where the I/O bottleneck sits.
type meters struct {
	channels int
	stripe   int64

	// Per-channel prefetch accounting.
	readBytesCh  []*metrics.Counter // ooc_prefetch_read_bytes_ch<i>_total
	writeBytesCh []*metrics.Counter // ooc_prefetch_write_bytes_ch<i>_total
	stallsCh     []*metrics.Counter // ooc_prefetch_stalls_ch<i>_total
	stallNsCh    []*metrics.Counter // ooc_prefetch_stall_ns_ch<i>_total

	// Prefetcher-side stalls: the reader wanted a tile buffer but
	// compute/writeback still owned them all.
	poolStalls  *metrics.Counter
	poolStallNs *metrics.Counter

	// Phase totals.
	colsReadBytes  *metrics.Counter
	colsWriteBytes *metrics.Counter
	colsNs         *metrics.Counter
	rowsReadBytes  *metrics.Counter
	rowsWriteBytes *metrics.Counter
	rowsNs         *metrics.Counter

	segsWritten *metrics.Counter
	segsRead    *metrics.Counter
	corrupt     *metrics.Counter
	transforms  *metrics.Counter
}

func newMeters(reg *metrics.Registry, channels int, stripe int64) *meters {
	m := &meters{
		channels:       channels,
		stripe:         stripe,
		poolStalls:     reg.Counter("ooc_pool_stalls_total"),
		poolStallNs:    reg.Counter("ooc_pool_stall_ns_total"),
		colsReadBytes:  reg.Counter("ooc_phase_cols_read_bytes_total"),
		colsWriteBytes: reg.Counter("ooc_phase_cols_write_bytes_total"),
		colsNs:         reg.Counter("ooc_phase_cols_ns_total"),
		rowsReadBytes:  reg.Counter("ooc_phase_rows_read_bytes_total"),
		rowsWriteBytes: reg.Counter("ooc_phase_rows_write_bytes_total"),
		rowsNs:         reg.Counter("ooc_phase_rows_ns_total"),
		segsWritten:    reg.Counter("ooc_segments_written_total"),
		segsRead:       reg.Counter("ooc_segments_read_total"),
		corrupt:        reg.Counter("ooc_segments_corrupt_total"),
		transforms:     reg.Counter("ooc_transforms_total"),
	}
	for i := 0; i < channels; i++ {
		m.readBytesCh = append(m.readBytesCh, reg.Counter(fmt.Sprintf("ooc_prefetch_read_bytes_ch%d_total", i)))
		m.writeBytesCh = append(m.writeBytesCh, reg.Counter(fmt.Sprintf("ooc_prefetch_write_bytes_ch%d_total", i)))
		m.stallsCh = append(m.stallsCh, reg.Counter(fmt.Sprintf("ooc_prefetch_stalls_ch%d_total", i)))
		m.stallNsCh = append(m.stallNsCh, reg.Counter(fmt.Sprintf("ooc_prefetch_stall_ns_ch%d_total", i)))
	}
	return m
}

// chanOf maps a byte offset to its modelled I/O channel.
func (m *meters) chanOf(byteOff int64) int {
	c := int(byteOff/m.stripe) % m.channels
	if c < 0 {
		c += m.channels
	}
	return c
}

// onRead/onWrite account one positioned I/O against its channel and
// the active phase's byte counter.
func (m *meters) onRead(byteOff, n int64, phase *metrics.Counter) {
	phase.Add(n)
	m.readBytesCh[m.chanOf(byteOff)].Add(n)
}

func (m *meters) onWrite(byteOff, n int64, phase *metrics.Counter) {
	phase.Add(n)
	m.writeBytesCh[m.chanOf(byteOff)].Add(n)
}

// onStall charges a compute-side wait to the channel of the strip that
// eventually arrived (identified by the byte offset of its first
// fetch).
func (m *meters) onStall(byteOff, ns int64) {
	c := m.chanOf(byteOff)
	m.stallsCh[c].Inc()
	m.stallNsCh[c].Add(ns)
}
