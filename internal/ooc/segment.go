package ooc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"unsafe"
)

// Spill-segment on-disk format. A spill file is a flat array of
// equally-sized segments; segment i lives at byte offset
// i·(segHeaderLen + segElems·16). Each segment is a 64-byte header
// followed by segElems complex128 payload values in native byte order
// (spill files never leave the machine that wrote them; the header is
// explicit little-endian so a corrupt or foreign file is rejected, not
// misread).
//
//	[0:4)   magic "OOCS"
//	[4:6)   format version (currently 1)
//	[6:8)   reserved, must be zero
//	[8:16)  segment index
//	[16:24) payload element count
//	[24:28) CRC-32C of the payload bytes
//	[28:32) CRC-32C of header bytes [0:28)
//	[32:64) zero padding to a 64-byte boundary
//
// Every read verifies both checksums, the magic, the version, and that
// the header's index/element count match what the reader expects, so a
// truncated, bit-flipped, or wrong-version segment surfaces as
// ErrCorruptSegment — never as silently wrong transform output.
const (
	segMagic     uint32 = 0x53434F4F // "OOCS", little-endian
	segVersion   uint16 = 1
	segHeaderLen        = 64
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptSegment reports a spill segment that failed integrity
// verification: short file, bad magic or version, header/payload
// checksum mismatch, or a header describing a different segment than
// the one requested. Errors returned by segment reads wrap it, so
// callers test with errors.Is(err, ErrCorruptSegment).
var ErrCorruptSegment = errors.New("ooc: corrupt spill segment")

// segHeader is the decoded form of the 64-byte segment header.
type segHeader struct {
	index      uint64
	elems      uint64
	payloadCRC uint32
}

// encodeSegHeader renders h into dst (len ≥ segHeaderLen), computing
// the header checksum. Padding bytes are zeroed.
func encodeSegHeader(dst []byte, h segHeader) {
	for i := range dst[:segHeaderLen] {
		dst[i] = 0
	}
	binary.LittleEndian.PutUint32(dst[0:4], segMagic)
	binary.LittleEndian.PutUint16(dst[4:6], segVersion)
	binary.LittleEndian.PutUint64(dst[8:16], h.index)
	binary.LittleEndian.PutUint64(dst[16:24], h.elems)
	binary.LittleEndian.PutUint32(dst[24:28], h.payloadCRC)
	binary.LittleEndian.PutUint32(dst[28:32], crc32.Checksum(dst[0:28], castagnoli))
}

// decodeSegHeader validates and decodes a segment header. The returned
// error (if any) names the failed check; it does not wrap
// ErrCorruptSegment itself — readSegment adds the segment's identity
// and the sentinel.
func decodeSegHeader(b []byte) (segHeader, error) {
	var h segHeader
	if len(b) < segHeaderLen {
		return h, fmt.Errorf("header truncated: %d of %d bytes", len(b), segHeaderLen)
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != segMagic {
		return h, fmt.Errorf("bad magic %#08x", m)
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != segVersion {
		return h, fmt.Errorf("unsupported segment version %d (want %d)", v, segVersion)
	}
	if r := binary.LittleEndian.Uint16(b[6:8]); r != 0 {
		return h, fmt.Errorf("nonzero reserved field %#04x", r)
	}
	if want, got := binary.LittleEndian.Uint32(b[28:32]), crc32.Checksum(b[0:28], castagnoli); want != got {
		return h, fmt.Errorf("header checksum mismatch: stored %#08x computed %#08x", want, got)
	}
	h.index = binary.LittleEndian.Uint64(b[8:16])
	h.elems = binary.LittleEndian.Uint64(b[16:24])
	h.payloadCRC = binary.LittleEndian.Uint32(b[24:28])
	return h, nil
}

// complexBytes reinterprets a complex128 slice as its underlying bytes
// (native order). The spill layer stages tile-sized payloads through
// pread/pwrite without copying them through a byte buffer.
func complexBytes(v []complex128) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*16)
}

// spill is one spill file: nsegs segments of segElems complex values
// each. writeSegment and readSegment are safe for concurrent use on
// distinct (or even the same) segments — they issue positioned I/O and
// share no mutable state.
type spill struct {
	f        *os.File
	path     string
	segElems int
	nsegs    int
}

// segSize returns the on-disk footprint of one segment.
func (sp *spill) segSize() int64 { return segHeaderLen + int64(sp.segElems)*16 }

// segOff returns the byte offset of segment idx.
func (sp *spill) segOff(idx int) int64 { return int64(idx) * sp.segSize() }

// newSpill creates a spill file for nsegs segments of segElems values
// under dir (os.TempDir() when empty), preallocating the full size so
// later positioned writes cannot fail on a full disk mid-phase.
func newSpill(dir string, segElems, nsegs int) (*spill, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "ooc-spill-*.seg")
	if err != nil {
		return nil, fmt.Errorf("ooc: creating spill file: %w", err)
	}
	sp := &spill{f: f, path: f.Name(), segElems: segElems, nsegs: nsegs}
	if err := f.Truncate(int64(nsegs) * sp.segSize()); err != nil {
		sp.Close()
		return nil, fmt.Errorf("ooc: preallocating spill file %s: %w", sp.path, err)
	}
	return sp, nil
}

// openSpill opens an existing spill file read-only with the given
// geometry — the recovery/inspection path (and the corruption tests').
func openSpill(path string, segElems, nsegs int) (*spill, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &spill{f: f, path: path, segElems: segElems, nsegs: nsegs}, nil
}

// Close closes and removes the spill file. Safe to call twice.
func (sp *spill) Close() error {
	if sp.f == nil {
		return nil
	}
	err := sp.f.Close()
	sp.f = nil
	if rmErr := os.Remove(sp.path); err == nil && !os.IsNotExist(rmErr) {
		err = rmErr
	}
	return err
}

// writeSegment checksums and writes segment idx. len(data) must be
// segElems. It returns the bytes written, for I/O accounting.
func (sp *spill) writeSegment(idx int, data []complex128) (int64, error) {
	if idx < 0 || idx >= sp.nsegs {
		return 0, fmt.Errorf("ooc: segment index %d out of range [0,%d)", idx, sp.nsegs)
	}
	if len(data) != sp.segElems {
		return 0, fmt.Errorf("ooc: segment payload %d elems, want %d", len(data), sp.segElems)
	}
	payload := complexBytes(data)
	var hdr [segHeaderLen]byte
	encodeSegHeader(hdr[:], segHeader{
		index:      uint64(idx),
		elems:      uint64(len(data)),
		payloadCRC: crc32.Checksum(payload, castagnoli),
	})
	off := sp.segOff(idx)
	if _, err := sp.f.WriteAt(hdr[:], off); err != nil {
		return 0, fmt.Errorf("ooc: writing segment %d header: %w", idx, err)
	}
	if _, err := sp.f.WriteAt(payload, off+segHeaderLen); err != nil {
		return 0, fmt.Errorf("ooc: writing segment %d payload: %w", idx, err)
	}
	return segHeaderLen + int64(len(payload)), nil
}

// corrupt wraps a verification failure with the sentinel and the
// segment's identity.
func (sp *spill) corrupt(idx int, err error) error {
	return fmt.Errorf("%w: %s segment %d: %v", ErrCorruptSegment, filepath.Base(sp.path), idx, err)
}

// readSegment reads and verifies segment idx into dst (len segElems).
// Any integrity failure — truncation, bit flips in header or payload,
// a wrong format version, or a header naming a different segment —
// returns an error wrapping ErrCorruptSegment; dst contents are
// unspecified on error and must not be used. It returns the bytes
// read, for I/O accounting.
func (sp *spill) readSegment(idx int, dst []complex128) (int64, error) {
	if idx < 0 || idx >= sp.nsegs {
		return 0, fmt.Errorf("ooc: segment index %d out of range [0,%d)", idx, sp.nsegs)
	}
	if len(dst) != sp.segElems {
		return 0, fmt.Errorf("ooc: segment read buffer %d elems, want %d", len(dst), sp.segElems)
	}
	off := sp.segOff(idx)
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(sp.f, off, segHeaderLen), hdr[:]); err != nil {
		return 0, sp.corrupt(idx, fmt.Errorf("reading header: %w", err))
	}
	h, err := decodeSegHeader(hdr[:])
	if err != nil {
		return 0, sp.corrupt(idx, err)
	}
	if h.index != uint64(idx) {
		return 0, sp.corrupt(idx, fmt.Errorf("header names segment %d", h.index))
	}
	if h.elems != uint64(sp.segElems) {
		return 0, sp.corrupt(idx, fmt.Errorf("header claims %d elems, want %d", h.elems, sp.segElems))
	}
	payload := complexBytes(dst)
	if _, err := io.ReadFull(io.NewSectionReader(sp.f, off+segHeaderLen, int64(len(payload))), payload); err != nil {
		return 0, sp.corrupt(idx, fmt.Errorf("reading payload: %w", err))
	}
	if got := crc32.Checksum(payload, castagnoli); got != h.payloadCRC {
		return 0, sp.corrupt(idx, fmt.Errorf("payload checksum mismatch: stored %#08x computed %#08x", h.payloadCRC, got))
	}
	return segHeaderLen + int64(len(payload)), nil
}
