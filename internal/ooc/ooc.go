// Package ooc executes Fourier transforms on datasets larger than RAM:
// a Bailey four-step decomposition (internal/fft.FourStepPlan's math)
// whose intermediate N2×N1 matrix lives in a checksummed, file-backed
// spill store instead of memory, streamed through a bounded pool of
// in-RAM tiles with double-buffered asynchronous prefetch.
//
// The transform runs as two staged phases over the spill:
//
//	cols: gather S2 input columns (strided reads) → N1-point FFT each +
//	      four-step twiddle scale → pack into S2×S1 block segments
//	rows: fetch a block-column of segments (verified, contiguous reads)
//	      → transpose into S1 rows → N2-point FFT each → scatter the
//	      final transpose into the output (strided writes)
//
// Every per-element operation — the sub-FFTs (Plan.TransformWith), the
// twiddle factors (TwiddleScaleDirect), the inverse's conjugate/scale —
// is the same expression the in-core FourStepPlan evaluates, so at
// sizes where both run, the out-of-core result is bitwise identical to
// the in-core four-step. The twiddles are computed on the fly because a
// Twiddles(N) table is 8·N bytes — 2 GiB at N=2^28, itself beyond the
// memory budget the staging exists to enforce.
//
// Memory is governed by an explicit budget: the tile height is the
// largest power of two whose three pipeline tiles (prefetch, compute,
// writeback) plus staging buffers fit, so peak RSS tracks the budget
// rather than N. Prefetch order is a pluggable Policy (FIFO vs the
// paper-echoing seeded-LIFO sibling groups) and all I/O is accounted
// per modelled channel in internal/metrics, so I/O-load imbalance is
// measured, not assumed — the paper's bank-balance thesis one level
// down the memory hierarchy.
package ooc

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"codeletfft/internal/fft"
	"codeletfft/internal/metrics"
)

// Default knob values.
const (
	// DefaultMemoryBudget bounds the plan's resident tile and staging
	// buffers: 256 MiB.
	DefaultMemoryBudget int64 = 256 << 20
	// DefaultChannels is the number of modelled I/O channels byte
	// counters are split across.
	DefaultChannels = 4
	// DefaultStripe is the byte stripe width of the channel model: a
	// file offset's channel is (offset/stripe) mod channels.
	DefaultStripe int64 = 1 << 20
	// DefaultIOWorkers is the number of goroutines the staging layer
	// uses for gather/scatter and segment I/O inside each pipeline
	// stage.
	DefaultIOWorkers = 4
)

// Executor offloads a tile's vector FFTs to an external compute fabric
// — the cluster coordinator implements it with shard RPCs so an
// out-of-core plan's segments fan out across workers. Both methods
// transform vecs in place; vecs holds len(vecs)/vecLen contiguous
// vectors. ExecCols must forward-FFT every vector and apply the
// four-step twiddle scale ω_totalN^{(startVec+v)·k}; ExecRows must
// forward-FFT every vector. A remote executor trades the local path's
// bitwise identity for distribution: workers choose their own kernels,
// so results match to rounding, like every other cluster path.
type Executor interface {
	ExecCols(ctx context.Context, vecs []complex128, vecLen, startVec, totalN int) error
	ExecRows(ctx context.Context, vecs []complex128, vecLen int) error
}

// config is the resolved option set.
type config struct {
	spillDir  string
	budget    int64
	tileVecs  int
	workers   int
	ioWorkers int
	channels  int
	stripe    int64
	policy    Policy
	reg       *metrics.Registry
	factor    func(n int) (int, int)
	exec      Executor
}

// Option configures NewPlan.
type Option func(*config)

// WithSpillDir places spill files under dir (default os.TempDir()).
func WithSpillDir(dir string) Option { return func(c *config) { c.spillDir = dir } }

// WithMemoryBudget bounds the plan's resident buffers to about b bytes
// (default DefaultMemoryBudget). The tile height is derived from it;
// budgets too small for even single-vector tiles fail NewPlan.
func WithMemoryBudget(b int64) Option { return func(c *config) { c.budget = b } }

// WithTileVecs pins the tile height (vectors staged per tile) instead
// of deriving it from the memory budget. It must be a power of two;
// it is clamped to the plan's factor lengths.
func WithTileVecs(v int) Option { return func(c *config) { c.tileVecs = v } }

// WithWorkers sets the FFT compute goroutines per tile (default
// GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithIOWorkers sets the staging goroutines per pipeline stage
// (default DefaultIOWorkers).
func WithIOWorkers(n int) Option { return func(c *config) { c.ioWorkers = n } }

// WithChannels sets how many modelled I/O channels the byte and stall
// counters are split across (default DefaultChannels).
func WithChannels(n int) Option { return func(c *config) { c.channels = n } }

// WithStripe sets the channel model's byte stripe width (default
// DefaultStripe).
func WithStripe(b int64) Option { return func(c *config) { c.stripe = b } }

// WithPolicy selects the prefetch scheduling policy (default FIFO()).
func WithPolicy(p Policy) Option { return func(c *config) { c.policy = p } }

// WithRegistry collects the plan's instruments in r instead of a
// private registry.
func WithRegistry(r *metrics.Registry) Option { return func(c *config) { c.reg = r } }

// WithFactor overrides the N = N1·N2 split (default near-square).
func WithFactor(f func(n int) (int, int)) Option { return func(c *config) { c.factor = f } }

// WithExecutor offloads tile compute to e (see Executor); nil keeps
// the local engine.
func WithExecutor(e Executor) Option { return func(c *config) { c.exec = e } }

// nearSquareFactor splits a power-of-two n into the most balanced
// power-of-two pair n1 ≤ n2.
func nearSquareFactor(n int) (int, int) {
	logN := fft.Log2(n)
	l1 := logN / 2
	return 1 << l1, 1 << (logN - l1)
}

// tileCost estimates the resident bytes of a run with tile height s:
// three pipeline tiles of s·lmax elements, plus two staging-buffer
// sets (segment pack/fetch, s·s each) and two small gather/scatter
// stagers per I/O worker.
func tileCost(s, lmax int64, ioWorkers int) int64 {
	iow := int64(ioWorkers)
	return 3*s*lmax*16 + 2*iow*s*s*16 + 2*iow*s*16
}

// Plan is an out-of-core FFT plan for N = N1·N2 complex points. A Plan
// is immutable after construction; one plan may run concurrent
// transforms (each run creates its own spill file and buffers), though
// sharing one memory budget across concurrent runs multiplies resident
// usage accordingly.
type Plan struct {
	n, n1, n2 int
	s1, s2    int // spill block geometry: segments hold S2×S1 elements

	col, row   *fft.Plan
	wCol, wRow []complex128

	// Scratch recycling per sub-plan shape: the compute fan-out grabs
	// one per in-flight vector.
	colPool, rowPool *sync.Pool

	cfg config
	met *meters
}

// NewPlan builds an out-of-core plan for n-point transforms. n must be
// a power of two ≥ 4 (both four-step factors ≥ 2); errors wrap
// fft.ErrUnsupportedLength for other lengths.
func NewPlan(n int, opts ...Option) (*Plan, error) {
	cfg := config{
		budget:    DefaultMemoryBudget,
		ioWorkers: DefaultIOWorkers,
		channels:  DefaultChannels,
		stripe:    DefaultStripe,
		policy:    FIFO(),
		factor:    nearSquareFactor,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ioWorkers <= 0 {
		cfg.ioWorkers = DefaultIOWorkers
	}
	if cfg.channels <= 0 {
		cfg.channels = DefaultChannels
	}
	if cfg.stripe <= 0 {
		cfg.stripe = DefaultStripe
	}
	if cfg.policy == nil {
		cfg.policy = FIFO()
	}
	if cfg.factor == nil {
		cfg.factor = nearSquareFactor
	}
	if cfg.reg == nil {
		cfg.reg = metrics.NewRegistry()
	}
	if fft.Log2(n) < 2 {
		return nil, fmt.Errorf("%w: out-of-core plans need a power of two ≥ 4, got %d", fft.ErrUnsupportedLength, n)
	}
	n1, n2 := cfg.factor(n)
	if n1*n2 != n || fft.Log2(n1) < 1 || fft.Log2(n2) < 1 {
		return nil, fmt.Errorf("%w: factorization %d×%d invalid for N=%d", fft.ErrUnsupportedLength, n1, n2, n)
	}
	lmax := int64(max(n1, n2))
	smax := min(n1, n2)
	s := cfg.tileVecs
	if s > 0 {
		if s&(s-1) != 0 {
			return nil, fmt.Errorf("ooc: tile height %d is not a power of two", s)
		}
		s = min(s, smax)
	} else {
		if tileCost(1, lmax, cfg.ioWorkers) > cfg.budget {
			return nil, fmt.Errorf("ooc: memory budget %d B cannot hold even single-vector tiles for N=%d×%d (need %d B)",
				cfg.budget, n1, n2, tileCost(1, lmax, cfg.ioWorkers))
		}
		s = 1
		for next := 2; next <= smax && tileCost(int64(next), lmax, cfg.ioWorkers) <= cfg.budget; next *= 2 {
			s = next
		}
	}
	col, err := fft.NewPlan(n1, min(64, n1))
	if err != nil {
		return nil, err
	}
	row, err := fft.NewPlan(n2, min(64, n2))
	if err != nil {
		return nil, err
	}
	return &Plan{
		n: n, n1: n1, n2: n2,
		s1: min(s, n1), s2: min(s, n2),
		col: col, row: row,
		wCol:    fft.Twiddles(n1),
		wRow:    fft.Twiddles(n2),
		colPool: &sync.Pool{New: func() any { return fft.NewScratch(col) }},
		rowPool: &sync.Pool{New: func() any { return fft.NewScratch(row) }},
		cfg:     cfg,
		met:     newMeters(cfg.reg, cfg.channels, cfg.stripe),
	}, nil
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Factors returns the four-step split N1 ≤ N2 (unless overridden).
func (p *Plan) Factors() (n1, n2 int) { return p.n1, p.n2 }

// TileVecs returns the staged vectors per tile in the (cols, rows)
// phases — the knob the memory budget resolves.
func (p *Plan) TileVecs() (s2, s1 int) { return p.s2, p.s1 }

// SpillBytes returns the on-disk footprint of one transform's spill
// store, headers included.
func (p *Plan) SpillBytes() int64 {
	segs := int64(p.n2/p.s2) * int64(p.n1/p.s1)
	return segs * (segHeaderLen + int64(p.s1)*int64(p.s2)*16)
}

// Policy returns the plan's prefetch scheduling policy.
func (p *Plan) Policy() Policy { return p.cfg.policy }

// Registry returns the registry collecting the plan's instruments.
func (p *Plan) Registry() *metrics.Registry { return p.cfg.reg }

// String describes the plan geometry.
func (p *Plan) String() string {
	return fmt.Sprintf("ooc[N=%d=%d×%d tile=%d×%d policy=%s]", p.n, p.n1, p.n2, p.s2, p.s1, p.cfg.policy.Name())
}

// Transform applies the forward FFT in place, staging through the
// spill store exactly as the file path does — so at RAM-co-runnable
// sizes the result can be compared bit for bit with the in-core
// four-step. len(data) must be N.
func (p *Plan) Transform(data []complex128) error {
	return p.TransformCtx(context.Background(), data)
}

// TransformCtx is Transform with cancellation: between I/O and compute
// steps the run observes ctx and unwinds, leaving data torn but
// resources released.
func (p *Plan) TransformCtx(ctx context.Context, data []complex128) error {
	if len(data) != p.n {
		return fmt.Errorf("%w: data has %d elements, plan wants %d", fft.ErrLengthMismatch, len(data), p.n)
	}
	st := memStore{data}
	return p.run(ctx, st, st, false)
}

// Inverse applies the inverse FFT in place (conjugation identity +
// 1/N scale, the same per-element expressions as the in-core inverse).
func (p *Plan) Inverse(data []complex128) error {
	return p.InverseCtx(context.Background(), data)
}

// InverseCtx is Inverse with cancellation.
func (p *Plan) InverseCtx(ctx context.Context, data []complex128) error {
	if len(data) != p.n {
		return fmt.Errorf("%w: data has %d elements, plan wants %d", fft.ErrLengthMismatch, len(data), p.n)
	}
	st := memStore{data}
	return p.run(ctx, st, st, true)
}

// TransformBatch transforms every row of batch sequentially — each row
// is a full staged run; there is no cross-row batching to amortize,
// the spill I/O dominates. It exists so *Plan satisfies the facade's
// Plan interface.
func (p *Plan) TransformBatch(batch [][]complex128) error {
	for i, row := range batch {
		if err := p.Transform(row); err != nil {
			return fmt.Errorf("batch[%d]: %w", i, err)
		}
	}
	return nil
}

// InverseBatch inverse-transforms every row of batch sequentially.
func (p *Plan) InverseBatch(batch [][]complex128) error {
	for i, row := range batch {
		if err := p.Inverse(row); err != nil {
			return fmt.Errorf("batch[%d]: %w", i, err)
		}
	}
	return nil
}

// TransformFile transforms N points from srcPath into dstPath, both
// flat native-order complex128 files. dstPath is created (or truncated)
// at N·16 bytes; passing the same path for both transforms the file in
// place. The source length must be exactly N·16 bytes.
func (p *Plan) TransformFile(ctx context.Context, dstPath, srcPath string) error {
	return p.runFile(ctx, dstPath, srcPath, false)
}

// InverseFile is TransformFile for the inverse transform.
func (p *Plan) InverseFile(ctx context.Context, dstPath, srcPath string) error {
	return p.runFile(ctx, dstPath, srcPath, true)
}

func (p *Plan) runFile(ctx context.Context, dstPath, srcPath string, inverse bool) error {
	src, err := os.Open(srcPath)
	if err != nil {
		return fmt.Errorf("ooc: opening input: %w", err)
	}
	defer src.Close()
	fi, err := src.Stat()
	if err != nil {
		return err
	}
	if want := int64(p.n) * 16; fi.Size() != want {
		return fmt.Errorf("ooc: input %s is %d bytes, want %d (N=%d complex128)", srcPath, fi.Size(), want, p.n)
	}
	var dst *os.File
	if filepath.Clean(dstPath) == filepath.Clean(srcPath) {
		// In-place: the cols phase fully drains the input into the
		// spill before the rows phase writes a single output element,
		// so one file can serve both ends.
		dst, err = os.OpenFile(dstPath, os.O_RDWR, 0o644)
	} else {
		dst, err = os.OpenFile(dstPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err == nil {
			err = dst.Truncate(int64(p.n) * 16)
		}
	}
	if err != nil {
		return fmt.Errorf("ooc: opening output: %w", err)
	}
	defer dst.Close()
	return p.run(ctx, fileStore{dst}, fileStore{src}, inverse)
}

// run stages one transform: cols phase into the spill, rows phase out
// of it. The spill is created per run and removed on return, success
// or not.
func (p *Plan) run(ctx context.Context, dst, src Store, inverse bool) error {
	nsegs := (p.n2 / p.s2) * (p.n1 / p.s1)
	sp, err := newSpill(p.cfg.spillDir, p.s1*p.s2, nsegs)
	if err != nil {
		return err
	}
	defer sp.Close()

	start := time.Now()
	if err := p.runPhase(ctx, p.colsPhase(sp, src, inverse)); err != nil {
		return fmt.Errorf("ooc: cols phase: %w", err)
	}
	p.met.colsNs.Add(time.Since(start).Nanoseconds())

	start = time.Now()
	if err := p.runPhase(ctx, p.rowsPhase(sp, dst, inverse)); err != nil {
		return fmt.Errorf("ooc: rows phase: %w", err)
	}
	p.met.rowsNs.Add(time.Since(start).Nanoseconds())
	p.met.transforms.Inc()
	return nil
}

// phase describes one staged pass for the pipeline driver: strips
// items of tileLen elements flowing fill → compute → drain.
type phase struct {
	strips  int
	tileLen int
	// stripOff maps a strip to the byte offset of its first fetch, for
	// channel attribution of prefetch stalls.
	stripOff func(strip int) int64
	fill     func(ctx context.Context, strip int, tile []complex128) error
	compute  func(ctx context.Context, strip int, tile []complex128) error
	drain    func(ctx context.Context, strip int, tile []complex128) error
}

// tileRef is a tile in flight through the pipeline.
type tileRef struct {
	buf   []complex128
	strip int
}

// runPhase drives a phase's strips through a three-stage pipeline —
// prefetch (fill), compute, writeback (drain) — over a bounded pool of
// three tiles, so the reader stays one strip ahead of compute
// (double-buffered prefetch) while the writer drains the strip behind
// it. Strip order comes from the plan's scheduling policy; strips are
// independent, so ordering affects I/O timing and channel balance, not
// the result.
func (p *Plan) runPhase(ctx context.Context, ph phase) error {
	order := p.cfg.policy.Order(ph.strips)
	if !validOrder(order, ph.strips) {
		return fmt.Errorf("ooc: policy %s returned an invalid order for %d strips", p.cfg.policy.Name(), ph.strips)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	const nbuf = 3
	free := make(chan []complex128, nbuf)
	for i := 0; i < nbuf; i++ {
		free <- make([]complex128, ph.tileLen)
	}
	compCh := make(chan tileRef)
	drainCh := make(chan tileRef)

	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // prefetcher
		defer wg.Done()
		defer close(compCh)
		for _, s := range order {
			var buf []complex128
			waitStart := time.Now()
			select {
			case buf = <-free:
			case <-ctx.Done():
				return
			}
			if wait := time.Since(waitStart); wait > 0 {
				p.met.poolStalls.Inc()
				p.met.poolStallNs.Add(wait.Nanoseconds())
			}
			if err := ph.fill(ctx, s, buf); err != nil {
				fail(err)
				return
			}
			select {
			case compCh <- tileRef{buf, s}:
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // writeback
		defer wg.Done()
		for t := range drainCh {
			// After a failure, keep recycling tiles so compute never
			// blocks; the work itself is skipped via ctx.
			if ctx.Err() == nil {
				if err := ph.drain(ctx, t.strip, t.buf); err != nil {
					fail(err)
				}
			}
			free <- t.buf
		}
	}()

	// Compute runs on the caller's goroutine (its internal vector loop
	// fans out across the plan's workers).
compute:
	for {
		waitStart := time.Now()
		select {
		case t, ok := <-compCh:
			if !ok {
				break compute
			}
			if wait := time.Since(waitStart); wait > 0 {
				p.met.onStall(ph.stripOff(t.strip), wait.Nanoseconds())
			}
			if ctx.Err() == nil {
				if err := ph.compute(ctx, t.strip, t.buf); err != nil {
					fail(err)
				}
			}
			drainCh <- t
		case <-ctx.Done():
			// Drain the prefetcher's remaining sends so it can exit.
			t, ok := <-compCh
			if !ok {
				break compute
			}
			drainCh <- t
		}
	}
	close(drainCh)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// parallelIdx runs fn(worker, idx) for every idx in [0, n) across w
// goroutines pulling indices from a shared counter, optionally through
// a policy-ordered index list. It returns the first error.
func parallelIdx(ctx context.Context, w, n int, order []int, fn func(worker, idx int) error) error {
	if w > n {
		w = n
	}
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || firstErr.Load() != nil || ctx.Err() != nil {
					return
				}
				idx := i
				if order != nil {
					idx = order[i]
				}
				if err := fn(worker, idx); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	return ctx.Err()
}

// colsPhase stages strip i of S2 input columns: strided gather from
// src, N1-point FFT + twiddle scale per column, pack into S2×S1 block
// segments of the spill. The tile is an S2×N1 row-major slab (one
// transformed column per row).
func (p *Plan) colsPhase(sp *spill, src Store, inverse bool) phase {
	n1, n2, s1, s2 := p.n1, p.n2, p.s1, p.s2
	blocksPerStrip := n1 / s1
	iow := p.cfg.ioWorkers

	// Per-goroutine staging, allocated once per phase: gather stagers
	// for fill, pack buffers for drain (fill and drain run in
	// different pipeline goroutines, so the sets are distinct).
	gatherStage := make([][]complex128, iow)
	for i := range gatherStage {
		gatherStage[i] = make([]complex128, s2)
	}
	packBuf := make([][]complex128, iow)
	for i := range packBuf {
		packBuf[i] = make([]complex128, s1*s2)
	}

	return phase{
		strips:   n2 / s2,
		tileLen:  s2 * n1,
		stripOff: func(strip int) int64 { return int64(strip) * int64(s2) * 16 },
		fill: func(ctx context.Context, strip int, tile []complex128) error {
			base := int64(strip) * int64(s2)
			return parallelIdx(ctx, iow, n1, nil, func(worker, j1 int) error {
				stage := gatherStage[worker]
				off := int64(j1)*int64(n2) + base
				if err := src.ReadVec(stage, off); err != nil {
					return err
				}
				p.met.onRead(off*16, int64(s2)*16, p.met.colsReadBytes)
				if inverse {
					for c, v := range stage {
						tile[c*n1+j1] = complex(real(v), -imag(v))
					}
				} else {
					for c, v := range stage {
						tile[c*n1+j1] = v
					}
				}
				return nil
			})
		},
		compute: func(ctx context.Context, strip int, tile []complex128) error {
			if p.cfg.exec != nil {
				return p.cfg.exec.ExecCols(ctx, tile, n1, strip*s2, p.n)
			}
			return parallelIdx(ctx, p.cfg.workers, s2, nil, func(worker, c int) error {
				_ = worker
				sc := p.colPool.Get().(*fft.Scratch)
				defer p.colPool.Put(sc)
				v := tile[c*n1 : (c+1)*n1]
				p.col.TransformWith(v, p.wCol, sc)
				fft.TwiddleScaleDirect(v, strip*s2+c, p.n)
				return nil
			})
		},
		drain: func(ctx context.Context, strip int, tile []complex128) error {
			return parallelIdx(ctx, iow, blocksPerStrip, nil, func(worker, j int) error {
				buf := packBuf[worker]
				for c := 0; c < s2; c++ {
					copy(buf[c*s1:(c+1)*s1], tile[c*n1+j*s1:c*n1+(j+1)*s1])
				}
				idx := strip*blocksPerStrip + j
				nb, err := sp.writeSegment(idx, buf)
				if err != nil {
					return err
				}
				p.met.segsWritten.Inc()
				p.met.onWrite(sp.segOff(idx), nb, p.met.colsWriteBytes)
				return nil
			})
		},
	}
}

// rowsPhase stages strip j of S1 output rows: fetch and verify the
// strip's block-column of segments (order chosen by the policy),
// transpose into an S1×N2 slab, N2-point FFT per row (+ the inverse's
// conjugate/scale), scatter the final transpose into dst.
func (p *Plan) rowsPhase(sp *spill, dst Store, inverse bool) phase {
	n1, n2, s1, s2 := p.n1, p.n2, p.s1, p.s2
	blocksPerStrip := n1 / s1
	segStrips := n2 / s2
	iow := p.cfg.ioWorkers
	inv := 1 / float64(p.n)

	fetchBuf := make([][]complex128, iow)
	for i := range fetchBuf {
		fetchBuf[i] = make([]complex128, s1*s2)
	}
	scatterStage := make([][]complex128, iow)
	for i := range scatterStage {
		scatterStage[i] = make([]complex128, s1)
	}

	return phase{
		strips:   blocksPerStrip,
		tileLen:  s1 * n2,
		stripOff: func(strip int) int64 { return sp.segOff(strip) },
		fill: func(ctx context.Context, strip int, tile []complex128) error {
			// The segment fetch order inside the strip is also
			// policy-scheduled: this is the prefetch ordering the
			// per-channel counters measure.
			order := p.cfg.policy.Order(segStrips)
			if !validOrder(order, segStrips) {
				return fmt.Errorf("ooc: policy %s returned an invalid order for %d segments", p.cfg.policy.Name(), segStrips)
			}
			return parallelIdx(ctx, iow, segStrips, order, func(worker, i int) error {
				buf := fetchBuf[worker]
				idx := i*blocksPerStrip + strip
				nb, err := sp.readSegment(idx, buf)
				if err != nil {
					p.met.corrupt.Inc()
					return err
				}
				p.met.segsRead.Inc()
				p.met.onRead(sp.segOff(idx), nb, p.met.rowsReadBytes)
				for c := 0; c < s2; c++ {
					colBase := i * s2
					for r := 0; r < s1; r++ {
						tile[r*n2+colBase+c] = buf[c*s1+r]
					}
				}
				return nil
			})
		},
		compute: func(ctx context.Context, strip int, tile []complex128) error {
			if p.cfg.exec != nil {
				if err := p.cfg.exec.ExecRows(ctx, tile, n2); err != nil {
					return err
				}
				if inverse {
					for i, v := range tile {
						tile[i] = complex(real(v)*inv, -imag(v)*inv)
					}
				}
				return nil
			}
			return parallelIdx(ctx, p.cfg.workers, s1, nil, func(worker, r int) error {
				_ = worker
				sc := p.rowPool.Get().(*fft.Scratch)
				defer p.rowPool.Put(sc)
				v := tile[r*n2 : (r+1)*n2]
				p.row.TransformWith(v, p.wRow, sc)
				if inverse {
					for k, x := range v {
						v[k] = complex(real(x)*inv, -imag(x)*inv)
					}
				}
				return nil
			})
		},
		drain: func(ctx context.Context, strip int, tile []complex128) error {
			base := int64(strip) * int64(s1)
			return parallelIdx(ctx, iow, n2, nil, func(worker, k2 int) error {
				stage := scatterStage[worker]
				for r := 0; r < s1; r++ {
					stage[r] = tile[r*n2+k2]
				}
				off := int64(k2)*int64(n1) + base
				if err := dst.WriteVec(stage, off); err != nil {
					return err
				}
				p.met.onWrite(off*16, int64(s1)*16, p.met.rowsWriteBytes)
				return nil
			})
		},
	}
}
