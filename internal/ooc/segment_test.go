package ooc

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// writeTestSpill creates a spill with deterministic payloads and
// returns it plus the expected segment contents.
func writeTestSpill(t *testing.T, segElems, nsegs int) (*spill, [][]complex128) {
	t.Helper()
	sp, err := newSpill(t.TempDir(), segElems, nsegs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sp.Close() })
	want := make([][]complex128, nsegs)
	for i := range want {
		want[i] = make([]complex128, segElems)
		for k := range want[i] {
			want[i][k] = complex(float64(i), float64(k))
		}
		if _, err := sp.writeSegment(i, want[i]); err != nil {
			t.Fatalf("writeSegment(%d): %v", i, err)
		}
	}
	return sp, want
}

// TestSpillRoundTrip pins the happy path: every segment reads back
// exactly, and the reported byte counts match the on-disk footprint.
func TestSpillRoundTrip(t *testing.T) {
	const segElems, nsegs = 32, 5
	sp, want := writeTestSpill(t, segElems, nsegs)
	buf := make([]complex128, segElems)
	for i := 0; i < nsegs; i++ {
		nb, err := sp.readSegment(i, buf)
		if err != nil {
			t.Fatalf("readSegment(%d): %v", i, err)
		}
		if nb != sp.segSize() {
			t.Fatalf("segment %d: %d bytes read, want %d", i, nb, sp.segSize())
		}
		for k := range buf {
			if buf[k] != want[i][k] {
				t.Fatalf("segment %d elem %d: %v != %v", i, k, buf[k], want[i][k])
			}
		}
	}
	if _, err := sp.writeSegment(nsegs, want[0]); err == nil {
		t.Fatal("writeSegment accepted an out-of-range index")
	}
	if _, err := sp.readSegment(-1, buf); err == nil {
		t.Fatal("readSegment accepted a negative index")
	}
	if _, err := sp.writeSegment(0, want[0][:1]); err == nil {
		t.Fatal("writeSegment accepted a short payload")
	}
}

// corruptAt flips one bit of the spill file at the given offset.
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentCorruptionDetected is the integrity satellite: truncated
// files, bit flips anywhere (magic, version, index, length, checksums,
// payload), and wrong-version headers must all surface as
// ErrCorruptSegment — never as garbage data handed to the FFT.
func TestSegmentCorruptionDetected(t *testing.T) {
	const segElems, nsegs = 16, 3
	segBytes := int64(segHeaderLen + segElems*16)

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		seg     int
	}{
		{"truncated-mid-payload", func(t *testing.T, path string) {
			if err := os.Truncate(path, segBytes*3-40); err != nil {
				t.Fatal(err)
			}
		}, 2},
		{"truncated-mid-header", func(t *testing.T, path string) {
			if err := os.Truncate(path, segBytes*2+10); err != nil {
				t.Fatal(err)
			}
		}, 2},
		{"magic-flip", func(t *testing.T, path string) { corruptAt(t, path, 0) }, 0},
		{"version-flip", func(t *testing.T, path string) { corruptAt(t, path, segBytes+4) }, 1},
		{"reserved-flip", func(t *testing.T, path string) { corruptAt(t, path, segBytes+6) }, 1},
		{"index-flip", func(t *testing.T, path string) { corruptAt(t, path, segBytes+8) }, 1},
		{"elems-flip", func(t *testing.T, path string) { corruptAt(t, path, 16) }, 0},
		{"payload-crc-flip", func(t *testing.T, path string) { corruptAt(t, path, 24) }, 0},
		{"header-crc-flip", func(t *testing.T, path string) { corruptAt(t, path, 28) }, 0},
		{"payload-flip", func(t *testing.T, path string) {
			corruptAt(t, path, segBytes*2+segHeaderLen+77)
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, _ := writeTestSpill(t, segElems, nsegs)
			// Work on a copy so each case corrupts fresh bytes.
			raw, err := os.ReadFile(sp.path)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "copy.seg")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, path)
			cp, err := openSpill(path, segElems, nsegs)
			if err != nil {
				t.Fatal(err)
			}
			defer cp.Close()
			buf := make([]complex128, segElems)
			_, err = cp.readSegment(tc.seg, buf)
			if err == nil {
				t.Fatal("corrupt segment read back without error")
			}
			if !errors.Is(err, ErrCorruptSegment) {
				t.Fatalf("err = %v, does not wrap ErrCorruptSegment", err)
			}
		})
	}
}

// TestSegmentPaddingUncovered pins the actual coverage boundary: bytes
// [32:64) are declared padding and are not integrity-checked, so a
// flip there must NOT fail the read (the format's documented claim is
// header fields + payload, not the pad).
func TestSegmentPaddingUncovered(t *testing.T) {
	const segElems, nsegs = 8, 1
	sp, want := writeTestSpill(t, segElems, nsegs)
	raw, err := os.ReadFile(sp.path)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pad.seg")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	corruptAt(t, path, 40)
	cp, err := openSpill(path, segElems, nsegs)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	buf := make([]complex128, segElems)
	if _, err := cp.readSegment(0, buf); err != nil {
		t.Fatalf("padding flip failed the read: %v", err)
	}
	for k := range buf {
		if buf[k] != want[0][k] {
			t.Fatalf("elem %d corrupted by padding flip", k)
		}
	}
}

// TestSpillCloseRemoves pins that Close deletes the spill file and is
// idempotent.
func TestSpillCloseRemoves(t *testing.T) {
	sp, _ := writeTestSpill(t, 4, 2)
	path := sp.path
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spill file still present after Close: %v", err)
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// FuzzSegmentHeader feeds arbitrary bytes to the header decoder: it
// must never panic, and every accepted header must survive an
// encode/decode round trip bit for bit.
func FuzzSegmentHeader(f *testing.F) {
	// Seed with a valid header and near-valid mutants.
	valid := make([]byte, segHeaderLen)
	encodeSegHeader(valid, segHeader{index: 3, elems: 1024, payloadCRC: 0xDEADBEEF})
	f.Add(append([]byte(nil), valid...))
	mut := append([]byte(nil), valid...)
	mut[5] ^= 0xFF // version
	f.Add(mut)
	f.Add(valid[:31])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := decodeSegHeader(b)
		if err != nil {
			return
		}
		// Accepted headers must checksum-verify and re-encode to the
		// same canonical 64 bytes (with padding zeroed).
		var re [segHeaderLen]byte
		encodeSegHeader(re[:], h)
		if got, want := binary.LittleEndian.Uint32(re[28:32]), crc32.Checksum(re[0:28], castagnoli); got != want {
			t.Fatalf("re-encoded header checksum %#08x, want %#08x", got, want)
		}
		h2, err := decodeSegHeader(re[:])
		if err != nil {
			t.Fatalf("re-encoded header rejected: %v", err)
		}
		if h2 != h {
			t.Fatalf("header round trip changed: %+v != %+v", h2, h)
		}
	})
}
