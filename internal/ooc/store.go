package ooc

import (
	"fmt"
	"io"
	"os"
)

// Store is a flat array of complex128 values addressed by element
// offset — the input and output endpoints of an out-of-core transform.
// Implementations must support concurrent calls on disjoint ranges;
// the staging phases issue positioned reads and writes from several
// I/O goroutines at once.
type Store interface {
	// ReadVec fills dst from the off-th element onward.
	ReadVec(dst []complex128, off int64) error
	// WriteVec stores src at the off-th element onward.
	WriteVec(src []complex128, off int64) error
}

// fileStore is a Store over an *os.File of raw native-order complex128
// values (no header — the deliverable format fftooc and the cluster
// hook exchange). Positioned I/O only, so it is concurrency-safe.
type fileStore struct {
	f *os.File
}

func (s fileStore) ReadVec(dst []complex128, off int64) error {
	b := complexBytes(dst)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, off*16, int64(len(b))), b); err != nil {
		return fmt.Errorf("ooc: reading %d elems at %d from %s: %w", len(dst), off, s.f.Name(), err)
	}
	return nil
}

func (s fileStore) WriteVec(src []complex128, off int64) error {
	if _, err := s.f.WriteAt(complexBytes(src), off*16); err != nil {
		return fmt.Errorf("ooc: writing %d elems at %d to %s: %w", len(src), off, s.f.Name(), err)
	}
	return nil
}

// memStore is a Store over an in-RAM slice — the path Transform and
// Inverse take at co-runnable sizes, so the staged execution can be
// compared bit for bit against the in-core four-step.
type memStore struct {
	data []complex128
}

func (s memStore) ReadVec(dst []complex128, off int64) error {
	if off < 0 || off+int64(len(dst)) > int64(len(s.data)) {
		return fmt.Errorf("ooc: mem read [%d,%d) outside [0,%d)", off, off+int64(len(dst)), len(s.data))
	}
	copy(dst, s.data[off:])
	return nil
}

func (s memStore) WriteVec(src []complex128, off int64) error {
	if off < 0 || off+int64(len(src)) > int64(len(s.data)) {
		return fmt.Errorf("ooc: mem write [%d,%d) outside [0,%d)", off, off+int64(len(src)), len(s.data))
	}
	copy(s.data[off:], src)
	return nil
}
