package ooc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codeletfft/internal/fft"
	"codeletfft/internal/metrics"
)

// randomData returns deterministic pseudo-random input.
func randomData(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return data
}

// fourStepRef computes the in-core four-step reference transform.
func fourStepRef(t *testing.T, data []complex128, inverse bool) []complex128 {
	t.Helper()
	n1, n2 := nearSquareFactor(len(data))
	fs, err := fft.NewFourStep(n1, n2)
	if err != nil {
		t.Fatalf("NewFourStep(%d,%d): %v", n1, n2, err)
	}
	out := append([]complex128(nil), data...)
	if inverse {
		fs.InverseTransform(out)
	} else {
		fs.Transform(out)
	}
	return out
}

// TestTransformBitwiseVsFourStep is the tentpole's core claim: at
// co-runnable sizes, the staged out-of-core execution produces bit for
// bit the same output as the in-core four-step — across sizes, tile
// heights (including ones forcing many strips and many segments per
// strip), both scheduling policies, and both directions.
func TestTransformBitwiseVsFourStep(t *testing.T) {
	for _, tc := range []struct {
		n, tile int
		policy  Policy
	}{
		{4, 1, FIFO()},
		{8, 1, FIFO()},
		{64, 2, FIFO()},
		{64, 8, Guided(3)},
		{256, 4, FIFO()},
		{256, 4, Guided(1)},
		{1 << 10, 8, FIFO()},
		{1 << 10, 8, Guided(7)},
		{1 << 12, 16, Guided(5)},
		{1 << 14, 32, FIFO()},
	} {
		for _, inverse := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/tile=%d/%s/inverse=%v", tc.n, tc.tile, tc.policy.Name(), inverse)
			t.Run(name, func(t *testing.T) {
				p, err := NewPlan(tc.n,
					WithTileVecs(tc.tile),
					WithPolicy(tc.policy),
					WithSpillDir(t.TempDir()),
					WithWorkers(3),
					WithIOWorkers(2),
				)
				if err != nil {
					t.Fatalf("NewPlan: %v", err)
				}
				data := randomData(tc.n, int64(tc.n))
				want := fourStepRef(t, data, inverse)
				got := append([]complex128(nil), data...)
				if inverse {
					err = p.Inverse(got)
				} else {
					err = p.Transform(got)
				}
				if err != nil {
					t.Fatalf("transform: %v", err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("bin %d: ooc %v != four-step %v (not bitwise identical)", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestPolicyIndependence pins that FIFO and guided schedules produce
// bitwise identical output — ordering moves I/O, never data.
func TestPolicyIndependence(t *testing.T) {
	const n = 1 << 10
	data := randomData(n, 99)
	var first []complex128
	for _, pol := range []Policy{FIFO(), Guided(0), Guided(3), Guided(11)} {
		p, err := NewPlan(n, WithTileVecs(4), WithPolicy(pol), WithSpillDir(t.TempDir()))
		if err != nil {
			t.Fatalf("NewPlan(%s): %v", pol.Name(), err)
		}
		got := append([]complex128(nil), data...)
		if err := p.Transform(got); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if first == nil {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("%s: bin %d differs from FIFO output", pol.Name(), i)
			}
		}
	}
}

// TestRoundTrip checks Transform∘Inverse ≈ identity at a non-trivial
// size through the full staged path.
func TestRoundTrip(t *testing.T) {
	const n = 1 << 12
	p, err := NewPlan(n, WithTileVecs(8), WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	data := randomData(n, 7)
	got := append([]complex128(nil), data...)
	if err := p.Transform(got); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if d := cmplx.Abs(got[i] - data[i]); d > 1e-9 {
			t.Fatalf("round trip bin %d off by %g", i, d)
		}
	}
}

// TestTransformFile runs the file-to-file path and compares against the
// in-memory path, including the in-place (dst == src) mode.
func TestTransformFile(t *testing.T) {
	const n = 1 << 10
	dir := t.TempDir()
	data := randomData(n, 13)
	want := fourStepRef(t, data, false)

	src := filepath.Join(dir, "in.c128")
	if err := os.WriteFile(src, append([]byte(nil), complexBytes(data)...), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(n, WithTileVecs(4), WithSpillDir(dir))
	if err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(dir, "out.c128")
	if err := p.TransformFile(context.Background(), dst, src); err != nil {
		t.Fatalf("TransformFile: %v", err)
	}
	checkFile := func(path string, want []complex128) {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) != n*16 {
			t.Fatalf("%s: %d bytes, want %d", path, len(raw), n*16)
		}
		got := make([]complex128, n)
		copy(complexBytes(got), raw)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s bin %d: %v != %v", path, i, got[i], want[i])
			}
		}
	}
	checkFile(dst, want)

	// In place: transform src over itself.
	if err := p.TransformFile(context.Background(), src, src); err != nil {
		t.Fatalf("in-place TransformFile: %v", err)
	}
	checkFile(src, want)

	// Inverse brings the in-place file back to the input.
	if err := p.InverseFile(context.Background(), src, src); err != nil {
		t.Fatalf("InverseFile: %v", err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, n)
	copy(complexBytes(got), raw)
	for i := range got {
		if d := cmplx.Abs(got[i] - data[i]); d > 1e-9 {
			t.Fatalf("file round trip bin %d off by %g", i, d)
		}
	}

	// Wrong-sized input is rejected up front.
	short := filepath.Join(dir, "short.c128")
	if err := os.WriteFile(short, make([]byte, 160), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.TransformFile(context.Background(), dst, short); err == nil {
		t.Fatal("TransformFile accepted a short input file")
	}
}

// TestBatchMethods covers the facade-compat batch entry points.
func TestBatchMethods(t *testing.T) {
	const n = 256
	p, err := NewPlan(n, WithTileVecs(4), WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]complex128{randomData(n, 1), randomData(n, 2)}
	want := [][]complex128{fourStepRef(t, batch[0], false), fourStepRef(t, batch[1], false)}
	if err := p.TransformBatch(batch); err != nil {
		t.Fatal(err)
	}
	for r := range batch {
		for i := range batch[r] {
			if batch[r][i] != want[r][i] {
				t.Fatalf("batch[%d] bin %d mismatch", r, i)
			}
		}
	}
	if err := p.TransformBatch([][]complex128{make([]complex128, n-1)}); err == nil {
		t.Fatal("TransformBatch accepted a wrong-length row")
	}
}

// TestContextCancel pins that a pre-cancelled context aborts the run
// with ctx.Err and releases the spill file.
func TestContextCancel(t *testing.T) {
	const n = 1 << 10
	dir := t.TempDir()
	p, err := NewPlan(n, WithTileVecs(2), WithSpillDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.TransformCtx(ctx, make([]complex128, n)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "ooc-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("spill files leaked after cancel: %v", left)
	}
}

// TestPlanValidation covers the constructor's error paths.
func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(100); !errors.Is(err, fft.ErrUnsupportedLength) {
		t.Fatalf("N=100: err = %v, want ErrUnsupportedLength", err)
	}
	if _, err := NewPlan(2); !errors.Is(err, fft.ErrUnsupportedLength) {
		t.Fatalf("N=2: err = %v, want ErrUnsupportedLength (needs two factors ≥ 2)", err)
	}
	if _, err := NewPlan(1<<10, WithTileVecs(3)); err == nil {
		t.Fatal("non-power-of-two tile accepted")
	}
	if _, err := NewPlan(1<<10, WithMemoryBudget(1024)); err == nil {
		t.Fatal("impossible memory budget accepted")
	}
	p, err := NewPlan(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(make([]complex128, 7)); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Fatalf("short data: err = %v, want ErrLengthMismatch", err)
	}
}

// TestBudgetDerivation checks the tile height honours the memory
// budget: derived tiles fit tileCost, and a bigger budget never shrinks
// the tile.
func TestBudgetDerivation(t *testing.T) {
	const n = 1 << 16 // 256×256
	prev := 0
	for _, budget := range []int64{1 << 20, 4 << 20, 16 << 20, 64 << 20} {
		p, err := NewPlan(n, WithMemoryBudget(budget), WithIOWorkers(2))
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		s2, s1 := p.TileVecs()
		if s1 != s2 {
			t.Fatalf("square split should give square tiles, got %d×%d", s2, s1)
		}
		n1, n2 := p.Factors()
		lmax := int64(max(n1, n2))
		if s2 < min(n1, n2) && tileCost(int64(s2)*2, lmax, 2) <= budget {
			t.Fatalf("budget %d: tile %d not maximal", budget, s2)
		}
		if tileCost(int64(s2), lmax, 2) > budget {
			t.Fatalf("budget %d: tile %d exceeds it", budget, s2)
		}
		if s2 < prev {
			t.Fatalf("tile shrank (%d → %d) with a growing budget", prev, s2)
		}
		prev = s2
	}
}

// TestMetricsPopulated runs one transform per policy and checks the
// per-channel prefetch counters and phase byte counters land in the
// registry with the expected totals.
func TestMetricsPopulated(t *testing.T) {
	const n = 1 << 12
	for _, pol := range []Policy{FIFO(), Guided(3)} {
		t.Run(pol.Name(), func(t *testing.T) {
			reg := metrics.NewRegistry()
			p, err := NewPlan(n,
				WithTileVecs(8),
				WithPolicy(pol),
				WithRegistry(reg),
				WithSpillDir(t.TempDir()),
				WithChannels(4),
				WithStripe(4096),
			)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Transform(make([]complex128, n)); err != nil {
				t.Fatal(err)
			}
			snap := reg.Snapshot()
			vals := map[string]int64{}
			for name, v := range snap {
				vals[name] = int64(v)
			}
			dataBytes := int64(n) * 16
			if got := vals["ooc_phase_cols_read_bytes_total"]; got != dataBytes {
				t.Fatalf("cols read %d bytes, want %d", got, dataBytes)
			}
			if got := vals["ooc_phase_rows_write_bytes_total"]; got != dataBytes {
				t.Fatalf("rows wrote %d bytes, want %d", got, dataBytes)
			}
			spillBytes := p.SpillBytes()
			if got := vals["ooc_phase_cols_write_bytes_total"]; got != spillBytes {
				t.Fatalf("cols wrote %d spill bytes, want %d", got, spillBytes)
			}
			if got := vals["ooc_phase_rows_read_bytes_total"]; got != spillBytes {
				t.Fatalf("rows read %d spill bytes, want %d", got, spillBytes)
			}
			// Every channel's read counter exists; together they account
			// for every byte read in both phases.
			var chSum int64
			for c := 0; c < 4; c++ {
				name := fmt.Sprintf("ooc_prefetch_read_bytes_ch%d_total", c)
				v, ok := vals[name]
				if !ok {
					t.Fatalf("counter %s missing from registry", name)
				}
				chSum += v
			}
			if want := dataBytes + spillBytes; chSum != want {
				t.Fatalf("per-channel reads sum to %d, want %d", chSum, want)
			}
			if vals["ooc_transforms_total"] != 1 {
				t.Fatalf("ooc_transforms_total = %d, want 1", vals["ooc_transforms_total"])
			}
			nsegs := int64(vals["ooc_segments_written_total"])
			if nsegs == 0 || vals["ooc_segments_read_total"] != nsegs {
				t.Fatalf("segments written %d read %d, want equal and nonzero",
					nsegs, vals["ooc_segments_read_total"])
			}
		})
	}
}

// TestPolicies pins the policy contract: both orders are permutations
// for awkward sizes, guided is seed-deterministic, differs from FIFO on
// large-enough inputs, and ParsePolicy maps flag spellings.
func TestPolicies(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 8, 9, 16, 64, 100, 1 << 10} {
		for _, pol := range []Policy{FIFO(), Guided(0), Guided(5), Guided(-3), Guided(1 << 20)} {
			if order := pol.Order(n); !validOrder(order, n) {
				t.Fatalf("%s.Order(%d) = %v is not a permutation", pol.Name(), n, order)
			}
		}
	}
	a := Guided(5).Order(256)
	b := Guided(5).Order(256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Guided order is not deterministic for equal seeds")
		}
	}
	fifo := FIFO().Order(256)
	same := true
	for i := range a {
		if a[i] != fifo[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Guided(5) order equals FIFO on 256 items")
	}

	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "fifo"}, {"fifo", "fifo"}, {"FIFO", "fifo"},
		{"guided", "guided[seed=9]"}, {"lifo", "guided[seed=9]"}, {"guided-lifo", "guided[seed=9]"},
	} {
		p, err := ParsePolicy(tc.in, 9)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", tc.in, err)
		}
		if p.Name() != tc.want {
			t.Fatalf("ParsePolicy(%q).Name() = %q, want %q", tc.in, p.Name(), tc.want)
		}
	}
	if _, err := ParsePolicy("bogus", 0); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("ParsePolicy(bogus) err = %v, want named error", err)
	}
}

// TestExecutorHook checks WithExecutor routes tile compute through the
// external engine: a local executor that replays the plan's own math
// must reproduce the default path bitwise.
func TestExecutorHook(t *testing.T) {
	const n = 1 << 10
	data := randomData(n, 21)
	want := fourStepRef(t, data, false)

	exec := &localExec{t: t}
	p, err := NewPlan(n, WithTileVecs(4), WithSpillDir(t.TempDir()), WithExecutor(exec))
	if err != nil {
		t.Fatal(err)
	}
	got := append([]complex128(nil), data...)
	if err := p.Transform(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bin %d: executor path %v != reference %v", i, got[i], want[i])
		}
	}
	if exec.cols == 0 || exec.rows == 0 {
		t.Fatalf("executor not exercised: cols=%d rows=%d", exec.cols, exec.rows)
	}

	// Inverse through the executor round-trips too (the conjugate/scale
	// stays plan-side).
	if err := p.Inverse(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if d := cmplx.Abs(got[i] - data[i]); d > 1e-9 {
			t.Fatalf("executor round trip bin %d off by %g", i, d)
		}
	}
}

// localExec implements Executor with the plan's own serial math.
type localExec struct {
	t          *testing.T
	cols, rows int
}

func (e *localExec) ExecCols(ctx context.Context, vecs []complex128, vecLen, startVec, totalN int) error {
	e.cols++
	pl, err := fft.NewPlan(vecLen, min(64, vecLen))
	if err != nil {
		return err
	}
	w := fft.Twiddles(vecLen)
	sc := fft.NewScratch(pl)
	for v := 0; v*vecLen < len(vecs); v++ {
		col := vecs[v*vecLen : (v+1)*vecLen]
		pl.TransformWith(col, w, sc)
		fft.TwiddleScaleDirect(col, startVec+v, totalN)
	}
	return nil
}

func (e *localExec) ExecRows(ctx context.Context, vecs []complex128, vecLen int) error {
	e.rows++
	pl, err := fft.NewPlan(vecLen, min(64, vecLen))
	if err != nil {
		return err
	}
	w := fft.Twiddles(vecLen)
	sc := fft.NewScratch(pl)
	for v := 0; v*vecLen < len(vecs); v++ {
		pl.TransformWith(vecs[v*vecLen:(v+1)*vecLen], w, sc)
	}
	return nil
}

// TestToneLargeStreaming is the scaled-down shape of the N=2^28
// acceptance check: a pure tone x[j] = ω^{f·j} transforms to N·δ[k−f],
// verifiable without an in-core reference.
func TestToneLargeStreaming(t *testing.T) {
	const n = 1 << 14
	const f = 1234
	p, err := NewPlan(n, WithTileVecs(16), WithSpillDir(t.TempDir()), WithPolicy(Guided(1)))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]complex128, n)
	for j := range data {
		ang := 2 * math.Pi * float64((int64(f)*int64(j))%n) / float64(n)
		data[j] = cmplx.Exp(complex(0, ang))
	}
	if err := p.Transform(data); err != nil {
		t.Fatal(err)
	}
	for k := range data {
		want := complex(0, 0)
		if k == f {
			want = complex(float64(n), 0)
		}
		if d := cmplx.Abs(data[k] - want); d > 1e-6*float64(n) {
			t.Fatalf("tone bin %d: got %v, want %v", k, data[k], want)
		}
	}
}
