package codelet

import (
	"testing"

	"codeletfft/internal/sim"
)

func TestPoolFIFO(t *testing.T) {
	p := NewPool(FIFO)
	for i := int32(0); i < 5; i++ {
		p.Push(Ref{0, i})
	}
	for i := int32(0); i < 5; i++ {
		r, ok := p.Pop()
		if !ok || r.Index != i {
			t.Fatalf("FIFO pop %d = %v,%v", i, r, ok)
		}
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("pop from empty pool succeeded")
	}
}

func TestPoolLIFO(t *testing.T) {
	p := NewPool(LIFO)
	for i := int32(0); i < 5; i++ {
		p.Push(Ref{0, i})
	}
	for i := int32(4); i >= 0; i-- {
		r, ok := p.Pop()
		if !ok || r.Index != i {
			t.Fatalf("LIFO pop = %v,%v want index %d", r, ok, i)
		}
	}
}

func TestPoolFIFOCompaction(t *testing.T) {
	p := NewPool(FIFO)
	for round := 0; round < 5; round++ {
		for i := int32(0); i < 2000; i++ {
			p.Push(Ref{int32(round), i})
		}
		for i := int32(0); i < 2000; i++ {
			r, ok := p.Pop()
			if !ok || r.Index != i || r.Stage != int32(round) {
				t.Fatalf("round %d pop %d = %v", round, i, r)
			}
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
}

func TestPoolMixedPushPop(t *testing.T) {
	p := NewPool(FIFO)
	p.PushAll([]Ref{{0, 0}, {0, 1}})
	p.Pop()
	p.Push(Ref{0, 2})
	want := []int32{1, 2}
	for _, w := range want {
		r, _ := p.Pop()
		if r.Index != w {
			t.Fatalf("got %d, want %d", r.Index, w)
		}
	}
}

// fixedExec returns an executor that takes a constant number of cycles.
func fixedExec(cost sim.Time, log *[]Ref) Executor {
	return func(tu int, ref Ref, start sim.Time, finish func(sim.Time)) {
		if log != nil {
			*log = append(*log, ref)
		}
		finish(start + cost)
	}
}

func TestRuntimeIndependentTasksParallelize(t *testing.T) {
	// 8 independent 100-cycle tasks on 4 TUs with no overheads: two
	// waves, makespan 200.
	eng := sim.NewEngine()
	rt := NewRuntime(eng, Config{Threads: 4}, FIFO, fixedExec(100, nil), nil)
	seed := make([]Ref, 8)
	for i := range seed {
		seed[i] = Ref{0, int32(i)}
	}
	end := rt.RunPhase(seed)
	if end != 200 {
		t.Fatalf("makespan = %d, want 200", end)
	}
	if rt.Stats().Executed != 8 {
		t.Fatalf("executed = %d, want 8", rt.Stats().Executed)
	}
}

func TestRuntimeSingleThreadSerializes(t *testing.T) {
	eng := sim.NewEngine()
	var order []Ref
	rt := NewRuntime(eng, Config{Threads: 1}, FIFO, fixedExec(10, &order), nil)
	end := rt.RunPhase([]Ref{{0, 0}, {0, 1}, {0, 2}})
	if end != 30 {
		t.Fatalf("makespan = %d, want 30", end)
	}
	for i, r := range order {
		if r.Index != int32(i) {
			t.Fatalf("FIFO order violated: %v", order)
		}
	}
}

func TestRuntimeLIFOOrder(t *testing.T) {
	eng := sim.NewEngine()
	var order []Ref
	rt := NewRuntime(eng, Config{Threads: 1}, LIFO, fixedExec(10, &order), nil)
	rt.RunPhase([]Ref{{0, 0}, {0, 1}, {0, 2}})
	want := []int32{2, 1, 0}
	for i, r := range order {
		if r.Index != want[i] {
			t.Fatalf("LIFO order violated: %v", order)
		}
	}
}

// chainComplete builds a linear dependence chain of length n: each
// codelet's completion readies the next.
func chainComplete(n int32) OnComplete {
	return func(ref Ref, emit func(Ref)) int {
		if ref.Index+1 < n {
			emit(Ref{0, ref.Index + 1})
		}
		return 1
	}
}

func TestRuntimeDependenceChain(t *testing.T) {
	// A chain cannot parallelize: 5 tasks × 10 cycles regardless of TUs.
	eng := sim.NewEngine()
	rt := NewRuntime(eng, Config{Threads: 8}, FIFO, fixedExec(10, nil), chainComplete(5))
	end := rt.RunPhase([]Ref{{0, 0}})
	if end != 50 {
		t.Fatalf("chain makespan = %d, want 50", end)
	}
	if rt.Stats().Executed != 5 {
		t.Fatalf("executed = %d, want 5", rt.Stats().Executed)
	}
	// Idle TUs must have been woken to steal the successors (at least
	// one wakeup happens since all TUs go idle while the chain runs).
	if rt.Stats().IdleWakeups == 0 {
		t.Fatal("no idle wakeups recorded on a dependence chain")
	}
}

func TestRuntimeFanInCounter(t *testing.T) {
	// Diamond: two roots fan into one child gated by a counter of 2.
	eng := sim.NewEngine()
	var order []Ref
	count := 0
	complete := func(ref Ref, emit func(Ref)) int {
		if ref.Stage == 0 {
			count++
			if count == 2 {
				emit(Ref{1, 0})
			}
			return 1
		}
		return 0
	}
	rt := NewRuntime(eng, Config{Threads: 2}, FIFO, fixedExec(10, &order), complete)
	end := rt.RunPhase([]Ref{{0, 0}, {0, 1}})
	if end != 20 {
		t.Fatalf("diamond makespan = %d, want 20", end)
	}
	if len(order) != 3 || order[2].Stage != 1 {
		t.Fatalf("child did not run last: %v", order)
	}
}

func TestRuntimeOverheadAccounting(t *testing.T) {
	// One TU, two independent tasks, PoolAccess 5: seeding charges 2×5,
	// then each dispatch pops with a 5-cycle lock hold.
	eng := sim.NewEngine()
	rt := NewRuntime(eng, Config{Threads: 1, PoolAccess: 5}, FIFO, fixedExec(10, nil), nil)
	end := rt.RunPhase([]Ref{{0, 0}, {0, 1}})
	// t=10 seed; pop done 15, exec done 25; pop done 30, exec done 40.
	if end != 40 {
		t.Fatalf("makespan = %d, want 40", end)
	}
	if rt.Stats().PoolOps != 4 {
		t.Fatalf("pool ops = %d, want 4", rt.Stats().PoolOps)
	}
}

func TestRuntimeCounterUpdateCost(t *testing.T) {
	eng := sim.NewEngine()
	complete := func(ref Ref, emit func(Ref)) int { return 3 }
	rt := NewRuntime(eng, Config{Threads: 1, CounterUpdate: 7}, FIFO, fixedExec(10, nil), complete)
	end := rt.RunPhase([]Ref{{0, 0}})
	// exec done at 10, +3×7 counter updates → TU redispatches at 31,
	// finds nothing; engine ends at 31.
	if end != 31 {
		t.Fatalf("makespan = %d, want 31", end)
	}
	if rt.Stats().CounterUpdates != 3 {
		t.Fatalf("counter updates = %d, want 3", rt.Stats().CounterUpdates)
	}
}

func TestRuntimePoolLockSerializes(t *testing.T) {
	// 4 TUs popping simultaneously with PoolAccess 10 serialize on the
	// lock: pops complete at 10,20,30,40, each exec takes 100.
	eng := sim.NewEngine()
	rt := NewRuntime(eng, Config{Threads: 4, PoolAccess: 10}, FIFO, fixedExec(100, nil), nil)
	seed := []Ref{{0, 0}, {0, 1}, {0, 2}, {0, 3}}
	end := rt.RunPhase(seed)
	// Seeding: 4×10 = 40. Lock grants at 50,60,70,80; exec ends 150..180.
	if end != 180 {
		t.Fatalf("makespan = %d, want 180", end)
	}
	if rt.Stats().LockWait == 0 {
		t.Fatal("expected nonzero lock wait")
	}
}

func TestRuntimeBarrierAdvancesClock(t *testing.T) {
	eng := sim.NewEngine()
	rt := NewRuntime(eng, Config{Threads: 2}, FIFO, fixedExec(10, nil), nil)
	rt.RunPhase([]Ref{{0, 0}})
	before := eng.Now()
	rt.Barrier(128)
	if eng.Now() != before+128 {
		t.Fatalf("barrier advanced to %d, want %d", eng.Now(), before+128)
	}
	// A second phase resumes after the barrier.
	end := rt.RunPhase([]Ref{{1, 0}})
	if end < before+128+10 {
		t.Fatalf("second phase ended at %d, too early", end)
	}
}

func TestRuntimeDeterminism(t *testing.T) {
	run := func() (sim.Time, []Ref) {
		eng := sim.NewEngine()
		var order []Ref
		n := int32(200)
		complete := func(ref Ref, emit func(Ref)) int {
			if ref.Stage == 0 && ref.Index%2 == 0 && ref.Index+1 < n {
				emit(Ref{1, ref.Index})
			}
			return 1
		}
		exec := func(tu int, ref Ref, start sim.Time, finish func(sim.Time)) {
			finish(start + sim.Time(13+ref.Index%7))
		}
		rt := NewRuntime(eng, Config{Threads: 16, PoolAccess: 2, CounterUpdate: 1}, LIFO, exec, complete)
		seed := make([]Ref, n)
		for i := range seed {
			seed[i] = Ref{0, int32(i)}
		}
		end := rt.RunPhase(seed)
		return end, order
	}
	e1, _ := run()
	e2, _ := run()
	if e1 != e2 {
		t.Fatalf("nondeterministic makespan: %d vs %d", e1, e2)
	}
}

func TestRuntimeRejectsZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero threads accepted")
		}
	}()
	NewRuntime(sim.NewEngine(), Config{}, FIFO, nil, nil)
}

func TestRuntimeExecutorTimeTravelPanics(t *testing.T) {
	eng := sim.NewEngine()
	bad := func(tu int, ref Ref, start sim.Time, finish func(sim.Time)) { finish(start - 1) }
	rt := NewRuntime(eng, Config{Threads: 1}, FIFO, bad, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("executor finishing before start not caught")
		}
	}()
	rt.RunPhase([]Ref{{0, 0}})
}
