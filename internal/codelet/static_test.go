package codelet

import (
	"testing"

	"codeletfft/internal/sim"
)

func TestStaticCyclicAssignment(t *testing.T) {
	eng := sim.NewEngine()
	got := make(map[int][]int32) // tu -> task indices in execution order
	exec := func(tu int, ref Ref, start sim.Time, finish func(sim.Time)) {
		got[tu] = append(got[tu], ref.Index)
		finish(start + 10)
	}
	rt := NewRuntime(eng, Config{Threads: 3}, FIFO, exec, nil)
	seed := make([]Ref, 8)
	for i := range seed {
		seed[i] = Ref{0, int32(i)}
	}
	end := rt.RunPhaseStatic(seed)
	// TU0: 0,3,6; TU1: 1,4,7; TU2: 2,5. Makespan = 3 waves × 10.
	if end != 30 {
		t.Fatalf("makespan = %d, want 30", end)
	}
	want := map[int][]int32{0: {0, 3, 6}, 1: {1, 4, 7}, 2: {2, 5}}
	for tu, tasks := range want {
		if len(got[tu]) != len(tasks) {
			t.Fatalf("TU%d ran %v, want %v", tu, got[tu], tasks)
		}
		for i := range tasks {
			if got[tu][i] != tasks[i] {
				t.Fatalf("TU%d ran %v, want %v", tu, got[tu], tasks)
			}
		}
	}
	if rt.Stats().Executed != 8 {
		t.Fatalf("executed = %d", rt.Stats().Executed)
	}
}

func TestStaticStragglerDominatesMakespan(t *testing.T) {
	// One expensive task on TU0's chain stretches the whole phase even
	// though the other TU idles — the imbalance a dynamic pool absorbs.
	eng := sim.NewEngine()
	exec := func(tu int, ref Ref, start sim.Time, finish func(sim.Time)) {
		cost := sim.Time(10)
		if ref.Index == 0 {
			cost = 100
		}
		finish(start + cost)
	}
	rt := NewRuntime(eng, Config{Threads: 2}, FIFO, exec, nil)
	end := rt.RunPhaseStatic([]Ref{{0, 0}, {0, 1}, {0, 2}, {0, 3}})
	// TU0: 100+10; TU1: 10+10. Makespan 110.
	if end != 110 {
		t.Fatalf("static makespan = %d, want 110", end)
	}

	// The dynamic pool balances the same tasks: TU1 takes the slack.
	eng2 := sim.NewEngine()
	rt2 := NewRuntime(eng2, Config{Threads: 2}, FIFO, exec, nil)
	end2 := rt2.RunPhase([]Ref{{0, 0}, {0, 1}, {0, 2}, {0, 3}})
	if end2 >= end {
		t.Fatalf("dynamic (%d) should beat static (%d) under imbalance", end2, end)
	}
}

func TestStaticNoPoolOps(t *testing.T) {
	eng := sim.NewEngine()
	rt := NewRuntime(eng, Config{Threads: 2, PoolAccess: 50}, FIFO, fixedExec(10, nil), nil)
	rt.RunPhaseStatic([]Ref{{0, 0}, {0, 1}})
	if rt.Stats().PoolOps != 0 {
		t.Fatalf("static execution performed %d pool ops", rt.Stats().PoolOps)
	}
}

func TestStaticFewerTasksThanThreads(t *testing.T) {
	eng := sim.NewEngine()
	rt := NewRuntime(eng, Config{Threads: 8}, FIFO, fixedExec(10, nil), nil)
	end := rt.RunPhaseStatic([]Ref{{0, 0}})
	if end != 10 || rt.Stats().Executed != 1 {
		t.Fatalf("end=%d executed=%d", end, rt.Stats().Executed)
	}
}

func TestStaticEmptySeed(t *testing.T) {
	eng := sim.NewEngine()
	rt := NewRuntime(eng, Config{Threads: 4}, FIFO, fixedExec(10, nil), nil)
	if end := rt.RunPhaseStatic(nil); end != 0 {
		t.Fatalf("empty static phase ended at %d", end)
	}
}
