package codelet

import (
	"fmt"

	"codeletfft/internal/sim"
)

// Executor performs one codelet on a thread unit, anchored at start, and
// calls finish exactly once with the completion time. Implementations
// charge compute and memory time against the machine model; multi-phase
// executors (load → compute → store) schedule engine events between
// phases so that resource requests reach shared timelines in causal
// order, and call finish from the last phase. finish may be called
// synchronously.
type Executor func(tu int, ref Ref, start sim.Time, finish func(done sim.Time))

// OnComplete is invoked when a codelet finishes. It must update dependence
// counters, call emit for every codelet that became ready, and return the
// number of counter updates performed (each is charged CounterUpdate
// cycles). A nil handler means codelets have no successors.
type OnComplete func(ref Ref, emit func(Ref)) (updates int)

// Config holds the runtime's overhead parameters in cycles.
type Config struct {
	Threads       int
	PoolAccess    sim.Time // per pool push/pop, serialized on the pool lock
	CounterUpdate sim.Time // per dependence-counter update
}

// Stats aggregates what the runtime observed during one or more phases.
type Stats struct {
	Executed       int64
	CounterUpdates int64
	PoolOps        int64
	IdleWakeups    int64
	LockWait       sim.Time // cycles TUs spent queued on the pool lock
}

// Runtime drives simulated thread units over a ready pool. One Runtime
// may run several phases (the guided algorithm's two steps, or the
// coarse algorithm's one phase per FFT stage) separated by barriers; the
// engine clock carries across phases.
type Runtime struct {
	Eng  *sim.Engine
	Cfg  Config
	Pool *Pool

	Exec     Executor
	Complete OnComplete

	lock    sim.Timeline
	idle    []int
	active  int
	stats   Stats
	started bool
	emitBuf []Ref
}

// NewRuntime wires a runtime. The pool starts empty.
func NewRuntime(eng *sim.Engine, cfg Config, d Discipline, exec Executor, complete OnComplete) *Runtime {
	if cfg.Threads <= 0 {
		panic(fmt.Sprintf("codelet: Threads = %d", cfg.Threads))
	}
	return &Runtime{Eng: eng, Cfg: cfg, Pool: NewPool(d), Exec: exec, Complete: complete}
}

// Stats returns cumulative counters across all phases run so far.
func (r *Runtime) Stats() Stats { return r.stats }

// RunPhase seeds the pool with seed (in order), releases every thread
// unit, and runs the engine until the pool drains and all TUs are idle.
// It returns the phase completion time. Seeding is charged as a
// sequential pass (the paper executes the seeding loops sequentially
// because they take insignificant time).
func (r *Runtime) RunPhase(seed []Ref) sim.Time {
	if r.started {
		panic("codelet: RunPhase re-entered")
	}
	r.started = true
	defer func() { r.started = false }()

	r.Pool.PushAll(seed)
	r.stats.PoolOps += int64(len(seed))
	start := r.Eng.Now() + sim.Time(len(seed))*r.Cfg.PoolAccess

	r.idle = r.idle[:0]
	r.active = r.Cfg.Threads
	for tu := 0; tu < r.Cfg.Threads; tu++ {
		tu := tu
		r.Eng.ScheduleAt(start, func(now sim.Time) { r.dispatch(tu, now) })
	}
	return r.Eng.Run()
}

// RunPhaseStatic executes the tasks with a static cyclic partition: TU j
// runs seed[j], seed[j+Threads], ... serially, with no shared pool and no
// dynamic balancing. This is the coarse-grain parallel-for baseline
// (Alg. 1 of the paper, the SPMD idiom where each thread walks
// t_id = thread + k·nthreads): there is no pool-lock overhead, but a
// thread that drew expensive tasks straggles and the stage barrier makes
// everyone wait for it.
func (r *Runtime) RunPhaseStatic(seed []Ref) sim.Time {
	if r.started {
		panic("codelet: RunPhaseStatic re-entered")
	}
	r.started = true
	defer func() { r.started = false }()

	start := r.Eng.Now()
	var chain func(tu int, k int) func(sim.Time)
	chain = func(tu, k int) func(sim.Time) {
		return func(now sim.Time) {
			if k >= len(seed) {
				return
			}
			r.Exec(tu, seed[k], now, func(done sim.Time) {
				if done < now {
					panic("codelet: executor completed before it started")
				}
				r.stats.Executed++
				r.Eng.ScheduleAt(done, chain(tu, k+r.Cfg.Threads))
			})
		}
	}
	for tu := 0; tu < r.Cfg.Threads && tu < len(seed); tu++ {
		r.Eng.ScheduleAt(start, chain(tu, tu))
	}
	return r.Eng.Run()
}

// Barrier advances the clock by the hardware-barrier cost after a phase.
// The straggler wait — the dominant cost of coarse-grain synchronization
// — is already part of the phase completion time.
func (r *Runtime) Barrier(cost sim.Time) {
	r.Eng.ScheduleAt(r.Eng.Now()+cost, func(sim.Time) {})
	r.Eng.Run()
}

// dispatch has TU tu attempt to draw work at time now.
func (r *Runtime) dispatch(tu int, now sim.Time) {
	ref, ok := r.Pool.Pop()
	if !ok {
		r.idle = append(r.idle, tu)
		r.active--
		return
	}
	// Drawing from the pool serializes on the pool lock.
	_, popDone := r.lock.Acquire(now, r.Cfg.PoolAccess)
	r.stats.PoolOps++
	r.stats.LockWait += popDone - now - r.Cfg.PoolAccess

	r.Exec(tu, ref, popDone, func(done sim.Time) {
		if done < popDone {
			panic("codelet: executor completed before it started")
		}
		r.Eng.ScheduleAt(done, func(at sim.Time) { r.complete(tu, ref, at) })
	})
}

// complete processes the completion of ref on TU tu: counter updates,
// pushing newly ready codelets, waking idle TUs, and redispatching.
func (r *Runtime) complete(tu int, ref Ref, now sim.Time) {
	r.stats.Executed++
	t := now
	if r.Complete != nil {
		r.emitBuf = r.emitBuf[:0]
		updates := r.Complete(ref, func(child Ref) { r.emitBuf = append(r.emitBuf, child) })
		r.stats.CounterUpdates += int64(updates)
		t += sim.Time(updates) * r.Cfg.CounterUpdate
		if len(r.emitBuf) > 0 {
			_, pushDone := r.lock.Acquire(t, sim.Time(len(r.emitBuf))*r.Cfg.PoolAccess)
			r.stats.PoolOps += int64(len(r.emitBuf))
			r.Pool.PushAll(r.emitBuf)
			t = pushDone
			r.wakeIdle(len(r.emitBuf), t)
		}
	}
	r.Eng.ScheduleAt(t, func(at sim.Time) { r.dispatch(tu, at) })
}

// wakeIdle releases up to n idle TUs at time t.
func (r *Runtime) wakeIdle(n int, t sim.Time) {
	for n > 0 && len(r.idle) > 0 {
		tu := r.idle[len(r.idle)-1]
		r.idle = r.idle[:len(r.idle)-1]
		r.active++
		r.stats.IdleWakeups++
		r.Eng.ScheduleAt(t, func(at sim.Time) { r.dispatch(tu, at) })
		n--
	}
}
