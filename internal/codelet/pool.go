// Package codelet implements the runtime side of the codelet program
// execution model (Zuckerman et al.) as used by the paper: codelets are
// non-preemptive units of work whose firing is gated by dependence
// counters, drawn by thread units from a shared ready pool.
//
// The package is generic over what a codelet does: executors and
// completion handlers are injected, and all simulated overheads (pool
// lock serialization, counter updates, barriers) are charged on the
// shared discrete-event clock. Package core instantiates it with the FFT
// task graph on the Cyclops-64 machine model.
package codelet

import "fmt"

// Ref identifies one codelet as (stage, index within stage).
type Ref struct {
	Stage int32
	Index int32
}

func (r Ref) String() string { return fmt.Sprintf("(%d,%d)", r.Stage, r.Index) }

// Discipline selects the service order of the ready pool. The paper's
// guided algorithm prescribes a concurrent LIFO pool; FIFO yields
// breadth-first (stage-by-stage) progression, which is the degenerate
// order that behaves like the coarse-grain algorithm.
type Discipline uint8

// Pool service orders.
const (
	FIFO Discipline = iota
	LIFO
)

func (d Discipline) String() string {
	if d == FIFO {
		return "fifo"
	}
	return "lifo"
}

// Pool is a deterministic ready-codelet pool. The discrete-event model is
// single-threaded, so the pool is a plain container; the cost and
// serialization of concurrent access are modeled separately by the
// runtime's lock timeline.
type Pool struct {
	d     Discipline
	items []Ref
	head  int
}

// NewPool returns an empty pool with the given discipline.
func NewPool(d Discipline) *Pool { return &Pool{d: d} }

// Discipline returns the pool's service order.
func (p *Pool) Discipline() Discipline { return p.d }

// Len returns the number of ready codelets.
func (p *Pool) Len() int { return len(p.items) - p.head }

// Push appends a ready codelet.
func (p *Pool) Push(r Ref) { p.items = append(p.items, r) }

// PushAll appends a batch in order.
func (p *Pool) PushAll(rs []Ref) { p.items = append(p.items, rs...) }

// Pop removes the next codelet according to the discipline.
func (p *Pool) Pop() (Ref, bool) {
	if p.Len() == 0 {
		return Ref{}, false
	}
	if p.d == LIFO {
		r := p.items[len(p.items)-1]
		p.items = p.items[:len(p.items)-1]
		return r, true
	}
	r := p.items[p.head]
	p.head++
	if p.head > 1024 && p.head*2 > len(p.items) {
		p.items = append(p.items[:0], p.items[p.head:]...)
		p.head = 0
	}
	return r, true
}

// Reset empties the pool.
func (p *Pool) Reset() {
	p.items = p.items[:0]
	p.head = 0
}
