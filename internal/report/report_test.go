package report

import (
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, "n", []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{1.5, 2.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "n,a,b\n1,10,1.5\n2,20,2.5\n3,30,\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVLengthMismatch(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, "n", []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestChartRenders(t *testing.T) {
	var b strings.Builder
	err := Chart(&b, "perf", "N", "GFLOPS", []Series{
		{Name: "coarse", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
		{Name: "fine", X: []float64{1, 2, 3, 4}, Y: []float64{2, 3, 4, 5}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"perf", "GFLOPS", "coarse", "fine", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(out, "\n")) < 12 {
		t.Fatal("chart too short")
	}
}

func TestChartErrors(t *testing.T) {
	var b strings.Builder
	if err := Chart(&b, "t", "x", "y", nil, 40, 10); err == nil {
		t.Fatal("empty chart accepted")
	}
	if err := Chart(&b, "t", "x", "y", nil, 2, 2); err == nil {
		t.Fatal("tiny chart accepted")
	}
}

func TestChartFlatSeries(t *testing.T) {
	// Constant series must not divide by zero.
	var b strings.Builder
	err := Chart(&b, "flat", "x", "y", []Series{
		{Name: "c", X: []float64{5, 5}, Y: []float64{3, 3}},
	}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Headers: []string{"variant", "gflops"}}
	tb.AddRow("coarse", 3.14159)
	tb.AddRow("fine guided", 4.0)
	var b strings.Builder
	if err := tb.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "coarse       3.142") {
		t.Fatalf("unexpected table:\n%s", out)
	}
	if !strings.Contains(out, "fine guided  4.000") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

func TestSortSeriesByName(t *testing.T) {
	s := []Series{{Name: "z"}, {Name: "a"}, {Name: "m"}}
	SortSeriesByName(s)
	if s[0].Name != "a" || s[2].Name != "z" {
		t.Fatalf("not sorted: %v", s)
	}
}
