// Package report renders experiment results as CSV files, aligned text
// tables, and ASCII line charts, so every figure of the paper can be
// regenerated into results/ without plotting dependencies.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of a chart: X and Y must have equal length.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WriteCSV emits one column per series (plus the first series' X as the
// leading column). Series may have different lengths; short ones leave
// blanks.
func WriteCSV(w io.Writer, xLabel string, series []Series) error {
	cols := []string{xLabel}
	maxLen := 0
	for _, s := range series {
		cols = append(cols, s.Name)
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(series)+1)
		if len(series) > 0 && i < len(series[0].X) {
			row = append(row, formatNum(series[0].X[i]))
		} else {
			row = append(row, "")
		}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, formatNum(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// Chart renders series as a fixed-size ASCII line chart with a legend.
// Each series is drawn with its own glyph; overlapping points show the
// later series.
func Chart(w io.Writer, title, xLabel, yLabel string, series []Series, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("report: chart too small (%dx%d)", width, height)
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xMin, xMax = math.Min(xMin, s.X[i]), math.Max(xMax, s.X[i])
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
		}
	}
	if math.IsInf(xMin, 1) {
		return fmt.Errorf("report: no data to chart")
	}
	if yMin > 0 && yMin < yMax/2 {
		// keep natural floor
	} else if yMin > 0 {
		yMin = 0
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			c := int(math.Round((s.X[i] - xMin) / (xMax - xMin) * float64(width-1)))
			r := int(math.Round((s.Y[i] - yMin) / (yMax - yMin) * float64(height-1)))
			grid[height-1-r][c] = g
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%s (y: %.3g..%.3g)\n", yLabel, yMin, yMax)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s|\n", row)
	}
	fmt.Fprintf(w, "  +%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "   %s: %.3g..%.3g\n", xLabel, xMin, xMax)
	for si, s := range series {
		fmt.Fprintf(w, "   %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return nil
}

// Table renders rows as an aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// SortSeriesByName orders series alphabetically for stable output.
func SortSeriesByName(series []Series) {
	sort.Slice(series, func(i, j int) bool { return series[i].Name < series[j].Name })
}
