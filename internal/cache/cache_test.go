package cache_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"codeletfft/internal/cache"
)

func intHash(k int) uint64 {
	h := uint64(k) * 0x9e3779b97f4a7c15
	return h ^ h>>33
}

func TestGetOrCreateCachesAndEvicts(t *testing.T) {
	// One shard of capacity 2 makes the LRU order observable.
	c := cache.New[int, string](1, 2, intHash)
	mk := func(k int) func() (string, error) {
		return func() (string, error) { return fmt.Sprintf("v%d", k), nil }
	}
	for _, k := range []int{1, 2, 3} { // 3 evicts 1 (LRU)
		if v, err := c.GetOrCreate(k, mk(k)); err != nil || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("GetOrCreate(%d) = %q, %v", k, v, err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (cap)", c.Len())
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("key 1 should have been evicted as LRU")
	}
	if v, ok := c.Get(3); !ok || v != "v3" {
		t.Fatalf("Get(3) = %q, %v", v, ok)
	}
	// Touching 2 promotes it; inserting 4 must now evict 3.
	c.Get(2)
	c.GetOrCreate(4, mk(4))
	if _, ok := c.Get(3); ok {
		t.Fatal("key 3 should have been evicted after 2 was touched")
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("key 2 should have survived")
	}
}

func TestGetOrCreateSingleFlight(t *testing.T) {
	c := cache.New[int, int](4, 4, intHash)
	var calls atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrCreate(7, func() (int, error) {
				calls.Add(1)
				return 49, nil
			})
			if err != nil || v != 49 {
				t.Errorf("GetOrCreate = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("create ran %d times, want 1", calls.Load())
	}
}

func TestGetOrCreateErrorNotCached(t *testing.T) {
	c := cache.New[int, int](1, 4, intHash)
	boom := errors.New("boom")
	fail := true
	create := func() (int, error) {
		if fail {
			return 0, boom
		}
		return 42, nil
	}
	if _, err := c.GetOrCreate(1, create); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry cached: Len = %d", c.Len())
	}
	fail = false
	if v, err := c.GetOrCreate(1, create); err != nil || v != 42 {
		t.Fatalf("retry = %d, %v", v, err)
	}
}

// TestConcurrentGetEvictChurn is the -race gate: many goroutines hammer
// GetOrCreate/Get over a keyspace several times the cache capacity, so
// lookups, single-flight creates, LRU promotions and evictions all
// interleave. Every returned value must still be the right one for its
// key, and the size bound must hold at every probe.
func TestConcurrentGetEvictChurn(t *testing.T) {
	c := cache.New[int, int](4, 2, intHash) // capacity 8
	const keyspace = 64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				k := rng.Intn(keyspace)
				if rng.Intn(4) == 0 {
					if v, ok := c.Get(k); ok && v != k*k {
						t.Errorf("Get(%d) = %d, want %d", k, v, k*k)
						return
					}
					continue
				}
				v, err := c.GetOrCreate(k, func() (int, error) { return k * k, nil })
				if err != nil || v != k*k {
					t.Errorf("GetOrCreate(%d) = %d, %v", k, v, err)
					return
				}
				if n := c.Len(); n > c.Cap() {
					t.Errorf("Len %d exceeds cap %d", n, c.Cap())
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if n := c.Len(); n > c.Cap() || n == 0 {
		t.Fatalf("final Len = %d (cap %d)", n, c.Cap())
	}
}

func TestPurge(t *testing.T) {
	c := cache.New[int, int](2, 4, intHash)
	for k := 0; k < 6; k++ {
		c.GetOrCreate(k, func() (int, error) { return k, nil })
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("Get hit after Purge")
	}
}

func TestStats(t *testing.T) {
	c := cache.New[int, string](1, 4, intHash)
	mk := func() (string, error) { return "v", nil }
	if _, err := c.GetOrCreate(1, mk); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := c.GetOrCreate(1, mk); err != nil { // hit
		t.Fatal(err)
	}
	c.Get(1)                // hit
	c.Get(2)                // miss
	if _, err := c.GetOrCreate(3, func() (string, error) { // miss, not cached
		return "", errors.New("boom")
	}); err == nil {
		t.Fatal("want create error")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 3 {
		t.Fatalf("Stats = (%d hits, %d misses), want (2, 3)", hits, misses)
	}
	c.Purge()
	if h, m := c.Stats(); h != hits || m != misses {
		t.Fatal("Purge must not reset stats")
	}
}
