// Package cache provides a sharded, size-bounded, concurrency-safe
// key-value cache with per-shard LRU eviction and single-flight
// population: concurrent GetOrCreate calls for one key run the create
// function once and share its result. The facade uses it to memoize
// FFT plan cores (stage decomposition + twiddle tables) keyed by
// (N, taskSize), so serving callers stop hand-managing plan lifetimes.
//
// Sharding bounds lock contention — a lookup takes one shard mutex,
// never a global one — and the per-shard capacity bounds memory: a
// cache of S shards each capped at C entries never holds more than S·C
// values, evicting each shard's least-recently-used entry first.
package cache

import (
	"sync"
	"sync/atomic"
)

// Cache is a sharded LRU cache. The zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	hash   func(K) uint64
	mask   uint64
	shards []shard[K, V]

	// Lifetime lookup outcomes across Get and GetOrCreate — the
	// observability feed for serving metrics. A GetOrCreate that joins an
	// in-flight create counts as a hit (the work is shared); one whose
	// create fails counts as a miss only.
	hits, misses atomic.Int64
}

// entry is a cache slot. The once/val/err trio gives single-flight
// creation; prev/next form the shard's intrusive LRU list (most
// recently used at the front), guarded by the shard mutex.
type entry[K comparable, V any] struct {
	key        K
	once       sync.Once
	done       atomic.Bool // set after val/err; the Store/Load pair orders them for Get
	val        V
	err        error
	prev, next *entry[K, V]
}

type shard[K comparable, V any] struct {
	mu         sync.Mutex
	m          map[K]*entry[K, V]
	head, tail *entry[K, V] // LRU list: head = most recent
	cap        int
}

// New builds a cache of shardCount shards (rounded up to a power of
// two, minimum 1) holding at most capPerShard entries each. hash maps a
// key to its shard; it must be deterministic and should spread keys.
func New[K comparable, V any](shardCount, capPerShard int, hash func(K) uint64) *Cache[K, V] {
	if capPerShard < 1 {
		capPerShard = 1
	}
	n := 1
	for n < shardCount {
		n *= 2
	}
	c := &Cache[K, V]{hash: hash, mask: uint64(n - 1), shards: make([]shard[K, V], n)}
	for i := range c.shards {
		c.shards[i].m = make(map[K]*entry[K, V])
		c.shards[i].cap = capPerShard
	}
	return c
}

func (c *Cache[K, V]) shard(k K) *shard[K, V] {
	return &c.shards[c.hash(k)&c.mask]
}

// GetOrCreate returns the cached value for k, creating it with create
// on a miss. Concurrent callers for the same key share one create call
// and its result. A create error is returned to every waiter but never
// cached — the entry is removed so a later call retries. The entry may
// be evicted while create runs; the callers still receive the value,
// it just isn't retained.
func (c *Cache[K, V]) GetOrCreate(k K, create func() (V, error)) (V, error) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if ok {
		s.moveToFront(e)
	} else {
		e = &entry[K, V]{key: k}
		s.m[k] = e
		s.pushFront(e)
		if len(s.m) > s.cap {
			s.evictOldest(e)
		}
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}

	e.once.Do(func() {
		e.val, e.err = create()
		e.done.Store(true)
	})
	if e.err != nil {
		s.mu.Lock()
		if s.m[k] == e {
			delete(s.m, k)
			s.unlink(e)
		}
		s.mu.Unlock()
	}
	return e.val, e.err
}

// Get returns the cached value for k without populating. Entries whose
// create call is still in flight count as misses (Get never blocks).
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if ok {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	var zero V
	if !ok || !e.done.Load() || e.err != nil {
		c.misses.Add(1)
		return zero, false
	}
	c.hits.Add(1)
	return e.val, true
}

// Stats reports the lifetime hit and miss counts across Get and
// GetOrCreate. Purge does not reset them — they are counters, not
// gauges.
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached entries across all shards.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Cap reports the maximum number of entries the cache retains.
func (c *Cache[K, V]) Cap() int {
	return len(c.shards) * c.shards[0].cap
}

// Purge drops every cached entry.
func (c *Cache[K, V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[K]*entry[K, V])
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// List maintenance — all called with the shard mutex held.

func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[K, V]) moveToFront(e *entry[K, V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// evictOldest removes the least-recently-used entry other than keep
// (the entry just inserted, which must survive its own insertion).
func (s *shard[K, V]) evictOldest(keep *entry[K, V]) {
	v := s.tail
	for v != nil && v == keep {
		v = v.prev
	}
	if v != nil {
		delete(s.m, v.key)
		s.unlink(v)
	}
}
