// Package trace collects per-bank DRAM access-rate time series — the
// measurement behind the paper's Figures 1, 2 and 6, which plot the
// number of memory accesses each off-chip bank serves per 3×10⁶-cycle
// window over the life of the FFT.
package trace

import (
	"fmt"

	"codeletfft/internal/c64"
	"codeletfft/internal/sim"
)

// BankTrace bins DRAM traffic per bank into fixed-width cycle windows.
// It implements c64.Tracer. Accesses are counted in 8-byte words, the
// access granularity of C64 thread units.
type BankTrace struct {
	BinCycles sim.Time
	banks     int
	bins      [][]int64 // bins[w][bank] = accesses in window w
	loads     int64
	stores    int64
}

// NewBankTrace creates a trace with the given window width in cycles.
func NewBankTrace(banks int, binCycles sim.Time) *BankTrace {
	if banks <= 0 || binCycles <= 0 {
		panic("trace: banks and binCycles must be positive")
	}
	return &BankTrace{BinCycles: binCycles, banks: banks}
}

var _ c64.Tracer = (*BankTrace)(nil)

// RecordDRAM accumulates one transfer slice into its time window.
func (t *BankTrace) RecordDRAM(bank int, at sim.Time, bytes int64, kind c64.Kind) {
	if bank < 0 || bank >= t.banks {
		panic(fmt.Sprintf("trace: bank %d out of range", bank))
	}
	w := int(at / t.BinCycles)
	for len(t.bins) <= w {
		t.bins = append(t.bins, make([]int64, t.banks))
	}
	t.bins[w][bank] += bytes / 8
	if kind == c64.Load {
		t.loads += bytes / 8
	} else {
		t.stores += bytes / 8
	}
}

// Banks returns the number of banks traced.
func (t *BankTrace) Banks() int { return t.banks }

// Windows returns the number of time windows with data (including any
// interior empty ones).
func (t *BankTrace) Windows() int { return len(t.bins) }

// At returns the access count of bank in window w (0 if out of range).
func (t *BankTrace) At(w, bank int) int64 {
	if w < 0 || w >= len(t.bins) {
		return 0
	}
	return t.bins[w][bank]
}

// Series returns one access-count series per bank, all of equal length.
func (t *BankTrace) Series() [][]int64 {
	out := make([][]int64, t.banks)
	for b := range out {
		s := make([]int64, len(t.bins))
		for w := range t.bins {
			s[w] = t.bins[w][b]
		}
		out[b] = s
	}
	return out
}

// Totals returns cumulative accesses per bank.
func (t *BankTrace) Totals() []int64 {
	out := make([]int64, t.banks)
	for _, bin := range t.bins {
		for b, v := range bin {
			out[b] += v
		}
	}
	return out
}

// LoadWords and StoreWords return cumulative traffic split by kind.
func (t *BankTrace) LoadWords() int64  { return t.loads }
func (t *BankTrace) StoreWords() int64 { return t.stores }

// Rebin returns a copy of the trace aggregated into exactly want windows
// (or fewer if the trace is shorter), for rendering fixed-width charts.
func (t *BankTrace) Rebin(want int) *BankTrace {
	if want <= 0 {
		panic("trace: want must be positive")
	}
	if len(t.bins) <= want {
		cp := &BankTrace{BinCycles: t.BinCycles, banks: t.banks, loads: t.loads, stores: t.stores}
		cp.bins = make([][]int64, len(t.bins))
		for i := range t.bins {
			cp.bins[i] = append([]int64(nil), t.bins[i]...)
		}
		return cp
	}
	factor := (len(t.bins) + want - 1) / want
	out := &BankTrace{BinCycles: t.BinCycles * sim.Time(factor), banks: t.banks, loads: t.loads, stores: t.stores}
	out.bins = make([][]int64, (len(t.bins)+factor-1)/factor)
	for i := range out.bins {
		out.bins[i] = make([]int64, t.banks)
	}
	for w, bin := range t.bins {
		for b, v := range bin {
			out.bins[w/factor][b] += v
		}
	}
	return out
}

// SkewSummary describes how unbalanced the banks were over a window range:
// the ratio of the hottest bank's traffic to the mean of the others.
func (t *BankTrace) SkewSummary(fromFrac, toFrac float64) float64 {
	n := len(t.bins)
	lo, hi := int(fromFrac*float64(n)), int(toFrac*float64(n))
	if hi > n {
		hi = n
	}
	tot := make([]int64, t.banks)
	for w := lo; w < hi; w++ {
		for b, v := range t.bins[w] {
			tot[b] += v
		}
	}
	var maxV int64
	maxB := 0
	for b, v := range tot {
		if v > maxV {
			maxV, maxB = v, b
		}
	}
	var rest int64
	for b, v := range tot {
		if b != maxB {
			rest += v
		}
	}
	if rest == 0 {
		if maxV == 0 {
			return 1
		}
		return float64(maxV)
	}
	mean := float64(rest) / float64(t.banks-1)
	return float64(maxV) / mean
}
