package trace

import (
	"testing"

	"codeletfft/internal/c64"
	"codeletfft/internal/sim"
)

func TestRecordBinsByTime(t *testing.T) {
	tr := NewBankTrace(4, 100)
	tr.RecordDRAM(0, 0, 80, c64.Load)    // window 0: 10 words
	tr.RecordDRAM(0, 99, 8, c64.Load)    // window 0: 1 word
	tr.RecordDRAM(1, 100, 16, c64.Store) // window 1: 2 words
	tr.RecordDRAM(3, 250, 8, c64.Load)   // window 2

	if tr.Windows() != 3 {
		t.Fatalf("Windows = %d, want 3", tr.Windows())
	}
	if tr.At(0, 0) != 11 {
		t.Fatalf("At(0,0) = %d, want 11", tr.At(0, 0))
	}
	if tr.At(1, 1) != 2 || tr.At(2, 3) != 1 {
		t.Fatal("mis-binned records")
	}
	if tr.At(5, 0) != 0 || tr.At(-1, 0) != 0 {
		t.Fatal("out-of-range At should be 0")
	}
	if tr.LoadWords() != 12 || tr.StoreWords() != 2 {
		t.Fatalf("load/store words = %d/%d, want 12/2", tr.LoadWords(), tr.StoreWords())
	}
}

func TestSeriesAndTotals(t *testing.T) {
	tr := NewBankTrace(2, 10)
	tr.RecordDRAM(0, 5, 8, c64.Load)
	tr.RecordDRAM(1, 15, 16, c64.Load)
	tr.RecordDRAM(0, 25, 24, c64.Load)
	s := tr.Series()
	if len(s) != 2 || len(s[0]) != 3 {
		t.Fatalf("series shape %dx%d, want 2x3", len(s), len(s[0]))
	}
	want0 := []int64{1, 0, 3}
	for i, v := range want0 {
		if s[0][i] != v {
			t.Fatalf("bank 0 series = %v, want %v", s[0], want0)
		}
	}
	tot := tr.Totals()
	if tot[0] != 4 || tot[1] != 2 {
		t.Fatalf("totals = %v, want [4 2]", tot)
	}
}

func TestRebin(t *testing.T) {
	tr := NewBankTrace(1, 1)
	for i := 0; i < 100; i++ {
		tr.RecordDRAM(0, int64ToTime(i), 8, c64.Load)
	}
	r := tr.Rebin(10)
	if r.Windows() != 10 {
		t.Fatalf("rebinned windows = %d, want 10", r.Windows())
	}
	for w := 0; w < 10; w++ {
		if r.At(w, 0) != 10 {
			t.Fatalf("rebinned At(%d) = %d, want 10", w, r.At(w, 0))
		}
	}
	// Rebin to more windows than exist returns an unchanged copy.
	same := tr.Rebin(500)
	if same.Windows() != 100 || same.At(42, 0) != 1 {
		t.Fatal("no-op rebin altered data")
	}
	// Totals are conserved.
	if r.Totals()[0] != tr.Totals()[0] {
		t.Fatal("rebin lost traffic")
	}
}

func TestSkewSummary(t *testing.T) {
	tr := NewBankTrace(4, 10)
	// Bank 0 gets 3x the traffic of each other bank.
	for w := 0; w < 10; w++ {
		at := int64ToTime(w * 10)
		tr.RecordDRAM(0, at, 8*30, c64.Load)
		for b := 1; b < 4; b++ {
			tr.RecordDRAM(b, at, 8*10, c64.Load)
		}
	}
	skew := tr.SkewSummary(0, 1)
	if skew < 2.9 || skew > 3.1 {
		t.Fatalf("skew = %v, want ≈3", skew)
	}
	// Balanced traffic → skew ≈ 1.
	bal := NewBankTrace(4, 10)
	for b := 0; b < 4; b++ {
		bal.RecordDRAM(b, 0, 80, c64.Load)
	}
	if s := bal.SkewSummary(0, 1); s < 0.99 || s > 1.01 {
		t.Fatalf("balanced skew = %v, want 1", s)
	}
	// Empty trace degenerates to 1.
	if s := NewBankTrace(4, 10).SkewSummary(0, 1); s != 1 {
		t.Fatalf("empty skew = %v, want 1", s)
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBankTrace(0, 10) },
		func() { NewBankTrace(4, 0) },
		func() { NewBankTrace(4, 10).RecordDRAM(4, 0, 8, c64.Load) },
		func() { NewBankTrace(4, 10).Rebin(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func int64ToTime(i int) sim.Time { return sim.Time(i) }
