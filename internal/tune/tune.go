// Package tune is a one-shot kernel autotuner: the first time a plan
// shape (N, taskSize, workers) is used with kernel Auto, it races the
// candidate kernels on a deterministic input and memoizes the winner for
// the life of the process. Subsequent lookups for the same shape are a
// map hit — the measurement runs exactly once per shape, single-flight,
// no matter how many goroutines ask concurrently.
//
// The package deliberately knows nothing about engines or plans: the
// caller supplies a closure that runs one forward transform with a given
// kernel, so the measurement exercises exactly the execution path
// (worker count, threshold, scheduling) the winner will later run under.
// The facade passes a closure over an observer-free engine so tuning
// runs never pollute serving telemetry.
package tune

import (
	"sync"
	"sync/atomic"
	"time"

	"codeletfft/internal/fft"
)

// Key identifies one tuned plan shape. Workers must be the resolved
// worker count (not 0-meaning-GOMAXPROCS) so the memo can't conflate
// differently-parallel configurations.
type Key struct {
	N        int
	TaskSize int
	Workers  int
}

type entry struct {
	once sync.Once
	kern atomic.Int32 // 0 until measured; then a concrete fft.Kernel
}

var (
	mu      sync.Mutex
	entries = map[Key]*entry{}
)

// Resolve returns the winning kernel for key, measuring on first use.
// run must execute one forward transform of data (length key.N) with
// the given kernel; it is called several times per candidate during
// measurement and never again after. candidates must be concrete
// kernels; an empty slice resolves to KernelRadix2. Concurrent Resolve
// calls for the same key block on one measurement (single-flight);
// different keys measure independently.
func Resolve(key Key, candidates []fft.Kernel, run func(fft.Kernel, []complex128)) fft.Kernel {
	mu.Lock()
	e := entries[key]
	if e == nil {
		e = &entry{}
		entries[key] = e
	}
	mu.Unlock()
	e.once.Do(func() { e.kern.Store(int32(measure(key, candidates, run))) })
	return fft.Kernel(e.kern.Load())
}

// measure times each candidate on a deterministic pseudo-random input:
// one warmup transform (pays lazy initialization), then two timed rounds
// of reps transforms each, scoring the minimum round (min-of-rounds is
// robust against one-off scheduler noise). Small transforms get more
// reps so the timed region stays well above timer resolution.
func measure(key Key, candidates []fft.Kernel, run func(fft.Kernel, []complex128)) fft.Kernel {
	if len(candidates) == 0 {
		return fft.KernelRadix2
	}
	if len(candidates) == 1 {
		return candidates[0].Concrete()
	}
	n := key.N
	input := make([]complex128, n)
	s := uint64(n)*2862933555777941757 + 3037000493
	for i := range input {
		s = s*6364136223846793005 + 1442695040888963407
		re := float64(int32(s>>32)) / float64(1<<31)
		s = s*6364136223846793005 + 1442695040888963407
		im := float64(int32(s>>32)) / float64(1<<31)
		input[i] = complex(re, im)
	}
	reps := (1 << 21) / n
	if reps < 1 {
		reps = 1
	} else if reps > 8 {
		reps = 8
	}

	buf := make([]complex128, n)
	best := candidates[0].Concrete()
	var bestScore time.Duration
	for ci, k := range candidates {
		k = k.Concrete()
		copy(buf, input)
		run(k, buf) // warmup
		var score time.Duration
		for round := 0; round < 2; round++ {
			var elapsed time.Duration
			for r := 0; r < reps; r++ {
				copy(buf, input)
				start := time.Now()
				run(k, buf)
				elapsed += time.Since(start)
			}
			if round == 0 || elapsed < score {
				score = elapsed
			}
		}
		if ci == 0 || score < bestScore {
			bestScore = score
			best = k
		}
	}
	return best
}

// Winners returns a snapshot of every shape that has finished measuring
// and the kernel it resolved to — observability for /metrics handlers
// and tests.
func Winners() map[Key]fft.Kernel {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[Key]fft.Kernel, len(entries))
	for k, e := range entries {
		if v := e.kern.Load(); v != 0 {
			out[k] = fft.Kernel(v)
		}
	}
	return out
}

// Reset clears the memo. Test-only: production code relies on winners
// being stable for the process lifetime.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	entries = map[Key]*entry{}
}
