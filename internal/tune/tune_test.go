package tune_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"codeletfft/internal/fft"
	"codeletfft/internal/tune"
)

func TestResolveMemoizesPerKey(t *testing.T) {
	tune.Reset()
	var calls atomic.Int64
	run := func(k fft.Kernel, data []complex128) { calls.Add(1) }
	key := tune.Key{N: 64, TaskSize: 8, Workers: 2}
	cands := fft.ConcreteKernels()

	first := tune.Resolve(key, cands, run)
	if first == fft.KernelAuto {
		t.Fatal("Resolve returned Auto")
	}
	after := calls.Load()
	if after == 0 {
		t.Fatal("measurement never ran")
	}
	// Second lookup: memo hit, run never called again.
	if got := tune.Resolve(key, cands, run); got != first {
		t.Fatalf("second Resolve %v != first %v", got, first)
	}
	if calls.Load() != after {
		t.Fatal("Resolve re-measured a memoized key")
	}
	// A different shape measures independently.
	tune.Resolve(tune.Key{N: 128, TaskSize: 8, Workers: 2}, cands, run)
	if calls.Load() == after {
		t.Fatal("distinct key did not measure")
	}
}

func TestResolveSingleCandidateSkipsMeasurement(t *testing.T) {
	tune.Reset()
	ran := false
	got := tune.Resolve(tune.Key{N: 32, TaskSize: 8, Workers: 1},
		[]fft.Kernel{fft.KernelRadix4},
		func(fft.Kernel, []complex128) { ran = true })
	if got != fft.KernelRadix4 {
		t.Fatalf("got %v", got)
	}
	if ran {
		t.Fatal("single candidate should not be measured")
	}
	if got := tune.Resolve(tune.Key{N: 32, TaskSize: 4, Workers: 1}, nil, nil); got != fft.KernelRadix2 {
		t.Fatalf("empty candidates resolved to %v, want radix2", got)
	}
}

// TestResolveSingleFlight hammers one key from many goroutines: exactly
// one measurement may run, and every caller must see the same winner.
func TestResolveSingleFlight(t *testing.T) {
	tune.Reset()
	var measuring atomic.Int64
	var maxConcurrent atomic.Int64
	run := func(k fft.Kernel, data []complex128) {
		cur := measuring.Add(1)
		for {
			old := maxConcurrent.Load()
			if cur <= old || maxConcurrent.CompareAndSwap(old, cur) {
				break
			}
		}
		measuring.Add(-1)
	}
	key := tune.Key{N: 256, TaskSize: 64, Workers: 4}
	var wg sync.WaitGroup
	results := make([]fft.Kernel, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = tune.Resolve(key, fft.ConcreteKernels(), run)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw %v, caller 0 saw %v", i, results[i], results[0])
		}
	}
	if maxConcurrent.Load() > 1 {
		t.Fatalf("measurement closures overlapped (%d concurrent)", maxConcurrent.Load())
	}
	w := tune.Winners()
	if w[key] != results[0] {
		t.Fatalf("Winners()[%v] = %v, want %v", key, w[key], results[0])
	}
}

// TestResolveRunsRealTransforms wires a genuine transform closure and
// checks the winner actually computes a correct FFT — guarding against
// the tuner picking a kernel value the fft layer can't execute.
func TestResolveRunsRealTransforms(t *testing.T) {
	tune.Reset()
	const n, p = 1 << 10, 64
	pl, err := fft.NewPlan(n, p)
	if err != nil {
		t.Fatal(err)
	}
	w := fft.Twiddles(n)
	win := tune.Resolve(tune.Key{N: n, TaskSize: p, Workers: 1}, fft.ConcreteKernels(),
		func(k fft.Kernel, data []complex128) { pl.TransformKernel(data, w, k) })

	data := make([]complex128, n)
	data[1] = 1 // impulse at 1: spectrum X[k] = W_N^k, |X[k]| = 1
	pl.TransformKernel(data, w, win)
	for k := range data {
		mag := real(data[k])*real(data[k]) + imag(data[k])*imag(data[k])
		if mag < 0.999 || mag > 1.001 {
			t.Fatalf("winner %v produced wrong spectrum at bin %d", win, k)
		}
	}
}
