// Package metrics is a dependency-free instrumentation layer for the
// serving stack: counters, gauges, and bucketed histograms with exported
// quantiles, collected in a Registry that renders a plain-text
// exposition page (mounted at /metrics by the daemon) and publishes the
// same snapshot through the standard library's expvar, so existing
// expvar scrapers see it under one variable.
//
// Every instrument is safe for concurrent use and the hot-path
// operations (Add, Set, Observe) are single atomic updates — no locks,
// no allocation — so they can sit inside the host engine's per-pass
// loop without showing up in the AllocsPerRun guards.
package metrics

import (
	"expvar"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic;
// this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets and tracks the exact
// sum, count, and max, so the exposition can report the mean alongside
// bucket-interpolated quantiles. The zero value is not usable; build
// one through Registry.Histogram.
type Histogram struct {
	// bounds[i] is the inclusive upper edge of bucket i; observations
	// above bounds[len-1] land in the overflow bucket counts[len(bounds)].
	bounds []float64
	counts []atomic.Int64

	count atomic.Int64
	sum   atomic.Uint64 // float64 bits, CAS-updated
	max   atomic.Uint64 // float64 bits of the running maximum (non-negative domain)
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample. Negative samples are clamped to 0 (the
// instruments here measure durations and sizes).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest observation seen (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Mean returns Sum/Count, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank. The estimate is exact at
// bucket edges and bounded by the bucket width elsewhere; the overflow
// bucket reports the observed max.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return h.Max()
			}
			hi := h.bounds[i]
			frac := (rank - cum) / c
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.Max()
}

// ExpBuckets returns n bucket bounds starting at start and growing by
// factor: start, start·factor, … — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n bucket bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// Registry names and collects instruments. All lookups are
// get-or-create, so packages can resolve the same instrument by name
// without coordinating initialization order.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn as the named gauge; the function is evaluated
// at exposition time. Registering a name twice replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every instrument's current value as a flat
// name→number map. Histograms expand to _count, _sum, _mean, _max, and
// _p50/_p90/_p99 entries.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+7*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, fn := range r.gaugeFuncs {
		out[name] = fn()
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
		out[name+"_mean"] = h.Mean()
		out[name+"_max"] = h.Max()
		out[name+"_p50"] = h.Quantile(0.50)
		out[name+"_p90"] = h.Quantile(0.90)
		out[name+"_p99"] = h.Quantile(0.99)
	}
	return out
}

// WriteText renders the snapshot as sorted "name value" lines — the
// /metrics exposition format.
func (r *Registry) WriteText(w *strings.Builder) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %v\n", name, snap[name])
	}
}

// Handler returns an http.Handler serving the text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WriteText(&b)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// Publish exposes the registry's snapshot as one expvar variable, so
// the standard /debug/vars page (and any expvar scraper) carries the
// same numbers as /metrics. expvar panics on duplicate names, so
// Publish must be called at most once per name per process.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
