package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("Counter not idempotent by name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramStatsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LinearBuckets(1, 1, 100))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5050.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if got, want := h.Mean(), 50.5; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
	// With unit buckets holding one sample each, the interpolated
	// quantiles are within one bucket width of the exact order statistic.
	for _, tc := range []struct{ q, want float64 }{{0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100}} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1 {
			t.Errorf("q%v = %v, want ≈%v", tc.q, got, tc.want)
		}
	}
	if got := h.Quantile(0); got > 1 {
		t.Errorf("q0 = %v, want ≤1", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("big", []float64{1, 2})
	h.Observe(50)
	if got := h.Quantile(0.99); got != 50 {
		t.Fatalf("overflow quantile = %v, want the max 50", got)
	}
	h.Observe(-3) // clamped to 0
	if got := h.Sum(); got != 50 {
		t.Fatalf("sum = %v, want 50", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(b[i]-want[i]) > want[i]*1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b_depth").Set(2)
	r.GaugeFunc("c_fn", func() float64 { return 1.5 })
	r.Histogram("h", LinearBuckets(1, 1, 4)).Observe(2)

	snap := r.Snapshot()
	for _, k := range []string{"a_total", "b_depth", "c_fn", "h_count", "h_sum", "h_mean", "h_max", "h_p50", "h_p90", "h_p99"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %q", k)
		}
	}
	if snap["a_total"] != 3 || snap["c_fn"] != 1.5 || snap["h_count"] != 1 {
		t.Fatalf("snapshot values wrong: %v", snap)
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "a_total 3\n") || !strings.Contains(body, "h_count 1\n") {
		t.Fatalf("text exposition missing lines:\n%s", body)
	}
	// Lines are sorted.
	lines := strings.Split(strings.TrimSpace(body), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("exposition not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
}

// TestConcurrent hammers one instrument of each kind from many
// goroutines; meaningful under -race, and checks the exact totals
// (atomic sum must not lose updates).
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 10))
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(3)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker || h.Sum() != 3*workers*perWorker {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
}
