package dist

import (
	"context"
	"fmt"

	"codeletfft/internal/ooc"
	"codeletfft/internal/serve"
)

// oocExecutor adapts the coordinator's shard fan-out to ooc.Executor,
// so an out-of-core plan's RAM tiles are sharded across the worker set
// instead of computed locally: each tile becomes a run of ShardVecs
// frames with Start offset by the tile's position in the whole
// transform, giving workers the same frames a whole-transform pass
// would send — warm plan caches, same twiddle exponents — while the
// coordinator only ever holds the staging tiles in memory. Placement,
// retries, hedging, and degradation to local execution all apply per
// shard, unchanged.
type oocExecutor struct {
	c *Coordinator
}

func (e oocExecutor) ExecCols(ctx context.Context, vecs []complex128, vecLen, startVec, totalN int) error {
	proto := serve.ShardFrame{Op: serve.OpColumns, VecLen: vecLen, TotalN: totalN}
	return e.c.runShards(ctx, proto, vecs, len(vecs)/vecLen, startVec)
}

func (e oocExecutor) ExecRows(ctx context.Context, vecs []complex128, vecLen int) error {
	proto := serve.ShardFrame{Op: serve.OpRows, VecLen: vecLen}
	return e.c.runShards(ctx, proto, vecs, len(vecs)/vecLen, 0)
}

// OOCPlan builds an out-of-core plan whose tile compute is sharded
// across this coordinator's workers (see oocExecutor). n is bounded by
// MaxClusterN — the shard frame's element limit also caps the TotalN a
// worker will build a twiddle table for. The plan's I/O instruments
// join the coordinator's registry, so one /metrics endpoint serves
// both the shard counters and the per-channel prefetch counters.
//
// Worker kernels differ from the local path's, so a cluster-executed
// out-of-core transform matches in-core results to rounding — the same
// contract as Coordinator.Transform — rather than the local OOC path's
// bitwise identity.
func (c *Coordinator) OOCPlan(n int, opts ...ooc.Option) (*ooc.Plan, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	opts = append(opts,
		ooc.WithExecutor(oocExecutor{c}),
		ooc.WithRegistry(c.cfg.Registry),
	)
	return ooc.NewPlan(n, opts...)
}

// TransformOOC runs one forward out-of-core transform over the worker
// set with default plan options — the convenience wrapper for one-shot
// use; call OOCPlan to reuse a plan or set spill/budget/policy options.
func (c *Coordinator) TransformOOC(ctx context.Context, data []complex128, opts ...ooc.Option) error {
	p, err := c.OOCPlan(len(data), opts...)
	if err != nil {
		return fmt.Errorf("dist: building ooc plan: %w", err)
	}
	return p.TransformCtx(ctx, data)
}

// InverseOOC is TransformOOC for the inverse transform.
func (c *Coordinator) InverseOOC(ctx context.Context, data []complex128, opts ...ooc.Option) error {
	p, err := c.OOCPlan(len(data), opts...)
	if err != nil {
		return fmt.Errorf("dist: building ooc plan: %w", err)
	}
	return p.InverseCtx(ctx, data)
}
