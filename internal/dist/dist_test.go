package dist

import (
	"context"
	"errors"
	"fmt"
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codeletfft"
	"codeletfft/internal/fft"
	"codeletfft/internal/serve"
)

// newTestCluster stands up nWorkers in-process shard workers on a
// loopback transport and a coordinator over them. The caller's cfg is
// honored except Transport/Workers, which the helper owns, and the
// resident-session path, which is disabled: these tests pin the legacy
// one-shot path's exact counter identities (faults injected on Exec),
// which the resident path would bypass. Resident-path coverage lives
// in session_test.go's newResidentCluster.
func newTestCluster(t *testing.T, nWorkers int, cfg Config) (*Coordinator, *Loopback, []string) {
	t.Helper()
	lb := NewLoopback()
	addrs := make([]string, nWorkers)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("worker-%d", i)
		srv := serve.New(serve.Config{EnableShard: true, MaxN: 1 << 20, Peers: lb})
		lb.Register(addrs[i], srv.Handler())
	}
	cfg.Transport = lb
	cfg.Workers = addrs
	cfg.DisableResidentSessions = true
	c, err := newCoordinator(cfg)
	if err != nil {
		t.Fatalf("newCoordinator: %v", err)
	}
	t.Cleanup(c.Close)
	return c, lb, addrs
}

// noise returns a deterministic pseudo-random signal.
func noise(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

// singleNode runs the reference single-node transform on a copy.
func singleNode(t *testing.T, data []complex128) []complex128 {
	t.Helper()
	ref := append([]complex128(nil), data...)
	hp, err := codeletfft.CachedHostPlan(len(ref))
	if err != nil {
		t.Fatalf("CachedHostPlan(%d): %v", len(ref), err)
	}
	if err := hp.Transform(ref); err != nil {
		t.Fatalf("reference Transform: %v", err)
	}
	return ref
}

func maxDiff(a, b []complex128) float64 {
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func counter(t *testing.T, c *Coordinator, name string) int64 {
	t.Helper()
	snap := c.Registry().Snapshot()
	v, ok := snap[name]
	if !ok {
		t.Fatalf("metric %q not in registry snapshot", name)
	}
	return int64(v)
}

// TestClusterMatchesSingleNode sweeps sizes up to 2^20 and several
// explicit (n1,n2) factorizations of a fixed size through a 3-worker
// loopback cluster and compares against the single-node transform.
func TestClusterMatchesSingleNode(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		factor func(int) (int, int)
	}{
		{"n=64/default", 64, nil},
		{"n=4096/default", 4096, nil},
		{"n=65536/16x4096", 1 << 16, func(int) (int, int) { return 1 << 4, 1 << 12 }},
		{"n=65536/256x256", 1 << 16, func(int) (int, int) { return 1 << 8, 1 << 8 }},
		{"n=65536/4096x16", 1 << 16, func(int) (int, int) { return 1 << 12, 1 << 4 }},
		{"n=1048576/default", 1 << 20, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _, _ := newTestCluster(t, 3, Config{Factor: tc.factor})
			data := noise(tc.n, 1)
			want := singleNode(t, data)
			if err := c.Transform(context.Background(), data); err != nil {
				t.Fatalf("Transform: %v", err)
			}
			tol := 1e-12 * float64(tc.n)
			if d := maxDiff(data, want); d > tol {
				t.Fatalf("cluster output deviates from single node by %g (tol %g)", d, tol)
			}
			if got := counter(t, c, "dist_degraded_total"); got != 0 {
				t.Fatalf("degraded_total = %d, want 0", got)
			}
			if got := counter(t, c, "dist_local_shards_total"); got != 0 {
				t.Fatalf("local_shards_total = %d, want 0", got)
			}
		})
	}
}

// TestClusterInverseRoundTrip checks Transform∘Inverse ≈ identity
// through the cluster path.
func TestClusterInverseRoundTrip(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, Config{})
	const n = 1 << 12
	orig := noise(n, 2)
	data := append([]complex128(nil), orig...)
	ctx := context.Background()
	if err := c.Transform(ctx, data); err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if err := c.Inverse(ctx, data); err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if d := maxDiff(data, orig); d > 1e-11 {
		t.Fatalf("round trip error %g", d)
	}
}

// TestClusterWorkerDiesMidStream kills one of three workers partway
// through a stream of transforms. Every transform must still succeed
// with correct output, and the fault counters must be exactly
// consistent with the injected faults: with hedging off, every fault
// the transport delivered is one failed RPC and one retry — no
// degradation, no local shards.
func TestClusterWorkerDiesMidStream(t *testing.T) {
	var dead atomic.Bool
	var faults atomic.Int64
	c, lb, addrs := newTestCluster(t, 3, Config{
		ShardVecs: 8,
		// Generous circuit threshold keeps the dead worker in rotation,
		// so the fault count is driven purely by placement — the
		// counter identity below holds regardless.
		CircuitThreshold: 1 << 30,
		BackoffBase:      time.Microsecond,
	})
	victim := addrs[1]
	lb.Fault = func(addr string, req serve.ShardFrame) error {
		if addr == victim && dead.Load() {
			faults.Add(1)
			return errors.New("injected: connection reset")
		}
		return nil
	}

	const n = 1 << 12
	const rounds = 8
	ctx := context.Background()
	for round := 0; round < rounds; round++ {
		if round == rounds/2 {
			dead.Store(true) // the worker dies mid-stream
		}
		data := noise(n, int64(round))
		want := singleNode(t, data)
		if err := c.Transform(ctx, data); err != nil {
			t.Fatalf("round %d: Transform: %v", round, err)
		}
		if d := maxDiff(data, want); d > 1e-12*float64(n) {
			t.Fatalf("round %d: output deviates by %g", round, d)
		}
	}

	f := faults.Load()
	if f == 0 {
		t.Fatalf("no faults were injected; placement never chose %s", victim)
	}
	if got := counter(t, c, "dist_rpc_errors_total"); got != f {
		t.Errorf("rpc_errors_total = %d, want exactly %d (injected faults)", got, f)
	}
	if got := counter(t, c, "dist_retries_total"); got != f {
		t.Errorf("retries_total = %d, want exactly %d (every fault retried once)", got, f)
	}
	if got := counter(t, c, "dist_degraded_total"); got != 0 {
		t.Errorf("degraded_total = %d, want 0", got)
	}
	if got := counter(t, c, "dist_local_shards_total"); got != 0 {
		t.Errorf("local_shards_total = %d, want 0", got)
	}
	if got := counter(t, c, "dist_hedges_total"); got != 0 {
		t.Errorf("hedges_total = %d, want 0 with hedging disabled", got)
	}
	// Attempts = successes + failures; every shard eventually succeeded
	// remotely, so attempts == shards + faults.
	shards := counter(t, c, "dist_shards_total")
	if got := counter(t, c, "dist_rpc_attempts_total"); got != shards+f {
		t.Errorf("rpc_attempts_total = %d, want shards+faults = %d", got, shards+f)
	}
}

// TestClusterCircuitBreakerSheds verifies that a persistently failing
// worker trips its circuit and is bypassed without per-call errors once
// open: after the trip, transforms keep succeeding and the error count
// stops growing.
func TestClusterCircuitBreakerSheds(t *testing.T) {
	var faults atomic.Int64
	c, lb, addrs := newTestCluster(t, 3, Config{
		ShardVecs:       8,
		BackoffBase:     time.Microsecond,
		CircuitOpenBase: time.Hour, // stays open for the whole test
	})
	victim := addrs[0]
	lb.Fault = func(addr string, req serve.ShardFrame) error {
		if addr == victim {
			faults.Add(1)
			return errors.New("injected: down for good")
		}
		return nil
	}
	ctx := context.Background()
	const n = 1 << 12
	for round := 0; round < 10; round++ {
		data := noise(n, int64(round))
		want := singleNode(t, data)
		if err := c.Transform(ctx, data); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if d := maxDiff(data, want); d > 1e-12*float64(n) {
			t.Fatalf("round %d: output deviates by %g", round, d)
		}
	}
	// The circuit opens after DefaultCircuitThreshold consecutive
	// failures and never half-opens (OpenBase = 1h), so the victim saw
	// exactly threshold faults.
	if f := faults.Load(); f != DefaultCircuitThreshold {
		t.Errorf("victim saw %d faults, want exactly %d before the circuit opened", f, DefaultCircuitThreshold)
	}
	if got := counter(t, c, "dist_rpc_errors_total"); got != faults.Load() {
		t.Errorf("rpc_errors_total = %d, want %d", got, faults.Load())
	}
}

// TestClusterHedgingWins makes one worker artificially slow and checks
// that hedged requests fire, win, and keep the error counters at zero.
func TestClusterHedgingWins(t *testing.T) {
	var slow atomic.Value // string: address to slow down
	slow.Store("")
	c, lb, addrs := newTestCluster(t, 3, Config{
		ShardVecs:  8,
		HedgeDelay: time.Millisecond,
	})
	lb.Fault = func(addr string, req serve.ShardFrame) error {
		if addr == slow.Load().(string) {
			time.Sleep(100 * time.Millisecond)
		}
		return nil
	}
	slow.Store(addrs[2])
	const n = 1 << 12
	data := noise(n, 3)
	want := singleNode(t, data)
	if err := c.Transform(context.Background(), data); err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if d := maxDiff(data, want); d > 1e-12*float64(n) {
		t.Fatalf("output deviates by %g", d)
	}
	hedges := counter(t, c, "dist_hedges_total")
	wins := counter(t, c, "dist_hedge_wins_total")
	if hedges == 0 {
		t.Fatalf("no hedges fired despite a slow worker")
	}
	// Every shard whose primary is the stalled worker must be rescued
	// by its hedge; a hedge fired for a merely slow-ish healthy primary
	// may legitimately lose, so wins ≤ hedges rather than equality.
	if wins == 0 {
		t.Errorf("hedge_wins_total = 0, want > 0 (hedges must beat the 100ms stall)")
	}
	if wins > hedges {
		t.Errorf("hedge_wins_total = %d > hedges_total = %d", wins, hedges)
	}
	if got := counter(t, c, "dist_rpc_errors_total"); got != 0 {
		t.Errorf("rpc_errors_total = %d, want 0 — hedge losers must not count as failures", got)
	}
	if got := counter(t, c, "dist_retries_total"); got != 0 {
		t.Errorf("retries_total = %d, want 0", got)
	}
	slow.Store("") // let the stalled handlers finish fast on cleanup
}

// TestClusterDegradesToLocal checks both degradation tiers: a
// coordinator with no workers at all runs the whole transform locally,
// and one whose entire worker set fails runs each stranded shard
// locally — in both cases the client sees success and correct output.
func TestClusterDegradesToLocal(t *testing.T) {
	t.Run("no workers", func(t *testing.T) {
		c, err := New()
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer c.Close()
		const n = 1 << 12
		data := noise(n, 4)
		want := singleNode(t, data)
		if err := c.Transform(context.Background(), data); err != nil {
			t.Fatalf("Transform: %v", err)
		}
		if d := maxDiff(data, want); d > 1e-12*float64(n) {
			t.Fatalf("degraded output deviates by %g", d)
		}
		if got := counter(t, c, "dist_degraded_total"); got != 1 {
			t.Errorf("degraded_total = %d, want 1", got)
		}
	})
	t.Run("all workers failing", func(t *testing.T) {
		c, lb, _ := newTestCluster(t, 2, Config{
			ShardVecs:   32,
			MaxAttempts: 2,
			BackoffBase: time.Microsecond,
			// Keep circuits closed so the membership still looks
			// eligible and the dist path (not whole-transform
			// degradation) is exercised.
			CircuitThreshold: 1 << 30,
		})
		lb.Fault = func(string, serve.ShardFrame) error {
			return errors.New("injected: cluster-wide outage")
		}
		const n = 1 << 12 // 64×64 default split → 2+2 shards at ShardVecs=32
		data := noise(n, 5)
		want := singleNode(t, data)
		if err := c.Transform(context.Background(), data); err != nil {
			t.Fatalf("Transform: %v", err)
		}
		if d := maxDiff(data, want); d > 1e-12*float64(n) {
			t.Fatalf("fallback output deviates by %g", d)
		}
		shards := counter(t, c, "dist_shards_total")
		if got := counter(t, c, "dist_local_shards_total"); got != shards {
			t.Errorf("local_shards_total = %d, want every shard (%d) to fall back", got, shards)
		}
		if got := counter(t, c, "dist_degraded_total"); got != 0 {
			t.Errorf("degraded_total = %d, want 0 (per-shard fallback, not whole-transform)", got)
		}
	})
}

// TestClusterConcurrentTransforms hammers one coordinator from many
// goroutines — primarily a race-detector target for the shared
// membership, metrics, and plan-cache state.
func TestClusterConcurrentTransforms(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, Config{ShardVecs: 8})
	const n = 1 << 10
	want := singleNode(t, noise(n, 7))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := noise(n, 7)
			if err := c.Transform(context.Background(), data); err != nil {
				errs <- err
				return
			}
			if d := maxDiff(data, want); d > 1e-12*float64(n) {
				errs <- fmt.Errorf("output deviates by %g", d)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestClusterRejectsBadN covers the input validation surface.
func TestClusterRejectsBadN(t *testing.T) {
	c, _, _ := newTestCluster(t, 1, Config{})
	for _, n := range []int{0, 1, 2, 3, 6, 1000} {
		if err := c.Transform(context.Background(), make([]complex128, n)); err == nil {
			t.Errorf("Transform accepted N=%d", n)
		}
	}
}

// TestClusterContextCancellation checks a cancelled context aborts the
// distributed path with ctx.Err instead of hanging or degrading.
func TestClusterContextCancellation(t *testing.T) {
	c, lb, _ := newTestCluster(t, 2, Config{ShardVecs: 4, BackoffBase: time.Microsecond})
	block := make(chan struct{})
	var once sync.Once
	lb.Fault = func(string, serve.ShardFrame) error {
		once.Do(func() { close(block) })
		time.Sleep(5 * time.Millisecond)
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-block
		cancel()
	}()
	err := c.Transform(ctx, noise(1<<12, 8))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Transform after cancel: err = %v, want context.Canceled", err)
	}
}

// TestMembershipFileWatch verifies workers added through the polled
// membership file join the eligible set.
func TestMembershipFileWatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "members")
	if err := os.WriteFile(path, []byte("# seed\nw0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewMembership(MemberConfig{
		Static:           []string{"static0"},
		File:             path,
		FilePollInterval: 5 * time.Millisecond,
	})
	m.Start()
	defer m.Close()
	if got := len(m.Addrs()); got != 2 {
		t.Fatalf("initial Addrs = %d, want 2 (static + file)", got)
	}
	// File mtimes can be coarse; rewrite until the poll visibly picks
	// the change up or the deadline passes.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := os.WriteFile(path, []byte("w0\nw1 # joined\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		now := time.Now()
		_ = os.Chtimes(path, now, now)
		time.Sleep(10 * time.Millisecond)
		if len(m.Addrs()) == 3 {
			return
		}
	}
	t.Fatalf("file-added worker never joined; Addrs = %v", m.Addrs())
}

// TestMembershipCircuit exercises the breaker state machine directly:
// threshold trips, backoff doubling, and success reset.
func TestMembershipCircuit(t *testing.T) {
	m := NewMembership(MemberConfig{
		Static:           []string{"w0", "w1"},
		CircuitThreshold: 3,
		OpenBase:         20 * time.Millisecond,
		OpenMax:          80 * time.Millisecond,
	})
	defer m.Close()
	if m.EligibleCount() != 2 {
		t.Fatalf("EligibleCount = %d, want 2", m.EligibleCount())
	}
	for i := 0; i < 2; i++ {
		m.ReportFailure("w0")
	}
	if m.EligibleCount() != 2 {
		t.Fatalf("circuit tripped below threshold")
	}
	m.ReportFailure("w0") // third consecutive failure trips it
	if m.EligibleCount() != 1 {
		t.Fatalf("EligibleCount = %d after trip, want 1", m.EligibleCount())
	}
	w := m.worker("w0")
	if open := w.openFor.Load(); open != int64(20*time.Millisecond) {
		t.Fatalf("first open window = %v, want 20ms", time.Duration(open))
	}
	m.ReportFailure("w0") // half-open failure doubles the window
	if open := w.openFor.Load(); open != int64(40*time.Millisecond) {
		t.Fatalf("second open window = %v, want 40ms", time.Duration(open))
	}
	m.ReportFailure("w0")
	m.ReportFailure("w0") // capped at OpenMax
	if open := w.openFor.Load(); open != int64(80*time.Millisecond) {
		t.Fatalf("capped open window = %v, want 80ms", time.Duration(open))
	}
	m.ReportSuccess("w0")
	if m.EligibleCount() != 2 {
		t.Fatalf("success did not close the circuit")
	}
	if w.fails.Load() != 0 || w.openFor.Load() != 0 {
		t.Fatalf("success did not reset breaker state")
	}
}

// TestRingProperties checks the consistent-hash ring: determinism,
// distinct successors in order, exclusion, and bounded remapping when a
// worker departs.
func TestRingProperties(t *testing.T) {
	addrs := []string{"a", "b", "c", "d"}
	r := buildRing(addrs)
	keepAll := func(string) bool { return true }
	for key := uint64(0); key < 1000; key += 37 {
		s1 := r.successors(key, 3, keepAll)
		s2 := r.successors(key, 3, keepAll)
		if len(s1) != 3 {
			t.Fatalf("successors(%d) = %v, want 3 distinct workers", key, s1)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("successors not deterministic at key %d: %v vs %v", key, s1, s2)
			}
			for j := i + 1; j < len(s1); j++ {
				if s1[i] == s1[j] {
					t.Fatalf("duplicate successor at key %d: %v", key, s1)
				}
			}
		}
	}
	// Removing one worker must not remap keys between surviving workers.
	small := buildRing([]string{"a", "b", "c"})
	moved := 0
	for key := uint64(0); key < 4000; key += 13 {
		before := r.successors(key, 1, keepAll)[0]
		after := small.successors(key, 1, keepAll)[0]
		if before != "d" && before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving workers after a departure", moved)
	}
	// Exclusion skips the home worker but keeps ring order.
	key := uint64(12345)
	full := r.successors(key, 2, keepAll)
	excl := r.successors(key, 1, func(a string) bool { return a != full[0] })
	if len(excl) != 1 || excl[0] != full[1] {
		t.Fatalf("exclusion of %s gave %v, want [%s]", full[0], excl, full[1])
	}
}

// TestNearSquareFactor pins the default factorization shape.
func TestNearSquareFactor(t *testing.T) {
	for _, tc := range []struct{ n, n1, n2 int }{
		{4, 2, 2}, {8, 2, 4}, {64, 8, 8}, {1 << 13, 64, 128}, {1 << 20, 1 << 10, 1 << 10},
	} {
		n1, n2 := NearSquareFactor(tc.n)
		if n1 != tc.n1 || n2 != tc.n2 {
			t.Errorf("NearSquareFactor(%d) = %d×%d, want %d×%d", tc.n, n1, n2, tc.n1, tc.n2)
		}
	}
}

// TestLocalKernelConfig: the degraded path honors Config.LocalKernel —
// every kernel's local output matches the reference single-node
// transform to rounding.
func TestLocalKernelConfig(t *testing.T) {
	const n = 1 << 12
	for _, k := range fft.ConcreteKernels() {
		c, err := New(WithLocalKernel(k))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		data := noise(n, 7)
		want := singleNode(t, data)
		if err := c.Transform(context.Background(), data); err != nil {
			c.Close()
			t.Fatalf("%v: Transform: %v", k, err)
		}
		c.Close()
		if d := maxDiff(data, want); d > 1e-12*float64(n) {
			t.Fatalf("%v: degraded output deviates by %g", k, d)
		}
	}
}
