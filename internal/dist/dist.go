// Package dist shards large FFTs across a cluster of worker daemons —
// the cluster-scale analogue of the paper's memory-load balancing: just
// as the simulated machine spreads butterfly traffic over 4 DRAM banks
// so no port saturates, the coordinator spreads transform work over
// worker nodes so no single daemon's memory or queue becomes the
// bottleneck.
//
// A transform of length N = N1·N2 is factored four-step
// (internal/fft.FourStepPlan): the N2 column FFTs and N1 row FFTs fan
// out as shard frames (internal/serve codec) to workers running
// `fftserved -worker`, while the coordinator performs the cheap
// transposes locally. The package owns every cluster concern end to
// end:
//
//   - membership: static worker lists plus a file-watched set, active
//     health probing, and a per-worker circuit breaker (membership.go);
//   - placement: consistent hashing of shard keys so a worker
//     repeatedly sees the same shard shapes and its plan cache stays
//     warm (ring.go);
//   - partial failure: per-attempt deadlines, exponential backoff
//     retries that exclude the failed worker, and optional
//     tail-latency hedging — a second copy of a slow shard sent to the
//     next worker on the ring, first answer wins;
//   - degradation: when the worker set is empty or exhausted the
//     transform (or the single stranded shard) runs locally on the
//     host engine, so clients never see a cluster-induced failure;
//   - observability: per-worker RPC latency and error instruments plus
//     cluster-wide retry/hedge/degradation counters on a
//     metrics.Registry (metrics.go).
//
// The Loopback transport runs a whole cluster in one process, so all
// of the above is exercised by `go test -race` with no sockets.
package dist

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"codeletfft/internal/fft"
	"codeletfft/internal/host"
	"codeletfft/internal/metrics"
	"codeletfft/internal/serve"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultShardVecs    = 32
	DefaultMaxAttempts  = 3
	DefaultBackoffBase  = 5 * time.Millisecond
	DefaultBackoffMax   = 250 * time.Millisecond
	DefaultShardTimeout = 10 * time.Second
	DefaultMaxInflight  = 8

	// MaxClusterN bounds the distributed transform length to what a
	// shard frame can name (the codec's element limit).
	MaxClusterN = serve.MaxFrameElems
)

// Config tunes a Coordinator. Transport is required when any workers
// are configured; everything else has a default.
type Config struct {
	// Transport carries shard frames to workers (HTTPTransport against
	// real daemons, Loopback for in-process clusters).
	Transport Transport
	// Workers is the static worker set; MemberFile optionally names a
	// polled membership file layered on top (see MemberConfig.File).
	Workers    []string
	MemberFile string
	// ProbeInterval enables active health probing of every worker; 0
	// disables it (circuits still react to call failures).
	ProbeInterval time.Duration
	// FilePollInterval is how often MemberFile is re-read (default 2s).
	FilePollInterval time.Duration

	// ShardVecs is how many column/row vectors ride in one shard RPC.
	ShardVecs int
	// MaxAttempts bounds tries per shard (first attempt included).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the exponential retry backoff.
	BackoffBase, BackoffMax time.Duration
	// HedgeDelay, when positive, sends a second copy of a shard to the
	// next worker on the ring if the first hasn't answered within the
	// delay; the first answer wins. 0 disables hedging.
	HedgeDelay time.Duration
	// ShardTimeout is the per-attempt deadline.
	ShardTimeout time.Duration
	// MaxInflight bounds concurrent shard RPCs per transform.
	MaxInflight int

	// Factor picks the four-step split for a given N; nil means the
	// near-square power-of-two split.
	Factor func(n int) (n1, n2 int)

	// LocalWorkers and LocalTaskSize configure the host engine used for
	// degraded (local) execution; 0 means the engine defaults.
	LocalWorkers, LocalTaskSize int
	// LocalKernel selects the butterfly kernel of degraded (local)
	// execution and locally run shards. The zero value (KernelAuto)
	// resolves to radix-2 at this layer — the coordinator never runs
	// tuning measurements on the request path.
	LocalKernel fft.Kernel

	// DisableResidentSessions turns off the communication-avoiding
	// resident-shard path even when the Transport supports it, forcing
	// every transform through the legacy one-shot frames. The zero
	// value (resident enabled) is correct for new deployments; the
	// fault-injection tests that assert exact one-shot counter
	// identities set it.
	DisableResidentSessions bool

	// Circuit-breaker knobs, forwarded to the membership layer.
	CircuitThreshold int
	CircuitOpenBase  time.Duration
	CircuitOpenMax   time.Duration

	// Registry collects the coordinator's instruments; the constructor
	// creates one when nil.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.ShardVecs <= 0 {
		c.ShardVecs = DefaultShardVecs
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = DefaultShardTimeout
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.Factor == nil {
		c.Factor = NearSquareFactor
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// NearSquareFactor splits a power-of-two n into the most balanced
// power-of-two pair n1 ≤ n2 — the default four-step shape, minimizing
// the longer of the two sub-FFT lengths.
func NearSquareFactor(n int) (n1, n2 int) {
	logN := fft.Log2(n)
	l1 := logN / 2
	return 1 << l1, 1 << (logN - l1)
}

// localPlan is the cached single-node execution state for one N.
type localPlan struct {
	pl *fft.Plan
	w  []complex128
}

// Coordinator accepts transforms too large (or too numerous) for one
// node and fans them out four-step across the worker set. Safe for
// concurrent use; Close stops the membership loops.
type Coordinator struct {
	cfg     Config
	members *Membership
	m       *distMetrics
	eng     *host.Engine

	// caps caches addresses that rejected a session open as
	// FFS1-only (addr → cache expiry).
	caps sync.Map

	mu     sync.Mutex
	fs     map[[2]int]*fft.FourStepPlan
	locals map[int]*localPlan
}

// newCoordinator builds a coordinator and starts its membership loops.
// The public constructor is New (functional options, options.go).
func newCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil && (len(cfg.Workers) > 0 || cfg.MemberFile != "") {
		return nil, fmt.Errorf("dist: workers configured but no transport")
	}
	members := NewMembership(MemberConfig{
		Transport:        cfg.Transport,
		Static:           cfg.Workers,
		File:             cfg.MemberFile,
		FilePollInterval: cfg.FilePollInterval,
		ProbeInterval:    cfg.ProbeInterval,
		CircuitThreshold: cfg.CircuitThreshold,
		OpenBase:         cfg.CircuitOpenBase,
		OpenMax:          cfg.CircuitOpenMax,
	})
	members.Start()
	c := &Coordinator{
		cfg:     cfg,
		members: members,
		m:       newDistMetrics(cfg.Registry),
		eng:     host.New(host.Config{Workers: cfg.LocalWorkers}),
		fs:      map[[2]int]*fft.FourStepPlan{},
		locals:  map[int]*localPlan{},
	}
	cfg.Registry.GaugeFunc("dist_workers_eligible", func() float64 {
		return float64(c.members.EligibleCount())
	})
	cfg.Registry.GaugeFunc("dist_workers_total", func() float64 {
		return float64(len(c.members.Addrs()))
	})
	return c, nil
}

// Close stops the membership background loops.
func (c *Coordinator) Close() { c.members.Close() }

// Registry returns the coordinator's metrics registry.
func (c *Coordinator) Registry() *metrics.Registry { return c.cfg.Registry }

// Members returns the membership layer (health state, worker set).
func (c *Coordinator) Members() *Membership { return c.members }

// checkN validates a cluster transform length.
func checkN(n int) error {
	if fft.Log2(n) < 2 {
		return fmt.Errorf("%w: cluster transforms need N a power of two ≥ 4, got %d", fft.ErrUnsupportedLength, n)
	}
	if n > MaxClusterN {
		return fmt.Errorf("dist: N=%d exceeds the %d-element shard frame limit", n, MaxClusterN)
	}
	return nil
}

// Transform applies the forward FFT to data in place. With eligible
// workers it runs the four-step cluster path; with none it degrades to
// local single-node execution. The output matches the single-node
// transform within floating-point tolerance (the column/row passes are
// bitwise identical to local four-step execution; only the N1/N2
// factored ordering differs from the direct staged algorithm).
func (c *Coordinator) Transform(ctx context.Context, data []complex128) error {
	if err := checkN(len(data)); err != nil {
		return err
	}
	start := time.Now()
	defer func() { c.m.transformSec.Observe(time.Since(start).Seconds()) }()
	c.m.transforms.Inc()

	if c.members.EligibleCount() == 0 {
		c.m.degraded.Inc()
		return c.transformLocal(data)
	}
	// Prefer the communication-avoiding resident path; any mid-session
	// failure falls back to the legacy one-shot path with the input
	// untouched (session.go).
	if st, ok := c.cfg.Transport.(SessionTransport); ok && !c.cfg.DisableResidentSessions {
		if handled, err := c.transformResident(ctx, st, data); handled {
			return err
		}
	}
	return c.transformDist(ctx, data)
}

// Inverse applies the inverse FFT in place via the conjugation
// identity, reusing the forward cluster path.
func (c *Coordinator) Inverse(ctx context.Context, data []complex128) error {
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	if err := c.Transform(ctx, data); err != nil {
		return err
	}
	inv := 1 / float64(len(data))
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return nil
}

// transformLocal is the degraded path: the whole transform on the host
// engine, same numerics as a worker executing one giant shard.
func (c *Coordinator) transformLocal(data []complex128) error {
	lp, err := c.localPlanFor(len(data))
	if err != nil {
		return err
	}
	c.eng.TransformKernel(lp.pl, data, lp.w, c.cfg.LocalKernel)
	return nil
}

func (c *Coordinator) localPlanFor(n int) (*localPlan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lp, ok := c.locals[n]; ok {
		return lp, nil
	}
	p := c.cfg.LocalTaskSize
	if p <= 0 {
		p = min(64, n)
	}
	pl, err := fft.NewPlan(n, p)
	if err != nil {
		return nil, err
	}
	lp := &localPlan{pl: pl, w: fft.Twiddles(n)}
	c.locals[n] = lp
	return lp, nil
}

func (c *Coordinator) fourStepFor(n int) (*fft.FourStepPlan, error) {
	n1, n2 := c.cfg.Factor(n)
	if n1*n2 != n {
		return nil, fmt.Errorf("dist: factorization %d×%d does not cover N=%d", n1, n2, n)
	}
	key := [2]int{n1, n2}
	c.mu.Lock()
	defer c.mu.Unlock()
	if fs, ok := c.fs[key]; ok {
		return fs, nil
	}
	fs, err := fft.NewFourStep(n1, n2)
	if err != nil {
		return nil, err
	}
	c.fs[key] = fs
	return fs, nil
}

// transformDist runs the four-step decomposition with the two FFT
// passes dispatched to workers.
func (c *Coordinator) transformDist(ctx context.Context, data []complex128) error {
	fs, err := c.fourStepFor(len(data))
	if err != nil {
		return err
	}
	buf := make([]complex128, fs.N)
	fs.GatherColumns(buf, data)
	if err := c.runShards(ctx, serve.ShardFrame{Op: serve.OpColumns, VecLen: fs.N1, TotalN: fs.N}, buf, fs.N2, 0); err != nil {
		return err
	}
	fs.ScatterColumns(data, buf)
	if err := c.runShards(ctx, serve.ShardFrame{Op: serve.OpRows, VecLen: fs.N2}, data, fs.N1, 0); err != nil {
		return err
	}
	fs.FinalTranspose(buf, data)
	copy(data, buf)
	return nil
}

// runShards splits vecCount contiguous vectors of proto.VecLen held in
// data into ShardVecs-sized segments and executes them concurrently,
// writing results back in place. The first error cancels the rest.
// base offsets every frame's Start: a whole-transform pass uses 0,
// while the out-of-core hook dispatches one RAM tile at a time and
// passes the tile's first global vector index, so workers see the same
// Start they would in a whole-transform pass (the column twiddle
// exponent and the placement key both derive from it).
func (c *Coordinator) runShards(ctx context.Context, proto serve.ShardFrame, data []complex128, vecCount, base int) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, c.cfg.MaxInflight)
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	for start := 0; start < vecCount; start += c.cfg.ShardVecs {
		count := min(c.cfg.ShardVecs, vecCount-start)
		seg := data[start*proto.VecLen : (start+count)*proto.VecLen]
		req := proto
		req.Start = base + start
		// The request owns a private copy of the payload: a hedge loser
		// (or a timed-out straggler) may still be serializing the
		// request when the winner's result is copied back into seg.
		req.Data = append([]complex128(nil), seg...)
		wg.Add(1)
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Done()
			errOnce.Do(func() { firstErr = ctx.Err() })
			goto wait
		}
		go func(req serve.ShardFrame, seg []complex128) {
			defer wg.Done()
			defer func() { <-sem }()
			out, err := c.execShard(ctx, req)
			if err != nil {
				errOnce.Do(func() { firstErr = err; cancel() })
				return
			}
			copy(seg, out.Data)
		}(req, seg)
	}
wait:
	wg.Wait()
	return firstErr
}

// shardKey is the placement key: op, vector length, and start index —
// but not the payload — so repeated transforms of one shape land each
// segment on the same worker and its plan cache stays warm.
func shardKey(f serve.ShardFrame) uint64 {
	h := fnv.New64a()
	var b [20]byte
	b[0] = byte(f.Op)
	binary.LittleEndian.PutUint64(b[1:9], uint64(f.VecLen))
	binary.LittleEndian.PutUint64(b[9:17], uint64(f.Start))
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// execShard runs one shard to completion: placement, per-attempt
// deadline, hedging, backoff retries excluding failed workers, and —
// when the worker set is exhausted — local execution, so a shard never
// fails for cluster reasons. The returned frame's Data may alias
// req.Data (local path) or be fresh (remote path).
func (c *Coordinator) execShard(ctx context.Context, req serve.ShardFrame) (serve.ShardFrame, error) {
	c.m.shards.Inc()
	key := shardKey(req)
	excluded := map[string]bool{}
	backoff := c.cfg.BackoffBase
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		cands := c.members.Successors(key, 2, excluded)
		if len(cands) == 0 {
			break
		}
		alt := ""
		if len(cands) > 1 {
			alt = cands[1]
		}
		resp, addr, err := c.execHedged(ctx, cands[0], alt, req)
		if err == nil {
			c.members.ReportSuccess(addr)
			return resp, nil
		}
		if ctx.Err() != nil {
			return serve.ShardFrame{}, ctx.Err()
		}
		excluded[cands[0]] = true
		if alt != "" {
			// The hedge peer may also have failed; excluding only
			// proven-bad workers keeps the pool as wide as possible, so
			// check before re-picking rather than excluding blindly.
			if c.members.worker(alt) != nil && !c.members.worker(alt).eligible(time.Now()) {
				excluded[alt] = true
			}
		}
		if attempt+1 < c.cfg.MaxAttempts {
			c.m.retries.Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return serve.ShardFrame{}, ctx.Err()
			}
			backoff = min(2*backoff, c.cfg.BackoffMax)
		}
	}
	// Worker set exhausted (or empty mid-flight): run the shard
	// locally rather than failing the client's transform.
	c.m.localShards.Inc()
	if err := c.execShardLocal(req); err != nil {
		return serve.ShardFrame{}, err
	}
	return req, nil
}

// execHedged performs one logical attempt: the primary RPC, plus — if
// hedging is enabled, a peer exists, and the primary is still silent
// after HedgeDelay — a hedge copy to the peer. The first success wins
// and cancels the other; if both fail the primary's error is returned.
func (c *Coordinator) execHedged(ctx context.Context, primary, alt string, req serve.ShardFrame) (serve.ShardFrame, string, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp  serve.ShardFrame
		addr  string
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(addr string, hedge bool) {
		go func() {
			resp, err := c.execOnce(hctx, addr, req)
			ch <- result{resp: resp, addr: addr, err: err, hedge: hedge}
		}()
	}
	launch(primary, false)
	outstanding := 1
	var hedgeTimer <-chan time.Time
	if c.cfg.HedgeDelay > 0 && alt != "" {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeTimer = t.C
	}
	var firstErr error
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedge {
					c.m.hedgeWins.Inc()
				}
				return r.resp, r.addr, nil
			}
			if ctx.Err() == nil {
				// Count and report only genuine worker failures, not
				// cancellations of a hedge loser or of the whole call.
				c.m.errors.Inc()
				c.m.perWorkerErr(r.addr).Inc()
				c.members.ReportFailure(r.addr)
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			c.m.hedges.Inc()
			launch(alt, true)
			outstanding++
		case <-ctx.Done():
			return serve.ShardFrame{}, "", ctx.Err()
		}
	}
	return serve.ShardFrame{}, "", firstErr
}

// execOnce performs one RPC with the per-attempt deadline, recording
// latency per worker.
func (c *Coordinator) execOnce(ctx context.Context, addr string, req serve.ShardFrame) (serve.ShardFrame, error) {
	c.m.attempts.Inc()
	if c.cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.ShardTimeout)
		defer cancel()
	}
	start := time.Now()
	resp, err := c.cfg.Transport.Exec(ctx, addr, req)
	d := time.Since(start).Seconds()
	c.m.rpcSec.Observe(d)
	c.m.perWorkerSec(addr).Observe(d)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	if resp.Op != req.Op || resp.VecLen != req.VecLen || len(resp.Data) != len(req.Data) {
		return serve.ShardFrame{}, fmt.Errorf("dist: worker %s returned a mismatched shard (op %s len %d×%d)",
			addr, resp.Op, resp.VecLen, resp.VecCount())
	}
	// One-shot frames round-trip the payload: request and response have
	// identical shapes.
	c.m.bytesMoved.Add(2 * int64(serve.ShardHeaderLen+16*len(req.Data)))
	return resp, nil
}

// execShardLocal executes one shard on the coordinator itself, in
// place — identical numerics to a worker's execShard when both run the
// same kernel (results agree to rounding otherwise).
func (c *Coordinator) execShardLocal(f serve.ShardFrame) error {
	lp, err := c.localPlanFor(f.VecLen)
	if err != nil {
		return err
	}
	var tw []complex128
	if f.Op == serve.OpColumns {
		tw = fft.Twiddles(f.TotalN)
	}
	sc := fft.NewScratch(lp.pl)
	kern := c.cfg.LocalKernel.Concrete()
	for v := 0; v < f.VecCount(); v++ {
		vec := f.Vec(v)
		lp.pl.TransformKernelWith(vec, lp.w, kern, sc)
		if f.Op == serve.OpColumns {
			fft.TwiddleScale(vec, tw, f.Start+v, f.TotalN)
		}
	}
	return nil
}
