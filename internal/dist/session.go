// Coordinator half of the resident-shard session protocol: the
// communication-avoiding four-step data path. The legacy one-shot path
// moves every element over the coordinator's wire four times (columns
// out/back, rows out/back); here each worker receives its column slab
// once, keeps its row block resident while the workers exchange the
// transpose among themselves, and returns the finished rows once — so
// the coordinator's traffic is exactly one trip out and one trip in
// per element (2·16·N payload bytes per transform, plus headers), the
// invariant dist_resident_bytes_total / dist_resident_elems_total
// exposes and CI gates on.
//
// Buffer ownership per phase (coordinator side):
//
//   - gather: a pooled cols buffer receives GatherColumns; each
//     worker's cols frame encodes straight from its contiguous slice
//     of that buffer (columns [c0, c1) occupy exactly
//     cols[c0·N1 : c1·N1] in column-major order — no per-worker copy);
//   - resident: the coordinator holds nothing; workers own their row
//     blocks;
//   - fetch: each worker's rows response decodes straight into its
//     slice of a pooled rows buffer, and FinalTranspose writes the
//     caller's output only after every fetch succeeded — so any
//     mid-session failure leaves the input untouched and the transform
//     falls back to the legacy path (retries, hedging, local shards).
//
// Capability negotiation: a worker that rejects the FFS2 open (an old
// FFS1-only daemon answers 400 to the unknown magic) is cached as
// legacy-only for a minute and the transform proceeds one-shot; mixed
// fleets therefore degrade per-worker, not per-cluster.
package dist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"codeletfft/internal/serve"
)

// capabilityTTL is how long a worker stays cached as FFS1-only after
// rejecting a session open; after it expires the coordinator probes
// again, so an upgraded worker rejoins the resident path.
const capabilityTTL = time.Minute

// markLegacy caches addr as FFS1-only.
func (c *Coordinator) markLegacy(addr string) {
	c.caps.Store(addr, time.Now().Add(capabilityTTL))
	c.m.capabilityOld.Inc()
}

// isLegacy reports whether addr is cached as FFS1-only.
func (c *Coordinator) isLegacy(addr string) bool {
	v, ok := c.caps.Load(addr)
	if !ok {
		return false
	}
	if time.Now().After(v.(time.Time)) {
		c.caps.Delete(addr)
		return false
	}
	return true
}

// residentKey places a transform shape on the ring: same N1×N2 → same
// worker set, so each worker's plan cache and twiddle cache stay warm.
func residentKey(n1, n2 int) uint64 {
	h := fnv.New64a()
	var b [17]byte
	b[0] = 0xF5 // domain-separate from shardKey
	binary.LittleEndian.PutUint64(b[1:9], uint64(n1))
	binary.LittleEndian.PutUint64(b[9:17], uint64(n2))
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// residentWorker is one worker's slice of a resident transform.
type residentWorker struct {
	addr string
	spec serve.SessionSpec
	sess Session
}

// parallelWorkers runs fn once per worker concurrently; the first
// error cancels the rest and is returned.
func parallelWorkers(ctx context.Context, ws []*residentWorker, fn func(ctx context.Context, w *residentWorker) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(ws))
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *residentWorker) {
			defer wg.Done()
			if err := fn(ctx, w); err != nil {
				errs[i] = err
				cancel()
			}
		}(i, w)
	}
	wg.Wait()
	// Prefer a root-cause error: the first failure cancels the rest, so
	// sibling goroutines often surface context.Canceled.
	var first error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if !errors.Is(e, context.Canceled) {
			return e
		}
		if first == nil {
			first = e
		}
	}
	return first
}

// transformResident attempts the communication-avoiding path. handled
// reports whether the transform was completed (or definitively failed,
// e.g. the context expired); (false, nil) means "fall back to the
// legacy one-shot path with the input untouched".
func (c *Coordinator) transformResident(ctx context.Context, st SessionTransport, data []complex128) (handled bool, err error) {
	fs, err := c.fourStepFor(len(data))
	if err != nil {
		return false, nil // the legacy path will surface the same error
	}
	maxW := min(c.members.EligibleCount(), fs.N1, fs.N2)
	if maxW < 1 {
		return false, nil
	}
	cands := c.members.Successors(residentKey(fs.N1, fs.N2), maxW, nil)
	ws := make([]*residentWorker, 0, len(cands))
	for _, addr := range cands {
		if !c.isLegacy(addr) {
			ws = append(ws, &residentWorker{addr: addr})
		}
	}
	if len(ws) == 0 {
		return false, nil
	}
	w := len(ws)
	// Contiguous near-even partition of both the N2 columns and the N1
	// rows; worker i's peers are every other worker's row block.
	for i, rw := range ws {
		rw.spec = serve.SessionSpec{
			N1: fs.N1, N2: fs.N2,
			ColStart: i * fs.N2 / w, ColCount: (i+1)*fs.N2/w - i*fs.N2/w,
			RowStart: i * fs.N1 / w, RowCount: (i+1)*fs.N1/w - i*fs.N1/w,
		}
	}
	for i, rw := range ws {
		for j, pw := range ws {
			if i == j {
				continue
			}
			rw.spec.Peers = append(rw.spec.Peers, serve.PeerRange{
				Addr: pw.addr, RowStart: pw.spec.RowStart, RowCount: pw.spec.RowCount,
			})
		}
	}

	var moved atomic.Int64 // coordinator↔worker wire bytes, both directions

	closeAll := func() {
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		for _, rw := range ws {
			if rw.sess == nil {
				continue
			}
			wg.Add(1)
			go func(rw *residentWorker) {
				defer wg.Done()
				if rw.sess.CloseSession(cctx) == nil {
					moved.Add(2 * serve.SessionHeaderLen)
				}
			}(rw)
		}
		wg.Wait()
	}
	fallback := func(error) (bool, error) {
		closeAll()
		c.m.bytesMoved.Add(moved.Load())
		c.m.residentFall.Inc()
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		return false, nil
	}

	// Phase 0: open one distributed session — the SAME coordinator-chosen
	// id on every worker, so a peer exchange frame carrying that id lands
	// in the receiving worker's session table.
	sid := nextSessionID()
	openErr := parallelWorkers(ctx, ws, func(ctx context.Context, rw *residentWorker) error {
		open := serve.SessionFrame{Op: serve.OpSessOpen, Spec: &rw.spec}
		sess, err := st.OpenSession(ctx, rw.addr, rw.spec, sid)
		if err != nil {
			if errors.Is(err, ErrSessionUnsupported) {
				c.markLegacy(rw.addr)
			}
			return err
		}
		moved.Add(int64(serve.SessionFrameLen(open)) + serve.SessionHeaderLen)
		rw.sess = sess
		return nil
	})
	if openErr != nil {
		return fallback(openErr)
	}
	c.m.sessions.Add(int64(w))

	// Phase 1: gather once, ship each worker's column slab directly
	// out of the pooled column-major buffer. The ack returns only once
	// the worker has pushed every peer's row block, so after this
	// barrier every rows buffer in the cluster is complete.
	colsBuf := serve.AcquireComplex(fs.N)
	defer serve.ReleaseComplex(colsBuf)
	cols := *colsBuf
	fs.GatherColumns(cols, data)
	colsErr := parallelWorkers(ctx, ws, func(ctx context.Context, rw *residentWorker) error {
		sp := rw.spec
		req := serve.SessionFrame{
			Op: serve.OpSessCols, VecLen: sp.N1, VecCount: sp.ColCount, Arg0: sp.ColStart,
			Data: cols[sp.ColStart*sp.N1 : (sp.ColStart+sp.ColCount)*sp.N1],
		}
		moved.Add(int64(serve.SessionFrameLen(req)) + serve.SessionHeaderLen)
		ack, err := rw.sess.ExecShard(ctx, req, nil)
		if err != nil {
			return err
		}
		if ack.Op != serve.OpSessAck {
			return fmt.Errorf("dist: worker %s answered cols with %s", rw.addr, ack.Op)
		}
		return nil
	})
	if colsErr != nil {
		return fallback(colsErr)
	}

	// Phase 2: fetch each finished row block straight into its slice
	// of the pooled rows buffer. The caller's data is only written
	// after every fetch succeeded.
	rowsBuf := serve.AcquireComplex(fs.N)
	defer serve.ReleaseComplex(rowsBuf)
	rows := *rowsBuf
	rowsErr := parallelWorkers(ctx, ws, func(ctx context.Context, rw *residentWorker) error {
		sp := rw.spec
		into := rows[sp.RowStart*sp.N2 : (sp.RowStart+sp.RowCount)*sp.N2]
		resp, err := rw.sess.ExecShard(ctx, serve.SessionFrame{Op: serve.OpSessRows}, into)
		if err != nil {
			return err
		}
		if resp.Op != serve.OpSessRows || resp.VecLen != sp.N2 || resp.VecCount != sp.RowCount || resp.Arg0 != sp.RowStart {
			return fmt.Errorf("dist: worker %s returned mismatched rows (%s %d×%d@%d)",
				rw.addr, resp.Op, resp.VecCount, resp.VecLen, resp.Arg0)
		}
		moved.Add(2*serve.SessionHeaderLen + 16*int64(len(resp.Data)))
		return nil
	})
	if rowsErr != nil {
		return fallback(rowsErr)
	}

	fs.FinalTranspose(data, rows)
	closeAll()
	total := moved.Load()
	c.m.bytesMoved.Add(total)
	c.m.transformB.Observe(float64(total))
	c.m.residentBytes.Add(total)
	c.m.residentElems.Add(int64(fs.N))
	c.m.residentOK.Inc()
	return true, nil
}
