package dist

import (
	"context"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Circuit-breaker defaults: a worker that fails CircuitThreshold
// consecutive calls is taken out of rotation for OpenBase, doubling up
// to OpenMax while failures continue; the first success closes the
// circuit and resets the backoff.
const (
	DefaultCircuitThreshold = 3
	DefaultCircuitOpenBase  = 250 * time.Millisecond
	DefaultCircuitOpenMax   = 5 * time.Second
)

// workerState is the per-worker health and circuit record. All fields
// are atomics so the dispatch hot path reads them without locks.
type workerState struct {
	addr string

	unhealthy atomic.Bool  // last health probe failed
	fails     atomic.Int32 // consecutive call/probe failures
	openUntil atomic.Int64 // circuit open until this unix-nano instant
	openFor   atomic.Int64 // current open duration (nanos), doubles per trip
}

// eligible reports whether the worker may receive traffic now: circuit
// closed (or its open window expired — the half-open probe state) and
// not marked unhealthy by the prober. A worker that was never probed is
// optimistically eligible.
func (w *workerState) eligible(now time.Time) bool {
	return now.UnixNano() >= w.openUntil.Load() && !w.unhealthy.Load()
}

// MemberConfig tunes a Membership.
type MemberConfig struct {
	// Transport performs health probes (nil disables probing even if
	// ProbeInterval is set).
	Transport Transport
	// Static is the initial worker set.
	Static []string
	// File, when non-empty, is a membership file polled every
	// FilePollInterval: one worker address per line, '#' comments and
	// blank lines ignored. The file replaces the whole worker set, so
	// it can both add and remove workers at runtime.
	File             string
	FilePollInterval time.Duration
	// ProbeInterval is how often every worker's health endpoint is
	// probed; 0 disables active probing (circuits still react to call
	// failures reported by the coordinator).
	ProbeInterval time.Duration

	// Circuit-breaker knobs; zero values take the defaults above.
	CircuitThreshold  int
	OpenBase, OpenMax time.Duration
}

// Membership tracks the worker set and each worker's health: static
// and file-sourced members, active health probing, and a per-worker
// circuit breaker fed by the coordinator's call outcomes. Placement is
// by consistent hashing so shard keys keep their home workers across
// membership churn.
type Membership struct {
	cfg MemberConfig

	mu      sync.RWMutex
	workers map[string]*workerState
	ring    *ring

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewMembership builds the membership with the static set (plus the
// file contents, if the file exists) and applies config defaults.
// Call Start to begin probing and file polling, Close to stop.
func NewMembership(cfg MemberConfig) *Membership {
	if cfg.CircuitThreshold <= 0 {
		cfg.CircuitThreshold = DefaultCircuitThreshold
	}
	if cfg.OpenBase <= 0 {
		cfg.OpenBase = DefaultCircuitOpenBase
	}
	if cfg.OpenMax <= 0 {
		cfg.OpenMax = DefaultCircuitOpenMax
	}
	if cfg.FilePollInterval <= 0 {
		cfg.FilePollInterval = 2 * time.Second
	}
	m := &Membership{cfg: cfg, workers: map[string]*workerState{}, stop: make(chan struct{})}
	m.setWorkers(cfg.Static)
	if cfg.File != "" {
		if addrs, err := readMemberFile(cfg.File); err == nil {
			m.setWorkers(mergeAddrs(cfg.Static, addrs))
		}
	}
	return m
}

// Start launches the health-probe and membership-file poll loops for
// whichever of the two the config enables.
func (m *Membership) Start() {
	if m.cfg.ProbeInterval > 0 && m.cfg.Transport != nil {
		m.wg.Add(1)
		go m.probeLoop()
	}
	if m.cfg.File != "" {
		m.wg.Add(1)
		go m.fileLoop()
	}
}

// Close stops the background loops. Idempotent.
func (m *Membership) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// setWorkers replaces the worker set, preserving the state of workers
// that remain and rebuilding the placement ring.
func (m *Membership) setWorkers(addrs []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := make(map[string]*workerState, len(addrs))
	for _, addr := range addrs {
		if w, ok := m.workers[addr]; ok {
			next[addr] = w
		} else {
			next[addr] = &workerState{addr: addr}
		}
	}
	m.workers = next
	m.ring = buildRing(addrs)
}

// Addrs returns every member address (eligible or not), sorted by the
// ring's notion of order not guaranteed — callers sort if they care.
func (m *Membership) Addrs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.workers))
	for addr := range m.workers {
		out = append(out, addr)
	}
	return out
}

// EligibleCount reports how many workers may receive traffic now.
func (m *Membership) EligibleCount() int {
	now := time.Now()
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, w := range m.workers {
		if w.eligible(now) {
			n++
		}
	}
	return n
}

// Successors returns up to max eligible workers for the shard key in
// ring order, skipping excluded addresses. Element 0 is the shard's
// home worker; element 1 is the failover/hedge peer.
func (m *Membership) Successors(key uint64, max int, excluded map[string]bool) []string {
	now := time.Now()
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.ring == nil {
		return nil
	}
	return m.ring.successors(key, max, func(addr string) bool {
		if excluded[addr] {
			return false
		}
		w, ok := m.workers[addr]
		return ok && w.eligible(now)
	})
}

// ReportSuccess records a successful call: the circuit closes and the
// backoff resets.
func (m *Membership) ReportSuccess(addr string) {
	if w := m.worker(addr); w != nil {
		w.fails.Store(0)
		w.openFor.Store(0)
		w.openUntil.Store(0)
	}
}

// ReportFailure records a failed call; at CircuitThreshold consecutive
// failures the worker's circuit opens for the current backoff window,
// doubling (up to OpenMax) on every subsequent failure — so a worker in
// the half-open state that fails its probe trip re-opens immediately
// with a longer window.
func (m *Membership) ReportFailure(addr string) {
	w := m.worker(addr)
	if w == nil {
		return
	}
	if int(w.fails.Add(1)) < m.cfg.CircuitThreshold {
		return
	}
	open := w.openFor.Load()
	if open == 0 {
		open = int64(m.cfg.OpenBase)
	} else if open < int64(m.cfg.OpenMax) {
		open = min(2*open, int64(m.cfg.OpenMax))
	}
	w.openFor.Store(open)
	w.openUntil.Store(time.Now().UnixNano() + open)
}

func (m *Membership) worker(addr string) *workerState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.workers[addr]
}

func (m *Membership) probeLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
		}
		m.mu.RLock()
		ws := make([]*workerState, 0, len(m.workers))
		for _, w := range m.workers {
			ws = append(ws, w)
		}
		m.mu.RUnlock()
		for _, w := range ws {
			ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ProbeInterval)
			err := m.cfg.Transport.Health(ctx, w.addr)
			cancel()
			if err != nil {
				w.unhealthy.Store(true)
				m.ReportFailure(w.addr)
			} else {
				w.unhealthy.Store(false)
			}
		}
	}
}

func (m *Membership) fileLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.FilePollInterval)
	defer tick.Stop()
	var lastMod time.Time
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
		}
		st, err := os.Stat(m.cfg.File)
		if err != nil {
			continue // missing file keeps the current set
		}
		if !st.ModTime().After(lastMod) {
			continue
		}
		lastMod = st.ModTime()
		addrs, err := readMemberFile(m.cfg.File)
		if err != nil {
			continue
		}
		m.setWorkers(mergeAddrs(m.cfg.Static, addrs))
	}
}

// readMemberFile parses one worker address per line; '#' starts a
// comment and blank lines are skipped.
func readMemberFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var addrs []string
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			addrs = append(addrs, line)
		}
	}
	return addrs, nil
}

// mergeAddrs unions the static set with the file set, preserving first
// appearance order and dropping duplicates.
func mergeAddrs(static, file []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range append(append([]string(nil), static...), file...) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
