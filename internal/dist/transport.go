package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"codeletfft/internal/serve"
)

// Transport carries shard frames to workers. Exec must not mutate
// req.Data (hedged attempts share one request) and must return a
// response with freshly allocated Data. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Exec posts one shard frame to the worker at addr and returns the
	// decoded response frame.
	Exec(ctx context.Context, addr string, req serve.ShardFrame) (serve.ShardFrame, error)
	// Health probes the worker's health endpoint; nil means the worker
	// is accepting traffic.
	Health(ctx context.Context, addr string) error
}

// ErrSessionUnsupported reports that a worker rejected an FFS2 open —
// an old FFS1-only worker, or one with sessions disabled. The
// coordinator caches the address as legacy-only and falls back to
// one-shot Exec frames.
var ErrSessionUnsupported = errors.New("dist: worker does not support resident sessions")

// Session is one open resident-shard session on a worker: the column
// slab ships out through it once, the finished row block ships back
// once, and between the two the data stays on the worker. Sessions are
// not safe for concurrent use (the coordinator drives each worker's
// session from one goroutine at a time); Close may be called from any
// goroutine and is idempotent on the worker.
type Session interface {
	// ExecShard posts one session frame and returns the decoded
	// response. When respInto is non-nil and the response carries a
	// payload, it is decoded directly into respInto (which must have
	// exactly the response's element count) — the zero-copy path that
	// lands a worker's row block straight in the coordinator's output
	// slab. ExecShard must not mutate req.Data.
	ExecShard(ctx context.Context, req serve.SessionFrame, respInto []complex128) (serve.SessionFrame, error)
	// CloseSession releases the worker-side session state.
	CloseSession(ctx context.Context) error
}

// SessionTransport is a Transport that can additionally open resident
// sessions. id is the coordinator-chosen session identifier — one
// distributed transform opens the SAME id on every participating
// worker, which is how a worker matches an incoming peer exchange
// frame to its own session. OpenSession returns ErrSessionUnsupported
// (possibly wrapped) when the worker speaks only FFS1.
type SessionTransport interface {
	Transport
	OpenSession(ctx context.Context, addr string, spec serve.SessionSpec, id uint64) (Session, error)
}

// HTTPTransport speaks the shard protocol over real HTTP: addr is the
// worker's base URL (e.g. "http://10.0.0.7:8080") with the shard-exec
// endpoint at /fft/shard and health at /healthz — a `fftserved -worker`
// process.
type HTTPTransport struct {
	// Client is the HTTP client to use; nil means a dedicated client
	// with sane connection pooling and no global timeout (per-call
	// deadlines come from the context).
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return defaultHTTPClient
}

// defaultHTTPClient pools keep-alive connections per worker; shard
// payloads are large, so reusing connections matters more than the
// default transport's conservative idle limits.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Exec implements Transport.
func (t *HTTPTransport) Exec(ctx context.Context, addr string, req serve.ShardFrame) (serve.ShardFrame, error) {
	enc, err := serve.EncodeShardFrame(req)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/fft/shard", bytes.NewReader(enc))
	if err != nil {
		return serve.ShardFrame{}, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client().Do(hreq)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return serve.ShardFrame{}, fmt.Errorf("dist: worker %s: status %d: %s", addr, resp.StatusCode, snippet(raw))
	}
	return serve.DecodeShardFrame(raw)
}

// Health implements Transport.
func (t *HTTPTransport) Health(ctx context.Context, addr string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s health: status %d", addr, resp.StatusCode)
	}
	return nil
}

// sessionIDs hands out coordinator-unique session IDs, seeded from the
// clock so two coordinator processes opening sessions on one worker
// don't collide at id 1.
var sessionIDs atomic.Uint64

func init() { sessionIDs.Store(uint64(time.Now().UnixNano())) }

func nextSessionID() uint64 { return sessionIDs.Add(1) }

// statusError is a non-200 worker response; OpenSession maps the
// rejection statuses onto ErrSessionUnsupported.
type statusError struct {
	addr string
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("dist: worker %s: status %d: %s", e.addr, e.code, e.msg)
}

// checkOpenAck turns an open response into the capability verdict: an
// FFS1-only worker 400s the unknown magic (and a drained session table
// 404s later frames), both of which mean "use the legacy path".
func checkOpenAck(ack serve.SessionFrame, err error) error {
	if err != nil {
		var se *statusError
		if errors.As(err, &se) && (se.code == http.StatusBadRequest || se.code == http.StatusNotFound) {
			return fmt.Errorf("%w: %s", ErrSessionUnsupported, se.msg)
		}
		return err
	}
	if ack.Op != serve.OpSessAck || ack.Flags&serve.FlagResident == 0 {
		return ErrSessionUnsupported
	}
	return nil
}

// OpenSession implements SessionTransport.
func (t *HTTPTransport) OpenSession(ctx context.Context, addr string, spec serve.SessionSpec, id uint64) (Session, error) {
	sess := &httpSession{t: t, addr: addr, id: id}
	ack, err := sess.ExecShard(ctx, serve.SessionFrame{Op: serve.OpSessOpen, Spec: &spec}, nil)
	if err := checkOpenAck(ack, err); err != nil {
		return nil, err
	}
	return sess, nil
}

type httpSession struct {
	t    *HTTPTransport
	addr string
	id   uint64
}

// ExecShard implements Session over real HTTP: the request encodes
// into a pooled frame, the response reads into a pooled frame, and a
// payload-bearing response decodes straight into respInto.
func (s *httpSession) ExecShard(ctx context.Context, req serve.SessionFrame, respInto []complex128) (serve.SessionFrame, error) {
	req.ID = s.id
	bp := serve.AcquireFrame(serve.SessionFrameLen(req))
	enc, err := serve.AppendSessionFrame((*bp)[:0], req)
	if err != nil {
		serve.ReleaseFrame(bp)
		return serve.SessionFrame{}, err
	}
	*bp = enc
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, s.addr+"/fft/shard", bytes.NewReader(enc))
	if err != nil {
		serve.ReleaseFrame(bp)
		return serve.SessionFrame{}, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.t.client().Do(hreq)
	if err != nil {
		// The transport may still reference the body on some error
		// paths; let the GC reclaim the buffer rather than risk reuse.
		return serve.SessionFrame{}, err
	}
	defer resp.Body.Close()
	raw, rp, err := readBodyPooled(resp.Body, resp.ContentLength)
	serve.ReleaseFrame(bp) // request fully sent once the response arrived
	if err != nil {
		return serve.SessionFrame{}, err
	}
	defer serve.ReleaseFrame(rp)
	if resp.StatusCode != http.StatusOK {
		return serve.SessionFrame{}, &statusError{addr: s.addr, code: resp.StatusCode, msg: snippet(raw)}
	}
	if respInto != nil {
		return serve.DecodeSessionFrameInto(raw, respInto)
	}
	return serve.DecodeSessionFrame(raw)
}

// CloseSession implements Session.
func (s *httpSession) CloseSession(ctx context.Context) error {
	_, err := s.ExecShard(ctx, serve.SessionFrame{Op: serve.OpSessClose}, nil)
	return err
}

// readBodyPooled reads r fully into a pooled buffer (exact-sized when
// the length is known). The caller must ReleaseFrame the returned
// pointer; the byte slice aliases it.
func readBodyPooled(r io.Reader, contentLength int64) ([]byte, *[]byte, error) {
	if contentLength >= 0 && contentLength <= 16*int64(serve.MaxFrameElems)+1<<20 {
		bp := serve.AcquireFrame(int(contentLength))
		if _, err := io.ReadFull(r, *bp); err != nil {
			serve.ReleaseFrame(bp)
			return nil, nil, err
		}
		return *bp, bp, nil
	}
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	return b, &b, nil
}

func snippet(b []byte) string {
	const max = 120
	s := string(bytes.TrimSpace(b))
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}

// Loopback is an in-process Transport: worker addresses map to HTTP
// handlers (typically serve.Server handlers with the shard endpoint
// enabled) invoked directly, so a whole cluster — coordinator, workers,
// codec, failure handling — runs inside one `go test` process under
// the race detector, with no sockets.
type Loopback struct {
	mu       sync.RWMutex
	handlers map[string]http.Handler

	// Fault, when non-nil, runs before every Exec; a non-nil return is
	// delivered as the transport error without reaching the worker —
	// the fault-injection seam the cluster tests and fftcheck use to
	// simulate crashed or partitioned workers.
	Fault func(addr string, req serve.ShardFrame) error

	// SessionFault, when non-nil, runs before every session frame
	// (coordinator→worker ExecShard and worker→worker PushFrame alike);
	// a non-nil return is delivered as the transport error without
	// reaching the worker — mid-session worker death.
	SessionFault func(addr string, op serve.SessionOp) error
	// TruncateFrame, when non-nil, may mangle an encoded session frame
	// before delivery — a partial write on the wire.
	TruncateFrame func(addr string, op serve.SessionOp, frame []byte) []byte
	// TruncateResponse, when non-nil, may mangle a session response
	// before the coordinator decodes it — a short read.
	TruncateResponse func(addr string, op serve.SessionOp, frame []byte) []byte
}

// NewLoopback returns an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{handlers: map[string]http.Handler{}}
}

// Register maps a worker address to its handler.
func (l *Loopback) Register(addr string, h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handlers[addr] = h
}

// Deregister removes a worker, simulating a vanished process: further
// calls to it fail like a refused dial.
func (l *Loopback) Deregister(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.handlers, addr)
}

func (l *Loopback) handler(addr string) (http.Handler, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	h, ok := l.handlers[addr]
	if !ok {
		return nil, fmt.Errorf("dist: loopback worker %s: connection refused", addr)
	}
	return h, nil
}

// Exec implements Transport.
func (l *Loopback) Exec(ctx context.Context, addr string, req serve.ShardFrame) (serve.ShardFrame, error) {
	if f := l.Fault; f != nil {
		if err := f(addr, req); err != nil {
			return serve.ShardFrame{}, err
		}
	}
	h, err := l.handler(addr)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	enc, err := serve.EncodeShardFrame(req)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	hreq := httptest.NewRequest(http.MethodPost, "http://"+addr+"/fft/shard", bytes.NewReader(enc)).WithContext(ctx)
	hreq.Header.Set("Content-Type", "application/octet-stream")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, hreq)
	if err := ctx.Err(); err != nil {
		return serve.ShardFrame{}, err
	}
	if rec.Code != http.StatusOK {
		return serve.ShardFrame{}, fmt.Errorf("dist: worker %s: status %d: %s", addr, rec.Code, snippet(rec.Body.Bytes()))
	}
	return serve.DecodeShardFrame(rec.Body.Bytes())
}

// OpenSession implements SessionTransport.
func (l *Loopback) OpenSession(ctx context.Context, addr string, spec serve.SessionSpec, id uint64) (Session, error) {
	sess := &loopbackSession{l: l, addr: addr, id: id}
	ack, err := sess.ExecShard(ctx, serve.SessionFrame{Op: serve.OpSessOpen, Spec: &spec}, nil)
	if err := checkOpenAck(ack, err); err != nil {
		return nil, err
	}
	return sess, nil
}

type loopbackSession struct {
	l    *Loopback
	addr string
	id   uint64
}

// ExecShard implements Session in-process, applying the loopback's
// session fault hooks on the way through.
func (s *loopbackSession) ExecShard(ctx context.Context, req serve.SessionFrame, respInto []complex128) (serve.SessionFrame, error) {
	req.ID = s.id
	if f := s.l.SessionFault; f != nil {
		if err := f(s.addr, req.Op); err != nil {
			return serve.SessionFrame{}, err
		}
	}
	h, err := s.l.handler(s.addr)
	if err != nil {
		return serve.SessionFrame{}, err
	}
	enc, err := serve.EncodeSessionFrame(req)
	if err != nil {
		return serve.SessionFrame{}, err
	}
	if tr := s.l.TruncateFrame; tr != nil {
		enc = tr(s.addr, req.Op, enc)
	}
	hreq := httptest.NewRequest(http.MethodPost, "http://"+s.addr+"/fft/shard", bytes.NewReader(enc)).WithContext(ctx)
	hreq.Header.Set("Content-Type", "application/octet-stream")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, hreq)
	if err := ctx.Err(); err != nil {
		return serve.SessionFrame{}, err
	}
	if rec.Code != http.StatusOK {
		return serve.SessionFrame{}, &statusError{addr: s.addr, code: rec.Code, msg: snippet(rec.Body.Bytes())}
	}
	raw := rec.Body.Bytes()
	if tr := s.l.TruncateResponse; tr != nil {
		raw = tr(s.addr, req.Op, raw)
	}
	if respInto != nil {
		return serve.DecodeSessionFrameInto(raw, respInto)
	}
	return serve.DecodeSessionFrame(raw)
}

// CloseSession implements Session.
func (s *loopbackSession) CloseSession(ctx context.Context) error {
	_, err := s.ExecShard(ctx, serve.SessionFrame{Op: serve.OpSessClose}, nil)
	return err
}

// PushFrame implements serve.PeerSender, carrying worker→worker
// exchange frames through the same in-process fabric (and the same
// fault hooks) so the whole resident protocol runs under -race in one
// process.
func (l *Loopback) PushFrame(ctx context.Context, addr string, frame []byte) ([]byte, error) {
	op := serve.OpSessExchange
	if f := l.SessionFault; f != nil {
		if err := f(addr, op); err != nil {
			return nil, err
		}
	}
	if tr := l.TruncateFrame; tr != nil {
		frame = tr(addr, op, frame)
	}
	h, err := l.handler(addr)
	if err != nil {
		return nil, err
	}
	hreq := httptest.NewRequest(http.MethodPost, "http://"+addr+"/fft/shard", bytes.NewReader(frame)).WithContext(ctx)
	hreq.Header.Set("Content-Type", "application/octet-stream")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, hreq)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("dist: loopback peer %s: status %d: %s", addr, rec.Code, snippet(rec.Body.Bytes()))
	}
	return rec.Body.Bytes(), nil
}

// Health implements Transport.
func (l *Loopback) Health(ctx context.Context, addr string) error {
	h, err := l.handler(addr)
	if err != nil {
		return err
	}
	hreq := httptest.NewRequest(http.MethodGet, "http://"+addr+"/healthz", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, hreq)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("dist: worker %s health: status %d", addr, rec.Code)
	}
	return nil
}
