package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"codeletfft/internal/serve"
)

// Transport carries shard frames to workers. Exec must not mutate
// req.Data (hedged attempts share one request) and must return a
// response with freshly allocated Data. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Exec posts one shard frame to the worker at addr and returns the
	// decoded response frame.
	Exec(ctx context.Context, addr string, req serve.ShardFrame) (serve.ShardFrame, error)
	// Health probes the worker's health endpoint; nil means the worker
	// is accepting traffic.
	Health(ctx context.Context, addr string) error
}

// HTTPTransport speaks the shard protocol over real HTTP: addr is the
// worker's base URL (e.g. "http://10.0.0.7:8080") with the shard-exec
// endpoint at /fft/shard and health at /healthz — a `fftserved -worker`
// process.
type HTTPTransport struct {
	// Client is the HTTP client to use; nil means a dedicated client
	// with sane connection pooling and no global timeout (per-call
	// deadlines come from the context).
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return defaultHTTPClient
}

// defaultHTTPClient pools keep-alive connections per worker; shard
// payloads are large, so reusing connections matters more than the
// default transport's conservative idle limits.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Exec implements Transport.
func (t *HTTPTransport) Exec(ctx context.Context, addr string, req serve.ShardFrame) (serve.ShardFrame, error) {
	enc, err := serve.EncodeShardFrame(req)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/fft/shard", bytes.NewReader(enc))
	if err != nil {
		return serve.ShardFrame{}, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client().Do(hreq)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return serve.ShardFrame{}, fmt.Errorf("dist: worker %s: status %d: %s", addr, resp.StatusCode, snippet(raw))
	}
	return serve.DecodeShardFrame(raw)
}

// Health implements Transport.
func (t *HTTPTransport) Health(ctx context.Context, addr string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s health: status %d", addr, resp.StatusCode)
	}
	return nil
}

func snippet(b []byte) string {
	const max = 120
	s := string(bytes.TrimSpace(b))
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}

// Loopback is an in-process Transport: worker addresses map to HTTP
// handlers (typically serve.Server handlers with the shard endpoint
// enabled) invoked directly, so a whole cluster — coordinator, workers,
// codec, failure handling — runs inside one `go test` process under
// the race detector, with no sockets.
type Loopback struct {
	mu       sync.RWMutex
	handlers map[string]http.Handler

	// Fault, when non-nil, runs before every Exec; a non-nil return is
	// delivered as the transport error without reaching the worker —
	// the fault-injection seam the cluster tests and fftcheck use to
	// simulate crashed or partitioned workers.
	Fault func(addr string, req serve.ShardFrame) error
}

// NewLoopback returns an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{handlers: map[string]http.Handler{}}
}

// Register maps a worker address to its handler.
func (l *Loopback) Register(addr string, h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handlers[addr] = h
}

// Deregister removes a worker, simulating a vanished process: further
// calls to it fail like a refused dial.
func (l *Loopback) Deregister(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.handlers, addr)
}

func (l *Loopback) handler(addr string) (http.Handler, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	h, ok := l.handlers[addr]
	if !ok {
		return nil, fmt.Errorf("dist: loopback worker %s: connection refused", addr)
	}
	return h, nil
}

// Exec implements Transport.
func (l *Loopback) Exec(ctx context.Context, addr string, req serve.ShardFrame) (serve.ShardFrame, error) {
	if f := l.Fault; f != nil {
		if err := f(addr, req); err != nil {
			return serve.ShardFrame{}, err
		}
	}
	h, err := l.handler(addr)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	enc, err := serve.EncodeShardFrame(req)
	if err != nil {
		return serve.ShardFrame{}, err
	}
	hreq := httptest.NewRequest(http.MethodPost, "http://"+addr+"/fft/shard", bytes.NewReader(enc)).WithContext(ctx)
	hreq.Header.Set("Content-Type", "application/octet-stream")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, hreq)
	if err := ctx.Err(); err != nil {
		return serve.ShardFrame{}, err
	}
	if rec.Code != http.StatusOK {
		return serve.ShardFrame{}, fmt.Errorf("dist: worker %s: status %d: %s", addr, rec.Code, snippet(rec.Body.Bytes()))
	}
	return serve.DecodeShardFrame(rec.Body.Bytes())
}

// Health implements Transport.
func (l *Loopback) Health(ctx context.Context, addr string) error {
	h, err := l.handler(addr)
	if err != nil {
		return err
	}
	hreq := httptest.NewRequest(http.MethodGet, "http://"+addr+"/healthz", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, hreq)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("dist: worker %s health: status %d", addr, rec.Code)
	}
	return nil
}
