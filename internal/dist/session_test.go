package dist

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"codeletfft/internal/serve"
)

// newResidentCluster stands up a loopback cluster with the resident
// session path enabled and peer exchange wired. Workers whose index is
// in oldWorkers run with sessions disabled — an FFS1-only daemon, the
// mixed-version fleet case.
func newResidentCluster(t *testing.T, nWorkers int, cfg Config, oldWorkers ...int) (*Coordinator, *Loopback, []string) {
	t.Helper()
	old := map[int]bool{}
	for _, i := range oldWorkers {
		old[i] = true
	}
	lb := NewLoopback()
	addrs := make([]string, nWorkers)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("worker-%d", i)
		srv := serve.New(serve.Config{
			EnableShard:     true,
			MaxN:            1 << 20,
			Peers:           lb,
			DisableSessions: old[i],
		})
		lb.Register(addrs[i], srv.Handler())
	}
	cfg.Transport = lb
	cfg.Workers = addrs
	c, err := New(
		WithTransport(lb),
		WithWorkers(addrs...),
		WithShardVecs(cfg.ShardVecs),
		WithMaxAttempts(cfg.MaxAttempts),
		WithBackoff(cfg.BackoffBase, cfg.BackoffMax),
		WithFactor(cfg.Factor),
		WithResidentSessions(true),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c, lb, addrs
}

// TestResidentMatchesSingleNode sweeps sizes and worker counts through
// the resident session path and compares against the single-node
// transform. Every transform must complete resident — no fallback, no
// degradation.
func TestResidentMatchesSingleNode(t *testing.T) {
	for _, nw := range []int{1, 2, 4} {
		for _, n := range []int{1 << 6, 1 << 12, 1 << 16} {
			t.Run(fmt.Sprintf("w=%d/n=%d", nw, n), func(t *testing.T) {
				c, _, _ := newResidentCluster(t, nw, Config{})
				data := noise(n, int64(n+nw))
				want := singleNode(t, data)
				if err := c.Transform(context.Background(), data); err != nil {
					t.Fatalf("Transform: %v", err)
				}
				if d := maxDiff(data, want); d > 1e-12*float64(n) {
					t.Fatalf("resident output deviates from single node by %g", d)
				}
				if got := counter(t, c, "dist_resident_ok_total"); got != 1 {
					t.Errorf("resident_ok_total = %d, want 1", got)
				}
				if got := counter(t, c, "dist_resident_fallback_total"); got != 0 {
					t.Errorf("resident_fallback_total = %d, want 0", got)
				}
				if got := counter(t, c, "dist_degraded_total"); got != 0 {
					t.Errorf("degraded_total = %d, want 0", got)
				}
			})
		}
	}
}

// TestResidentInverseRoundTrip checks Transform∘Inverse ≈ identity on
// the resident path.
func TestResidentInverseRoundTrip(t *testing.T) {
	c, _, _ := newResidentCluster(t, 3, Config{})
	const n = 1 << 12
	orig := noise(n, 11)
	data := append([]complex128(nil), orig...)
	ctx := context.Background()
	if err := c.Transform(ctx, data); err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if err := c.Inverse(ctx, data); err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if d := maxDiff(data, orig); d > 1e-11 {
		t.Fatalf("round trip error %g", d)
	}
	if got := counter(t, c, "dist_resident_ok_total"); got != 2 {
		t.Errorf("resident_ok_total = %d, want 2", got)
	}
}

// TestResidentBytesMoved pins the communication-avoidance invariant:
// a resident transform moves each element over the coordinator's wire
// once out and once back, so per-transform bytes stay within 2% (frame
// headers) of 2·16·N.
func TestResidentBytesMoved(t *testing.T) {
	c, _, _ := newResidentCluster(t, 3, Config{})
	const n = 1 << 16
	const rounds = 3
	for round := 0; round < rounds; round++ {
		data := noise(n, int64(round))
		if err := c.Transform(context.Background(), data); err != nil {
			t.Fatalf("round %d: Transform: %v", round, err)
		}
	}
	if got := counter(t, c, "dist_resident_ok_total"); got != rounds {
		t.Fatalf("resident_ok_total = %d, want %d", got, rounds)
	}
	elems := counter(t, c, "dist_resident_elems_total")
	if elems != rounds*n {
		t.Fatalf("resident_elems_total = %d, want %d", elems, rounds*n)
	}
	bytes := counter(t, c, "dist_resident_bytes_total")
	payload := 2 * 16 * elems
	if bytes < payload {
		t.Errorf("resident_bytes_total = %d < payload floor %d — undercounting", bytes, payload)
	}
	if limit := payload + payload/50; bytes > limit {
		t.Errorf("resident_bytes_total = %d exceeds 1.02·2·16·N = %d — not communication-avoiding", bytes, limit)
	}
	// The legacy counter covers both paths, so it must have absorbed the
	// resident traffic too.
	if moved := counter(t, c, "dist_bytes_moved_total"); moved != bytes {
		t.Errorf("bytes_moved_total = %d, want %d (resident-only traffic)", moved, bytes)
	}
}

// TestResidentMixedVersionFallback runs a fleet where one worker is an
// old FFS1-only daemon. The first transform must detect the rejected
// open, cache the worker as legacy, fall back one-shot, and still
// produce correct output; the next transform must go resident on the
// remaining session-capable workers.
func TestResidentMixedVersionFallback(t *testing.T) {
	c, _, _ := newResidentCluster(t, 3, Config{}, 1) // worker-1 is FFS1-only
	const n = 1 << 12
	ctx := context.Background()

	data := noise(n, 21)
	want := singleNode(t, data)
	if err := c.Transform(ctx, data); err != nil {
		t.Fatalf("mixed-version Transform: %v", err)
	}
	if d := maxDiff(data, want); d > 1e-12*float64(n) {
		t.Fatalf("fallback output deviates by %g", d)
	}
	if got := counter(t, c, "dist_capability_legacy_total"); got != 1 {
		t.Errorf("capability_legacy_total = %d, want 1", got)
	}
	if got := counter(t, c, "dist_resident_fallback_total"); got != 1 {
		t.Errorf("resident_fallback_total = %d, want 1", got)
	}
	if got := counter(t, c, "dist_resident_ok_total"); got != 0 {
		t.Errorf("resident_ok_total = %d, want 0 after the mixed-version round", got)
	}

	// Second transform: the legacy worker is cached out of the resident
	// candidate set, so the remaining workers complete resident.
	data = noise(n, 22)
	want = singleNode(t, data)
	if err := c.Transform(ctx, data); err != nil {
		t.Fatalf("second Transform: %v", err)
	}
	if d := maxDiff(data, want); d > 1e-12*float64(n) {
		t.Fatalf("resident output deviates by %g", d)
	}
	if got := counter(t, c, "dist_resident_ok_total"); got != 1 {
		t.Errorf("resident_ok_total = %d, want 1 on the second round", got)
	}
	if got := counter(t, c, "dist_capability_legacy_total"); got != 1 {
		t.Errorf("capability_legacy_total grew to %d; the cache should suppress re-probing", got)
	}
}

// TestResidentSessionFaults kills a worker at each phase of the
// session protocol in turn. A death before completion must fall back
// to the one-shot path with correct output; a death at close must not
// matter (the transform already completed resident).
func TestResidentSessionFaults(t *testing.T) {
	cases := []struct {
		op           serve.SessionOp
		wantResident int64 // resident_ok_total after the faulted transform
		wantFall     int64
	}{
		{serve.OpSessOpen, 0, 1},
		{serve.OpSessCols, 0, 1},
		{serve.OpSessExchange, 0, 1},
		{serve.OpSessRows, 0, 1},
		{serve.OpSessClose, 1, 0}, // close failures are best-effort
	}
	const n = 1 << 12
	for _, tc := range cases {
		t.Run(tc.op.String(), func(t *testing.T) {
			c, lb, addrs := newResidentCluster(t, 3, Config{BackoffBase: 1})
			victim := addrs[0]
			var fired atomic.Int64
			lb.SessionFault = func(addr string, op serve.SessionOp) error {
				if op == tc.op && addr == victim {
					fired.Add(1)
					return errors.New("injected: worker died mid-session")
				}
				return nil
			}
			data := noise(n, int64(tc.op))
			want := singleNode(t, data)
			if err := c.Transform(context.Background(), data); err != nil {
				t.Fatalf("Transform with %s fault: %v", tc.op, err)
			}
			if d := maxDiff(data, want); d > 1e-12*float64(n) {
				t.Fatalf("output deviates by %g after %s fault", d, tc.op)
			}
			if fired.Load() == 0 {
				t.Fatalf("fault for %s never fired", tc.op)
			}
			if got := counter(t, c, "dist_resident_ok_total"); got != tc.wantResident {
				t.Errorf("resident_ok_total = %d, want %d", got, tc.wantResident)
			}
			if got := counter(t, c, "dist_resident_fallback_total"); got != tc.wantFall {
				t.Errorf("resident_fallback_total = %d, want %d", got, tc.wantFall)
			}
		})
	}
}

// TestResidentTruncatedFrame delivers a partially written cols frame:
// the worker must reject it cleanly (no panic, no session corruption)
// and the coordinator must fall back with correct output.
func TestResidentTruncatedFrame(t *testing.T) {
	c, lb, addrs := newResidentCluster(t, 2, Config{BackoffBase: 1})
	victim := addrs[0]
	var fired atomic.Int64
	lb.TruncateFrame = func(addr string, op serve.SessionOp, frame []byte) []byte {
		if op == serve.OpSessCols && addr == victim {
			fired.Add(1)
			return frame[:len(frame)-8] // drop half an element: partial write
		}
		return frame
	}
	const n = 1 << 12
	data := noise(n, 31)
	want := singleNode(t, data)
	if err := c.Transform(context.Background(), data); err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if d := maxDiff(data, want); d > 1e-12*float64(n) {
		t.Fatalf("output deviates by %g", d)
	}
	if fired.Load() == 0 {
		t.Fatalf("truncation never fired")
	}
	if got := counter(t, c, "dist_resident_fallback_total"); got != 1 {
		t.Errorf("resident_fallback_total = %d, want 1", got)
	}
}

// TestResidentTruncatedResponse delivers a short read of the rows
// response: the coordinator's strict decode must reject it and fall
// back with correct output.
func TestResidentTruncatedResponse(t *testing.T) {
	c, lb, addrs := newResidentCluster(t, 2, Config{BackoffBase: 1})
	victim := addrs[1]
	var fired atomic.Int64
	lb.TruncateResponse = func(addr string, op serve.SessionOp, frame []byte) []byte {
		if op == serve.OpSessRows && addr == victim {
			fired.Add(1)
			return frame[:len(frame)/2]
		}
		return frame
	}
	const n = 1 << 12
	data := noise(n, 32)
	want := singleNode(t, data)
	if err := c.Transform(context.Background(), data); err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if d := maxDiff(data, want); d > 1e-12*float64(n) {
		t.Fatalf("output deviates by %g", d)
	}
	if fired.Load() == 0 {
		t.Fatalf("truncation never fired")
	}
	if got := counter(t, c, "dist_resident_fallback_total"); got != 1 {
		t.Errorf("resident_fallback_total = %d, want 1", got)
	}
}

// TestResidentFaultChurn alternates healthy and faulted transforms on
// one coordinator. Every round must produce correct output regardless
// of where the previous round died — the pooled-buffer discipline must
// neither leak a buffer the next round needs nor hand one buffer to
// two owners (which -race would catch as concurrent writes).
func TestResidentFaultChurn(t *testing.T) {
	c, lb, addrs := newResidentCluster(t, 3, Config{BackoffBase: 1})
	ops := []serve.SessionOp{serve.OpSessOpen, serve.OpSessCols, serve.OpSessExchange, serve.OpSessRows}
	var faultOp atomic.Int64
	faultOp.Store(-1)
	lb.SessionFault = func(addr string, op serve.SessionOp) error {
		if int64(op) == faultOp.Load() && addr == addrs[1] {
			return errors.New("injected: churn")
		}
		return nil
	}
	const n = 1 << 12
	for round := 0; round < 12; round++ {
		if round%2 == 0 {
			faultOp.Store(-1) // healthy round
		} else {
			faultOp.Store(int64(ops[(round/2)%len(ops)]))
		}
		data := noise(n, int64(100+round))
		want := singleNode(t, data)
		if err := c.Transform(context.Background(), data); err != nil {
			t.Fatalf("round %d: Transform: %v", round, err)
		}
		if d := maxDiff(data, want); d > 1e-12*float64(n) {
			t.Fatalf("round %d: output deviates by %g", round, d)
		}
	}
	if got := counter(t, c, "dist_resident_ok_total"); got != 6 {
		t.Errorf("resident_ok_total = %d, want 6 (healthy rounds)", got)
	}
	if got := counter(t, c, "dist_resident_fallback_total"); got != 6 {
		t.Errorf("resident_fallback_total = %d, want 6 (faulted rounds)", got)
	}
}

// TestResidentDisabled pins the opt-out: with WithResidentSessions
// false the coordinator never opens a session even though the
// transport supports them.
func TestResidentDisabled(t *testing.T) {
	lb := NewLoopback()
	addrs := []string{"worker-0", "worker-1"}
	for _, a := range addrs {
		srv := serve.New(serve.Config{EnableShard: true, MaxN: 1 << 20, Peers: lb})
		lb.Register(a, srv.Handler())
	}
	c, err := New(
		WithTransport(lb),
		WithWorkers(addrs...),
		WithResidentSessions(false),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	const n = 1 << 12
	data := noise(n, 41)
	want := singleNode(t, data)
	if err := c.Transform(context.Background(), data); err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if d := maxDiff(data, want); d > 1e-12*float64(n) {
		t.Fatalf("output deviates by %g", d)
	}
	if got := counter(t, c, "dist_sessions_total"); got != 0 {
		t.Errorf("sessions_total = %d, want 0 with resident sessions disabled", got)
	}
	if got := counter(t, c, "dist_resident_ok_total"); got != 0 {
		t.Errorf("resident_ok_total = %d, want 0", got)
	}
}
