package dist

import (
	"context"
	"math/cmplx"
	"testing"

	"codeletfft/internal/ooc"
)

// TestOOCPlanOverLoopbackCluster runs an out-of-core transform whose
// tile compute is sharded across a 3-worker loopback cluster and
// compares against the single-node transform — the coordinator's
// segments-to-workers hook end to end, forward and inverse.
func TestOOCPlanOverLoopbackCluster(t *testing.T) {
	const n = 1 << 12
	c, _, _ := newTestCluster(t, 3, Config{ShardVecs: 8})

	p, err := c.OOCPlan(n,
		ooc.WithTileVecs(16),
		ooc.WithSpillDir(t.TempDir()),
		ooc.WithPolicy(ooc.Guided(1)))
	if err != nil {
		t.Fatalf("OOCPlan: %v", err)
	}

	data := noise(n, 5)
	ref := singleNode(t, data)
	got := append([]complex128(nil), data...)
	if err := p.TransformCtx(context.Background(), got); err != nil {
		t.Fatalf("ooc transform over cluster: %v", err)
	}
	if d := maxDiff(got, ref); d > 1e-6 {
		t.Fatalf("cluster ooc vs single-node: max diff %g", d)
	}
	// Shards actually went out (cols + rows passes for every tile).
	if shards := counter(t, c, "dist_shards_total"); shards == 0 {
		t.Fatal("no shards dispatched — executor hook not engaged")
	}
	// The plan's prefetch counters joined the coordinator's registry.
	if _, ok := c.Registry().Snapshot()["ooc_prefetch_read_bytes_ch0_total"]; !ok {
		t.Fatal("ooc per-channel counters missing from the coordinator registry")
	}

	if err := p.InverseCtx(context.Background(), got); err != nil {
		t.Fatalf("ooc inverse over cluster: %v", err)
	}
	for i := range got {
		if d := cmplx.Abs(got[i] - data[i]); d > 1e-9 {
			t.Fatalf("cluster ooc round trip: bin %d off by %g", i, d)
		}
	}
}

// TestTransformOOCConvenience covers the one-shot wrappers and the
// MaxClusterN bound.
func TestTransformOOCConvenience(t *testing.T) {
	const n = 1 << 10
	c, _, _ := newTestCluster(t, 2, Config{})
	data := noise(n, 9)
	ref := singleNode(t, data)
	got := append([]complex128(nil), data...)
	if err := c.TransformOOC(context.Background(), got,
		ooc.WithSpillDir(t.TempDir()), ooc.WithTileVecs(8)); err != nil {
		t.Fatalf("TransformOOC: %v", err)
	}
	if d := maxDiff(got, ref); d > 1e-6 {
		t.Fatalf("TransformOOC vs single-node: max diff %g", d)
	}
	if err := c.InverseOOC(context.Background(), got,
		ooc.WithSpillDir(t.TempDir()), ooc.WithTileVecs(8)); err != nil {
		t.Fatalf("InverseOOC: %v", err)
	}
	for i := range got {
		if d := cmplx.Abs(got[i] - data[i]); d > 1e-9 {
			t.Fatalf("round trip bin %d off by %g", i, d)
		}
	}

	if _, err := c.OOCPlan(MaxClusterN * 2); err == nil {
		t.Fatal("OOCPlan accepted N beyond the shard frame limit")
	}
}
