package dist

import (
	"strings"
	"sync"

	"codeletfft/internal/metrics"
)

// distMetrics names the coordinator's instruments once. The counters
// are defined so fault-injection tests can assert exact consistency:
// every failed RPC attempt increments errors; every failed attempt
// that is followed by another attempt increments retries; every hedge
// launch increments hedges (wins count separately); a transform that
// never leaves the coordinator increments degraded; a single shard
// that exhausts its attempts and runs locally increments localShards.
type distMetrics struct {
	reg *metrics.Registry

	transforms  *metrics.Counter // dist_transforms_total
	attempts    *metrics.Counter // dist_rpc_attempts_total
	errors      *metrics.Counter // dist_rpc_errors_total
	retries     *metrics.Counter // dist_retries_total
	hedges      *metrics.Counter // dist_hedges_total
	hedgeWins   *metrics.Counter // dist_hedge_wins_total
	degraded    *metrics.Counter // dist_degraded_total
	localShards *metrics.Counter // dist_local_shards_total
	shards      *metrics.Counter // dist_shards_total

	// Wire accounting. bytesMoved counts coordinator↔worker bytes on
	// both paths; the resident pair counts only transforms the resident
	// path completed, so residentBytes / residentElems is the
	// communication-avoidance invariant CI gates on:
	// bytes ≤ 2·16·elems (+ header noise).
	bytesMoved    *metrics.Counter // dist_bytes_moved_total
	residentBytes *metrics.Counter // dist_resident_bytes_total
	residentElems *metrics.Counter // dist_resident_elems_total
	residentOK    *metrics.Counter // dist_resident_ok_total
	residentFall  *metrics.Counter // dist_resident_fallback_total
	sessions      *metrics.Counter // dist_sessions_total
	capabilityOld *metrics.Counter // dist_capability_legacy_total

	rpcSec       *metrics.Histogram // dist_rpc_seconds
	transformSec *metrics.Histogram // dist_transform_seconds
	transformB   *metrics.Histogram // dist_transform_bytes

	mu        sync.Mutex
	workerSec map[string]*metrics.Histogram
	workerErr map[string]*metrics.Counter
}

func newDistMetrics(r *metrics.Registry) *distMetrics {
	latency := metrics.ExpBuckets(1e-5, 2, 22) // 10µs … ~40s
	return &distMetrics{
		reg:         r,
		transforms:  r.Counter("dist_transforms_total"),
		attempts:    r.Counter("dist_rpc_attempts_total"),
		errors:      r.Counter("dist_rpc_errors_total"),
		retries:     r.Counter("dist_retries_total"),
		hedges:      r.Counter("dist_hedges_total"),
		hedgeWins:   r.Counter("dist_hedge_wins_total"),
		degraded:    r.Counter("dist_degraded_total"),
		localShards: r.Counter("dist_local_shards_total"),
		shards:      r.Counter("dist_shards_total"),

		bytesMoved:    r.Counter("dist_bytes_moved_total"),
		residentBytes: r.Counter("dist_resident_bytes_total"),
		residentElems: r.Counter("dist_resident_elems_total"),
		residentOK:    r.Counter("dist_resident_ok_total"),
		residentFall:  r.Counter("dist_resident_fallback_total"),
		sessions:      r.Counter("dist_sessions_total"),
		capabilityOld: r.Counter("dist_capability_legacy_total"),

		rpcSec:       r.Histogram("dist_rpc_seconds", latency),
		transformSec: r.Histogram("dist_transform_seconds", latency),
		transformB:   r.Histogram("dist_transform_bytes", metrics.ExpBuckets(1024, 4, 16)), // 1KiB … ~4GiB
		workerSec:    map[string]*metrics.Histogram{},
		workerErr:    map[string]*metrics.Counter{},
	}
}

// sanitizeAddr turns a worker address into a metric-name suffix:
// anything outside [a-zA-Z0-9_] becomes '_'.
func sanitizeAddr(addr string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, addr)
}

// perWorkerSec returns the worker's RPC latency histogram, creating
// dist_worker_<addr>_rpc_seconds on first use.
func (m *distMetrics) perWorkerSec(addr string) *metrics.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.workerSec[addr]
	if !ok {
		h = m.reg.Histogram("dist_worker_"+sanitizeAddr(addr)+"_rpc_seconds", metrics.ExpBuckets(1e-5, 2, 22))
		m.workerSec[addr] = h
	}
	return h
}

// perWorkerErr returns the worker's error counter, creating
// dist_worker_<addr>_errors_total on first use.
func (m *distMetrics) perWorkerErr(addr string) *metrics.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.workerErr[addr]
	if !ok {
		c = m.reg.Counter("dist_worker_" + sanitizeAddr(addr) + "_errors_total")
		m.workerErr[addr] = c
	}
	return c
}
