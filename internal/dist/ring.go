package dist

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker addresses. Each worker
// owns ringVnodes points, so shard keys spread evenly and a membership
// change only remaps the slices adjacent to the joined or departed
// worker — the property that keeps each worker's plan cache warm for
// the shard shapes it habitually serves.
const ringVnodes = 64

type ringPoint struct {
	h    uint64
	addr string
}

type ring struct {
	points []ringPoint // sorted by h
}

// hash64 is FNV-1a over the string — stable across processes, so a
// coordinator restart lands shards on the same workers.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

func buildRing(addrs []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(addrs)*ringVnodes)}
	for _, addr := range addrs {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{h: hash64(fmt.Sprintf("%s#%d", addr, i)), addr: addr})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
	return r
}

// successors walks clockwise from key and appends up to max distinct
// addresses for which keep returns true, in ring order — element 0 is
// the shard's home worker, element 1 the natural failover/hedge peer.
func (r *ring) successors(key uint64, max int, keep func(addr string) bool) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= key })
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.addr] {
			continue
		}
		seen[p.addr] = true
		if keep == nil || keep(p.addr) {
			out = append(out, p.addr)
		}
	}
	return out
}
