// Functional options for constructing a Coordinator — the cluster
// analogue of the facade's HostOption. The option form replaces the
// sprawling Config literal: zero-value fields no longer need naming,
// new knobs arrive without breaking construction sites, and invalid
// combinations are caught at the single New seam.
package dist

import (
	"time"

	"codeletfft/internal/fft"
	"codeletfft/internal/metrics"
)

// Option configures a Coordinator under construction.
type Option func(*Config)

// New builds a coordinator from functional options and starts its
// membership loops. With no options it is a local-only coordinator
// (every transform degrades to the host engine); add WithTransport and
// WithWorkers to make it a cluster.
func New(opts ...Option) (*Coordinator, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return newCoordinator(cfg)
}

// WithTransport sets the RPC transport carrying shard frames to
// workers (required whenever workers are configured). A transport that
// also implements SessionTransport enables the communication-avoiding
// resident path.
func WithTransport(t Transport) Option {
	return func(c *Config) { c.Transport = t }
}

// WithWorkers sets the static worker address list.
func WithWorkers(addrs ...string) Option {
	return func(c *Config) { c.Workers = append([]string(nil), addrs...) }
}

// WithMemberFile layers a polled membership file on the static set.
func WithMemberFile(path string) Option {
	return func(c *Config) { c.MemberFile = path }
}

// WithProbeInterval enables active health probing every d; 0 disables
// probing (circuits still react to call failures).
func WithProbeInterval(d time.Duration) Option {
	return func(c *Config) { c.ProbeInterval = d }
}

// WithFilePollInterval sets how often the membership file is re-read.
func WithFilePollInterval(d time.Duration) Option {
	return func(c *Config) { c.FilePollInterval = d }
}

// WithShardVecs sets how many column/row vectors ride in one one-shot
// shard RPC (the legacy path's batching unit).
func WithShardVecs(n int) Option {
	return func(c *Config) { c.ShardVecs = n }
}

// WithMaxAttempts bounds tries per one-shot shard, first included.
func WithMaxAttempts(n int) Option {
	return func(c *Config) { c.MaxAttempts = n }
}

// WithBackoff shapes the exponential retry backoff between attempts.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Config) { c.BackoffBase, c.BackoffMax = base, max }
}

// WithHedgeDelay enables tail-latency hedging: a second copy of a
// silent shard goes to the next worker after d. 0 disables hedging.
func WithHedgeDelay(d time.Duration) Option {
	return func(c *Config) { c.HedgeDelay = d }
}

// WithShardTimeout sets the per-attempt RPC deadline.
func WithShardTimeout(d time.Duration) Option {
	return func(c *Config) { c.ShardTimeout = d }
}

// WithMaxInflight bounds concurrent shard RPCs per transform.
func WithMaxInflight(n int) Option {
	return func(c *Config) { c.MaxInflight = n }
}

// WithFactor overrides the four-step split; nil keeps the near-square
// power-of-two default.
func WithFactor(f func(n int) (n1, n2 int)) Option {
	return func(c *Config) { c.Factor = f }
}

// WithLocalWorkers sets the host-engine worker count used for degraded
// (local) execution.
func WithLocalWorkers(n int) Option {
	return func(c *Config) { c.LocalWorkers = n }
}

// WithLocalTaskSize sets the host-engine task granularity for degraded
// (local) execution.
func WithLocalTaskSize(n int) Option {
	return func(c *Config) { c.LocalTaskSize = n }
}

// WithLocalKernel selects the butterfly kernel for degraded (local)
// execution and locally run shards.
func WithLocalKernel(k fft.Kernel) Option {
	return func(c *Config) { c.LocalKernel = k }
}

// WithResidentSessions toggles the communication-avoiding
// resident-shard path (on by default when the transport supports it).
// Pass false to force every transform through the legacy one-shot
// frames.
func WithResidentSessions(enabled bool) Option {
	return func(c *Config) { c.DisableResidentSessions = !enabled }
}

// WithCircuit tunes the per-worker circuit breaker: consecutive
// failures to open, and the open interval's base and cap.
func WithCircuit(threshold int, openBase, openMax time.Duration) Option {
	return func(c *Config) {
		c.CircuitThreshold = threshold
		c.CircuitOpenBase = openBase
		c.CircuitOpenMax = openMax
	}
}

// WithRegistry collects the coordinator's instruments on r instead of
// a fresh registry.
func WithRegistry(r *metrics.Registry) Option {
	return func(c *Config) { c.Registry = r }
}
