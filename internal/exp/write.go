package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"codeletfft/internal/report"
)

// WriteResult renders one experiment into dir: <id>.csv with the raw
// series (when present), and <id>.txt with the chart, table, notes and
// shape-check outcomes.
func WriteResult(dir string, r *Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if len(r.Series) > 0 {
		f, err := os.Create(filepath.Join(dir, r.ID+".csv"))
		if err != nil {
			return err
		}
		if err := report.WriteCSV(f, r.XLabel, r.Series); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	var b strings.Builder
	if err := Render(&b, r); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, r.ID+".txt"), []byte(b.String()), 0o644)
}

// Render writes the human-readable form of a result.
func Render(w *strings.Builder, r *Result) error {
	fmt.Fprintf(w, "%s\n%s\n\n", r.Title, strings.Repeat("=", len(r.Title)))
	if len(r.Series) > 0 {
		if err := report.Chart(w, r.Title, r.XLabel, r.YLabel, r.Series, 72, 20); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if r.Table != nil {
		if err := r.Table.Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return nil
}
