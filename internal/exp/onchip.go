package exp

import (
	"fmt"

	"codeletfft/internal/core"
	"codeletfft/internal/report"
)

// OnChipTaskSize reproduces the regime of the paper's predecessor study
// (section III-B, Chen et al.): with data and twiddles resident in
// on-chip SRAM, bank balance is irrelevant and register pressure picks
// the work-unit size — 8-point butterflies win because anything larger
// spills the register file to scratchpad.
func OnChipTaskSize(cfg Config) (*Result, error) {
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 12
	}
	r := &Result{
		ID:     "onchip",
		Title:  "§III-B — on-chip (SRAM-resident) performance vs work-unit size",
		XLabel: "points per work unit",
		YLabel: "GFLOPS",
	}
	s := report.Series{Name: "coarse, SRAM-resident"}
	best, bestSize := 0.0, 0
	for _, p := range []int{2, 4, 8, 16, 32, 64} {
		// Chen et al.'s on-chip implementation is the barrier-based
		// (coarse) one; the fine-grain pool would dominate tiny on-chip
		// work units with lock traffic.
		opts := core.NewOptions(n, core.Coarse)
		opts.Machine = cfg.Machine
		opts.Placement = core.OnChip
		opts.TaskSize = p
		opts.SkipNumerics = true
		opts.Seed = cfg.Seed
		res, err := core.Run(opts)
		if err != nil {
			return nil, fmt.Errorf("exp: onchip P=%d: %w", p, err)
		}
		s.X = append(s.X, float64(p))
		s.Y = append(s.Y, res.GFLOPS)
		if res.GFLOPS > best {
			best, bestSize = res.GFLOPS, p
		}
	}
	r.Series = []report.Series{s}
	// Chen et al. found 8-point units best within plain register limits
	// and extended to 16-point by exploiting shared twiddles (§III-B.3);
	// the register-pressure regime therefore peaks at 8-16 points, far
	// below the off-chip sweet spot of 64.
	r.check("on-chip sweet spot is 8-16 points (register-limited)",
		bestSize == 8 || bestSize == 16,
		"best size %d at %.3f GFLOPS (Chen et al.: 8-16)", bestSize, best)
	r.check("on-chip sweet spot below the off-chip 64-point one",
		bestSize < 64, "register pressure, not bank balance, limits size")
	r.check("on-chip beats the off-chip ceiling",
		best > core.TheoreticalPeakGFLOPS(cfg.Machine, 64),
		"best %.3f GFLOPS vs %.3f off-chip ceiling", best,
		core.TheoreticalPeakGFLOPS(cfg.Machine, 64))
	return r, nil
}
