package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func quickConfig() Config {
	cfg := NewConfig()
	cfg.Quick = true
	return cfg
}

func runAndVerify(t *testing.T, run func(Config) (*Result, error)) *Result {
	t.Helper()
	r, err := run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("%s: check %q failed: %s", r.ID, c.Name, c.Detail)
		}
	}
	return r
}

func TestFig1CoarseTrace(t *testing.T) {
	r := runAndVerify(t, Fig1CoarseTrace)
	if len(r.Series) != 4 {
		t.Fatalf("want 4 bank series, got %d", len(r.Series))
	}
}

func TestFig2GuidedTrace(t *testing.T) {
	runAndVerify(t, Fig2GuidedTrace)
}

func TestFig6HashTrace(t *testing.T) {
	runAndVerify(t, Fig6HashTrace)
}

func TestFig7CodeletSize(t *testing.T) {
	r := runAndVerify(t, Fig7CodeletSize)
	if len(r.Series[0].X) != 7 {
		t.Fatalf("want 7 codelet sizes, got %d", len(r.Series[0].X))
	}
}

func TestFig8InputSizes(t *testing.T) {
	r := runAndVerify(t, Fig8InputSizes)
	if len(r.Series) != 6 {
		t.Fatalf("want 6 result types, got %d", len(r.Series))
	}
}

func TestFig9ThreadScaling(t *testing.T) {
	runAndVerify(t, Fig9ThreadScaling)
}

func TestTablePeak(t *testing.T) {
	r := runAndVerify(t, TablePeak)
	if r.Table == nil || len(r.Table.Rows) != 5 {
		t.Fatal("peak table missing rows")
	}
}

func TestWriteResult(t *testing.T) {
	dir := t.TempDir()
	r := runAndVerify(t, TablePeak)
	if err := WriteResult(dir, r); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "peak.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "PASS") {
		t.Fatalf("rendered result missing checks:\n%s", txt)
	}
	// Series-bearing results also emit CSV.
	r2 := runAndVerify(t, Fig7CodeletSize)
	if err := WriteResult(dir, r2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7.csv")); err != nil {
		t.Fatal("fig7.csv not written")
	}
}

func TestOnChipTaskSize(t *testing.T) {
	r := runAndVerify(t, OnChipTaskSize)
	if len(r.Series[0].X) != 6 {
		t.Fatalf("want 6 sizes, got %d", len(r.Series[0].X))
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	results, err := All(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("All returned %d results, want 8", len(results))
	}
	ids := map[string]bool{}
	for _, r := range results {
		ids[r.ID] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "peak", "onchip"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}
