// Package exp contains one runner per figure/table of the paper's
// evaluation. Each runner produces the measured series, renders them, and
// evaluates the shape checks that define reproduction success (who wins,
// where the crossovers fall, how the banks balance) — absolute numbers
// are machine-model-dependent and recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"

	"codeletfft/internal/c64"
	"codeletfft/internal/core"
	"codeletfft/internal/report"
	"codeletfft/internal/sim"
)

// Config scopes an experiment run.
type Config struct {
	// Machine is the architecture model (Default C64 unless overridden).
	Machine c64.Config
	// Quick shrinks problem sizes so the full suite runs in seconds —
	// used by tests and benchmarks; cmd/figures uses the full sizes.
	Quick bool
	// Seed selects inputs and randomized orders.
	Seed int64
}

// NewConfig returns the default full-size configuration.
func NewConfig() Config {
	return Config{Machine: c64.Default(), Seed: 1}
}

// Check is one shape assertion on an experiment's outcome.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is one regenerated figure or table.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []report.Series
	Table  *report.Table
	Notes  []string
	Checks []Check
}

// Passed reports whether every shape check succeeded.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

func (r *Result) check(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// All runs every experiment in paper order.
func All(cfg Config) ([]*Result, error) {
	runners := []func(Config) (*Result, error){
		Fig1CoarseTrace,
		Fig2GuidedTrace,
		Fig6HashTrace,
		Fig7CodeletSize,
		Fig8InputSizes,
		Fig9ThreadScaling,
		TablePeak,
		OnChipTaskSize,
	}
	out := make([]*Result, 0, len(runners))
	for _, run := range runners {
		r, err := run(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// traceN picks the transform size for the bank-trace figures.
func (c Config) traceN() int {
	if c.Quick {
		return 1 << 14
	}
	return 1 << 20
}

// runTrace executes one variant with bank tracing enabled.
func runTrace(cfg Config, v core.Variant, d string) (*core.Result, error) {
	opts := core.NewOptions(cfg.traceN(), v)
	opts.Machine = cfg.Machine
	opts.SkipNumerics = true
	opts.Seed = cfg.Seed
	opts.TraceBin = sim.Time(20000)
	if !cfg.Quick {
		opts.TraceBin = 100000
	}
	res, err := core.Run(opts)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", d, err)
	}
	return res, nil
}

// traceResult converts a bank trace into per-bank rate series, rebinned
// to a fixed number of windows, as the paper's Figures 1/2/6 plot them.
func traceResult(id, title string, res *core.Result) *Result {
	r := &Result{
		ID:     id,
		Title:  title,
		XLabel: "time window",
		YLabel: "accesses/window",
	}
	tr := res.Trace.Rebin(48)
	for b, series := range tr.Series() {
		s := report.Series{Name: fmt.Sprintf("bank %d", b)}
		for w, v := range series {
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, float64(v))
		}
		r.Series = append(r.Series, s)
	}
	r.Notes = append(r.Notes, fmt.Sprintf("%s; %.3f GFLOPS; whole-run bank skew %.2f",
		res.String(), res.GFLOPS, res.BankSkew()))
	return r
}

// Fig1CoarseTrace reproduces Figure 1: per-bank access rates over time
// for the coarse-grain algorithm. The paper observes bank 0 at roughly 3x
// the other banks' rate for the first ~2/3 of execution, balancing only
// in the final stage.
func Fig1CoarseTrace(cfg Config) (*Result, error) {
	res, err := runTrace(cfg, core.Coarse, "fig1")
	if err != nil {
		return nil, err
	}
	r := traceResult("fig1", "Fig. 1 — bank access rates, coarse-grain", res)

	// Skip the first 15% (bit-reversal pass, which is balanced) when
	// measuring the early-stage skew.
	early := res.Trace.SkewSummary(0.15, 0.6)
	late := res.Trace.SkewSummary(0.9, 1.0)
	r.check("early bank-0 skew ≈ 3x", early > 2.2 && early < 4.2,
		"early-window skew %.2f (paper: ~3)", early)
	r.check("late windows more balanced", late < early,
		"late skew %.2f < early skew %.2f", late, early)
	r.Notes = append(r.Notes, fmt.Sprintf("early skew %.2f, late skew %.2f", early, late))
	return r, nil
}

// Fig2GuidedTrace reproduces Figure 2: access rates under the guided
// fine-grain algorithm. The paper observes bank 0's rate decreasing and
// banks 1-3 rising from around the middle of the run as late-stage
// (balanced) codelets mix in.
func Fig2GuidedTrace(cfg Config) (*Result, error) {
	res, err := runTrace(cfg, core.FineGuided, "fig2")
	if err != nil {
		return nil, err
	}
	r := traceResult("fig2", "Fig. 2 — bank access rates, guided fine-grain", res)

	firstHalf := res.Trace.SkewSummary(0.05, 0.5)
	lastQuarter := res.Trace.SkewSummary(0.75, 1.0)
	r.check("bank 0 share declines late in the run", lastQuarter < firstHalf,
		"skew falls from %.2f (first half) to %.2f (last quarter)", firstHalf, lastQuarter)
	return r, nil
}

// Fig6HashTrace reproduces Figure 6: access rates with bit-reversal-
// hashed twiddle addresses — all four banks uniform throughout.
func Fig6HashTrace(cfg Config) (*Result, error) {
	res, err := runTrace(cfg, core.FineHash, "fig6")
	if err != nil {
		return nil, err
	}
	r := traceResult("fig6", "Fig. 6 — bank access rates, fine-grain + hashed twiddles", res)

	skew := res.BankSkew()
	r.check("banks uniform under hashing", skew < 1.1,
		"whole-run skew %.3f (paper: uniform)", skew)
	overall := res.Trace.SkewSummary(0.05, 0.95)
	r.check("rates uniform over time", overall < 1.25,
		"windowed skew %.3f", overall)
	return r, nil
}

// Fig7CodeletSize reproduces Figure 7: best fine-grain performance as a
// function of codelet size. 64-point codelets win: smaller sizes pay more
// stages (more off-chip traffic), larger ones exceed the scratchpad and
// spill.
func Fig7CodeletSize(cfg Config) (*Result, error) {
	// Sizes are chosen so that 64- and 128-point plans have the same
	// stage count; otherwise the scratchpad-spill penalty of P=128 can be
	// masked by saving a whole stage of traffic.
	n := 1 << 18
	if cfg.Quick {
		n = 1 << 12
	}
	sizes := []int{4, 8, 16, 32, 64, 128, 256}
	r := &Result{
		ID:     "fig7",
		Title:  "Fig. 7 — performance vs codelet size (fine-grain)",
		XLabel: "points per codelet",
		YLabel: "GFLOPS",
	}
	s := report.Series{Name: "fine best"}
	best, bestSize := 0.0, 0
	for _, p := range sizes {
		opts := core.NewOptions(n, core.Fine)
		opts.Machine = cfg.Machine
		opts.TaskSize = p
		opts.SkipNumerics = true
		opts.Seed = cfg.Seed
		res, err := core.Run(opts)
		if err != nil {
			return nil, fmt.Errorf("exp: fig7 P=%d: %w", p, err)
		}
		s.X = append(s.X, float64(p))
		s.Y = append(s.Y, res.GFLOPS)
		if res.GFLOPS > best {
			best, bestSize = res.GFLOPS, p
		}
	}
	r.Series = []report.Series{s}
	r.check("64-point codelets perform best", bestSize == 64,
		"best size %d at %.3f GFLOPS (paper: 64)", bestSize, best)
	r.check("128-point codelets regress (scratchpad spill)",
		s.Y[5] < s.Y[4], "P=128 %.3f < P=64 %.3f", s.Y[5], s.Y[4])
	r.check("small codelets regress (more stages, more traffic)",
		s.Y[0] < s.Y[4], "P=4 %.3f < P=64 %.3f", s.Y[0], s.Y[4])
	return r, nil
}

// fig8Sizes returns the swept transform sizes.
func (c Config) fig8Sizes() []int {
	if c.Quick {
		return []int{1 << 13, 1 << 14, 1 << 15, 1 << 16}
	}
	out := make([]int, 0, 8)
	for lg := 15; lg <= 22; lg++ {
		out = append(out, 1<<lg)
	}
	return out
}

// sixResults runs the paper's six reported result types for one size and
// thread count: coarse, coarse hash, fine worst, fine best, fine hash,
// fine guided.
func sixResults(cfg Config, n, threads int) (map[string]*core.Result, error) {
	base := core.Options{
		N: n, Threads: threads, Machine: cfg.Machine, Seed: cfg.Seed,
		SkipNumerics: true, SharedCounters: true, TaskSize: 64,
	}
	out := make(map[string]*core.Result, 6)
	run := func(name string, v core.Variant) error {
		opts := base
		opts.Variant = v
		res, err := core.Run(opts)
		if err != nil {
			return fmt.Errorf("exp: %s N=%d: %w", name, n, err)
		}
		out[name] = res
		return nil
	}
	if err := run("coarse", core.Coarse); err != nil {
		return nil, err
	}
	if err := run("coarse hash", core.CoarseHash); err != nil {
		return nil, err
	}
	if err := run("fine hash", core.FineHash); err != nil {
		return nil, err
	}
	if err := run("fine guided", core.FineGuided); err != nil {
		return nil, err
	}
	configs := core.DefaultFineConfigs()
	if cfg.Quick {
		configs = configs[:3]
	}
	bw, err := core.RunFineBestWorst(base, configs)
	if err != nil {
		return nil, err
	}
	out["fine best"] = bw.Best
	out["fine worst"] = bw.Worst
	return out, nil
}

var sixNames = []string{"coarse", "coarse hash", "fine worst", "fine best", "fine hash", "fine guided"}

// Fig8InputSizes reproduces Figure 8: GFLOPS of the six result types as
// the input size grows. See EXPERIMENTS.md for the extended discussion of
// which of the paper's orderings a work-conserving port model can and
// cannot reproduce.
func Fig8InputSizes(cfg Config) (*Result, error) {
	r := &Result{
		ID:     "fig8",
		Title:  "Fig. 8 — performance vs input size, 156 threads",
		XLabel: "log2(N)",
		YLabel: "GFLOPS",
	}
	series := make(map[string]*report.Series, 6)
	for _, name := range sixNames {
		series[name] = &report.Series{Name: name}
	}
	var firstRatio, lastRatio float64
	sizes := cfg.fig8Sizes()
	for _, n := range sizes {
		six, err := sixResults(cfg, n, 0)
		if err != nil {
			return nil, err
		}
		lg := float64(log2(n))
		for _, name := range sixNames {
			series[name].X = append(series[name].X, lg)
			series[name].Y = append(series[name].Y, six[name].GFLOPS)
		}
		ratio := six["fine hash"].GFLOPS / six["fine guided"].GFLOPS
		if n == sizes[0] {
			firstRatio = ratio
		}
		lastRatio = ratio
	}
	for _, name := range sixNames {
		r.Series = append(r.Series, *series[name])
	}

	atAll := func(pred func(i int) bool) bool {
		for i := range sizes {
			if !pred(i) {
				return false
			}
		}
		return true
	}
	get := func(name string, i int) float64 { return series[name].Y[i] }

	r.check("fine best ≥ fine worst everywhere",
		atAll(func(i int) bool { return get("fine best", i) >= get("fine worst", i) }),
		"ensemble spread present (paper: fine fluctuates with initial order)")
	r.check("fine hash beats coarse at small sizes",
		get("fine hash", 0) > get("coarse", 0),
		"hashing removes the bank-0 bottleneck while its per-bit cost is low: %.3f vs %.3f at 2^%.0f",
		get("fine hash", 0), get("coarse", 0), series["coarse"].X[0])
	r.Notes = append(r.Notes, fmt.Sprintf(
		"fine hash / fine guided falls from %.3f to %.3f across the sweep "+
			"(the paper's crossover: hash wins small, guided wins large)",
		firstRatio, lastRatio))
	r.check("fine guided competitive with fine worst everywhere",
		atAll(func(i int) bool { return get("fine guided", i) >= 0.95*get("fine worst", i) }),
		"guided order at least matches the bad orders")
	if !cfg.Quick {
		r.check("fine hash advantage over guided shrinks with N",
			lastRatio < firstRatio,
			"fine hash / fine guided: %.3f at smallest size → %.3f at largest (paper: crossover)",
			firstRatio, lastRatio)
	} else {
		_ = firstRatio
		_ = lastRatio
	}
	return r, nil
}

// Fig9ThreadScaling reproduces Figure 9: GFLOPS of the six result types
// at N=2^15 as the thread count grows from 20 to 156.
func Fig9ThreadScaling(cfg Config) (*Result, error) {
	n := 1 << 15
	threads := []int{20, 40, 60, 80, 100, 120, 140, 156}
	if cfg.Quick {
		n = 1 << 13
		threads = []int{20, 80, 156}
	}
	r := &Result{
		ID:     "fig9",
		Title:  fmt.Sprintf("Fig. 9 — performance vs thread count, N=2^%d", log2(n)),
		XLabel: "thread units",
		YLabel: "GFLOPS",
	}
	series := make(map[string]*report.Series, 6)
	for _, name := range sixNames {
		series[name] = &report.Series{Name: name}
	}
	for _, th := range threads {
		six, err := sixResults(cfg, n, th)
		if err != nil {
			return nil, err
		}
		for _, name := range sixNames {
			series[name].X = append(series[name].X, float64(th))
			series[name].Y = append(series[name].Y, six[name].GFLOPS)
		}
	}
	for _, name := range sixNames {
		r.Series = append(r.Series, *series[name])
	}

	last := len(threads) - 1
	g := series["fine guided"].Y
	r.check("guided scales with thread count",
		g[last] > 1.5*g[0],
		"%.3f GFLOPS at %d TUs → %.3f at %d TUs", g[0], threads[0], g[last], threads[last])
	h := series["fine hash"].Y
	c := series["coarse"].Y
	r.check("fine hash above coarse at full thread count",
		h[last] > c[last], "%.3f vs %.3f at %d TUs", h[last], c[last], threads[last])
	return r, nil
}

// TablePeak reproduces the theoretical-peak analysis (equations 1-4):
// 10 GFLOPS for DRAM-resident 64-point-task FFT at 16 GB/s, independent
// of N, and lower ceilings for smaller tasks.
func TablePeak(cfg Config) (*Result, error) {
	r := &Result{
		ID:    "peak",
		Title: "Eq. 1-4 — theoretical peak by task size",
	}
	tb := &report.Table{Headers: []string{"task size", "bytes/task", "peak GFLOPS"}}
	for _, p := range []int{8, 16, 32, 64, 128} {
		tb.AddRow(p, core.TaskBytes(p), core.TheoreticalPeakGFLOPS(cfg.Machine, p))
	}
	r.Table = tb
	peak64 := core.TheoreticalPeakGFLOPS(cfg.Machine, 64)
	r.check("64-point peak ≈ 10 GFLOPS (eq. 4)",
		peak64 > 9.9 && peak64 < 10.2, "peak = %.3f GFLOPS", peak64)
	r.check("8-point peak below 64-point peak",
		core.TheoreticalPeakGFLOPS(cfg.Machine, 8) < peak64,
		"larger tasks amortize twiddle traffic")
	return r, nil
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
