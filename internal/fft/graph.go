package fft

import "sort"

// Transition is the exact dependence structure between the tasks of stage
// s (parents) and stage s+1 (children): a child may fire only when every
// parent that produced one of its input elements has completed.
//
// Children are clustered into sibling groups with identical parent sets.
// For regular transitions the paper's observation holds: every child has
// exactly P parents and every P siblings share the same P parents, so one
// shared counter per group suffices (the storage/update optimization of
// section IV-A2). Irregular final transitions are derived from the
// element maps rather than assumed.
type Transition struct {
	Stage int // parent stage s; children live in stage s+1

	// ChildGroup maps a child task id to its sibling-group id.
	ChildGroup []int32
	// Groups lists member child task ids per group, ascending.
	Groups [][]int32
	// GroupParents lists the distinct parent task ids per group, ascending.
	GroupParents [][]int32
	// ParentGroups lists, per parent task id, the groups it feeds.
	ParentGroups [][]int32
}

// BuildTransition derives the stage→stage+1 dependence structure of pl.
func (pl *Plan) BuildTransition(stage int) *Transition {
	pl.checkStage(stage)
	if stage == pl.NumStages-1 {
		panic("fft: last stage has no successor transition")
	}
	nt := pl.TasksPerStage
	tr := &Transition{
		Stage:        stage,
		ChildGroup:   make([]int32, nt),
		ParentGroups: make([][]int32, nt),
	}
	idx := make([]int64, pl.P)
	parents := make([]int32, 0, pl.P)
	key := make([]byte, 0, 4*pl.P)
	groupOf := make(map[string]int32, nt/pl.P+1)

	for c := 0; c < nt; c++ {
		pl.TaskIndices(stage+1, c, idx)
		parents = parents[:0]
		for _, g := range idx {
			parents = append(parents, int32(pl.TaskOf(stage, g)))
		}
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		// Dedupe in place.
		u := parents[:1]
		for _, p := range parents[1:] {
			if p != u[len(u)-1] {
				u = append(u, p)
			}
		}
		key = key[:0]
		for _, p := range u {
			key = append(key, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		gid, ok := groupOf[string(key)]
		if !ok {
			gid = int32(len(tr.Groups))
			groupOf[string(key)] = gid
			tr.Groups = append(tr.Groups, nil)
			gp := make([]int32, len(u))
			copy(gp, u)
			tr.GroupParents = append(tr.GroupParents, gp)
			for _, p := range gp {
				tr.ParentGroups[p] = append(tr.ParentGroups[p], gid)
			}
		}
		tr.ChildGroup[c] = gid
		tr.Groups[gid] = append(tr.Groups[gid], int32(c))
	}
	return tr
}

// DepCount returns the number of distinct parents child must wait for.
func (tr *Transition) DepCount(child int32) int {
	return len(tr.GroupParents[tr.ChildGroup[child]])
}

// Children returns the distinct children of parent, ascending: the union
// of the member lists of every sibling group the parent feeds.
func (tr *Transition) Children(parent int32) []int32 {
	groups := tr.ParentGroups[parent]
	if len(groups) == 1 {
		return tr.Groups[groups[0]]
	}
	var out []int32
	for _, g := range groups {
		out = append(out, tr.Groups[g]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Group membership is a partition, so no dedupe is needed.
	return out
}

// NumGroups returns the number of sibling groups in the transition.
func (tr *Transition) NumGroups() int { return len(tr.Groups) }
