//go:build arm64 && !noasm

package fft

// NEON is baseline on arm64, so the radix-2 and fused radix-4 level
// codelets are always available — no runtime feature probe. The fused
// base pass (levels 0–1) stays in Go on arm64: its 4×4 transpose
// formulation buys much less at 2-wide vectors than at 4-wide, and the
// compiler already emits scalar FMAs for the generic loop.
const (
	soaLanes     = 2       // 2 doubles per NEON register
	soaBase4MinN = 1 << 30 // never: base pass runs the generic loop
)

var (
	soaHasAsm   = true
	soaHasBase4 = false
	soaAccel    = "neon"
)

// Implemented in soa_arm64.s.

//go:noescape
func bfly2Asm(re, im, wr, wi *float64, dist, cnt, nblk int)

//go:noescape
func bfly4Asm(re, im, war, wai, wbr, wbi *float64, dist, cnt, nblk int)

func base4Asm(re, im *float64, n int, tw *float64) {
	panic("fft: base4Asm is not implemented on arm64")
}
