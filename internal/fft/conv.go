// Overlap-save convolution geometry. The workloads users actually bring
// — FIR filtering, correlation, spectrograms — are convolutions, and a
// naive "FFT, multiply, IFFT" over the whole signal round-trips every
// sample through memory three times at a transform length that must
// cover the entire output. Overlap-save instead tiles the output into
// segments of a small, fixed FFT length M: each segment's transform
// reads M = S + K - 1 input samples (S fresh, K-1 overlapped from its
// left neighbour), multiplies by the kernel's precomputed M-point
// spectrum, and inverse-transforms, keeping the working set bounded by
// the segment group rather than the signal — the memory-frugal shape
// the paper's load-balance thesis asks for, applied to convolution.
//
// This file holds the pure geometry — segment sizing, gather/scatter
// index math, the kernel-spectrum layout, and the O(N·K) reference —
// while the facade (codeletfft.ConvPlan) dispatches the segment FFTs
// through the batched host engine.
package fft

import (
	"fmt"
	"sort"
	"sync"
)

// smoothTable lists every 7-smooth number (2^a·3^b·5^c·7^d) up to
// smoothCap in ascending order — the lengths the mixed-radix planner
// runs natively, so a segment length drawn from it never needs the
// Bluestein embedding. Built once on first use (~3.8k entries).
const smoothCap = 1 << 31

var (
	smoothOnce sync.Once
	smoothTab  []int
)

func buildSmoothTable() {
	var tab []int
	for p2 := 1; p2 <= smoothCap; p2 *= 2 {
		for p3 := p2; p3 <= smoothCap; p3 *= 3 {
			for p5 := p3; p5 <= smoothCap; p5 *= 5 {
				for p7 := p5; p7 <= smoothCap; p7 *= 7 {
					tab = append(tab, p7)
					if p7 > smoothCap/7 {
						break
					}
				}
				if p5 > smoothCap/5 {
					break
				}
			}
			if p3 > smoothCap/3 {
				break
			}
		}
	}
	sort.Ints(tab)
	smoothTab = tab
}

// NextSmooth returns the smallest 7-smooth integer ≥ n — the cheapest
// transform length at or above n under the mixed-radix planner. For n
// beyond the table's range it falls back to the next power of two.
func NextSmooth(n int) int {
	if n <= 1 {
		return 1
	}
	smoothOnce.Do(buildSmoothTable)
	i := sort.SearchInts(smoothTab, n)
	if i < len(smoothTab) {
		return smoothTab[i]
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ConvSpec is the overlap-save segmentation of a linear convolution:
// an N-sample signal against a K-tap kernel, tiled into Segs segments
// of FFT length M, each producing S = M-K+1 fresh output samples. The
// full linear convolution has OutLen = N+K-1 samples.
type ConvSpec struct {
	N int // signal length
	K int // kernel length
	M int // segment FFT length (7-smooth)
	S int // fresh samples per segment: M - K + 1
	// Segs tiles the OutLen outputs: ⌈(N+K-1)/S⌉.
	Segs int
}

// minSegment is the floor on the segment FFT length: below it, per-
// segment dispatch overhead dominates the butterfly work.
const minSegment = 256

// NewConvSpec sizes the overlap-save segmentation for an n-sample
// signal and a k-tap kernel, n ≥ 1 and k ≥ 1 (errors wrap
// ErrUnsupportedLength otherwise). The segment length is the smallest
// 7-smooth M ≥ max(4k, minSegment) — about 4 kernel lengths, the
// classic throughput sweet spot, so at least 3/4 of every segment's
// outputs are fresh — unless a single segment covering the whole
// output is no larger, in which case the convolution collapses to one
// full-length transform pair.
func NewConvSpec(n, k int) (ConvSpec, error) {
	if n < 1 {
		return ConvSpec{}, fmt.Errorf("%w: convolution needs a signal length ≥ 1, got %d", ErrUnsupportedLength, n)
	}
	if k < 1 {
		return ConvSpec{}, fmt.Errorf("%w: convolution needs a kernel length ≥ 1, got %d", ErrUnsupportedLength, k)
	}
	out := n + k - 1
	full := NextSmooth(out)
	m := NextSmooth(max(4*k, minSegment))
	if m >= full {
		m = full
	}
	s := m - k + 1
	return ConvSpec{N: n, K: k, M: m, S: s, Segs: (out + s - 1) / s}, nil
}

// OutLen returns the linear convolution's output length, N+K-1.
func (c ConvSpec) OutLen() int { return c.N + c.K - 1 }

// Gather fills the M-element segment buffer for segment seg: input
// samples x[seg·S-(K-1) … seg·S-(K-1)+M), with positions outside
// [0, N) taken as zero. The first K-1 positions are the overlap with
// the previous segment; their circularly-contaminated outputs are
// discarded by Scatter.
func (c ConvSpec) Gather(seg int, dst, x []complex128) {
	if len(dst) != c.M {
		panic(LengthError("segment buffer", len(dst), c.M))
	}
	if len(x) != c.N {
		panic(LengthError("signal", len(x), c.N))
	}
	start := seg*c.S - (c.K - 1)
	lo := max(start, 0)
	hi := min(start+c.M, c.N)
	for j := start; j < lo; j++ {
		dst[j-start] = 0
	}
	if hi > lo {
		copy(dst[lo-start:], x[lo:hi])
	}
	for j := max(hi, start); j < start+c.M; j++ {
		dst[j-start] = 0
	}
}

// Scatter copies segment seg's fresh outputs — positions K-1 … M-1 of
// the inverse-transformed segment buffer, the ones free of circular
// contamination — into dst[seg·S : min(seg·S+S, OutLen)].
func (c ConvSpec) Scatter(seg int, dst, work []complex128) {
	if len(work) != c.M {
		panic(LengthError("segment buffer", len(work), c.M))
	}
	if len(dst) != c.OutLen() {
		panic(LengthError("convolution output", len(dst), c.OutLen()))
	}
	lo := seg * c.S
	cnt := min(c.S, c.OutLen()-lo)
	copy(dst[lo:lo+cnt], work[c.K-1:c.K-1+cnt])
}

// PadKernel writes the K-tap kernel h into the M-element buffer dst
// (kernel first, zeros after) — the layout whose forward M-point
// transform is the cached segment filter spectrum.
func (c ConvSpec) PadKernel(dst, h []complex128) {
	if len(dst) != c.M {
		panic(LengthError("kernel buffer", len(dst), c.M))
	}
	if len(h) != c.K {
		panic(LengthError("kernel", len(h), c.K))
	}
	copy(dst, h)
	for i := c.K; i < c.M; i++ {
		dst[i] = 0
	}
}

// PadKernelReversed writes conj(h[K-1-t]) into dst — the kernel layout
// that turns the convolution machinery into cross-correlation:
// convolving x with the conjugated reversal of h yields
// dst[K-1+ℓ] = Σ_j x[j]·conj(h[j-ℓ]) for lags ℓ ∈ [-(K-1), N).
func (c ConvSpec) PadKernelReversed(dst, h []complex128) {
	if len(dst) != c.M {
		panic(LengthError("kernel buffer", len(dst), c.M))
	}
	if len(h) != c.K {
		panic(LengthError("kernel", len(h), c.K))
	}
	for t := 0; t < c.K; t++ {
		v := h[c.K-1-t]
		dst[t] = complex(real(v), -imag(v))
	}
	for i := c.K; i < c.M; i++ {
		dst[i] = 0
	}
}

// DirectConvolve computes the linear convolution dst[i] = Σ_j x[j]·h[i-j]
// directly in O(N·K) — the ground-truth reference for the overlap-save
// path. dst must have length len(x)+len(h)-1.
func DirectConvolve(dst, x, h []complex128) {
	if len(dst) != len(x)+len(h)-1 {
		panic(LengthError("convolution output", len(dst), len(x)+len(h)-1))
	}
	for i := range dst {
		dst[i] = 0
	}
	for j, xv := range x {
		for t, hv := range h {
			dst[j+t] += xv * hv
		}
	}
}
