package fft_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"codeletfft/internal/fft"
)

func realNoise(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func asComplex(x []float64) []complex128 {
	z := make([]complex128, len(x))
	for i, v := range x {
		z[i] = complex(v, 0)
	}
	return z
}

// TestRealPlanMatchesDFT checks the half-spectrum against the O(n²) DFT
// of the same signal widened to complex, across sizes and task sizes
// (including irregular final stages of the half plan).
func TestRealPlanMatchesDFT(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 128, 512, 1024} {
		for _, p := range []int{2, 4, 8, 64} {
			rp, err := fft.NewRealPlan(n, p)
			if err != nil {
				t.Fatalf("NewRealPlan(%d, %d): %v", n, p, err)
			}
			x := realNoise(n, int64(n+p))
			spec := make([]complex128, rp.SpectrumLen())
			rp.Transform(spec, x)
			want := fft.DFT(asComplex(x))
			for k := 0; k <= n/2; k++ {
				d := spec[k] - want[k]
				if math.Hypot(real(d), imag(d)) > 1e-9*float64(n) {
					t.Fatalf("n=%d p=%d bin %d: got %v want %v", n, p, k, spec[k], want[k])
				}
			}
		}
	}
}

// TestRealPlanHermitianEnds checks the structural invariant of a real
// signal's spectrum: the DC and Nyquist bins are exactly real (the
// split pass constructs them with a zero imaginary part, so this is an
// equality, not a tolerance).
func TestRealPlanHermitianEnds(t *testing.T) {
	rp, err := fft.NewRealPlan(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec := make([]complex128, rp.SpectrumLen())
	rp.Transform(spec, realNoise(256, 9))
	if imag(spec[0]) != 0 || imag(spec[128]) != 0 {
		t.Fatalf("DC/Nyquist bins not exactly real: %v, %v", spec[0], spec[128])
	}
}

// TestRealPlanRoundTrip checks Inverse(Transform(x)) == x, including
// the zero-alloc InverseWith path.
func TestRealPlanRoundTrip(t *testing.T) {
	for _, n := range []int{4, 16, 64, 4096} {
		rp, err := fft.NewRealPlan(n, 64)
		if err != nil {
			t.Fatal(err)
		}
		x := realNoise(n, int64(n))
		spec := make([]complex128, rp.SpectrumLen())
		rp.Transform(spec, x)
		back := make([]float64, n)
		rp.Inverse(back, spec)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("n=%d: round trip diverged at %d: %g vs %g", n, i, back[i], x[i])
			}
		}
		// The explicit-buffer path must agree bitwise with Inverse.
		back2 := make([]float64, n)
		rp.InverseWith(back2, spec, make([]complex128, n/2), fft.NewScratch(rp.Half))
		for i := range back {
			if math.Float64bits(back[i]) != math.Float64bits(back2[i]) {
				t.Fatalf("InverseWith diverged from Inverse at %d", i)
			}
		}
	}
}

// TestRealPlanLinearity: RFFT(a·x + b·y) == a·RFFT(x) + b·RFFT(y).
func TestRealPlanLinearity(t *testing.T) {
	const n = 512
	rp, err := fft.NewRealPlan(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	x, y := realNoise(n, 1), realNoise(n, 2)
	mixed := make([]float64, n)
	for i := range mixed {
		mixed[i] = 2*x[i] - 3*y[i]
	}
	sx := make([]complex128, rp.SpectrumLen())
	sy := make([]complex128, rp.SpectrumLen())
	sm := make([]complex128, rp.SpectrumLen())
	rp.Transform(sx, x)
	rp.Transform(sy, y)
	rp.Transform(sm, mixed)
	for k := range sm {
		d := sm[k] - (2*sx[k] - 3*sy[k])
		if math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("linearity violated at bin %d: %v", k, d)
		}
	}
}

func TestNewRealPlanRejectsBadShapes(t *testing.T) {
	if _, err := fft.NewRealPlan(100, 4); !errors.Is(err, fft.ErrUnsupportedLength) {
		t.Fatalf("N=100: err = %v, want ErrUnsupportedLength", err)
	}
	if _, err := fft.NewRealPlan(2, 2); err == nil {
		t.Fatal("N=2 accepted; the half transform cannot exist")
	}
	if _, err := fft.NewRealPlan(16, 3); !errors.Is(err, fft.ErrBadTaskSize) {
		t.Fatalf("P=3: err = %v, want ErrBadTaskSize", err)
	}
	// Oversized task sizes are clamped to N/2, not rejected.
	rp, err := fft.NewRealPlan(8, 64)
	if err != nil || rp.Half.P != 4 {
		t.Fatalf("clamp: rp=%+v err=%v", rp, err)
	}
}

// TestRealPlanPanicsWrapErrLengthMismatch pins the documented panic
// contract: wrong-length buffers panic with an error value satisfying
// errors.Is(v, ErrLengthMismatch).
func TestRealPlanPanicsWrapErrLengthMismatch(t *testing.T) {
	rp, err := fft.NewRealPlan(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	mustLengthPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			v := recover()
			e, ok := v.(error)
			if !ok || !errors.Is(e, fft.ErrLengthMismatch) {
				t.Fatalf("%s: panic value %v, want error wrapping ErrLengthMismatch", name, v)
			}
		}()
		fn()
	}
	mustLengthPanic("short spectrum", func() {
		rp.Transform(make([]complex128, 3), make([]float64, 16))
	})
	mustLengthPanic("short input", func() {
		rp.Transform(make([]complex128, 9), make([]float64, 15))
	})
	mustLengthPanic("short output", func() {
		rp.Inverse(make([]float64, 8), make([]complex128, 9))
	})
}
