package fft

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransformMatchesDFTAcrossSizes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 128, 512, 2048} {
		for _, p := range []int{2, 4, 8, 16, 64} {
			if p > n {
				continue
			}
			pl := mustPlan(t, n, p)
			x := randomSignal(n, int64(n*1000+p))
			data := make([]complex128, n)
			copy(data, x)
			pl.Transform(data, Twiddles(n))
			want := DFT(x)
			if err := MaxError(data, want); err > 1e-7 {
				t.Fatalf("N=%d P=%d: plan transform error %g vs DFT", n, p, err)
			}
		}
	}
}

func TestTransformMatchesRecursiveLarge(t *testing.T) {
	// Sizes with irregular last stages (log2 N not a multiple of 6).
	for _, n := range []int{1 << 13, 1 << 14, 1 << 15, 1 << 16} {
		pl := mustPlan(t, n, 64)
		x := randomSignal(n, int64(n))
		data := make([]complex128, n)
		copy(data, x)
		pl.Transform(data, Twiddles(n))
		want := Recursive(x)
		if err := MaxError(data, want); err > 1e-6 {
			t.Fatalf("N=%d: transform error %g vs recursive FFT", n, err)
		}
	}
}

func TestTransformWithHashedTwiddles(t *testing.T) {
	// Reading the twiddles through the bit-reversal hash must not change
	// the numbers, only the addresses.
	n := 1 << 12
	pl := mustPlan(t, n, 64)
	w := Twiddles(n)
	hashed := HashTwiddles(w)
	width := Log2(len(w))

	x := randomSignal(n, 5)
	plain := make([]complex128, n)
	copy(plain, x)
	pl.Transform(plain, w)

	data := make([]complex128, n)
	copy(data, x)
	BitReversePermute(data)
	sc := NewScratch(pl)
	at := func(i int64) int64 { return BitReverse(i, width) }
	for stage := 0; stage < pl.NumStages; stage++ {
		for task := 0; task < pl.TasksPerStage; task++ {
			pl.RunTask(stage, task, data, hashed, at, sc)
		}
	}
	if err := MaxError(data, plain); err > 1e-12 {
		t.Fatalf("hashed-twiddle transform diverges: %g", err)
	}
}

func TestTransformTaskOrderIndependenceWithinStage(t *testing.T) {
	// Tasks within a stage touch disjoint elements, so any execution
	// order gives the same result — the property fine-grain scheduling
	// relies on.
	n := 1 << 10
	pl := mustPlan(t, n, 16)
	w := Twiddles(n)
	x := randomSignal(n, 6)

	forward := make([]complex128, n)
	copy(forward, x)
	pl.Transform(forward, w)

	data := make([]complex128, n)
	copy(data, x)
	BitReversePermute(data)
	sc := NewScratch(pl)
	rng := rand.New(rand.NewSource(8))
	for stage := 0; stage < pl.NumStages; stage++ {
		order := rng.Perm(pl.TasksPerStage)
		for _, task := range order {
			pl.RunTask(stage, task, data, w, nil, sc)
		}
	}
	if err := MaxError(data, forward); err > 1e-12 {
		t.Fatalf("shuffled task order changed the result: %g", err)
	}
}

func TestInverseTransformRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ n, p int }{{1 << 10, 64}, {1 << 13, 64}, {256, 8}} {
		pl := mustPlan(t, cfg.n, cfg.p)
		w := Twiddles(cfg.n)
		x := randomSignal(cfg.n, 11)
		data := make([]complex128, cfg.n)
		copy(data, x)
		pl.Transform(data, w)
		pl.InverseTransform(data, w)
		if err := MaxError(data, x); err > 1e-9 {
			t.Fatalf("N=%d P=%d roundtrip error %g", cfg.n, cfg.p, err)
		}
	}
}

func TestButterfliesSingleLevel(t *testing.T) {
	// One radix-2 butterfly with W=1: (a,b) -> (a+b, a-b).
	buf := []complex128{3 + 1i, 1 + 1i}
	tw := []complex128{1}
	flops := Butterflies(buf, tw, 1)
	if buf[0] != 4+2i || buf[1] != 2 {
		t.Fatalf("butterfly = %v", buf)
	}
	if flops != 10 {
		t.Fatalf("flops = %d, want 10", flops)
	}
}

func TestButterfliesPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Butterflies(make([]complex128, 3), make([]complex128, 4), 2) },
		func() { Butterflies(make([]complex128, 4), make([]complex128, 1), 2) },
		func() { TaskButterflies(make([]complex128, 6), make([]complex128, 8), 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: the staged transform is linear for any plan shape.
func TestTransformLinearityProperty(t *testing.T) {
	pl := mustPlan(t, 256, 16)
	w := Twiddles(256)
	f := func(seedA, seedB int64) bool {
		a := randomSignal(256, seedA)
		b := randomSignal(256, seedB)
		sum := make([]complex128, 256)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		pl.Transform(a, w)
		pl.Transform(b, w)
		pl.Transform(sum, w)
		for i := range sum {
			if d := sum[i] - a[i] - b[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransform64pt(b *testing.B) {
	n := 1 << 15
	pl, _ := NewPlan(n, 64)
	w := Twiddles(n)
	x := randomSignal(n, 1)
	data := make([]complex128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, x)
		pl.Transform(data, w)
	}
	b.SetBytes(int64(n) * 16)
}
