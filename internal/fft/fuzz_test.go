// Native Go fuzz targets for the staged FFT. Both targets derive a
// power-of-two complex input from raw fuzz bytes (values bounded in
// [-1,1) so tolerances stay meaningful) and a plan shape from the fuzzed
// parameters, then check the two invariants the rest of the repo leans
// on: forward+inverse is the identity, and the parallel host engine is
// bitwise-indistinguishable from the serial path.
//
// CI runs a short -fuzz smoke on FuzzTransformRoundTrip; both targets
// also run their seed corpus under plain `go test`.
package fft_test

import (
	"math"
	"testing"

	"codeletfft/internal/fft"
	"codeletfft/internal/host"
)

// fuzzInput decodes raw bytes into a power-of-two-length complex slice
// (each element consumes two bytes, mapped to [-1,1)) and picks a valid
// task size from p8. Returns nil if raw is too short for a 2-point
// transform.
func fuzzInput(raw []byte, p8 uint8) ([]complex128, int) {
	count := len(raw) / 2
	n := 1
	for n*2 <= count && n < 1<<12 {
		n *= 2
	}
	if n < 2 {
		return nil, 0
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = complex(float64(int8(raw[2*i]))/128, float64(int8(raw[2*i+1]))/128)
	}
	p := 2 << (int(p8) % 6) // 2..64
	if p > n {
		p = n
	}
	return x, p
}

func FuzzTransformRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add(make([]byte, 256), uint8(5))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 200, 100, 9, 8, 7, 6, 5, 4, 3, 2}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, p8 uint8) {
		x, p := fuzzInput(raw, p8)
		if x == nil {
			t.Skip("input too short")
		}
		n := len(x)
		pl, err := fft.NewPlan(n, p)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", n, p, err)
		}
		w := fft.Twiddles(n)
		data := append([]complex128(nil), x...)
		pl.Transform(data, w)

		// Cross-check the forward transform against the independent
		// recursive implementation.
		want := fft.Recursive(x)
		if e := fft.MaxError(data, want); e > 1e-9 {
			t.Fatalf("N=%d P=%d: staged vs recursive error %g", n, p, e)
		}

		pl.InverseTransform(data, w)
		if e := fft.MaxError(data, x); e > 1e-9 {
			t.Fatalf("N=%d P=%d: round-trip error %g", n, p, e)
		}
	})
}

// FuzzRealRoundTrip drives the real-input path: the packed RFFT must
// match the complex transform of the widened signal bin-for-bin, and
// Inverse(Transform(x)) must return x. Both checks run at every fuzzed
// (length, task size) the decoder produces.
func FuzzRealRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add(make([]byte, 128), uint8(3))
	f.Add([]byte{255, 1, 254, 2, 253, 3, 252, 4, 128, 127, 0, 64}, uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, p8 uint8) {
		z, p := fuzzInput(raw, p8)
		if z == nil || len(z) < 4 {
			t.Skip("input too short for a real plan")
		}
		n := len(z)
		x := make([]float64, n)
		for i, v := range z {
			x[i] = real(v)
		}
		rp, err := fft.NewRealPlan(n, p)
		if err != nil {
			t.Fatalf("NewRealPlan(%d, %d): %v", n, p, err)
		}
		spec := make([]complex128, rp.SpectrumLen())
		rp.Transform(spec, x)

		wide := make([]complex128, n)
		for i, v := range x {
			wide[i] = complex(v, 0)
		}
		want := fft.Recursive(wide)
		if e := fft.MaxError(spec, want[:n/2+1]); e > 1e-9 {
			t.Fatalf("N=%d P=%d: RFFT vs complex FFT error %g", n, p, e)
		}

		back := make([]float64, n)
		rp.Inverse(back, spec)
		for i := range x {
			if d := back[i] - x[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("N=%d P=%d: round trip diverged at %d (%g vs %g)", n, p, i, back[i], x[i])
			}
		}
	})
}

func FuzzParallelMatchesSerial(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), uint8(2))
	f.Add(make([]byte, 512), uint8(5), uint8(7))
	f.Add([]byte{9, 9, 9, 9, 200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 0, 255}, uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, p8, workers8 uint8) {
		x, p := fuzzInput(raw, p8)
		if x == nil {
			t.Skip("input too short")
		}
		n := len(x)
		pl, err := fft.NewPlan(n, p)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", n, p, err)
		}
		w := fft.Twiddles(n)

		serial := append([]complex128(nil), x...)
		pl.Transform(serial, w)

		workers := int(workers8)%8 + 1
		eng := host.New(host.Config{Workers: workers, Threshold: 1})
		par := append([]complex128(nil), x...)
		eng.Transform(pl, par, w)
		for i := range par {
			if math.Float64bits(real(par[i])) != math.Float64bits(real(serial[i])) ||
				math.Float64bits(imag(par[i])) != math.Float64bits(imag(serial[i])) {
				t.Fatalf("N=%d P=%d workers=%d: element %d differs: parallel %v, serial %v",
					n, p, workers, i, par[i], serial[i])
			}
		}

		// And the inverse path, which adds the sharded conjugate/scale
		// passes on top of the forward engine.
		pl.InverseTransform(serial, w)
		eng.InverseTransform(pl, par, w)
		for i := range par {
			if math.Float64bits(real(par[i])) != math.Float64bits(real(serial[i])) ||
				math.Float64bits(imag(par[i])) != math.Float64bits(imag(serial[i])) {
				t.Fatalf("N=%d P=%d workers=%d: inverse element %d differs", n, p, workers, i)
			}
		}
	})
}
