// Native Go fuzz targets for the transform engines. The staged targets
// derive a power-of-two complex input from raw fuzz bytes (values
// bounded in [-1,1) so tolerances stay meaningful) and a plan shape
// from the fuzzed parameters, then check the two invariants the rest of
// the repo leans on: forward+inverse is the identity, and the parallel
// host engine is bitwise-indistinguishable from the serial path.
// FuzzMixedRadixRoundTrip and FuzzBluesteinMatchesDFT extend the same
// properties to arbitrary lengths — any {2,3,5,7}-smooth N for the
// mixed-radix plan, any N ≥ 1 for the chirp-z embedding — and
// FuzzTransformRoundTrip carries an arbitrary-length section of its
// own so the legacy corpus also exercises the non-power-of-two router.
//
// CI runs short -fuzz smokes on each target; all targets also run
// their seed corpus under plain `go test`.
package fft_test

import (
	"math"
	"testing"

	"codeletfft/internal/fft"
	"codeletfft/internal/host"
)

// fuzzInput decodes raw bytes into a power-of-two-length complex slice
// (each element consumes two bytes, mapped to [-1,1)) and picks a valid
// task size from p8. Returns nil if raw is too short for a 2-point
// transform.
func fuzzInput(raw []byte, p8 uint8) ([]complex128, int) {
	count := len(raw) / 2
	n := 1
	for n*2 <= count && n < 1<<12 {
		n *= 2
	}
	if n < 2 {
		return nil, 0
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = complex(float64(int8(raw[2*i]))/128, float64(int8(raw[2*i+1]))/128)
	}
	p := 2 << (int(p8) % 6) // 2..64
	if p > n {
		p = n
	}
	return x, p
}

func FuzzTransformRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add(make([]byte, 256), uint8(5))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 200, 100, 9, 8, 7, 6, 5, 4, 3, 2}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, p8 uint8) {
		x, p := fuzzInput(raw, p8)
		if x == nil {
			t.Skip("input too short")
		}
		n := len(x)
		pl, err := fft.NewPlan(n, p)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", n, p, err)
		}
		w := fft.Twiddles(n)
		data := append([]complex128(nil), x...)
		pl.Transform(data, w)

		// Cross-check the forward transform against the independent
		// recursive implementation.
		want := fft.Recursive(x)
		if e := fft.MaxError(data, want); e > 1e-9 {
			t.Fatalf("N=%d P=%d: staged vs recursive error %g", n, p, e)
		}

		pl.InverseTransform(data, w)
		if e := fft.MaxError(data, x); e > 1e-9 {
			t.Fatalf("N=%d P=%d: round-trip error %g", n, p, e)
		}

		// Arbitrary-length section: re-cut the same bytes to a length
		// that is usually not a power of two and round-trip it through
		// the mixed-radix/Bluestein router the facade uses.
		nAny := len(raw)%1023 + 1
		y := fuzzAnySignal(raw, nAny)
		rt := append([]complex128(nil), y...)
		anyForward(t, nAny)(rt)
		anyInverse(t, nAny)(rt)
		if e := fft.MaxError(rt, y); e > 1e-9 {
			t.Fatalf("N=%d: arbitrary-length round-trip error %g", nAny, e)
		}
	})
}

// fuzzAnySignal cycles raw bytes into an n-length complex signal with
// components in [-1,1). A nil or empty raw still yields a valid signal.
func fuzzAnySignal(raw []byte, n int) []complex128 {
	x := make([]complex128, n)
	if len(raw) == 0 {
		raw = []byte{0x55}
	}
	for i := range x {
		re := raw[(2*i)%len(raw)]
		im := raw[(2*i+1)%len(raw)]
		x[i] = complex(float64(int8(re))/128, float64(int8(im))/128)
	}
	return x
}

// anyForward and anyInverse route n through the same plan selection the
// facade applies: mixed-radix when N is {2,3,5,7}-smooth, Bluestein
// otherwise.
func anyForward(t *testing.T, n int) func([]complex128) {
	t.Helper()
	if mp, err := fft.NewMixedPlan(n); err == nil {
		return mp.Transform
	}
	bp, err := fft.NewBluesteinPlan(n)
	if err != nil {
		t.Fatalf("no plan for n=%d: %v", n, err)
	}
	return bp.Transform
}

func anyInverse(t *testing.T, n int) func([]complex128) {
	t.Helper()
	if mp, err := fft.NewMixedPlan(n); err == nil {
		return mp.InverseTransform
	}
	bp, err := fft.NewBluesteinPlan(n)
	if err != nil {
		t.Fatalf("no plan for n=%d: %v", n, err)
	}
	return bp.InverseTransform
}

// FuzzMixedRadixRoundTrip fuzzes the mixed-radix plan over arbitrary
// {2,3,5,7}-smooth lengths: the fuzzed length is reduced to its smooth
// part (dividing out the Bluestein cofactor), the signal round-trips
// through forward+inverse, and small lengths are additionally checked
// against the O(N²) reference DFT.
func FuzzMixedRadixRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(12))
	f.Add(make([]byte, 64), uint16(360))
	f.Add([]byte{255, 0, 128, 64}, uint16(1000))
	f.Add([]byte{9, 8, 7, 6, 5}, uint16(1))
	f.Add([]byte{42}, uint16(2047))
	f.Fuzz(func(t *testing.T, raw []byte, n16 uint16) {
		n := int(n16)%2048 + 1
		_, cofactor := fft.Factor(n)
		n /= cofactor // keep the {2,3,5,7}-smooth part, ≥ 1 by construction
		mp, err := fft.NewMixedPlan(n)
		if err != nil {
			t.Fatalf("NewMixedPlan(%d): %v", n, err)
		}
		x := fuzzAnySignal(raw, n)
		data := append([]complex128(nil), x...)
		mp.Transform(data)
		if n <= 512 {
			if e := fft.MaxError(data, fft.DFT(x)); e > 1e-9*float64(n) {
				t.Fatalf("N=%d: mixed-radix vs DFT error %g", n, e)
			}
		}
		mp.InverseTransform(data)
		if e := fft.MaxError(data, x); e > 1e-9 {
			t.Fatalf("N=%d: round-trip error %g", n, e)
		}
	})
}

// FuzzBluesteinMatchesDFT fuzzes the chirp-z plan over every length in
// [1, 600] — prime, smooth, and everything between — against the
// reference DFT, then checks the forward/inverse identity.
func FuzzBluesteinMatchesDFT(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(11))
	f.Add(make([]byte, 32), uint16(127))
	f.Add([]byte{255, 0, 128, 64}, uint16(257))
	f.Add([]byte{17}, uint16(1))
	f.Add([]byte{3, 1, 4, 1, 5, 9}, uint16(599))
	f.Fuzz(func(t *testing.T, raw []byte, n16 uint16) {
		n := int(n16)%600 + 1
		bp, err := fft.NewBluesteinPlan(n)
		if err != nil {
			t.Fatalf("NewBluesteinPlan(%d): %v", n, err)
		}
		x := fuzzAnySignal(raw, n)
		data := append([]complex128(nil), x...)
		bp.Transform(data)
		if e := fft.MaxError(data, fft.DFT(x)); e > 1e-9*float64(n) {
			t.Fatalf("N=%d: Bluestein vs DFT error %g", n, e)
		}
		bp.InverseTransform(data)
		if e := fft.MaxError(data, x); e > 1e-9 {
			t.Fatalf("N=%d: round-trip error %g", n, e)
		}
	})
}

// FuzzRealRoundTrip drives the real-input path: the packed RFFT must
// match the complex transform of the widened signal bin-for-bin, and
// Inverse(Transform(x)) must return x. Both checks run at every fuzzed
// (length, task size) the decoder produces.
func FuzzRealRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add(make([]byte, 128), uint8(3))
	f.Add([]byte{255, 1, 254, 2, 253, 3, 252, 4, 128, 127, 0, 64}, uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, p8 uint8) {
		z, p := fuzzInput(raw, p8)
		if z == nil || len(z) < 4 {
			t.Skip("input too short for a real plan")
		}
		n := len(z)
		x := make([]float64, n)
		for i, v := range z {
			x[i] = real(v)
		}
		rp, err := fft.NewRealPlan(n, p)
		if err != nil {
			t.Fatalf("NewRealPlan(%d, %d): %v", n, p, err)
		}
		spec := make([]complex128, rp.SpectrumLen())
		rp.Transform(spec, x)

		wide := make([]complex128, n)
		for i, v := range x {
			wide[i] = complex(v, 0)
		}
		want := fft.Recursive(wide)
		if e := fft.MaxError(spec, want[:n/2+1]); e > 1e-9 {
			t.Fatalf("N=%d P=%d: RFFT vs complex FFT error %g", n, p, e)
		}

		back := make([]float64, n)
		rp.Inverse(back, spec)
		for i := range x {
			if d := back[i] - x[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("N=%d P=%d: round trip diverged at %d (%g vs %g)", n, p, i, back[i], x[i])
			}
		}
	})
}

func FuzzParallelMatchesSerial(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), uint8(2))
	f.Add(make([]byte, 512), uint8(5), uint8(7))
	f.Add([]byte{9, 9, 9, 9, 200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 0, 255}, uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, p8, workers8 uint8) {
		x, p := fuzzInput(raw, p8)
		if x == nil {
			t.Skip("input too short")
		}
		n := len(x)
		pl, err := fft.NewPlan(n, p)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", n, p, err)
		}
		w := fft.Twiddles(n)

		serial := append([]complex128(nil), x...)
		pl.Transform(serial, w)

		workers := int(workers8)%8 + 1
		eng := host.New(host.Config{Workers: workers, Threshold: 1})
		par := append([]complex128(nil), x...)
		eng.Transform(pl, par, w)
		for i := range par {
			if math.Float64bits(real(par[i])) != math.Float64bits(real(serial[i])) ||
				math.Float64bits(imag(par[i])) != math.Float64bits(imag(serial[i])) {
				t.Fatalf("N=%d P=%d workers=%d: element %d differs: parallel %v, serial %v",
					n, p, workers, i, par[i], serial[i])
			}
		}

		// And the inverse path, which adds the sharded conjugate/scale
		// passes on top of the forward engine.
		pl.InverseTransform(serial, w)
		eng.InverseTransform(pl, par, w)
		for i := range par {
			if math.Float64bits(real(par[i])) != math.Float64bits(real(serial[i])) ||
				math.Float64bits(imag(par[i])) != math.Float64bits(imag(serial[i])) {
				t.Fatalf("N=%d P=%d workers=%d: inverse element %d differs", n, p, workers, i)
			}
		}
	})
}
