//go:build noasm || (!amd64 && !arm64)

package fft

// Portable build (noasm tag, or an architecture without codelets): the
// SoA kernels run entirely through the pure-Go loops in soa.go. The
// min-size gates are set beyond any real group so the asm stubs below
// are unreachable.
const (
	soaLanes     = 1 << 30
	soaBase4MinN = 1 << 30
)

var (
	soaHasAsm   = false
	soaHasBase4 = false
	soaAccel    = "generic"
)

func bfly2Asm(re, im, wr, wi *float64, dist, cnt, nblk int) {
	panic("fft: bfly2Asm unavailable in this build")
}

func bfly4Asm(re, im, war, wai, wbr, wbi *float64, dist, cnt, nblk int) {
	panic("fft: bfly4Asm unavailable in this build")
}

func base4Asm(re, im *float64, n int, tw *float64) {
	panic("fft: base4Asm unavailable in this build")
}
