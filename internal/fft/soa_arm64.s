//go:build arm64 && !noasm

#include "textflag.h"

// NEON codelets for the SoA kernel family (2-wide float64 lanes). Same
// calling contract as the AVX2 twins in soa_amd64.s, with cnt a
// multiple of 2 and dist ≥ 2. The Go arm64 assembler has no named
// vector float add/sub mnemonics, so sums and differences are formed
// with VFMLA/VFMLS against an all-ones vector (V31) — a ± 1.0·b is
// exact, so this is bit-identical to a plain vector add/subtract.

// func bfly2Asm(re, im, wr, wi *float64, dist, cnt, nblk int)
TEXT ·bfly2Asm(SB), NOSPLIT, $0-56
	MOVD re+0(FP), R0
	MOVD im+8(FP), R1
	MOVD wr+16(FP), R2
	MOVD wi+24(FP), R3
	MOVD dist+32(FP), R4
	LSL  $3, R4              // dist in bytes
	MOVD cnt+40(FP), R5
	LSR  $1, R5              // cnt/2 iterations per block
	MOVD nblk+48(FP), R6
	FMOVD $1.0, F31
	VDUP V31.D[0], V31.D2    // ones

bfly2_blk:
	MOVD R2, R8              // wr cursor (restarts per block)
	MOVD R3, R9              // wi cursor
	MOVD R0, R10             // &re[k+j]
	MOVD R1, R11             // &im[k+j]
	ADD  R4, R0, R12         // &re[k+j+dist]
	ADD  R4, R1, R13         // &im[k+j+dist]
	MOVD R5, R14             // iteration counter

bfly2_inner:
	VLD1.P 16(R8), [V0.D2]   // wr[j]
	VLD1.P 16(R9), [V1.D2]   // wi[j]
	VLD1   (R10), [V2.D2]    // ar
	VLD1   (R11), [V3.D2]    // ai
	VLD1   (R12), [V4.D2]    // br
	VLD1   (R13), [V5.D2]    // bi

	VEOR  V6.B16, V6.B16, V6.B16
	VFMLA V4.D2, V0.D2, V6.D2  // + wr·br
	VFMLS V5.D2, V1.D2, V6.D2  // tr = wr·br − wi·bi
	VEOR  V7.B16, V7.B16, V7.B16
	VFMLA V5.D2, V0.D2, V7.D2
	VFMLA V4.D2, V1.D2, V7.D2  // ti = wr·bi + wi·br

	VORR  V2.B16, V2.B16, V8.B16
	VFMLS V6.D2, V31.D2, V8.D2 // br' = ar − tr
	VFMLA V6.D2, V31.D2, V2.D2 // ar' = ar + tr
	VORR  V3.B16, V3.B16, V9.B16
	VFMLS V7.D2, V31.D2, V9.D2
	VFMLA V7.D2, V31.D2, V3.D2

	VST1.P [V2.D2], 16(R10)
	VST1.P [V3.D2], 16(R11)
	VST1.P [V8.D2], 16(R12)
	VST1.P [V9.D2], 16(R13)

	SUB  $1, R14
	CBNZ R14, bfly2_inner

	ADD  R4<<1, R0           // next 2·dist block
	ADD  R4<<1, R1
	SUB  $1, R6
	CBNZ R6, bfly2_blk

	RET

// func bfly4Asm(re, im, war, wai, wbr, wbi *float64, dist, cnt, nblk int)
//
// Fused radix-4 level pair; the dataflow mirrors bfly4Asm in
// soa_amd64.s (b1/b3, p/q/s/t, ws/wt, y0..y3 with the −i fold).
TEXT ·bfly4Asm(SB), NOSPLIT, $0-72
	MOVD re+0(FP), R0
	MOVD im+8(FP), R1
	MOVD war+16(FP), R2
	MOVD wai+24(FP), R3
	MOVD wbr+32(FP), R4
	MOVD wbi+40(FP), R5
	MOVD dist+48(FP), R6
	LSL  $3, R6              // dist in bytes
	MOVD cnt+56(FP), R7
	LSR  $1, R7              // cnt/2 iterations per block
	MOVD nblk+64(FP), R22
	FMOVD $1.0, F31
	VDUP V31.D[0], V31.D2    // ones

bfly4_blk:
	MOVD R0, R8              // x0r
	MOVD R1, R9              // x0i
	ADD  R6, R0, R10         // x1r
	ADD  R6, R1, R11         // x1i
	ADD  R6<<1, R0, R12      // x2r
	ADD  R6<<1, R1, R13      // x2i
	ADD  R6, R12, R14        // x3r
	ADD  R6, R13, R15        // x3i
	MOVD R2, R16             // war cursor
	MOVD R3, R17             // wai cursor
	MOVD R4, R19             // wbr cursor
	MOVD R5, R20             // wbi cursor
	MOVD R7, R21             // iteration counter

bfly4_inner:
	VLD1.P 16(R16), [V0.D2]  // war
	VLD1.P 16(R17), [V1.D2]  // wai
	VLD1.P 16(R19), [V2.D2]  // wbr
	VLD1.P 16(R20), [V3.D2]  // wbi
	VLD1   (R8), [V4.D2]     // x0r
	VLD1   (R9), [V5.D2]     // x0i
	VLD1   (R10), [V6.D2]    // x1r
	VLD1   (R11), [V7.D2]    // x1i
	VLD1   (R12), [V8.D2]    // x2r
	VLD1   (R13), [V9.D2]    // x2i
	VLD1   (R14), [V10.D2]   // x3r
	VLD1   (R15), [V11.D2]   // x3i

	VEOR  V12.B16, V12.B16, V12.B16
	VFMLA V6.D2, V0.D2, V12.D2   // b1r = war·x1r − wai·x1i
	VFMLS V7.D2, V1.D2, V12.D2
	VEOR  V13.B16, V13.B16, V13.B16
	VFMLA V7.D2, V0.D2, V13.D2   // b1i = war·x1i + wai·x1r
	VFMLA V6.D2, V1.D2, V13.D2

	VEOR  V6.B16, V6.B16, V6.B16
	VFMLA V10.D2, V0.D2, V6.D2   // b3r
	VFMLS V11.D2, V1.D2, V6.D2
	VEOR  V7.B16, V7.B16, V7.B16
	VFMLA V11.D2, V0.D2, V7.D2   // b3i
	VFMLA V10.D2, V1.D2, V7.D2

	VORR  V4.B16, V4.B16, V0.B16
	VFMLA V12.D2, V31.D2, V0.D2  // pr = x0r + b1r
	VFMLS V12.D2, V31.D2, V4.D2  // qr = x0r − b1r
	VORR  V5.B16, V5.B16, V1.B16
	VFMLA V13.D2, V31.D2, V1.D2  // pi
	VFMLS V13.D2, V31.D2, V5.D2  // qi

	VORR  V8.B16, V8.B16, V10.B16
	VFMLA V6.D2, V31.D2, V10.D2  // sr = x2r + b3r
	VFMLS V6.D2, V31.D2, V8.D2   // tr
	VORR  V9.B16, V9.B16, V11.B16
	VFMLA V7.D2, V31.D2, V11.D2  // si
	VFMLS V7.D2, V31.D2, V9.D2   // ti

	VEOR  V12.B16, V12.B16, V12.B16
	VFMLA V10.D2, V2.D2, V12.D2  // wsr = wbr·sr − wbi·si
	VFMLS V11.D2, V3.D2, V12.D2
	VEOR  V13.B16, V13.B16, V13.B16
	VFMLA V11.D2, V2.D2, V13.D2  // wsi
	VFMLA V10.D2, V3.D2, V13.D2

	VEOR  V6.B16, V6.B16, V6.B16
	VFMLA V8.D2, V2.D2, V6.D2    // wtr
	VFMLS V9.D2, V3.D2, V6.D2
	VEOR  V7.B16, V7.B16, V7.B16
	VFMLA V9.D2, V2.D2, V7.D2    // wti
	VFMLA V8.D2, V3.D2, V7.D2

	VORR  V0.B16, V0.B16, V10.B16
	VFMLA V12.D2, V31.D2, V10.D2 // y0r = pr + wsr
	VFMLS V12.D2, V31.D2, V0.D2  // y2r
	VORR  V1.B16, V1.B16, V11.B16
	VFMLA V13.D2, V31.D2, V11.D2 // y0i
	VFMLS V13.D2, V31.D2, V1.D2  // y2i

	VORR  V4.B16, V4.B16, V8.B16
	VFMLA V7.D2, V31.D2, V8.D2   // y1r = qr + wti
	VFMLS V7.D2, V31.D2, V4.D2   // y3r = qr − wti
	VORR  V5.B16, V5.B16, V9.B16
	VFMLS V6.D2, V31.D2, V9.D2   // y1i = qi − wtr
	VFMLA V6.D2, V31.D2, V5.D2   // y3i = qi + wtr

	VST1.P [V10.D2], 16(R8)
	VST1.P [V11.D2], 16(R9)
	VST1.P [V8.D2], 16(R10)
	VST1.P [V9.D2], 16(R11)
	VST1.P [V0.D2], 16(R12)
	VST1.P [V1.D2], 16(R13)
	VST1.P [V4.D2], 16(R14)
	VST1.P [V5.D2], 16(R15)

	SUB  $1, R21
	CBNZ R21, bfly4_inner

	ADD  R6<<2, R0           // next 4·dist block
	ADD  R6<<2, R1
	SUB  $1, R22
	CBNZ R22, bfly4_blk

	RET
