// Cross-kernel parity suite (ISSUE 5): every kernel family must compute
// the same DFT. The normalization under which outputs are compared is
// documented at each check:
//
//   - vs the reference DFT: relative ∞-norm error ≤ 1e-9 for every N in
//     2^4..2^12 and every kernel;
//   - across kernels: Radix2/Radix4/SplitRadix agree pairwise to the
//     same 1e-9 relative tolerance (different floating-point
//     factorizations round differently, so cross-kernel equality is
//     to rounding, not bitwise);
//   - within one kernel: serial, scratch-reusing, and parallel host
//     execution are bitwise identical (see also host's kernel tests),
//     and KernelRadix2/KernelAuto are bitwise identical to the legacy
//     Transform path.
package fft_test

import (
	"math"
	"testing"

	"codeletfft/internal/fft"
)

// lcg fills a deterministic pseudo-random complex slice without pulling
// in math/rand (keeps fuzz/corpus inputs reproducible byte-for-byte).
func lcgComplex(n int, seed uint64) []complex128 {
	x := make([]complex128, n)
	s := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(int32(s>>32)) / float64(1<<31)
	}
	for i := range x {
		x[i] = complex(next(), next())
	}
	return x
}

// maxRelError returns the ∞-norm of (got−want) divided by the ∞-norm of
// want — the documented cross-kernel comparison normalization.
func maxRelError(got, want []complex128) float64 {
	var diff, norm float64
	for i := range got {
		d := got[i] - want[i]
		if v := math.Hypot(real(d), imag(d)); v > diff {
			diff = v
		}
		if v := math.Hypot(real(want[i]), imag(want[i])); v > norm {
			norm = v
		}
	}
	if norm == 0 {
		return diff
	}
	return diff / norm
}

func equalBits(a, b []complex128) bool {
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// TestKernelParityAgainstDFT is the satellite's core matrix: for every N
// in 2^4..2^12, several task sizes, and every concrete kernel, the
// staged transform matches the independent recursive FFT to 1e-9
// relative, and all kernels match each other to the same tolerance.
func TestKernelParityAgainstDFT(t *testing.T) {
	for lg := 4; lg <= 12; lg++ {
		n := 1 << lg
		x := lcgComplex(n, uint64(lg))
		want := fft.Recursive(x)
		for _, p := range []int{2, 8, 64, n} {
			if p > n {
				continue
			}
			pl, err := fft.NewPlan(n, p)
			if err != nil {
				t.Fatalf("NewPlan(%d,%d): %v", n, p, err)
			}
			w := fft.Twiddles(n)
			outs := map[fft.Kernel][]complex128{}
			for _, k := range fft.ConcreteKernels() {
				data := append([]complex128(nil), x...)
				pl.TransformKernel(data, w, k)
				if e := maxRelError(data, want); e > 1e-9 {
					t.Errorf("N=2^%d P=%d %v: error vs DFT %g", lg, p, k, e)
				}
				outs[k] = data
			}
			ks := fft.ConcreteKernels()
			for i := 0; i < len(ks); i++ {
				for j := i + 1; j < len(ks); j++ {
					if e := maxRelError(outs[ks[i]], outs[ks[j]]); e > 1e-9 {
						t.Errorf("N=2^%d P=%d: %v vs %v error %g", lg, p, ks[i], ks[j], e)
					}
				}
			}
		}
	}
}

// TestKernelRadix2MatchesLegacyBitwise pins the back-compat contract:
// KernelRadix2 and KernelAuto at this layer are bit-for-bit the legacy
// Transform path, forward and inverse.
func TestKernelRadix2MatchesLegacyBitwise(t *testing.T) {
	for _, lg := range []int{4, 7, 10, 13} {
		n := 1 << lg
		for _, p := range []int{8, 64} {
			if p > n {
				continue
			}
			pl, err := fft.NewPlan(n, p)
			if err != nil {
				t.Fatal(err)
			}
			w := fft.Twiddles(n)
			x := lcgComplex(n, uint64(n))
			legacy := append([]complex128(nil), x...)
			pl.Transform(legacy, w)
			for _, k := range []fft.Kernel{fft.KernelRadix2, fft.KernelAuto} {
				got := append([]complex128(nil), x...)
				pl.TransformKernel(got, w, k)
				if !equalBits(got, legacy) {
					t.Fatalf("N=2^%d P=%d %v: forward not bitwise legacy", lg, p, k)
				}
				pl.InverseTransformKernel(got, w, k)
				back := append([]complex128(nil), legacy...)
				pl.InverseTransform(back, w)
				if !equalBits(got, back) {
					t.Fatalf("N=2^%d P=%d %v: inverse not bitwise legacy", lg, p, k)
				}
			}
		}
	}
}

// TestKernelRoundTrip: forward + inverse under each kernel returns the
// input, and the run is deterministic (two runs, same Scratch or fresh,
// are bitwise identical).
func TestKernelRoundTrip(t *testing.T) {
	for _, lg := range []int{4, 6, 9, 12} {
		n := 1 << lg
		for _, p := range []int{4, 64} {
			if p > n {
				continue
			}
			pl, err := fft.NewPlan(n, p)
			if err != nil {
				t.Fatal(err)
			}
			w := fft.Twiddles(n)
			for _, k := range fft.ConcreteKernels() {
				x := lcgComplex(n, 7)
				a := append([]complex128(nil), x...)
				pl.TransformKernel(a, w, k)

				// Determinism: fresh scratch vs reused scratch.
				sc := fft.NewScratch(pl)
				b := append([]complex128(nil), x...)
				pl.TransformKernelWith(b, w, k, sc)
				if !equalBits(a, b) {
					t.Fatalf("N=2^%d P=%d %v: nondeterministic forward", lg, p, k)
				}

				pl.InverseTransformKernelWith(a, w, k, sc)
				if e := maxRelError(a, x); e > 1e-9 {
					t.Fatalf("N=2^%d P=%d %v: round-trip error %g", lg, p, k, e)
				}
			}
		}
	}
}

// TestRealPlanKernels checks the real-input path under each kernel
// against the complex transform of the widened signal.
func TestRealPlanKernels(t *testing.T) {
	for _, n := range []int{16, 256, 4096} {
		rp, err := fft.NewRealPlan(n, 64)
		if err != nil {
			t.Fatal(err)
		}
		z := lcgComplex(n, uint64(n)+3)
		x := make([]float64, n)
		wide := make([]complex128, n)
		for i := range x {
			x[i] = real(z[i])
			wide[i] = complex(x[i], 0)
		}
		want := fft.Recursive(wide)
		for _, k := range fft.ConcreteKernels() {
			spec := make([]complex128, rp.SpectrumLen())
			sc := fft.NewScratch(rp.Half)
			rp.TransformKernelWith(spec, x, k, sc)
			if e := maxRelError(spec, want[:n/2+1]); e > 1e-9 {
				t.Errorf("N=%d %v: RFFT error %g", n, k, e)
			}
			back := make([]float64, n)
			work := make([]complex128, n/2)
			rp.InverseKernelWith(back, spec, work, k, sc)
			for i := range back {
				if d := math.Abs(back[i] - x[i]); d > 1e-9 {
					t.Fatalf("N=%d %v: real round trip diverged at %d by %g", n, k, i, d)
				}
			}
		}
	}
}

// TestPlan2DKernels checks the 2-D row-column path under each kernel
// against the radix-2 2-D reference.
func TestPlan2DKernels(t *testing.T) {
	p2, err := fft.NewPlan2D(16, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := lcgComplex(16*64, 11)
	want := append([]complex128(nil), x...)
	p2.Transform(want)
	for _, k := range fft.ConcreteKernels() {
		got := append([]complex128(nil), x...)
		p2.TransformKernel(got, k)
		if e := maxRelError(got, want); e > 1e-9 {
			t.Errorf("%v: 2-D error vs radix-2 %g", k, e)
		}
		p2.InverseTransformKernel(got, k)
		if e := maxRelError(got, x); e > 1e-9 {
			t.Errorf("%v: 2-D round-trip error %g", k, e)
		}
	}
}

// TestKernelStringParse round-trips names through ParseKernel and
// rejects junk.
func TestKernelStringParse(t *testing.T) {
	for _, k := range append(fft.ConcreteKernels(), fft.KernelAuto) {
		got, err := fft.ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := fft.ParseKernel("Split-Radix"); err != nil || k != fft.KernelSplitRadix {
		t.Fatalf("ParseKernel(Split-Radix) = %v, %v", k, err)
	}
	if _, err := fft.ParseKernel("radix8"); err == nil {
		t.Fatal("ParseKernel(radix8) should fail")
	}
	if fft.KernelAuto.Concrete() != fft.KernelRadix2 {
		t.Fatal("Auto must resolve to radix2 at the math layer")
	}
}

// FuzzKernelParity fuzzes (input, task size, kernel selector): the
// fuzzed kernel's forward output must match radix-2 within the
// documented 1e-9 relative tolerance, and its forward+inverse round
// trip must return the input. Part of the CI fuzz smoke.
func FuzzKernelParity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), uint8(0))
	f.Add(make([]byte, 256), uint8(5), uint8(1))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 200, 100, 9, 8, 7, 6, 5, 4, 3, 2}, uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, p8, k8 uint8) {
		x, p := fuzzInput(raw, p8)
		if x == nil {
			t.Skip("input too short")
		}
		n := len(x)
		pl, err := fft.NewPlan(n, p)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", n, p, err)
		}
		w := fft.Twiddles(n)
		kern := fft.ConcreteKernels()[int(k8)%len(fft.ConcreteKernels())]

		want := append([]complex128(nil), x...)
		pl.Transform(want, w)
		got := append([]complex128(nil), x...)
		pl.TransformKernel(got, w, kern)
		if e := maxRelError(got, want); e > 1e-9 {
			t.Fatalf("N=%d P=%d %v: error vs radix-2 %g", n, p, kern, e)
		}
		pl.InverseTransformKernel(got, w, kern)
		if e := maxRelError(got, x); e > 1e-9 {
			t.Fatalf("N=%d P=%d %v: round-trip error %g", n, p, kern, e)
		}
	})
}
