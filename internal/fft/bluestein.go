// Bluestein (chirp-z) planning: an arbitrary-N DFT as a circular
// convolution of power-of-two length, covering the lengths the
// mixed-radix planner cannot — anything with a prime factor outside
// {2, 3, 5, 7}. With the chirp c[t] = exp(-iπ·t²/N), the identity
// t·k = (t² + k² - (k-t)²)/2 rewrites the DFT as
//
//	X[k] = c[k] · Σ_t (x[t]·c[t]) · conj(c[k-t])
//
// — a linear convolution of the chirp-premultiplied input with the
// conjugate chirp, embedded in a circular convolution of length
// M = 2^⌈log2(2N-1)⌉ and executed with the existing staged
// power-of-two plan (so the kernel family, autotuner, and parallel
// engine all apply to the heavy lifting unchanged). The filter's
// spectrum is fixed per plan and precomputed once.
package fft

import (
	"fmt"
	"math"
)

// BluesteinPlan computes N-point DFTs for any N ≥ 1 via the chirp-z
// embedding. It is immutable after construction and safe for concurrent
// use on distinct buffers.
type BluesteinPlan struct {
	N int // transform length
	M int // convolution length: the smallest power of two ≥ max(2N-1, 2)

	// Conv is the staged M-point plan executing the embedded
	// convolution and WConv its twiddle table; the host engine runs
	// them with the caller's kernel choice.
	Conv  *Plan
	WConv []complex128

	// Chirp[t] = exp(-iπ·t²/N) for t ∈ [0, N) — the pre- and
	// post-multiplier. The squared index is reduced mod 2N in integer
	// arithmetic before the angle is formed, so the chirp stays
	// accurate at large t.
	Chirp []complex128

	// BHat is the forward M-point FFT of the wrapped conjugate-chirp
	// filter b (b[t] = conj(Chirp[t]), mirrored into b[M-t]).
	BHat []complex128
}

// NewBluesteinPlan builds the chirp-z plan for n-point transforms. It
// errors, wrapping ErrUnsupportedLength, only for n < 1.
func NewBluesteinPlan(n int) (*BluesteinPlan, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: bluestein plan needs n ≥ 1, got %d", ErrUnsupportedLength, n)
	}
	m := 2
	for m < 2*n-1 {
		m <<= 1
	}
	conv, err := NewPlan(m, min(64, m))
	if err != nil {
		return nil, err
	}
	w := Twiddles(m)

	chirp := make([]complex128, n)
	for t := 0; t < n; t++ {
		e := int64(t) * int64(t) % int64(2*n)
		ang := -math.Pi * float64(e) / float64(n)
		chirp[t] = complex(math.Cos(ang), math.Sin(ang))
	}

	b := make([]complex128, m)
	b[0] = 1 // conj(chirp[0])
	for t := 1; t < n; t++ {
		c := complex(real(chirp[t]), -imag(chirp[t]))
		b[t] = c
		b[m-t] = c
	}
	conv.Transform(b, w)

	return &BluesteinPlan{N: n, M: m, Conv: conv, WConv: w, Chirp: chirp, BHat: b}, nil
}

// String names the plan for logs and plan descriptions.
func (bp *BluesteinPlan) String() string {
	return fmt.Sprintf("bluestein[M=%d]", bp.M)
}

// Transform applies the forward DFT in place, allocating the M-element
// convolution buffer. Wrong-length data panics with an error wrapping
// ErrLengthMismatch.
func (bp *BluesteinPlan) Transform(data []complex128) {
	bp.TransformWith(data, make([]complex128, bp.M), NewScratch(bp.Conv))
}

// TransformWith is Transform with caller-supplied buffers: work must
// have length M (its prior contents are ignored) and sc must come from
// NewScratch(bp.Conv).
func (bp *BluesteinPlan) TransformWith(data, work []complex128, sc *Scratch) {
	if len(data) != bp.N {
		panic(LengthError("data", len(data), bp.N))
	}
	if len(work) != bp.M {
		panic(LengthError("work", len(work), bp.M))
	}
	for t := 0; t < bp.N; t++ {
		work[t] = data[t] * bp.Chirp[t]
	}
	for t := bp.N; t < bp.M; t++ {
		work[t] = 0
	}
	bp.Conv.TransformWith(work, bp.WConv, sc)
	for i := range work {
		work[i] *= bp.BHat[i]
	}
	bp.Conv.InverseTransformWith(work, bp.WConv, sc)
	for k := 0; k < bp.N; k++ {
		data[k] = work[k] * bp.Chirp[k]
	}
}

// InverseTransform applies the inverse DFT in place via the conjugation
// identity, allocating the convolution buffer.
func (bp *BluesteinPlan) InverseTransform(data []complex128) {
	bp.InverseTransformWith(data, make([]complex128, bp.M), NewScratch(bp.Conv))
}

// InverseTransformWith is InverseTransform with caller-supplied
// buffers.
func (bp *BluesteinPlan) InverseTransformWith(data, work []complex128, sc *Scratch) {
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	bp.TransformWith(data, work, sc)
	inv := 1 / float64(bp.N)
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}
