package fft

import (
	"errors"
	"fmt"
)

// Sentinel errors. Constructors return them wrapped with context
// (test with errors.Is); length-mismatch panics carry an error value
// wrapping ErrLengthMismatch so recovered panics are testable the same
// way.
var (
	// ErrUnsupportedLength reports a transform length no planner in this
	// package accepts: a non-positive N everywhere, a non-power-of-two N
	// for the staged/2-D plans, an odd or < 4 N for the real-input
	// plans, or (for NewMixedPlan) an N with a prime factor outside
	// {2, 3, 5, 7}. It is the single root sentinel of the length-gate
	// hierarchy; every length rejection wraps it.
	ErrUnsupportedLength = errors.New("fft: unsupported transform length")
	// ErrBadTaskSize reports a task size P that is not a power of two
	// ≥ 2 or that exceeds the transform length.
	ErrBadTaskSize = errors.New("fft: invalid task size")
	// ErrLengthMismatch reports a data/spectrum/twiddle buffer whose
	// length does not match what the plan requires. It is the panic
	// value (wrapped) of every length-mismatch panic in this package
	// and in internal/host.
	ErrLengthMismatch = errors.New("fft: length mismatch")
)

// LengthError builds the canonical length-mismatch error: every
// length-check panic in this package and internal/host uses it, so the
// wording is uniform and errors.Is(v, ErrLengthMismatch) holds for any
// recovered panic value v.
func LengthError(what string, got, want int) error {
	return fmt.Errorf("%w: %s has %d elements, want %d", ErrLengthMismatch, what, got, want)
}

// BatchLengthError is LengthError for one row of a batched call: it
// names the batch index of the offending row so callers rejecting a
// whole batch (the serving daemon's 400s) can say which request was
// malformed. It wraps ErrLengthMismatch like every other length panic.
func BatchLengthError(index, got, want int) error {
	return fmt.Errorf("%w: batch element %d has %d elements, want %d", ErrLengthMismatch, index, got, want)
}
