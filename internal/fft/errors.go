package fft

import (
	"errors"
	"fmt"
)

// Sentinel errors. Constructors return them wrapped with context
// (test with errors.Is); length-mismatch panics carry an error value
// wrapping ErrLengthMismatch so recovered panics are testable the same
// way.
var (
	// ErrNotPowerOfTwo reports a transform length (or 2-D dimension)
	// that is not a power of two.
	ErrNotPowerOfTwo = errors.New("fft: length is not a power of two")
	// ErrBadTaskSize reports a task size P that is not a power of two
	// ≥ 2 or that exceeds the transform length.
	ErrBadTaskSize = errors.New("fft: invalid task size")
	// ErrLengthMismatch reports a data/spectrum/twiddle buffer whose
	// length does not match what the plan requires. It is the panic
	// value (wrapped) of every length-mismatch panic in this package
	// and in internal/host.
	ErrLengthMismatch = errors.New("fft: length mismatch")
)

// LengthError builds the canonical length-mismatch error: every
// length-check panic in this package and internal/host uses it, so the
// wording is uniform and errors.Is(v, ErrLengthMismatch) holds for any
// recovered panic value v.
func LengthError(what string, got, want int) error {
	return fmt.Errorf("%w: %s has %d elements, want %d", ErrLengthMismatch, what, got, want)
}

// BatchLengthError is LengthError for one row of a batched call: it
// names the batch index of the offending row so callers rejecting a
// whole batch (the serving daemon's 400s) can say which request was
// malformed. It wraps ErrLengthMismatch like every other length panic.
func BatchLengthError(index, got, want int) error {
	return fmt.Errorf("%w: batch element %d has %d elements, want %d", ErrLengthMismatch, index, got, want)
}
