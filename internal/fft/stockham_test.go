package fft

import "testing"

func TestStockhamMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256, 1024} {
		x := randomSignal(n, int64(n+77))
		if err := MaxError(Stockham(x), DFT(x)); err > 1e-8*float64(n) {
			t.Fatalf("n=%d: Stockham vs DFT error %g", n, err)
		}
	}
}

func TestStockhamMatchesStagedPlan(t *testing.T) {
	n := 1 << 13
	x := randomSignal(n, 5)
	pl := mustPlan(t, n, 64)
	staged := append([]complex128(nil), x...)
	pl.Transform(staged, Twiddles(n))
	if err := MaxError(Stockham(x), staged); err > 1e-7 {
		t.Fatalf("Stockham vs staged plan error %g", err)
	}
}

func TestStockhamDoesNotMutateInput(t *testing.T) {
	x := randomSignal(64, 9)
	orig := append([]complex128(nil), x...)
	Stockham(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestStockhamRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length 6 accepted")
		}
	}()
	Stockham(make([]complex128, 6))
}
