package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTwiddlesValues(t *testing.T) {
	w := Twiddles(8)
	if len(w) != 4 {
		t.Fatalf("len = %d, want 4", len(w))
	}
	want := []complex128{
		1,
		complex(math.Sqrt2/2, -math.Sqrt2/2),
		complex(0, -1),
		complex(-math.Sqrt2/2, -math.Sqrt2/2),
	}
	for i := range want {
		if cmplx.Abs(w[i]-want[i]) > 1e-12 {
			t.Errorf("W[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestTwiddlesUnitModulus(t *testing.T) {
	for _, mag := range Twiddles(1 << 10) {
		if math.Abs(cmplx.Abs(mag)-1) > 1e-12 {
			t.Fatalf("twiddle off the unit circle: %v", mag)
		}
	}
}

func TestTwiddlesRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Twiddles(%d) did not panic", n)
				}
			}()
			Twiddles(n)
		}()
	}
}

func TestBitReverseKnown(t *testing.T) {
	cases := []struct {
		x     int64
		width int
		want  int64
	}{
		{0, 4, 0}, {1, 4, 8}, {2, 4, 4}, {3, 4, 12},
		{0b1011, 4, 0b1101}, {1, 1, 1}, {1, 10, 512}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := BitReverse(c.x, c.width); got != c.want {
			t.Errorf("BitReverse(%d,%d) = %d, want %d", c.x, c.width, got, c.want)
		}
	}
}

func TestBitReverseInvolution(t *testing.T) {
	f := func(x uint16, w uint8) bool {
		width := int(w)%16 + 1
		v := int64(x) & ((1 << width) - 1)
		return BitReverse(BitReverse(v, width), width) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitReverseIsPermutation(t *testing.T) {
	const width = 8
	seen := make(map[int64]bool)
	for i := int64(0); i < 1<<width; i++ {
		r := BitReverse(i, width)
		if r < 0 || r >= 1<<width {
			t.Fatalf("BitReverse(%d) = %d out of range", i, r)
		}
		if seen[r] {
			t.Fatalf("BitReverse collision at %d", r)
		}
		seen[r] = true
	}
}

func TestHashTwiddlesPermutes(t *testing.T) {
	w := Twiddles(64)
	h := HashTwiddles(w)
	if len(h) != len(w) {
		t.Fatal("length changed")
	}
	// Every original value appears exactly once at its reversed index.
	width := Log2(len(w))
	for i := range w {
		if h[BitReverse(int64(i), width)] != w[i] {
			t.Fatalf("hash table misplaced W[%d]", i)
		}
	}
}

func TestBitReversePermuteInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]complex128, 256)
	orig := make([]complex128, 256)
	for i := range data {
		data[i] = complex(rng.Float64(), rng.Float64())
		orig[i] = data[i]
	}
	BitReversePermute(data)
	BitReversePermute(data)
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("double permute is not identity at %d", i)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 64: 6, 1 << 20: 20, 0: -1, 3: -1, -8: -1, 96: -1}
	for n, want := range cases {
		if got := Log2(n); got != want {
			t.Errorf("Log2(%d) = %d, want %d", n, got, want)
		}
	}
}
