package fft

import "testing"

func TestTransitionRegularShape(t *testing.T) {
	// Regular transition: every child has exactly P parents, every
	// sibling group has P members, and each parent feeds exactly one
	// group (section IV-A2's shared-counter observation).
	pl := mustPlan(t, 1<<18, 64)
	for stage := 0; stage < pl.NumStages-1; stage++ {
		tr := pl.BuildTransition(stage)
		if got := tr.NumGroups(); got != pl.TasksPerStage/64 {
			t.Fatalf("stage %d: %d groups, want %d", stage, got, pl.TasksPerStage/64)
		}
		for g, members := range tr.Groups {
			if len(members) != 64 {
				t.Fatalf("stage %d group %d has %d members, want 64", stage, g, len(members))
			}
			if len(tr.GroupParents[g]) != 64 {
				t.Fatalf("stage %d group %d has %d parents, want 64", stage, g, len(tr.GroupParents[g]))
			}
		}
		for p, groups := range tr.ParentGroups {
			if len(groups) != 1 {
				t.Fatalf("stage %d parent %d feeds %d groups, want 1", stage, p, len(groups))
			}
		}
	}
}

func TestTransitionChildrenMatchPaperFormula(t *testing.T) {
	// The paper's Get_child_id: the k-th child of codelet i in stage j is
	// l = ⌊i/64^{j+1}⌋·64^{j+1} + (i mod 64^{j+1}) mod 64^j + k·64^j.
	pl := mustPlan(t, 1<<18, 64)
	for stage := 0; stage < pl.NumStages-1; stage++ {
		tr := pl.BuildTransition(stage)
		sj := int64(1) << (6 * stage)
		sj1 := sj * 64
		for _, parent := range []int32{0, 1, 80, 4095} {
			got := tr.Children(parent)
			if len(got) != 64 {
				t.Fatalf("stage %d parent %d: %d children, want 64", stage, parent, len(got))
			}
			want := make(map[int32]bool, 64)
			i := int64(parent)
			for k := int64(0); k < 64; k++ {
				want[int32(i/sj1*sj1+(i%sj1)%sj+k*sj)] = true
			}
			for _, c := range got {
				if !want[c] {
					t.Fatalf("stage %d parent %d: unexpected child %d", stage, parent, c)
				}
			}
		}
	}
}

func TestTransitionIrregularLastStage(t *testing.T) {
	// N=2^15, P=64: stage 1→2 is irregular (last stage has 3 levels).
	pl := mustPlan(t, 1<<15, 64)
	tr := pl.BuildTransition(1)

	// Every child belongs to exactly one group and its dep count equals
	// its group's parent count.
	counted := 0
	for g, members := range tr.Groups {
		counted += len(members)
		for _, c := range members {
			if tr.ChildGroup[c] != int32(g) {
				t.Fatalf("child %d group mismatch", c)
			}
			if tr.DepCount(c) != len(tr.GroupParents[g]) {
				t.Fatalf("child %d dep count mismatch", c)
			}
		}
	}
	if counted != pl.TasksPerStage {
		t.Fatalf("groups cover %d children, want %d", counted, pl.TasksPerStage)
	}

	// Cross-check dependence sets against a brute-force element map.
	idx := make([]int64, 64)
	for c := 0; c < pl.TasksPerStage; c++ {
		pl.TaskIndices(2, c, idx)
		want := make(map[int32]bool)
		for _, g := range idx {
			want[int32(pl.TaskOf(1, g))] = true
		}
		gp := tr.GroupParents[tr.ChildGroup[c]]
		if len(gp) != len(want) {
			t.Fatalf("child %d: %d parents, want %d", c, len(gp), len(want))
		}
		for _, p := range gp {
			if !want[p] {
				t.Fatalf("child %d: spurious parent %d", c, p)
			}
		}
	}
}

func TestTransitionParentChildSymmetry(t *testing.T) {
	for _, cfg := range []struct{ n, p int }{{1 << 12, 64}, {1 << 15, 64}, {1 << 10, 8}, {1 << 9, 16}} {
		pl := mustPlan(t, cfg.n, cfg.p)
		for stage := 0; stage < pl.NumStages-1; stage++ {
			tr := pl.BuildTransition(stage)
			// p ∈ GroupParents[g] ⇔ g ∈ ParentGroups[p]
			for g, parents := range tr.GroupParents {
				for _, p := range parents {
					found := false
					for _, pg := range tr.ParentGroups[p] {
						if pg == int32(g) {
							found = true
						}
					}
					if !found {
						t.Fatalf("N=%d P=%d stage %d: asymmetric edge parent %d group %d",
							cfg.n, cfg.p, stage, p, g)
					}
				}
			}
		}
	}
}

func TestTransitionLastStagePanics(t *testing.T) {
	pl := mustPlan(t, 1<<12, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("BuildTransition on last stage did not panic")
		}
	}()
	pl.BuildTransition(pl.NumStages - 1)
}

func TestTransitionDependencesRespectDataflow(t *testing.T) {
	// Fundamental safety property: every element a child reads was
	// written by some task in its parent set (via its sibling group).
	pl := mustPlan(t, 1<<13, 8) // irregular: 13 mod 3 = 1 level last stage
	idx := make([]int64, pl.P)
	for stage := 0; stage < pl.NumStages-1; stage++ {
		tr := pl.BuildTransition(stage)
		for c := 0; c < pl.TasksPerStage; c++ {
			gp := tr.GroupParents[tr.ChildGroup[c]]
			set := make(map[int32]bool, len(gp))
			for _, p := range gp {
				set[p] = true
			}
			pl.TaskIndices(stage+1, c, idx)
			for _, g := range idx {
				if !set[int32(pl.TaskOf(stage, g))] {
					t.Fatalf("stage %d child %d reads element %d outside its parent set", stage, c, g)
				}
			}
		}
	}
}
