// Tests of the overlap-save convolution geometry: segment sizing
// invariants, gather/scatter tiling (every output written exactly once,
// edge tiles zero-padded correctly), and the end-to-end property that
// segmented frequency-domain convolution reproduces the O(N·K) direct
// reference — pinned across hand-picked shapes and a fuzz target.
package fft

import (
	"math"
	"math/rand"
	"testing"
)

// ossConvolve runs the full overlap-save pipeline on the pure geometry
// with MixedPlan segment transforms — the reference implementation the
// facade's batched ConvPlan must agree with.
func ossConvolve(t testing.TB, x, h []complex128) []complex128 {
	t.Helper()
	spec, err := NewConvSpec(len(x), len(h))
	if err != nil {
		t.Fatal(err)
	}
	mp, err := NewMixedPlan(spec.M)
	if err != nil {
		t.Fatalf("segment length %d not 7-smooth: %v", spec.M, err)
	}
	hhat := make([]complex128, spec.M)
	spec.PadKernel(hhat, h)
	mp.Transform(hhat)

	dst := make([]complex128, spec.OutLen())
	seg := make([]complex128, spec.M)
	for s := 0; s < spec.Segs; s++ {
		spec.Gather(s, seg, x)
		mp.Transform(seg)
		for i := range seg {
			seg[i] *= hhat[i]
		}
		mp.InverseTransform(seg)
		spec.Scatter(s, dst, seg)
	}
	return dst
}

func randSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := math.Hypot(real(a[i]-b[i]), imag(a[i]-b[i])); d > m {
			m = d
		}
	}
	return m
}

// TestNextSmooth pins the 7-smooth rounding: results are 7-smooth,
// ≥ n, and minimal.
func TestNextSmooth(t *testing.T) {
	isSmooth := func(n int) bool {
		for _, p := range []int{2, 3, 5, 7} {
			for n%p == 0 {
				n /= p
			}
		}
		return n == 1
	}
	for _, n := range []int{1, 2, 7, 11, 100, 211, 256, 257, 1001, 65537} {
		m := NextSmooth(n)
		if m < n || !isSmooth(m) {
			t.Fatalf("NextSmooth(%d) = %d: not a 7-smooth bound", n, m)
		}
		for c := n; c < m; c++ {
			if isSmooth(c) {
				t.Fatalf("NextSmooth(%d) = %d, but %d is 7-smooth", n, m, c)
			}
		}
	}
}

// TestConvSpecGeometry pins the segmentation invariants across shapes:
// 7-smooth M, S ≥ 1, segments exactly tiling the output, and the
// collapse to one full-length segment when that is no larger.
func TestConvSpecGeometry(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {16, 1}, {100, 3}, {1 << 12, 31}, {1 << 12, 1 << 10},
		{997, 101}, {5000, 5000}, {64, 1000},
	} {
		spec, err := NewConvSpec(tc.n, tc.k)
		if err != nil {
			t.Fatalf("NewConvSpec(%d, %d): %v", tc.n, tc.k, err)
		}
		if spec.S != spec.M-spec.K+1 || spec.S < 1 {
			t.Fatalf("%+v: bad fresh count", spec)
		}
		if NextSmooth(spec.M) != spec.M {
			t.Fatalf("%+v: M not 7-smooth", spec)
		}
		out := spec.OutLen()
		if spec.Segs != (out+spec.S-1)/spec.S {
			t.Fatalf("%+v: segments do not tile %d outputs", spec, out)
		}
		if full := NextSmooth(out); spec.M > full {
			t.Fatalf("%+v: segment longer than the single-transform fallback %d", spec, full)
		}
	}
	for _, tc := range []struct{ n, k int }{{0, 4}, {4, 0}, {-1, 1}} {
		if _, err := NewConvSpec(tc.n, tc.k); err == nil {
			t.Fatalf("NewConvSpec(%d, %d) accepted a degenerate shape", tc.n, tc.k)
		}
	}
}

// TestGatherScatterTiling checks the index math sample by sample: each
// gathered segment matches the definition (zero outside [0,N)), and the
// scatter positions cover every output index exactly once — including
// the leading edge tile (left zero-padding) and the ragged final tile.
func TestGatherScatterTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, k int }{{300, 40}, {1000, 256}, {257, 3}} {
		spec, err := NewConvSpec(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		x := randSignal(rng, tc.n)
		seg := make([]complex128, spec.M)
		covered := make([]int, spec.OutLen())
		dst := make([]complex128, spec.OutLen())
		for s := 0; s < spec.Segs; s++ {
			spec.Gather(s, seg, x)
			start := s*spec.S - (spec.K - 1)
			for j := 0; j < spec.M; j++ {
				want := complex(0, 0)
				if idx := start + j; idx >= 0 && idx < tc.n {
					want = x[idx]
				}
				if seg[j] != want {
					t.Fatalf("n=%d k=%d seg %d pos %d: gathered %v, want %v", tc.n, tc.k, s, j, seg[j], want)
				}
			}
			// Mark which outputs this segment's scatter writes.
			lo := s * spec.S
			cnt := min(spec.S, spec.OutLen()-lo)
			for j := 0; j < cnt; j++ {
				covered[lo+j]++
			}
			spec.Scatter(s, dst, seg)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d k=%d: output %d written %d times, want exactly once", tc.n, tc.k, i, c)
			}
		}
	}
}

// TestOverlapSaveMatchesDirect is the core correctness property across
// power-of-two, composite, and prime signal lengths, plus the two edge
// regimes the segmentation must survive: a kernel longer than the
// default segment (K ≫ minSegment/4) and a kernel longer than the
// signal itself.
func TestOverlapSaveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, k int }{
		{256, 17}, // pow2 signal
		{360, 31}, // composite (mixed-radix native)
		{257, 16}, // prime signal length
		{1 << 12, 501},
		{500, 400},  // kernel longer than S would allow at minSegment
		{100, 300},  // kernel longer than the signal
		{1000, 997}, // prime kernel length comparable to the signal
	} {
		x := randSignal(rng, tc.n)
		h := randSignal(rng, tc.k)
		got := ossConvolve(t, x, h)
		want := make([]complex128, tc.n+tc.k-1)
		DirectConvolve(want, x, h)
		scale := 0.0
		for _, v := range want {
			scale = math.Max(scale, math.Hypot(real(v), imag(v)))
		}
		if scale == 0 {
			scale = 1
		}
		if d := maxDiff(got, want); d/scale > 1e-9 {
			t.Fatalf("n=%d k=%d: overlap-save diverged from direct by %g (rel %g)", tc.n, tc.k, d, d/scale)
		}
	}
}

// TestPadKernelReversed pins the cross-correlation layout: position t
// holds conj(h[K-1-t]).
func TestPadKernelReversed(t *testing.T) {
	spec, err := NewConvSpec(600, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := []complex128{1 + 2i, 3 - 1i, 0.5i, -2, 4 + 4i}
	dst := make([]complex128, spec.M)
	spec.PadKernelReversed(dst, h)
	for tt := 0; tt < spec.K; tt++ {
		v := h[spec.K-1-tt]
		if dst[tt] != complex(real(v), -imag(v)) {
			t.Fatalf("position %d = %v, want conj(h[%d]) = %v", tt, dst[tt], spec.K-1-tt, complex(real(v), -imag(v)))
		}
	}
	for i := spec.K; i < spec.M; i++ {
		if dst[i] != 0 {
			t.Fatalf("tail position %d = %v, want 0", i, dst[i])
		}
	}
}

// FuzzConvolveMatchesDirect drives the overlap-save pipeline against
// the O(N·K) reference over fuzzer-chosen shapes and signal content.
func FuzzConvolveMatchesDirect(f *testing.F) {
	f.Add(uint16(64), uint16(7), int64(1))
	f.Add(uint16(257), uint16(31), int64(2))
	f.Add(uint16(1), uint16(1), int64(3))
	f.Add(uint16(100), uint16(300), int64(4))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint16, seed int64) {
		n := int(nRaw)%1024 + 1
		k := int(kRaw)%1024 + 1
		rng := rand.New(rand.NewSource(seed))
		x := randSignal(rng, n)
		h := randSignal(rng, k)
		got := ossConvolve(t, x, h)
		want := make([]complex128, n+k-1)
		DirectConvolve(want, x, h)
		scale := 0.0
		for _, v := range want {
			scale = math.Max(scale, math.Hypot(real(v), imag(v)))
		}
		if scale == 0 {
			scale = 1
		}
		if d := maxDiff(got, want); d/scale > 1e-8 {
			t.Fatalf("n=%d k=%d seed=%d: overlap-save diverged by %g (rel %g)", n, k, seed, d, d/scale)
		}
	})
}
