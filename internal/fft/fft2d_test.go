package fft

import (
	"math/cmplx"
	"testing"
)

// dft2d is the brute-force 2-D DFT used as ground truth.
func dft2d(x []complex128, rows, cols int) []complex128 {
	rowsOut := make([]complex128, rows*cols)
	for r := 0; r < rows; r++ {
		copy(rowsOut[r*cols:(r+1)*cols], DFT(x[r*cols:(r+1)*cols]))
	}
	out := make([]complex128, rows*cols)
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = rowsOut[r*cols+c]
		}
		fc := DFT(col)
		for r := 0; r < rows; r++ {
			out[r*cols+c] = fc[r]
		}
	}
	return out
}

func TestPlan2DMatchesBruteForce(t *testing.T) {
	for _, shape := range []struct{ r, c int }{{8, 8}, {16, 32}, {4, 64}, {64, 4}} {
		p, err := NewPlan2D(shape.r, shape.c, 8)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(shape.r*shape.c, int64(shape.r*1000+shape.c))
		got := append([]complex128(nil), x...)
		p.Transform(got)
		want := dft2d(x, shape.r, shape.c)
		if err := MaxError(got, want); err > 1e-8 {
			t.Fatalf("%dx%d: error %g", shape.r, shape.c, err)
		}
	}
}

func TestPlan2DRoundTrip(t *testing.T) {
	p, err := NewPlan2D(32, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSignal(32*64, 9)
	data := append([]complex128(nil), x...)
	p.Transform(data)
	p.InverseTransform(data)
	if err := MaxError(data, x); err > 1e-9 {
		t.Fatalf("roundtrip error %g", err)
	}
}

func TestPlan2DImpulse(t *testing.T) {
	// A 2-D impulse at the origin transforms to an all-ones plane.
	p, err := NewPlan2D(16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]complex128, 256)
	data[0] = 1
	p.Transform(data)
	for i, v := range data {
		if cmplx.Abs(v-1) > 1e-10 {
			t.Fatalf("plane[%d] = %v, want 1", i, v)
		}
	}
}

func TestPlan2DValidation(t *testing.T) {
	if _, err := NewPlan2D(10, 16, 4); err == nil {
		t.Fatal("non-power-of-two rows accepted")
	}
	if _, err := NewPlan2D(16, 0, 4); err == nil {
		t.Fatal("zero cols accepted")
	}
	p, _ := NewPlan2D(8, 8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	p.Transform(make([]complex128, 10))
}
