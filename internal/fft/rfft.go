package fft

import "fmt"

// RealSplit is the O(N) half of the real-input packing trick for any
// even N ≥ 4: adjacent real samples become the real and imaginary parts
// of an N/2-point complex sequence, and the split pass untangles the
// half transform's output into the real signal's half-spectrum (or
// re-tangles it for the inverse). The pass is pure index arithmetic on
// the twiddle table — it does not care how the N/2-point transform is
// computed, so the same split serves the staged power-of-two RealPlan
// and the facade's mixed-radix/Bluestein even-N real path.
//
// The spectrum of a real signal is Hermitian (X[N−k] = conj(X[k])), so
// only the N/2+1 bins X[0..N/2] are produced; X[0] and X[N/2] are
// purely real by construction.
type RealSplit struct {
	// N is the real-input length (even, ≥ 4).
	N int
	// WReal holds the split-pass factors W[k] = exp(−2πik/N) for k in
	// [0, N/2).
	WReal []complex128
}

// NewRealSplit builds the split-pass tables for any even n ≥ 4; errors
// wrap ErrUnsupportedLength otherwise. The half transform itself is the
// caller's to provide (an n/2-point plan of whatever family n/2 routes
// to).
func NewRealSplit(n int) (*RealSplit, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("%w: real transform length N=%d must be even and ≥ 4", ErrUnsupportedLength, n)
	}
	return &RealSplit{N: n, WReal: TwiddlesAny(n)[:n/2]}, nil
}

// RealPlan computes the FFT of a length-N real signal with one N/2-point
// complex FFT: the RealSplit packing plus a staged power-of-two half
// plan. Real input is the dominant serving workload (audio, sensor
// streams, telemetry), and the packing roughly halves both the
// arithmetic and the memory traffic of the complex path.
//
// A RealPlan is immutable after NewRealPlan and safe for any number of
// concurrent users (each call needs its own buffers).
type RealPlan struct {
	RealSplit
	// Half is the N/2-point complex plan the packed sequence runs through.
	Half *Plan
	// WHalf is Twiddles(N/2), the half transform's table.
	WHalf []complex128
}

// NewRealPlan builds a real-input plan for n-point transforms whose half
// transform uses taskSize-point kernels (clamped to n/2). n must be a
// power of two ≥ 4 so the half transform is a valid staged plan; errors
// wrap ErrUnsupportedLength or ErrBadTaskSize. Even non-power-of-two
// lengths combine NewRealSplit with a mixed-radix or Bluestein half plan
// instead (the facade's RealPlan does exactly that).
func NewRealPlan(n, taskSize int) (*RealPlan, error) {
	if Log2(n) < 0 || n < 4 {
		return nil, fmt.Errorf("%w: staged real plan length N=%d must be a power of two ≥ 4", ErrUnsupportedLength, n)
	}
	h := n / 2
	half, err := NewPlan(h, min(taskSize, h))
	if err != nil {
		return nil, err
	}
	return &RealPlan{
		RealSplit: RealSplit{N: n, WReal: Twiddles(n)},
		Half:      half,
		WHalf:     Twiddles(h),
	}, nil
}

// SpectrumLen returns N/2 + 1, the length of the half-spectrum buffer
// Transform fills and Inverse consumes.
func (rp *RealSplit) SpectrumLen() int { return rp.N/2 + 1 }

// Pack interleaves the real signal src (length N) into dst[:N/2] as
// dst[j] = src[2j] + i·src[2j+1], leaving dst[N/2] untouched. dst must
// have SpectrumLen elements.
func (rp *RealSplit) Pack(dst []complex128, src []float64) {
	rp.checkSpectrum(dst)
	if len(src) != rp.N {
		panic(LengthError("real input", len(src), rp.N))
	}
	for j := 0; j < rp.N/2; j++ {
		dst[j] = complex(src[2*j], src[2*j+1])
	}
}

// Unpack turns the half transform's output Z = dst[:N/2] into the real
// signal's half-spectrum X[0..N/2] in place. With E and O the spectra of
// the even and odd samples, Hermitian symmetry gives
//
//	E[k] = (Z[k] + conj(Z[h−k]))/2
//	O[k] = −i·(Z[k] − conj(Z[h−k]))/2
//	X[k] = E[k] + W[k]·O[k],  W[k] = exp(−2πik/N), h = N/2,
//
// and the pair (k, h−k) is resolved simultaneously so the pass runs in
// place (for odd h the middle pair k = h−k resolves to itself).
func (rp *RealSplit) Unpack(dst []complex128) {
	rp.checkSpectrum(dst)
	h := rp.N / 2
	z0 := dst[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k <= h/2; k++ {
		zk, zm := dst[k], dst[h-k]
		e := (zk + conj(zm)) * 0.5
		o := (zk - conj(zm)) * complex(0, -0.5)
		dst[k] = e + rp.WReal[k]*o
		dst[h-k] = conj(e) + rp.WReal[h-k]*conj(o)
	}
}

// Transform computes the half-spectrum of the length-N real signal src
// into dst (length SpectrumLen): pack, N/2-point FFT, split. src is not
// modified. Buffers of the wrong length panic with an error wrapping
// ErrLengthMismatch.
func (rp *RealPlan) Transform(dst []complex128, src []float64) {
	rp.TransformWith(dst, src, NewScratch(rp.Half))
}

// TransformWith is Transform with a caller-provided Scratch (sized for
// Half), for batch loops and worker pools that must not allocate.
func (rp *RealPlan) TransformWith(dst []complex128, src []float64, sc *Scratch) {
	rp.Pack(dst, src)
	rp.Half.TransformWith(dst[:rp.N/2], rp.WHalf, sc)
	rp.Unpack(dst)
}

// PreInverse rebuilds the packed half transform Z (into work, length
// N/2) from the half-spectrum src (length SpectrumLen) — the exact
// inverse of Unpack, using X[k+h] = conj(X[h−k]):
//
//	E[k] = (X[k] + conj(X[h−k]))/2
//	O[k] = (X[k] − conj(X[h−k]))/2 · conj(W[k])
//	Z[k] = E[k] + i·O[k].
func (rp *RealSplit) PreInverse(work, src []complex128) {
	h := rp.N / 2
	if len(work) != h {
		panic(LengthError("work buffer", len(work), h))
	}
	rp.checkSpectrum(src)
	for k := 0; k < h; k++ {
		a, b := src[k], conj(src[h-k])
		e := (a + b) * 0.5
		o := (a - b) * 0.5 * conj(rp.WReal[k])
		work[k] = e + o*complex(0, 1)
	}
}

// PostInverse de-interleaves the inverse half transform work (length
// N/2) into the real signal dst (length N).
func (rp *RealSplit) PostInverse(dst []float64, work []complex128) {
	if len(dst) != rp.N {
		panic(LengthError("real output", len(dst), rp.N))
	}
	if len(work) != rp.N/2 {
		panic(LengthError("work buffer", len(work), rp.N/2))
	}
	for j, v := range work {
		dst[2*j] = real(v)
		dst[2*j+1] = imag(v)
	}
}

// Inverse recovers the length-N real signal from its half-spectrum src
// (length SpectrumLen) into dst. src is not modified. Inverse allocates
// an N/2 work buffer and scratch; use InverseWith on hot paths.
func (rp *RealPlan) Inverse(dst []float64, src []complex128) {
	rp.InverseWith(dst, src, make([]complex128, rp.N/2), NewScratch(rp.Half))
}

// InverseWith is Inverse with a caller-provided work buffer (length
// N/2) and Scratch, allocating nothing.
func (rp *RealPlan) InverseWith(dst []float64, src, work []complex128, sc *Scratch) {
	rp.PreInverse(work, src)
	rp.Half.InverseTransformWith(work, rp.WHalf, sc)
	rp.PostInverse(dst, work)
}

func (rp *RealSplit) checkSpectrum(s []complex128) {
	if len(s) != rp.N/2+1 {
		panic(LengthError("half-spectrum", len(s), rp.N/2+1))
	}
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
