package fft

import (
	"math"
	"testing"
)

// Internal tests for the SoA codelets: the asm primitives must agree
// with their generic twins on every (dist, cnt, nblk) shape the sweep
// and stage-0 drivers can produce. Asm uses fused multiply-adds where
// the generic loops round intermediates, so agreement is to a few ulps,
// not bitwise — the documented asm↔generic contract.

func soaFillRand(n int, seed uint64) []float64 {
	x := make([]float64, n)
	s := seed*2862933555777941757 + 3037000493
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		x[i] = float64(int32(s>>32)) / float64(1<<31)
	}
	return x
}

func soaMaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSoABfly2AsmMatchesGeneric(t *testing.T) {
	if !soaHasAsm {
		t.Skipf("no asm codelets in this build (accel=%s)", soaAccel)
	}
	shapes := []struct{ dist, cnt, nblk int }{
		{4, 4, 1}, {4, 4, 7}, {8, 8, 3}, {16, 16, 2},
		{16, 4, 1}, {16, 8, 1}, {64, 64, 2}, {64, 12, 1},
	}
	for _, sh := range shapes {
		span := (sh.nblk-1)*2*sh.dist + sh.dist + sh.cnt
		re := soaFillRand(span, 1)
		im := soaFillRand(span, 2)
		wr := soaFillRand(sh.dist, 3)
		wi := soaFillRand(sh.dist, 4)
		gre := append([]float64(nil), re...)
		gim := append([]float64(nil), im...)
		bfly2Asm(&re[0], &im[0], &wr[0], &wi[0], sh.dist, sh.cnt, sh.nblk)
		bfly2Gen(gre, gim, wr, wi, sh.dist, sh.cnt, sh.nblk)
		if d := math.Max(soaMaxAbsDiff(re, gre), soaMaxAbsDiff(im, gim)); d > 1e-12 {
			t.Errorf("bfly2 %+v: asm/generic diff %g", sh, d)
		}
	}
}

func TestSoABfly4AsmMatchesGeneric(t *testing.T) {
	if !soaHasAsm {
		t.Skipf("no asm codelets in this build (accel=%s)", soaAccel)
	}
	shapes := []struct{ dist, cnt, nblk int }{
		{4, 4, 1}, {4, 4, 5}, {8, 8, 3}, {16, 16, 2},
		{16, 4, 1}, {32, 8, 1}, {64, 64, 1},
	}
	for _, sh := range shapes {
		span := (sh.nblk-1)*4*sh.dist + 3*sh.dist + sh.cnt
		re := soaFillRand(span, 5)
		im := soaFillRand(span, 6)
		war := soaFillRand(sh.dist, 7)
		wai := soaFillRand(sh.dist, 8)
		wbr := soaFillRand(sh.dist, 9)
		wbi := soaFillRand(sh.dist, 10)
		gre := append([]float64(nil), re...)
		gim := append([]float64(nil), im...)
		bfly4Asm(&re[0], &im[0], &war[0], &wai[0], &wbr[0], &wbi[0], sh.dist, sh.cnt, sh.nblk)
		bfly4Gen(gre, gim, war, wai, wbr, wbi, sh.dist, sh.cnt, sh.nblk)
		if d := math.Max(soaMaxAbsDiff(re, gre), soaMaxAbsDiff(im, gim)); d > 1e-12 {
			t.Errorf("bfly4 %+v: asm/generic diff %g", sh, d)
		}
	}
}

func TestSoABase4AsmMatchesGeneric(t *testing.T) {
	if !soaHasBase4 {
		t.Skipf("no base4 codelet in this build (accel=%s)", soaAccel)
	}
	for _, n := range []int{16, 32, 128} {
		re := soaFillRand(n, 11)
		im := soaFillRand(n, 12)
		gre := append([]float64(nil), re...)
		gim := append([]float64(nil), im...)
		tw := [4]float64{0.6, -0.8, 0.28, 0.96}
		base4Asm(&re[0], &im[0], n, &tw[0])
		base4Gen(gre, gim, tw[0], tw[1], tw[2], tw[3])
		if d := math.Max(soaMaxAbsDiff(re, gre), soaMaxAbsDiff(im, gim)); d > 1e-12 {
			t.Errorf("base4 n=%d: asm/generic diff %g", n, d)
		}
	}
}

// TestSoAPassPartitionInvariance pins the determinism contract the host
// engine relies on: running a pass's units in one span or split at any
// unit boundary must produce bitwise-identical planes, because the
// asm-or-generic choice depends only on the pass shape.
func TestSoAPassPartitionInvariance(t *testing.T) {
	// N is chosen so late levels have half > soaQuantum, exercising the
	// partial j-range (cnt < dist) path as well as full-block batching.
	for _, kern := range []Kernel{KernelSoARadix2, KernelSoARadix4} {
		pl, err := NewPlan(1<<15, 64)
		if err != nil {
			t.Fatal(err)
		}
		w := Twiddles(pl.N)
		st := pl.SoATwiddles(w)
		data := make([]complex128, pl.N)
		rnd := soaFillRand(2*pl.N, 13)
		for i := range data {
			data[i] = complex(rnd[2*i], rnd[2*i+1])
		}
		whole := GetSoAFrame(pl.N)
		split := GetSoAFrame(pl.N)
		whole.PackBitrev(data, 0, pl.N, pl.LogN)
		split.PackBitrev(data, 0, pl.N, pl.LogN)
		for stage := 0; stage < pl.NumStages; stage++ {
			for pass, np := 0, pl.SoAPasses(stage, kern); pass < np; pass++ {
				units := pl.SoAPassUnits(stage, pass, kern)
				pl.SoARunPass(stage, pass, 0, units, whole, st, kern)
				for u := 0; u < units; u++ {
					pl.SoARunPass(stage, pass, u, u+1, split, st, kern)
				}
			}
		}
		for i := 0; i < pl.N; i++ {
			if math.Float64bits(whole.Re[i]) != math.Float64bits(split.Re[i]) ||
				math.Float64bits(whole.Im[i]) != math.Float64bits(split.Im[i]) {
				t.Fatalf("%v: plane element %d differs between whole-pass and per-unit execution", kern, i)
			}
		}
		whole.Release()
		split.Release()
	}
}
