// Mixed-radix planning: a self-sorting Stockham decimation-in-frequency
// decomposition over radix-{2, 3, 4, 5, 7} butterfly codelets, covering
// every N whose prime factors lie in {2, 3, 5, 7}. Lengths with larger
// prime factors fall back to the Bluestein chirp-z plan (bluestein.go).
//
// Each stage halves nothing in particular — it splits the current
// sub-transform length n into r sub-transforms of length m = n/r, with
// s interleaved copies (s = the product of the radices of the earlier
// stages). One butterfly unit (p, q), p ∈ [0, m), q ∈ [0, s), gathers
//
//	u[c] = src[q + s·(p + m·c)]   c ∈ [0, r)
//
// applies the r-point DFT codelet, multiplies output d by the twiddle
// ω_n^{p·d}, and scatters
//
//	dst[q + s·(r·p + d)] = DFT_r(u)[d] · ω_n^{p·d}
//
// Ping-ponging src/dst across stages leaves the spectrum in natural
// order with no digit-reversal pass — the Stockham autosort property,
// generalized from the radix-2 case. Units within a stage touch
// pairwise-disjoint elements and are arithmetically self-contained, so
// a stage shards across workers with bitwise-identical output to the
// serial pass (internal/host leans on this exactly as it does for the
// staged power-of-two plan).
package fft

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Butterfly constants: cos/sin of the radix-3 and radix-5 roots of
// unity, spelled as untyped constants so they contract into complex
// arithmetic without conversions.
const (
	sqrt3half = 0.86602540378443864676 // sin(π/3) = √3/2

	cos2pi5 = 0.30901699437494742410  // cos(2π/5)
	cos4pi5 = -0.80901699437494742410 // cos(4π/5)
	sin2pi5 = 0.95105651629515357212  // sin(2π/5)
	sin4pi5 = 0.58778525229247312917  // sin(4π/5)
)

// w7 holds the radix-7 codelet's roots of unity ω_7^k.
var w7 = func() (w [7]complex128) {
	for k := range w {
		ang := -2 * math.Pi * float64(k) / 7
		w[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return w
}()

// Factor splits n into the radix schedule the mixed-radix planner
// executes — factors drawn from {4, 2, 3, 5, 7}, power-of-two codelets
// first (all the 4s, then at most one 2), then 3s, 5s, 7s — and the
// remaining cofactor. A cofactor of 1 means the schedule covers n
// exactly; anything larger carries a prime factor outside {2, 3, 5, 7}
// and needs the Bluestein fallback. n must be ≥ 1.
func Factor(n int) (radices []int, cofactor int) {
	for n%4 == 0 {
		radices = append(radices, 4)
		n /= 4
	}
	if n%2 == 0 {
		radices = append(radices, 2)
		n /= 2
	}
	for n%3 == 0 {
		radices = append(radices, 3)
		n /= 3
	}
	for n%5 == 0 {
		radices = append(radices, 5)
		n /= 5
	}
	for n%7 == 0 {
		radices = append(radices, 7)
		n /= 7
	}
	return radices, n
}

// RadixSignature packs the radix decomposition of n into a uint64 for
// cache keys: 8 bits each for the multiplicities of 2, 3, 5, and 7,
// plus a high bit marking a residual cofactor (the Bluestein regime).
// Two lengths with equal signatures plan the same algorithm with the
// same stage structure. Non-positive n returns 0.
func RadixSignature(n int) uint64 {
	if n < 1 {
		return 0
	}
	var sig uint64
	shift := uint(0)
	for _, p := range [...]int{2, 3, 5, 7} {
		var c uint64
		for n%p == 0 {
			n /= p
			c++
		}
		sig |= (c & 0xff) << shift
		shift += 8
	}
	if n > 1 {
		sig |= 1 << 63
	}
	return sig
}

// MixedStage is one Stockham pass: split sub-transforms of length R·M
// into R sub-transforms of length M, across S interleaved copies.
type MixedStage struct {
	R  int          // radix of this stage's codelet (2, 3, 4, 5, or 7)
	M  int          // sub-transform length after this stage
	S  int          // interleaved sub-transform count entering this stage
	Tw []complex128 // (R-1)·M twiddles: Tw[p·(R-1)+d-1] = ω_{R·M}^{p·d}
}

// Units returns the number of independent butterfly units in the stage;
// the parallel engine shards [0, Units()) across workers.
func (st *MixedStage) Units() int { return st.M * st.S }

// MixedPlan is a mixed-radix decomposition of an N-point DFT into
// len(Radices) Stockham passes. N = 1 yields a zero-stage plan (the
// identity transform). A MixedPlan is immutable after construction and
// safe for concurrent use on distinct buffers.
type MixedPlan struct {
	N       int
	Radices []int // the stage radices, in execution order
	Stages  []MixedStage
}

// NewMixedPlan factors n over {2, 3, 5, 7} and builds the stage
// schedule with per-stage twiddle tables (≈2N complex entries across
// all stages). It errors, wrapping ErrUnsupportedLength, for n < 1 and
// for n with a prime factor outside {2, 3, 5, 7} — the caller's cue to
// fall back to NewBluesteinPlan.
func NewMixedPlan(n int) (*MixedPlan, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: mixed-radix plan needs n ≥ 1, got %d", ErrUnsupportedLength, n)
	}
	radices, cofactor := Factor(n)
	if cofactor != 1 {
		return nil, fmt.Errorf("%w: %d has prime factor(s) beyond {2,3,5,7} (cofactor %d)",
			ErrUnsupportedLength, n, cofactor)
	}
	mp := &MixedPlan{N: n, Radices: radices, Stages: make([]MixedStage, 0, len(radices))}
	sub, stride := n, 1
	for _, r := range radices {
		m := sub / r
		mp.Stages = append(mp.Stages, MixedStage{R: r, M: m, S: stride, Tw: stageTwiddles(sub, r, m)})
		sub, stride = m, stride*r
	}
	return mp, nil
}

// stageTwiddles builds ω_n^{p·d} for p ∈ [0, m), d ∈ [1, r), n = r·m.
// p·d < n, so the exponent needs no reduction; angles stay in (-2π, 0].
func stageTwiddles(n, r, m int) []complex128 {
	tw := make([]complex128, (r-1)*m)
	for p := 0; p < m; p++ {
		for d := 1; d < r; d++ {
			ang := -2 * math.Pi * float64(p*d) / float64(n)
			tw[p*(r-1)+d-1] = complex(math.Cos(ang), math.Sin(ang))
		}
	}
	return tw
}

// String names the schedule for logs and plan descriptions, e.g.
// "mixed-radix[4 4 3]".
func (mp *MixedPlan) String() string {
	var b strings.Builder
	b.WriteString("mixed-radix[")
	for i, r := range mp.Radices {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(r))
	}
	b.WriteByte(']')
	return b.String()
}

// Transform applies the forward DFT in place, allocating the N-element
// ping-pong buffer. Use TransformWith to supply the buffer.
func (mp *MixedPlan) Transform(data []complex128) {
	mp.TransformWith(data, make([]complex128, mp.N))
}

// TransformWith applies the forward DFT in place using work (length N)
// as the ping-pong buffer; work's prior contents are ignored and it
// holds intermediate values afterwards. Wrong-length buffers panic with
// an error wrapping ErrLengthMismatch.
func (mp *MixedPlan) TransformWith(data, work []complex128) {
	if len(data) != mp.N {
		panic(LengthError("data", len(data), mp.N))
	}
	if len(work) != mp.N {
		panic(LengthError("work", len(work), mp.N))
	}
	src, dst := data, work
	for i := range mp.Stages {
		st := &mp.Stages[i]
		st.Pass(src, dst, 0, st.Units())
		src, dst = dst, src
	}
	if len(mp.Stages)%2 == 1 {
		copy(data, work)
	}
}

// InverseTransform applies the inverse DFT in place via the conjugation
// identity IDFT(X) = conj(DFT(conj(X)))/N, allocating the ping-pong
// buffer.
func (mp *MixedPlan) InverseTransform(data []complex128) {
	mp.InverseTransformWith(data, make([]complex128, mp.N))
}

// InverseTransformWith is InverseTransform with a caller-supplied
// ping-pong buffer.
func (mp *MixedPlan) InverseTransformWith(data, work []complex128) {
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	mp.TransformWith(data, work)
	inv := 1 / float64(mp.N)
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

// Pass executes butterfly units [ulo, uhi) of the stage, reading src
// and writing dst (disjoint slices of length ≥ the plan's N). Unit u
// decomposes as p = u/S, q = u mod S; the iteration groups units by p
// so each twiddle vector is loaded once. Any [ulo, uhi) partition of
// [0, Units()) produces output bitwise identical to the full-range
// serial pass — the determinism contract the parallel engine shards on.
func (st *MixedStage) Pass(src, dst []complex128, ulo, uhi int) {
	s := st.S
	for u := ulo; u < uhi; {
		p := u / s
		q0 := u - p*s
		q1 := s
		if left := uhi - u; left < q1-q0 {
			q1 = q0 + left
		}
		switch st.R {
		case 2:
			st.pass2(src, dst, p, q0, q1)
		case 3:
			st.pass3(src, dst, p, q0, q1)
		case 4:
			st.pass4(src, dst, p, q0, q1)
		case 5:
			st.pass5(src, dst, p, q0, q1)
		default:
			st.pass7(src, dst, p, q0, q1)
		}
		u += q1 - q0
	}
}

func (st *MixedStage) pass2(src, dst []complex128, p, q0, q1 int) {
	s, sm := st.S, st.S*st.M
	w1 := st.Tw[p]
	in, out := s*p, 2*s*p
	for q := q0; q < q1; q++ {
		u0 := src[in+q]
		u1 := src[in+q+sm]
		dst[out+q] = u0 + u1
		dst[out+q+s] = (u0 - u1) * w1
	}
}

func (st *MixedStage) pass3(src, dst []complex128, p, q0, q1 int) {
	s, sm := st.S, st.S*st.M
	tw := st.Tw[2*p:]
	w1, w2 := tw[0], tw[1]
	in, out := s*p, 3*s*p
	for q := q0; q < q1; q++ {
		u0 := src[in+q]
		u1 := src[in+q+sm]
		u2 := src[in+q+2*sm]
		t1 := u1 + u2
		t2 := u1 - u2
		m1 := u0 - 0.5*t1
		m2 := complex(sqrt3half*imag(t2), -sqrt3half*real(t2)) // -i·(√3/2)·t2
		dst[out+q] = u0 + t1
		dst[out+q+s] = (m1 + m2) * w1
		dst[out+q+2*s] = (m1 - m2) * w2
	}
}

func (st *MixedStage) pass4(src, dst []complex128, p, q0, q1 int) {
	s, sm := st.S, st.S*st.M
	tw := st.Tw[3*p:]
	w1, w2, w3 := tw[0], tw[1], tw[2]
	in, out := s*p, 4*s*p
	for q := q0; q < q1; q++ {
		u0 := src[in+q]
		u1 := src[in+q+sm]
		u2 := src[in+q+2*sm]
		u3 := src[in+q+3*sm]
		t0 := u0 + u2
		t1 := u0 - u2
		t2 := u1 + u3
		t3 := u1 - u3
		it3 := complex(imag(t3), -real(t3)) // -i·t3
		dst[out+q] = t0 + t2
		dst[out+q+s] = (t1 + it3) * w1
		dst[out+q+2*s] = (t0 - t2) * w2
		dst[out+q+3*s] = (t1 - it3) * w3
	}
}

func (st *MixedStage) pass5(src, dst []complex128, p, q0, q1 int) {
	s, sm := st.S, st.S*st.M
	tw := st.Tw[4*p:]
	w1, w2, w3, w4 := tw[0], tw[1], tw[2], tw[3]
	in, out := s*p, 5*s*p
	for q := q0; q < q1; q++ {
		u0 := src[in+q]
		u1 := src[in+q+sm]
		u2 := src[in+q+2*sm]
		u3 := src[in+q+3*sm]
		u4 := src[in+q+4*sm]
		t1 := u1 + u4
		t2 := u2 + u3
		t3 := u1 - u4
		t4 := u2 - u3
		m1 := u0 + cos2pi5*t1 + cos4pi5*t2
		m2 := u0 + cos4pi5*t1 + cos2pi5*t2
		a := sin2pi5*t3 + sin4pi5*t4
		b := sin4pi5*t3 - sin2pi5*t4
		m3 := complex(imag(a), -real(a)) // -i·a
		m4 := complex(imag(b), -real(b)) // -i·b
		dst[out+q] = u0 + t1 + t2
		dst[out+q+s] = (m1 + m3) * w1
		dst[out+q+2*s] = (m2 + m4) * w2
		dst[out+q+3*s] = (m2 - m4) * w3
		dst[out+q+4*s] = (m1 - m3) * w4
	}
}

func (st *MixedStage) pass7(src, dst []complex128, p, q0, q1 int) {
	s, sm := st.S, st.S*st.M
	tw := st.Tw[6*p:]
	in, out := s*p, 7*s*p
	for q := q0; q < q1; q++ {
		var u [7]complex128
		for c := range u {
			u[c] = src[in+q+c*sm]
		}
		dst[out+q] = u[0] + u[1] + u[2] + u[3] + u[4] + u[5] + u[6]
		for d := 1; d < 7; d++ {
			v := u[0]
			e := 0
			for c := 1; c < 7; c++ {
				e += d
				if e >= 7 {
					e -= 7
				}
				v += u[c] * w7[e]
			}
			dst[out+q+d*s] = v * tw[d-1]
		}
	}
}
