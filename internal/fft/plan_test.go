package fft

import (
	"math/rand"
	"testing"
)

func mustPlan(t *testing.T, n, p int) *Plan {
	t.Helper()
	pl, err := NewPlan(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestNewPlanValidation(t *testing.T) {
	cases := []struct {
		n, p int
		ok   bool
	}{
		{1 << 15, 64, true},
		{1 << 12, 64, true},
		{64, 64, true},
		{2, 2, true},
		{100, 4, false},  // N not a power of two
		{64, 3, false},   // P not a power of two
		{64, 1, false},   // P too small
		{64, 128, false}, // P > N
		{0, 2, false},
	}
	for _, c := range cases {
		_, err := NewPlan(c.n, c.p)
		if (err == nil) != c.ok {
			t.Errorf("NewPlan(%d,%d) err=%v, want ok=%v", c.n, c.p, err, c.ok)
		}
	}
}

func TestPlanStageShape(t *testing.T) {
	// N=2^15, P=64: 3 stages; last stage has 15 mod 6 = 3 levels.
	pl := mustPlan(t, 1<<15, 64)
	if pl.NumStages != 3 {
		t.Fatalf("NumStages = %d, want 3", pl.NumStages)
	}
	if pl.TasksPerStage != 512 {
		t.Fatalf("TasksPerStage = %d, want 512", pl.TasksPerStage)
	}
	if pl.Levels(0) != 6 || pl.Levels(1) != 6 || pl.Levels(2) != 3 {
		t.Fatalf("levels = %d,%d,%d, want 6,6,3", pl.Levels(0), pl.Levels(1), pl.Levels(2))
	}
	if pl.GroupsPerTask(2) != 8 || pl.GroupSize(2) != 8 {
		t.Fatalf("last stage groups: %d×%d, want 8×8", pl.GroupsPerTask(2), pl.GroupSize(2))
	}
	// N=2^18, P=64: exactly 3 full stages.
	pl = mustPlan(t, 1<<18, 64)
	if pl.NumStages != 3 || pl.Levels(2) != 6 {
		t.Fatalf("2^18 plan: stages=%d lastLevels=%d, want 3,6", pl.NumStages, pl.Levels(2))
	}
}

func TestTwiddlesPerTask(t *testing.T) {
	pl := mustPlan(t, 1<<15, 64)
	if got := pl.TwiddlesPerTask(0); got != 63 {
		t.Fatalf("regular stage twiddles = %d, want 63 (the paper's count)", got)
	}
	// Irregular last stage: 8 groups × 7 = 56.
	if got := pl.TwiddlesPerTask(2); got != 56 {
		t.Fatalf("last stage twiddles = %d, want 56", got)
	}
}

func TestTaskIndicesMatchPaperFormula(t *testing.T) {
	// Regular stages must reproduce the paper's gather formula
	// D[64^{j+1}·⌊i/64^j⌋ + (i mod 64^j) + k·64^j].
	pl := mustPlan(t, 1<<18, 64)
	idx := make([]int64, 64)
	for _, stage := range []int{0, 1, 2} {
		sj := int64(1) << (6 * stage)
		for _, task := range []int{0, 1, 17, 100, pl.TasksPerStage - 1} {
			pl.TaskIndices(stage, task, idx)
			for k := int64(0); k < 64; k++ {
				want := sj*64*(int64(task)/sj) + int64(task)%sj + k*sj
				if idx[k] != want {
					t.Fatalf("stage %d task %d k=%d: got %d, want %d", stage, task, k, idx[k], want)
				}
			}
		}
	}
}

func TestTaskIndicesPartitionEveryStage(t *testing.T) {
	for _, cfg := range []struct{ n, p int }{
		{1 << 12, 64}, {1 << 15, 64}, {1 << 13, 8}, {1 << 10, 4}, {256, 16}, {1 << 14, 128},
	} {
		pl := mustPlan(t, cfg.n, cfg.p)
		idx := make([]int64, pl.P)
		for stage := 0; stage < pl.NumStages; stage++ {
			seen := make([]bool, pl.N)
			for task := 0; task < pl.TasksPerStage; task++ {
				pl.TaskIndices(stage, task, idx)
				for _, g := range idx {
					if g < 0 || g >= int64(pl.N) {
						t.Fatalf("N=%d P=%d stage %d: index %d out of range", cfg.n, cfg.p, stage, g)
					}
					if seen[g] {
						t.Fatalf("N=%d P=%d stage %d: index %d covered twice", cfg.n, cfg.p, stage, g)
					}
					seen[g] = true
				}
			}
			for g, ok := range seen {
				if !ok {
					t.Fatalf("N=%d P=%d stage %d: index %d never covered", cfg.n, cfg.p, stage, g)
				}
			}
		}
	}
}

func TestTaskOfInverse(t *testing.T) {
	for _, cfg := range []struct{ n, p int }{
		{1 << 12, 64}, {1 << 15, 64}, {1 << 13, 8}, {512, 16},
	} {
		pl := mustPlan(t, cfg.n, cfg.p)
		idx := make([]int64, pl.P)
		rng := rand.New(rand.NewSource(9))
		for stage := 0; stage < pl.NumStages; stage++ {
			for trial := 0; trial < 50; trial++ {
				task := rng.Intn(pl.TasksPerStage)
				pl.TaskIndices(stage, task, idx)
				for _, g := range idx {
					if got := pl.TaskOf(stage, g); got != task {
						t.Fatalf("N=%d P=%d stage %d: TaskOf(%d) = %d, want %d",
							cfg.n, cfg.p, stage, g, got, task)
					}
				}
			}
		}
	}
}

func TestTaskTwiddleIndicesBounds(t *testing.T) {
	for _, cfg := range []struct{ n, p int }{
		{1 << 15, 64}, {1 << 12, 64}, {1 << 13, 8}, {1 << 10, 32},
	} {
		pl := mustPlan(t, cfg.n, cfg.p)
		tw := make([]int64, pl.P)
		for stage := 0; stage < pl.NumStages; stage++ {
			for task := 0; task < pl.TasksPerStage; task += 7 {
				n := pl.TaskTwiddleIndices(stage, task, tw)
				if n != pl.TwiddlesPerTask(stage) {
					t.Fatalf("count %d, want %d", n, pl.TwiddlesPerTask(stage))
				}
				for i := 0; i < n; i++ {
					if tw[i] < 0 || tw[i] >= int64(pl.N/2) {
						t.Fatalf("twiddle index %d out of table [0,%d)", tw[i], pl.N/2)
					}
				}
			}
		}
	}
}

func TestEarlyStageTwiddleStridesAreCoarse(t *testing.T) {
	// The motivating fact: every twiddle index of stages before the last
	// is a multiple of 16 elements (256 B = one full interleave round),
	// pinning those loads to one DRAM bank.
	// Strides fall below 16 elements only at global levels > log2(N)-5,
	// so every stage whose top level is ≤ log2(N)-5 is fully coarse.
	pl := mustPlan(t, 1<<20, 64)
	tw := make([]int64, 64)
	coarseStages := 0
	for s := 0; s < pl.NumStages; s++ {
		if pl.LogP*s+pl.Levels(s)-1 <= pl.LogN-5 {
			coarseStages = s + 1
		}
	}
	if coarseStages < 2 {
		t.Fatalf("expected at least 2 fully coarse stages, got %d", coarseStages)
	}
	for stage := 0; stage < coarseStages; stage++ {
		for _, task := range []int{0, 5, 511, 1000} {
			n := pl.TaskTwiddleIndices(stage, task, tw)
			for i := 0; i < n; i++ {
				if tw[i]%16 != 0 {
					t.Fatalf("stage %d twiddle index %d not a multiple of 16", stage, tw[i])
				}
			}
		}
	}
	// And the last stage does reach fine strides.
	last := pl.NumStages - 1
	n := pl.TaskTwiddleIndices(last, 3, tw)
	fine := false
	for i := 0; i < n; i++ {
		if tw[i]%16 != 0 {
			fine = true
		}
	}
	if !fine {
		t.Fatal("last stage should contain fine-stride twiddle indices")
	}
}

func TestPaperChildExample(t *testing.T) {
	// Paper, section IV-A2: with 64-point codelets, the 80th codelet in
	// stage 3 has the 64 parents {80 + 4096·m} in stage 2, and codelet
	// 4176 in stage 3 shares exactly those parents.
	pl := mustPlan(t, 1<<24, 64) // large enough that stage 3 is regular
	idx := make([]int64, 64)

	parentSet := func(stage, task int) map[int]bool {
		pl.TaskIndices(stage, task, idx)
		set := make(map[int]bool)
		for _, g := range idx {
			set[pl.TaskOf(stage-1, g)] = true
		}
		return set
	}

	p80 := parentSet(3, 80)
	if len(p80) != 64 {
		t.Fatalf("codelet 80 has %d parents, want 64", len(p80))
	}
	for m := 0; m < 64; m++ {
		if !p80[80+4096*m] {
			t.Fatalf("parent %d missing from codelet 80's parents", 80+4096*m)
		}
	}
	p4176 := parentSet(3, 4176)
	for p := range p80 {
		if !p4176[p] {
			t.Fatalf("codelet 4176 should share parent %d with codelet 80", p)
		}
	}
	if len(p4176) != 64 {
		t.Fatalf("codelet 4176 has %d parents, want 64", len(p4176))
	}
}

func TestTaskFlops(t *testing.T) {
	pl := mustPlan(t, 1<<15, 64)
	if got := pl.TaskFlops(0); got != 6*32*10 {
		t.Fatalf("regular TaskFlops = %d, want 1920", got)
	}
	if got := pl.TaskFlops(2); got != 3*32*10 {
		t.Fatalf("last TaskFlops = %d, want 960", got)
	}
	// Sum over all tasks equals the 5·N·log2(N) convention.
	var sum int64
	for s := 0; s < pl.NumStages; s++ {
		sum += pl.TaskFlops(s) * int64(pl.TasksPerStage)
	}
	if sum != pl.TotalFlops() {
		t.Fatalf("flop sum %d != TotalFlops %d", sum, pl.TotalFlops())
	}
}

func TestPlanPanicsOnBadArgs(t *testing.T) {
	pl := mustPlan(t, 1<<12, 64)
	for _, fn := range []func(){
		func() { pl.Levels(-1) },
		func() { pl.Levels(pl.NumStages) },
		func() { pl.TaskIndices(0, -1, make([]int64, 64)) },
		func() { pl.TaskIndices(0, pl.TasksPerStage, make([]int64, 64)) },
		func() { pl.TaskIndices(0, 0, make([]int64, 8)) },
		func() { pl.TaskOf(0, -1) },
		func() { pl.TaskOf(0, int64(pl.N)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
