//go:build amd64 && !noasm

package fft

// Runtime CPU-feature detection for the AVX2+FMA codelets, done with a
// hand-rolled CPUID/XGETBV pair (the module is dependency-free, so no
// golang.org/x/sys/cpu). The codelets need AVX2, FMA3, and an OS that
// saves the YMM state (OSXSAVE + XCR0 bits 1–2).

// soaLanes is the codelet vector width in doubles (one YMM register).
// The asm engages only when a run's dist and cnt are multiples of it;
// pass units are lane-aligned by construction, so the same stage never
// mixes asm and generic arithmetic.
const (
	soaLanes     = 4
	soaBase4MinN = 16 // 4 quads per transposed block
)

var soaHasAsm = detectAVX2FMA()

var soaHasBase4 = soaHasAsm

// soaAccel names the active acceleration for introspection and tests.
var soaAccel = func() string {
	if soaHasAsm {
		return "avx2+fma"
	}
	return "generic"
}()

func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
	)
	if c1&fma == 0 || c1&osxsave == 0 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	if b7&(1<<5) == 0 { // AVX2
		return false
	}
	xcr0, _ := xgetbv0()
	return xcr0&0x6 == 0x6 // XMM and YMM state enabled by the OS
}

// Implemented in soa_amd64.s.

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func bfly2Asm(re, im, wr, wi *float64, dist, cnt, nblk int)

//go:noescape
func bfly4Asm(re, im, war, wai, wbr, wbi *float64, dist, cnt, nblk int)

//go:noescape
func base4Asm(re, im *float64, n int, tw *float64)
