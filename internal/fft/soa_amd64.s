//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA codelets for the SoA kernel family. Calling contract (see
// DESIGN.md): re/im point at the first butterfly's leading element,
// wr/wi (war/wai, wbr/wbi) at its twiddle; the codelet runs nblk
// blocks of stride 2·dist (4·dist for the fused pair), cnt butterflies
// each, partners at +dist (+2·dist, +3·dist). cnt is a multiple of 4
// and dist ≥ 4 elements; cnt = dist gives the classic full-level
// sweep, cnt < dist a lane-aligned j-subrange of one block (used for
// partition tails). Buffers need no alignment (unaligned VMOVUPD
// throughout); no Go calls, no stack growth (NOSPLIT, $0 frame), no
// pointer writes, so //go:noescape on every declaration is sound.

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func bfly2Asm(re, im, wr, wi *float64, dist, cnt, nblk int)
//
// nblk blocks of radix-2 butterflies (a, b) at distance dist with
// twiddle w[j], j < cnt, block stride 2·dist:
//	t = w·b ; b' = a − t ; a' = a + t
// 4 butterflies per iteration (one YMM of doubles).
TEXT ·bfly2Asm(SB), NOSPLIT, $0-56
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ wr+16(FP), R8
	MOVQ wi+24(FP), R9
	MOVQ dist+32(FP), R10
	SHLQ $3, R10            // dist in bytes
	MOVQ cnt+40(FP), CX
	SHLQ $3, CX             // cnt in bytes
	MOVQ nblk+48(FP), R11
	MOVQ R10, R13
	SHLQ $1, R13            // block stride: 2·dist bytes

bfly2_blk:
	LEAQ (DI)(R10*1), AX    // &re[k+dist]
	LEAQ (SI)(R10*1), BX    // &im[k+dist]
	XORQ R12, R12           // j bytes

bfly2_inner:
	VMOVUPD (R8)(R12*1), Y0 // wr[j]
	VMOVUPD (R9)(R12*1), Y1 // wi[j]
	VMOVUPD (DI)(R12*1), Y2 // ar
	VMOVUPD (SI)(R12*1), Y3 // ai
	VMOVUPD (AX)(R12*1), Y4 // br
	VMOVUPD (BX)(R12*1), Y5 // bi

	VMULPD       Y4, Y0, Y6 // wr·br
	VFNMADD231PD Y5, Y1, Y6 // tr = wr·br − wi·bi
	VMULPD       Y5, Y0, Y7 // wr·bi
	VFMADD231PD  Y4, Y1, Y7 // ti = wr·bi + wi·br

	VSUBPD Y6, Y2, Y8       // br' = ar − tr
	VADDPD Y6, Y2, Y2       // ar' = ar + tr
	VSUBPD Y7, Y3, Y9
	VADDPD Y7, Y3, Y3

	VMOVUPD Y2, (DI)(R12*1)
	VMOVUPD Y3, (SI)(R12*1)
	VMOVUPD Y8, (AX)(R12*1)
	VMOVUPD Y9, (BX)(R12*1)

	ADDQ $32, R12
	CMPQ R12, CX
	JL   bfly2_inner

	ADDQ R13, DI
	ADDQ R13, SI
	DECQ R11
	JNZ  bfly2_blk

	VZEROUPPER
	RET

// func bfly4Asm(re, im, war, wai, wbr, wbi *float64, dist, cnt, nblk int)
//
// nblk blocks of fused radix-4 level pairs, block stride 4·dist: with
// x0..x3 at distance dist and j < cnt, b1 = wa·x1, b3 = wa·x3,
//	p = x0+b1  q = x0−b1  s = x2+b3  t = x2−b3
//	ws = wb·s  wt = wb·t
//	y0 = p+ws  y2 = p−ws  y1 = q+(wt_i,−wt_r)  y3 = q−(wt_i,−wt_r)
// using the identity w_b[j+dist] = −i·w_b[j].
TEXT ·bfly4Asm(SB), NOSPLIT, $0-72
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ war+16(FP), R8
	MOVQ wai+24(FP), R9
	MOVQ wbr+32(FP), R10
	MOVQ wbi+40(FP), R11
	MOVQ dist+48(FP), R13
	SHLQ $3, R13            // dist in bytes
	MOVQ cnt+56(FP), R12
	SHLQ $3, R12            // cnt in bytes
	MOVQ nblk+64(FP), CX

bfly4_blk:
	XORQ BX, BX             // j bytes

bfly4_inner:
	VMOVUPD (R8)(BX*1), Y0   // war
	VMOVUPD (R9)(BX*1), Y1   // wai
	VMOVUPD (R10)(BX*1), Y2  // wbr
	VMOVUPD (R11)(BX*1), Y3  // wbi

	LEAQ    (DI)(BX*1), AX   // &re[k+j]
	VMOVUPD (AX), Y4         // x0r
	VMOVUPD (AX)(R13*1), Y6  // x1r
	VMOVUPD (AX)(R13*2), Y8  // x2r
	LEAQ    (AX)(R13*1), DX
	VMOVUPD (DX)(R13*2), Y10 // x3r
	LEAQ    (SI)(BX*1), AX   // &im[k+j]
	VMOVUPD (AX), Y5         // x0i
	VMOVUPD (AX)(R13*1), Y7  // x1i
	VMOVUPD (AX)(R13*2), Y9  // x2i
	LEAQ    (AX)(R13*1), DX
	VMOVUPD (DX)(R13*2), Y11 // x3i

	VMULPD       Y6, Y0, Y12  // b1r = war·x1r − wai·x1i
	VFNMADD231PD Y7, Y1, Y12
	VMULPD       Y7, Y0, Y13  // b1i = war·x1i + wai·x1r
	VFMADD231PD  Y6, Y1, Y13
	VMULPD       Y10, Y0, Y6  // b3r
	VFNMADD231PD Y11, Y1, Y6
	VMULPD       Y11, Y0, Y7  // b3i
	VFMADD231PD  Y10, Y1, Y7

	VADDPD Y12, Y4, Y0        // pr
	VSUBPD Y12, Y4, Y4        // qr
	VADDPD Y13, Y5, Y1        // pi
	VSUBPD Y13, Y5, Y5        // qi
	VADDPD Y6, Y8, Y10        // sr
	VSUBPD Y6, Y8, Y8         // tr
	VADDPD Y7, Y9, Y11        // si
	VSUBPD Y7, Y9, Y9         // ti

	VMULPD       Y10, Y2, Y12 // wsr
	VFNMADD231PD Y11, Y3, Y12
	VMULPD       Y11, Y2, Y13 // wsi
	VFMADD231PD  Y10, Y3, Y13
	VMULPD       Y8, Y2, Y6   // wtr
	VFNMADD231PD Y9, Y3, Y6
	VMULPD       Y9, Y2, Y7   // wti
	VFMADD231PD  Y8, Y3, Y7

	VADDPD Y12, Y0, Y10       // y0r = pr + wsr
	VSUBPD Y12, Y0, Y0        // y2r
	VADDPD Y13, Y1, Y11       // y0i
	VSUBPD Y13, Y1, Y1        // y2i
	VADDPD Y7, Y4, Y8         // y1r = qr + wti
	VSUBPD Y7, Y4, Y9         // y3r
	VSUBPD Y6, Y5, Y2         // y1i = qi − wtr
	VADDPD Y6, Y5, Y3         // y3i

	LEAQ    (DI)(BX*1), AX
	VMOVUPD Y10, (AX)
	VMOVUPD Y8, (AX)(R13*1)
	VMOVUPD Y0, (AX)(R13*2)
	LEAQ    (AX)(R13*1), DX
	VMOVUPD Y9, (DX)(R13*2)
	LEAQ    (SI)(BX*1), AX
	VMOVUPD Y11, (AX)
	VMOVUPD Y2, (AX)(R13*1)
	VMOVUPD Y1, (AX)(R13*2)
	LEAQ    (AX)(R13*1), DX
	VMOVUPD Y3, (DX)(R13*2)

	ADDQ $32, BX
	CMPQ BX, R12
	JL   bfly4_inner

	LEAQ (DI)(R13*4), DI
	LEAQ (SI)(R13*4), SI
	DECQ CX
	JNZ  bfly4_blk

	VZEROUPPER
	RET

// func base4Asm(re, im *float64, n int, tw *float64)
//
// The fused levels-0-and-1 radix-4 pass on consecutive quads, with
// scalar (broadcast) twiddles tw = [war, wai, wbr, wbi]. Processes 4
// quads (16 elements) per iteration via 4×4 double transposes so the
// quad butterfly runs element-parallel across lanes; n must be a
// multiple of 16 (the wrapper peels the tail).
TEXT ·base4Asm(SB), NOSPLIT, $0-32
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $4, CX              // 16-element iterations
	MOVQ tw+24(FP), R8
	VBROADCASTSD (R8), Y12   // war
	VBROADCASTSD 8(R8), Y13  // wai
	VBROADCASTSD 16(R8), Y14 // wbr
	VBROADCASTSD 24(R8), Y15 // wbi

base4_loop:
	TESTQ CX, CX
	JZ    base4_done

	// Load 16 re, transpose quads into lanes: x_j[q] = re[4q+j].
	VMOVUPD    (DI), Y0
	VMOVUPD    32(DI), Y1
	VMOVUPD    64(DI), Y2
	VMOVUPD    96(DI), Y3
	VUNPCKLPD  Y1, Y0, Y4
	VUNPCKHPD  Y1, Y0, Y5
	VUNPCKLPD  Y3, Y2, Y6
	VUNPCKHPD  Y3, Y2, Y7
	VPERM2F128 $0x20, Y6, Y4, Y0 // x0r
	VPERM2F128 $0x20, Y7, Y5, Y1 // x1r
	VPERM2F128 $0x31, Y6, Y4, Y2 // x2r
	VPERM2F128 $0x31, Y7, Y5, Y3 // x3r

	VMOVUPD    (SI), Y4
	VMOVUPD    32(SI), Y5
	VMOVUPD    64(SI), Y6
	VMOVUPD    96(SI), Y7
	VUNPCKLPD  Y5, Y4, Y8
	VUNPCKHPD  Y5, Y4, Y9
	VUNPCKLPD  Y7, Y6, Y10
	VUNPCKHPD  Y7, Y6, Y11
	VPERM2F128 $0x20, Y10, Y8, Y4 // x0i
	VPERM2F128 $0x20, Y11, Y9, Y5 // x1i
	VPERM2F128 $0x31, Y10, Y8, Y6 // x2i
	VPERM2F128 $0x31, Y11, Y9, Y7 // x3i

	VMULPD       Y1, Y12, Y8  // b1r
	VFNMADD231PD Y5, Y13, Y8
	VMULPD       Y5, Y12, Y9  // b1i
	VFMADD231PD  Y1, Y13, Y9
	VADDPD       Y8, Y0, Y1   // pr
	VSUBPD       Y8, Y0, Y0   // qr
	VADDPD       Y9, Y4, Y5   // pi
	VSUBPD       Y9, Y4, Y4   // qi

	VMULPD       Y3, Y12, Y8  // b3r
	VFNMADD231PD Y7, Y13, Y8
	VMULPD       Y7, Y12, Y9  // b3i
	VFMADD231PD  Y3, Y13, Y9
	VADDPD       Y8, Y2, Y3   // sr
	VSUBPD       Y8, Y2, Y2   // tr
	VADDPD       Y9, Y6, Y7   // si
	VSUBPD       Y9, Y6, Y6   // ti

	VMULPD       Y3, Y14, Y8  // wsr
	VFNMADD231PD Y7, Y15, Y8
	VMULPD       Y7, Y14, Y9  // wsi
	VFMADD231PD  Y3, Y15, Y9
	VMULPD       Y2, Y14, Y10 // wtr
	VFNMADD231PD Y6, Y15, Y10
	VMULPD       Y6, Y14, Y11 // wti
	VFMADD231PD  Y2, Y15, Y11

	VADDPD Y8, Y1, Y2         // y0r
	VSUBPD Y8, Y1, Y3         // y2r
	VADDPD Y9, Y5, Y6         // y0i
	VSUBPD Y9, Y5, Y7         // y2i
	VADDPD Y11, Y0, Y8        // y1r = qr + wti
	VSUBPD Y11, Y0, Y9        // y3r
	VSUBPD Y10, Y4, Y0        // y1i = qi − wtr
	VADDPD Y10, Y4, Y11       // y3i

	// Transpose back and store: re rows {y0r,y1r,y2r,y3r} = {Y2,Y8,Y3,Y9}.
	VUNPCKLPD  Y8, Y2, Y1
	VUNPCKHPD  Y8, Y2, Y4
	VUNPCKLPD  Y9, Y3, Y5
	VUNPCKHPD  Y9, Y3, Y10
	VPERM2F128 $0x20, Y5, Y1, Y2
	VPERM2F128 $0x20, Y10, Y4, Y8
	VPERM2F128 $0x31, Y5, Y1, Y3
	VPERM2F128 $0x31, Y10, Y4, Y9
	VMOVUPD    Y2, (DI)
	VMOVUPD    Y8, 32(DI)
	VMOVUPD    Y3, 64(DI)
	VMOVUPD    Y9, 96(DI)

	// im rows {y0i,y1i,y2i,y3i} = {Y6,Y0,Y7,Y11}.
	VUNPCKLPD  Y0, Y6, Y1
	VUNPCKHPD  Y0, Y6, Y4
	VUNPCKLPD  Y11, Y7, Y5
	VUNPCKHPD  Y11, Y7, Y10
	VPERM2F128 $0x20, Y5, Y1, Y2
	VPERM2F128 $0x20, Y10, Y4, Y8
	VPERM2F128 $0x31, Y5, Y1, Y3
	VPERM2F128 $0x31, Y10, Y4, Y9
	VMOVUPD    Y2, (SI)
	VMOVUPD    Y8, 32(SI)
	VMOVUPD    Y3, 64(SI)
	VMOVUPD    Y9, 96(SI)

	ADDQ $128, DI
	ADDQ $128, SI
	DECQ CX
	JMP  base4_loop

base4_done:
	VZEROUPPER
	RET
