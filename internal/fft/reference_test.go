package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestDFTImpulse(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	y := DFT(x)
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum[%d] = %v, want 1", k, v)
		}
	}
}

func TestDFTConstant(t *testing.T) {
	n := 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	y := DFT(x)
	if cmplx.Abs(y[0]-complex(float64(n), 0)) > 1e-9 {
		t.Fatalf("DC bin = %v, want %d", y[0], n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(y[k]) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", k, y[k])
		}
	}
}

func TestDFTSingleTone(t *testing.T) {
	n, bin := 64, 5
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * float64(bin) * float64(i) / float64(n)
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	y := DFT(x)
	for k := range y {
		want := complex128(0)
		if k == bin {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(y[k]-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, y[k], want)
		}
	}
}

func TestRecursiveMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256, 1024} {
		x := randomSignal(n, int64(n))
		if err := MaxError(Recursive(x), DFT(x)); err > 1e-8*float64(n) {
			t.Fatalf("n=%d: Recursive vs DFT error %g", n, err)
		}
	}
}

func TestRecursiveRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for length 12")
		}
	}()
	Recursive(make([]complex128, 12))
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{2, 16, 512} {
		x := randomSignal(n, 42)
		y := Inverse(Recursive(x))
		if err := MaxError(x, y); err > 1e-10 {
			t.Fatalf("n=%d roundtrip error %g", n, err)
		}
	}
}

func TestDFTLinearity(t *testing.T) {
	n := 128
	a := randomSignal(n, 1)
	b := randomSignal(n, 2)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = 2*a[i] + 3i*b[i]
	}
	ya, yb, ys := DFT(a), DFT(b), DFT(sum)
	for k := 0; k < n; k++ {
		want := 2*ya[k] + 3i*yb[k]
		if cmplx.Abs(ys[k]-want) > 1e-8 {
			t.Fatalf("linearity broken at bin %d", k)
		}
	}
}

func TestParseval(t *testing.T) {
	n := 256
	x := randomSignal(n, 3)
	y := Recursive(x)
	var tx, ty float64
	for i := range x {
		tx += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ty += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	ty /= float64(n)
	if math.Abs(tx-ty)/tx > 1e-10 {
		t.Fatalf("Parseval violated: time %g vs freq %g", tx, ty)
	}
}

func TestMaxError(t *testing.T) {
	a := []complex128{1, 2 + 2i}
	b := []complex128{1, 2 + 2.5i}
	if got := MaxError(a, b); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("MaxError = %g, want 0.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MaxError(a, b[:1])
}
