// SoA kernel family tests on the exported surface. DFT parity and
// serial/parallel/batch bitwise identity are covered by the cross-kernel
// suites in kernels_test.go and internal/host, which iterate
// ConcreteKernels and so extend to the SoA kernels automatically; this
// file adds what is SoA-specific — the pooled-scratch allocation
// guarantee, the accel introspection string, and a dedicated fuzz
// target for the split-plane pipeline.
package fft_test

import (
	"testing"

	"codeletfft/internal/fft"
)

// TestSoAAccelNamed: the backend string is one of the documented values.
func TestSoAAccelNamed(t *testing.T) {
	switch got := fft.SoAAccel(); got {
	case "avx2+fma", "neon", "generic":
	default:
		t.Fatalf("SoAAccel() = %q, not a documented backend", got)
	}
}

// TestSoATransformAllocs pins the tentpole's pooling contract: after
// the plan's split twiddle tables and the frame pool are warm, a
// steady-state TransformSoA performs zero allocations.
func TestSoATransformAllocs(t *testing.T) {
	for _, kern := range []fft.Kernel{fft.KernelSoARadix2, fft.KernelSoARadix4} {
		pl, err := fft.NewPlan(1<<12, 64)
		if err != nil {
			t.Fatal(err)
		}
		w := fft.Twiddles(pl.N)
		data := lcgComplex(pl.N, 99)
		pl.TransformKernelWith(data, w, kern, nil) // warm tables and pools
		if avg := testing.AllocsPerRun(20, func() {
			pl.TransformKernelWith(data, w, kern, nil)
		}); avg != 0 {
			t.Errorf("%v: %v allocs per steady-state transform, want 0", kern, avg)
		}
	}
}

// FuzzSoAParity fuzzes (input, task size, SoA kernel selector): the SoA
// kernel's forward output must match radix-2 within the documented 1e-9
// relative tolerance, and its forward+inverse round trip must return
// the input. Part of the CI fuzz smoke alongside FuzzKernelParity,
// which draws from all kernels — this target keeps every execution on
// the split-plane pipeline so the fuzz budget is not diluted.
func FuzzSoAParity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), false)
	f.Add(make([]byte, 256), uint8(5), true)
	f.Add([]byte{255, 0, 128, 64, 32, 16, 200, 100, 9, 8, 7, 6, 5, 4, 3, 2}, uint8(2), false)
	f.Fuzz(func(t *testing.T, raw []byte, p8 uint8, radix4 bool) {
		x, p := fuzzInput(raw, p8)
		if x == nil {
			t.Skip("input too short")
		}
		n := len(x)
		pl, err := fft.NewPlan(n, p)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", n, p, err)
		}
		w := fft.Twiddles(n)
		kern := fft.KernelSoARadix2
		if radix4 {
			kern = fft.KernelSoARadix4
		}

		want := append([]complex128(nil), x...)
		pl.Transform(want, w)
		got := append([]complex128(nil), x...)
		pl.TransformKernel(got, w, kern)
		if rel := maxRelError(got, want); rel > 1e-9 {
			t.Fatalf("n=%d p=%d %v: relative error %g vs radix-2", n, p, kern, rel)
		}

		pl.InverseTransformKernel(got, w, kern)
		if rel := maxRelError(got, x); rel > 1e-9 {
			t.Fatalf("n=%d p=%d %v: round-trip relative error %g", n, p, kern, rel)
		}
	})
}
