// The arbitrary-N correctness matrix: every radix family the planner
// claims to support — pure primes (Bluestein), 3·2^k, 5·2^k, 7·3^j,
// powers of ten, highly-composite lengths, and the degenerate N=1 —
// is checked against the O(N²) reference DFT and against the
// metamorphic identities any DFT must satisfy. This is the ground
// truth behind the facade's "any N ≥ 1 plans successfully" contract.
package fft_test

import (
	"errors"
	"math"
	"testing"

	"codeletfft/internal/fft"
)

// radixFamily is one named row of the correctness matrix.
type radixFamily struct {
	name    string
	lengths []int
}

// primesTo257 lists every prime ≤ 257 — all of them exercise the
// Bluestein path except 2, 3, 5 and 7, which have direct codelets.
func primesTo257() []int {
	var ps []int
	for n := 2; n <= 257; n++ {
		isPrime := true
		for d := 2; d*d <= n; d++ {
			if n%d == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			ps = append(ps, n)
		}
	}
	return ps
}

// arbitraryNMatrix is the shared N matrix for the correctness and
// metamorphic suites.
func arbitraryNMatrix() []radixFamily {
	var p3, p5, p7 []int
	for k := 0; k <= 9; k++ {
		p3 = append(p3, 3<<k)
	}
	for k := 0; k <= 8; k++ {
		p5 = append(p5, 5<<k)
	}
	for j, v := 0, 7; j <= 4; j, v = j+1, v*3 {
		p7 = append(p7, v)
	}
	return []radixFamily{
		{"identity", []int{1}},
		{"primes", primesTo257()},
		{"3x2^k", p3},
		{"5x2^k", p5},
		{"7x3^j", p7},
		{"10^k", []int{10, 100, 1000}},
		{"highly-composite", []int{120, 720, 840, 1260, 2520}},
	}
}

// planAny returns a serial transform/inverse pair for any n ≥ 1, using
// the mixed-radix plan when N factors over {2,3,5,7} and Bluestein
// otherwise — the same routing the facade applies.
func planAny(t *testing.T, n int) (forward, inverse func([]complex128), desc string) {
	t.Helper()
	if mp, err := fft.NewMixedPlan(n); err == nil {
		return mp.Transform, mp.InverseTransform, mp.String()
	}
	bp, err := fft.NewBluesteinPlan(n)
	if err != nil {
		t.Fatalf("no plan for n=%d: %v", n, err)
	}
	return bp.Transform, bp.InverseTransform, bp.String()
}

// peakMag returns the largest |X[k]| — the scale relative errors are
// measured against.
func peakMag(x []complex128) float64 {
	var peak float64
	for _, v := range x {
		if m := math.Hypot(real(v), imag(v)); m > peak {
			peak = m
		}
	}
	return peak
}

// TestArbitraryNMatrix compares every matrix length against the O(N²)
// reference DFT at a relative tolerance of 1e-9 of the spectrum's peak
// magnitude — the acceptance bar for the whole arbitrary-N feature.
func TestArbitraryNMatrix(t *testing.T) {
	for _, fam := range arbitraryNMatrix() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for _, n := range fam.lengths {
				forward, _, desc := planAny(t, n)
				x := randSignal(n, int64(n))
				want := fft.DFT(x)
				got := append([]complex128(nil), x...)
				forward(got)
				peak := peakMag(want)
				if peak == 0 {
					peak = 1
				}
				if e := fft.MaxError(got, want); e > 1e-9*peak {
					t.Errorf("n=%d (%s): max error %g exceeds 1e-9 of peak %g", n, desc, e, peak)
				}
			}
		})
	}
}

// TestArbitraryNMetamorphic checks the DFT identities — linearity,
// Parseval, the impulse response, the circular-shift theorem, and the
// forward/inverse round trip — over the same matrix, so correctness
// does not rest on the reference implementation alone.
func TestArbitraryNMetamorphic(t *testing.T) {
	for _, fam := range arbitraryNMatrix() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for _, n := range fam.lengths {
				forward, inverse, desc := planAny(t, n)
				tf := func(x []complex128) []complex128 {
					out := append([]complex128(nil), x...)
					forward(out)
					return out
				}
				x := randSignal(n, int64(7*n+1))
				y := randSignal(n, int64(7*n+2))

				// Linearity: T(a·x + b·y) = a·T(x) + b·T(y).
				a, b := complex(1.25, -0.5), complex(-0.75, 2.0)
				mixed := make([]complex128, n)
				for i := range mixed {
					mixed[i] = a*x[i] + b*y[i]
				}
				got := tf(mixed)
				tx, ty := tf(x), tf(y)
				want := make([]complex128, n)
				for i := range want {
					want[i] = a*tx[i] + b*ty[i]
				}
				if e := fft.MaxError(got, want); e > 1e-9*float64(n) {
					t.Errorf("n=%d (%s): linearity violated, error %g", n, desc, e)
				}

				// Parseval: Σ|x|² = Σ|X|²/N.
				var timeE, freqE float64
				for i := range x {
					timeE += cAbs2(x[i])
					freqE += cAbs2(tx[i])
				}
				freqE /= float64(n)
				if rel := math.Abs(timeE-freqE) / timeE; rel > 1e-9 {
					t.Errorf("n=%d (%s): Parseval violated, relative error %g", n, desc, rel)
				}

				// Impulse: T(δ₀) is the all-ones vector.
				imp := make([]complex128, n)
				imp[0] = 1
				for k, v := range tf(imp) {
					if d := math.Hypot(real(v)-1, imag(v)); d > 1e-9 {
						t.Fatalf("n=%d (%s): impulse bin %d = %v, want 1", n, desc, k, v)
					}
				}

				// Circular shift: advancing x by s multiplies bin k by
				// exp(2πi·k·s/N).
				if n > 1 {
					s := 1 + (n-2)%5
					shifted := make([]complex128, n)
					for i := range shifted {
						shifted[i] = x[(i+s)%n]
					}
					Y := tf(shifted)
					for k := range Y {
						ang := 2 * math.Pi * float64(k) * float64(s) / float64(n)
						sw := tx[k] * complex(math.Cos(ang), math.Sin(ang))
						if d := math.Hypot(real(Y[k])-real(sw), imag(Y[k])-imag(sw)); d > 1e-9*float64(n) {
							t.Fatalf("n=%d (%s) s=%d: shift theorem violated at bin %d: got %v want %v",
								n, desc, s, k, Y[k], sw)
						}
					}
				}

				// Round trip: inverse(forward(x)) = x.
				rt := append([]complex128(nil), x...)
				forward(rt)
				inverse(rt)
				if e := fft.MaxError(rt, x); e > 1e-9 {
					t.Errorf("n=%d (%s): round-trip error %g", n, desc, e)
				}
			}
		})
	}
}

// TestFactor pins the factorization policy: radix-4 first, at most one
// radix-2, then 3s, 5s, 7s, with anything left reported as the
// cofactor that routes the length to Bluestein.
func TestFactor(t *testing.T) {
	cases := []struct {
		n        int
		radices  []int
		cofactor int
	}{
		{1, nil, 1},
		{2, []int{2}, 1},
		{4, []int{4}, 1},
		{8, []int{4, 2}, 1},
		{12, []int{4, 3}, 1},
		{360, []int{4, 2, 3, 3, 5}, 1},
		{1000, []int{4, 2, 5, 5, 5}, 1},
		{49, []int{7, 7}, 1},
		{11, nil, 11},
		{22, []int{2}, 11},
		{143, nil, 143},
	}
	for _, c := range cases {
		radices, cofactor := fft.Factor(c.n)
		if cofactor != c.cofactor || len(radices) != len(c.radices) {
			t.Fatalf("Factor(%d) = %v, %d, want %v, %d", c.n, radices, cofactor, c.radices, c.cofactor)
		}
		for i := range radices {
			if radices[i] != c.radices[i] {
				t.Fatalf("Factor(%d) = %v, want %v", c.n, radices, c.radices)
			}
		}
	}
}

// TestMixedPlanInvariants checks the structural invariants every
// mixed-radix plan must satisfy: the stage radices multiply back to N,
// each stage covers the whole vector, and the twiddle tables have the
// documented (R−1)·M layout.
func TestMixedPlanInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 60, 360, 1000, 2520, 6144} {
		mp, err := fft.NewMixedPlan(n)
		if err != nil {
			t.Fatalf("NewMixedPlan(%d): %v", n, err)
		}
		if mp.N != n {
			t.Fatalf("plan for %d reports N=%d", n, mp.N)
		}
		prod := 1
		for _, r := range mp.Radices {
			prod *= r
		}
		if prod != n {
			t.Fatalf("n=%d: radices %v multiply to %d", n, mp.Radices, prod)
		}
		if len(mp.Stages) != len(mp.Radices) {
			t.Fatalf("n=%d: %d stages for %d radices", n, len(mp.Stages), len(mp.Radices))
		}
		for i, st := range mp.Stages {
			if st.R*st.M*st.S != n {
				t.Fatalf("n=%d stage %d: R·M·S = %d·%d·%d ≠ N", n, i, st.R, st.M, st.S)
			}
			if want := (st.R - 1) * st.M; len(st.Tw) != want {
				t.Fatalf("n=%d stage %d: %d twiddles, want %d", n, i, len(st.Tw), want)
			}
			if st.Units() != st.M*st.S {
				t.Fatalf("n=%d stage %d: Units() = %d, want %d", n, i, st.Units(), st.M*st.S)
			}
		}
	}
	if _, err := fft.NewMixedPlan(11); !errors.Is(err, fft.ErrUnsupportedLength) {
		t.Fatalf("NewMixedPlan(11) err = %v, want ErrUnsupportedLength", err)
	}
	if _, err := fft.NewMixedPlan(0); !errors.Is(err, fft.ErrUnsupportedLength) {
		t.Fatalf("NewMixedPlan(0) err = %v, want ErrUnsupportedLength", err)
	}
}

// TestRadixSignature pins the packed multiplicity encoding the plan
// cache keys on: distinct factorizations must hash to distinct
// signatures, and the Bluestein bit must separate prime lengths from
// smooth ones.
func TestRadixSignature(t *testing.T) {
	if got := fft.RadixSignature(0); got != 0 {
		t.Fatalf("RadixSignature(0) = %#x, want 0", got)
	}
	if got := fft.RadixSignature(1); got != 0 {
		t.Fatalf("RadixSignature(1) = %#x, want 0", got)
	}
	// 360 = 2^3·3^2·5: multiplicities 3, 2, 1, 0.
	if got, want := fft.RadixSignature(360), uint64(3)|uint64(2)<<8|uint64(1)<<16; got != want {
		t.Fatalf("RadixSignature(360) = %#x, want %#x", got, want)
	}
	if got := fft.RadixSignature(11); got>>63 != 1 {
		t.Fatalf("RadixSignature(11) = %#x, want the Bluestein bit set", got)
	}
	seen := map[uint64]int{}
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 360, 1000} {
		sig := fft.RadixSignature(n)
		if prev, dup := seen[sig]; dup {
			t.Fatalf("RadixSignature collision: %d and %d both map to %#x", prev, n, sig)
		}
		seen[sig] = n
	}
}

// TestBluesteinPlanShape checks the chirp-z embedding: the convolution
// length M is the smallest power of two ≥ 2N−1, and the plan transforms
// prime and near-prime lengths that have no smooth factorization.
func TestBluesteinPlanShape(t *testing.T) {
	for _, c := range []struct{ n, m int }{
		{2, 4}, {3, 8}, {11, 32}, {17, 64}, {127, 256}, {257, 1024},
	} {
		bp, err := fft.NewBluesteinPlan(c.n)
		if err != nil {
			t.Fatalf("NewBluesteinPlan(%d): %v", c.n, err)
		}
		if bp.N != c.n || bp.M != c.m {
			t.Fatalf("NewBluesteinPlan(%d) = N=%d M=%d, want M=%d", c.n, bp.N, bp.M, c.m)
		}
		if len(bp.Chirp) != c.n || len(bp.BHat) != c.m {
			t.Fatalf("n=%d: chirp/filter tables are %d/%d long, want %d/%d",
				c.n, len(bp.Chirp), len(bp.BHat), c.n, c.m)
		}
	}
	if _, err := fft.NewBluesteinPlan(0); !errors.Is(err, fft.ErrUnsupportedLength) {
		t.Fatalf("NewBluesteinPlan(0) err = %v, want ErrUnsupportedLength", err)
	}
}

// TestBluesteinLargePrime runs the one transform size the O(N²)
// reference cannot reach — the prime 2^20+7 — and validates it through
// Parseval plus a forward/inverse round trip.
func TestBluesteinLargePrime(t *testing.T) {
	if testing.Short() {
		t.Skip("large prime transform skipped in -short mode")
	}
	const n = 1<<20 + 7
	bp, err := fft.NewBluesteinPlan(n)
	if err != nil {
		t.Fatalf("NewBluesteinPlan(%d): %v", n, err)
	}
	x := randSignal(n, 20)
	data := append([]complex128(nil), x...)
	bp.Transform(data)
	var timeE, freqE float64
	for i := range x {
		timeE += cAbs2(x[i])
		freqE += cAbs2(data[i])
	}
	freqE /= float64(n)
	if rel := math.Abs(timeE-freqE) / timeE; rel > 1e-9 {
		t.Errorf("n=%d: Parseval violated, relative error %g", n, rel)
	}
	bp.InverseTransform(data)
	if e := fft.MaxError(data, x); e > 1e-8 {
		t.Errorf("n=%d: round-trip error %g", n, e)
	}
}

// TestErrUnsupportedLengthSentinel: every planner's length rejection
// wraps the single ErrUnsupportedLength root sentinel. (The deprecated
// ErrNotPowerOfTwo alias and its compatibility shim were removed with
// the API purge.)
func TestErrUnsupportedLengthSentinel(t *testing.T) {
	// A staged-plan shape error.
	if _, err := fft.NewPlan(100, 4); !errors.Is(err, fft.ErrUnsupportedLength) {
		t.Fatalf("NewPlan(100, 4) err = %v, want ErrUnsupportedLength", err)
	}
	// A mixed-radix cofactor error: 143 = 11·13.
	if _, err := fft.NewMixedPlan(143); !errors.Is(err, fft.ErrUnsupportedLength) {
		t.Fatalf("NewMixedPlan(143) err = %v, want ErrUnsupportedLength", err)
	}
}
