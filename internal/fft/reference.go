package fft

import "math"

// DFT computes the discrete Fourier transform of x directly in O(n²).
// It is the ground truth the staged decomposition is tested against.
// Any length is accepted.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	full := make([]complex128, n)
	for k := 0; k < n; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		full[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			sum += x[t] * full[(k*t)%n]
		}
		out[k] = sum
	}
	return out
}

// Recursive computes the FFT of x (power-of-two length) with the textbook
// recursive Cooley-Tukey algorithm — an independent implementation used
// to cross-check the staged plan at sizes where the O(n²) DFT is too slow.
func Recursive(x []complex128) []complex128 {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic("fft: Recursive requires a power-of-two length")
	}
	out := make([]complex128, n)
	copy(out, x)
	w := Twiddles(max(n, 2))
	recurse(out, make([]complex128, n), w, n)
	return out
}

func recurse(x, scratch, w []complex128, root int) {
	n := len(x)
	if n == 1 {
		return
	}
	half := n / 2
	for i := 0; i < half; i++ {
		scratch[i] = x[2*i]
		scratch[half+i] = x[2*i+1]
	}
	copy(x, scratch)
	recurse(x[:half], scratch[:half], w, root)
	recurse(x[half:], scratch[half:], w, root)
	step := root / n
	for k := 0; k < half; k++ {
		t := w[k*step] * x[half+k]
		u := x[k]
		x[k] = u + t
		x[half+k] = u - t
	}
}

// Inverse computes the inverse DFT of X using the conjugation identity
// IDFT(X) = conj(DFT(conj(X)))/n, with Recursive as the forward engine.
func Inverse(x []complex128) []complex128 {
	n := len(x)
	tmp := make([]complex128, n)
	for i, v := range x {
		tmp[i] = complex(real(v), -imag(v))
	}
	y := Recursive(tmp)
	inv := 1 / float64(n)
	for i, v := range y {
		y[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return y
}

// MaxError returns the largest element-wise absolute difference between a
// and b, which must have equal length.
func MaxError(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("fft: length mismatch")
	}
	var maxErr float64
	for i := range a {
		d := a[i] - b[i]
		re, im := real(d), imag(d)
		if re < 0 {
			re = -re
		}
		if im < 0 {
			im = -im
		}
		if re > maxErr {
			maxErr = re
		}
		if im > maxErr {
			maxErr = im
		}
	}
	return maxErr
}
