package fft

import "math"

// Hann returns the length-n periodic Hann window
// w[i] = 0.5·(1 − cos(2πi/n)). The periodic form (denominator n, not
// n−1) is the spectrogram convention: shifted copies at hop n/2 sum to
// exactly 1 — the constant-overlap-add property STFT reconstruction
// relies on. n must be ≥ 1.
func Hann(n int) []float64 {
	if n < 1 {
		panic("fft: window length must be ≥ 1")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
	}
	return w
}
