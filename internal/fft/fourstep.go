package fft

import (
	"fmt"
	"math"
)

// FourStepPlan is the Bailey four-step factorization of an N-point DFT
// into N = N1·N2: column FFTs, a twiddle scaling, row FFTs, and a final
// transpose. It is the decomposition large transforms shard across
// machines — each column (length N1) and each row (length N2) is an
// independent sub-FFT, so the two FFT steps fan out as batches while
// the transposes and the twiddle step are embarrassingly parallel
// element permutations.
//
// With the input read row-major as an N1×N2 matrix A[j1][j2] =
// x[j1·N2+j2] and ω = exp(−2πi/N), the identity is
//
//	X[k2·N1+k1] = Σ_{j2} ( Σ_{j1} A[j1][j2]·ω_{N1}^{j1·k1} ) · ω^{j2·k1} · ω_{N2}^{j2·k2}
//
// so the steps are:
//
//  1. transpose A into N2 contiguous columns of length N1,
//  2. FFT every column and scale column j2's bin k1 by ω^{j2·k1}
//     (the twiddle segment),
//  3. transpose back into N1 contiguous rows of length N2 and FFT
//     every row,
//  4. transpose once more so bin k lands at index k2·N1+k1 — exactly
//     the ordering of the direct N-point transform.
//
// Transform is the serial reference; internal/dist replays the same
// steps with the two FFT passes dispatched to remote workers.
type FourStepPlan struct {
	N1, N2, N int

	col *Plan // N1-point sub-plan (columns)
	row *Plan // N2-point sub-plan (rows)

	wCol, wRow []complex128 // sub-transform twiddle tables
	wBig       []complex128 // Twiddles(N): the step-2 scaling factors
}

// NewFourStep builds the factorization for N = n1·n2. Both factors must
// be powers of two ≥ 2 (errors wrap ErrUnsupportedLength); the
// sub-plans use task size min(64, factor), the engine default.
func NewFourStep(n1, n2 int) (*FourStepPlan, error) {
	if Log2(n1) < 1 {
		return nil, fmt.Errorf("%w: N1=%d must be a power of two ≥ 2", ErrUnsupportedLength, n1)
	}
	if Log2(n2) < 1 {
		return nil, fmt.Errorf("%w: N2=%d must be a power of two ≥ 2", ErrUnsupportedLength, n2)
	}
	col, err := NewPlan(n1, min(64, n1))
	if err != nil {
		return nil, err
	}
	row, err := NewPlan(n2, min(64, n2))
	if err != nil {
		return nil, err
	}
	n := n1 * n2
	return &FourStepPlan{
		N1: n1, N2: n2, N: n,
		col: col, row: row,
		wCol: Twiddles(n1), wRow: Twiddles(n2), wBig: Twiddles(n),
	}, nil
}

// ColPlan returns the N1-point sub-plan the column step runs.
func (p *FourStepPlan) ColPlan() *Plan { return p.col }

// RowPlan returns the N2-point sub-plan the row step runs.
func (p *FourStepPlan) RowPlan() *Plan { return p.row }

// GatherColumns transposes the row-major N1×N2 input into N2 contiguous
// columns: dst[j2·N1+j1] = data[j1·N2+j2]. Both slices must have length
// N (panics wrap ErrLengthMismatch).
func (p *FourStepPlan) GatherColumns(dst, data []complex128) {
	p.checkLen("GatherColumns dst", dst)
	p.checkLen("GatherColumns data", data)
	for j1 := 0; j1 < p.N1; j1++ {
		r := data[j1*p.N2 : (j1+1)*p.N2]
		for j2, v := range r {
			dst[j2*p.N1+j1] = v
		}
	}
}

// ScatterColumns transposes the column buffer back into N1 contiguous
// rows: dst[k1·N2+j2] = buf[j2·N1+k1], the layout the row FFTs consume.
func (p *FourStepPlan) ScatterColumns(dst, buf []complex128) {
	p.checkLen("ScatterColumns dst", dst)
	p.checkLen("ScatterColumns buf", buf)
	for j2 := 0; j2 < p.N2; j2++ {
		c := buf[j2*p.N1 : (j2+1)*p.N1]
		for k1, v := range c {
			dst[k1*p.N2+j2] = v
		}
	}
}

// FinalTranspose writes the row-FFT output into direct-DFT bin order:
// dst[k2·N1+k1] = data[k1·N2+k2].
func (p *FourStepPlan) FinalTranspose(dst, data []complex128) {
	p.checkLen("FinalTranspose dst", dst)
	p.checkLen("FinalTranspose data", data)
	for k1 := 0; k1 < p.N1; k1++ {
		r := data[k1*p.N2 : (k1+1)*p.N2]
		for k2, v := range r {
			dst[k2*p.N1+k1] = v
		}
	}
}

// TwiddleAt returns ω_n^e for e in [0, n) given w = Twiddles(n), which
// stores only the first half-turn: the second half is its negation.
func TwiddleAt(w []complex128, e int) complex128 {
	if e < len(w) {
		return w[e]
	}
	return -w[e-len(w)]
}

// TwiddleScale applies the four-step twiddle segment to one transformed
// column: col[k] *= ω_totalN^{index·k}, with w = Twiddles(totalN) and
// index the column's j2. The exponent is reduced mod totalN, so any
// index is accepted. Coordinator and workers both call exactly this
// function, so a distributed run is bitwise identical to the serial
// reference in step 2.
func TwiddleScale(col, w []complex128, index, totalN int) {
	if len(w) != totalN/2 {
		panic(LengthError("twiddle table", len(w), totalN/2))
	}
	idx := index % totalN
	e := 0
	for k := range col {
		col[k] *= TwiddleAt(w, e)
		e += idx
		if e >= totalN {
			e -= totalN
		}
	}
}

// TwiddleDirect computes ω_n^e = exp(−2πi·e/n) for e in [0, n) without
// a table, bit for bit equal to TwiddleAt(Twiddles(n), e): the first
// half-turn evaluates the same cos/sin expression Twiddles stores, the
// second half is its negation. It exists for out-of-core four-step
// execution, where Twiddles(totalN) — 8·totalN bytes — would not fit
// the memory budget the staging layer is there to enforce.
func TwiddleDirect(e, n int) complex128 {
	half := n / 2
	neg := false
	if e >= half {
		e -= half
		neg = true
	}
	ang := -2 * math.Pi * float64(e) / float64(n)
	w := complex(math.Cos(ang), math.Sin(ang))
	if neg {
		return -w
	}
	return w
}

// TwiddleScaleDirect is TwiddleScale without the table: col[k] *=
// ω_totalN^{index·k} with every factor computed by TwiddleDirect. For
// any (col, index, totalN) it produces bitwise the same result as
// TwiddleScale with w = Twiddles(totalN), so an out-of-core plan using
// it stays bit-identical to the in-core four-step reference.
func TwiddleScaleDirect(col []complex128, index, totalN int) {
	idx := index % totalN
	e := 0
	for k := range col {
		col[k] *= TwiddleDirect(e, totalN)
		e += idx
		if e >= totalN {
			e -= totalN
		}
	}
}

// Transform applies the N-point forward FFT in place via the four-step
// factorization. The output agrees with Plan.Transform bin for bin
// (within floating-point tolerance — the two algorithms order the
// arithmetic differently). It allocates one N-element scratch buffer.
func (p *FourStepPlan) Transform(data []complex128) {
	p.checkLen("data", data)
	buf := make([]complex128, p.N)
	p.GatherColumns(buf, data)
	sc := NewScratch(p.col)
	for j2 := 0; j2 < p.N2; j2++ {
		col := buf[j2*p.N1 : (j2+1)*p.N1]
		p.col.TransformWith(col, p.wCol, sc)
		TwiddleScale(col, p.wBig, j2, p.N)
	}
	p.ScatterColumns(data, buf)
	sc = NewScratch(p.row)
	for k1 := 0; k1 < p.N1; k1++ {
		p.row.TransformWith(data[k1*p.N2:(k1+1)*p.N2], p.wRow, sc)
	}
	p.FinalTranspose(buf, data)
	copy(data, buf)
}

// InverseTransform applies the inverse FFT in place via the conjugation
// identity — the same trick Plan.InverseTransform uses, so
// Transform/InverseTransform round-trip to the input.
func (p *FourStepPlan) InverseTransform(data []complex128) {
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	p.Transform(data)
	inv := 1 / float64(p.N)
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

func (p *FourStepPlan) checkLen(what string, s []complex128) {
	if len(s) != p.N {
		panic(LengthError(what, len(s), p.N))
	}
}
