package fft

// Stockham computes the FFT with the radix-2 Stockham autosort algorithm,
// which interleaves the reordering into the butterfly stages and so needs
// no bit-reversal pass (at the cost of ping-ponging between two buffers).
// The paper's related work (Lloyd, Govindaraju) uses it on GPUs precisely
// because it keeps memory accesses contiguous; it serves here as an
// independent baseline implementation and as the natural counterpoint to
// the Cooley-Tukey + bit-reversal decomposition the paper schedules.
func Stockham(x []complex128) []complex128 {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic("fft: Stockham requires a power-of-two length")
	}
	src := append([]complex128(nil), x...)
	dst := make([]complex128, n)
	if n == 1 {
		return src
	}
	w := Twiddles(n)

	// Stage s transforms blocks of length l = 2^s; reading with stride
	// n/2 and writing contiguously performs the implicit transpose.
	l := 1
	for l < n {
		half := n / 2
		step := n / (2 * l) // twiddle index stride at this stage
		for j := 0; j < l; j++ {
			wj := w[j*step]
			for k := 0; k < half/l; k++ {
				a := src[k*l+j]
				b := src[half+k*l+j] * wj
				dst[2*k*l+j] = a + b
				dst[(2*k+1)*l+j] = a - b
			}
		}
		src, dst = dst, src
		l *= 2
	}
	return src
}
