package fft

// Butterflies applies v radix-2 DIT levels in place to one group buffer
// (length 2^v). tw holds the group's 2^v−1 twiddle values in the
// TaskTwiddleIndices layout (level-major). It returns the flop count.
func Butterflies(buf, tw []complex128, v int) int64 {
	n := len(buf)
	if n != 1<<v {
		panic("fft: group buffer length must be 2^v")
	}
	if len(tw) < n-1 {
		panic("fft: twiddle buffer too small for group")
	}
	off := 0
	for ll := 0; ll < v; ll++ {
		half := 1 << ll
		w := tw[off : off+half]
		off += half
		for k := 0; k < n; k += 2 * half {
			for j := 0; j < half; j++ {
				t := w[j] * buf[k+j+half]
				u := buf[k+j]
				buf[k+j] = u + t
				buf[k+j+half] = u - t
			}
		}
	}
	return int64(v) * int64(n/2) * 10
}

// TaskButterflies applies a task's levels to its gathered buffer: buf has
// P elements (GroupsPerTask groups of GroupSize), tw has TwiddlesPerTask
// values. It returns the flop count.
func TaskButterflies(buf, tw []complex128, v int) int64 {
	gsz := 1 << v
	if len(buf)%gsz != 0 {
		panic("fft: task buffer not a whole number of groups")
	}
	ng := len(buf) / gsz
	var flops int64
	for q := 0; q < ng; q++ {
		flops += Butterflies(buf[q*gsz:(q+1)*gsz], tw[q*(gsz-1):], v)
	}
	return flops
}

// Scratch is a reusable per-worker buffer set for executing tasks. A
// Scratch must not be shared between concurrently executing goroutines;
// give every worker its own (Plan itself is immutable after NewPlan and
// safe for any number of concurrent users).
type Scratch struct {
	Idx   []int64
	TwIdx []int64
	Buf   []complex128
	Tw    []complex128
}

// NewScratch sizes scratch buffers for plan pl.
func NewScratch(pl *Plan) *Scratch {
	return &Scratch{
		Idx:   make([]int64, pl.P),
		TwIdx: make([]int64, pl.P),
		Buf:   make([]complex128, pl.P),
		Tw:    make([]complex128, pl.P),
	}
}

// RunTask executes one task numerically against data and the twiddle
// table w: gather, butterflies, scatter in place. twiddleAt maps a twiddle
// index to its storage position (identity normally; bit-reversal in the
// hash variants). It returns the flop count.
//
// RunTask is safe for concurrent use on the same data array as long as
// every goroutine has its own Scratch and no two concurrent calls name
// tasks of different stages: tasks of one stage touch disjoint element
// sets, so a per-stage barrier is the only synchronization required.
// Package internal/host builds its parallel engine on exactly this
// contract.
func (pl *Plan) RunTask(stage, task int, data, w []complex128, twiddleAt func(int64) int64, sc *Scratch) int64 {
	pl.TaskIndices(stage, task, sc.Idx)
	nt := pl.TaskTwiddleIndices(stage, task, sc.TwIdx)
	for i, g := range sc.Idx {
		sc.Buf[i] = data[g]
	}
	for i := 0; i < nt; i++ {
		idx := sc.TwIdx[i]
		if twiddleAt != nil {
			idx = twiddleAt(idx)
		}
		sc.Tw[i] = w[idx]
	}
	flops := TaskButterflies(sc.Buf[:pl.P], sc.Tw[:nt], pl.Levels(stage))
	for i, g := range sc.Idx {
		data[g] = sc.Buf[i]
	}
	return flops
}

// Transform runs the complete staged FFT sequentially on the host: the
// bit-reversal permutation followed by every stage's tasks in order. It
// validates the plan decomposition itself, independent of any scheduling
// or machine model. w must be Twiddles(pl.N); a data or twiddle slice of
// the wrong length panics with an error wrapping ErrLengthMismatch.
//
// Transform allocates a fresh Scratch per call and is therefore safe to
// call concurrently on distinct data arrays; use TransformWith to amortize
// the scratch across many transforms on one goroutine.
func (pl *Plan) Transform(data, w []complex128) {
	pl.TransformWith(data, w, NewScratch(pl))
}

// TransformWith is Transform with a caller-provided Scratch, for callers
// (worker pools, batch loops) that run many transforms and want to reuse
// the per-goroutine buffers. sc must not be shared with any concurrent
// call.
func (pl *Plan) TransformWith(data, w []complex128, sc *Scratch) {
	if len(data) != pl.N {
		panic(LengthError("data", len(data), pl.N))
	}
	if len(w) != pl.N/2 {
		panic(LengthError("twiddle table", len(w), pl.N/2))
	}
	BitReversePermute(data)
	for stage := 0; stage < pl.NumStages; stage++ {
		for task := 0; task < pl.TasksPerStage; task++ {
			pl.RunTask(stage, task, data, w, nil, sc)
		}
	}
}

// InverseTransform applies the inverse FFT using the same plan via the
// conjugation identity.
func (pl *Plan) InverseTransform(data, w []complex128) {
	pl.InverseTransformWith(data, w, NewScratch(pl))
}

// InverseTransformWith is InverseTransform with a caller-provided
// Scratch — the inverse counterpart of TransformWith, for batch loops
// and worker pools that must not allocate per transform.
func (pl *Plan) InverseTransformWith(data, w []complex128, sc *Scratch) {
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	pl.TransformWith(data, w, sc)
	inv := 1 / float64(pl.N)
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}
