package fft

import "sync"

// The SoA kernel family (KernelSoARadix2 / KernelSoARadix4) runs the
// staged decomposition on split real/imag float64 planes instead of
// interleaved complex128. The layout change is what unlocks SIMD: a
// 4-wide vector load of re[] pulls four butterflies' worth of one
// operand, where the interleaved layout would pull two complex values
// and need a shuffle per load. Input is deinterleaved once per
// transform into a pooled SoAFrame (fused with the bit-reversal
// permutation so it costs no extra pass) and reinterleaved once at the
// end; every stage in between works purely on the planes.
//
// Execution differs from the scalar kernels in one structural way.
// Stage 0 keeps the paper's task shape: each task is a contiguous
// P-element group at offset r = 0, so it runs in place through the
// level codelets with the stage's one shared twiddle set. For stages
// ≥ 1 the butterfly distance is already ≥ P, so instead of gathering
// strided groups (which touches twice the cache lines it would on
// interleaved data) the planes are swept level by level with
// unit-stride loads — the butterfly partner is a contiguous run at
// distance 2^gl — against per-level twiddle tables built once per
// plan (SoATwiddles). Each level sweep (or fused level pair for
// KernelSoARadix4) is one barrier-separated pass of embarrassingly
// parallel butterflies; SoAPasses/SoAPassUnits/SoARunPass expose the
// pass grid so internal/host can shard passes across workers.
//
// Both members dispatch the inner loops to assembly codelets (AVX2 on
// amd64, NEON on arm64) when the CPU supports them, with pure-Go
// fallbacks compiled in under the noasm build tag or chosen at runtime
// when the features are missing. The asm-or-generic decision depends
// only on the pass's butterfly distance and the lane width — never on
// how a pass was partitioned (unit boundaries are lane-aligned by
// construction) — so a fixed kernel is bitwise deterministic under any
// schedule: serial, parallel and batched execution agree bit-for-bit,
// exactly the engine contract the scalar kernels provide. Asm and
// generic builds of the *same* kernel agree to rounding (FMA
// contraction), not bitwise — the parity suite pins ≤1e-9.
//
// The radix-4 fusion rests on the same identity as KernelRadix4, in
// level-table form: level gl+1's table satisfies w[j+m] = −i·w[j]
// (m = 2^gl), because the index step m·2^(LogN−gl−2) is always N/4.
// So a fused pair needs only level gl's m twiddles and the first m of
// level gl+1's — b1 = wa·x1, b3 = wa·x3, p/q/s/t sums, ws = wb·s,
// wt = wb·t, and the −i fold y1 = q + (wt_i, −wt_r), y3 = q − that.

// SoAAccel names the codelet backend the SoA kernels run on in this
// process: "avx2+fma", "neon", or "generic" (noasm build, missing CPU
// features, or an architecture without codelets).
func SoAAccel() string { return soaAccel }

// SoATwiddles holds the split-plane twiddle tables for one Plan:
// stage 0's level-major gathered set (all stage-0 groups share offset
// r = 0, so one P−1-entry set serves every task), and a full
// subsampled table per sweep level gl ∈ [LogP, LogN) — Lvl[gl][j] =
// W_N^(j·2^(LogN−gl−1)) — so level sweeps stream their twiddles
// instead of gathering them. Built lazily by Plan.SoATwiddles and
// cached on the plan; the level tables total ≈ 2N float64s, the price
// of contiguity on the hot sweeps.
type SoATwiddles struct {
	S0Re, S0Im   []float64   // stage-0 gathered twiddles, level-major, len P−1
	LvlRe, LvlIm [][]float64 // per-global-level sweep tables; nil below LogP
}

// SoATwiddles returns the split twiddle tables for pl, building them on
// first use. w must be Twiddles(pl.N) — the same table every other
// entry point of the plan requires.
func (pl *Plan) SoATwiddles(w []complex128) *SoATwiddles {
	pl.soaOnce.Do(func() {
		if len(w) != pl.N/2 {
			panic(LengthError("twiddle table", len(w), pl.N/2))
		}
		st := &SoATwiddles{}
		idx := make([]int64, pl.P)
		n0 := pl.TaskTwiddleIndices(0, 0, idx)
		st.S0Re = make([]float64, n0)
		st.S0Im = make([]float64, n0)
		for i, ix := range idx[:n0] {
			st.S0Re[i] = real(w[ix])
			st.S0Im[i] = imag(w[ix])
		}
		st.LvlRe = make([][]float64, pl.LogN)
		st.LvlIm = make([][]float64, pl.LogN)
		for gl := pl.LogP; gl < pl.LogN; gl++ {
			shift := uint(pl.LogN - gl - 1)
			size := 1 << gl
			tr := make([]float64, size)
			ti := make([]float64, size)
			for j := 0; j < size; j++ {
				v := w[j<<shift]
				tr[j], ti[j] = real(v), imag(v)
			}
			st.LvlRe[gl], st.LvlIm[gl] = tr, ti
		}
		pl.soaTw = st
	})
	return pl.soaTw
}

// SoAFrame is the pooled pair of split planes one transform works in.
type SoAFrame struct{ Re, Im []float64 }

var soaFramePool sync.Pool

// GetSoAFrame returns a frame with n-element planes from the pool.
func GetSoAFrame(n int) *SoAFrame {
	f, _ := soaFramePool.Get().(*SoAFrame)
	if f == nil {
		f = &SoAFrame{}
	}
	if cap(f.Re) < n {
		f.Re = make([]float64, n)
		f.Im = make([]float64, n)
	}
	f.Re, f.Im = f.Re[:n], f.Im[:n]
	return f
}

// Release returns the frame to the pool. The frame must not be used
// after Release.
func (f *SoAFrame) Release() { soaFramePool.Put(f) }

// PackBitrev deinterleaves data[lo:hi] into the planes at bit-reversed
// positions — the SoA transform's combined deinterleave + bit-reversal
// input pass. Writes for disjoint [lo,hi) ranges are disjoint, so
// callers may shard it across workers.
func (f *SoAFrame) PackBitrev(data []complex128, lo, hi, logN int) {
	for i := lo; i < hi; i++ {
		r := BitReverse(int64(i), logN)
		v := data[i]
		f.Re[r], f.Im[r] = real(v), imag(v)
	}
}

// Unpack reinterleaves planes[lo:hi] back into data[lo:hi].
func (f *SoAFrame) Unpack(data []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		data[i] = complex(f.Re[i], f.Im[i])
	}
}

// soaQuantum is the butterfly count of one parallel unit of a sweep
// pass. It is a power of two well above every lane width, so unit
// boundaries always fall on lane-aligned j offsets and the
// asm-or-generic choice cannot depend on the partition.
const soaQuantum = 4096

// SoAPasses returns the number of barrier-separated passes stage needs
// under kern: 1 for stage 0 (independent P-element task codelets),
// otherwise one per level sweep — v for KernelSoARadix2, ⌈v/2⌉ for
// KernelSoARadix4's fused pairs (+ single leftover level if v is odd).
func (pl *Plan) SoAPasses(stage int, kern Kernel) int {
	if stage == 0 {
		return 1
	}
	v := pl.Levels(stage)
	if kern.Concrete() == KernelSoARadix2 {
		return v
	}
	return v/2 + v&1
}

// soaPassShape resolves (stage ≥ 1, pass) to the sweep's base global
// level and whether it is a fused pair.
func (pl *Plan) soaPassShape(stage, pass int, kern Kernel) (gl int, pair bool) {
	l0 := pl.LogP * stage
	v := pl.Levels(stage)
	if kern.Concrete() == KernelSoARadix2 {
		return l0 + pass, false
	}
	if 2*pass+1 < v {
		return l0 + 2*pass, true
	}
	return l0 + v - 1, false // odd leftover level, swept radix-2
}

// soaPassButterflies returns the total butterfly count of a sweep
// pass: N/4 quad-butterflies for a fused pair, N/2 otherwise.
func (pl *Plan) soaPassButterflies(stage, pass int, kern Kernel) int64 {
	if _, pair := pl.soaPassShape(stage, pass, kern); pair {
		return int64(pl.N) / 4
	}
	return int64(pl.N) / 2
}

// SoAPassUnits returns the parallel unit count of (stage, pass):
// TasksPerStage for stage 0, else the pass's butterflies in
// soaQuantum-sized chunks. Units of one pass touch disjoint elements;
// any [lo,hi) partition of them yields bitwise-identical results.
func (pl *Plan) SoAPassUnits(stage, pass int, kern Kernel) int {
	if stage == 0 {
		return pl.TasksPerStage
	}
	nb := pl.soaPassButterflies(stage, pass, kern)
	return int((nb + soaQuantum - 1) / soaQuantum)
}

// SoARunPass executes units [lo,hi) of one pass on the frame's planes.
// Same-pass units touch disjoint elements; passes of a stage (and
// stages) must be barrier-separated, exactly like RunTask's contract.
func (pl *Plan) SoARunPass(stage, pass, lo, hi int, f *SoAFrame, st *SoATwiddles, kern Kernel) {
	if stage == 0 {
		pl.soaStage0(lo, hi, f, st, kern)
		return
	}
	gl, pair := pl.soaPassShape(stage, pass, kern)
	b0 := int64(lo) * soaQuantum
	b1 := int64(hi) * soaQuantum
	if nb := pl.soaPassButterflies(stage, pass, kern); b1 > nb {
		b1 = nb
	}
	if b0 >= b1 {
		return
	}
	if pair {
		pl.soaSweepPair(gl, b0, b1, f, st)
	} else {
		pl.soaSweep2(gl, b0, b1, f, st)
	}
}

// soaStage0 runs stage-0 tasks [lo,hi): contiguous P-element groups at
// offset 0, factored through the level codelets with the shared S0
// twiddles (fused radix-4 base for levels 0–1, then fused pairs for
// KernelSoARadix4 or single levels for KernelSoARadix2).
func (pl *Plan) soaStage0(lo, hi int, f *SoAFrame, st *SoATwiddles, kern Kernel) {
	radix4 := kern.Concrete() != KernelSoARadix2
	v := pl.Levels(0)
	for t := lo; t < hi; t++ {
		a, b := t*pl.P, (t+1)*pl.P
		soaButterflies(f.Re[a:b], f.Im[a:b], st.S0Re, st.S0Im, v, radix4)
	}
}

// soaSweep2 applies global level gl to butterflies [b0,b1) of the
// planes: butterfly b pairs element blk·2^(gl+1)+j with its partner at
// distance 2^gl (blk = b/2^gl, j = b mod 2^gl), twiddle Lvl[gl][j].
// Runs of full blocks collapse into one primitive call.
func (pl *Plan) soaSweep2(gl int, b0, b1 int64, f *SoAFrame, st *SoATwiddles) {
	half := int64(1) << gl
	twr, twi := st.LvlRe[gl], st.LvlIm[gl]
	for b := b0; b < b1; {
		blk, j0 := b/half, b%half
		base := blk*2*half + j0
		if j0 == 0 && b1-b >= half {
			nblk := (b1 - b) / half
			soaBfly2(f.Re[base:], f.Im[base:], twr, twi, int(half), int(half), int(nblk))
			b += nblk * half
			continue
		}
		take := half - j0
		if take > b1-b {
			take = b1 - b
		}
		soaBfly2(f.Re[base:], f.Im[base:], twr[j0:], twi[j0:], int(half), int(take), 1)
		b += take
	}
}

// soaSweepPair applies the fused level pair (gl, gl+1) to quad
// butterflies [b0,b1): quad b spans x0..x3 at distance m = 2^gl from
// base blk·4m+j, with wa = Lvl[gl] and wb = Lvl[gl+1][:m].
func (pl *Plan) soaSweepPair(gl int, b0, b1 int64, f *SoAFrame, st *SoATwiddles) {
	m := int64(1) << gl
	war, wai := st.LvlRe[gl], st.LvlIm[gl]
	wbr, wbi := st.LvlRe[gl+1][:m], st.LvlIm[gl+1][:m]
	for b := b0; b < b1; {
		blk, j0 := b/m, b%m
		base := blk*4*m + j0
		if j0 == 0 && b1-b >= m {
			nblk := (b1 - b) / m
			soaBfly4(f.Re[base:], f.Im[base:], war, wai, wbr, wbi, int(m), int(m), int(nblk))
			b += nblk * m
			continue
		}
		take := m - j0
		if take > b1-b {
			take = b1 - b
		}
		soaBfly4(f.Re[base:], f.Im[base:], war[j0:], wai[j0:], wbr[j0:], wbi[j0:], int(m), int(take), 1)
		b += take
	}
}

// soaButterflies applies a stage-0 group's v levels in place to one
// contiguous group: the fused base pass for levels 0–1, then radix-4
// fused pairs (radix4) or single radix-2 levels. twr/twi hold the
// group's 2^v−1 twiddles in the TaskTwiddleIndices level-major layout.
func soaButterflies(re, im, twr, twi []float64, v int, radix4 bool) {
	if v == 0 {
		return
	}
	n := len(re)
	ll, off := 0, 0
	if v >= 2 {
		soaBase4(re, im, twr[0], twi[0], twr[1], twi[1])
		ll, off = 2, 3
	}
	if radix4 {
		for ; ll+1 < v; ll += 2 {
			m := 1 << ll
			soaBfly4(re, im,
				twr[off:off+m], twi[off:off+m],
				twr[off+m:off+2*m], twi[off+m:off+2*m], m, m, n/(4*m))
			off += 3 * m
		}
	}
	for ; ll < v; ll++ {
		half := 1 << ll
		soaBfly2(re, im, twr[off:off+half], twi[off:off+half], half, half, n/(2*half))
		off += half
	}
}

// soaBfly2 dispatches one radix-2 butterfly run: nblk blocks of stride
// 2·dist starting at re[0]/im[0], cnt butterflies per block (partner
// at +dist, twiddle wr/wi[j]). Asm engages only when dist and cnt are
// lane-aligned — conditions independent of partitioning, since unit
// boundaries are lane-aligned by construction.
func soaBfly2(re, im, wr, wi []float64, dist, cnt, nblk int) {
	if soaHasAsm && dist >= soaLanes && cnt >= soaLanes && cnt%soaLanes == 0 {
		bfly2Asm(&re[0], &im[0], &wr[0], &wi[0], dist, cnt, nblk)
		return
	}
	bfly2Gen(re, im, wr, wi, dist, cnt, nblk)
}

// soaBfly4 dispatches one fused radix-4 run: nblk blocks of stride
// 4·dist, cnt quad-butterflies per block (x0..x3 at distance dist).
func soaBfly4(re, im, war, wai, wbr, wbi []float64, dist, cnt, nblk int) {
	if soaHasAsm && dist >= soaLanes && cnt >= soaLanes && cnt%soaLanes == 0 {
		bfly4Asm(&re[0], &im[0], &war[0], &wai[0], &wbr[0], &wbi[0], dist, cnt, nblk)
		return
	}
	bfly4Gen(re, im, war, wai, wbr, wbi, dist, cnt, nblk)
}

// soaBase4 applies the fused levels-0-and-1 radix-4 pass with scalar
// twiddles w_a = (war,wai), w_b = (wbr,wbi) to every aligned quad.
func soaBase4(re, im []float64, war, wai, wbr, wbi float64) {
	n := len(re)
	if soaHasBase4 && n >= soaBase4MinN {
		q := n &^ (soaBase4MinN - 1)
		tw := [4]float64{war, wai, wbr, wbi}
		base4Asm(&re[0], &im[0], q, &tw[0])
		if q == n {
			return
		}
		re, im = re[q:], im[q:]
	}
	base4Gen(re, im, war, wai, wbr, wbi)
}

// bfly2Gen is the portable radix-2 run (also the noasm and small-size
// path; see soa_amd64.s / soa_arm64.s for the vector twins).
func bfly2Gen(re, im, wr, wi []float64, dist, cnt, nblk int) {
	for blk := 0; blk < nblk; blk++ {
		base := blk * 2 * dist
		for j := 0; j < cnt; j++ {
			a, b := base+j, base+j+dist
			tr := wr[j]*re[b] - wi[j]*im[b]
			ti := wr[j]*im[b] + wi[j]*re[b]
			re[b], im[b] = re[a]-tr, im[a]-ti
			re[a], im[a] = re[a]+tr, im[a]+ti
		}
	}
}

// bfly4Gen is the portable fused level-pair run; see the package
// comment for the dataflow and the −i fold.
func bfly4Gen(re, im, war, wai, wbr, wbi []float64, dist, cnt, nblk int) {
	for blk := 0; blk < nblk; blk++ {
		base := blk * 4 * dist
		for j := 0; j < cnt; j++ {
			i0, i1, i2, i3 := base+j, base+j+dist, base+j+2*dist, base+j+3*dist
			ar, ai := war[j], wai[j]
			br, bi := wbr[j], wbi[j]
			b1r := ar*re[i1] - ai*im[i1]
			b1i := ar*im[i1] + ai*re[i1]
			b3r := ar*re[i3] - ai*im[i3]
			b3i := ar*im[i3] + ai*re[i3]
			pr, pi := re[i0]+b1r, im[i0]+b1i
			qr, qi := re[i0]-b1r, im[i0]-b1i
			sr, si := re[i2]+b3r, im[i2]+b3i
			tr, ti := re[i2]-b3r, im[i2]-b3i
			wsr := br*sr - bi*si
			wsi := br*si + bi*sr
			wtr := br*tr - bi*ti
			wti := br*ti + bi*tr
			re[i0], im[i0] = pr+wsr, pi+wsi
			re[i2], im[i2] = pr-wsr, pi-wsi
			re[i1], im[i1] = qr+wti, qi-wtr
			re[i3], im[i3] = qr-wti, qi+wtr
		}
	}
}

// base4Gen is bfly4Gen specialized to dist = 1 with broadcast twiddles
// — the first two levels of every stage-0 group.
func base4Gen(re, im []float64, war, wai, wbr, wbi float64) {
	n := len(re)
	for k := 0; k < n; k += 4 {
		b1r := war*re[k+1] - wai*im[k+1]
		b1i := war*im[k+1] + wai*re[k+1]
		b3r := war*re[k+3] - wai*im[k+3]
		b3i := war*im[k+3] + wai*re[k+3]
		pr, pi := re[k]+b1r, im[k]+b1i
		qr, qi := re[k]-b1r, im[k]-b1i
		sr, si := re[k+2]+b3r, im[k+2]+b3i
		tr, ti := re[k+2]-b3r, im[k+2]-b3i
		wsr := wbr*sr - wbi*si
		wsi := wbr*si + wbi*sr
		wtr := wbr*tr - wbi*ti
		wti := wbr*ti + wbi*tr
		re[k], im[k] = pr+wsr, pi+wsi
		re[k+2], im[k+2] = pr-wsr, pi-wsi
		re[k+1], im[k+1] = qr+wti, qi-wtr
		re[k+3], im[k+3] = qr-wti, qi+wtr
	}
}

// TransformSoA runs the complete staged FFT serially through the SoA
// pipeline: pooled pack+bitrev, every stage's passes on the planes,
// unpack. Zero steady-state allocations (the frame comes from a
// sync.Pool; the split twiddle tables are built once per plan).
func (pl *Plan) TransformSoA(data, w []complex128, kern Kernel) {
	if len(data) != pl.N {
		panic(LengthError("data", len(data), pl.N))
	}
	if len(w) != pl.N/2 {
		panic(LengthError("twiddle table", len(w), pl.N/2))
	}
	st := pl.SoATwiddles(w)
	f := GetSoAFrame(pl.N)
	f.PackBitrev(data, 0, pl.N, pl.LogN)
	for stage := 0; stage < pl.NumStages; stage++ {
		for pass, np := 0, pl.SoAPasses(stage, kern); pass < np; pass++ {
			pl.SoARunPass(stage, pass, 0, pl.SoAPassUnits(stage, pass, kern), f, st, kern)
		}
	}
	f.Unpack(data, 0, pl.N)
	f.Release()
}
