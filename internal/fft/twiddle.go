// Package fft implements the radix-2 decimation-in-time FFT decomposition
// used by the paper: a bit-reversal permutation followed by ⌈log2(N)/log2(P)⌉
// stages of P-point butterfly tasks (P = 64 in the paper's sweet spot).
//
// The package is pure math — it knows element indices, twiddle indices,
// task shapes and dependence structure, but nothing about machines or
// scheduling. Packages core and codelet assemble it onto the simulated
// Cyclops-64.
package fft

import (
	"math"
	"math/bits"
)

// Twiddles returns the forward twiddle table W[i] = exp(-2πi·i/n) for
// i in [0, n/2). n must be a power of two ≥ 2.
func Twiddles(n int) []complex128 {
	if n < 2 || n&(n-1) != 0 {
		panic("fft: table size must be a power of two ≥ 2")
	}
	w := make([]complex128, n/2)
	for i := range w {
		ang := -2 * math.Pi * float64(i) / float64(n)
		w[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	return w
}

// TwiddlesAny returns the full forward twiddle table W[i] = exp(-2πi·i/n)
// for i in [0, n), any n ≥ 1 — the general-modulus companion to Twiddles
// for four-step scaling when totalN is not a power of two (TwiddleScaleAny).
func TwiddlesAny(n int) []complex128 {
	if n < 1 {
		panic("fft: table size must be ≥ 1")
	}
	w := make([]complex128, n)
	for i := range w {
		ang := -2 * math.Pi * float64(i) / float64(n)
		w[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	return w
}

// TwiddleScaleAny is TwiddleScale for any modulus: col[k] *= ω_totalN^{index·k}
// with w = TwiddlesAny(totalN). The exponent is reduced mod totalN, so
// any index is accepted.
func TwiddleScaleAny(col, w []complex128, index, totalN int) {
	if len(w) != totalN {
		panic(LengthError("twiddle table", len(w), totalN))
	}
	idx := index % totalN
	if idx < 0 {
		idx += totalN
	}
	e := 0
	for k := range col {
		col[k] *= w[e]
		e += idx
		if e >= totalN {
			e -= totalN
		}
	}
}

// BitReverse reverses the low `width` bits of x. It is the hash function
// the paper uses to randomize twiddle addresses across DRAM banks
// (section IV-B); C64 exposes it as a hardware instruction.
func BitReverse(x int64, width int) int64 {
	if width < 0 || width > 63 {
		panic("fft: bit width out of range")
	}
	if width == 0 {
		return 0
	}
	return int64(bits.Reverse64(uint64(x)) >> (64 - uint(width)))
}

// HashTwiddles returns the bit-reversal-permuted copy of w used by the
// hash variants: out[BitReverse(i)] = w[i]. len(w) must be a power of two.
func HashTwiddles(w []complex128) []complex128 {
	n := len(w)
	if n == 0 || n&(n-1) != 0 {
		panic("fft: twiddle table length must be a power of two")
	}
	width := bits.TrailingZeros(uint(n))
	out := make([]complex128, n)
	for i := range w {
		out[BitReverse(int64(i), width)] = w[i]
	}
	return out
}

// BitReversePermute reorders data in place so that element i moves to
// position BitReverse(i). len(data) must be a power of two.
func BitReversePermute(data []complex128) {
	n := len(data)
	if n == 0 || n&(n-1) != 0 {
		panic("fft: data length must be a power of two")
	}
	width := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		j := int(BitReverse(int64(i), width))
		if j > i {
			data[i], data[j] = data[j], data[i]
		}
	}
}

// Log2 returns log2(n) for a power of two n, or -1 otherwise.
func Log2(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		return -1
	}
	return bits.TrailingZeros(uint(n))
}
