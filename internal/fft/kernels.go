package fft

import (
	"fmt"
	"strings"
)

// Kernel selects the butterfly factorization used inside each staged
// task. All kernels compute the identical DFT over the identical staged
// task decomposition (same Plan, same TaskIndices, same per-stage
// barrier contract) — they differ only in how a task factors its
// 2^v-point group DFTs, trading twiddle loads for butterfly structure:
//
//	KernelRadix2     — the paper's level-by-level radix-2 DIT (PR 1 path,
//	                   bit-for-bit unchanged).
//	KernelRadix4     — fused level pairs as 3-multiply radix-4
//	                   butterflies, with one radix-2 fix-up level first
//	                   when v is odd; ~25% fewer complex multiplies and
//	                   twiddle loads than radix-2.
//	KernelSplitRadix — the split-radix (2/4) recursion, the lowest known
//	                   flop count for power-of-two DFTs.
//	KernelSoARadix2  — radix-2 levels on split real/imag (SoA) planes
//	                   with SIMD codelets (AVX2/NEON) when available.
//	KernelSoARadix4  — the SoA layout with fused radix-4 level pairs;
//	                   see soa.go for layout and dispatch rules.
//
// KernelAuto is not an algorithm: it asks whichever layer can measure
// (the facade autotuner, package tune) to pick a concrete kernel. Layers
// below that — this package and internal/host — resolve Auto to
// KernelRadix2, the conservative paper baseline.
//
// Every kernel is a pure sequential computation per task, so the host
// engine's guarantee holds per kernel: for a fixed kernel, serial,
// parallel and batched execution are bitwise identical. Outputs of
// *different* kernels agree to rounding (≲1e-12 relative for the sizes
// here), not bitwise — they are genuinely different floating-point
// factorizations of the same DFT.
type Kernel uint8

const (
	// KernelAuto defers the choice to an autotuning layer; math layers
	// treat it as KernelRadix2.
	KernelAuto Kernel = iota
	// KernelRadix2 is the paper's staged radix-2 DIT path.
	KernelRadix2
	// KernelRadix4 fuses butterfly level pairs into 3-multiply radix-4
	// butterflies (radix-2 fix-up first when a task has an odd number of
	// levels).
	KernelRadix4
	// KernelSplitRadix applies the split-radix 2/4 recursion inside each
	// task group.
	KernelSplitRadix
	// KernelSoARadix2 runs the staged decomposition on split real/imag
	// planes (see soa.go): one pooled deinterleave+bit-reversal pass,
	// SIMD-dispatched radix-2 level codelets (fused radix-4 base for
	// levels 0–1), one reinterleave pass.
	KernelSoARadix2
	// KernelSoARadix4 is the SoA layout with the remaining level pairs
	// fused into 3-multiply radix-4 butterflies — the highest-throughput
	// kernel on AVX2/NEON hardware.
	KernelSoARadix4

	numKernels
)

// ConcreteKernels lists the executable kernels (excluding KernelAuto) in
// a stable order — the candidate set the autotuner races.
func ConcreteKernels() []Kernel {
	return []Kernel{KernelRadix2, KernelRadix4, KernelSplitRadix, KernelSoARadix2, KernelSoARadix4}
}

// SoA reports whether k (after Auto resolution) is one of the
// split-plane kernels, which execute through the SoA pipeline
// (TransformSoA / SoARunPass) rather than per-task RunTaskKernel.
func (k Kernel) SoA() bool {
	c := k.Concrete()
	return c == KernelSoARadix2 || c == KernelSoARadix4
}

// Concrete resolves KernelAuto to the package default (KernelRadix2) and
// returns any concrete kernel unchanged.
func (k Kernel) Concrete() Kernel {
	if k == KernelAuto {
		return KernelRadix2
	}
	return k
}

// Valid reports whether k names a known kernel (including KernelAuto).
func (k Kernel) Valid() bool { return k < numKernels }

func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelRadix2:
		return "radix2"
	case KernelRadix4:
		return "radix4"
	case KernelSplitRadix:
		return "splitradix"
	case KernelSoARadix2:
		return "soa2"
	case KernelSoARadix4:
		return "soa4"
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// ParseKernel maps the String() names (case-insensitive, plus the
// "split-radix" spelling) back to Kernel values.
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return KernelAuto, nil
	case "radix2", "radix-2", "r2":
		return KernelRadix2, nil
	case "radix4", "radix-4", "r4":
		return KernelRadix4, nil
	case "splitradix", "split-radix", "sr":
		return KernelSplitRadix, nil
	case "soa2", "soa-radix2":
		return KernelSoARadix2, nil
	case "soa4", "soa-radix4", "soa":
		return KernelSoARadix4, nil
	}
	return KernelAuto, fmt.Errorf("fft: unknown kernel %q (want auto, radix2, radix4, splitradix, soa2 or soa4)", s)
}

// The higher-radix kernels rest on one identity. A group of stage
// `stage` gathers elements base + k·s (s = Stride, k in [0, 2^v)) and
// applies global butterfly levels L0..L0+v−1, L0 = log2(P)·stage. Peeling
// the group's external structure out of the level twiddles
// ω = W_N[(r + j·s)·2^(LogN−L−1)] (r = group offset = g mod s) leaves
//
//	group(L0, r, s) = DFT_{2^v} ∘ diag(d)     on the gathered buffer,
//
// where DFT_{2^v} is a *standalone* 2^v-point DIT FFT on bit-reversed
// input whose twiddles are W_{2^v}^k = W_N[k·2^(LogN−v)], and the
// premultiply diagonal is d[j] = W_N[(r·bitrev_v(j))·2^(LogN−L0−v)]
// (d[0] = 1; r = 0 makes every d[j] = 1). That standalone DFT can then
// be factored by any algorithm — radix-4 and split-radix below — while
// the staged decomposition, task shapes and memory-balance story stay
// exactly the paper's.

// premultiplyGroup applies the diagonal d[j] above in place. Indices can
// reach [N/2, N); the table only stores half, so those fold through
// W_N^(i+N/2) = −W_N^i. r must be the group offset (caller skips r==0).
func premultiplyGroup(buf, w []complex128, r int64, pshift uint, v int) {
	half := int64(len(w))
	for j := 1; j < len(buf); j++ {
		idx := (r * BitReverse(int64(j), v)) << pshift
		if idx < half {
			buf[j] *= w[idx]
		} else {
			buf[j] *= -w[idx-half]
		}
	}
}

// radix4DIT runs a standalone 2^v-point DIT FFT on buf (bit-reversed
// input order) using 3-multiply radix-4 butterflies on fused level
// pairs; odd v gets one twiddle-free radix-2 level first. Twiddles are
// read from the full table as W_{2^v}^k = w[k<<shift].
func radix4DIT(buf, w []complex128, shift uint, v int) {
	n := len(buf)
	half := len(w)
	ll := 0
	if v&1 == 1 {
		// Level 0 twiddle is W^0 = 1: pure butterfly sweep.
		for k := 0; k < n; k += 2 {
			u, t := buf[k], buf[k+1]
			buf[k], buf[k+1] = u+t, u-t
		}
		ll = 1
	}
	for ; ll < v; ll += 2 {
		m := 1 << ll
		s1 := uint(v-ll-2) + shift // W_{4m}^j stride in the full table
		for base := 0; base < n; base += 4 * m {
			// j = 0: all three twiddles are 1.
			a, b := buf[base], buf[base+m]
			c, d := buf[base+2*m], buf[base+3*m]
			e, f := a+b, a-b
			g, h := c+d, c-d
			buf[base], buf[base+2*m] = e+g, e-g
			buf[base+m] = f + complex(imag(h), -real(h))   // f − i·h
			buf[base+3*m] = f + complex(-imag(h), real(h)) // f + i·h
			for j := 1; j < m; j++ {
				u1 := w[j<<s1]
				u2 := w[j<<(s1+1)]
				var u3 complex128
				if i3 := 3 * j << s1; i3 < half {
					u3 = w[i3]
				} else {
					u3 = -w[i3-half] // W^(i+N/2) = −W^i
				}
				a := buf[base+j]
				b := u2 * buf[base+j+m]
				c := u1 * buf[base+j+2*m]
				d := u3 * buf[base+j+3*m]
				e, f := a+b, a-b
				g, h := c+d, c-d
				buf[base+j], buf[base+j+2*m] = e+g, e-g
				buf[base+j+m] = f + complex(imag(h), -real(h))
				buf[base+j+3*m] = f + complex(-imag(h), real(h))
			}
		}
	}
}

// splitRadixDIT runs a standalone 2^v-point split-radix DIT FFT on buf
// (bit-reversed input order). In that order the recursion is on
// contiguous slices: buf[0:n/2] holds the even-index samples, then the
// index≡1 (mod 4) quarter, then the index≡3 (mod 4) quarter. Twiddles
// are read as W_{2^v}^k = w[k<<shift].
func splitRadixDIT(buf, w []complex128, shift uint, v int) {
	n := len(buf)
	switch v {
	case 0:
		return
	case 1:
		u, t := buf[0], buf[1]
		buf[0], buf[1] = u+t, u-t
		return
	}
	q := n / 4
	splitRadixDIT(buf[:2*q], w, shift+1, v-1)
	splitRadixDIT(buf[2*q:3*q], w, shift+2, v-2)
	splitRadixDIT(buf[3*q:], w, shift+2, v-2)
	half := len(w)
	// k = 0: w1 = w3 = 1.
	{
		t1 := buf[2*q] + buf[3*q]
		t2 := buf[2*q] - buf[3*q]
		u0, u1 := buf[0], buf[q]
		buf[0], buf[2*q] = u0+t1, u0-t1
		buf[q] = u1 + complex(imag(t2), -real(t2))   // u1 − i·t2
		buf[3*q] = u1 + complex(-imag(t2), real(t2)) // u1 + i·t2
	}
	for k := 1; k < q; k++ {
		w1 := w[k<<shift]
		var w3 complex128
		if i3 := 3 * k << shift; i3 < half {
			w3 = w[i3]
		} else {
			w3 = -w[i3-half]
		}
		a := w1 * buf[2*q+k]
		b := w3 * buf[3*q+k]
		t1, t2 := a+b, a-b
		u0, u1 := buf[k], buf[q+k]
		buf[k], buf[2*q+k] = u0+t1, u0-t1
		buf[q+k] = u1 + complex(imag(t2), -real(t2))
		buf[3*q+k] = u1 + complex(-imag(t2), real(t2))
	}
}

// runGroupKernel factors one gathered group buffer with the chosen
// concrete kernel. kern must not be Auto or Radix2 (those route through
// the legacy RunTask path before reaching here).
func runGroupKernel(buf, w []complex128, cshift uint, v int, kern Kernel) {
	switch kern {
	case KernelRadix4:
		radix4DIT(buf, w, cshift, v)
	case KernelSplitRadix:
		splitRadixDIT(buf, w, cshift, v)
	default:
		panic(fmt.Sprintf("fft: runGroupKernel on %v", kern))
	}
}

// RunTaskKernel is RunTask with a selectable butterfly kernel.
// KernelAuto and KernelRadix2 delegate to RunTask (bit-for-bit the PR 1
// path); KernelRadix4 and KernelSplitRadix gather each group, fold the
// stage twiddles in with premultiplyGroup, and run the standalone
// codelet. Stage 0 groups are contiguous, offset-0 slices, so they run
// in place with no gather, scatter or premultiply at all.
//
// The concurrency contract is RunTask's: same-stage tasks touch disjoint
// elements, every goroutine needs its own Scratch, and a fixed kernel is
// bitwise deterministic under any task schedule. It returns the nominal
// radix-2 flop count (TaskFlops) so GFLOPS accounting stays comparable
// across kernels, per the standard 5·N·log2(N) convention.
func (pl *Plan) RunTaskKernel(stage, task int, data, w []complex128, kern Kernel, sc *Scratch) int64 {
	kern = kern.Concrete()
	if kern == KernelRadix2 {
		return pl.RunTask(stage, task, data, w, nil, sc)
	}
	if kern.SoA() {
		// The SoA family works on split planes, not on the interleaved
		// data array; pass execution goes through SoARunPass.
		panic(fmt.Sprintf("fft: RunTaskKernel does not support %v (use SoARunPass)", kern))
	}
	pl.checkTask(stage, task)
	v := pl.Levels(stage)
	gsz := int64(pl.GroupSize(stage))
	s := pl.Stride(stage)
	gpt := pl.GroupsPerTask(stage)
	cshift := uint(pl.LogN - v)                     // codelet: W_{2^v}^k = w[k<<cshift]
	pshift := uint(pl.LogN - pl.LogP*stage - v)     // premultiply: see identity above
	for q := 0; q < gpt; q++ {
		g := int64(task)*int64(gpt) + int64(q)
		if s == 1 {
			// Stage 0: group g is data[g·gsz:(g+1)·gsz], offset r = 0.
			runGroupKernel(data[g*gsz:(g+1)*gsz], w, cshift, v, kern)
			continue
		}
		blk, r := g/s, g%s
		base := blk*s*gsz + r
		grp := sc.Buf[:gsz]
		for k := int64(0); k < gsz; k++ {
			grp[k] = data[base+k*s]
		}
		if r != 0 {
			premultiplyGroup(grp, w, r, pshift, v)
		}
		runGroupKernel(grp, w, cshift, v, kern)
		for k := int64(0); k < gsz; k++ {
			data[base+k*s] = grp[k]
		}
	}
	return pl.TaskFlops(stage)
}

// TransformKernel is Transform with a selectable butterfly kernel.
// KernelAuto and KernelRadix2 are bit-for-bit Transform.
func (pl *Plan) TransformKernel(data, w []complex128, kern Kernel) {
	pl.TransformKernelWith(data, w, kern, NewScratch(pl))
}

// TransformKernelWith is TransformKernel with a caller-provided Scratch
// (same reuse contract as TransformWith).
func (pl *Plan) TransformKernelWith(data, w []complex128, kern Kernel, sc *Scratch) {
	if kern.Concrete() == KernelRadix2 {
		pl.TransformWith(data, w, sc)
		return
	}
	if kern.SoA() {
		// The SoA pipeline brings its own pooled split-plane scratch;
		// sc is unused.
		pl.TransformSoA(data, w, kern)
		return
	}
	if len(data) != pl.N {
		panic(LengthError("data", len(data), pl.N))
	}
	if len(w) != pl.N/2 {
		panic(LengthError("twiddle table", len(w), pl.N/2))
	}
	BitReversePermute(data)
	for stage := 0; stage < pl.NumStages; stage++ {
		for task := 0; task < pl.TasksPerStage; task++ {
			pl.RunTaskKernel(stage, task, data, w, kern, sc)
		}
	}
}

// InverseTransformKernel is InverseTransform with a selectable kernel.
func (pl *Plan) InverseTransformKernel(data, w []complex128, kern Kernel) {
	pl.InverseTransformKernelWith(data, w, kern, NewScratch(pl))
}

// InverseTransformKernelWith applies the inverse FFT with the chosen
// kernel via the same conjugation identity as InverseTransformWith.
func (pl *Plan) InverseTransformKernelWith(data, w []complex128, kern Kernel, sc *Scratch) {
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	pl.TransformKernelWith(data, w, kern, sc)
	inv := 1 / float64(pl.N)
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

// TransformKernelWith is TransformWith with a selectable butterfly
// kernel for the half transform; the pack/split passes are kernel-
// independent O(N) sweeps.
func (rp *RealPlan) TransformKernelWith(dst []complex128, src []float64, kern Kernel, sc *Scratch) {
	rp.Pack(dst, src)
	rp.Half.TransformKernelWith(dst[:rp.N/2], rp.WHalf, kern, sc)
	rp.Unpack(dst)
}

// InverseKernelWith is InverseWith with a selectable butterfly kernel
// for the half transform.
func (rp *RealPlan) InverseKernelWith(dst []float64, src, work []complex128, kern Kernel, sc *Scratch) {
	rp.PreInverse(work, src)
	rp.Half.InverseTransformKernelWith(work, rp.WHalf, kern, sc)
	rp.PostInverse(dst, work)
}

// TransformKernel is Plan2D.Transform with a selectable butterfly kernel
// applied to both the row and column passes.
func (p *Plan2D) TransformKernel(data []complex128, kern Kernel) {
	if len(data) != p.Rows*p.Cols {
		panic(LengthError("2-D data", len(data), p.Rows*p.Cols))
	}
	rsc := NewScratch(p.RowPlan)
	for r := 0; r < p.Rows; r++ {
		p.RowPlan.TransformKernelWith(data[r*p.Cols:(r+1)*p.Cols], p.WRow, kern, rsc)
	}
	csc := NewScratch(p.ColPlan)
	col := make([]complex128, p.Rows)
	for c := 0; c < p.Cols; c++ {
		for r := 0; r < p.Rows; r++ {
			col[r] = data[r*p.Cols+c]
		}
		p.ColPlan.TransformKernelWith(col, p.WCol, kern, csc)
		for r := 0; r < p.Rows; r++ {
			data[r*p.Cols+c] = col[r]
		}
	}
}

// InverseTransformKernel is Plan2D.InverseTransform with a selectable
// butterfly kernel.
func (p *Plan2D) InverseTransformKernel(data []complex128, kern Kernel) {
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	p.TransformKernel(data, kern)
	inv := 1 / float64(p.Rows*p.Cols)
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}
