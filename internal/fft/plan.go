package fft

import (
	"fmt"
	"sync"
)

// Plan describes the staged P-point-task decomposition of an N-point
// radix-2 DIT FFT (paper section IV-A). After a bit-reversal permutation
// the log2(N) butterfly levels are grouped into stages of log2(P) levels;
// every stage consists of N/P independent tasks, each of which loads P
// data elements and up to P-1 twiddle factors, applies its levels, and
// stores the P elements back in place.
//
// If log2(N) is not a multiple of log2(P) the final stage applies only the
// remaining v = log2(N) mod log2(P) levels. Its tasks then process P/2^v
// independent 2^v-element groups each, so there are still N/P tasks — the
// generalization the paper sketches with FFT_last_stage_kernel.
type Plan struct {
	N    int // transform length (power of two)
	LogN int
	P    int // elements per task (power of two, 2 ≤ P ≤ N)
	LogP int

	NumStages     int
	TasksPerStage int

	// Lazily-built split-plane twiddle tables for the SoA kernel family
	// (see soa.go). Guarded by soaOnce so Plan stays safe for concurrent
	// use after NewPlan.
	soaOnce sync.Once
	soaTw   *SoATwiddles
}

// NewPlan validates n and p and returns the stage decomposition. The
// returned errors wrap ErrUnsupportedLength or ErrBadTaskSize.
func NewPlan(n, p int) (*Plan, error) {
	logN, logP := Log2(n), Log2(p)
	if logN < 0 {
		return nil, fmt.Errorf("%w: N=%d must be a power of two", ErrUnsupportedLength, n)
	}
	if logP < 1 {
		return nil, fmt.Errorf("%w: P=%d must be a power of two ≥ 2", ErrBadTaskSize, p)
	}
	if p > n {
		return nil, fmt.Errorf("%w: P=%d exceeds N=%d", ErrBadTaskSize, p, n)
	}
	stages := (logN + logP - 1) / logP
	return &Plan{
		N: n, LogN: logN, P: p, LogP: logP,
		NumStages:     stages,
		TasksPerStage: n / p,
	}, nil
}

// Levels returns the number of butterfly levels stage applies: log2(P)
// for all but possibly the last stage.
func (pl *Plan) Levels(stage int) int {
	pl.checkStage(stage)
	if stage == pl.NumStages-1 {
		if rem := pl.LogN % pl.LogP; rem != 0 {
			return rem
		}
	}
	return pl.LogP
}

// GroupSize returns 2^Levels(stage): the span of one independent butterfly
// group inside a task of this stage.
func (pl *Plan) GroupSize(stage int) int { return 1 << pl.Levels(stage) }

// GroupsPerTask returns how many independent groups one task of this
// stage processes (1 except in an irregular final stage).
func (pl *Plan) GroupsPerTask(stage int) int { return pl.P / pl.GroupSize(stage) }

// Stride returns the element stride between consecutive points of a group
// at this stage: 2^(log2(P)·stage).
func (pl *Plan) Stride(stage int) int64 {
	pl.checkStage(stage)
	return int64(1) << (pl.LogP * stage)
}

// TwiddlesPerTask returns the number of distinct twiddle factors a task of
// this stage loads: GroupsPerTask × (GroupSize−1), which is P−1 for
// regular stages — the paper's "63 twiddle factors" for P=64.
func (pl *Plan) TwiddlesPerTask(stage int) int {
	return pl.GroupsPerTask(stage) * (pl.GroupSize(stage) - 1)
}

// TotalTasks returns the number of butterfly tasks over all stages.
func (pl *Plan) TotalTasks() int { return pl.NumStages * pl.TasksPerStage }

// TaskFlops returns the floating-point operations one task of this stage
// performs: 10 flops per butterfly (complex multiply + add + subtract),
// P/2 butterflies per level.
func (pl *Plan) TaskFlops(stage int) int64 {
	return int64(pl.Levels(stage)) * int64(pl.P/2) * 10
}

// TotalFlops returns 5·N·log2(N), the paper's flop-count convention for
// the GFLOPS metric (equation 1).
func (pl *Plan) TotalFlops() int64 {
	return 5 * int64(pl.N) * int64(pl.LogN)
}

func (pl *Plan) checkStage(stage int) {
	if stage < 0 || stage >= pl.NumStages {
		panic(fmt.Sprintf("fft: stage %d out of range [0,%d)", stage, pl.NumStages))
	}
}

func (pl *Plan) checkTask(stage, task int) {
	pl.checkStage(stage)
	if task < 0 || task >= pl.TasksPerStage {
		panic(fmt.Sprintf("fft: task %d out of range [0,%d)", task, pl.TasksPerStage))
	}
}

// TaskIndices fills out (length P) with the global element indices a task
// touches, ordered group-major: group q occupies out[q·gsz:(q+1)·gsz] and
// holds elements base(q) + k·Stride for k in [0, gsz).
//
// For regular stages this reduces to the paper's formula
// D[P^{s+1}·⌊i/P^s⌋ + (i mod P^s) + k·P^s].
func (pl *Plan) TaskIndices(stage, task int, out []int64) {
	pl.checkTask(stage, task)
	if len(out) != pl.P {
		panic("fft: TaskIndices buffer must have P elements")
	}
	s := pl.Stride(stage)
	gsz := int64(pl.GroupSize(stage))
	gpt := pl.GroupsPerTask(stage)
	for q := 0; q < gpt; q++ {
		g := int64(task)*int64(gpt) + int64(q)
		blk, off := g/s, g%s
		base := blk*s*gsz + off
		for k := int64(0); k < gsz; k++ {
			out[int64(q)*gsz+k] = base + k*s
		}
	}
}

// TaskOf returns the task of the given stage that covers global element
// index g. It is the exact inverse of TaskIndices and the basis of the
// dependence-graph construction.
func (pl *Plan) TaskOf(stage int, g int64) int {
	pl.checkStage(stage)
	if g < 0 || g >= int64(pl.N) {
		panic(fmt.Sprintf("fft: element index %d out of range", g))
	}
	s := pl.Stride(stage)
	gsz := int64(pl.GroupSize(stage))
	gpt := int64(pl.GroupsPerTask(stage))
	off := g % s
	rest := g / s
	blk := rest / gsz
	group := blk*s + off
	return int(group / gpt)
}

// TaskTwiddleIndices fills out with the twiddle-table indices the task
// loads, laid out to match TaskButterflies: for each group, level 0's one
// index, then level 1's two, up to level v−1's 2^(v−1). It returns the
// count written (TwiddlesPerTask).
//
// The index of the j-th butterfly of global level L is
// (r + j·Stride)·2^(LogN−L−1) with r the group's offset — the paper's
// ω_{lm} = W[(m mod 2^l)·2^(log2 N − l − 1)].
func (pl *Plan) TaskTwiddleIndices(stage, task int, out []int64) int {
	pl.checkTask(stage, task)
	v := pl.Levels(stage)
	s := pl.Stride(stage)
	gpt := pl.GroupsPerTask(stage)
	need := pl.TwiddlesPerTask(stage)
	if len(out) < need {
		panic("fft: twiddle buffer too small")
	}
	pos := 0
	for q := 0; q < gpt; q++ {
		g := int64(task)*int64(gpt) + int64(q)
		r := g % s
		for ll := 0; ll < v; ll++ {
			gl := pl.LogP*stage + ll // global level
			shift := uint(pl.LogN - gl - 1)
			for j := int64(0); j < int64(1)<<ll; j++ {
				out[pos] = (r + j*s) << shift
				pos++
			}
		}
	}
	return pos
}
