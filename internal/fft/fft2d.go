package fft

import "fmt"

// Plan2D decomposes a rows×cols 2-D FFT into row transforms followed by
// column transforms, each using the staged P-point-task plan. This is the
// row-column method the C64 line of work (Chen et al.) used for 2-D FFT;
// the paper's scheduling applies to each 1-D pass.
// A Plan2D is immutable after NewPlan2D: the twiddle tables WRow and WCol
// are computed once and never written again, so one plan may serve any
// number of concurrent Transform calls on distinct data arrays (the
// per-call column buffer and scratch are the only mutable state).
type Plan2D struct {
	Rows, Cols int
	RowPlan    *Plan
	ColPlan    *Plan
	// WRow and WCol are the per-dimension twiddle tables, Twiddles(Cols)
	// and Twiddles(Rows). Shared read-only state — callers must not
	// mutate them.
	WRow []complex128
	WCol []complex128
}

// NewPlan2D validates the shape and builds per-dimension plans. Task size
// is clamped to each dimension. The returned errors wrap
// ErrUnsupportedLength or ErrBadTaskSize.
func NewPlan2D(rows, cols, taskSize int) (*Plan2D, error) {
	if Log2(rows) < 1 || Log2(cols) < 1 {
		return nil, fmt.Errorf("%w: 2-D shape %dx%d must be powers of two ≥ 2", ErrUnsupportedLength, rows, cols)
	}
	rp, err := NewPlan(cols, min(taskSize, cols))
	if err != nil {
		return nil, err
	}
	cp, err := NewPlan(rows, min(taskSize, rows))
	if err != nil {
		return nil, err
	}
	return &Plan2D{
		Rows: rows, Cols: cols, RowPlan: rp, ColPlan: cp,
		WRow: Twiddles(cols), WCol: Twiddles(rows),
	}, nil
}

// Transform applies the 2-D FFT in place to data in row-major order.
// It panics with an error wrapping ErrLengthMismatch if len(data) is
// not Rows×Cols.
func (p *Plan2D) Transform(data []complex128) {
	if len(data) != p.Rows*p.Cols {
		panic(LengthError("2-D data", len(data), p.Rows*p.Cols))
	}
	// Row pass.
	rsc := NewScratch(p.RowPlan)
	for r := 0; r < p.Rows; r++ {
		p.RowPlan.TransformWith(data[r*p.Cols:(r+1)*p.Cols], p.WRow, rsc)
	}
	// Column pass via gather/scatter.
	csc := NewScratch(p.ColPlan)
	col := make([]complex128, p.Rows)
	for c := 0; c < p.Cols; c++ {
		for r := 0; r < p.Rows; r++ {
			col[r] = data[r*p.Cols+c]
		}
		p.ColPlan.TransformWith(col, p.WCol, csc)
		for r := 0; r < p.Rows; r++ {
			data[r*p.Cols+c] = col[r]
		}
	}
}

// InverseTransform applies the inverse 2-D FFT in place.
func (p *Plan2D) InverseTransform(data []complex128) {
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	p.Transform(data)
	inv := 1 / float64(p.Rows*p.Cols)
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
