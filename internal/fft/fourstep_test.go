package fft_test

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"codeletfft/internal/fft"
)

// fourStepFactorizations lists the (n1, n2) splits the property suite
// sweeps for a given N: near-square plus both 4×-skewed shapes, the
// same mix the cluster coordinator may choose.
func fourStepFactorizations(n int) [][2]int {
	logN := fft.Log2(n)
	var fs [][2]int
	seen := map[[2]int]bool{}
	for _, l1 := range []int{logN / 2, logN/2 - 1, logN/2 + 1} {
		if l1 < 1 || logN-l1 < 1 {
			continue
		}
		f := [2]int{1 << l1, 1 << (logN - l1)}
		if !seen[f] {
			seen[f] = true
			fs = append(fs, f)
		}
	}
	return fs
}

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestFourStepMatchesPlanTransform is the acceptance property: across
// every N = n1·n2 up to 2^20 and ≥3 factorizations per N, the
// four-step output matches Plan.Transform within 1e-12 relative to the
// input scale.
func TestFourStepMatchesPlanTransform(t *testing.T) {
	for lg := 2; lg <= 20; lg += 2 {
		n := 1 << lg
		pl, err := fft.NewPlan(n, min(64, n))
		if err != nil {
			t.Fatal(err)
		}
		w := fft.Twiddles(n)
		x := randComplex(n, int64(lg))
		want := append([]complex128(nil), x...)
		pl.Transform(want, w)
		for _, f := range fourStepFactorizations(n) {
			fs, err := fft.NewFourStep(f[0], f[1])
			if err != nil {
				t.Fatalf("NewFourStep(%d, %d): %v", f[0], f[1], err)
			}
			got := append([]complex128(nil), x...)
			fs.Transform(got)
			// Tolerance scales with N: both algorithms accumulate
			// O(log N) rounding on bins of magnitude ~sqrt(N).
			if e := fft.MaxError(got, want); e > 1e-12*float64(n) {
				t.Errorf("N=2^%d %dx%d: four-step vs staged error %g", lg, f[0], f[1], e)
			}
		}
	}
}

func TestFourStepRoundTrip(t *testing.T) {
	for _, f := range [][2]int{{4, 8}, {16, 16}, {8, 128}, {256, 64}} {
		fs, err := fft.NewFourStep(f[0], f[1])
		if err != nil {
			t.Fatal(err)
		}
		x := randComplex(fs.N, 7)
		data := append([]complex128(nil), x...)
		fs.Transform(data)
		fs.InverseTransform(data)
		if e := fft.MaxError(data, x); e > 1e-9 {
			t.Errorf("%dx%d: round-trip error %g", f[0], f[1], e)
		}
	}
}

// TestFourStepLinearity: FFT(a·x + b·y) = a·FFT(x) + b·FFT(y).
func TestFourStepLinearity(t *testing.T) {
	fs, err := fft.NewFourStep(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	n := fs.N
	x, y := randComplex(n, 11), randComplex(n, 12)
	a, b := complex(1.5, -0.25), complex(-2.0, 0.75)
	mix := make([]complex128, n)
	for i := range mix {
		mix[i] = a*x[i] + b*y[i]
	}
	fs.Transform(mix)
	fs.Transform(x)
	fs.Transform(y)
	want := make([]complex128, n)
	for i := range want {
		want[i] = a*x[i] + b*y[i]
	}
	if e := fft.MaxError(mix, want); e > 1e-9*float64(n) {
		t.Errorf("linearity violated: error %g", e)
	}
}

// TestFourStepImpulse: the transform of a shifted impulse is the
// analytic exponential ω^{shift·k}.
func TestFourStepImpulse(t *testing.T) {
	fs, err := fft.NewFourStep(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := fs.N
	const shift = 5
	data := make([]complex128, n)
	data[shift] = 1
	fs.Transform(data)
	for k := range data {
		ang := -2 * math.Pi * float64(shift*k%n) / float64(n)
		want := cmplx.Exp(complex(0, ang))
		if d := data[k] - want; math.Hypot(real(d), imag(d)) > 1e-10 {
			t.Fatalf("impulse bin %d: got %v want %v", k, data[k], want)
		}
	}
}

func TestFourStepRejectsBadFactors(t *testing.T) {
	for _, f := range [][2]int{{3, 8}, {8, 3}, {1, 16}, {16, 1}, {0, 0}, {-4, 4}} {
		if _, err := fft.NewFourStep(f[0], f[1]); !errors.Is(err, fft.ErrUnsupportedLength) {
			t.Errorf("NewFourStep(%d, %d) err = %v, want ErrUnsupportedLength", f[0], f[1], err)
		}
	}
}

func TestTwiddleScaleMatchesDirect(t *testing.T) {
	const totalN = 256
	w := fft.Twiddles(totalN)
	for _, index := range []int{0, 1, 7, 128, 255, 300} {
		col := randComplex(16, int64(index))
		want := append([]complex128(nil), col...)
		for k := range want {
			ang := -2 * math.Pi * float64((index*k)%totalN) / float64(totalN)
			want[k] *= cmplx.Exp(complex(0, ang))
		}
		fft.TwiddleScale(col, w, index, totalN)
		if e := fft.MaxError(col, want); e > 1e-12 {
			t.Errorf("index %d: twiddle-scale error %g", index, e)
		}
	}
}

// FuzzFourStepMatchesDirect fuzzes the factor split and the input and
// checks the four-step output against the staged direct transform, then
// the round trip back to the input.
func FuzzFourStepMatchesDirect(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add(make([]byte, 256), uint8(3))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 200, 100}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, split uint8) {
		x, _ := fuzzInput(raw, 0)
		if x == nil || len(x) < 4 {
			t.Skip("input too short for a 2×2 split")
		}
		n := len(x)
		logN := fft.Log2(n)
		l1 := int(split)%(logN-1) + 1 // 1 … logN-1, both factors ≥ 2
		fs, err := fft.NewFourStep(1<<l1, 1<<(logN-l1))
		if err != nil {
			t.Fatalf("NewFourStep(2^%d, 2^%d): %v", l1, logN-l1, err)
		}
		pl, err := fft.NewPlan(n, min(64, n))
		if err != nil {
			t.Fatal(err)
		}
		want := append([]complex128(nil), x...)
		pl.Transform(want, fft.Twiddles(n))
		got := append([]complex128(nil), x...)
		fs.Transform(got)
		if e := fft.MaxError(got, want); e > 1e-9 {
			t.Fatalf("N=%d split 2^%d: four-step vs direct error %g", n, l1, e)
		}
		fs.InverseTransform(got)
		if e := fft.MaxError(got, x); e > 1e-9 {
			t.Fatalf("N=%d split 2^%d: round-trip error %g", n, l1, e)
		}
	})
}

// TestTwiddleDirectBitwise is the out-of-core contract: the table-free
// twiddle evaluation must agree bit for bit with the table, at every
// exponent, so an OOC transform that cannot afford Twiddles(totalN)
// still reproduces the in-core four-step exactly.
func TestTwiddleDirectBitwise(t *testing.T) {
	for _, n := range []int{2, 4, 256, 1 << 12} {
		w := fft.Twiddles(n)
		for e := 0; e < n; e++ {
			want := fft.TwiddleAt(w, e)
			got := fft.TwiddleDirect(e, n)
			if got != want {
				t.Fatalf("n=%d e=%d: TwiddleDirect %v != TwiddleAt %v", n, e, want, got)
			}
		}
	}
}

// TestTwiddleScaleDirectBitwise checks the whole scaling sweep, not
// just single factors: for a sweep of column indices (including ones
// exceeding totalN, which reduce mod totalN) the table-free scale must
// leave bitwise the same column as the table-backed one.
func TestTwiddleScaleDirectBitwise(t *testing.T) {
	const totalN = 1 << 10
	w := fft.Twiddles(totalN)
	for _, index := range []int{0, 1, 5, 31, 512, 1023, 1024, 2049} {
		tab := randComplex(64, int64(index)+99)
		direct := append([]complex128(nil), tab...)
		fft.TwiddleScale(tab, w, index, totalN)
		fft.TwiddleScaleDirect(direct, index, totalN)
		for k := range tab {
			if tab[k] != direct[k] {
				t.Fatalf("index %d k=%d: direct %v != table %v", index, k, direct[k], tab[k])
			}
		}
	}
}
