// Metamorphic property tests: instead of comparing against a reference
// implementation, these check identities any DFT must satisfy —
// linearity, Parseval's theorem, the impulse and shift theorems — for
// every (N, taskSize) plan shape the staged decomposition supports up to
// N=2^10, including the irregular-final-stage shapes where log2(N) is
// not a multiple of log2(P).
package fft_test

import (
	"math"
	"math/rand"
	"testing"

	"codeletfft/internal/fft"
)

// forEachPlan runs fn for every supported (N, P) combination with
// 2 ≤ N ≤ 1024.
func forEachPlan(t *testing.T, fn func(t *testing.T, pl *fft.Plan, w []complex128)) {
	t.Helper()
	for logN := 1; logN <= 10; logN++ {
		n := 1 << logN
		for logP := 1; logP <= logN; logP++ {
			p := 1 << logP
			pl, err := fft.NewPlan(n, p)
			if err != nil {
				t.Fatalf("NewPlan(%d, %d): %v", n, p, err)
			}
			fn(t, pl, fft.Twiddles(n))
		}
	}
}

func randSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func transformed(pl *fft.Plan, w, x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	pl.Transform(out, w)
	return out
}

func cAbs2(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

// TestPropertyLinearity: T(a·x + b·y) = a·T(x) + b·T(y).
func TestPropertyLinearity(t *testing.T) {
	forEachPlan(t, func(t *testing.T, pl *fft.Plan, w []complex128) {
		n := pl.N
		x := randSignal(n, int64(n+pl.P))
		y := randSignal(n, int64(2*n+pl.P))
		a, b := complex(1.25, -0.5), complex(-0.75, 2.0)

		mixed := make([]complex128, n)
		for i := range mixed {
			mixed[i] = a*x[i] + b*y[i]
		}
		got := transformed(pl, w, mixed)
		tx, ty := transformed(pl, w, x), transformed(pl, w, y)
		want := make([]complex128, n)
		for i := range want {
			want[i] = a*tx[i] + b*ty[i]
		}
		if e := fft.MaxError(got, want); e > 1e-9*float64(n) {
			t.Errorf("N=%d P=%d: linearity violated, error %g", n, pl.P, e)
		}
	})
}

// TestPropertyParseval: Σ|x|² = Σ|X|²/N.
func TestPropertyParseval(t *testing.T) {
	forEachPlan(t, func(t *testing.T, pl *fft.Plan, w []complex128) {
		n := pl.N
		x := randSignal(n, int64(3*n+pl.P))
		X := transformed(pl, w, x)
		var timeE, freqE float64
		for i := range x {
			timeE += cAbs2(x[i])
			freqE += cAbs2(X[i])
		}
		freqE /= float64(n)
		if rel := math.Abs(timeE-freqE) / timeE; rel > 1e-10 {
			t.Errorf("N=%d P=%d: Parseval violated, relative error %g", n, pl.P, rel)
		}
	})
}

// TestPropertyImpulse: the transform of δ₀ is the all-ones vector.
func TestPropertyImpulse(t *testing.T) {
	forEachPlan(t, func(t *testing.T, pl *fft.Plan, w []complex128) {
		n := pl.N
		x := make([]complex128, n)
		x[0] = 1
		X := transformed(pl, w, x)
		for k, v := range X {
			if d := math.Hypot(real(v)-1, imag(v)); d > 1e-12 {
				t.Fatalf("N=%d P=%d: impulse bin %d = %v, want 1", n, pl.P, k, v)
			}
		}
	})
}

// TestPropertyShift: circularly advancing x by s multiplies bin k by
// exp(2πi·k·s/N).
func TestPropertyShift(t *testing.T) {
	forEachPlan(t, func(t *testing.T, pl *fft.Plan, w []complex128) {
		n := pl.N
		s := 1 + (n/2-1)%5 // a small shift that varies with N
		x := randSignal(n, int64(4*n+pl.P))
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i+s)%n]
		}
		X := transformed(pl, w, x)
		Y := transformed(pl, w, shifted)
		for k := range Y {
			ang := 2 * math.Pi * float64(k) * float64(s) / float64(n)
			want := X[k] * complex(math.Cos(ang), math.Sin(ang))
			if d := math.Hypot(real(Y[k])-real(want), imag(Y[k])-imag(want)); d > 1e-9*float64(n) {
				t.Fatalf("N=%d P=%d s=%d: shift theorem violated at bin %d: got %v want %v",
					n, pl.P, s, k, Y[k], want)
			}
		}
	})
}

// TestPropertyRoundTrip: InverseTransform(Transform(x)) = x for every
// plan shape — the property the fuzz target generalizes to arbitrary
// inputs.
func TestPropertyRoundTrip(t *testing.T) {
	forEachPlan(t, func(t *testing.T, pl *fft.Plan, w []complex128) {
		x := randSignal(pl.N, int64(5*pl.N+pl.P))
		data := append([]complex128(nil), x...)
		pl.Transform(data, w)
		pl.InverseTransform(data, w)
		if e := fft.MaxError(data, x); e > 1e-11 {
			t.Errorf("N=%d P=%d: round-trip error %g", pl.N, pl.P, e)
		}
	})
}
