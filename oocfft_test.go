package codeletfft_test

import (
	"context"
	"errors"
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codeletfft"
	"codeletfft/internal/fft"
)

// TestOOCPlanBitwiseVsFourStep pins the facade's core contract: the
// out-of-core plan reproduces the in-core four-step bit for bit at
// co-runnable sizes, for both policies and directions.
func TestOOCPlanBitwiseVsFourStep(t *testing.T) {
	const n = 1 << 12
	rng := rand.New(rand.NewSource(42))
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	n1 := 1 << (fft.Log2(n) / 2)
	fs, err := fft.NewFourStep(n1, n/n1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []codeletfft.OOCPolicy{codeletfft.OOCFIFO(), codeletfft.OOCGuided(2)} {
		for _, inverse := range []bool{false, true} {
			p, err := codeletfft.NewOOCPlan(n,
				codeletfft.OOCTileVecs(8),
				codeletfft.OOCSchedule(pol),
				codeletfft.OOCSpillDir(t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			want := append([]complex128(nil), data...)
			got := append([]complex128(nil), data...)
			if inverse {
				fs.InverseTransform(want)
				err = p.Inverse(got)
			} else {
				fs.Transform(want)
				err = p.Transform(got)
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s inverse=%v bin %d: ooc %v != four-step %v",
						pol.Name(), inverse, i, got[i], want[i])
				}
			}
		}
	}
}

// TestOOCPlanIsAPlan checks the interface slot and the geometry
// accessors.
func TestOOCPlanIsAPlan(t *testing.T) {
	p, err := codeletfft.NewOOCPlan(1<<10, codeletfft.OOCSpillDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	var plan codeletfft.Plan = p
	data := make([]complex128, 1<<10)
	data[1] = 1
	if err := plan.TransformCtx(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	if err := plan.InverseCtx(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	if d := cmplx.Abs(data[1] - 1); d > 1e-12 {
		t.Fatalf("round trip drifted by %g", d)
	}
	n1, n2 := p.Factors()
	if n1*n2 != p.N() {
		t.Fatalf("factors %d×%d don't multiply to N=%d", n1, n2, p.N())
	}
	if s2, s1 := p.TileVecs(); s2 <= 0 || s1 <= 0 {
		t.Fatalf("bad tile geometry %d×%d", s2, s1)
	}
	if p.SpillBytes() <= int64(p.N())*16 {
		t.Fatalf("spill %d bytes should exceed the data (headers)", p.SpillBytes())
	}
}

// TestOOCPlanFileAndMetrics runs the file endpoint and checks the
// metrics surface mentions the per-channel prefetch counters.
func TestOOCPlanFileAndMetrics(t *testing.T) {
	const n = 1 << 10
	dir := t.TempDir()
	p, err := codeletfft.NewOOCPlan(n,
		codeletfft.OOCSpillDir(dir),
		codeletfft.OOCTileVecs(4),
		codeletfft.OOCChannels(2),
		codeletfft.OOCStripe(4096),
		codeletfft.OOCIOWorkers(2),
		codeletfft.OOCWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, n*16)
	for i := range raw {
		raw[i] = byte(i * 31)
	}
	src := filepath.Join(dir, "in.c128")
	if err := os.WriteFile(src, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "out.c128")
	if err := p.TransformFile(context.Background(), dst, src); err != nil {
		t.Fatal(err)
	}
	if err := p.InverseFile(context.Background(), dst, dst); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	for _, name := range []string{
		"ooc_prefetch_read_bytes_ch0_total",
		"ooc_prefetch_read_bytes_ch1_total",
		"ooc_prefetch_stalls_ch0_total",
		"ooc_phase_cols_read_bytes_total",
		"ooc_phase_rows_write_bytes_total",
		"ooc_transforms_total",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %s missing from snapshot", name)
		}
	}
	if snap["ooc_transforms_total"] != 2 {
		t.Fatalf("ooc_transforms_total = %v, want 2", snap["ooc_transforms_total"])
	}
	if !strings.Contains(p.MetricsText(), "ooc_prefetch_read_bytes_ch0_total") {
		t.Fatal("MetricsText missing per-channel counters")
	}
}

// TestOOCErrors covers the re-exported sentinels and option failures.
func TestOOCErrors(t *testing.T) {
	if _, err := codeletfft.NewOOCPlan(1000); !errors.Is(err, codeletfft.ErrUnsupportedLength) {
		t.Fatalf("N=1000: err = %v, want ErrUnsupportedLength", err)
	}
	if _, err := codeletfft.ParseOOCPolicy("nope", 0); err == nil {
		t.Fatal("ParseOOCPolicy accepted garbage")
	}
	pol, err := codeletfft.ParseOOCPolicy("guided", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pol.Name(), "guided") {
		t.Fatalf("policy name %q", pol.Name())
	}
	if codeletfft.ErrCorruptSegment == nil {
		t.Fatal("ErrCorruptSegment must be non-nil")
	}
}
