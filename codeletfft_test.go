package codeletfft_test

import (
	"testing"

	"codeletfft"
)

func TestFacadeRun(t *testing.T) {
	opts := codeletfft.NewOptions(1<<12, codeletfft.FineGuided)
	opts.Check = true
	res, err := codeletfft.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.GFLOPS <= 0 || res.Cycles <= 0 {
		t.Fatalf("degenerate result: %v", res)
	}
	if !res.Checked || res.MaxError > 1e-8 {
		t.Fatalf("numeric check failed: %g", res.MaxError)
	}
}

func TestFacadeVariants(t *testing.T) {
	vs := codeletfft.Variants()
	if len(vs) != 5 {
		t.Fatalf("want 5 variants, got %d", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.String()] = true
	}
	for _, want := range []string{"coarse", "coarse hash", "fine", "fine hash", "fine guided"} {
		if !names[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

func TestFacadePeak(t *testing.T) {
	peak := codeletfft.TheoreticalPeakGFLOPS(codeletfft.DefaultMachine(), 64)
	if peak < 10.0 || peak > 10.1 {
		t.Fatalf("peak = %.3f, want the paper's ~10 GFLOPS", peak)
	}
}

func TestFacadeBestWorst(t *testing.T) {
	base := codeletfft.NewOptions(1<<12, codeletfft.Fine)
	base.SkipNumerics = true
	bw, err := codeletfft.RunFineBestWorst(base, []codeletfft.FineConfig{
		{Order: codeletfft.OrderNatural, Discipline: codeletfft.FIFO},
		{Order: codeletfft.OrderNatural, Discipline: codeletfft.LIFO},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bw.Best.GFLOPS < bw.Worst.GFLOPS {
		t.Fatal("best slower than worst")
	}
}

func TestFacadeMachineOverride(t *testing.T) {
	opts := codeletfft.NewOptions(1<<12, codeletfft.Coarse)
	opts.SkipNumerics = true
	opts.Machine = codeletfft.DefaultMachine()
	opts.Machine.DRAMPortBytesPerCycle = 16 // double the port bandwidth
	fast, err := codeletfft.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Machine = codeletfft.DefaultMachine()
	slow, err := codeletfft.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fast.GFLOPS <= slow.GFLOPS {
		t.Fatalf("doubling DRAM bandwidth did not help: %.3f vs %.3f", fast.GFLOPS, slow.GFLOPS)
	}
}
