module codeletfft

go 1.22
