// fftserved is the FFT serving daemon: an HTTP front end over the
// host engine's batched transform path. Same-shape requests arriving
// within the batch window are coalesced into one TransformBatch
// dispatch against the process-wide plan cache, with admission control
// (bounded queue, 429/503 shedding), per-request deadlines, and
// panic-isolated execution. SIGTERM/SIGINT triggers a graceful drain:
// new requests shed with 503 while every admitted request finishes.
//
//	go run ./cmd/fftserved -addr :8080 -window 2ms -max-batch 64
//
// Endpoints: POST /fft (JSON), POST /fft/bin (binary frames),
// POST /fft/stft (chunked NDJSON spectrogram stream — frames flow back
// while later chunks are still transforming, and an in-flight stream
// finishes through a drain instead of being severed), GET /metrics,
// GET /healthz, GET /debug/vars (expvar), and — with
// -pprof — the net/http/pprof handlers under /debug/pprof/. With -worker
// the daemon additionally serves POST /fft/shard, the cluster
// shard-execution endpoint a fftcluster coordinator dispatches
// four-step segments to.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codeletfft"
	"codeletfft/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		window     = flag.Duration("window", serve.DefaultBatchWindow, "micro-batch coalescing window (negative disables batching)")
		maxBatch   = flag.Int("max-batch", serve.DefaultMaxBatch, "flush a batch at this many requests without waiting out the window")
		queue      = flag.Int("queue", serve.DefaultQueueLimit, "admission queue limit; beyond it requests shed with 429")
		timeout    = flag.Duration("timeout", serve.DefaultRequestTimeout, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", serve.DefaultMaxTimeout, "cap on client-supplied ?timeout=")
		minN       = flag.Int("min-n", serve.DefaultMinN, "smallest served transform length")
		maxN       = flag.Int("max-n", serve.DefaultMaxN, "largest served transform length")
		workers    = flag.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS)")
		taskSize   = flag.Int("task", 0, "P-point kernel size (0 = engine default, 64)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
		worker     = flag.Bool("worker", false, "serve POST /fft/shard so a fftcluster coordinator can dispatch four-step segments here")
		sessions   = flag.Bool("sessions", true, "accept resident shard sessions (FFS2) in worker mode; false simulates an FFS1-only daemon")
		kernelName = flag.String("kernel", "auto", "butterfly kernel: auto, radix2, radix4, splitradix (auto tunes per shape on first use and memoizes)")
		pprof      = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ on the serving mux")
	)
	flag.Parse()

	kern, err := codeletfft.ParseKernel(*kernelName)
	if err != nil {
		log.Fatalf("-kernel: %v", err)
	}

	cfg := serve.Config{
		MinN:           *minN,
		MaxN:           *maxN,
		BatchWindow:    *window,
		MaxBatch:       *maxBatch,
		QueueLimit:     *queue,
		RequestTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Workers:        *workers,
		TaskSize:       *taskSize,
		Kernel:         kern,
		EnableShard:    *worker,
	}
	if *worker {
		// Resident sessions exchange the four-step transpose directly
		// between workers; peers are named by the coordinator's session
		// spec, so the daemon just needs an HTTP pusher.
		if *sessions {
			cfg.Peers = &serve.HTTPPeers{}
		} else {
			cfg.DisableSessions = true
		}
	}
	s := serve.New(cfg)
	s.Registry().Publish("fftserved")

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	if *pprof {
		serve.RegisterPprof(mux)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	mode := ""
	if *worker {
		mode = " worker-mode"
	}
	log.Printf("fftserved listening on %s%s (window=%v max-batch=%d queue=%d N=[%d,%d] kernel=%v)",
		*addr, mode, *window, *maxBatch, *queue, *minN, *maxN, kern)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (timeout %v)", *drainWait)
	// Shed first so the queue only shrinks, then stop accepting
	// connections and wait for in-flight handlers, then for the
	// executors behind them.
	s.StartDrain()
	httpSrv.SetKeepAlivesEnabled(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(shutCtx); err != nil {
		log.Printf("drain: %v", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
	log.Printf("drained cleanly")
}
