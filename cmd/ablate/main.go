// Command ablate sweeps the design choices DESIGN.md calls out and
// prints one table per axis: dependence-counter sharing, pool discipline,
// DRAM interleave granularity, outstanding requests per thread unit, the
// DRAM row-buffer model, and the hash cost slope (which moves the
// fine-hash / fine-guided crossover).
//
// Usage:
//
//	ablate            # all axes at N=2^15
//	ablate -n 262144  # larger transform
package main

import (
	"flag"
	"fmt"
	"os"

	"codeletfft"
	"codeletfft/internal/report"
	"codeletfft/internal/sim"
)

var n = flag.Int("n", 1<<15, "transform length (power of two)")

func run(mutate func(*codeletfft.Options)) (*codeletfft.Result, error) {
	opts := codeletfft.NewOptions(*n, codeletfft.Fine)
	opts.SkipNumerics = true
	if mutate != nil {
		mutate(&opts)
	}
	return codeletfft.Run(opts)
}

func table(title string, headers []string, rows func(*report.Table) error) {
	fmt.Printf("\n%s\n", title)
	tb := &report.Table{Headers: headers}
	if err := rows(tb); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}

func main() {
	flag.Parse()
	fmt.Printf("ablations at N=2^%d on the default machine model\n", log2(*n))

	table("counter sharing (section IV-A2)", []string{"mode", "GFLOPS", "counter updates"},
		func(tb *report.Table) error {
			for _, shared := range []bool{true, false} {
				res, err := run(func(o *codeletfft.Options) { o.SharedCounters = shared })
				if err != nil {
					return err
				}
				mode := "per-child"
				if shared {
					mode = "shared sibling-group"
				}
				tb.AddRow(mode, res.GFLOPS, res.Runtime.CounterUpdates)
				_ = mode
			}
			return nil
		})

	table("pool discipline", []string{"discipline", "GFLOPS"},
		func(tb *report.Table) error {
			for _, d := range []codeletfft.Discipline{codeletfft.FIFO, codeletfft.LIFO} {
				res, err := run(func(o *codeletfft.Options) { o.Discipline = d })
				if err != nil {
					return err
				}
				tb.AddRow(d.String(), res.GFLOPS)
			}
			return nil
		})

	table("DRAM interleave granularity (coarse variant)", []string{"bytes", "GFLOPS", "bank skew"},
		func(tb *report.Table) error {
			for _, il := range []int64{16, 32, 64, 128, 256, 1024} {
				res, err := run(func(o *codeletfft.Options) {
					o.Variant = codeletfft.Coarse
					o.Machine.InterleaveBytes = il
				})
				if err != nil {
					return err
				}
				tb.AddRow(il, res.GFLOPS, res.BankSkew())
			}
			return nil
		})

	table("outstanding DRAM bursts per TU (guided variant)", []string{"K", "GFLOPS"},
		func(tb *report.Table) error {
			for _, k := range []int{1, 2, 4, 8, 16} {
				res, err := run(func(o *codeletfft.Options) {
					o.Variant = codeletfft.FineGuided
					o.Machine.OutstandingRequests = k
				})
				if err != nil {
					return err
				}
				tb.AddRow(k, res.GFLOPS)
			}
			return nil
		})

	table("DRAM row-buffer model (coarse variant)", []string{"row bytes", "miss cycles", "GFLOPS"},
		func(tb *report.Table) error {
			for _, cfg := range []struct {
				row  int64
				miss int
			}{{0, 0}, {2048, 10}, {2048, 20}, {4096, 20}} {
				res, err := run(func(o *codeletfft.Options) {
					o.Variant = codeletfft.Coarse
					o.Machine.RowBytes = cfg.row
					o.Machine.RowMissCycles = sim.Time(cfg.miss)
				})
				if err != nil {
					return err
				}
				tb.AddRow(cfg.row, cfg.miss, res.GFLOPS)
			}
			return nil
		})

	table("hash cost slope (fine hash / fine guided)", []string{"cycles per bit", "fine hash", "fine guided", "ratio"},
		func(tb *report.Table) error {
			for _, slope := range []float64{0, 1.5, 3, 6, 12} {
				hash, err := run(func(o *codeletfft.Options) {
					o.Variant = codeletfft.FineHash
					o.Machine.HashPerBit = slope
				})
				if err != nil {
					return err
				}
				guided, err := run(func(o *codeletfft.Options) {
					o.Variant = codeletfft.FineGuided
					o.Machine.HashPerBit = slope
				})
				if err != nil {
					return err
				}
				tb.AddRow(slope, hash.GFLOPS, guided.GFLOPS, hash.GFLOPS/guided.GFLOPS)
			}
			return nil
		})
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
