// Command figures regenerates every figure and table of the paper's
// evaluation section into a results directory (CSV + rendered text) and
// reports the shape checks that define reproduction success.
//
// Usage:
//
//	figures -out results            # the full sweep (minutes)
//	figures -quick -out results     # shrunken sizes (seconds)
//	figures -fig 8 -out results     # a single figure
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"codeletfft/internal/exp"
)

var runners = map[string]func(exp.Config) (*exp.Result, error){
	"1":      exp.Fig1CoarseTrace,
	"2":      exp.Fig2GuidedTrace,
	"6":      exp.Fig6HashTrace,
	"7":      exp.Fig7CodeletSize,
	"8":      exp.Fig8InputSizes,
	"9":      exp.Fig9ThreadScaling,
	"peak":   exp.TablePeak,
	"onchip": exp.OnChipTaskSize,
}

var order = []string{"1", "2", "6", "7", "8", "9", "peak", "onchip"}

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: 1|2|6|7|8|9|peak|onchip|all")
		out   = flag.String("out", "results", "output directory")
		quick = flag.Bool("quick", false, "shrunken problem sizes")
		seed  = flag.Int64("seed", 1, "input and order seed")
	)
	flag.Parse()

	cfg := exp.NewConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed

	ids := order
	if *fig != "all" {
		if _, ok := runners[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q (want 1|2|6|7|8|9|peak|onchip|all)\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	failed := 0
	for _, id := range ids {
		res, err := runners[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		if err := exp.WriteResult(*out, res); err != nil {
			fmt.Fprintf(os.Stderr, "figures: write: %v\n", err)
			os.Exit(1)
		}
		var b strings.Builder
		if err := exp.Render(&b, res); err != nil {
			fmt.Fprintf(os.Stderr, "figures: render: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(b.String())
		fmt.Println()
		if !res.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d experiment(s) had failing shape checks\n", failed)
		os.Exit(1)
	}
	fmt.Printf("all shape checks passed; outputs in %s/\n", *out)
}
