// fftcluster is the cluster FFT coordinator daemon: an HTTP front end
// over internal/dist. Client transforms arrive as binary frames
// (the fftserved FFB1 codec, complex forward/inverse kinds), are
// factored four-step, and the column/row FFT passes are dispatched as
// shard RPCs to `fftserved -worker` processes — with health-checked
// membership, per-worker circuit breakers, consistent-hash placement,
// retries with exponential backoff, optional hedged requests, and
// graceful degradation to local execution when the worker set is
// empty or exhausted.
//
//	go run ./cmd/fftcluster -addr :9100 \
//	    -workers http://127.0.0.1:9101,http://127.0.0.1:9102 \
//	    -probe 500ms -hedge 0
//
// Endpoints: POST /fft/bin (binary frames, forward/inverse complex),
// GET /metrics, GET /healthz, GET /debug/vars (expvar), and — with
// -pprof — the net/http/pprof handlers under /debug/pprof/. SIGTERM/SIGINT
// triggers a graceful drain: new requests shed with 503 while admitted
// transforms finish.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"codeletfft"
	"codeletfft/internal/dist"
	"codeletfft/internal/metrics"
	"codeletfft/internal/serve"
)

// server fronts a dist.Coordinator with the binary frame protocol and
// drain bookkeeping.
type server struct {
	co       *dist.Coordinator
	reg      *metrics.Registry
	timeout  time.Duration
	draining atomic.Bool
	inflight sync.WaitGroup

	requests *metrics.Counter
	okCount  *metrics.Counter
	bad      *metrics.Counter
	shed     *metrics.Counter
}

func (s *server) handleBin(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	if s.draining.Load() {
		s.shed.Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()

	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16*int64(serve.MaxFrameElems)+64))
	if err != nil {
		s.bad.Inc()
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	f, err := serve.DecodeFrame(raw)
	if err != nil {
		s.bad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if f.Kind != serve.KindForward && f.Kind != serve.KindInverse {
		s.bad.Inc()
		http.Error(w, "cluster serves complex forward/inverse frames only", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	if f.Kind == serve.KindForward {
		err = s.co.Transform(ctx, f.Complex)
	} else {
		err = s.co.Inverse(ctx, f.Complex)
	}
	if err != nil {
		if ctx.Err() != nil {
			http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		} else {
			s.bad.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	enc, err := serve.EncodeFrame(f)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.okCount.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(enc)
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

func main() {
	var (
		addr        = flag.String("addr", ":9100", "listen address")
		workers     = flag.String("workers", "", "comma-separated worker base URLs (fftserved -worker processes)")
		memberFile  = flag.String("member-file", "", "membership file polled for worker joins/leaves (one address per line)")
		probe       = flag.Duration("probe", time.Second, "worker health-probe interval (0 disables)")
		shardVecs   = flag.Int("shard-vecs", dist.DefaultShardVecs, "column/row vectors per shard RPC")
		maxAttempts = flag.Int("max-attempts", dist.DefaultMaxAttempts, "tries per shard, first attempt included")
		hedge       = flag.Duration("hedge", 0, "hedged-request delay; 0 disables tail-latency hedging")
		shardTO     = flag.Duration("shard-timeout", dist.DefaultShardTimeout, "per-attempt shard deadline")
		inflight    = flag.Int("max-inflight", dist.DefaultMaxInflight, "concurrent shard RPCs per transform")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		localW      = flag.Int("local-workers", 0, "goroutines for degraded local execution (0 = GOMAXPROCS)")
		kernelName  = flag.String("local-kernel", "radix2", "butterfly kernel for degraded local execution: radix2, radix4, splitradix")
		resident    = flag.Bool("resident", true, "use resident worker sessions (communication-avoiding path); false forces one-shot shards")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
		pprofFlag   = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ on the serving mux")
	)
	flag.Parse()

	kern, err := codeletfft.ParseKernel(*kernelName)
	if err != nil {
		log.Fatalf("-local-kernel: %v", err)
	}

	var workerList []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workerList = append(workerList, w)
		}
	}
	co, err := dist.New(
		dist.WithTransport(&dist.HTTPTransport{}),
		dist.WithWorkers(workerList...),
		dist.WithMemberFile(*memberFile),
		dist.WithProbeInterval(*probe),
		dist.WithShardVecs(*shardVecs),
		dist.WithMaxAttempts(*maxAttempts),
		dist.WithHedgeDelay(*hedge),
		dist.WithShardTimeout(*shardTO),
		dist.WithMaxInflight(*inflight),
		dist.WithLocalWorkers(*localW),
		dist.WithLocalKernel(kern),
		dist.WithResidentSessions(*resident),
	)
	if err != nil {
		log.Fatalf("fftcluster: %v", err)
	}
	defer co.Close()
	reg := co.Registry()
	reg.Publish("fftcluster")

	s := &server{
		co:       co,
		reg:      reg,
		timeout:  *timeout,
		requests: reg.Counter("cluster_requests_total"),
		okCount:  reg.Counter("cluster_ok_total"),
		bad:      reg.Counter("cluster_bad_total"),
		shed:     reg.Counter("cluster_shed_total"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fft/bin", s.handleBin)
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if *pprofFlag {
		serve.RegisterPprof(mux)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("fftcluster listening on %s (%d workers, probe=%v hedge=%v shard-vecs=%d)",
		*addr, len(workerList), *probe, *hedge, *shardVecs)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (timeout %v)", *drainWait)
	s.draining.Store(true)
	httpSrv.SetKeepAlivesEnabled(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-shutCtx.Done():
		log.Printf("drain: timed out with requests in flight")
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
	log.Printf("drained cleanly")
}
