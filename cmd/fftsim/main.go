// Command fftsim runs one FFT execution on the simulated Cyclops-64 and
// prints timing, bank balance, and runtime statistics.
//
// Usage:
//
//	fftsim -n 32768 -variant guided -threads 156 -check
//	fftsim -n 1048576 -variant coarse -trace -tracebins 48
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"codeletfft"
	"codeletfft/internal/report"
	"codeletfft/internal/sim"
)

func main() {
	var (
		n          = flag.Int("n", 1<<15, "transform length (power of two)")
		variant    = flag.String("variant", "guided", "coarse | coarse-hash | fine | fine-hash | guided")
		threads    = flag.Int("threads", 0, "thread units (0 = all 156)")
		taskSize   = flag.Int("tasksize", 64, "points per codelet (power of two)")
		order      = flag.String("order", "natural", "initial pool order: natural | reversed | bitrev | random")
		discipline = flag.String("pool", "lifo", "pool discipline for fine variants: fifo | lifo")
		check      = flag.Bool("check", false, "verify numerics against a reference FFT")
		skip       = flag.Bool("skip-numerics", false, "timing-only run (no complex arithmetic)")
		seed       = flag.Int64("seed", 1, "input and order seed")
		trace      = flag.Bool("trace", false, "print per-bank access-rate chart")
	)
	flag.Parse()

	opts := codeletfft.NewOptions(*n, 0)
	var ok bool
	opts.Variant, ok = parseVariant(*variant)
	if !ok {
		fatalf("unknown variant %q", *variant)
	}
	switch *order {
	case "natural":
		opts.Order = codeletfft.OrderNatural
	case "reversed":
		opts.Order = codeletfft.OrderReversed
	case "bitrev":
		opts.Order = codeletfft.OrderBitReversed
	case "random":
		opts.Order = codeletfft.OrderRandom
	default:
		fatalf("unknown order %q", *order)
	}
	switch *discipline {
	case "fifo":
		opts.Discipline = codeletfft.FIFO
	case "lifo":
		opts.Discipline = codeletfft.LIFO
	default:
		fatalf("unknown pool discipline %q", *discipline)
	}
	opts.Threads = *threads
	opts.TaskSize = *taskSize
	opts.Check = *check
	opts.SkipNumerics = *skip
	opts.Seed = *seed
	if *trace {
		opts.TraceBin = sim.Time(max64(int64(*n)/8, 2000))
	}

	res, err := codeletfft.Run(opts)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Println(res)
	fmt.Printf("  cycles        %d (%.3f ms at 500 MHz)\n", res.Cycles, res.Seconds*1e3)
	fmt.Printf("  GFLOPS        %.3f (theoretical peak %.2f)\n",
		res.GFLOPS, codeletfft.TheoreticalPeakGFLOPS(opts.Machine, opts.TaskSize))
	fmt.Printf("  codelets      %d over %d stages\n", res.Codelets, res.Stages)
	fmt.Printf("  bank bytes    %v (skew %.2f)\n", res.BankBytes, res.BankSkew())
	fmt.Printf("  bank util     %s\n", fmtUtil(res.BankUtil))
	fmt.Printf("  pool ops      %d, counter updates %d, lock wait %d cycles\n",
		res.Runtime.PoolOps, res.Runtime.CounterUpdates, res.Runtime.LockWait)
	if res.Checked {
		fmt.Printf("  max error     %.3g (verified against reference FFT)\n", res.MaxError)
	}

	if res.Trace != nil {
		tr := res.Trace.Rebin(48)
		var series []report.Series
		for b, vals := range tr.Series() {
			s := report.Series{Name: fmt.Sprintf("bank %d", b)}
			for w, v := range vals {
				s.X = append(s.X, float64(w))
				s.Y = append(s.Y, float64(v))
			}
			series = append(series, s)
		}
		fmt.Println()
		if err := report.Chart(os.Stdout, "per-bank access rates", "time window",
			"accesses/window", series, 72, 16); err != nil {
			fatalf("%v", err)
		}
	}
}

func parseVariant(s string) (codeletfft.Variant, bool) {
	switch strings.ToLower(s) {
	case "coarse":
		return codeletfft.Coarse, true
	case "coarse-hash", "coarsehash":
		return codeletfft.CoarseHash, true
	case "fine":
		return codeletfft.Fine, true
	case "fine-hash", "finehash":
		return codeletfft.FineHash, true
	case "guided", "fine-guided":
		return codeletfft.FineGuided, true
	}
	return 0, false
}

func fmtUtil(u []float64) string {
	parts := make([]string, len(u))
	for i, v := range u {
		parts[i] = fmt.Sprintf("%.0f%%", v*100)
	}
	return strings.Join(parts, " ")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fftsim: "+format+"\n", args...)
	os.Exit(1)
}
