// Command fftooc runs out-of-core FFTs: transforms whose data and
// intermediate state live in files, staged through RAM tiles under an
// explicit memory budget. It is both the operational driver (transform
// a raw complex128 file into another) and the acceptance harness for
// the out-of-core subsystem — its check modes verify the staged result
// against the in-core four-step bit for bit (at co-runnable sizes), a
// streaming analytic tone (at any size), or a forward/inverse round
// trip, and it reports the process's peak RSS so a memory-budget claim
// is measured, not asserted.
//
// Usage:
//
//	fftooc -logn 26 -budget 256MiB -check tone     # 2^26 points, ≤ budget RAM
//	fftooc -logn 22 -check incore -policy guided   # bitwise vs in-core
//	fftooc -in x.c128 -out X.c128 -logn 24         # transform a file
//	fftooc -logn 20 -check roundtrip -metrics      # + metrics dump
//
// Input/output files are flat native-order complex128 arrays. With no
// -in, the driver synthesizes a pure tone x[j] = exp(2πi·f·j/N)
// streaming to a temp file, so even N=2^28 (4 GiB of data) never needs
// N points in RAM; -check tone then verifies X[k] = N·δ[k−f] the same
// way. Exit status is non-zero if any check fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"unsafe"

	"codeletfft"
	"codeletfft/internal/fft"
)

func main() {
	var (
		logN    = flag.Int("logn", 22, "transform 2^logn complex points")
		in      = flag.String("in", "", "input file (raw complex128); empty = synthesize a tone")
		out     = flag.String("out", "", "output file; empty = a temp file next to the spill")
		dir     = flag.String("dir", "", "spill/scratch directory (default $TMPDIR)")
		budget  = flag.String("budget", "256MiB", "memory budget for staging buffers (e.g. 512MiB, 1GiB)")
		tile    = flag.Int("tile", 0, "pin tile height (vectors per tile, power of two; 0 = derive from budget)")
		policy  = flag.String("policy", "fifo", "prefetch schedule: fifo or guided")
		seed    = flag.Int("seed", 1, "guided-policy seed")
		workers = flag.Int("workers", 0, "compute goroutines (0 = GOMAXPROCS)")
		iow     = flag.Int("io", 0, "staging I/O goroutines per pipeline stage (0 = default)")
		chans   = flag.Int("channels", 0, "modelled I/O channels for byte/stall accounting (0 = default)")
		inverse = flag.Bool("inverse", false, "run the inverse transform")
		check   = flag.String("check", "none", "verification: none, tone, incore, or roundtrip")
		tone    = flag.Int("tone", 12345, "tone frequency bin for synthesized input / -check tone")
		metrics = flag.Bool("metrics", false, "print the plan's metrics after the run")
	)
	flag.Parse()

	if err := run(*logN, *in, *out, *dir, *budget, *tile, *policy, *seed,
		*workers, *iow, *chans, *inverse, *check, *tone, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "fftooc:", err)
		os.Exit(1)
	}
}

func run(logN int, in, out, dir, budgetStr string, tile int, policyName string, seed,
	workers, iow, chans int, inverse bool, check string, tone int, metrics bool) error {
	if logN < 2 || logN > 40 {
		return fmt.Errorf("-logn %d out of range [2,40]", logN)
	}
	n := 1 << logN
	budget, err := parseBytes(budgetStr)
	if err != nil {
		return err
	}
	pol, err := codeletfft.ParseOOCPolicy(policyName, seed)
	if err != nil {
		return err
	}
	if dir == "" {
		dir = os.TempDir()
	}

	opts := []codeletfft.OOCOption{
		codeletfft.OOCSpillDir(dir),
		codeletfft.OOCMemoryBudget(budget),
		codeletfft.OOCSchedule(pol),
	}
	if tile > 0 {
		opts = append(opts, codeletfft.OOCTileVecs(tile))
	}
	if workers > 0 {
		opts = append(opts, codeletfft.OOCWorkers(workers))
	}
	if iow > 0 {
		opts = append(opts, codeletfft.OOCIOWorkers(iow))
	}
	if chans > 0 {
		opts = append(opts, codeletfft.OOCChannels(chans))
	}
	p, err := codeletfft.NewOOCPlan(n, opts...)
	if err != nil {
		return err
	}
	s2, s1 := p.TileVecs()
	fmt.Printf("plan: %s budget=%s tiles=%d×%d spill=%s policy=%s\n",
		p, budgetStr, s2, s1, fmtBytes(p.SpillBytes()), pol.Name())

	if check == "incore" {
		return checkInCore(p, n, inverse, metrics)
	}

	// File-to-file path (the genuinely out-of-core one).
	if in == "" {
		f, err := os.CreateTemp(dir, "fftooc-in-*.c128")
		if err != nil {
			return err
		}
		in = f.Name()
		defer os.Remove(in)
		if err := writeTone(f, n, tone); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("input: synthesized tone f=%d → %s (%s)\n", tone, in, fmtBytes(int64(n)*16))
	}
	if out == "" {
		out = filepath.Join(dir, fmt.Sprintf("fftooc-out-%d.c128", os.Getpid()))
		defer os.Remove(out)
	}

	ctx := context.Background()
	if inverse {
		err = p.InverseFile(ctx, out, in)
	} else {
		err = p.TransformFile(ctx, out, in)
	}
	if err != nil {
		return err
	}
	report(p)

	switch check {
	case "none":
	case "tone":
		if inverse {
			return fmt.Errorf("-check tone verifies the forward transform; drop -inverse")
		}
		if err := verifyTone(out, n, tone); err != nil {
			return err
		}
		fmt.Printf("check: tone ok (X[%d]=N, all other bins ~0)\n", tone)
	case "roundtrip":
		back := filepath.Join(dir, fmt.Sprintf("fftooc-back-%d.c128", os.Getpid()))
		defer os.Remove(back)
		if inverse {
			err = p.TransformFile(ctx, back, out)
		} else {
			err = p.InverseFile(ctx, back, out)
		}
		if err != nil {
			return err
		}
		if err := compareFiles(in, back, n, 1e-9); err != nil {
			return err
		}
		fmt.Println("check: roundtrip ok")
	default:
		return fmt.Errorf("unknown -check mode %q (want none, tone, incore, or roundtrip)", check)
	}

	if metrics {
		fmt.Print(p.MetricsText())
	}
	reportRSS()
	return nil
}

// checkInCore transforms random data through both the staged
// out-of-core path and the in-core four-step reference and demands
// bitwise equality — the subsystem's core correctness claim. It holds
// ~3·N·16 bytes in RAM, so it only runs at co-runnable sizes.
func checkInCore(p *codeletfft.OOCPlan, n int, inverse, metrics bool) error {
	rng := rand.New(rand.NewSource(7))
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	n1, n2 := p.Factors()
	fs, err := fft.NewFourStep(n1, n2)
	if err != nil {
		return err
	}
	want := append([]complex128(nil), data...)
	if inverse {
		fs.InverseTransform(want)
		err = p.Inverse(data)
	} else {
		fs.Transform(want)
		err = p.Transform(data)
	}
	if err != nil {
		return err
	}
	for i := range data {
		if data[i] != want[i] {
			return fmt.Errorf("check incore: bin %d differs: ooc %v, four-step %v (not bitwise identical)",
				i, data[i], want[i])
		}
	}
	fmt.Printf("check: incore ok (%d bins bitwise identical to the four-step reference)\n", n)
	report(p)
	if metrics {
		fmt.Print(p.MetricsText())
	}
	reportRSS()
	return nil
}

// writeTone streams x[j] = exp(2πi·f·j/N) to w in 1 MiB chunks.
func writeTone(f *os.File, n, tone int) error {
	const chunk = 1 << 16
	buf := make([]complex128, chunk)
	for base := 0; base < n; base += chunk {
		m := min(chunk, n-base)
		for i := 0; i < m; i++ {
			j := base + i
			ang := 2 * math.Pi * float64((int64(tone)*int64(j))%int64(n)) / float64(n)
			buf[i] = cmplx.Exp(complex(0, ang))
		}
		if _, err := f.Write(complexBytes(buf[:m])); err != nil {
			return err
		}
	}
	return nil
}

// verifyTone streams the output file and checks X[k] = N·δ[k−tone]
// within 1e-6·N — the analytic ground truth no in-core reference is
// needed for.
func verifyTone(path string, n, tone int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	const chunk = 1 << 16
	buf := make([]complex128, chunk)
	tol := 1e-6 * float64(n)
	worst := 0.0
	for base := 0; base < n; base += chunk {
		m := min(chunk, n-base)
		raw := complexBytes(buf[:m])
		if _, err := f.ReadAt(raw, int64(base)*16); err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			k := base + i
			want := complex(0, 0)
			if k == tone {
				want = complex(float64(n), 0)
			}
			if d := cmplx.Abs(buf[i] - want); d > tol {
				return fmt.Errorf("check tone: bin %d off by %g (tol %g)", k, d, tol)
			} else if d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("tone: worst bin error %.3g (tol %.3g)\n", worst, tol)
	return nil
}

// compareFiles streams two N-point files and checks elementwise
// distance ≤ tol.
func compareFiles(a, b string, n int, tol float64) error {
	fa, err := os.Open(a)
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := os.Open(b)
	if err != nil {
		return err
	}
	defer fb.Close()
	const chunk = 1 << 16
	bufA := make([]complex128, chunk)
	bufB := make([]complex128, chunk)
	for base := 0; base < n; base += chunk {
		m := min(chunk, n-base)
		if _, err := fa.ReadAt(complexBytes(bufA[:m]), int64(base)*16); err != nil {
			return err
		}
		if _, err := fb.ReadAt(complexBytes(bufB[:m]), int64(base)*16); err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			if d := cmplx.Abs(bufA[i] - bufB[i]); d > tol {
				return fmt.Errorf("files differ at element %d by %g", base+i, d)
			}
		}
	}
	return nil
}

// report prints the per-phase I/O totals and the per-channel balance.
func report(p *codeletfft.OOCPlan) {
	snap := p.Snapshot()
	fmt.Printf("phase cols: read %s written %s in %.2fs\n",
		fmtBytes(int64(snap["ooc_phase_cols_read_bytes_total"])),
		fmtBytes(int64(snap["ooc_phase_cols_write_bytes_total"])),
		snap["ooc_phase_cols_ns_total"]/1e9)
	fmt.Printf("phase rows: read %s written %s in %.2fs\n",
		fmtBytes(int64(snap["ooc_phase_rows_read_bytes_total"])),
		fmtBytes(int64(snap["ooc_phase_rows_write_bytes_total"])),
		snap["ooc_phase_rows_ns_total"]/1e9)
	var parts []string
	for c := 0; ; c++ {
		v, ok := snap[fmt.Sprintf("ooc_prefetch_read_bytes_ch%d_total", c)]
		if !ok {
			break
		}
		stalls := snap[fmt.Sprintf("ooc_prefetch_stalls_ch%d_total", c)]
		parts = append(parts, fmt.Sprintf("ch%d %s/%d stalls", c, fmtBytes(int64(v)), int64(stalls)))
	}
	fmt.Printf("channels: %s\n", strings.Join(parts, ", "))
	fmt.Printf("segments: %d written, %d read, pool stalls %d\n",
		int64(snap["ooc_segments_written_total"]),
		int64(snap["ooc_segments_read_total"]),
		int64(snap["ooc_pool_stalls_total"]))
}

// reportRSS prints the process's peak resident set (VmHWM) so memory
// budget claims are observable from the run output itself.
func reportRSS() {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return // non-Linux: /usr/bin/time -v is the fallback
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "VmHWM:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					fmt.Printf("peak RSS: %s (VmHWM %d kB)\n", fmtBytes(kb<<10), kb)
				}
			}
			return
		}
	}
}

// parseBytes parses sizes like "512MiB", "1GiB", "64MB", or plain byte
// counts.
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mul  int64
	}{
		{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3},
		{"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10},
	} {
		if strings.HasSuffix(t, suf.name) {
			mult = suf.mul
			t = strings.TrimSuffix(t, suf.name)
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return v * mult, nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// complexBytes reinterprets a complex128 slice as raw bytes for the
// streaming file I/O.
func complexBytes(v []complex128) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*16)
}
