// Command fftcheck validates the numerics of every algorithm variant
// across a matrix of transform lengths and codelet sizes, comparing each
// simulated run's output against an independent reference FFT; checks
// that the parallel host engine's output is bitwise identical to the
// serial host path on the same matrix; checks every butterfly kernel
// family (radix-2, radix-4, split-radix) against the reference DFT and
// against each other; checks the serving-path APIs
// (TransformBatch against a transform loop, the real-input path against
// the complex reference); checks the distributed four-step path (a
// 3-worker loopback cluster against the single-node parallel transform
// across several factorizations); checks the arbitrary-N planner —
// every radix family the mixed-radix/Bluestein router serves, from
// primes to highly-composite lengths, against the reference DFT with
// per-family worst relative error and ULP-of-peak; checks overlap-save
// convolution and the streaming filter against the direct O(N·K)
// reference; and checks the spectrogram path, including streaming a
// spectrogram out of a live serving core while it drains (every frame
// must arrive; new work must shed with 503). Any section failure exits
// non-zero.
//
// Usage:
//
//	fftcheck                  # default matrix
//	fftcheck -maxlog 16       # up to N=2^16
//	fftcheck -workers 8       # host-engine check with 8 goroutines
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"codeletfft"
	"codeletfft/cluster"
	"codeletfft/internal/report"
)

func main() {
	var (
		minLog  = flag.Int("minlog", 10, "smallest transform: N=2^minlog")
		maxLog  = flag.Int("maxlog", 14, "largest transform: N=2^maxlog")
		seed    = flag.Int64("seed", 1, "input seed")
		workers = flag.Int("workers", 0, "host-engine worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()

	tb := &report.Table{Headers: []string{"N", "task size", "variant", "max error", "GFLOPS"}}
	worst := 0.0
	failures := 0
	for lg := *minLog; lg <= *maxLog; lg += 2 {
		n := 1 << lg
		for _, p := range []int{8, 64} {
			if p > n {
				continue
			}
			for _, v := range codeletfft.Variants() {
				opts := codeletfft.NewOptions(n, v)
				opts.TaskSize = p
				opts.Check = true
				opts.Seed = *seed
				res, err := codeletfft.Run(opts)
				if err != nil {
					failures++
					fmt.Fprintf(os.Stderr, "fftcheck: N=2^%d P=%d %v: %v\n", lg, p, v, err)
					continue
				}
				tb.AddRow(fmt.Sprintf("2^%d", lg), p, v.String(),
					fmt.Sprintf("%.3g", res.MaxError), res.GFLOPS)
				if res.MaxError > worst {
					worst = res.MaxError
				}
			}
		}
	}
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fftcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("\nworst error %.3g across %d runs\n", worst, len(tb.Rows))

	failures += checkHostEngine(*minLog, *maxLog, *seed, *workers)
	failures += checkKernels(*minLog, *maxLog, *seed, *workers)
	failures += checkBatchAndReal(*minLog, *maxLog, *seed, *workers)
	failures += checkDist(*minLog, *maxLog, *seed)
	failures += checkArbitraryN(*seed, *workers)
	failures += checkConvolution(*seed, *workers)
	failures += checkSpectrogram(*seed, *workers)

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "fftcheck: %d failures\n", failures)
		os.Exit(1)
	}
}

// checkKernels verifies every butterfly kernel family against the
// reference DFT — an O(n²) evaluation independent of every FFT code
// path (capped at 2^14; the recursive FFT stands in as reference
// beyond that) — and against the radix-2 family, per the documented
// normalization: a fixed (plan, kernel) pair is bitwise deterministic,
// different kernels agree to rounding. Returns the failure count.
func checkKernels(minLog, maxLog int, seed int64, workers int) int {
	const dftCapLog = 14
	tb := &report.Table{Headers: []string{"N", "kernel", "vs reference", "vs radix-2", "roundtrip"}}
	failures := 0
	for lg := minLog; lg <= maxLog; lg += 2 {
		n := 1 << lg
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		var ref []complex128
		if lg <= dftCapLog {
			ref = codeletfft.DFT(x)
		} else {
			ref = codeletfft.FFT(x)
		}
		var scale float64
		for _, v := range ref {
			if m := math.Hypot(real(v), imag(v)); m > scale {
				scale = m
			}
		}
		r2, err := codeletfft.NewHostPlan(n,
			codeletfft.WithKernel(codeletfft.KernelRadix2),
			codeletfft.WithWorkers(workers), codeletfft.WithThreshold(1))
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: kernels N=2^%d: %v\n", lg, err)
			continue
		}
		base := append([]complex128(nil), x...)
		_ = r2.Transform(base)
		for _, k := range codeletfft.Kernels() {
			h, err := codeletfft.NewHostPlan(n,
				codeletfft.WithKernel(k),
				codeletfft.WithWorkers(workers), codeletfft.WithThreshold(1))
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: kernel %v N=2^%d: %v\n", k, lg, err)
				continue
			}
			data := append([]complex128(nil), x...)
			_ = h.Transform(data)
			var vsRef, vsR2 float64
			for i := range data {
				if d := data[i] - ref[i]; true {
					if v := math.Hypot(real(d), imag(d)); v > vsRef {
						vsRef = v
					}
				}
				if d := data[i] - base[i]; true {
					if v := math.Hypot(real(d), imag(d)); v > vsR2 {
						vsR2 = v
					}
				}
			}
			vsRef /= scale
			vsR2 /= scale
			_ = h.Inverse(data)
			var rt float64
			for i := range data {
				d := data[i] - x[i]
				if v := math.Hypot(real(d), imag(d)); v > rt {
					rt = v
				}
			}
			if vsRef > 1e-9 || vsR2 > 1e-9 || rt > 1e-9 {
				failures++
			}
			tb.AddRow(fmt.Sprintf("2^%d", lg), k.String(),
				fmt.Sprintf("%.3g", vsRef), fmt.Sprintf("%.3g", vsR2), fmt.Sprintf("%.3g", rt))
		}
	}
	fmt.Printf("\nkernel families vs reference DFT (relative, DFT capped at 2^%d):\n\n", dftCapLog)
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fftcheck:", err)
		os.Exit(1)
	}
	return failures
}

// checkDist verifies the cluster path: a 3-worker loopback cluster
// (full coordinator/worker shard protocol, in process) must match the
// single-node parallel transform for every N in the matrix across
// several four-step factorizations, and a cluster forward + inverse
// round trip must return the input. Returns the failure count.
func checkDist(minLog, maxLog int, seed int64) int {
	const clusterWorkers = 3
	tb := &report.Table{Headers: []string{"N", "split", "max error", "roundtrip error"}}
	failures := 0
	ctx := context.Background()
	for lg := minLog; lg <= maxLog; lg += 2 {
		n := 1 << lg
		splits := [][2]int{
			{1 << (lg / 2), 1 << (lg - lg/2)}, // near-square
			{1 << 2, 1 << (lg - 2)},           // short columns
			{1 << (lg - 2), 1 << 2},           // short rows
		}
		for _, split := range splits {
			n1, n2 := split[0], split[1]
			cl, err := cluster.NewLoopback(clusterWorkers, cluster.Config{
				Factor: func(int) (int, int) { return n1, n2 },
			})
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: dist N=2^%d: %v\n", lg, err)
				continue
			}

			rng := rand.New(rand.NewSource(seed))
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			want := append([]complex128(nil), x...)
			h, err := codeletfft.CachedHostPlan(n)
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: dist reference N=2^%d: %v\n", lg, err)
				cl.Close()
				continue
			}
			if err := h.Transform(want); err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: dist reference transform N=2^%d: %v\n", lg, err)
				cl.Close()
				continue
			}

			got := append([]complex128(nil), x...)
			if err := cl.TransformCtx(ctx, got); err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: dist N=2^%d %dx%d: %v\n", lg, n1, n2, err)
				cl.Close()
				continue
			}
			var worst float64
			for i := range got {
				d := got[i] - want[i]
				if v := math.Hypot(real(d), imag(d)); v > worst {
					worst = v
				}
			}
			if err := cl.InverseCtx(ctx, got); err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: dist inverse N=2^%d %dx%d: %v\n", lg, n1, n2, err)
				cl.Close()
				continue
			}
			var rt float64
			for i := range got {
				d := got[i] - x[i]
				if v := math.Hypot(real(d), imag(d)); v > rt {
					rt = v
				}
			}
			cl.Close()

			tol := 1e-12 * float64(n)
			if worst > tol || rt > tol {
				failures++
			}
			tb.AddRow(fmt.Sprintf("2^%d", lg), fmt.Sprintf("%dx%d", n1, n2),
				fmt.Sprintf("%.3g", worst), fmt.Sprintf("%.3g", rt))
		}
	}
	fmt.Printf("\ndistributed four-step cluster (%d loopback workers) vs single node:\n\n", clusterWorkers)
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fftcheck:", err)
		os.Exit(1)
	}
	return failures
}

// checkBatchAndReal verifies the serving-path APIs on the same matrix:
// TransformBatch/InverseBatch must be bitwise identical to a loop of
// serial transforms, and the real-input path must match the complex
// transform of the widened signal and round-trip back to the input.
// Returns the failure count.
func checkBatchAndReal(minLog, maxLog int, seed int64, workers int) int {
	const batchSize = 4
	tb := &report.Table{Headers: []string{"N", "batch == loop", "RFFT error", "RFFT roundtrip"}}
	failures := 0
	for lg := minLog; lg <= maxLog; lg += 2 {
		n := 1 << lg
		h, err := codeletfft.CachedHostPlan(n,
			codeletfft.WithWorkers(workers),
			codeletfft.WithThreshold(1))
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: batch N=2^%d: %v\n", lg, err)
			continue
		}
		rng := rand.New(rand.NewSource(seed))

		// Batched vs looped complex transforms, forward then inverse.
		batch := make([][]complex128, batchSize)
		want := make([][]complex128, batchSize)
		for t := range batch {
			batch[t] = make([]complex128, n)
			for i := range batch[t] {
				batch[t][i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			want[t] = append([]complex128(nil), batch[t]...)
			_ = h.Transform(want[t])
		}
		_ = h.TransformBatch(batch)
		exact := batchEqualBits(batch, want)
		for t := range want {
			_ = h.Inverse(want[t])
		}
		_ = h.InverseBatch(batch)
		exact = exact && batchEqualBits(batch, want)

		// Real-input path against the complex reference.
		x := make([]float64, n)
		wide := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			wide[i] = complex(x[i], 0)
		}
		rp, err := codeletfft.CachedRealPlan(n,
			codeletfft.WithWorkers(workers),
			codeletfft.WithThreshold(1))
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: rfft N=2^%d: %v\n", lg, err)
			continue
		}
		spec := make([]complex128, rp.SpectrumLen())
		if err := rp.Transform(spec, x); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: rfft N=2^%d: %v\n", lg, err)
			continue
		}
		_ = h.Transform(wide)
		var specErr float64
		for k := range spec {
			d := spec[k] - wide[k]
			if v := math.Hypot(real(d), imag(d)); v > specErr {
				specErr = v
			}
		}
		back := make([]float64, n)
		if err := rp.Inverse(back, spec); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: rfft inverse N=2^%d: %v\n", lg, err)
			continue
		}
		var rt float64
		for i := range back {
			if v := math.Abs(back[i] - x[i]); v > rt {
				rt = v
			}
		}

		if !exact || specErr > 1e-9 || rt > 1e-9 {
			failures++
		}
		verdict := "exact"
		if !exact {
			verdict = "MISMATCH"
		}
		tb.AddRow(fmt.Sprintf("2^%d", lg), verdict,
			fmt.Sprintf("%.3g", specErr), fmt.Sprintf("%.3g", rt))
	}
	fmt.Printf("\nbatched + real-input host paths (batch size %d):\n\n", batchSize)
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fftcheck:", err)
		os.Exit(1)
	}
	return failures
}

func batchEqualBits(a, b [][]complex128) bool {
	for t := range a {
		for i := range a[t] {
			if math.Float64bits(real(a[t][i])) != math.Float64bits(real(b[t][i])) ||
				math.Float64bits(imag(a[t][i])) != math.Float64bits(imag(b[t][i])) {
				return false
			}
		}
	}
	return true
}

// checkHostEngine verifies the parallel host engine against the serial
// host path: for every (N, P) in the matrix the parallel forward output
// must be bitwise identical to the serial one, and a parallel forward +
// inverse round trip must return the input. Returns the failure count.
func checkHostEngine(minLog, maxLog int, seed int64, workers int) int {
	tb := &report.Table{Headers: []string{"N", "task size", "parallel == serial", "roundtrip error"}}
	failures := 0
	for lg := minLog; lg <= maxLog; lg += 2 {
		n := 1 << lg
		for _, p := range []int{8, 64} {
			if p > n {
				continue
			}
			h, err := codeletfft.NewHostPlan(n,
				codeletfft.WithTaskSize(p),
				codeletfft.WithWorkers(workers),
				codeletfft.WithThreshold(1))
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: host N=2^%d P=%d: %v\n", lg, p, err)
				continue
			}

			rng := rand.New(rand.NewSource(seed))
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			serial := append([]complex128(nil), x...)
			_ = h.Transform(serial)
			par := append([]complex128(nil), x...)
			_ = h.Transform(par)

			exact := true
			for i := range par {
				if math.Float64bits(real(par[i])) != math.Float64bits(real(serial[i])) ||
					math.Float64bits(imag(par[i])) != math.Float64bits(imag(serial[i])) {
					exact = false
					break
				}
			}
			_ = h.Inverse(par)
			var rt float64
			for i := range par {
				d := par[i] - x[i]
				if v := math.Hypot(real(d), imag(d)); v > rt {
					rt = v
				}
			}
			if !exact || rt > 1e-9 {
				failures++
			}
			verdict := "exact"
			if !exact {
				verdict = "MISMATCH"
			}
			tb.AddRow(fmt.Sprintf("2^%d", lg), p, verdict, fmt.Sprintf("%.3g", rt))
		}
	}
	fmt.Printf("\nparallel host engine (%d workers):\n\n", workersLabel(workers))
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fftcheck:", err)
		os.Exit(1)
	}
	return failures
}

// checkArbitraryN verifies the arbitrary-N planner: for every radix
// family — primes (Bluestein), 3·2^k, 5·2^k, 7·3^j, powers of ten,
// highly-composite — each length plans through the facade and must
// match the O(N²) reference DFT within 1e-9 of the spectrum's peak
// magnitude. The table reports the family's worst relative error both
// as a ratio and in ULPs of the peak (error / (peak·2⁻⁵²)), the unit
// accuracy is usually quoted in. Returns the failure count.
func checkArbitraryN(seed int64, workers int) int {
	families := []struct {
		name    string
		lengths []int
	}{
		{"N=1", []int{1}},
		{"primes", []int{2, 3, 5, 7, 11, 13, 31, 61, 127, 251, 257}},
		{"3·2^k", []int{3, 6, 12, 48, 192, 768, 1536}},
		{"5·2^k", []int{5, 10, 40, 160, 640, 1280}},
		{"7·3^j", []int{7, 21, 63, 189, 567}},
		{"10^k", []int{10, 100, 1000}},
		{"highly-composite", []int{120, 720, 840, 1260, 2520}},
	}
	tb := &report.Table{Headers: []string{"family", "lengths", "worst N", "max rel error", "max ULP of peak"}}
	failures := 0
	for _, fam := range families {
		var worstRel, worstUlp float64
		worstN := fam.lengths[0]
		for _, n := range fam.lengths {
			h, err := codeletfft.NewHostPlan(n,
				codeletfft.WithWorkers(workers), codeletfft.WithThreshold(1))
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: arbitrary-N %s N=%d: %v\n", fam.name, n, err)
				continue
			}
			rng := rand.New(rand.NewSource(seed + int64(n)))
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			want := codeletfft.DFT(x)
			var peak float64
			for _, v := range want {
				if m := math.Hypot(real(v), imag(v)); m > peak {
					peak = m
				}
			}
			if peak == 0 {
				peak = 1
			}
			data := append([]complex128(nil), x...)
			_ = h.Transform(data)
			var worst float64
			for i := range data {
				d := data[i] - want[i]
				if v := math.Hypot(real(d), imag(d)); v > worst {
					worst = v
				}
			}
			rel := worst / peak
			if rel > worstRel {
				worstRel = rel
				worstUlp = worst / (peak * math.Exp2(-52))
				worstN = n
			}
			if rel > 1e-9 {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: arbitrary-N %s N=%d: relative error %.3g\n",
					fam.name, n, rel)
			}
		}
		tb.AddRow(fam.name, len(fam.lengths), worstN,
			fmt.Sprintf("%.3g", worstRel), fmt.Sprintf("%.1f", worstUlp))
	}
	fmt.Printf("\narbitrary-N planner vs reference DFT (per radix family):\n\n")
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fftcheck:", err)
		os.Exit(1)
	}
	return failures
}

func workersLabel(workers int) int {
	if workers > 0 {
		return workers
	}
	h, err := codeletfft.NewHostPlan(2)
	if err != nil {
		return 0
	}
	return h.Workers()
}
