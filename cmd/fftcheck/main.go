// Command fftcheck validates the numerics of every algorithm variant
// across a matrix of transform lengths and codelet sizes, comparing each
// simulated run's output against an independent reference FFT.
//
// Usage:
//
//	fftcheck                  # default matrix
//	fftcheck -maxlog 16       # up to N=2^16
package main

import (
	"flag"
	"fmt"
	"os"

	"codeletfft"
	"codeletfft/internal/report"
)

func main() {
	var (
		minLog = flag.Int("minlog", 10, "smallest transform: N=2^minlog")
		maxLog = flag.Int("maxlog", 14, "largest transform: N=2^maxlog")
		seed   = flag.Int64("seed", 1, "input seed")
	)
	flag.Parse()

	tb := &report.Table{Headers: []string{"N", "task size", "variant", "max error", "GFLOPS"}}
	worst := 0.0
	failures := 0
	for lg := *minLog; lg <= *maxLog; lg += 2 {
		n := 1 << lg
		for _, p := range []int{8, 64} {
			if p > n {
				continue
			}
			for _, v := range codeletfft.Variants() {
				opts := codeletfft.NewOptions(n, v)
				opts.TaskSize = p
				opts.Check = true
				opts.Seed = *seed
				res, err := codeletfft.Run(opts)
				if err != nil {
					failures++
					fmt.Fprintf(os.Stderr, "fftcheck: N=2^%d P=%d %v: %v\n", lg, p, v, err)
					continue
				}
				tb.AddRow(fmt.Sprintf("2^%d", lg), p, v.String(),
					fmt.Sprintf("%.3g", res.MaxError), res.GFLOPS)
				if res.MaxError > worst {
					worst = res.MaxError
				}
			}
		}
	}
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fftcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("\nworst error %.3g across %d runs\n", worst, len(tb.Rows))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "fftcheck: %d failures\n", failures)
		os.Exit(1)
	}
}
