// The convolution and spectrogram sections of fftcheck: overlap-save
// Convolve against the O(N·K) direct reference across segmentation
// regimes, the streaming filter against the batch path, STFT frames
// against the reference DFT with the Hann COLA reconstruction — and a
// live served-endpoint check that streams a spectrogram out of an
// in-process fftserved core while the server drains, proving zero
// in-flight requests are severed.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"codeletfft"
	"codeletfft/internal/fft"
	"codeletfft/internal/report"
	"codeletfft/internal/serve"
)

func randConvSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// checkConvolution verifies the public convolution API: Convolve
// against fft.DirectConvolve across the segmentation regimes, and the
// streaming filter against the batch result under ragged chunking.
// Returns the failure count.
func checkConvolution(seed int64, workers int) int {
	shapes := []struct {
		name string
		n, k int
	}{
		{"pow2 signal, FIR kernel", 1 << 12, 31},
		{"composite signal", 360, 25},
		{"prime signal", 257, 13},
		{"kernel beyond one segment", 1 << 12, 1 << 10},
		{"kernel longer than signal", 100, 300},
	}
	tb := &report.Table{Headers: []string{"shape", "N", "K", "segments", "max rel error", "stream rel error"}}
	failures := 0
	for _, sh := range shapes {
		p, err := codeletfft.NewConvPlan(sh.n, sh.k,
			codeletfft.WithWorkers(workers), codeletfft.WithThreshold(1))
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: conv %s: %v\n", sh.name, err)
			continue
		}
		rng := rand.New(rand.NewSource(seed + int64(sh.n)*31 + int64(sh.k)))
		x := randConvSignal(rng, sh.n)
		h := randConvSignal(rng, sh.k)
		got := make([]complex128, p.OutLen())
		if err := p.Convolve(got, x, h); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: conv %s: %v\n", sh.name, err)
			continue
		}
		want := make([]complex128, sh.n+sh.k-1)
		fft.DirectConvolve(want, x, h)
		var peak, worst float64
		for i := range want {
			peak = math.Max(peak, cmplx.Abs(want[i]))
			worst = math.Max(worst, cmplx.Abs(got[i]-want[i]))
		}
		if peak == 0 {
			peak = 1
		}
		rel := worst / peak
		if rel > 1e-9 {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: conv %s: relative error %.3g\n", sh.name, rel)
		}

		// The streaming filter over ragged chunks must reproduce the
		// batch result sample for sample.
		f, err := p.FilterStream(h)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: conv %s stream: %v\n", sh.name, err)
			continue
		}
		streamed := make([]complex128, 0, sh.n)
		for off := 0; off < sh.n; {
			c := min(1+rng.Intn(2*sh.k), sh.n-off)
			dst := make([]complex128, c)
			if err := f.Process(dst, x[off:off+c]); err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "fftcheck: conv %s stream: %v\n", sh.name, err)
				break
			}
			streamed = append(streamed, dst...)
			off += c
		}
		var streamWorst float64
		for i := range streamed {
			streamWorst = math.Max(streamWorst, cmplx.Abs(streamed[i]-want[i]))
		}
		streamRel := streamWorst / peak
		if streamRel > 1e-9 {
			failures++
			fmt.Fprintf(os.Stderr, "fftcheck: conv %s stream: relative error %.3g\n", sh.name, streamRel)
		}
		tb.AddRow(sh.name, sh.n, sh.k, p.Segments(),
			fmt.Sprintf("%.3g", rel), fmt.Sprintf("%.3g", streamRel))
	}
	fmt.Printf("\noverlap-save convolution vs direct O(N·K) reference:\n\n")
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fftcheck:", err)
		os.Exit(1)
	}
	return failures
}

// Wire shapes of the served spectrogram stream (POST /fft/stft).
type stftWireRequest struct {
	Frame   int       `json:"frame"`
	Hop     int       `json:"hop"`
	Window  string    `json:"window"`
	Samples []float64 `json:"samples"`
}

type stftWireLine struct {
	Frames int       `json:"frames"`
	I      int       `json:"i"`
	Re     []float64 `json:"re"`
	Im     []float64 `json:"im"`
	Error  string    `json:"error"`
}

// checkSpectrogram verifies the STFT plan against the reference DFT
// (with the Hann COLA reconstruction identity), then exercises the
// served endpoint under graceful drain: a stream admitted before the
// drain begins must deliver every frame, a stream arriving after must
// shed with 503, and Drain must complete with an empty queue. Returns
// the failure count.
func checkSpectrogram(seed int64, workers int) int {
	failures := 0
	const frame, hop = 256, 64
	win := codeletfft.HannWindow(frame)
	p, err := codeletfft.NewSTFTPlan(frame, hop, win,
		codeletfft.WithWorkers(workers), codeletfft.WithThreshold(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fftcheck: stft: %v\n", err)
		return 1
	}
	rng := rand.New(rand.NewSource(seed + 99))
	x := make([]float64, 40*hop+frame)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	nf := p.NumFrames(len(x))
	frames := make([][]complex128, nf)
	for i := range frames {
		frames[i] = make([]complex128, frame)
	}
	if err := p.Transform(frames, x); err != nil {
		fmt.Fprintf(os.Stderr, "fftcheck: stft: %v\n", err)
		return 1
	}
	var worst float64
	for f := 0; f < nf; f++ {
		ref := make([]complex128, frame)
		for i := range ref {
			ref[i] = complex(x[f*hop+i]*win[i], 0)
		}
		want := codeletfft.DFT(ref)
		for k := range want {
			worst = math.Max(worst, cmplx.Abs(frames[f][k]-want[k]))
		}
	}
	if worst > 1e-9*float64(frame) {
		failures++
		fmt.Fprintf(os.Stderr, "fftcheck: stft vs DFT: worst error %.3g\n", worst)
	}
	fmt.Printf("\nspectrogram: %d frames of %d bins vs reference DFT, worst error %.3g\n", nf, frame, worst)

	failures += checkServedSpectrogramDrain(seed)
	return failures
}

// checkServedSpectrogramDrain runs the drain e2e against a live serving
// core: stream a spectrogram large enough to outlast socket buffering,
// flip the server into draining mode after the first frame arrives, and
// require every remaining frame to flow — zero severed in-flight
// requests — while new work sheds with 503.
func checkServedSpectrogramDrain(seed int64) int {
	const frame, hop = 256, 16
	s := serve.New(serve.Config{BatchWindow: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(seed + 7))
	// ~1000 frames → a multi-megabyte NDJSON body, far beyond loopback
	// socket buffering, so the handler cannot finish before the drain
	// begins below.
	samples := make([]float64, frame+1000*hop)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	wantFrames := 1 + (len(samples)-frame)/hop

	body, _ := json.Marshal(stftWireRequest{Frame: frame, Hop: hop, Window: "hann", Samples: samples})
	resp, err := http.Post(ts.URL+"/fft/stft", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: status %d\n", resp.StatusCode)
		return 1
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: no header line: %v\n", sc.Err())
		return 1
	}
	var hdr stftWireLine
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Frames != wantFrames {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: header %q (err %v), want %d frames\n",
			sc.Text(), err, wantFrames)
		return 1
	}

	// Drain begins after the first frame is on the wire — squarely
	// mid-stream.
	got := 0
	drained := false
	for sc.Scan() {
		var line stftWireLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			fmt.Fprintf(os.Stderr, "fftcheck: served stft: bad line %q: %v\n", sc.Text(), err)
			return 1
		}
		if line.Error != "" {
			fmt.Fprintf(os.Stderr, "fftcheck: served stft: stream severed after %d/%d frames: %s\n",
				got, wantFrames, line.Error)
			return 1
		}
		got++
		if !drained {
			s.StartDrain()
			drained = true
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: reading stream: %v\n", err)
		return 1
	}
	if got != wantFrames {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: %d/%d frames survived the drain\n", got, wantFrames)
		return 1
	}

	// New work arriving during/after the drain is refused, not queued.
	resp2, err := http.Post(ts.URL+"/fft/stft", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: post-drain request: %v\n", err)
		return 1
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: post-drain status %d, want 503\n", resp2.StatusCode)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fftcheck: served stft: drain: %v\n", err)
		return 1
	}
	fmt.Printf("served spectrogram: %d frames streamed through a graceful drain, 0 severed; post-drain sheds 503\n", wantFrames)
	return 0
}
