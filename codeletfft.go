// Package codeletfft reproduces "Towards Memory-Load Balanced Fast
// Fourier Transformations in Fine-grain Execution Models" (Chen, Wu,
// Zuckerman, Gao — IPDPS Workshops 2013): a codelet-model FFT on a
// simulated IBM Cyclops-64 whose execution order is scheduled to balance
// the load on the four off-chip DRAM banks.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/sim      discrete-event engine
//   - internal/c64      Cyclops-64 machine model (ports, interleave, TUs)
//   - internal/codelet  codelet runtime (pools, counters, barriers)
//   - internal/fft      FFT math (plans, kernels, reference transforms)
//   - internal/host     parallel host execution engine (worker pool)
//   - internal/cache    sharded LRU cache behind CachedHostPlan
//   - internal/core     the paper's five algorithm variants
//   - internal/exp      one runner per figure/table of the evaluation
//
// Quick start:
//
//	opts := codeletfft.NewOptions(1<<15, codeletfft.FineGuided)
//	opts.Check = true
//	res, err := codeletfft.Run(opts)
//	// res.GFLOPS, res.BankSkew(), res.Output ...
//
// The staged kernels are also a plain host FFT library. HostPlan runs
// them serially or — the real-hardware counterpart to the paper's
// fine-grain scheduling — sharded across goroutines, one chunk of each
// stage's independent butterfly tasks per worker. Plans are built with
// functional options; every knob has a sensible default:
//
//	h, err := codeletfft.NewHostPlan(1<<20,
//	    codeletfft.WithTaskSize(64),     // P-point kernels (default 64)
//	    codeletfft.WithWorkers(8),       // default GOMAXPROCS
//	    codeletfft.WithThreshold(1<<13)) // serial below this size
//	h.ParallelTransform(data) // bitwise identical to h.Transform(data)
//
// Serving workloads get three more paths on the same engine:
// TransformBatch/InverseBatch push many same-size transforms through
// one worker-pool dispatch with zero steady-state allocation;
// RealTransform/RealInverse handle real-valued signals via a packed
// N/2-point transform at about twice the complex path's speed; and
// CachedHostPlan memoizes plan cores in a process-wide, sharded,
// size-bounded cache so plans can be resolved per request:
//
//	h, err := codeletfft.CachedHostPlan(n, codeletfft.WithWorkers(8))
//	h.TransformBatch(batch)            // [][]complex128, each length N
//	err = h.RealTransform(spec, x)     // x []float64; N/2+1 Hermitian bins
//
// Construction errors wrap the sentinels ErrNotPowerOfTwo and
// ErrBadTaskSize; wrong-length slices panic with an error wrapping
// ErrLengthMismatch. ParallelTransform falls back to the serial path
// below the threshold (default 8192 elements), where dispatch overhead
// would dominate. The parallel engine is hardened by fuzz targets
// (internal/fft: FuzzTransformRoundTrip, FuzzParallelMatchesSerial,
// FuzzRealRoundTrip), a metamorphic property suite (linearity,
// Parseval, impulse and shift theorems over every plan shape),
// allocation guards on the batched path, and a `go test -race` CI gate.
package codeletfft

import (
	"codeletfft/internal/c64"
	"codeletfft/internal/codelet"
	"codeletfft/internal/core"
)

// Re-exported configuration and result types.
type (
	// Options configures one simulated FFT execution.
	Options = core.Options
	// Result reports one simulated FFT execution.
	Result = core.Result
	// Variant selects one of the paper's algorithm versions.
	Variant = core.Variant
	// Order arranges the initial codelets in the ready pool.
	Order = core.Order
	// MachineConfig holds the Cyclops-64 model parameters.
	MachineConfig = c64.Config
	// Discipline selects the ready-pool service order.
	Discipline = codelet.Discipline
	// FineConfig names one (order, discipline) fine-grain combination.
	FineConfig = core.FineConfig
	// BestWorst holds the extremes of a fine-grain ensemble.
	BestWorst = core.BestWorst
)

// Algorithm versions (the paper's Table I).
const (
	Coarse     = core.Coarse
	CoarseHash = core.CoarseHash
	Fine       = core.Fine
	FineHash   = core.FineHash
	FineGuided = core.FineGuided
)

// Initial pool orders.
const (
	OrderNatural     = core.OrderNatural
	OrderReversed    = core.OrderReversed
	OrderBitReversed = core.OrderBitReversed
	OrderRandom      = core.OrderRandom
)

// Pool disciplines.
const (
	FIFO = codelet.FIFO
	LIFO = codelet.LIFO
)

// NewOptions returns paper-default options for an N-point transform.
func NewOptions(n int, v Variant) Options { return core.NewOptions(n, v) }

// DefaultMachine returns the published Cyclops-64 parameters.
func DefaultMachine() MachineConfig { return c64.Default() }

// Run simulates one FFT execution.
func Run(opts Options) (*Result, error) { return core.Run(opts) }

// RunFineBestWorst sweeps the plain fine-grain variant over an ensemble
// of initial orders and pool disciplines (nil = the default ensemble) and
// returns the fastest and slowest runs — the paper's "fine best" and
// "fine worst".
func RunFineBestWorst(base Options, configs []FineConfig) (*BestWorst, error) {
	return core.RunFineBestWorst(base, configs)
}

// TheoreticalPeakGFLOPS evaluates the paper's equations (1)-(4): the
// DRAM-bandwidth ceiling of a P-point-task FFT (10 GFLOPS for P=64).
func TheoreticalPeakGFLOPS(cfg MachineConfig, taskSize int) float64 {
	return core.TheoreticalPeakGFLOPS(cfg, taskSize)
}

// Variants lists all algorithm versions in presentation order.
func Variants() []Variant { return core.Variants() }

// Options2D configures a simulated 2-D (row-column) FFT; Result2D
// reports it. The column pass's stride-Cols accesses are a bank-balance
// stress case beyond the paper's 1-D evaluation.
type (
	Options2D = core.Options2D
	Result2D  = core.Result2D
)

// Run2D simulates a 2-D FFT: a fine-grain row pass, a barrier, and a
// fine-grain column pass.
func Run2D(opts Options2D) (*Result2D, error) { return core.Run2D(opts) }
