// Package codeletfft reproduces "Towards Memory-Load Balanced Fast
// Fourier Transformations in Fine-grain Execution Models" (Chen, Wu,
// Zuckerman, Gao — IPDPS Workshops 2013): a codelet-model FFT on a
// simulated IBM Cyclops-64 whose execution order is scheduled to balance
// the load on the four off-chip DRAM banks.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/sim      discrete-event engine
//   - internal/c64      Cyclops-64 machine model (ports, interleave, TUs)
//   - internal/codelet  codelet runtime (pools, counters, barriers)
//   - internal/fft      FFT math (plans, kernels, reference transforms)
//   - internal/host     parallel host execution engine (worker pool)
//   - internal/cache    sharded LRU cache behind CachedHostPlan
//   - internal/core     the paper's five algorithm variants
//   - internal/exp      one runner per figure/table of the evaluation
//
// Quick start:
//
//	opts := codeletfft.NewOptions(1<<15, codeletfft.FineGuided)
//	opts.Check = true
//	res, err := codeletfft.Run(opts)
//	// res.GFLOPS, res.BankSkew(), res.Output ...
//
// The staged kernels are also a plain host FFT library, fronted by one
// interface: Plan. Every provider — a host plan, a cached host plan,
// the cluster client — implements the same six methods (Transform,
// Inverse, TransformBatch, InverseBatch, and the context-aware
// TransformCtx/InverseCtx), so code written against Plan moves between
// single-node and sharded execution unchanged:
//
//	one-shot   h, _ := codeletfft.NewHostPlan(1<<20)          h.Transform(data)
//	batched    h, _ := codeletfft.NewHostPlan(n)              h.TransformBatch(batch)
//	real       r, _ := codeletfft.NewRealPlan(n)              r.Transform(spec, x)
//	cached     h, _ := codeletfft.CachedHostPlan(n)           h.Transform(data)
//	cluster    cl, _ := cluster.New(cluster.Config{...})      cl.TransformCtx(ctx, data)
//
// Plans are built with functional options; every knob has a default:
//
//	h, err := codeletfft.NewHostPlan(1<<20,
//	    codeletfft.WithTaskSize(64),      // P-point kernels (default 64)
//	    codeletfft.WithWorkers(8),        // default GOMAXPROCS
//	    codeletfft.WithThreshold(1<<13),  // serial below this size
//	    codeletfft.WithKernel(codeletfft.KernelAuto)) // the default
//
// Three butterfly kernel families run on the same staged decomposition:
// radix-2 (the paper's formulation), radix-4 (three-multiply
// butterflies), and split-radix (the lowest multiplication count).
// WithKernel pins one; KernelAuto — the default — races the candidates
// on the plan's exact (N, task size, workers) shape at first use and
// memoizes the winner process-wide, so later plans of the same shape
// skip the measurement. For a fixed plan and kernel, serial, parallel,
// and batched execution are bitwise identical; different kernels agree
// to rounding (about 1e-9 relative error at N=2^12).
//
// Serving workloads lean on the same engine: TransformBatch pushes many
// same-size transforms through one worker-pool dispatch with zero
// steady-state allocation; RealPlan handles real-valued signals of any
// even length via a packed N/2-point transform at about twice the
// complex path's speed; ConvPlan and STFTPlan run overlap-save
// convolution and streaming spectrograms on the batched engine;
// CachedHostPlan and CachedRealPlan memoize plans in process-wide,
// sharded, size-bounded caches keyed by (N, task size, kernel) so plans
// can be resolved per request.
//
// Construction errors wrap the sentinels ErrUnsupportedLength and
// ErrBadTaskSize; wrong-length slices panic with an error wrapping
// ErrLengthMismatch (for batches, the error names the offending row's
// index). Host plans always return a nil error from Plan methods —
// the error return exists for transport-backed providers like the
// cluster client. The engine is hardened by fuzz targets (internal/fft:
// FuzzTransformRoundTrip, FuzzParallelMatchesSerial, FuzzRealRoundTrip,
// FuzzKernelParity), a metamorphic property suite (linearity, Parseval,
// impulse and shift theorems over every plan shape), a cross-kernel
// parity suite (every kernel vs the reference DFT at every size),
// allocation guards on the batched path, and a `go test -race` CI gate.
package codeletfft

import (
	"codeletfft/internal/c64"
	"codeletfft/internal/codelet"
	"codeletfft/internal/core"
)

// Re-exported configuration and result types.
type (
	// Options configures one simulated FFT execution.
	Options = core.Options
	// Result reports one simulated FFT execution.
	Result = core.Result
	// Variant selects one of the paper's algorithm versions.
	Variant = core.Variant
	// Order arranges the initial codelets in the ready pool.
	Order = core.Order
	// MachineConfig holds the Cyclops-64 model parameters.
	MachineConfig = c64.Config
	// Discipline selects the ready-pool service order.
	Discipline = codelet.Discipline
	// FineConfig names one (order, discipline) fine-grain combination.
	FineConfig = core.FineConfig
	// BestWorst holds the extremes of a fine-grain ensemble.
	BestWorst = core.BestWorst
)

// Algorithm versions (the paper's Table I).
const (
	Coarse     = core.Coarse
	CoarseHash = core.CoarseHash
	Fine       = core.Fine
	FineHash   = core.FineHash
	FineGuided = core.FineGuided
)

// Initial pool orders.
const (
	OrderNatural     = core.OrderNatural
	OrderReversed    = core.OrderReversed
	OrderBitReversed = core.OrderBitReversed
	OrderRandom      = core.OrderRandom
)

// Pool disciplines.
const (
	FIFO = codelet.FIFO
	LIFO = codelet.LIFO
)

// NewOptions returns paper-default options for an N-point transform.
func NewOptions(n int, v Variant) Options { return core.NewOptions(n, v) }

// DefaultMachine returns the published Cyclops-64 parameters.
func DefaultMachine() MachineConfig { return c64.Default() }

// Run simulates one FFT execution.
func Run(opts Options) (*Result, error) { return core.Run(opts) }

// RunFineBestWorst sweeps the plain fine-grain variant over an ensemble
// of initial orders and pool disciplines (nil = the default ensemble) and
// returns the fastest and slowest runs — the paper's "fine best" and
// "fine worst".
func RunFineBestWorst(base Options, configs []FineConfig) (*BestWorst, error) {
	return core.RunFineBestWorst(base, configs)
}

// TheoreticalPeakGFLOPS evaluates the paper's equations (1)-(4): the
// DRAM-bandwidth ceiling of a P-point-task FFT (10 GFLOPS for P=64).
func TheoreticalPeakGFLOPS(cfg MachineConfig, taskSize int) float64 {
	return core.TheoreticalPeakGFLOPS(cfg, taskSize)
}

// Variants lists all algorithm versions in presentation order.
func Variants() []Variant { return core.Variants() }

// Options2D configures a simulated 2-D (row-column) FFT; Result2D
// reports it. The column pass's stride-Cols accesses are a bank-balance
// stress case beyond the paper's 1-D evaluation.
type (
	Options2D = core.Options2D
	Result2D  = core.Result2D
)

// Run2D simulates a 2-D FFT: a fine-grain row pass, a barrier, and a
// fine-grain column pass.
func Run2D(opts Options2D) (*Result2D, error) { return core.Run2D(opts) }
