package codeletfft

import (
	"context"
	"strings"

	"codeletfft/internal/ooc"
)

// ErrCorruptSegment reports an out-of-core spill segment that failed
// integrity verification (truncation, bit flips, wrong format version).
// Errors from OOC transforms wrap it; test with errors.Is.
var ErrCorruptSegment = ooc.ErrCorruptSegment

// OOCPolicy orders the strips and segment fetches of an out-of-core
// run. Ordering never changes the output — only the I/O schedule the
// per-channel prefetch counters measure.
type OOCPolicy = ooc.Policy

// OOCFIFO returns the natural-order prefetch policy (the default).
func OOCFIFO() OOCPolicy { return ooc.FIFO() }

// OOCGuided returns the seeded-LIFO sibling-group prefetch policy —
// the out-of-core analogue of the paper's guided codelet scheduling.
func OOCGuided(seed int) OOCPolicy { return ooc.Guided(seed) }

// ParseOOCPolicy maps flag spellings ("fifo", "guided") to a policy.
func ParseOOCPolicy(name string, seed int) (OOCPolicy, error) { return ooc.ParsePolicy(name, seed) }

// OOCOption configures NewOOCPlan.
type OOCOption = ooc.Option

// OOCSpillDir places spill files under dir (default the system temp
// directory).
func OOCSpillDir(dir string) OOCOption { return ooc.WithSpillDir(dir) }

// OOCMemoryBudget bounds the plan's resident staging buffers to about
// b bytes (default 256 MiB); the tile height is derived from it.
func OOCMemoryBudget(b int64) OOCOption { return ooc.WithMemoryBudget(b) }

// OOCTileVecs pins the tile height (vectors staged per tile, a power
// of two) instead of deriving it from the memory budget.
func OOCTileVecs(v int) OOCOption { return ooc.WithTileVecs(v) }

// OOCWorkers sets the FFT compute goroutines per tile (default
// GOMAXPROCS).
func OOCWorkers(n int) OOCOption { return ooc.WithWorkers(n) }

// OOCIOWorkers sets the staging goroutines per pipeline stage
// (default 4).
func OOCIOWorkers(n int) OOCOption { return ooc.WithIOWorkers(n) }

// OOCChannels sets how many modelled I/O channels the prefetch
// counters split bytes and stalls across (default 4).
func OOCChannels(n int) OOCOption { return ooc.WithChannels(n) }

// OOCStripe sets the channel model's byte stripe width (default 1 MiB).
func OOCStripe(b int64) OOCOption { return ooc.WithStripe(b) }

// OOCSchedule selects the prefetch scheduling policy (default
// OOCFIFO()).
func OOCSchedule(p OOCPolicy) OOCOption { return ooc.WithPolicy(p) }

// OOCPlan computes transforms too large for RAM by staging a four-step
// decomposition through a file-backed spill store under a fixed memory
// budget. At sizes where both fit, its output is bitwise identical to
// the in-core four-step reference (and its sub-FFTs are the same
// staged kernels every other plan runs). An OOCPlan implements Plan,
// so code written against the interface can swap it in unchanged; the
// file endpoints (TransformFile) are the genuinely out-of-core entry
// points — the in-memory methods exist for interface compatibility and
// bitwise cross-checks at co-runnable sizes.
type OOCPlan struct {
	p *ooc.Plan
}

var _ Plan = (*OOCPlan)(nil)

// NewOOCPlan builds an out-of-core plan for n-point transforms (n a
// power of two ≥ 4):
//
//	p, err := codeletfft.NewOOCPlan(1<<28,
//	    codeletfft.OOCSpillDir("/scratch"),
//	    codeletfft.OOCMemoryBudget(512<<20),
//	    codeletfft.OOCSchedule(codeletfft.OOCGuided(1)))
//	err = p.TransformFile(ctx, "out.c128", "in.c128")
func NewOOCPlan(n int, opts ...OOCOption) (*OOCPlan, error) {
	p, err := ooc.NewPlan(n, opts...)
	if err != nil {
		return nil, err
	}
	return &OOCPlan{p: p}, nil
}

// N returns the transform length.
func (o *OOCPlan) N() int { return o.p.N() }

// Factors returns the four-step split N = N1·N2.
func (o *OOCPlan) Factors() (n1, n2 int) { return o.p.Factors() }

// TileVecs returns the vectors staged per tile in the column and row
// phases — the knob the memory budget resolves.
func (o *OOCPlan) TileVecs() (s2, s1 int) { return o.p.TileVecs() }

// SpillBytes returns the on-disk footprint of one transform's spill
// store, segment headers included.
func (o *OOCPlan) SpillBytes() int64 { return o.p.SpillBytes() }

// String describes the plan geometry and policy.
func (o *OOCPlan) String() string { return o.p.String() }

// Transform applies the forward FFT in place through the full staged
// path (spill store included). len(data) must be N.
func (o *OOCPlan) Transform(data []complex128) error { return o.p.Transform(data) }

// Inverse applies the inverse FFT in place through the staged path.
func (o *OOCPlan) Inverse(data []complex128) error { return o.p.Inverse(data) }

// TransformCtx is Transform with cancellation between staging steps.
func (o *OOCPlan) TransformCtx(ctx context.Context, data []complex128) error {
	return o.p.TransformCtx(ctx, data)
}

// InverseCtx is Inverse with cancellation between staging steps.
func (o *OOCPlan) InverseCtx(ctx context.Context, data []complex128) error {
	return o.p.InverseCtx(ctx, data)
}

// TransformBatch transforms every row sequentially (each row is a full
// staged run).
func (o *OOCPlan) TransformBatch(batch [][]complex128) error { return o.p.TransformBatch(batch) }

// InverseBatch inverse-transforms every row sequentially.
func (o *OOCPlan) InverseBatch(batch [][]complex128) error { return o.p.InverseBatch(batch) }

// TransformFile transforms N points from srcPath into dstPath — flat
// native-order complex128 files — without ever holding more than the
// memory budget in RAM. Passing the same path transforms in place.
func (o *OOCPlan) TransformFile(ctx context.Context, dstPath, srcPath string) error {
	return o.p.TransformFile(ctx, dstPath, srcPath)
}

// InverseFile is TransformFile for the inverse transform.
func (o *OOCPlan) InverseFile(ctx context.Context, dstPath, srcPath string) error {
	return o.p.InverseFile(ctx, dstPath, srcPath)
}

// Snapshot returns the plan's metrics — per-channel prefetch bytes and
// stalls, per-phase byte and time totals, segment and corruption
// counts — as a flat name → value map.
func (o *OOCPlan) Snapshot() map[string]float64 { return o.p.Registry().Snapshot() }

// MetricsText renders the plan's metrics in the same plain-text
// exposition format the daemons serve at /metrics.
func (o *OOCPlan) MetricsText() string {
	var b strings.Builder
	o.p.Registry().WriteText(&b)
	return b.String()
}
