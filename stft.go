// Streaming spectrograms. An STFTPlan slides a windowed frame across a
// real-valued signal at a fixed hop and transforms each frame through
// the batched host engine — all frames of one call ride a single
// TransformBatch dispatch, and the streaming variant reuses one
// persistent frame buffer so steady-state operation allocates nothing.
package codeletfft

import (
	"fmt"

	"codeletfft/internal/fft"
)

// HannWindow returns the length-n periodic Hann window
// w[i] = 0.5·(1 − cos(2πi/n)). At hop = n/2 the shifted windows sum to
// exactly 1 (the constant-overlap-add property), so a spectrogram taken
// with it can be inverted by plain overlap-add.
func HannWindow(n int) []float64 { return fft.Hann(n) }

// STFTPlan computes short-time Fourier transforms: length-frame windows
// of a real signal, advanced by hop samples, each multiplied by the
// analysis window and transformed. Any frame length ≥ 1 is accepted —
// non-power-of-two frames route through the mixed-radix or Bluestein
// planner like every HostPlan. An STFTPlan is immutable after
// construction and safe for concurrent use; Stream() hands out the
// stateful per-stream object.
type STFTPlan struct {
	frame int
	hop   int
	win   []float64 // nil = rectangular
	plan  *HostPlan
}

// NewSTFTPlan builds a spectrogram plan with the given frame length and
// hop (both ≥ 1, hop ≤ frame). window is the analysis window applied to
// each frame before transforming; nil means rectangular, otherwise its
// length must equal frame (mismatches panic with an error wrapping
// ErrLengthMismatch). The window slice is copied. opts configure the
// frame plan's engine exactly as for NewHostPlan.
func NewSTFTPlan(frame, hop int, window []float64, opts ...HostOption) (*STFTPlan, error) {
	if frame < 1 {
		return nil, fmt.Errorf("%w: spectrogram needs a frame length ≥ 1, got %d", ErrUnsupportedLength, frame)
	}
	if hop < 1 || hop > frame {
		return nil, fmt.Errorf("%w: spectrogram hop must be in [1, frame]; got hop %d for frame %d", ErrUnsupportedLength, hop, frame)
	}
	if window != nil && len(window) != frame {
		panic(fft.LengthError("window", len(window), frame))
	}
	plan, err := CachedHostPlan(frame, opts...)
	if err != nil {
		return nil, err
	}
	p := &STFTPlan{frame: frame, hop: hop, plan: plan}
	if window != nil {
		p.win = append([]float64(nil), window...)
	}
	return p, nil
}

// FrameLen returns the analysis frame length (the per-frame spectrum
// length).
func (p *STFTPlan) FrameLen() int { return p.frame }

// Hop returns the sample advance between consecutive frames.
func (p *STFTPlan) Hop() int { return p.hop }

// NumFrames returns how many complete frames an n-sample signal yields:
// 1 + ⌊(n−frame)/hop⌋, or 0 when n < frame. Trailing samples that do
// not fill a frame are dropped, never zero-padded.
func (p *STFTPlan) NumFrames(n int) int {
	if n < p.frame {
		return 0
	}
	return 1 + (n-p.frame)/p.hop
}

// Transform computes the spectrogram of x: frame f is
// x[f·hop : f·hop+frame] multiplied by the window, transformed in
// place into dst[f]. len(dst) must be NumFrames(len(x)) and every
// dst[f] must have length frame. All frames are dispatched as one
// TransformBatch, so the stage-barrier cost is paid once.
func (p *STFTPlan) Transform(dst [][]complex128, x []float64) error {
	nf := p.NumFrames(len(x))
	if len(dst) != nf {
		panic(fft.LengthError("spectrogram frames", len(dst), nf))
	}
	for f := 0; f < nf; f++ {
		row := dst[f]
		if len(row) != p.frame {
			panic(fft.BatchLengthError(f, len(row), p.frame))
		}
		p.load(row, x[f*p.hop:f*p.hop+p.frame])
	}
	if nf == 0 {
		return nil
	}
	return p.plan.TransformBatch(dst)
}

// load fills one frame buffer with windowed real samples.
func (p *STFTPlan) load(dst []complex128, src []float64) {
	if p.win != nil {
		for i, v := range src {
			dst[i] = complex(v*p.win[i], 0)
		}
		return
	}
	for i, v := range src {
		dst[i] = complex(v, 0)
	}
}

// Stream returns a stateful streaming spectrogram over this plan: feed
// samples with Write, pop completed frames with Next. After the first
// few calls warm its buffers, the Write/Next cycle performs no
// allocation. A stream must not be shared across goroutines.
func (p *STFTPlan) Stream() *STFTStream {
	s := &STFTStream{
		p:   p,
		buf: make([]float64, 0, 2*p.frame),
	}
	s.frame = make([]complex128, p.frame)
	s.batch1 = [][]complex128{s.frame}
	return s
}

// STFTStream is the streaming form of an STFTPlan: an internal sample
// queue holding at most frame+hop samples, one persistent frame buffer,
// and a batch-of-1 dispatch per completed frame.
type STFTStream struct {
	p      *STFTPlan
	buf    []float64
	frame  []complex128
	batch1 [][]complex128
}

// Write appends samples to the stream. It never blocks and never
// transforms; call Next to drain completed frames.
func (s *STFTStream) Write(x []float64) {
	s.buf = append(s.buf, x...)
}

// Pending returns how many complete frames are ready for Next.
func (s *STFTStream) Pending() int { return s.p.NumFrames(len(s.buf)) }

// Next transforms the oldest pending frame into dst (length frame) and
// advances the stream by hop samples. It returns false without touching
// dst when no complete frame is buffered. In steady state Next performs
// no allocation: the frame is windowed into a persistent buffer,
// transformed through the pooled batch path, and copied out.
func (s *STFTStream) Next(dst []complex128) (bool, error) {
	if len(dst) != s.p.frame {
		panic(fft.LengthError("spectrogram frame", len(dst), s.p.frame))
	}
	if len(s.buf) < s.p.frame {
		return false, nil
	}
	s.p.load(s.frame, s.buf[:s.p.frame])
	if err := s.p.plan.TransformBatch(s.batch1); err != nil {
		return false, err
	}
	copy(dst, s.frame)
	n := copy(s.buf, s.buf[s.p.hop:])
	s.buf = s.buf[:n]
	return true, nil
}

// Reset discards all buffered samples.
func (s *STFTStream) Reset() { s.buf = s.buf[:0] }
