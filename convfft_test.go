// Property tests of the public convolution API: overlap-save Convolve
// against the O(N·K) direct reference across power-of-two, composite,
// and prime shapes; the edge regimes (kernel longer than a segment,
// kernel longer than the signal); CrossCorrelate's lag identity; and
// the streaming filter's equivalence to batch convolution under
// arbitrary chunkings with zero steady-state allocations.
package codeletfft_test

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"codeletfft"
	"codeletfft/internal/fft"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxRelErr(got, want []complex128) float64 {
	scale := 0.0
	for _, v := range want {
		scale = math.Max(scale, cmplx.Abs(v))
	}
	if scale == 0 {
		scale = 1
	}
	var m float64
	for i := range got {
		m = math.Max(m, cmplx.Abs(got[i]-want[i]))
	}
	return m / scale
}

// TestConvolveMatchesDirect is the acceptance property: overlap-save
// convolution through the batched engine agrees with the direct O(N·K)
// reference to 1e-9 relative error across signal-length regimes —
// power of two, composite (mixed-radix), prime (Bluestein-planned
// lengths), single-sample, and both kernel-dominates cases.
func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, k int }{
		{1 << 10, 31},      // pow2 signal, small kernel
		{360, 25},          // composite
		{257, 13},          // prime
		{1, 1},             // degenerate minimum
		{2000, 1},          // identity-like kernel length
		{500, 400},         // kernel comparable to the signal
		{100, 300},         // kernel longer than the signal
		{1 << 12, 1 << 10}, // kernel far beyond one default segment
	} {
		p, err := codeletfft.NewConvPlan(tc.n, tc.k)
		if err != nil {
			t.Fatalf("NewConvPlan(%d, %d): %v", tc.n, tc.k, err)
		}
		x := randComplex(rng, tc.n)
		h := randComplex(rng, tc.k)
		got := make([]complex128, p.OutLen())
		if err := p.Convolve(got, x, h); err != nil {
			t.Fatalf("Convolve(%d, %d): %v", tc.n, tc.k, err)
		}
		want := make([]complex128, tc.n+tc.k-1)
		fft.DirectConvolve(want, x, h)
		if rel := maxRelErr(got, want); rel > 1e-9 {
			t.Fatalf("n=%d k=%d: Convolve diverged from direct by rel %g", tc.n, tc.k, rel)
		}
	}
}

// TestCrossCorrelate pins the lag identity: output position K-1+ℓ holds
// Σ_j x[j]·conj(h[j-ℓ]), with zero lag at dst[K-1].
func TestCrossCorrelate(t *testing.T) {
	const n, k = 300, 17
	rng := rand.New(rand.NewSource(23))
	x := randComplex(rng, n)
	h := randComplex(rng, k)
	p, err := codeletfft.NewConvPlan(n, k)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, p.OutLen())
	if err := p.CrossCorrelate(got, x, h); err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n+k-1)
	for lag := -(k - 1); lag < n; lag++ {
		var sum complex128
		for j := range x {
			if t := j - lag; t >= 0 && t < k {
				sum += x[j] * cmplx.Conj(h[t])
			}
		}
		want[k-1+lag] = sum
	}
	if rel := maxRelErr(got, want); rel > 1e-9 {
		t.Fatalf("CrossCorrelate diverged from the lag sum by rel %g", rel)
	}
	// Self-correlation peaks at zero lag (dst[K-1]).
	self, err := codeletfft.NewConvPlan(k, k)
	if err != nil {
		t.Fatal(err)
	}
	auto := make([]complex128, self.OutLen())
	if err := self.CrossCorrelate(auto, h, h); err != nil {
		t.Fatal(err)
	}
	peak := cmplx.Abs(auto[k-1])
	for i, v := range auto {
		if i != k-1 && cmplx.Abs(v) > peak+1e-9 {
			t.Fatalf("autocorrelation peak at lag %d, want zero lag (index %d)", i-(k-1), k-1)
		}
	}
}

// TestFilterStreamMatchesConvolve feeds a signal through the streaming
// filter in deliberately awkward chunk sizes — smaller than the kernel,
// larger than a segment's fresh count, and ragged at the end — and
// checks the output equals the first N samples of the batch
// convolution. A Reset mid-life must restart the history cleanly.
func TestFilterStreamMatchesConvolve(t *testing.T) {
	const n, k = 3000, 41
	rng := rand.New(rand.NewSource(5))
	x := randComplex(rng, n)
	h := randComplex(rng, k)
	p, err := codeletfft.NewConvPlan(n, k)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]complex128, p.OutLen())
	if err := p.Convolve(full, x, h); err != nil {
		t.Fatal(err)
	}
	f, err := p.FilterStream(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunks := range [][]int{
		{n},                   // one shot
		{7, 13, 980, 2000},    // mixed sizes, one above S
		{1, 1, 1, 37, n - 40}, // sample-at-a-time start
	} {
		f.Reset()
		got := make([]complex128, 0, n)
		off := 0
		for _, c := range chunks {
			dst := make([]complex128, c)
			if err := f.Process(dst, x[off:off+c]); err != nil {
				t.Fatal(err)
			}
			got = append(got, dst...)
			off += c
		}
		if off != n {
			t.Fatalf("chunking %v covers %d samples, want %d", chunks, off, n)
		}
		if rel := maxRelErr(got, full[:n]); rel > 1e-9 {
			t.Fatalf("chunking %v: stream diverged from batch by rel %g", chunks, rel)
		}
	}

	// In-place filtering: dst and src may be the same slice.
	f.Reset()
	inPlace := append([]complex128(nil), x...)
	if err := f.Process(inPlace, inPlace); err != nil {
		t.Fatal(err)
	}
	if rel := maxRelErr(inPlace, full[:n]); rel > 1e-9 {
		t.Fatalf("in-place stream diverged from batch by rel %g", rel)
	}
}

// TestFilterStreamSteadyStateAllocs: after construction, Process
// allocates nothing.
func TestFilterStreamSteadyStateAllocs(t *testing.T) {
	p, err := codeletfft.NewConvPlan(1<<12, 33, codeletfft.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	h := randComplex(rng, 33)
	f, err := p.FilterStream(h)
	if err != nil {
		t.Fatal(err)
	}
	buf := randComplex(rng, 512)
	if err := f.Process(buf, buf); err != nil { // warm the engine
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if err := f.Process(buf, buf); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Fatalf("StreamFilter.Process allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// TestConvPlanErrors: degenerate shapes error with the sentinel, and
// wrong-length arguments panic with ErrLengthMismatch.
func TestConvPlanErrors(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{0, 4}, {4, 0}, {-3, 2}} {
		if _, err := codeletfft.NewConvPlan(tc.n, tc.k); !errors.Is(err, codeletfft.ErrUnsupportedLength) {
			t.Fatalf("NewConvPlan(%d, %d) err = %v, want ErrUnsupportedLength", tc.n, tc.k, err)
		}
	}
	p, err := codeletfft.NewConvPlan(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Convolve with a short output did not panic")
		} else if err, ok := r.(error); !ok || !errors.Is(err, codeletfft.ErrLengthMismatch) {
			t.Fatalf("panic value %v, want an error wrapping ErrLengthMismatch", r)
		}
	}()
	_ = p.Convolve(make([]complex128, 10), make([]complex128, 100), make([]complex128, 5))
}
